package sleepscale_test

import (
	"math"
	"math/rand"
	"testing"

	"sleepscale"
)

// TestQuickstart exercises the doc.go example end to end through the public
// facade only.
func TestQuickstart(t *testing.T) {
	prof := sleepscale.Xeon()
	spec := sleepscale.DNS()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		t.Fatal(err)
	}
	mgr := sleepscale.NewManager(prof, spec, qos)
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := stats.Jobs(10000, rand.New(rand.NewSource(1)))
	best, all, err := mgr.Select(jobs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatalf("quickstart selection infeasible: %+v", best)
	}
	if best.Policy.Frequency <= 0.3 || best.Policy.Frequency > 1 {
		t.Errorf("selected frequency %v out of range", best.Policy.Frequency)
	}
	if len(all) == 0 {
		t.Error("no evaluations")
	}
}

func TestFacadeSimulateAndModelAgree(t *testing.T) {
	prof := sleepscale.Xeon()
	pol := sleepscale.Policy{Frequency: 0.6, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu, rho := 5.0, 0.2
	lambda := rho * mu
	rng := rand.New(rand.NewSource(2))
	jobs := make([]sleepscale.Job, 200000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}
	res, err := sleepscale.Simulate(jobs, cfg, sleepscale.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := pol.AnalyticModel(prof, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := model.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgPower-wantP)/wantP > 0.03 {
		t.Errorf("facade sim power %v vs model %v", res.AvgPower, wantP)
	}
}

func TestFacadeTraceRun(t *testing.T) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := sleepscale.EmailStoreTrace(1, 3)
	window, err := tr.Window(120, 180) // one hour
	if err != nil {
		t.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	rep, err := sleepscale.Run(sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        window,
		EpochSlots:   5,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "pinned"),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.AvgPower <= 0 {
		t.Errorf("degenerate run report: %+v", rep)
	}
	if rep.Strategy != "pinned" {
		t.Errorf("strategy name = %q", rep.Strategy)
	}
}

func TestFacadeConstructorsAndConstants(t *testing.T) {
	if sleepscale.Active.String() != "C0(a)S0(a)" {
		t.Error("Active state wrong")
	}
	if got := len(sleepscale.LowPowerStates()); got != 5 {
		t.Errorf("low-power states = %d", got)
	}
	if got := len(sleepscale.Table5()); got != 3 {
		t.Errorf("Table5 = %d", got)
	}
	if got := len(sleepscale.DefaultPlans()); got != 5 {
		t.Errorf("default plans = %d", got)
	}
	if _, err := sleepscale.NewLMSPredictor(10, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5); err != nil {
		t.Error(err)
	}
	if sleepscale.NewOfflinePredictor([]float64{0.5}).Predict() != 0.5 {
		t.Error("offline predictor wrong")
	}
	if sleepscale.Atom().Name != "Atom" {
		t.Error("Atom profile wrong")
	}
	fs := sleepscale.FileServerTrace(1, 1)
	if fs.Len() != 1440 {
		t.Errorf("file server trace len = %d", fs.Len())
	}
	if _, err := sleepscale.NewFittedStats(sleepscale.Mail()); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewEmpiricalStats(sleepscale.Google(), 1000, 1); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewPercentileQoS(0.8, 5, 0.95); err != nil {
		t.Error(err)
	}
}

func TestFacadeMultiCoreAndFarm(t *testing.T) {
	cfg := sleepscale.MultiCoreConfig{
		Cores: 2, Frequency: 1, FreqExponent: 1,
		CPUActivePower: 32.5,
		CoreSleep: []sleepscale.MultiCorePhase{
			{Name: "C6", Power: 3.75, WakeLatency: 1e-3, EnterAfter: 0},
		},
		PlatformActivePower: 120, PlatformIdlePower: 60.5, PlatformSleepPower: 13.1,
		PlatformSleepAfter: 2, PlatformWakeLatency: 1,
	}
	jobs := []sleepscale.Job{{Arrival: 0, Size: 1}, {Arrival: 0.5, Size: 1}}
	res, err := sleepscale.SimulateMultiCore(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 2 {
		t.Errorf("jobs = %d", res.Jobs)
	}
	if _, err := sleepscale.NewMultiCore(cfg, 0); err != nil {
		t.Error(err)
	}
	c, err := sleepscale.ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1.0/3) > 1e-12 {
		t.Errorf("ErlangC(2,1) = %v", c)
	}
	if _, err := sleepscale.MMkMeanResponse(4, 14, 5); err != nil {
		t.Error(err)
	}
	// Farm facade.
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	qcfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := sleepscale.RunFarm(2, qcfg, &sleepscale.RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Jobs != 2 {
		t.Errorf("farm jobs = %d", fres.Jobs)
	}
	if _, err := sleepscale.NewFarm(2, qcfg, sleepscale.JSQ{}); err != nil {
		t.Error(err)
	}
}

func TestFacadeGuardedPlan(t *testing.T) {
	prof := sleepscale.Xeon()
	tau, err := sleepscale.BreakEvenDelay(prof, 0.5, sleepscale.OperatingIdle, sleepscale.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Errorf("break-even = %v", tau)
	}
	plan, err := sleepscale.GuardedPlan(prof, 0.5, sleepscale.OperatingIdle, sleepscale.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 2 || plan.Phases[1].Enter != tau {
		t.Errorf("guarded plan wrong: %+v", plan)
	}
}

func TestFacadeStrategies(t *testing.T) {
	spec := sleepscale.DNS()
	qos, _ := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	mk := func() *sleepscale.Manager {
		return sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	}
	if _, err := sleepscale.NewSleepScaleStrategy(mk(), 500, 0.35); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewFixedSleepStrategy(mk(), sleepscale.Sleep, 500, 0); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewDVFSOnlyStrategy(mk(), 500, 0); err != nil {
		t.Error(err)
	}
	if _, err := sleepscale.NewRaceToHaltStrategy(sleepscale.DeepSleep); err != nil {
		t.Error(err)
	}
}

// TestFacadeStreamedFarmDispatch exercises the streaming k-way dispatch
// facade end to end: RunFarmSource must match RunFarm on the same stream
// (sequentially and through the time-sliced parallel mode), a reusable
// Farm must serve rewound sources via Reset+ServeSource, and RunFarmEpochs
// must run the epoch loop over a dispatched farm.
func TestFacadeStreamedFarmDispatch(t *testing.T) {
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	qcfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	jobs := make([]sleepscale.Job, 5000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / 8
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / 5}
	}
	want, err := sleepscale.RunFarm(3, qcfg, sleepscale.JSQ{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []sleepscale.FarmDispatchOptions{{}, {Parallel: true, SliceJobs: 512}} {
		got, err := sleepscale.RunFarmSource(3, qcfg, sleepscale.JSQ{}, sleepscale.SliceSource(jobs), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse || got.Energy != want.Energy {
			t.Errorf("parallel=%v: streamed dispatch diverges from RunFarm: %+v vs %+v",
				opts.Parallel, got, want)
		}
	}

	// Reusable farm: Reset + ServeSource over a rewound source.
	f, err := sleepscale.NewFarm(3, qcfg, sleepscale.JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		if err := f.Reset(qcfg); err != nil {
			t.Fatal(err)
		}
		n, err := f.ServeSource(sleepscale.SliceSource(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(jobs) {
			t.Fatalf("run %d served %d of %d jobs", run, n, len(jobs))
		}
	}

	// Epoch loop over a streamed farm.
	stats, err := sleepscale.NewIdealizedStats(sleepscale.DNS())
	if err != nil {
		t.Fatal(err)
	}
	tr := sleepscale.FileServerTrace(1, 1)
	cfg := sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: 1,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   120,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         1,
	}
	src, err := sleepscale.NewTraceSource(stats, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sleepscale.RunFarmEpochs(cfg, 2, &sleepscale.RoundRobin{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.Servers != 2 || rep.Dispatcher != "round-robin" {
		t.Errorf("farm epoch report: jobs=%d servers=%d dispatcher=%q",
			rep.Jobs, rep.Servers, rep.Dispatcher)
	}
}

// TestFacadeFleetCoordinator drives the fleet layer through the public
// facade: shared mode matches RunFarmEpochs exactly, the coordinated knobs
// produce fleet rollups, and both log writers round-trip through colstore.
func TestFacadeFleetCoordinator(t *testing.T) {
	stats, err := sleepscale.NewIdealizedStats(sleepscale.DNS())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sleepscale.FileServerTrace(1, 1).Window(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	newSrc := func() sleepscale.StreamSource {
		src, err := sleepscale.NewTraceSource(stats, tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	base := sleepscale.FleetConfig{
		Servers:      3,
		FreqExponent: 1,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   8,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         1,
		Dispatcher:   sleepscale.JSQ{},
	}

	// Shared mode, no quorum, no parking: bit-identical to the §6 loop.
	coord, err := sleepscale.NewFleetCoordinator(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(newSrc())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sleepscale.RunFarmEpochs(sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: 1,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   8,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         1,
	}, 3, sleepscale.JSQ{}, newSrc())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != want.Jobs || rep.MeanResponse != want.MeanResponse || rep.Energy != want.Energy {
		t.Errorf("shared coordinator diverges from RunFarmEpochs: jobs %d vs %d, E[R] %v vs %v, energy %v vs %v",
			rep.Jobs, want.Jobs, rep.MeanResponse, want.MeanResponse, rep.Energy, want.Energy)
	}

	// Coordinated: per-server policies, a quorum and parking.
	cfg := base
	cfg.PerServer = true
	cfg.Predictor = nil
	cfg.NewPredictor = sleepscale.NewNaivePredictor
	cfg.Quorum = 1
	cfg.Park = true
	coord, err = sleepscale.NewFleetCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep, err = coord.Run(newSrc()); err != nil {
		t.Fatal(err)
	}
	if rep.Servers != 3 || len(rep.PerServer) != 3 || len(rep.FleetEpochs) != len(rep.Epochs) {
		t.Fatalf("fleet report shape: %+v", rep)
	}
	if rep.EnergyProportionality <= 0 || rep.EnergyProportionality > 1 || rep.JobsPerJoule <= 0 {
		t.Errorf("fleet rollups: EP=%v jobs/J=%v", rep.EnergyProportionality, rep.JobsPerJoule)
	}
	for _, fe := range rep.FleetEpochs {
		if q := min(1, fe.Active); fe.Shallow < q {
			t.Fatalf("epoch %d breaks quorum: %+v", fe.Index, fe)
		}
	}
	dir := t.TempDir()
	if err := sleepscale.WriteFleetEpochLog(dir+"/e.col", rep); err != nil {
		t.Fatal(err)
	}
	if err := sleepscale.WriteFleetServerLog(dir+"/s.col", rep); err != nil {
		t.Fatal(err)
	}
	r, err := sleepscale.OpenCol(dir + "/e.col")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != len(rep.Epochs) {
		t.Errorf("epoch log rows = %d, want %d", r.Rows(), len(rep.Epochs))
	}
}
