package queue_test

import (
	"math/rand"
	"testing"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
)

// evalJobs builds a deterministic bursty stream with plenty of idle gaps so
// that every sleep phase of every table case sees residency.
func evalJobs(t *testing.T, n int, seed int64) []queue.Job {
	t.Helper()
	inter, err := dist.NewHyperExp2(0.6, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	size, err := dist.NewExponentialMean(0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += inter.Sample(rng)
		jobs[i] = queue.Job{Arrival: tnow, Size: size.Sample(rng)}
	}
	return jobs
}

// evaluatorCases spans the sleep-plan shapes the policy space generates:
// DVFS-only (no phases), immediate single state, delayed single state,
// multi-phase walks, and degenerate frequencies.
func evaluatorCases() []struct {
	name string
	cfg  queue.Config
} {
	return []struct {
		name string
		cfg  queue.Config
	}{
		{"no-sleep-dvfs-only", queue.Config{
			Frequency: 0.5, FreqExponent: 1, ActivePower: 200, IdlePower: 140,
		}},
		{"immediate-single-state", queue.Config{
			Frequency: 0.8, FreqExponent: 1, ActivePower: 200, IdlePower: 140,
			Phases: []queue.SleepPhase{
				{Name: "C6S0(i)", Power: 80, WakeLatency: 1e-3, EnterAfter: 0},
			},
		}},
		{"delayed-single-state", queue.Config{
			Frequency: 1, FreqExponent: 1, ActivePower: 200, IdlePower: 140,
			Phases: []queue.SleepPhase{
				{Name: "C6S3", Power: 15, WakeLatency: 5, EnterAfter: 1.5},
			},
		}},
		{"two-phase-walk", goldenConfig()},
		{"three-phase-walk-memory-bound", queue.Config{
			Frequency: 0.6, FreqExponent: 0.3, ActivePower: 250, IdlePower: 150,
			Phases: []queue.SleepPhase{
				{Name: "C1S0(i)", Power: 100, WakeLatency: 1e-5, EnterAfter: 0},
				{Name: "C3S0(i)", Power: 85, WakeLatency: 1e-4, EnterAfter: 0.4},
				{Name: "C6S3", Power: 15, WakeLatency: 5, EnterAfter: 3},
			},
		}},
		{"beta-zero", queue.Config{
			Frequency: 0.3, FreqExponent: 0, ActivePower: 120, IdlePower: 60,
			Phases: []queue.SleepPhase{
				{Name: "C6S0(i)", Power: 20, WakeLatency: 0.01, EnterAfter: 0.2},
			},
		}},
	}
}

// requireSummaryEqualsResult asserts bit-for-bit agreement between an
// Evaluator summary and the corresponding Simulate result.
func requireSummaryEqualsResult(t *testing.T, sum queue.Summary, res queue.Result) {
	t.Helper()
	if sum.Jobs != res.Jobs {
		t.Errorf("Jobs = %d, want %d", sum.Jobs, res.Jobs)
	}
	if sum.Wakes != res.Wakes {
		t.Errorf("Wakes = %d, want %d", sum.Wakes, res.Wakes)
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"MeanResponse", sum.MeanResponse, res.MeanResponse},
		{"ResponseP95", sum.ResponseP95, res.ResponseP95},
		{"ResponseP99", sum.ResponseP99, res.ResponseP99},
		{"AvgPower", sum.AvgPower, res.AvgPower},
		{"Energy", sum.Energy, res.Energy},
		{"Duration", sum.Duration, res.Duration},
		{"BusyTime", sum.BusyTime, res.BusyTime},
		{"WakeTime", sum.WakeTime, res.WakeTime},
		{"IdleTime", sum.IdleTime, res.IdleTime},
		{"MeasuredUtilization", sum.MeasuredUtilization, res.MeasuredUtilization},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("%s = %.17g, want %.17g (bit-for-bit)", p.name, p.got, p.want)
		}
	}
}

// TestEvaluatorMatchesSimulate is the table-driven equivalence suite: one
// reused Evaluator must reproduce queue.Simulate bit-for-bit across all
// sleep-plan shapes, config switches (successive Evaluate calls), and the
// warm-up option.
func TestEvaluatorMatchesSimulate(t *testing.T) {
	jobs := evalJobs(t, 3000, 42)
	for _, opts := range []queue.Options{{}, {Warmup: 500}} {
		ev := queue.NewEvaluator(jobs, opts)
		// Two passes over the table through the SAME evaluator: the second
		// pass proves Reset leaves no state behind from any prior config.
		for pass := 0; pass < 2; pass++ {
			for _, tc := range evaluatorCases() {
				res, err := queue.Simulate(jobs, tc.cfg, opts)
				if err != nil {
					t.Fatalf("%s: Simulate: %v", tc.name, err)
				}
				sum, err := ev.Evaluate(tc.cfg)
				if err != nil {
					t.Fatalf("%s: Evaluate: %v", tc.name, err)
				}
				t.Run(tc.name, func(t *testing.T) {
					requireSummaryEqualsResult(t, sum, res)
				})
			}
		}
	}
}

// TestEvaluatorMatchesGoldenSnapshot ties the evaluator to the checked-in
// golden numbers directly, so the kernel cannot drift even if Simulate and
// Evaluator were to change together.
func TestEvaluatorMatchesGoldenSnapshot(t *testing.T) {
	ev := queue.NewEvaluator(goldenJobs(t), queue.Options{})
	// Scramble the buffers with an unrelated config first.
	if _, err := ev.Evaluate(evaluatorCases()[1].cfg); err != nil {
		t.Fatal(err)
	}
	sum, err := ev.Evaluate(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenSnapshot()
	got := map[string]float64{
		"Jobs":                float64(sum.Jobs),
		"MeanResponse":        sum.MeanResponse,
		"ResponseP95":         sum.ResponseP95,
		"ResponseP99":         sum.ResponseP99,
		"AvgPower":            sum.AvgPower,
		"Energy":              sum.Energy,
		"Duration":            sum.Duration,
		"BusyTime":            sum.BusyTime,
		"WakeTime":            sum.WakeTime,
		"IdleTime":            sum.IdleTime,
		"Wakes":               float64(sum.Wakes),
		"MeasuredUtilization": sum.MeasuredUtilization,
	}
	for k, want := range golden {
		g, ok := got[k]
		if !ok {
			continue // residency buckets: not part of Summary
		}
		if diff := g - want; diff > 1e-9*max(1, want) || diff < -1e-9*max(1, want) {
			t.Errorf("%s = %.17g, want golden %.17g", k, g, want)
		}
	}
}

// TestEvaluatorSetStream checks that re-binding a stream fully replaces the
// old one.
func TestEvaluatorSetStream(t *testing.T) {
	a := evalJobs(t, 500, 1)
	b := evalJobs(t, 900, 2)
	cfg := goldenConfig()
	ev := queue.NewEvaluator(a, queue.Options{})
	if _, err := ev.Evaluate(cfg); err != nil {
		t.Fatal(err)
	}
	ev.SetStream(b, queue.Options{Warmup: 100})
	sum, err := ev.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := queue.Simulate(b, cfg, queue.Options{Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	requireSummaryEqualsResult(t, sum, res)
}

// TestGetEvaluatorPoolRoundTrip checks the pooled accessors preserve
// semantics across reuse.
func TestGetEvaluatorPoolRoundTrip(t *testing.T) {
	jobs := evalJobs(t, 800, 3)
	cfg := goldenConfig()
	want, err := queue.Simulate(jobs, cfg, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := queue.GetEvaluator(jobs, queue.Options{})
		sum, err := ev.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSummaryEqualsResult(t, sum, want)
		ev.Release()
	}
}

// TestEngineResetMatchesFresh checks Reset against NewEngine for the
// resumable (mid-run config switch) use, including residency carry.
func TestEngineResetMatchesFresh(t *testing.T) {
	jobs := evalJobs(t, 1000, 9)
	cfgA := goldenConfig()
	cfgB := evaluatorCases()[4].cfg

	run := func(eng *queue.Engine) queue.Result {
		t.Helper()
		half := len(jobs) / 2
		for _, j := range jobs[:half] {
			if _, err := eng.Process(j); err != nil {
				t.Fatal(err)
			}
		}
		at := jobs[half].Arrival
		if err := eng.SetConfigAt(at, cfgB); err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs[half:] {
			if _, err := eng.Process(j); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Finish(eng.FreeAt())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fresh, err := queue.NewEngine(cfgA, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)

	reused, err := queue.NewEngine(cfgB, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the reused engine, then Reset into the scenario's starting config.
	for _, j := range jobs[:100] {
		if _, err := reused.Process(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reused.Finish(reused.FreeAt()); err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(cfgA, 0); err != nil {
		t.Fatal(err)
	}
	got := run(reused)

	if got.Jobs != want.Jobs || got.Energy != want.Energy || got.Duration != want.Duration ||
		got.MeanResponse != want.MeanResponse || got.ResponseP95 != want.ResponseP95 ||
		got.Wakes != want.Wakes || got.IdleTime != want.IdleTime {
		t.Fatalf("reset engine diverges from fresh:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Residency) != len(want.Residency) {
		t.Fatalf("residency buckets differ: got %v want %v", got.Residency, want.Residency)
	}
	for k, v := range want.Residency {
		if got.Residency[k] != v {
			t.Errorf("Residency[%s] = %.17g, want %.17g", k, got.Residency[k], v)
		}
	}
}

// TestEvaluatorZeroAllocSteadyState pins the tentpole acceptance criterion:
// after a warm-up call, evaluating candidates allocates nothing.
func TestEvaluatorZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	jobs := evalJobs(t, 2000, 5)
	cases := evaluatorCases()
	ev := queue.NewEvaluator(jobs, queue.Options{Warmup: 100})
	for _, tc := range cases {
		if _, err := ev.Evaluate(tc.cfg); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		for _, tc := range cases {
			if _, err := ev.Evaluate(tc.cfg); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Evaluate allocates %v/op across %d configs, want 0", allocs, len(cases))
	}
}

// TestSimulateSummaryMatchesSimulate: the pooled one-shot path must agree
// with Simulate bit for bit on every scalar, across plan shapes and the
// warm-up option — the cold path with the warm path's allocation profile.
func TestSimulateSummaryMatchesSimulate(t *testing.T) {
	jobs := evalJobs(t, 3000, 77)
	for _, opts := range []queue.Options{{}, {Warmup: 400}} {
		for _, tc := range evaluatorCases() {
			res, err := queue.Simulate(jobs, tc.cfg, opts)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			sum, err := queue.SimulateSummary(jobs, tc.cfg, opts)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			requireSummaryEqualsResult(t, sum, res)
		}
	}
	// Error paths surface like Simulate's.
	if _, err := queue.SimulateSummary(jobs, queue.Config{}, queue.Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestSimulateSummaryZeroAllocSteadyState pins the pooled one-shot path's
// contract: once the evaluator pool is warm, SimulateSummary allocates
// nothing.
func TestSimulateSummaryZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	jobs := evalJobs(t, 2000, 78)
	cfg := goldenConfig()
	if _, err := queue.SimulateSummary(jobs, cfg, queue.Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := queue.SimulateSummary(jobs, cfg, queue.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state SimulateSummary allocates %.1f/run, want 0", avg)
	}
}
