package queue

import (
	"errors"
	"fmt"
)

// ErrDown reports an operation on a crashed server: between CrashAt and
// RejoinAt the engine accepts no work, no wakes and no config switches.
var ErrDown = errors.New("queue: server is down")

// Down reports whether the engine is crashed (between CrashAt and RejoinAt).
func (e *Engine) Down() bool { return e.down }

// CrashAt takes the server down at absolute time t, retroactively losing
// the lost most recent jobs (those whose completion the caller determined
// to lie beyond t). The energy accounting is exact:
//
//   - The unserved remainder of accepted work, [t, freeAt), was pre-billed
//     at accept time at active power; it is refunded in full. The refunded
//     interval is taken out of busy time first (service is the last thing
//     scheduled before freeAt) and out of wake time for any remainder.
//   - Work already performed before t — including partial service of a job
//     lost mid-flight — stays billed: the machine really ran.
//   - If the server was idle at t, idle up to t is billed normally.
//
// The lost jobs' responses are removed from the sample; the rebuilt
// moments are bit-identical to never having recorded them (impossible
// under SetRetainResponses(false), which is rejected when lost > 0).
// After the call the engine is down: its clocks freeze at t, it consumes
// no energy, and every Process/WakeAt/SetConfigAt returns ErrDown until
// RejoinAt.
func (e *Engine) CrashAt(t float64, lost int) error {
	if e.down {
		return fmt.Errorf("%w: crash at %g while already down", ErrDown, t)
	}
	if t < e.lastSeen {
		return fmt.Errorf("queue: crash at %g before last arrival %g", t, e.lastSeen)
	}
	if lost < 0 || lost > e.responses.Count() {
		return fmt.Errorf("queue: crash loses %d of %d recorded jobs", lost, e.responses.Count())
	}
	if lost > 0 && e.discardResponses {
		return fmt.Errorf("queue: cannot retract %d jobs from a moments-only response stream", lost)
	}
	e.lastSeen = t
	if e.freeAt > t {
		refund := (e.freeAt - t) * e.cfg.ActivePower
		e.energy -= refund
		span := e.freeAt - t
		busyPart := span
		if busyPart > e.busy {
			busyPart = e.busy
		}
		e.busy -= busyPart
		e.wake -= span - busyPart
	} else {
		e.billIdle(e.billed, t)
	}
	e.freeAt, e.anchor, e.billed = t, t, t
	if lost > 0 {
		e.responses.TrimBack(lost)
	}
	e.down = true
	return nil
}

// RejoinAt brings a crashed server back at absolute time t. The down
// window [crash, t) consumed nothing; the server rejoins cold, paying the
// wake transition of its deepest sleep phase (a reboot is at least as
// expensive as the deepest wake) at active power, exactly as WakeAt
// prices an unpark. It is then idle — its sleep-entry clock re-anchored —
// from t + wake latency, still under the configuration it crashed with;
// the caller installs a fresh policy at the next decision boundary.
func (e *Engine) RejoinAt(t float64) error {
	if !e.down {
		return fmt.Errorf("queue: rejoin at %g while up", t)
	}
	if t < e.lastSeen {
		return fmt.Errorf("queue: rejoin at %g before crash at %g", t, e.lastSeen)
	}
	e.lastSeen = t
	e.down = false
	w := 0.0
	if n := len(e.cfg.Phases); n > 0 {
		w = e.cfg.Phases[n-1].WakeLatency
	}
	if w > 0 {
		e.wakes++
		e.wake += w
		e.energy += w * e.cfg.ActivePower
	}
	e.freeAt = t + w
	e.anchor = e.freeAt
	e.billed = e.freeAt
	return nil
}
