package queue_test

import (
	"math"
	"math/rand"
	"testing"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
)

// goldenJobs builds the fixed-seed workload for the golden run: Cv = 1.9
// hyperexponential inter-arrivals at ρ = 0.3 with exponential 194 ms jobs —
// a DNS-like stream with enough idle gaps to exercise every sleep phase.
func goldenJobs(t *testing.T) []queue.Job {
	t.Helper()
	inter, err := dist.NewHyperExp2(194e-3/0.3, 1.9)
	if err != nil {
		t.Fatal(err)
	}
	size, err := dist.NewExponentialMean(194e-3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2014))
	jobs := make([]queue.Job, 5000)
	tnow := 0.0
	for i := range jobs {
		tnow += inter.Sample(rng)
		jobs[i] = queue.Job{Arrival: tnow, Size: size.Sample(rng)}
	}
	return jobs
}

func goldenConfig() queue.Config {
	return queue.Config{
		Frequency:    0.7,
		FreqExponent: 1,
		ActivePower:  200,
		IdlePower:    140,
		Phases: []queue.SleepPhase{
			{Name: "C6S0(i)", Power: 80, WakeLatency: 1e-3, EnterAfter: 0},
			{Name: "C6S3", Power: 15, WakeLatency: 5, EnterAfter: 2},
		},
	}
}

// TestSimulateGolden pins the exact semantics of the hot simulation loop: a
// fixed-seed workload must reproduce this checked-in snapshot, so future
// speed-oriented refactors of Engine/Simulate cannot silently change
// results. If a deliberate semantic change invalidates the snapshot, rerun
// with -run Golden -v and copy the logged values in.
func TestSimulateGolden(t *testing.T) {
	res, err := queue.Simulate(goldenJobs(t), goldenConfig(), queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Jobs":                float64(res.Jobs),
		"MeanResponse":        res.MeanResponse,
		"ResponseP95":         res.ResponseP95,
		"ResponseP99":         res.ResponseP99,
		"AvgPower":            res.AvgPower,
		"Energy":              res.Energy,
		"Duration":            res.Duration,
		"BusyTime":            res.BusyTime,
		"WakeTime":            res.WakeTime,
		"IdleTime":            res.IdleTime,
		"Wakes":               float64(res.Wakes),
		"MeasuredUtilization": res.MeasuredUtilization,
		"Residency[idle]":     res.Residency[queue.PreSleepBucket],
		"Residency[C6S0(i)]":  res.Residency["C6S0(i)"],
		"Residency[C6S3]":     res.Residency["C6S3"],
	}
	for k, v := range want {
		t.Logf("golden %-20s %.17g", k, v)
	}
	golden := goldenSnapshot()
	for k, g := range golden {
		got := want[k]
		tol := 1e-9 * math.Max(1, math.Abs(g))
		if math.Abs(got-g) > tol {
			t.Errorf("%s = %.17g, want %.17g", k, got, g)
		}
	}
}

// goldenSnapshot is the checked-in Simulate result for goldenJobs under
// goldenConfig (regenerate with: go test ./internal/queue -run Golden -v).
func goldenSnapshot() map[string]float64 {
	return map[string]float64{
		"Jobs":                5000,
		"MeanResponse":        2.3949455462176115,
		"ResponseP95":         5.8818889995365451,
		"ResponseP99":         7.4640466020299545,
		"AvgPower":            149.43429958225155,
		"Energy":              494055.19361862115,
		"Duration":            3306.1699690082432,
		"BusyTime":            1405.4273202886791,
		"WakeTime":            740.94999999998993,
		"IdleTime":            1159.7926487195123,
		"Wakes":               1098,
		"MeasuredUtilization": 0.42509227700421803,
		"Residency[idle]":     0,
		"Residency[C6S0(i)]":  728.96676661667573,
		"Residency[C6S3]":     430.82588210283649,
	}
}
