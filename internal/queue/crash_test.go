package queue

import (
	"errors"
	"math"
	"testing"
)

// TestCrashBusyRefund hand-checks the busy-crash path: the unserved
// remainder of in-flight work is refunded exactly, already-performed work
// stays billed, lost responses leave the sample, and the down engine
// freezes.
func TestCrashBusyRefund(t *testing.T) {
	cfg := handCfg()
	e, err := NewEngine(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1: arrival 1, size 2. Idle [0,1): pre 0.5·250 + sleep 0.5·30 = 140.
	// Wake 0.1·250 = 25; start 1.1, svc 2 → freeAt 3.1; svc energy 500.
	// Job 2: arrival 2, queues: svc 1 → freeAt 4.1; svc energy 250.
	for _, j := range []Job{{Arrival: 1, Size: 2}, {Arrival: 2, Size: 1}} {
		if _, err := e.Process(j); err != nil {
			t.Fatal(err)
		}
	}
	preEnergy := e.Snapshot().Energy
	wantPre := 140.0 + 25 + 500 + 250
	if math.Abs(preEnergy-wantPre) > 1e-12 {
		t.Fatalf("pre-crash energy %g, want %g", preEnergy, wantPre)
	}
	// Crash at 3.6: job 2's completion (4.1) is beyond it → 1 job lost.
	// Refund [3.6, 4.1) at 250 W = 125; the half-second comes out of busy.
	if err := e.CrashAt(3.6, 1); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if math.Abs(s.Energy-(wantPre-125)) > 1e-12 {
		t.Fatalf("post-crash energy %g, want %g", s.Energy, wantPre-125)
	}
	if math.Abs(s.BusyTime-2.5) > 1e-12 {
		t.Fatalf("busy %g, want 2.5", s.BusyTime)
	}
	if math.Abs(s.WakeTime-0.1) > 1e-12 {
		t.Fatalf("wake %g, want 0.1", s.WakeTime)
	}
	if s.Jobs != 1 {
		t.Fatalf("jobs %d, want 1 (one lost)", s.Jobs)
	}
	if !e.Down() {
		t.Fatal("engine not down after crash")
	}
	// Frozen: totals at any later instant match the crash totals exactly.
	if got := e.TotalsAt(100); got != s {
		t.Fatalf("down totals drifted: %+v vs %+v", got, s)
	}
	// No operations while down.
	if _, err := e.Process(Job{Arrival: 5, Size: 1}); !errors.Is(err, ErrDown) {
		t.Fatalf("Process while down: %v", err)
	}
	if err := e.WakeAt(5); !errors.Is(err, ErrDown) {
		t.Fatalf("WakeAt while down: %v", err)
	}
	if err := e.SetConfigAt(5, cfg); !errors.Is(err, ErrDown) {
		t.Fatalf("SetConfigAt while down: %v", err)
	}
	if err := e.CrashAt(6, 0); !errors.Is(err, ErrDown) {
		t.Fatalf("double crash: %v", err)
	}

	// Rejoin at 10: cold wake 0.1 s at 250 W; no idle billed for [3.6, 10).
	if err := e.RejoinAt(10); err != nil {
		t.Fatal(err)
	}
	if e.Down() {
		t.Fatal("still down after rejoin")
	}
	s2 := e.Snapshot()
	if math.Abs(s2.Energy-(s.Energy+25)) > 1e-12 {
		t.Fatalf("rejoin energy %g, want %g", s2.Energy, s.Energy+25)
	}
	if s2.Wakes != s.Wakes+1 {
		t.Fatalf("rejoin wakes %d, want %d", s2.Wakes, s.Wakes+1)
	}
	if e.FreeAt() != 10.1 {
		t.Fatalf("rejoin freeAt %g, want 10.1", e.FreeAt())
	}
	// The rejoined engine serves again, idle billed only from its re-anchor.
	if _, err := e.Process(Job{Arrival: 12, Size: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashIdle checks the idle-crash path: idle up to the crash is billed
// under the sleep schedule, nothing is refunded, and the down window
// consumes nothing.
func TestCrashIdle(t *testing.T) {
	e, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(Job{Arrival: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	// freeAt = 1. Crash at 3: idle [1, 3) = pre 0.5·250 + sleep 1.5·30 = 170.
	if err := e.CrashAt(3, 0); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	want := 250.0 + 170
	if math.Abs(s.Energy-want) > 1e-12 {
		t.Fatalf("energy %g, want %g", s.Energy, want)
	}
	if math.Abs(s.IdleTime-2) > 1e-12 {
		t.Fatalf("idle %g, want 2", s.IdleTime)
	}
	// Down window is unbilled: FinishSummary at 100 adds nothing.
	sum := e.FinishSummary(100)
	if math.Abs(sum.Energy-want) > 1e-12 {
		t.Fatalf("finish energy %g, want %g", sum.Energy, want)
	}
	if sum.Duration != 100 {
		t.Fatalf("duration %g, want 100", sum.Duration)
	}
}

// TestCrashLostResponsesExact pins the TrimBack contract: after losing the
// suffix, the response moments are bit-identical to an engine that never
// served the lost jobs.
func TestCrashLostResponsesExact(t *testing.T) {
	jobs := []Job{
		{Arrival: 0.5, Size: 1.2}, {Arrival: 1, Size: 0.3}, {Arrival: 4, Size: 2},
		{Arrival: 4.1, Size: 0.7}, {Arrival: 9, Size: 1},
	}
	full, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if _, err := full.Process(j); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			if _, err := ref.Process(j); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Lose the last two via a crash beyond all arrivals.
	if err := full.CrashAt(20, 2); err != nil {
		t.Fatal(err)
	}
	got, want := full.responses.Stream.State(), ref.responses.Stream.State()
	if got != want {
		t.Fatalf("moments after TrimBack %+v != reference %+v", got, want)
	}
}

// TestCrashRejects covers the argument guards.
func TestCrashRejects(t *testing.T) {
	e, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(Job{Arrival: 5, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.CrashAt(4, 0); err == nil {
		t.Fatal("crash before last arrival accepted")
	}
	if err := e.CrashAt(6, 2); err == nil {
		t.Fatal("losing more jobs than recorded accepted")
	}
	if err := e.CrashAt(6, -1); err == nil {
		t.Fatal("negative lost accepted")
	}
	if err := e.RejoinAt(6); err == nil {
		t.Fatal("rejoin while up accepted")
	}
	// Moments-only engines cannot retract.
	d, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetainResponses(false)
	if _, err := d.Process(Job{Arrival: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashAt(5, 1); err == nil {
		t.Fatal("moments-only retraction accepted")
	}
	if err := d.CrashAt(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RejoinAt(4); err == nil {
		t.Fatal("rejoin before crash instant accepted")
	}
	// Reset clears the down state.
	if err := d.Reset(handCfg(), 0); err != nil {
		t.Fatal(err)
	}
	if d.Down() {
		t.Fatal("reset engine still down")
	}
}
