// Package queue implements the operation model of §3.2 and the queueing
// simulator of Algorithm 1, generalized to sequences of low-power states
// with enter delays and to arbitrary service-rate frequency scaling.
//
// The model is a single-server FCFS queue. At frequency f a job of size s
// (seconds of work at f = 1) takes s/f^β seconds, where β is the frequency
// exponent (1 = CPU-bound, 0 = memory-bound). Whenever the queue empties the
// server walks down a configured sequence of low-power phases; phase i is
// entered τᵢ seconds after the queue empties. A job arrival triggers an
// immediate wake-up from the phase occupied at that instant, costing that
// phase's wake-up latency, during which the server consumes active power
// (the paper's conservative assumption) and serves nothing.
//
// Three entry points are provided: Simulate, the batch evaluator for one-off
// runs; Engine, a resumable simulator that supports changing the
// configuration mid-run so that the SleepScale runtime can switch policies at
// epoch boundaries while queue backlog carries across epochs; and Evaluator,
// the reusable simulation kernel the policy manager uses to score many
// candidate configurations against one shared job stream.
//
// # Reuse contract
//
// Engine and Evaluator are allocation-conscious: Engine.Reset rewinds an
// engine for a fresh run while keeping every internal buffer (the response
// sample and the phase-residency tally), and Evaluator.Evaluate produces a
// Summary — plain scalars, no heap references — so the §5.1.1 selection loop
// runs with zero steady-state allocations. Anything that must survive the
// next Reset (Result.Responses, Result.Residency) is only materialized by
// Finish, which Simulate calls on a fresh engine.
package queue

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"sleepscale/internal/metrics"
)

// Job is one unit of work.
type Job struct {
	// Arrival is the absolute arrival time in seconds.
	Arrival float64
	// Size is the service demand in seconds of work at f = 1.
	Size float64
}

// SleepPhase is one low-power state in the idle-entry sequence, already
// resolved to concrete numbers for the frequency being simulated.
type SleepPhase struct {
	// Name labels the phase for residency reporting, e.g. "C6S0(i)".
	Name string
	// Power is the power drawn while resident in this phase, in watts.
	Power float64
	// WakeLatency is the time to return to active service, in seconds.
	WakeLatency float64
	// EnterAfter is τᵢ: seconds after the queue empties at which the
	// server enters this phase.
	EnterAfter float64
}

// Config fully describes one operating policy at one frequency.
type Config struct {
	// Frequency is the DVFS factor f ∈ (0, 1].
	Frequency float64
	// FreqExponent is β: the service rate scales as f^β.
	FreqExponent float64
	// ActivePower is the power while serving or waking, in watts.
	ActivePower float64
	// IdlePower is the power while idle before the first sleep phase is
	// entered (the server lingers in C0(a)S0(a)), in watts.
	IdlePower float64
	// Phases is the ordered low-power sequence; EnterAfter must be
	// non-decreasing. Empty means the server never sleeps (DVFS-only).
	Phases []SleepPhase
}

// Validate reports whether the configuration is simulatable.
func (c *Config) Validate() error {
	if !(c.Frequency > 0 && c.Frequency <= 1) {
		return fmt.Errorf("queue: frequency %g outside (0,1]", c.Frequency)
	}
	if c.FreqExponent < 0 || c.FreqExponent > 1 {
		return fmt.Errorf("queue: frequency exponent %g outside [0,1]", c.FreqExponent)
	}
	if c.ActivePower < 0 || c.IdlePower < 0 {
		return fmt.Errorf("queue: negative power")
	}
	prev := math.Inf(-1)
	for i, ph := range c.Phases {
		if ph.EnterAfter < 0 || ph.EnterAfter < prev {
			return fmt.Errorf("queue: phase %d (%s) enter delay %g not non-decreasing",
				i, ph.Name, ph.EnterAfter)
		}
		if ph.Power < 0 || ph.WakeLatency < 0 {
			return fmt.Errorf("queue: phase %d (%s) negative power or wake", i, ph.Name)
		}
		prev = ph.EnterAfter
	}
	return nil
}

// speed returns the effective service-rate multiplier f^β.
func (c *Config) speed() float64 {
	if c.FreqExponent == 0 {
		return 1
	}
	if c.FreqExponent == 1 {
		return c.Frequency
	}
	return math.Pow(c.Frequency, c.FreqExponent)
}

// ServiceTime reports how long a job of the given size takes under this
// configuration.
func (c *Config) ServiceTime(size float64) float64 { return size / c.speed() }

// occupiedPhase reports the index of the phase occupied at idle offset off
// (seconds since the idle schedule's anchor), or -1 when the server has not
// yet entered the first phase.
func (c *Config) occupiedPhase(off float64) int {
	idx := -1
	for i, ph := range c.Phases {
		if ph.EnterAfter <= off {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// NextFreeAt advances the server-availability recursion of Engine.Process for
// one job, with none of the energy or metrics accounting: given a server
// whose accepted work completes at freeAt — and whose idle schedule is
// anchored there, which holds whenever the engine has only processed jobs
// since its last reset (no SetConfigAt) — it returns the completion time
// after additionally serving j. The arithmetic mirrors Process operation for
// operation, so state-dependent dispatchers (farm JSQ) can route against a
// lightweight freeAt shadow and pick bit-identically to routing against live
// engines.
func (c *Config) NextFreeAt(freeAt float64, j Job) float64 {
	return c.NextFreeAtAnchored(freeAt, freeAt, j)
}

// NextFreeAtAnchored is NextFreeAt for a server whose idle schedule is
// anchored at anchor rather than at freeAt — the general form of the
// availability recursion, matching Engine.Process even after a SetConfigAt
// during an idle period moved the anchor. anchor must equal freeAt whenever
// the server has processed a job since the last anchor move (Process re-sets
// both to the departure time); NextFreeAt is the anchor == freeAt special
// case.
func (c *Config) NextFreeAtAnchored(freeAt, anchor float64, j Job) float64 {
	svc := c.ServiceTime(j.Size)
	var start float64
	if j.Arrival > freeAt {
		w := 0.0
		if k := c.occupiedPhase(j.Arrival - anchor); k >= 0 {
			w = c.Phases[k].WakeLatency
		}
		start = j.Arrival + w
	} else {
		start = freeAt
	}
	return start + svc
}

// Result summarizes one simulation run.
type Result struct {
	// Jobs is the number of completed jobs.
	Jobs int
	// MeanResponse is the mean response (sojourn) time in seconds.
	MeanResponse float64
	// ResponseP95 and ResponseP99 are response-time percentiles.
	ResponseP95 float64
	ResponseP99 float64
	// AvgPower is Energy / Duration, in watts.
	AvgPower float64
	// Energy is total energy in joules.
	Energy float64
	// Duration is the simulated wall-clock span in seconds.
	Duration float64
	// BusyTime, WakeTime and IdleTime partition Duration.
	BusyTime float64
	WakeTime float64
	IdleTime float64
	// Wakes counts wake-up transitions.
	Wakes int
	// Residency maps phase name → seconds of residency. The pre-sleep
	// idle window is reported under "idle-active".
	Residency map[string]float64
	// Responses is the full response-time sample for tail analysis.
	Responses *metrics.Sample
	// MeasuredUtilization is BusyTime / Duration.
	MeasuredUtilization float64
}

// PreSleepBucket is the residency bucket for idle time spent before the
// first sleep phase is entered.
const PreSleepBucket = "idle-active"

// Engine is a resumable FCFS simulator. Create with NewEngine, feed jobs in
// non-decreasing arrival order with Process, optionally switch configuration
// with SetConfigAt, and close with Finish. Reset rewinds the engine for a
// fresh run under a new configuration while keeping its internal buffers, so
// one engine can score many candidate policies without allocating.
type Engine struct {
	cfg Config

	freeAt float64 // server is busy until this time
	anchor float64 // start of the current idle schedule
	billed float64 // idle billed up to this absolute time

	energy   float64
	busy     float64
	wake     float64
	idle     float64
	wakes    int
	started  float64
	lastSeen float64

	// resid is the hot-path residency tally, indexed by phase: resid[0] is
	// the pre-sleep bucket, resid[i+1] is cfg.Phases[i]. The name-keyed map
	// only materializes in Finish. residPrev carries residency accumulated
	// under earlier configurations across SetConfigAt switches; it stays nil
	// until the first switch, so the one-config evaluation path never
	// touches a map, and Reset empties it in place so a switching re-run
	// (e.g. an epoch loop replayed per benchmark op) never reallocates it.
	resid     []float64
	residPrev *metrics.WeightedTally
	responses metrics.Sample

	// discardResponses drops raw response observations, keeping only the
	// streaming moments (count, mean, variance, min, max). A long-running
	// serve loop sets it so engine memory stays O(1) however many jobs the
	// unbounded feed delivers; the cost is that percentile queries over the
	// whole run (FinishSummary's ResponseP95/P99) report 0 — per-epoch tails
	// are the epoch driver's own bounded sample, unaffected.
	discardResponses bool

	// down marks a crashed server (see CrashAt/RejoinAt in crash.go): it
	// accepts no work, accrues no idle energy, and its billing clocks stay
	// frozen at the crash instant until RejoinAt.
	down bool
}

// ErrOutOfOrder reports a job processed with an arrival before the previous
// job's arrival.
var ErrOutOfOrder = errors.New("queue: job arrivals out of order")

// NewEngine returns an engine that starts idle at time start under cfg.
func NewEngine(cfg Config, start float64) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg, start); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rewinds the engine to start idle at time start under cfg, exactly as
// a fresh NewEngine would, but reuses every internal buffer. Results returned
// by a previous Finish remain valid except for Result.Responses, which
// aliases the engine's sample and is cleared by the reset.
func (e *Engine) Reset(cfg Config, start float64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	e.cfg = cfg
	e.freeAt, e.anchor, e.billed = start, start, start
	e.started, e.lastSeen = start, start
	e.energy, e.busy, e.wake, e.idle = 0, 0, 0, 0
	e.wakes = 0
	e.resid = resizeZero(e.resid, len(cfg.Phases)+1)
	if e.residPrev != nil {
		e.residPrev.Reset() // emptied in place: a re-run's switches reuse it
	}
	e.responses.Reset()
	e.down = false
	return nil
}

// resizeZero returns s resized to n zeroed elements, reusing capacity.
func resizeZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// billIdle charges idle energy for the absolute interval [from, to) against
// the idle schedule anchored at e.anchor, and updates residency buckets.
func (e *Engine) billIdle(from, to float64) {
	if to <= from {
		return
	}
	o1, o2 := from-e.anchor, to-e.anchor
	e.idle += to - from
	// Pre-sleep segment [0, τ₁).
	preEnd := math.Inf(1)
	if len(e.cfg.Phases) > 0 {
		preEnd = e.cfg.Phases[0].EnterAfter
	}
	if o1 < preEnd {
		seg := math.Min(o2, preEnd) - o1
		e.energy += seg * e.cfg.IdlePower
		e.resid[0] += seg
	}
	for i, ph := range e.cfg.Phases {
		start := ph.EnterAfter
		end := math.Inf(1)
		if i+1 < len(e.cfg.Phases) {
			end = e.cfg.Phases[i+1].EnterAfter
		}
		lo := math.Max(o1, start)
		hi := math.Min(o2, end)
		if hi > lo {
			e.energy += (hi - lo) * ph.Power
			e.resid[i+1] += hi - lo
		}
	}
}

// flushResidency folds the phase-indexed tally into the name-keyed carry
// tally, zeroing the slice. Called at configuration switches (the phase set
// may change) — never on the one-config hot path.
func (e *Engine) flushResidency() {
	if e.residPrev == nil {
		e.residPrev = metrics.NewWeightedTally()
	}
	if e.resid[0] != 0 {
		e.residPrev.Add(PreSleepBucket, e.resid[0])
	}
	for i, ph := range e.cfg.Phases {
		if v := e.resid[i+1]; v != 0 {
			e.residPrev.Add(ph.Name, v)
		}
	}
}

// Process serves one job and reports its response time. Jobs must be fed in
// non-decreasing arrival order.
func (e *Engine) Process(j Job) (response float64, err error) {
	if j.Arrival < e.lastSeen {
		return 0, fmt.Errorf("%w: %g after %g", ErrOutOfOrder, j.Arrival, e.lastSeen)
	}
	if j.Size < 0 {
		return 0, fmt.Errorf("queue: negative job size %g", j.Size)
	}
	if e.down {
		return 0, ErrDown
	}
	e.lastSeen = j.Arrival
	svc := e.cfg.ServiceTime(j.Size)

	var start float64
	if j.Arrival > e.freeAt {
		// Idle gap [freeAt, arrival): bill the remaining unbilled portion,
		// then wake from whatever phase is occupied at the arrival instant.
		e.billIdle(e.billed, j.Arrival)
		e.billed = j.Arrival
		w := 0.0
		if k := e.cfg.occupiedPhase(j.Arrival - e.anchor); k >= 0 {
			w = e.cfg.Phases[k].WakeLatency
		}
		if w > 0 {
			e.wakes++
			e.wake += w
			e.energy += w * e.cfg.ActivePower
		}
		start = j.Arrival + w
	} else {
		start = e.freeAt
	}
	e.busy += svc
	e.energy += svc * e.cfg.ActivePower
	e.freeAt = start + svc
	// The queue empties at freeAt (as far as this job knows); the idle
	// schedule re-anchors there. A later arrival before freeAt simply
	// overwrites these fields via the busy branch above.
	e.anchor = e.freeAt
	e.billed = e.freeAt

	response = e.freeAt - j.Arrival
	if e.discardResponses {
		// Moments only: Count/Mean stay exact (Snapshot.Jobs, the epoch
		// deltas and FinishSummary's MeanResponse are unaffected); the raw
		// sample — and with it whole-run percentiles — is not kept.
		e.responses.Stream.Add(response)
	} else {
		e.responses.Add(response)
	}
	return response, nil
}

// SetRetainResponses controls whether Process keeps the raw response sample
// (the default, enabling whole-run percentiles) or only the streaming
// moments (O(1) memory for unbounded runs; see the discardResponses field).
// Switch before the first Process of a run.
func (e *Engine) SetRetainResponses(retain bool) { e.discardResponses = !retain }

// WakeAt wakes an idle server at absolute time t without serving a job: the
// fleet coordinator's unpark. Idle up to t is billed under the current
// configuration, the wake-up latency of the sleep phase occupied at t is
// charged exactly as Process charges it for an arriving job — wake time at
// active power, wakes incremented — and the server is busy waking until
// t + latency, where its idle schedule re-anchors. A job arriving during the
// wake therefore queues behind it, so an unparked server's first response
// pays the full deep-sleep wake cost. A busy server (t ≤ freeAt) has nothing
// to wake; the call is a no-op.
func (e *Engine) WakeAt(t float64) error {
	if t < e.lastSeen {
		return fmt.Errorf("queue: wake at %g before last arrival %g", t, e.lastSeen)
	}
	if e.down {
		return ErrDown
	}
	e.lastSeen = t
	if t <= e.freeAt {
		return nil
	}
	e.billIdle(e.billed, t)
	e.billed = t
	w := 0.0
	if k := e.cfg.occupiedPhase(t - e.anchor); k >= 0 {
		w = e.cfg.Phases[k].WakeLatency
	}
	if w > 0 {
		e.wakes++
		e.wake += w
		e.energy += w * e.cfg.ActivePower
	}
	e.freeAt = t + w
	e.anchor = e.freeAt
	e.billed = e.freeAt
	return nil
}

// SetConfigAt switches the engine to a new configuration at absolute time t.
// Idle time before t is billed under the old configuration; the idle
// schedule re-anchors at t, so the sleep-entry clock restarts under the new
// policy (a frequency change requires brief activity anyway). Work already
// accepted (the current backlog horizon freeAt) completes at the old speed;
// the new configuration applies to jobs processed afterwards.
func (e *Engine) SetConfigAt(t float64, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if t < e.lastSeen {
		return fmt.Errorf("queue: config switch at %g before last arrival %g", t, e.lastSeen)
	}
	if e.down {
		return ErrDown
	}
	if t > e.freeAt {
		// Server is idle at the switch: close out the old schedule.
		e.billIdle(e.billed, t)
		e.anchor = t
		e.billed = t
	}
	e.lastSeen = t
	// The new configuration may have a different phase set, so the
	// phase-indexed residency tally is folded into the name-keyed carry.
	e.flushResidency()
	e.cfg = cfg
	e.resid = resizeZero(e.resid, len(cfg.Phases)+1)
	return nil
}

// Config returns the engine's current configuration.
func (e *Engine) Config() Config { return e.cfg }

// FreeAt reports the time at which all accepted work completes.
func (e *Engine) FreeAt() float64 { return e.freeAt }

// IdleAnchor reports the start of the engine's current idle schedule: the
// last departure time, or the instant of the last idle-period SetConfigAt if
// that came later. State-dependent dispatchers price wake-ups from it.
func (e *Engine) IdleAnchor() float64 { return e.anchor }

// NextFreeAt reports the time at which the engine's work would complete if it
// additionally served j, without serving it — the same availability recursion
// Process runs, priced against the engine's live configuration and its actual
// idle anchor. Unlike Config.NextFreeAt on FreeAt alone, this stays exact
// after a mid-run SetConfigAt during an idle period (the anchor moved while
// freeAt did not).
func (e *Engine) NextFreeAt(j Job) float64 {
	return e.cfg.NextFreeAtAnchored(e.freeAt, e.anchor, j)
}

// Backlog reports the seconds of accepted-but-unfinished work as of time t.
func (e *Engine) Backlog(t float64) float64 {
	if e.freeAt <= t {
		return 0
	}
	return e.freeAt - t
}

// Snapshot captures running totals so a caller can compute per-epoch deltas.
type Snapshot struct {
	Energy   float64
	BusyTime float64
	WakeTime float64
	IdleTime float64
	Jobs     int
	Wakes    int
}

// Snapshot reports the engine's cumulative counters.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Energy:   e.energy,
		BusyTime: e.busy,
		WakeTime: e.wake,
		IdleTime: e.idle,
		Jobs:     e.responses.Count(),
		Wakes:    e.wakes,
	}
}

// idleEnergyBetween prices the idle interval [from, to) against the current
// idle schedule without billing it — the pure-read mirror of billIdle's
// energy arithmetic (same segments, same phase boundaries), minus the
// residency bookkeeping.
func (e *Engine) idleEnergyBetween(from, to float64) float64 {
	if to <= from {
		return 0
	}
	o1, o2 := from-e.anchor, to-e.anchor
	var energy float64
	preEnd := math.Inf(1)
	if len(e.cfg.Phases) > 0 {
		preEnd = e.cfg.Phases[0].EnterAfter
	}
	if o1 < preEnd {
		energy += (math.Min(o2, preEnd) - o1) * e.cfg.IdlePower
	}
	for i, ph := range e.cfg.Phases {
		end := math.Inf(1)
		if i+1 < len(e.cfg.Phases) {
			end = e.cfg.Phases[i+1].EnterAfter
		}
		lo := math.Max(o1, ph.EnterAfter)
		hi := math.Min(o2, end)
		if hi > lo {
			energy += (hi - lo) * ph.Power
		}
	}
	return energy
}

// TotalsAt reports the cumulative counters as they would stand with idle
// billed up to time t, without mutating the engine — what lets an epoch
// driver take exact per-epoch energy deltas at boundaries that fall inside
// an idle period. Idle the engine has already billed (t ≤ billed horizon) is
// never double-counted; service energy remains attributed at accept time, so
// work straddling t counts in the epoch that accepted it. TotalsAt(end of
// run) equals FinishSummary's totals.
func (e *Engine) TotalsAt(t float64) Snapshot {
	s := e.Snapshot()
	if t > e.billed && !e.down {
		s.Energy += e.idleEnergyBetween(e.billed, t)
		s.IdleTime += t - e.billed
	}
	return s
}

// EngineState is the complete resumable state of an Engine minus its
// configuration (which callers persist alongside, normally by re-deriving it
// from the policy in force) and minus the raw response sample: responses are
// captured as streaming moments only, so a restored engine reports exact
// counts, means and energy totals but whole-run percentiles restart empty.
// Engines running with SetRetainResponses(false) — the serve daemon's mode —
// lose nothing. All fields are plain values; State deep-copies the slices.
type EngineState struct {
	FreeAt, Anchor, Billed   float64
	Energy, Busy, Wake, Idle float64
	Wakes                    int
	Started, LastSeen        float64
	Resid                    []float64
	// ResidPrevNames/ResidPrevWeights carry the name-keyed residency folded
	// at configuration switches, in first-seen order.
	ResidPrevNames   []string
	ResidPrevWeights []float64
	Responses        metrics.StreamState
	DiscardResponses bool
}

// State captures the engine's resumable state; see EngineState for what a
// restore preserves. The engine is not mutated.
func (e *Engine) State() EngineState {
	st := EngineState{
		FreeAt: e.freeAt, Anchor: e.anchor, Billed: e.billed,
		Energy: e.energy, Busy: e.busy, Wake: e.wake, Idle: e.idle,
		Wakes: e.wakes, Started: e.started, LastSeen: e.lastSeen,
		Resid:            append([]float64(nil), e.resid...),
		Responses:        e.responses.Stream.State(),
		DiscardResponses: e.discardResponses,
	}
	if e.residPrev != nil {
		for _, name := range e.residPrev.Names() {
			st.ResidPrevNames = append(st.ResidPrevNames, name)
			st.ResidPrevWeights = append(st.ResidPrevWeights, e.residPrev.Get(name))
		}
	}
	return st
}

// RestoreEngine reconstructs an engine mid-run from a captured state under
// cfg, which must be the configuration that was in force at capture time
// (cfg.Phases is deep-copied, so the caller's slice stays its own). The
// restored engine continues bit-identically to the original: same billing,
// same wake pricing, same totals at every future instant.
func RestoreEngine(cfg Config, st EngineState) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(st.ResidPrevNames) != len(st.ResidPrevWeights) {
		return nil, fmt.Errorf("queue: residency names/weights length mismatch (%d vs %d)",
			len(st.ResidPrevNames), len(st.ResidPrevWeights))
	}
	if len(st.Resid) != len(cfg.Phases)+1 {
		return nil, fmt.Errorf("queue: residency tally has %d buckets, config wants %d",
			len(st.Resid), len(cfg.Phases)+1)
	}
	cfg.Phases = append([]SleepPhase(nil), cfg.Phases...)
	e := &Engine{
		cfg:    cfg,
		freeAt: st.FreeAt, anchor: st.Anchor, billed: st.Billed,
		energy: st.Energy, busy: st.Busy, wake: st.Wake, idle: st.Idle,
		wakes: st.Wakes, started: st.Started, lastSeen: st.LastSeen,
		resid:            append([]float64(nil), st.Resid...),
		discardResponses: st.DiscardResponses,
	}
	if len(st.ResidPrevNames) > 0 {
		e.residPrev = metrics.NewWeightedTally()
		for i, name := range st.ResidPrevNames {
			e.residPrev.Add(name, st.ResidPrevWeights[i])
		}
	}
	e.responses.Stream.SetState(st.Responses)
	return e, nil
}

// Summary is the scalar aggregate of a run: the same quantities as Result
// minus the residency map and the raw response sample, so producing one
// allocates nothing. It is what Evaluator returns per candidate policy.
type Summary struct {
	Jobs                int
	MeanResponse        float64
	ResponseP95         float64
	ResponseP99         float64
	AvgPower            float64
	Energy              float64
	Duration            float64
	BusyTime            float64
	WakeTime            float64
	IdleTime            float64
	Wakes               int
	MeasuredUtilization float64
}

// FinishSummary closes the run at time at (which must be ≥ the last
// departure), billing any trailing idle, and returns the scalar aggregate.
// Unlike Finish it materializes no residency map and exposes no sample, so
// the engine can be Reset and reused without invalidating the return value.
func (e *Engine) FinishSummary(at float64) Summary {
	if at < e.freeAt {
		at = e.freeAt
	}
	if at > e.freeAt && !e.down {
		// A down server consumes nothing: its billing clocks stay frozen at
		// the crash instant, so down time appears in Duration but in none of
		// the busy/wake/idle buckets.
		e.billIdle(e.billed, at)
		e.billed = at
	}
	dur := at - e.started
	sum := Summary{
		Jobs:         e.responses.Count(),
		MeanResponse: e.responses.Mean(),
		ResponseP95:  e.responses.Percentile(95),
		ResponseP99:  e.responses.Percentile(99),
		Energy:       e.energy,
		Duration:     dur,
		BusyTime:     e.busy,
		WakeTime:     e.wake,
		IdleTime:     e.idle,
		Wakes:        e.wakes,
	}
	if dur > 0 {
		sum.AvgPower = e.energy / dur
		sum.MeasuredUtilization = e.busy / dur
	}
	return sum
}

// Finish closes the run at time at (which must be ≥ the last departure),
// billing any trailing idle, and returns the aggregate result. The returned
// Result.Responses aliases the engine's sample: it is valid until the next
// Reset.
func (e *Engine) Finish(at float64) (Result, error) {
	sum := e.FinishSummary(at)
	res := Result{
		Jobs:                sum.Jobs,
		MeanResponse:        sum.MeanResponse,
		ResponseP95:         sum.ResponseP95,
		ResponseP99:         sum.ResponseP99,
		AvgPower:            sum.AvgPower,
		Energy:              sum.Energy,
		Duration:            sum.Duration,
		BusyTime:            sum.BusyTime,
		WakeTime:            sum.WakeTime,
		IdleTime:            sum.IdleTime,
		Wakes:               sum.Wakes,
		MeasuredUtilization: sum.MeasuredUtilization,
		Residency:           make(map[string]float64, len(e.resid)),
		Responses:           &e.responses,
	}
	if e.residPrev != nil {
		for _, name := range e.residPrev.Names() {
			res.Residency[name] = e.residPrev.Get(name)
		}
	}
	if v := e.resid[0]; v != 0 {
		res.Residency[PreSleepBucket] += v
	}
	for i, ph := range e.cfg.Phases {
		if v := e.resid[i+1]; v != 0 {
			res.Residency[ph.Name] += v
		}
	}
	return res, nil
}

// Options tunes Simulate.
type Options struct {
	// Warmup discards the first Warmup jobs from the response metrics
	// (their energy still counts). The paper uses no warm-up; 0 matches it.
	Warmup int
}

// Simulate runs Algorithm 1: it serves jobs (which must be sorted by
// arrival) under cfg, starting idle at time 0, and ends the measurement at
// the last departure. For scoring many candidate configurations against one
// stream, Evaluator amortizes this function's per-call allocations.
func Simulate(jobs []Job, cfg Config, opts Options) (Result, error) {
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		return Result{}, err
	}
	if err := eng.run(jobs, opts); err != nil {
		return Result{}, err
	}
	return eng.Finish(eng.freeAt)
}

// SimulateSummary is the pooled one-shot variant of Simulate: the same
// Algorithm 1 run over the same stream, but the engine — and with it the
// response sample, the sorted percentile scratch and the residency tally —
// is drawn from the evaluator pool and returned to it, and the result is the
// scalar Summary, which never aliases pooled storage. Cold-path callers that
// need only aggregates (no residency map, no raw sample) therefore simulate
// with the warm path's allocation profile: zero steady-state allocations
// once the pool is warm. The scalar fields are bit-identical to Simulate's.
func SimulateSummary(jobs []Job, cfg Config, opts Options) (Summary, error) {
	ev := GetEvaluator(jobs, opts)
	defer ev.Release()
	return ev.Evaluate(cfg)
}

// JobSource is the minimal pull interface the streaming drivers consume: it
// fills buf with the next jobs in non-decreasing arrival order, returning
// the count and whether more may follow (the stream package's Source
// satisfies it). Sources that can fail mid-stream expose Err() error, which
// the drivers check after exhaustion.
type JobSource interface {
	Next(buf []Job) (n int, ok bool)
}

// sourceChunk sizes the drivers' pull buffers: the job-stream memory
// high-water mark of a streamed run, independent of stream length.
const sourceChunk = 256

// SimulateSource is Simulate for streams that are never materialized: it
// serves jobs pulled from src in chunk-sized batches under cfg, starting
// idle at time 0 and ending the measurement at the last departure. Peak
// job-buffer memory is one chunk regardless of stream length.
func SimulateSource(src JobSource, cfg Config, opts Options) (Result, error) {
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		return Result{}, err
	}
	var buf [sourceChunk]Job
	served := 0
	for {
		n, ok := src.Next(buf[:])
		for i := 0; i < n; i++ {
			if _, err := eng.Process(buf[i]); err != nil {
				return Result{}, fmt.Errorf("job %d: %w", served+i, err)
			}
		}
		served += n
		if !ok {
			break
		}
	}
	if es, ok := src.(interface{ Err() error }); ok {
		if err := es.Err(); err != nil {
			return Result{}, fmt.Errorf("queue: job source: %w", err)
		}
	}
	eng.trimWarmup(opts)
	return eng.Finish(eng.freeAt)
}

// run feeds a whole sorted stream through the engine and applies the warm-up
// trim. The engine must be freshly constructed or Reset.
func (e *Engine) run(jobs []Job, opts Options) error {
	for i := range jobs {
		if _, err := e.Process(jobs[i]); err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
	}
	e.trimWarmup(opts)
	return nil
}

// trimWarmup applies the warm-up trim shared by the materialized and
// streamed drivers. Sample keeps insertion order regardless of percentile
// queries, so trimming the front is always the first Warmup responses. A
// warm-up longer than the run keeps the full sample (there is nothing after
// the transient to measure).
func (e *Engine) trimWarmup(opts Options) {
	if opts.Warmup > 0 && opts.Warmup < e.responses.Count() {
		e.responses.TrimFront(opts.Warmup)
	}
}

// Evaluator is the reusable simulation kernel for candidate-policy scoring:
// it owns one Engine (and thereby the response-sample and residency buffers)
// and evaluates many configurations over one shared job stream with zero
// steady-state allocations. An Evaluator is not safe for concurrent use; the
// selection loop gives each worker its own (see GetEvaluator).
type Evaluator struct {
	eng  Engine
	jobs []Job
	opts Options
}

// NewEvaluator returns an evaluator that scores candidates against jobs
// (sorted by arrival) under opts.
func NewEvaluator(jobs []Job, opts Options) *Evaluator {
	return &Evaluator{jobs: jobs, opts: opts}
}

// SetStream replaces the shared job stream and options for later Evaluate
// calls, keeping the evaluator's buffers.
func (ev *Evaluator) SetStream(jobs []Job, opts Options) {
	ev.jobs = jobs
	ev.opts = opts
}

// Evaluate runs Algorithm 1 for one candidate configuration over the shared
// stream, exactly as Simulate(jobs, cfg, opts) would, and returns the scalar
// summary. The result is a value: it stays valid across further Evaluate
// calls.
func (ev *Evaluator) Evaluate(cfg Config) (Summary, error) {
	if err := ev.eng.Reset(cfg, 0); err != nil {
		return Summary{}, err
	}
	if err := ev.eng.run(ev.jobs, ev.opts); err != nil {
		return Summary{}, err
	}
	return ev.eng.FinishSummary(ev.eng.freeAt), nil
}

// Responses exposes the response sample of the most recent Evaluate call,
// e.g. for tail inspection. It aliases evaluator-owned storage: the next
// Evaluate or Release invalidates it.
func (ev *Evaluator) Responses() *metrics.Sample { return &ev.eng.responses }

// evaluatorPool recycles evaluators (and their engine buffers) across policy
// selections, so the per-epoch decision loop settles into zero allocations.
var evaluatorPool = sync.Pool{New: func() any { return new(Evaluator) }}

// GetEvaluator returns a pooled evaluator bound to the given stream. Release
// it with Release when done; one evaluator per goroutine.
func GetEvaluator(jobs []Job, opts Options) *Evaluator {
	ev := evaluatorPool.Get().(*Evaluator)
	ev.SetStream(jobs, opts)
	return ev
}

// Release drops the evaluator's stream reference (so the pool does not pin
// caller job slices) and returns it to the pool; the internal buffers are
// kept for the next GetEvaluator.
func (ev *Evaluator) Release() {
	ev.jobs = nil
	ev.opts = Options{}
	evaluatorPool.Put(ev)
}
