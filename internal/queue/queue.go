// Package queue implements the operation model of §3.2 and the queueing
// simulator of Algorithm 1, generalized to sequences of low-power states
// with enter delays and to arbitrary service-rate frequency scaling.
//
// The model is a single-server FCFS queue. At frequency f a job of size s
// (seconds of work at f = 1) takes s/f^β seconds, where β is the frequency
// exponent (1 = CPU-bound, 0 = memory-bound). Whenever the queue empties the
// server walks down a configured sequence of low-power phases; phase i is
// entered τᵢ seconds after the queue empties. A job arrival triggers an
// immediate wake-up from the phase occupied at that instant, costing that
// phase's wake-up latency, during which the server consumes active power
// (the paper's conservative assumption) and serves nothing.
//
// Two entry points are provided: Simulate, the batch evaluator the policy
// manager uses (one call per candidate policy), and Engine, a resumable
// simulator that supports changing the configuration mid-run so that the
// SleepScale runtime can switch policies at epoch boundaries while queue
// backlog carries across epochs.
package queue

import (
	"errors"
	"fmt"
	"math"

	"sleepscale/internal/metrics"
)

// Job is one unit of work.
type Job struct {
	// Arrival is the absolute arrival time in seconds.
	Arrival float64
	// Size is the service demand in seconds of work at f = 1.
	Size float64
}

// SleepPhase is one low-power state in the idle-entry sequence, already
// resolved to concrete numbers for the frequency being simulated.
type SleepPhase struct {
	// Name labels the phase for residency reporting, e.g. "C6S0(i)".
	Name string
	// Power is the power drawn while resident in this phase, in watts.
	Power float64
	// WakeLatency is the time to return to active service, in seconds.
	WakeLatency float64
	// EnterAfter is τᵢ: seconds after the queue empties at which the
	// server enters this phase.
	EnterAfter float64
}

// Config fully describes one operating policy at one frequency.
type Config struct {
	// Frequency is the DVFS factor f ∈ (0, 1].
	Frequency float64
	// FreqExponent is β: the service rate scales as f^β.
	FreqExponent float64
	// ActivePower is the power while serving or waking, in watts.
	ActivePower float64
	// IdlePower is the power while idle before the first sleep phase is
	// entered (the server lingers in C0(a)S0(a)), in watts.
	IdlePower float64
	// Phases is the ordered low-power sequence; EnterAfter must be
	// non-decreasing. Empty means the server never sleeps (DVFS-only).
	Phases []SleepPhase
}

// Validate reports whether the configuration is simulatable.
func (c *Config) Validate() error {
	if !(c.Frequency > 0 && c.Frequency <= 1) {
		return fmt.Errorf("queue: frequency %g outside (0,1]", c.Frequency)
	}
	if c.FreqExponent < 0 || c.FreqExponent > 1 {
		return fmt.Errorf("queue: frequency exponent %g outside [0,1]", c.FreqExponent)
	}
	if c.ActivePower < 0 || c.IdlePower < 0 {
		return fmt.Errorf("queue: negative power")
	}
	prev := math.Inf(-1)
	for i, ph := range c.Phases {
		if ph.EnterAfter < 0 || ph.EnterAfter < prev {
			return fmt.Errorf("queue: phase %d (%s) enter delay %g not non-decreasing",
				i, ph.Name, ph.EnterAfter)
		}
		if ph.Power < 0 || ph.WakeLatency < 0 {
			return fmt.Errorf("queue: phase %d (%s) negative power or wake", i, ph.Name)
		}
		prev = ph.EnterAfter
	}
	return nil
}

// speed returns the effective service-rate multiplier f^β.
func (c *Config) speed() float64 {
	if c.FreqExponent == 0 {
		return 1
	}
	if c.FreqExponent == 1 {
		return c.Frequency
	}
	return math.Pow(c.Frequency, c.FreqExponent)
}

// ServiceTime reports how long a job of the given size takes under this
// configuration.
func (c *Config) ServiceTime(size float64) float64 { return size / c.speed() }

// Result summarizes one simulation run.
type Result struct {
	// Jobs is the number of completed jobs.
	Jobs int
	// MeanResponse is the mean response (sojourn) time in seconds.
	MeanResponse float64
	// ResponseP95 and ResponseP99 are response-time percentiles.
	ResponseP95 float64
	ResponseP99 float64
	// AvgPower is Energy / Duration, in watts.
	AvgPower float64
	// Energy is total energy in joules.
	Energy float64
	// Duration is the simulated wall-clock span in seconds.
	Duration float64
	// BusyTime, WakeTime and IdleTime partition Duration.
	BusyTime float64
	WakeTime float64
	IdleTime float64
	// Wakes counts wake-up transitions.
	Wakes int
	// Residency maps phase name → seconds of residency. The pre-sleep
	// idle window is reported under "idle-active".
	Residency map[string]float64
	// Responses is the full response-time sample for tail analysis.
	Responses *metrics.Sample
	// MeasuredUtilization is BusyTime / Duration.
	MeasuredUtilization float64
}

// PreSleepBucket is the residency bucket for idle time spent before the
// first sleep phase is entered.
const PreSleepBucket = "idle-active"

// Engine is a resumable FCFS simulator. Create with NewEngine, feed jobs in
// non-decreasing arrival order with Process, optionally switch configuration
// with SetConfigAt, and close with Finish.
type Engine struct {
	cfg Config

	freeAt float64 // server is busy until this time
	anchor float64 // start of the current idle schedule
	billed float64 // idle billed up to this absolute time

	energy   float64
	busy     float64
	wake     float64
	idle     float64
	wakes    int
	started  float64
	lastSeen float64

	residency *metrics.WeightedTally
	responses *metrics.Sample
}

// ErrOutOfOrder reports a job processed with an arrival before the previous
// job's arrival.
var ErrOutOfOrder = errors.New("queue: job arrivals out of order")

// NewEngine returns an engine that starts idle at time start under cfg.
func NewEngine(cfg Config, start float64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:       cfg,
		freeAt:    start,
		anchor:    start,
		billed:    start,
		started:   start,
		lastSeen:  start,
		residency: metrics.NewWeightedTally(),
		responses: metrics.NewSample(1024),
	}, nil
}

// billIdle charges idle energy for the absolute interval [from, to) against
// the idle schedule anchored at e.anchor, and updates residency buckets.
func (e *Engine) billIdle(from, to float64) {
	if to <= from {
		return
	}
	o1, o2 := from-e.anchor, to-e.anchor
	e.idle += to - from
	// Pre-sleep segment [0, τ₁).
	preEnd := math.Inf(1)
	if len(e.cfg.Phases) > 0 {
		preEnd = e.cfg.Phases[0].EnterAfter
	}
	if o1 < preEnd {
		seg := math.Min(o2, preEnd) - o1
		e.energy += seg * e.cfg.IdlePower
		e.residency.Add(PreSleepBucket, seg)
	}
	for i, ph := range e.cfg.Phases {
		start := ph.EnterAfter
		end := math.Inf(1)
		if i+1 < len(e.cfg.Phases) {
			end = e.cfg.Phases[i+1].EnterAfter
		}
		lo := math.Max(o1, start)
		hi := math.Min(o2, end)
		if hi > lo {
			e.energy += (hi - lo) * ph.Power
			e.residency.Add(ph.Name, hi-lo)
		}
	}
}

// occupiedPhase reports the index of the phase occupied at idle offset off,
// or -1 when the server has not yet entered the first phase.
func (e *Engine) occupiedPhase(off float64) int {
	idx := -1
	for i, ph := range e.cfg.Phases {
		if ph.EnterAfter <= off {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// Process serves one job and reports its response time. Jobs must be fed in
// non-decreasing arrival order.
func (e *Engine) Process(j Job) (response float64, err error) {
	if j.Arrival < e.lastSeen {
		return 0, fmt.Errorf("%w: %g after %g", ErrOutOfOrder, j.Arrival, e.lastSeen)
	}
	if j.Size < 0 {
		return 0, fmt.Errorf("queue: negative job size %g", j.Size)
	}
	e.lastSeen = j.Arrival
	svc := e.cfg.ServiceTime(j.Size)

	var start float64
	if j.Arrival > e.freeAt {
		// Idle gap [freeAt, arrival): bill the remaining unbilled portion,
		// then wake from whatever phase is occupied at the arrival instant.
		e.billIdle(e.billed, j.Arrival)
		e.billed = j.Arrival
		w := 0.0
		if k := e.occupiedPhase(j.Arrival - e.anchor); k >= 0 {
			w = e.cfg.Phases[k].WakeLatency
		}
		if w > 0 {
			e.wakes++
			e.wake += w
			e.energy += w * e.cfg.ActivePower
		}
		start = j.Arrival + w
	} else {
		start = e.freeAt
	}
	e.busy += svc
	e.energy += svc * e.cfg.ActivePower
	e.freeAt = start + svc
	// The queue empties at freeAt (as far as this job knows); the idle
	// schedule re-anchors there. A later arrival before freeAt simply
	// overwrites these fields via the busy branch above.
	e.anchor = e.freeAt
	e.billed = e.freeAt

	response = e.freeAt - j.Arrival
	e.responses.Add(response)
	return response, nil
}

// SetConfigAt switches the engine to a new configuration at absolute time t.
// Idle time before t is billed under the old configuration; the idle
// schedule re-anchors at t, so the sleep-entry clock restarts under the new
// policy (a frequency change requires brief activity anyway). Work already
// accepted (the current backlog horizon freeAt) completes at the old speed;
// the new configuration applies to jobs processed afterwards.
func (e *Engine) SetConfigAt(t float64, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if t < e.lastSeen {
		return fmt.Errorf("queue: config switch at %g before last arrival %g", t, e.lastSeen)
	}
	if t > e.freeAt {
		// Server is idle at the switch: close out the old schedule.
		e.billIdle(e.billed, t)
		e.anchor = t
		e.billed = t
	}
	e.lastSeen = t
	e.cfg = cfg
	return nil
}

// Config returns the engine's current configuration.
func (e *Engine) Config() Config { return e.cfg }

// FreeAt reports the time at which all accepted work completes.
func (e *Engine) FreeAt() float64 { return e.freeAt }

// Backlog reports the seconds of accepted-but-unfinished work as of time t.
func (e *Engine) Backlog(t float64) float64 {
	if e.freeAt <= t {
		return 0
	}
	return e.freeAt - t
}

// Snapshot captures running totals so a caller can compute per-epoch deltas.
type Snapshot struct {
	Energy   float64
	BusyTime float64
	WakeTime float64
	IdleTime float64
	Jobs     int
	Wakes    int
}

// Snapshot reports the engine's cumulative counters.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Energy:   e.energy,
		BusyTime: e.busy,
		WakeTime: e.wake,
		IdleTime: e.idle,
		Jobs:     e.responses.Count(),
		Wakes:    e.wakes,
	}
}

// Finish closes the run at time at (which must be ≥ the last departure),
// billing any trailing idle, and returns the aggregate result.
func (e *Engine) Finish(at float64) (Result, error) {
	if at < e.freeAt {
		at = e.freeAt
	}
	if at > e.freeAt {
		e.billIdle(e.billed, at)
		e.billed = at
	}
	dur := at - e.started
	res := Result{
		Jobs:         e.responses.Count(),
		MeanResponse: e.responses.Mean(),
		ResponseP95:  e.responses.Percentile(95),
		ResponseP99:  e.responses.Percentile(99),
		Energy:       e.energy,
		Duration:     dur,
		BusyTime:     e.busy,
		WakeTime:     e.wake,
		IdleTime:     e.idle,
		Wakes:        e.wakes,
		Residency:    map[string]float64{},
		Responses:    e.responses,
	}
	for _, name := range e.residency.Names() {
		res.Residency[name] = e.residency.Get(name)
	}
	if dur > 0 {
		res.AvgPower = e.energy / dur
		res.MeasuredUtilization = e.busy / dur
	}
	return res, nil
}

// Options tunes Simulate.
type Options struct {
	// Warmup discards the first Warmup jobs from the response metrics
	// (their energy still counts). The paper uses no warm-up; 0 matches it.
	Warmup int
}

// Simulate runs Algorithm 1: it serves jobs (which must be sorted by
// arrival) under cfg, starting idle at time 0, and ends the measurement at
// the last departure. This is the evaluator the policy manager calls once
// per candidate policy.
func Simulate(jobs []Job, cfg Config, opts Options) (Result, error) {
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		return Result{}, err
	}
	for i, j := range jobs {
		if _, err := eng.Process(j); err != nil {
			return Result{}, fmt.Errorf("job %d: %w", i, err)
		}
	}
	if opts.Warmup > 0 && opts.Warmup < eng.responses.Count() {
		warm := metrics.NewSample(eng.responses.Count() - opts.Warmup)
		vals := eng.responses.Values()
		// Values() order may be sorted after percentile queries; here no
		// percentile has been requested yet, so insertion order holds.
		for _, v := range vals[opts.Warmup:] {
			warm.Add(v)
		}
		eng.responses = warm
	}
	return eng.Finish(eng.freeAt)
}
