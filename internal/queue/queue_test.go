package queue

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

// handCfg is a hand-checkable configuration: one sleep phase entered 0.5 s
// after the queue empties, 30 W asleep, 0.1 s wake, 250 W active/idle.
func handCfg() Config {
	return Config{
		Frequency:    1,
		FreqExponent: 1,
		ActivePower:  250,
		IdlePower:    250,
		Phases: []SleepPhase{
			{Name: "sleep", Power: 30, WakeLatency: 0.1, EnterAfter: 0.5},
		},
	}
}

// TestHandComputedScenario walks a three-job schedule whose energy, times and
// responses were computed by hand (see comments).
func TestHandComputedScenario(t *testing.T) {
	jobs := []Job{
		{Arrival: 1, Size: 2},  // idle 0→1: pre 0.5·250 + sleep 0.5·30; wake 0.1·250
		{Arrival: 2, Size: 1},  // arrives busy, queues
		{Arrival: 10, Size: 1}, // idle 4.1→10: pre 0.5·250 + sleep 5.4·30; wake 0.1·250
	}
	res, err := Simulate(jobs, handCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Departures: J1 at 3.1 (start 1.1), J2 at 4.1, J3 at 11.1 (start 10.1).
	approx(t, "duration", res.Duration, 11.1, 1e-12)
	approx(t, "busy", res.BusyTime, 4, 1e-12)
	approx(t, "wake", res.WakeTime, 0.2, 1e-12)
	approx(t, "idle", res.IdleTime, 6.9, 1e-12)
	if res.Wakes != 2 {
		t.Errorf("wakes = %d, want 2", res.Wakes)
	}
	// Energy: idle1 125+15, wake1 25, svc 500+250, idle2 125+162, wake2 25, svc 250.
	approx(t, "energy", res.Energy, 1477, 1e-12)
	approx(t, "avg power", res.AvgPower, 1477/11.1, 1e-12)
	approx(t, "mean response", res.MeanResponse, (2.1+2.1+1.1)/3, 1e-12)
	approx(t, "residency sleep", res.Residency["sleep"], 0.5+5.4, 1e-12)
	approx(t, "residency pre", res.Residency[PreSleepBucket], 1.0, 1e-12)
	approx(t, "measured util", res.MeasuredUtilization, 4/11.1, 1e-12)
	if res.Jobs != 3 {
		t.Errorf("jobs = %d, want 3", res.Jobs)
	}
}

// TestShortIdleNoWake: an idle gap shorter than τ₁ must not trigger a wake.
func TestShortIdleNoWake(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Size: 1},
		{Arrival: 1.2, Size: 1}, // idle gap 0.2 < τ₁ = 0.5: still in C0(a)
	}
	res, err := Simulate(jobs, handCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes != 0 {
		t.Errorf("wakes = %d, want 0", res.Wakes)
	}
	approx(t, "J2 response", res.MeanResponse, 1.0, 1e-12) // both responses are 1.0
	// Idle 0.2 s at 250 W; no sleep residency.
	if res.Residency["sleep"] != 0 {
		t.Errorf("sleep residency = %v, want 0", res.Residency["sleep"])
	}
	approx(t, "energy", res.Energy, 2*250+0.2*250, 1e-12)
}

// TestEnterDelayBoundary: arrival exactly at τ₁ counts as entered.
func TestEnterDelayBoundary(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Size: 1},
		{Arrival: 1.5, Size: 1}, // idle offset exactly 0.5 = τ₁
	}
	res, err := Simulate(jobs, handCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes != 1 {
		t.Errorf("wakes = %d, want 1 (boundary arrival is in-phase)", res.Wakes)
	}
}

// TestImmediateSleepSequence exercises a two-phase sequence with τ₁ = 0:
// C0(i)S0(i) immediately, then C6S3 after 2 s.
func TestImmediateSleepSequence(t *testing.T) {
	cfg := Config{
		Frequency: 1, FreqExponent: 1, ActivePower: 250, IdlePower: 250,
		Phases: []SleepPhase{
			{Name: "shallow", Power: 135.5, WakeLatency: 0, EnterAfter: 0},
			{Name: "deep", Power: 28.1, WakeLatency: 1, EnterAfter: 2},
		},
	}
	jobs := []Job{
		{Arrival: 1, Size: 1},    // idle [0,1): all shallow (1 s), wake 0 → start 1
		{Arrival: 10, Size: 1},   // idle [2,10): shallow 2 s, deep 6 s, wake 1 → start 11
		{Arrival: 12.5, Size: 1}, // idle [12,12.5): shallow 0.5 s, wake 0
	}
	res, err := Simulate(jobs, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "shallow residency", res.Residency["shallow"], 1+2+0.5, 1e-12)
	approx(t, "deep residency", res.Residency["deep"], 6, 1e-12)
	if res.Wakes != 1 { // only the deep wake has positive latency
		t.Errorf("wakes = %d, want 1", res.Wakes)
	}
	// Responses: 1.0, 2.0 (wake 1 + svc 1), 1.0.
	approx(t, "mean response", res.MeanResponse, (1.0+2.0+1.0)/3, 1e-12)
	// Energy: 3 svc·250 + idle(1·135.5 + 2·135.5 + 6·28.1 + 0.5·135.5) + wake 1·250
	wantE := 750 + 3.5*135.5 + 6*28.1 + 250.0
	approx(t, "energy", res.Energy, wantE, 1e-12)
}

// TestMM1MeanResponse: with no sleep states and exponential traffic the
// simulator must reproduce the M/M/1 mean response 1/(µf − λ).
func TestMM1MeanResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		mu  = 10.0 // service rate at f=1
		rho = 0.5
		f   = 0.8
		n   = 400000
	)
	lambda := rho * mu
	jobs := make([]Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}
	cfg := Config{Frequency: f, FreqExponent: 1, ActivePower: 250, IdlePower: 135.5,
		Phases: []SleepPhase{{Name: "idle", Power: 135.5, WakeLatency: 0, EnterAfter: 0}}}
	res, err := Simulate(jobs, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (mu*f - lambda)
	approx(t, "E[R]", res.MeanResponse, want, 0.03)
	// Effective utilization is λ/(µf).
	approx(t, "util", res.MeasuredUtilization, lambda/(mu*f), 0.02)
	// Average power: ρ_eff·250 + (1−ρ_eff)·135.5 with w=0.
	rhoEff := lambda / (mu * f)
	approx(t, "E[P]", res.AvgPower, rhoEff*250+(1-rhoEff)*135.5, 0.02)
}

// TestMemoryBoundServiceIndependentOfFrequency: β=0 ⇒ service times ignore f.
func TestMemoryBoundServiceIndependentOfFrequency(t *testing.T) {
	jobs := []Job{{Arrival: 0, Size: 2}}
	for _, f := range []float64{0.2, 0.5, 1.0} {
		cfg := Config{Frequency: f, FreqExponent: 0, ActivePower: 100, IdlePower: 100}
		res, err := Simulate(jobs, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "response", res.MeanResponse, 2, 1e-12)
	}
}

// TestSubLinearScaling: β=0.5 ⇒ service time = size/√f.
func TestSubLinearScaling(t *testing.T) {
	cfg := Config{Frequency: 0.25, FreqExponent: 0.5, ActivePower: 1, IdlePower: 1}
	if got := cfg.ServiceTime(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("service time = %v, want 2 (1/√0.25)", got)
	}
	cfg.FreqExponent = 1
	if got := cfg.ServiceTime(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("service time = %v, want 4", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Frequency: 0, FreqExponent: 1},
		{Frequency: 1.5, FreqExponent: 1},
		{Frequency: 1, FreqExponent: -0.1},
		{Frequency: 1, FreqExponent: 2},
		{Frequency: 1, FreqExponent: 1, ActivePower: -1},
		{Frequency: 1, FreqExponent: 1, Phases: []SleepPhase{{EnterAfter: -1}}},
		{Frequency: 1, FreqExponent: 1, Phases: []SleepPhase{
			{EnterAfter: 2}, {EnterAfter: 1},
		}},
		{Frequency: 1, FreqExponent: 1, Phases: []SleepPhase{{Power: -5}}},
		{Frequency: 1, FreqExponent: 1, Phases: []SleepPhase{{WakeLatency: -1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := Config{Frequency: 0.5, FreqExponent: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestOutOfOrderArrivalsRejected(t *testing.T) {
	eng, err := NewEngine(handCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(Job{Arrival: 5, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(Job{Arrival: 4, Size: 1}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order arrival: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := eng.Process(Job{Arrival: 6, Size: -1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(nil, Config{}, Options{}); err == nil {
		t.Error("zero config accepted")
	}
}

// TestEngineSetConfigAt verifies mid-run policy switching: idle before the
// switch bills at the old schedule, the sleep clock re-anchors at the switch.
func TestEngineSetConfigAt(t *testing.T) {
	cfgA := Config{Frequency: 1, FreqExponent: 1, ActivePower: 200, IdlePower: 200,
		Phases: []SleepPhase{{Name: "a", Power: 50, WakeLatency: 0, EnterAfter: 0}}}
	cfgB := Config{Frequency: 0.5, FreqExponent: 1, ActivePower: 100, IdlePower: 100,
		Phases: []SleepPhase{{Name: "b", Power: 10, WakeLatency: 0.2, EnterAfter: 1}}}
	eng, err := NewEngine(cfgA, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 under A: arrives 1, size 1 → idle [0,1) in "a" (50 W), svc 1 at
	// 200 W, departs 2.
	if _, err := eng.Process(Job{Arrival: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	// Switch at t=4: idle [2,4) billed in "a" (2 s·50 W); anchor moves to 4.
	if err := eng.SetConfigAt(4, cfgB); err != nil {
		t.Fatal(err)
	}
	// Job 2 under B: arrives 6 → idle [4,6): pre-sleep [4,5) @100, "b" [5,6)
	// @10; wake 0.2 @100; svc 1/0.5=2 @100 → departs 8.2, response 2.2.
	resp, err := eng.Process(Job{Arrival: 6, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "response under B", resp, 2.2, 1e-12)
	res, err := eng.Finish(8.2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "residency a", res.Residency["a"], 3, 1e-12)
	approx(t, "residency b", res.Residency["b"], 1, 1e-12)
	approx(t, "residency pre", res.Residency[PreSleepBucket], 1, 1e-12)
	wantE := 1*50 + 1*200 + 2*50 + 1*100 + 1*10 + 0.2*100 + 2*100
	approx(t, "energy", res.Energy, wantE, 1e-12)
	if res.Wakes != 1 {
		t.Errorf("wakes = %d, want 1", res.Wakes)
	}
}

func TestSetConfigWhileBusyKeepsBacklogSpeed(t *testing.T) {
	cfgA := Config{Frequency: 1, FreqExponent: 1, ActivePower: 100, IdlePower: 100}
	cfgB := Config{Frequency: 0.5, FreqExponent: 1, ActivePower: 100, IdlePower: 100}
	eng, _ := NewEngine(cfgA, 0)
	if _, err := eng.Process(Job{Arrival: 0, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if got := eng.FreeAt(); got != 10 {
		t.Fatalf("freeAt = %v, want 10", got)
	}
	if err := eng.SetConfigAt(5, cfgB); err != nil {
		t.Fatal(err)
	}
	// In-flight work still departs at 10; a job queued behind it runs at 0.5.
	resp, err := eng.Process(Job{Arrival: 6, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "queued response", resp, 10+2-6, 1e-12)
	// Remaining work at t=6: 4 s of the in-flight job plus 2 s queued.
	if got := eng.Backlog(6); math.Abs(got-6) > 1e-12 {
		t.Errorf("backlog at 6 = %v, want 6", got)
	}
	if got := eng.Backlog(100); got != 0 {
		t.Errorf("backlog after drain = %v, want 0", got)
	}
}

func TestSetConfigBeforeLastArrivalRejected(t *testing.T) {
	eng, _ := NewEngine(handCfg(), 0)
	if _, err := eng.Process(Job{Arrival: 5, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetConfigAt(4, handCfg()); err == nil {
		t.Error("switch before last arrival accepted")
	}
	bad := Config{}
	if err := eng.SetConfigAt(6, bad); err == nil {
		t.Error("invalid config accepted in switch")
	}
}

func TestWarmupDiscardsEarlyResponses(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Size: 5},  // response 5
		{Arrival: 10, Size: 1}, // response 1
		{Arrival: 20, Size: 1}, // response 1
	}
	cfg := Config{Frequency: 1, FreqExponent: 1, ActivePower: 1, IdlePower: 1}
	res, err := Simulate(jobs, cfg, Options{Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 2 {
		t.Errorf("jobs after warmup = %d, want 2", res.Jobs)
	}
	approx(t, "mean response", res.MeanResponse, 1, 1e-12)
}

// Property: time partition busy+wake+idle = duration, and energy is bounded
// by [minPower, maxPower]·duration, for random job streams and configs.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nf, np uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := 0.2 + float64(nf)/255*0.8
		nPhases := int(np) % 3
		cfg := Config{
			Frequency: freq, FreqExponent: 1,
			ActivePower: 250, IdlePower: 250,
		}
		tau := 0.0
		pw := 150.0
		for i := 0; i < nPhases; i++ {
			tau += rng.Float64()
			pw /= 2
			cfg.Phases = append(cfg.Phases, SleepPhase{
				Name: string(rune('a' + i)), Power: pw,
				WakeLatency: rng.Float64() * 0.1, EnterAfter: tau,
			})
		}
		n := 200
		jobs := make([]Job, n)
		tnow := 0.0
		for i := range jobs {
			tnow += rng.ExpFloat64() * 0.5
			jobs[i] = Job{Arrival: tnow, Size: rng.ExpFloat64() * 0.2}
		}
		res, err := Simulate(jobs, cfg, Options{})
		if err != nil {
			return false
		}
		if math.Abs(res.BusyTime+res.WakeTime+res.IdleTime-res.Duration) > 1e-6*res.Duration {
			return false
		}
		minP, maxP := 250.0, 250.0
		for _, ph := range cfg.Phases {
			if ph.Power < minP {
				minP = ph.Power
			}
		}
		if res.Energy < minP*res.Duration-1e-6 || res.Energy > maxP*res.Duration+1e-6 {
			return false
		}
		// Residency buckets partition idle time.
		var idleSum float64
		for _, v := range res.Residency {
			idleSum += v
		}
		return math.Abs(idleSum-res.IdleTime) < 1e-6*math.Max(1, res.IdleTime)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: response time of every job is at least its service time, and
// departures respect FCFS (non-decreasing).
func TestFCFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := handCfg()
		eng, err := NewEngine(cfg, 0)
		if err != nil {
			return false
		}
		tnow, prevDep := 0.0, 0.0
		for i := 0; i < 300; i++ {
			tnow += rng.ExpFloat64() * 0.3
			size := rng.ExpFloat64() * 0.2
			resp, err := eng.Process(Job{Arrival: tnow, Size: size})
			if err != nil {
				return false
			}
			if resp < size-1e-12 {
				return false
			}
			dep := tnow + resp
			if dep < prevDep-1e-12 {
				return false
			}
			prevDep = dep
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: lowering frequency never lowers mean response time (CPU-bound,
// same job stream, no wake latency differences).
func TestFrequencyMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	jobs := make([]Job, 500)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64()
		jobs[i] = Job{Arrival: tnow, Size: rng.ExpFloat64() * 0.3}
	}
	base := Config{FreqExponent: 1, ActivePower: 1, IdlePower: 1}
	prev := -1.0
	for _, f := range []float64{1.0, 0.8, 0.6, 0.5} {
		cfg := base
		cfg.Frequency = f
		res, err := Simulate(jobs, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.MeanResponse < prev-1e-9 {
			t.Fatalf("mean response decreased when slowing to f=%v", f)
		}
		prev = res.MeanResponse
	}
}

func TestEmptyJobStream(t *testing.T) {
	res, err := Simulate(nil, handCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 0 || res.Duration != 0 || res.Energy != 0 {
		t.Errorf("empty stream should produce zero result, got %+v", res)
	}
}

func TestFinishBillsTrailingIdle(t *testing.T) {
	eng, _ := NewEngine(handCfg(), 0)
	if _, err := eng.Process(Job{Arrival: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish(3) // departs at 1; trailing idle [1,3): pre 0.5, sleep 1.5
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "duration", res.Duration, 3, 1e-12)
	approx(t, "energy", res.Energy, 250+0.5*250+1.5*30, 1e-12)
	// Finish before freeAt clamps to freeAt.
	eng2, _ := NewEngine(handCfg(), 0)
	if _, err := eng2.Process(Job{Arrival: 0, Size: 2}); err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Finish(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "clamped duration", res2.Duration, 2, 1e-12)
}

func TestSnapshotDeltas(t *testing.T) {
	eng, _ := NewEngine(handCfg(), 0)
	s0 := eng.Snapshot()
	if s0.Jobs != 0 || s0.Energy != 0 {
		t.Fatalf("fresh snapshot not zero: %+v", s0)
	}
	if _, err := eng.Process(Job{Arrival: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	s1 := eng.Snapshot()
	if s1.Jobs != 1 {
		t.Errorf("jobs = %d, want 1", s1.Jobs)
	}
	if s1.Energy <= s0.Energy {
		t.Errorf("energy did not increase")
	}
}

// TestWarmupLongerThanRunKeepsFullSample pins the pre-existing guard: a
// warm-up spanning the whole run (or more) leaves the sample untrimmed.
func TestWarmupLongerThanRunKeepsFullSample(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Size: 5},
		{Arrival: 10, Size: 1},
	}
	cfg := Config{Frequency: 1, FreqExponent: 1, ActivePower: 1, IdlePower: 1}
	for _, warm := range []int{2, 3, 100} {
		res, err := Simulate(jobs, cfg, Options{Warmup: warm})
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs != 2 {
			t.Errorf("Warmup=%d: jobs = %d, want full sample of 2", warm, res.Jobs)
		}
		approx(t, "mean response", res.MeanResponse, 3, 1e-12)
	}
}

// chunkedSource adapts a job slice to JobSource with deliberately awkward
// chunk boundaries, for SimulateSource equivalence.
type chunkedSource struct {
	jobs []Job
	pos  int
	step int
}

func (s *chunkedSource) Next(buf []Job) (int, bool) {
	lim := s.step
	if lim > len(buf) {
		lim = len(buf)
	}
	n := copy(buf[:lim], s.jobs[s.pos:])
	s.pos += n
	return n, s.pos < len(s.jobs)
}

// TestSimulateSourceMatchesSimulate pins the streaming batch driver to the
// materialized Simulate bit for bit, across chunk shapes and warm-up trims.
func TestSimulateSourceMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	jobs := make([]Job, 5000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() * 2
		jobs[i] = Job{Arrival: tnow, Size: rng.ExpFloat64() * 0.5}
	}
	for _, opts := range []Options{{}, {Warmup: 100}} {
		want, err := Simulate(jobs, handCfg(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range []int{1, 7, 100000} {
			got, err := SimulateSource(&chunkedSource{jobs: jobs, step: step}, handCfg(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
				got.ResponseP95 != want.ResponseP95 || got.Energy != want.Energy ||
				got.Duration != want.Duration || got.Wakes != want.Wakes {
				t.Fatalf("step %d warmup %d diverges:\n got %+v\nwant %+v",
					step, opts.Warmup, got, want)
			}
		}
	}
}

// erroringSource exposes a deferred error after its jobs run out.
type erroringSource struct{ n int }

func (s *erroringSource) Next(buf []Job) (int, bool) {
	if s.n >= 3 || len(buf) == 0 {
		return 0, false
	}
	buf[0] = Job{Arrival: float64(s.n), Size: 0.1}
	s.n++
	return 1, true
}
func (s *erroringSource) Err() error { return errors.New("synthetic source failure") }

func TestSimulateSourceSurfacesSourceError(t *testing.T) {
	if _, err := SimulateSource(&erroringSource{}, handCfg(), Options{}); err == nil {
		t.Fatal("source error not surfaced")
	}
}

// TestNextFreeAtMatchesEngine pins the dispatch shadow recursion to the
// engine bit for bit: over a random multi-phase stream, Config.NextFreeAt
// applied to the previous FreeAt must land exactly on the engine's FreeAt
// after every Process — the property the farm package's parallel JSQ mode
// rests on.
func TestNextFreeAtMatchesEngine(t *testing.T) {
	cfg := Config{
		Frequency:    0.7,
		FreqExponent: 1,
		ActivePower:  200,
		IdlePower:    140,
		Phases: []SleepPhase{
			{Name: "shallow", Power: 80, WakeLatency: 1e-3, EnterAfter: 0},
			{Name: "deep", Power: 15, WakeLatency: 5, EnterAfter: 2},
		},
	}
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	tnow, shadow := 0.0, 0.0
	for i := 0; i < 5000; i++ {
		tnow += rng.ExpFloat64() * 0.8
		j := Job{Arrival: tnow, Size: rng.ExpFloat64() * 0.3}
		shadow = cfg.NextFreeAt(shadow, j)
		if _, err := eng.Process(j); err != nil {
			t.Fatal(err)
		}
		if got := eng.FreeAt(); got != shadow {
			t.Fatalf("job %d: shadow freeAt %.17g, engine %.17g", i, shadow, got)
		}
	}
}

// TestNextFreeAtPhaseless covers the no-sleep configuration: the recursion
// must still match (wake latency is zero, idle entry never happens).
func TestNextFreeAtPhaseless(t *testing.T) {
	cfg := Config{Frequency: 1, FreqExponent: 1, ActivePower: 100, IdlePower: 50}
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	shadow := 0.0
	for i, j := range []Job{{Arrival: 1, Size: 2}, {Arrival: 1.5, Size: 0.25}, {Arrival: 9, Size: 1}} {
		shadow = cfg.NextFreeAt(shadow, j)
		if _, err := eng.Process(j); err != nil {
			t.Fatal(err)
		}
		if got := eng.FreeAt(); got != shadow {
			t.Fatalf("job %d: shadow freeAt %.17g, engine %.17g", i, shadow, got)
		}
	}
}
