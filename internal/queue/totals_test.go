package queue

import (
	"math"
	"testing"
)

func totalsTestConfig() Config {
	return Config{
		Frequency:    0.8,
		FreqExponent: 1,
		ActivePower:  200,
		IdlePower:    120,
		Phases: []SleepPhase{
			{Name: "halt", Power: 60, WakeLatency: 1e-5, EnterAfter: 0},
			{Name: "deep", Power: 15, WakeLatency: 0.5, EnterAfter: 2},
		},
	}
}

func totalsTestJobs() []Job {
	return []Job{
		{Arrival: 0.5, Size: 1}, {Arrival: 0.7, Size: 0.4}, {Arrival: 5, Size: 0.2},
		{Arrival: 30, Size: 2}, {Arrival: 30.1, Size: 0.1}, {Arrival: 80, Size: 0.3},
	}
}

// TestTotalsAtMatchesFinish pins TotalsAt at the run's end to
// FinishSummary's totals, and pins it as read-only: interleaving TotalsAt
// probes mid-run must not change anything a control run reports.
func TestTotalsAtMatchesFinish(t *testing.T) {
	jobs := totalsTestJobs()
	end := 120.0

	control, err := NewEngine(totalsTestConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := control.Process(j); err != nil {
			t.Fatal(err)
		}
	}
	want := control.FinishSummary(end)

	probed, err := NewEngine(totalsTestConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev Snapshot
	for i, j := range jobs {
		if _, err := probed.Process(j); err != nil {
			t.Fatal(err)
		}
		// Probe at an instant strictly between this arrival and the next —
		// often inside an idle period — twice, to catch mutation.
		at := j.Arrival + 1
		s1 := probed.TotalsAt(at)
		s2 := probed.TotalsAt(at)
		if s1 != s2 {
			t.Fatalf("job %d: TotalsAt not idempotent: %+v vs %+v", i, s1, s2)
		}
		if s1.Energy < prev.Energy || s1.IdleTime < prev.IdleTime {
			t.Fatalf("job %d: totals decreased: %+v after %+v", i, s1, prev)
		}
		prev = s1
	}
	got := probed.TotalsAt(end)
	if got.Energy != want.Energy || got.BusyTime != want.BusyTime ||
		got.WakeTime != want.WakeTime || got.IdleTime != want.IdleTime {
		t.Fatalf("TotalsAt(end) = %+v, want energy=%g busy=%g wake=%g idle=%g",
			got, want.Energy, want.BusyTime, want.WakeTime, want.IdleTime)
	}
	// The probes must not have perturbed the run itself.
	gotSum := probed.FinishSummary(end)
	if gotSum != want {
		t.Fatalf("probed run summary %+v != control %+v", gotSum, want)
	}
}

// TestTotalsAtSplitsIdleAtBoundary pins the delta semantics: the idle energy
// between two probes inside one idle period equals the phase schedule's
// price for exactly that interval.
func TestTotalsAtSplitsIdleAtBoundary(t *testing.T) {
	cfg := totalsTestConfig()
	eng, err := NewEngine(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(Job{Arrival: 0, Size: 0.8}); err != nil {
		t.Fatal(err)
	}
	dep := eng.FreeAt() // idle schedule anchors here
	// Probe spanning the halt→deep transition at dep+2.
	a := eng.TotalsAt(dep + 1)
	b := eng.TotalsAt(dep + 5)
	wantDelta := 1*60.0 + 3*15.0 // 1s more halt at 60 W, 3s deep at 15 W
	if delta := b.Energy - a.Energy; math.Abs(delta-wantDelta) > 1e-9 {
		t.Fatalf("idle delta = %g J, want %g", delta, wantDelta)
	}
	if d := b.IdleTime - a.IdleTime; math.Abs(d-4) > 1e-12 {
		t.Fatalf("idle time delta = %g, want 4", d)
	}
	// Probing before the billed horizon returns the plain counters.
	if got := eng.TotalsAt(dep - 1); got != eng.Snapshot() {
		t.Fatalf("TotalsAt before billed horizon = %+v, want %+v", got, eng.Snapshot())
	}
}
