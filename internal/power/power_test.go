package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{Active, "C0(a)S0(a)"},
		{OperatingIdle, "C0(i)S0(i)"},
		{Halt, "C1S0(i)"},
		{Sleep, "C3S0(i)"},
		{DeepSleep, "C6S0(i)"},
		{DeeperSleep, "C6S3"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestUnknownStateStrings(t *testing.T) {
	if got := CPUState(99).String(); got != "CPUState(99)" {
		t.Errorf("unknown CPU state string = %q", got)
	}
	if got := PlatformState(99).String(); got != "PlatformState(99)" {
		t.Errorf("unknown platform state string = %q", got)
	}
}

func TestStateValidity(t *testing.T) {
	// Table 3: S0(a)↔C0(a), S0(i)↔ other CPU states, S3↔C6.
	valid := []State{Active, OperatingIdle, Halt, Sleep, DeepSleep, DeeperSleep}
	for _, s := range valid {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	invalid := []State{
		{C0a, S0i}, {C0i, S0a}, {C1, S3}, {C3, S3}, {C0i, S3}, {C6, S0a},
	}
	for _, s := range invalid {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
	if (State{CPU: C0a, Platform: PlatformState(9)}).Valid() {
		t.Error("unknown platform state should be invalid")
	}
}

// TestXeonTables pins the Table 2 numbers: CPU state powers at f=1 and the
// platform totals, plus the §4.2 wake latencies (Table 4 selections).
func TestXeonTables(t *testing.T) {
	p := Xeon()
	cpu := []struct {
		c    CPUState
		f    float64
		want float64
	}{
		{C0a, 1, 130}, // 130·V²f at V=f=1
		{C0i, 1, 75},
		{C1, 1, 47},
		{C3, 1, 22},
		{C6, 1, 15},
		{C0a, 0.5, 130 * 0.125}, // cubic scaling
		{C1, 0.5, 47 * 0.25},    // quadratic leakage
		{C3, 0.5, 22},           // constants ignore f
		{C6, 0.2, 15},
	}
	for _, c := range cpu {
		if got := p.CPUPower(c.c, c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CPUPower(%v, %v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
	plat := []struct {
		s    PlatformState
		want float64
	}{
		{S0a, 120}, {S0i, 60.5}, {S3, 13.1},
	}
	for _, c := range plat {
		if got := p.PlatformPower(c.s); got != c.want {
			t.Errorf("PlatformPower(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	wake := []struct {
		s    State
		want float64
	}{
		{OperatingIdle, 0},
		{Halt, 10e-6},
		{Sleep, 100e-6},
		{DeepSleep, 1e-3},
		{DeeperSleep, 1},
	}
	for _, c := range wake {
		if got := p.Wake(c.s); got != c.want {
			t.Errorf("Wake(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestXeonCombinedStatePowers(t *testing.T) {
	p := Xeon()
	// The running-text example: C0(i)S0(i) = 75·V²f + platform idle. We use
	// the table total 60.5 (see DESIGN.md §2.5 on the 52.7 W discrepancy).
	if got, want := p.SystemPower(OperatingIdle, 1), 75+60.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("C0(i)S0(i) at f=1 = %v, want %v", got, want)
	}
	if got, want := p.SystemPower(DeeperSleep, 1), 15+13.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("C6S3 = %v, want %v", got, want)
	}
	if got, want := p.ActivePower(1), 130+120.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("active at f=1 = %v, want %v", got, want)
	}
	if got, want := p.ActivePower(0.5), 130*0.125+120; math.Abs(got-want) > 1e-12 {
		t.Errorf("active at f=0.5 = %v, want %v", got, want)
	}
}

func TestMonotonePowerWakeTradeoff(t *testing.T) {
	for _, p := range []*Profile{Xeon(), Atom()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		states := LowPowerStates()
		for i := 1; i < len(states); i++ {
			if !p.DeeperThan(states[i], states[i-1]) {
				t.Errorf("%s: %v should be deeper than %v", p.Name, states[i], states[i-1])
			}
		}
	}
}

func TestAtomPropertySmallCPUDynamicRange(t *testing.T) {
	// §4.2: Atom has small processor power relative to platform power, which
	// drives the "run fast and sleep immediately" behaviour. Verify the
	// profile encodes that: CPU dynamic swing / platform power is much
	// smaller than on Xeon.
	xe, at := Xeon(), Atom()
	xeRatio := xe.CPUActiveCoeff / xe.PlatformActivePower
	atRatio := at.CPUActiveCoeff / at.PlatformActivePower
	if atRatio >= xeRatio/2 {
		t.Errorf("Atom CPU/platform ratio %.3f not ≪ Xeon's %.3f", atRatio, xeRatio)
	}
}

func TestValidateCatchesBrokenProfiles(t *testing.T) {
	p := Xeon()
	p.CPUDeepSleepPower = 500 // deeper state now costs more
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted non-monotone powers")
	}
	p = Xeon()
	p.WakeLatency[DeeperSleep] = 0 // deeper state now wakes faster
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted non-monotone wake latencies")
	}
	p = Xeon()
	p.CPUActiveCoeff = 0
	p.PlatformActivePower = 1
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted active <= idle power")
	}
}

func TestUnknownStatePowerIsNaN(t *testing.T) {
	p := Xeon()
	if !math.IsNaN(p.CPUPower(CPUState(42), 1)) {
		t.Error("unknown CPU state should yield NaN")
	}
	if !math.IsNaN(p.PlatformPower(PlatformState(42))) {
		t.Error("unknown platform state should yield NaN")
	}
}

// Property: system power is monotone non-decreasing in f for every state
// (dynamic terms only grow with frequency).
func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	p := Xeon()
	f := func(a, b uint16) bool {
		f1 := float64(a)/65535*0.99 + 0.01
		f2 := float64(b)/65535*0.99 + 0.01
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		for _, s := range append(LowPowerStates(), Active) {
			if p.SystemPower(s, f1) > p.SystemPower(s, f2)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the constant-power deep states (C3S0(i), C6S0(i), C6S3) keep
// their shallow-to-deep ordering at every frequency, and active power always
// dominates operating-idle power. Note the full P1 > … > Pn ordering only
// holds at f = 1: at low f the C0(i) cubic dynamic term drops below the C1
// leakage and even the C3 constant — which is exactly why the paper finds
// C0(i)S0(i) optimal at low utilization (Figure 6).
func TestDeepStateOrderingAtAnyFrequencyProperty(t *testing.T) {
	for _, p := range []*Profile{Xeon(), Atom()} {
		f := func(a uint16) bool {
			fr := float64(a)/65535*0.99 + 0.01
			deep := []State{Sleep, DeepSleep, DeeperSleep}
			for i := 1; i < len(deep); i++ {
				if p.SystemPower(deep[i], fr) > p.SystemPower(deep[i-1], fr)+1e-12 {
					return false
				}
			}
			return p.ActivePower(fr) >= p.SystemPower(OperatingIdle, fr)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestLowFrequencyShallowStateWins pins the crossover the paper's Figure 6
// exploits: at f = 0.3 the Xeon C0(i)S0(i) power is below C1S0(i) and even
// C3S0(i), so the shallowest state is the cheapest way to idle when DVFS has
// already slowed the clock.
func TestLowFrequencyShallowStateWins(t *testing.T) {
	p := Xeon()
	f := 0.3
	if p.SystemPower(OperatingIdle, f) >= p.SystemPower(Halt, f) {
		t.Errorf("at f=%v C0(i)S0(i)=%v should beat C1S0(i)=%v",
			f, p.SystemPower(OperatingIdle, f), p.SystemPower(Halt, f))
	}
	if p.SystemPower(OperatingIdle, f) >= p.SystemPower(Sleep, f) {
		t.Errorf("at f=%v C0(i)S0(i)=%v should beat C3S0(i)=%v",
			f, p.SystemPower(OperatingIdle, f), p.SystemPower(Sleep, f))
	}
}

func TestLowPowerStatesCopy(t *testing.T) {
	a := LowPowerStates()
	a[0] = DeeperSleep
	b := LowPowerStates()
	if b[0] != OperatingIdle {
		t.Error("LowPowerStates must return a fresh slice")
	}
}
