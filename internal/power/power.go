// Package power models the CPU and platform power states of §3.1 of the
// SleepScale paper: Tables 1 (CPU states), 2 (component powers), 3 (platform
// states) and 4 (wake-up latencies).
//
// Conventions: voltage scales linearly with the DVFS factor f ∈ (0,1], so
// dynamic power terms written as "130·V²·f" in the paper become 130·f³ here,
// and the C1 leakage term "47·V²" becomes 47·f². All powers are watts, all
// latencies seconds.
package power

import (
	"fmt"
	"math"
)

// CPUState is one of the processor power states of Table 1.
type CPUState int

// CPU power states, shallow to deep.
const (
	// C0a is the operating active state: work in progress, DVFS active.
	C0a CPUState = iota
	// C0i is the operating idle state: no work, clock running at the last
	// DVFS setting.
	C0i
	// C1 is the halt state: clock gated, only leakage power.
	C1
	// C3 is the sleep state: caches flushed, architectural state kept.
	C3
	// C6 is the deep sleep state: state saved to RAM, core voltage zero.
	C6
)

// String implements fmt.Stringer.
func (c CPUState) String() string {
	switch c {
	case C0a:
		return "C0(a)"
	case C0i:
		return "C0(i)"
	case C1:
		return "C1"
	case C3:
		return "C3"
	case C6:
		return "C6"
	}
	return fmt.Sprintf("CPUState(%d)", int(c))
}

// PlatformState is one of the platform power states of Table 3.
type PlatformState int

// Platform power states.
const (
	// S0a is the active platform state, associated with C0(a) only.
	S0a PlatformState = iota
	// S0i is the idle platform state, associated with the other CPU states.
	S0i
	// S3 is platform sleep (RAM powered), associated with C6 only.
	S3
)

// String implements fmt.Stringer.
func (p PlatformState) String() string {
	switch p {
	case S0a:
		return "S0(a)"
	case S0i:
		return "S0(i)"
	case S3:
		return "S3"
	}
	return fmt.Sprintf("PlatformState(%d)", int(p))
}

// State is a combined CPU+platform state such as C0(i)S0(i).
type State struct {
	CPU      CPUState
	Platform PlatformState
}

// Combined states used throughout the paper.
var (
	// Active is C0(a)S0(a), the serving state.
	Active = State{C0a, S0a}
	// OperatingIdle is C0(i)S0(i), the shallowest low-power state.
	OperatingIdle = State{C0i, S0i}
	// Halt is C1S0(i).
	Halt = State{C1, S0i}
	// Sleep is C3S0(i).
	Sleep = State{C3, S0i}
	// DeepSleep is C6S0(i).
	DeepSleep = State{C6, S0i}
	// DeeperSleep is C6S3, the deepest state considered at this timescale.
	DeeperSleep = State{C6, S3}
)

// String implements fmt.Stringer, e.g. "C0(i)S0(i)".
func (s State) String() string {
	// The combined states the policy space enumerates return interned
	// constants: the hot policy-evaluation loop stringifies states per
	// candidate and must not allocate.
	switch s {
	case State{C0a, S0a}:
		return "C0(a)S0(a)"
	case State{C0i, S0i}:
		return "C0(i)S0(i)"
	case State{C1, S0i}:
		return "C1S0(i)"
	case State{C3, S0i}:
		return "C3S0(i)"
	case State{C6, S0i}:
		return "C6S0(i)"
	case State{C6, S3}:
		return "C6S3"
	}
	return s.CPU.String() + s.Platform.String()
}

// Valid reports whether the platform state supports the CPU state per
// Table 3: S0(a)↔C0(a); S0(i)↔{C0(i),C1,C3,C6}; S3↔C6.
func (s State) Valid() bool {
	switch s.Platform {
	case S0a:
		return s.CPU == C0a
	case S0i:
		return s.CPU != C0a
	case S3:
		return s.CPU == C6
	}
	return false
}

// LowPowerStates lists every combined low-power state the paper studies,
// shallow to deep.
func LowPowerStates() []State {
	return []State{OperatingIdle, Halt, Sleep, DeepSleep, DeeperSleep}
}

// Profile captures the power characteristics of a processor + platform the
// way Table 2 does: per-CPU-state power (with its frequency dependence) and
// per-platform-state totals, plus the wake-up latency of each combined state
// (Table 4 values as used in §4.2).
type Profile struct {
	// Name identifies the profile ("Xeon", "Atom").
	Name string

	// CPUActiveCoeff is the C0(a) dynamic coefficient: power = coeff·f³.
	CPUActiveCoeff float64
	// CPUIdleCoeff is the C0(i) dynamic coefficient: power = coeff·f³.
	CPUIdleCoeff float64
	// CPUHaltCoeff is the C1 leakage coefficient: power = coeff·f².
	CPUHaltCoeff float64
	// CPUSleepPower is the constant C3 power.
	CPUSleepPower float64
	// CPUDeepSleepPower is the constant C6 power.
	CPUDeepSleepPower float64

	// PlatformActivePower is the S0(a) total (Table 2 bottom row).
	PlatformActivePower float64
	// PlatformIdlePower is the S0(i) total.
	PlatformIdlePower float64
	// PlatformSleepPower is the S3 total.
	PlatformSleepPower float64

	// WakeLatency maps each combined low-power state to its average
	// wake-up latency in seconds (§4.2 choices from the Table 4 ranges).
	WakeLatency map[State]float64
}

// Xeon returns the Intel Xeon E5 profile of Table 2 with the §4.2 wake-up
// latencies: C1S0(i) 10 µs, C3S0(i) 100 µs, C6S0(i) 1 ms, C6S3 1 s.
// C0(i)S0(i) keeps the clock running, so waking from it is free.
func Xeon() *Profile {
	return &Profile{
		Name:                "Xeon",
		CPUActiveCoeff:      130,
		CPUIdleCoeff:        75,
		CPUHaltCoeff:        47,
		CPUSleepPower:       22,
		CPUDeepSleepPower:   15,
		PlatformActivePower: 120,
		PlatformIdlePower:   60.5,
		PlatformSleepPower:  13.1,
		WakeLatency: map[State]float64{
			OperatingIdle: 0,
			Halt:          10e-6,
			Sleep:         100e-6,
			DeepSleep:     1e-3,
			DeeperSleep:   1,
		},
	}
}

// Atom returns a netbook-class profile with a small CPU dynamic range
// relative to platform power, the property §4.2 attributes to Atom systems
// (from Guevara et al.). The paper does not tabulate these numbers; this is
// the documented substitution from DESIGN.md §2.3. Wake latencies follow the
// same Table 4 ranges as the Xeon profile.
func Atom() *Profile {
	return &Profile{
		Name:                "Atom",
		CPUActiveCoeff:      8,
		CPUIdleCoeff:        4,
		CPUHaltCoeff:        2,
		CPUSleepPower:       1,
		CPUDeepSleepPower:   0.5,
		PlatformActivePower: 38,
		PlatformIdlePower:   21,
		PlatformSleepPower:  3,
		WakeLatency: map[State]float64{
			OperatingIdle: 0,
			Halt:          10e-6,
			Sleep:         100e-6,
			DeepSleep:     1e-3,
			DeeperSleep:   1,
		},
	}
}

// CPUPower reports the CPU power in state c at DVFS factor f.
func (p *Profile) CPUPower(c CPUState, f float64) float64 {
	switch c {
	case C0a:
		return p.CPUActiveCoeff * f * f * f
	case C0i:
		return p.CPUIdleCoeff * f * f * f
	case C1:
		return p.CPUHaltCoeff * f * f
	case C3:
		return p.CPUSleepPower
	case C6:
		return p.CPUDeepSleepPower
	}
	return math.NaN()
}

// PlatformPower reports the platform power in state s.
func (p *Profile) PlatformPower(s PlatformState) float64 {
	switch s {
	case S0a:
		return p.PlatformActivePower
	case S0i:
		return p.PlatformIdlePower
	case S3:
		return p.PlatformSleepPower
	}
	return math.NaN()
}

// SystemPower reports the total power of combined state s at DVFS factor f.
// For example the Xeon C0(i)S0(i) power is 75·f³ + 60.5 W.
func (p *Profile) SystemPower(s State, f float64) float64 {
	return p.CPUPower(s.CPU, f) + p.PlatformPower(s.Platform)
}

// ActivePower reports the serving power, i.e. SystemPower(Active, f). The
// paper's conservative assumption bills wake-up transitions at this power.
func (p *Profile) ActivePower(f float64) float64 {
	return p.SystemPower(Active, f)
}

// Wake reports the average wake-up latency of combined state s, or 0 when
// the profile does not list s (waking from the active state is free).
func (p *Profile) Wake(s State) float64 { return p.WakeLatency[s] }

// DeeperThan reports whether state a saves at least as much power as b at
// every frequency, which for the states of this model reduces to comparing
// powers at f = 1.
func (p *Profile) DeeperThan(a, b State) bool {
	return p.SystemPower(a, 1) <= p.SystemPower(b, 1)
}

// Validate checks profile invariants: the monotone trade-off the paper's
// model requires (deeper states consume less power but take longer to wake,
// P1 > P2 > … > Pn and w1 < w2 < … < wn at f = 1) plus positive powers.
func (p *Profile) Validate() error {
	states := LowPowerStates()
	for i := 1; i < len(states); i++ {
		pa, pb := p.SystemPower(states[i-1], 1), p.SystemPower(states[i], 1)
		if pb > pa {
			return fmt.Errorf("power: %s power %.3g exceeds shallower %s power %.3g",
				states[i], pb, states[i-1], pa)
		}
		wa, wb := p.Wake(states[i-1]), p.Wake(states[i])
		if wb < wa {
			return fmt.Errorf("power: %s wake %.3g below shallower %s wake %.3g",
				states[i], wb, states[i-1], wa)
		}
	}
	if p.ActivePower(1) <= p.SystemPower(OperatingIdle, 1) {
		return fmt.Errorf("power: active power must exceed idle power")
	}
	for _, s := range states {
		if p.SystemPower(s, 1) <= 0 {
			return fmt.Errorf("power: nonpositive power for %s", s)
		}
	}
	return nil
}
