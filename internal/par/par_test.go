package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCoversEveryIndexOnce: the ticket counter must hand every index to
// exactly one executor, for sizes spanning inline-serial through oversized
// pools and for worker bounds above and below the pool size.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 13} {
		for _, maxWorkers := range []int{0, 1, 3} {
			p := New(size)
			counts := make([]int32, 2000)
			p.Run(len(counts), maxWorkers, func(_, i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("size=%d max=%d: index %d executed %d times", size, maxWorkers, i, c)
				}
			}
			p.Close()
		}
	}
}

// TestRunShardFairness: with tasks long enough for the scheduler to rotate
// executors, the dynamic ticket counter spreads work across the pool. The
// pool guarantees nothing about which executor takes which shard, so the
// distribution assertion (more than one executor participated, none hoarded
// the whole stream) is retried a few times: only a systematic failure —
// every attempt served by a single executor — fails the test. Exactly-once
// coverage is asserted unconditionally on every attempt.
func TestRunShardFairness(t *testing.T) {
	const n, size, attempts = 400, 4, 5
	p := New(size)
	defer p.Close()
	for attempt := 1; attempt <= attempts; attempt++ {
		perWorker := make([]int32, size)
		p.Run(n, 0, func(w, _ int) {
			atomic.AddInt32(&perWorker[w], 1)
			time.Sleep(100 * time.Microsecond)
		})
		total, participants := int32(0), 0
		for _, c := range perWorker {
			total += c
			if c > 0 {
				participants++
			}
		}
		if total != n {
			t.Fatalf("attempt %d executed %d shards, want %d", attempt, total, n)
		}
		if participants > 1 {
			return // work spread across executors — fairness observed
		}
	}
	t.Errorf("one executor served every shard in all %d attempts", attempts)
}

// TestRunWorkerBound: maxWorkers caps the executor ids a run may use.
func TestRunWorkerBound(t *testing.T) {
	p := New(8)
	defer p.Close()
	var maxSeen atomic.Int32
	p.Run(500, 2, func(w, _ int) {
		if int32(w) > maxSeen.Load() {
			maxSeen.Store(int32(w))
		}
		time.Sleep(10 * time.Microsecond)
	})
	if maxSeen.Load() > 1 {
		t.Errorf("worker id %d observed with maxWorkers=2", maxSeen.Load())
	}
}

// TestPoolSize1MatchesSerial: a 1-pool must be bit-identical to the plain
// inline loop — same values, same order (it IS the inline loop).
func TestPoolSize1MatchesSerial(t *testing.T) {
	p := New(1)
	defer p.Close()
	var order []int
	p.Run(100, 0, func(w, i int) {
		if w != 0 {
			t.Fatalf("1-pool used worker %d", w)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("1-pool executed index %d at position %d: not the serial order", got, i)
		}
	}
	if len(order) != 100 {
		t.Fatalf("executed %d indices, want 100", len(order))
	}
}

// TestDeterministicAcrossPoolSizes: under the per-index-slot discipline the
// merged result must be bit-identical for every pool size.
func TestDeterministicAcrossPoolSizes(t *testing.T) {
	compute := func(size int) []float64 {
		p := New(size)
		defer p.Close()
		out := make([]float64, 3000)
		p.Run(len(out), 0, func(_, i int) {
			v := float64(i)
			for k := 0; k < 50; k++ {
				v = v*1.0000001 + float64(k)
			}
			out[i] = v
		})
		return out
	}
	want := compute(1)
	for _, size := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := compute(size)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: out[%d] = %.17g, want %.17g", size, i, got[i], want[i])
			}
		}
	}
}

// TestPanicPropagation: a task panic must surface on the submitter as a
// *TaskPanic carrying the original value, abort the run's remaining shards,
// and leave the pool (and its workers) usable.
func TestPanicPropagation(t *testing.T) {
	p := New(4)
	defer p.Close()
	var executed atomic.Int32
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic did not propagate")
			}
			tp, ok := r.(*TaskPanic)
			if !ok {
				t.Fatalf("recovered %T, want *TaskPanic", r)
			}
			if tp.Value != "boom" {
				t.Errorf("panic value = %v, want boom", tp.Value)
			}
			if len(tp.Stack) == 0 || tp.Error() == "" {
				t.Error("TaskPanic carries no stack")
			}
		}()
		p.Run(10000, 0, func(_, i int) {
			if i == 5 {
				panic("boom")
			}
			executed.Add(1)
			time.Sleep(10 * time.Microsecond)
		})
	}()
	if n := executed.Load(); n >= 9999 {
		t.Errorf("run was not aborted after the panic: %d tasks executed", n)
	}
	// The pool survives: workers recovered and parked again.
	counts := make([]int32, 500)
	p.Run(len(counts), 0, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("post-panic run broken: index %d executed %d times", i, c)
		}
	}
}

// TestPanicPropagationInline: the inline-serial fallback (a 1-pool here)
// honors the same *TaskPanic contract as the parallel path, and a nested
// Run's wrapped panic is not double-wrapped crossing the outer submission.
func TestPanicPropagationInline(t *testing.T) {
	check := func(t *testing.T, run func()) {
		t.Helper()
		defer func() {
			tp, ok := recover().(*TaskPanic)
			if !ok {
				t.Fatal("inline panic not wrapped as *TaskPanic")
			}
			if tp.Value != "inline boom" {
				t.Errorf("panic value = %v, want inline boom (unwrapped)", tp.Value)
			}
			if len(tp.Stack) == 0 {
				t.Error("TaskPanic carries no stack")
			}
		}()
		run()
	}
	p1 := New(1)
	defer p1.Close()
	check(t, func() { p1.Run(4, 0, func(_, _ int) { panic("inline boom") }) })
	// Nested: the inner Run wraps the panic on its own submission; the outer
	// submission must surface the original value, not a wrapped wrapper.
	p4 := New(4)
	defer p4.Close()
	check(t, func() {
		p4.Run(4, 0, func(_, _ int) {
			p4.Run(2, 0, func(_, _ int) { panic("inline boom") })
		})
	})
}

// TestReuseAcrossEpochs drives many back-to-back runs through one pool — the
// per-epoch cadence of the SleepScale runtime — checking full coverage every
// time; under -race this doubles as the barrier's publication test.
func TestReuseAcrossEpochs(t *testing.T) {
	p := New(4)
	defer p.Close()
	out := make([]int64, 1000)
	for epoch := 0; epoch < 200; epoch++ {
		want := int64(epoch)
		p.Run(len(out), 0, func(_, i int) { out[i] = want + int64(i) })
		// The barrier must have published every slot before Run returned.
		for i, v := range out {
			if v != want+int64(i) {
				t.Fatalf("epoch %d: out[%d] = %d, want %d", epoch, i, v, want+int64(i))
			}
		}
	}
}

// TestConcurrentRuns: concurrent submissions to one pool must all complete
// correctly — the run queue executes them on the shared worker set in
// submission order, none degrades to inline serial.
func TestConcurrentRuns(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	results := make([][]int, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, 500)
			p.Run(len(out), 0, func(_, i int) { out[i] = g*1000 + i })
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g, out := range results {
		for i, v := range out {
			if v != g*1000+i {
				t.Fatalf("goroutine %d: out[%d] = %d", g, i, v)
			}
		}
	}
}

// TestNestedRunDoesNotDeadlock: fn submitting to its own pool must complete
// rather than deadlocking — the nested submitter always participates in its
// own run, so progress never depends on another worker being free.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(4)
	defer p.Close()
	var inner atomic.Int32
	p.Run(8, 0, func(_, _ int) {
		p.Run(10, 0, func(_, _ int) { inner.Add(1) })
	})
	if inner.Load() != 80 {
		t.Fatalf("nested runs executed %d inner tasks, want 80", inner.Load())
	}
}

// TestRunEdgeCases: empty runs return immediately; Default is a singleton
// sized to GOMAXPROCS; New clamps non-positive sizes.
func TestRunEdgeCases(t *testing.T) {
	p := New(3)
	defer p.Close()
	p.Run(0, 0, func(_, _ int) { t.Fatal("fn called for n=0") })
	p.Run(-5, 0, func(_, _ int) { t.Fatal("fn called for n<0") })
	if Default() != Default() {
		t.Error("Default is not a singleton")
	}
	if got := Default().Size(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Default pool size %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(0).Size(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0) size %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	// Closing a never-started pool is a no-op.
	New(5).Close()
}

// TestConcurrentRunsStayPooled pins the bugfix for the silent inline-serial
// degradation: concurrent submissions must all execute on the pool (Inline
// stays 0), and the overlap must be visible in the Shared counter.
func TestConcurrentRunsStayPooled(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	gate := make(chan struct{})
	ready.Add(4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			<-gate
			// Long enough tasks that the submissions genuinely overlap.
			p.Run(64, 0, func(_, _ int) { time.Sleep(50 * time.Microsecond) })
		}()
	}
	ready.Wait()
	close(gate)
	wg.Wait()
	st := p.Stats()
	if st.Inline != 0 {
		t.Errorf("%d concurrent submissions degraded to inline serial, want 0", st.Inline)
	}
	if st.Pooled != 4 {
		t.Errorf("Pooled = %d, want 4", st.Pooled)
	}
	if st.Shared == 0 {
		t.Error("no submission observed another active run; overlap not exercised")
	}
}

// TestNestedRunsStayPooled: nested submissions go through the run queue too —
// the old pool forced every nested Run to inline serial.
func TestNestedRunsStayPooled(t *testing.T) {
	p := New(4)
	defer p.Close()
	var inner atomic.Int32
	p.Run(4, 0, func(_, _ int) {
		p.Run(16, 0, func(_, _ int) { inner.Add(1) })
	})
	if inner.Load() != 64 {
		t.Fatalf("nested runs executed %d inner tasks, want 64", inner.Load())
	}
	if st := p.Stats(); st.Inline != 0 {
		t.Errorf("%d nested submissions degraded to inline serial, want 0", st.Inline)
	}
}

// TestStatsInlineCountsSingleExecutorRuns: the Inline counter tracks exactly
// the structural single-executor bounds — pool size 1, maxWorkers 1, n = 1.
func TestStatsInlineCountsSingleExecutorRuns(t *testing.T) {
	p1 := New(1)
	defer p1.Close()
	p1.Run(10, 0, func(_, _ int) {})
	if st := p1.Stats(); st.Inline != 1 || st.Pooled != 0 {
		t.Errorf("1-pool stats = %+v, want Inline 1 Pooled 0", st)
	}
	p := New(4)
	defer p.Close()
	p.Run(10, 1, func(_, _ int) {}) // maxWorkers 1
	p.Run(1, 0, func(_, _ int) {})  // n 1
	p.Run(10, 0, func(_, _ int) {}) // genuinely parallel
	if st := p.Stats(); st.Inline != 2 || st.Pooled != 1 {
		t.Errorf("stats = %+v, want Inline 2 Pooled 1", st)
	}
}

// TestRunShardedCoversEveryIndexOnce: the sharded cursors plus stealing must
// still hand every index to exactly one executor, across pool sizes, worker
// bounds, and n values that do not divide evenly into shards.
func TestRunShardedCoversEveryIndexOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 13} {
		for _, maxWorkers := range []int{0, 1, 3} {
			for _, n := range []int{1, 7, 64, 1999} {
				p := New(size)
				counts := make([]int32, n)
				p.RunSharded(n, maxWorkers, func(_, i int) {
					atomic.AddInt32(&counts[i], 1)
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("size=%d max=%d n=%d: index %d executed %d times", size, maxWorkers, n, i, c)
					}
				}
				p.Close()
			}
		}
	}
}

// TestRunShardedDeterministic: under the per-index-slot discipline RunSharded
// is bit-identical across pool sizes, like Run.
func TestRunShardedDeterministic(t *testing.T) {
	compute := func(size int) []float64 {
		p := New(size)
		defer p.Close()
		out := make([]float64, 3000)
		p.RunSharded(len(out), 0, func(_, i int) {
			v := float64(i)
			for k := 0; k < 50; k++ {
				v = v*1.0000001 + float64(k)
			}
			out[i] = v
		})
		return out
	}
	want := compute(1)
	for _, size := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := compute(size)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: out[%d] = %.17g, want %.17g", size, i, got[i], want[i])
			}
		}
	}
}

// TestRunShardedOwnership: each executor slot drains its own contiguous shard
// first, so slot s's first index is deterministically its shard's front
// [s·n/W]. A gate inside fn holds every slot at its first index until both
// slots have taken one, so neither shard can be drained (or stolen from)
// before both first tickets are observed.
func TestRunShardedOwnership(t *testing.T) {
	const n, W = 8, 2
	p := New(W)
	defer p.Close()
	var first [W]atomic.Int32
	var checkedIn sync.WaitGroup
	checkedIn.Add(W)
	gate := make(chan struct{})
	go func() { checkedIn.Wait(); close(gate) }()
	p.RunSharded(n, W, func(w, i int) {
		if first[w].CompareAndSwap(0, int32(i)+1) {
			checkedIn.Done()
		}
		<-gate
	})
	for s := 0; s < W; s++ {
		want := int32(s*n/W) + 1
		if got := first[s].Load(); got != want {
			t.Errorf("slot %d's first index = %d, want its shard front %d", s, got-1, want-1)
		}
	}
}

// TestRunShardedStealing: when one shard's work is much heavier, the executor
// that drains its own shard steals the remainder — the Steals counter must
// observe it and coverage stays exactly-once. The interleaving is scheduler
// dependent, so the stealing assertion is retried; coverage is asserted on
// every attempt.
func TestRunShardedStealing(t *testing.T) {
	const n, W, attempts = 8, 2, 5
	p := New(W)
	defer p.Close()
	for attempt := 1; attempt <= attempts; attempt++ {
		before := p.Stats().Steals
		counts := make([]int32, n)
		p.RunSharded(n, W, func(_, i int) {
			atomic.AddInt32(&counts[i], 1)
			if i < n/W { // slot 0's shard is slow, slot 1's is instant
				time.Sleep(2 * time.Millisecond)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("attempt %d: index %d executed %d times", attempt, i, c)
			}
		}
		if p.Stats().Steals > before {
			return // the idle executor stole from the heavy shard
		}
	}
	t.Errorf("no steal observed in %d attempts with a 2ms-per-task imbalanced shard", attempts)
}

// TestRunShardedPanicPropagation: the sharded path honors the same panic
// contract — first panic surfaces as *TaskPanic, remaining shards abandoned,
// pool stays usable.
func TestRunShardedPanicPropagation(t *testing.T) {
	p := New(4)
	defer p.Close()
	func() {
		defer func() {
			tp, ok := recover().(*TaskPanic)
			if !ok {
				t.Fatal("sharded panic not wrapped as *TaskPanic")
			}
			if tp.Value != "shard boom" {
				t.Errorf("panic value = %v, want shard boom", tp.Value)
			}
		}()
		p.RunSharded(1000, 0, func(_, i int) {
			if i == 3 {
				panic("shard boom")
			}
		})
	}()
	counts := make([]int32, 100)
	p.RunSharded(len(counts), 0, func(_, i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("post-panic sharded run broken: index %d executed %d times", i, c)
		}
	}
}

// TestSteadyStateZeroAlloc pins the pool's own contract: once workers are
// started, a Run allocates nothing (wakes, tickets and the barrier are all
// reusable). Skipped under -race, which instruments allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := New(4)
	defer p.Close()
	sink := make([]int64, 256)
	fn := func(w, i int) { sink[i] = int64(w) }
	p.Run(len(sink), 0, fn) // start workers, warm the barrier
	avg := testing.AllocsPerRun(10, func() {
		p.Run(len(sink), 0, fn)
	})
	if avg != 0 {
		t.Errorf("steady-state Run allocates %.1f/run, want 0", avg)
	}
	p.RunSharded(len(sink), 0, fn) // warm the shard cursors
	avg = testing.AllocsPerRun(10, func() {
		p.RunSharded(len(sink), 0, fn)
	})
	if avg != 0 {
		t.Errorf("steady-state RunSharded allocates %.1f/run, want 0", avg)
	}
}
