package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of worker goroutines executing indexed task sets.
// Workers are started lazily on the first parallel Run and then parked on
// per-worker wake channels between submissions, so steady-state use spawns
// no goroutines and allocates nothing: a Run costs one channel send per
// woken worker, an atomic ticket per index, and one send/receive on the
// reusable completion barrier.
//
// The zero Pool is not usable; construct with New or use the process-wide
// Default.
type Pool struct {
	size int

	// mu serializes submissions. A Run that cannot take it immediately
	// (a concurrent or nested Run holds the pool) degrades to the inline
	// serial loop — bit-identical by the determinism contract — instead of
	// queueing or deadlocking.
	mu    sync.Mutex
	start sync.Once

	// wake[w] parks background worker w (1 ≤ w < size); done is the
	// reusable completion barrier the last finishing worker signals.
	wake []chan struct{}
	done chan struct{}

	// Per-run state, written by the submitter before the wakes (the channel
	// send publishes it to the woken workers) and read back after the
	// barrier.
	n       int
	fn      func(worker, i int)
	next    atomic.Int64
	pending atomic.Int32

	panicMu    sync.Mutex
	panicVal   any
	panicStack []byte
}

// New returns a pool of size executors; size < 1 picks runtime.GOMAXPROCS(0).
// One executor is the submitting goroutine itself, so a pool of size n parks
// n-1 background workers. Pools are intended to live for the process (Default
// does); short-lived pools should be Closed to release their workers.
func New(size int) *Pool {
	if size < 1 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size, done: make(chan struct{}, 1)}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, sized to runtime.GOMAXPROCS(0) at
// first use. All the simulator's parallel drivers share it, so the whole
// process runs one persistent worker set however many selections, farm runs
// and dispatch slices execute.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Size reports the pool's executor count (background workers plus the
// submitter).
func (p *Pool) Size() int { return p.size }

// TaskPanic is the value Run re-panics with on the submitting goroutine when
// a task function panicked on a worker: the original value plus the worker's
// stack. Only the first panic of a run is kept; the run's remaining shards
// are abandoned.
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("par: task panicked: %v\n%s", t.Value, t.Stack)
}

// Run executes fn(worker, i) exactly once for every i in [0, n), distributing
// indices across at most min(Size, maxWorkers, n) executors (maxWorkers ≤ 0
// means no extra bound). Indices are handed out as shards from an atomic
// ticket counter, so distribution is dynamic; worker identifies the executor,
// 0 ≤ worker < the executor bound, and all calls sharing a worker value are
// sequential on one goroutine — per-executor scratch indexed by worker needs
// no locking. Run returns once every index has completed (the reusable
// barrier), and re-panics on the submitter — as a *TaskPanic — if any task
// panicked.
//
// Determinism contract: Run promises nothing about which worker executes
// which index, so callers must make results independent of the interleaving —
// write only to per-index (or per-worker) slots and merge in index order
// afterwards. Under that discipline every pool size, including 1, produces
// bit-identical results; the single-executor case runs inline on the
// submitter with no handoff at all, as do concurrent and nested Runs on a
// busy pool.
func (p *Pool) Run(n, maxWorkers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers := p.size
	if workers > n {
		workers = n
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	if workers <= 1 || !p.mu.TryLock() {
		runSerial(n, fn)
		return
	}
	defer p.mu.Unlock()
	p.start.Do(p.startWorkers)

	p.n, p.fn = n, fn
	p.next.Store(0)
	p.pending.Store(int32(workers - 1))
	for w := 1; w < workers; w++ {
		p.wake[w] <- struct{}{}
	}
	p.drain(0)
	<-p.done
	p.fn = nil // do not pin the closure between runs

	p.panicMu.Lock()
	val, stack := p.panicVal, p.panicStack
	p.panicVal, p.panicStack = nil, nil
	p.panicMu.Unlock()
	if val != nil {
		panic(&TaskPanic{Value: val, Stack: stack})
	}
}

// runSerial is the inline fallback (single executor, busy or nested pool):
// the plain serial loop, with panics wrapped as *TaskPanic so the panic
// contract is uniform across pool sizes and submission states.
func runSerial(n int, fn func(worker, i int)) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*TaskPanic); ok { // nested Run already wrapped it
				panic(tp)
			}
			panic(&TaskPanic{Value: r, Stack: debug.Stack()})
		}
	}()
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// startWorkers launches the size-1 background workers, each parked on its
// wake channel.
func (p *Pool) startWorkers() {
	p.wake = make([]chan struct{}, p.size)
	for w := 1; w < p.size; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.worker(w, p.wake[w])
	}
}

// worker is one background executor: woken per run, it drains tickets, checks
// in at the barrier (the last one signals the submitter) and parks again. It
// owns its wake channel reference, so Close (which drops the pool's slice)
// cannot race a worker still starting up.
func (p *Pool) worker(w int, wake <-chan struct{}) {
	for range wake {
		p.drain(w)
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// drain pulls index tickets until the run is exhausted. A panicking task is
// recovered so the worker survives for the next run: the first panic is
// recorded for the submitter to re-raise, and the counter is fast-forwarded
// so every executor stops handing out the abandoned run's remaining work.
func (p *Pool) drain(w int) {
	defer func() {
		if r := recover(); r != nil {
			val, stack := r, []byte(nil)
			if tp, ok := r.(*TaskPanic); ok { // a nested inline Run wrapped it
				val, stack = tp.Value, tp.Stack
			}
			if stack == nil {
				stack = debug.Stack()
			}
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = val
				p.panicStack = stack
			}
			p.panicMu.Unlock()
			p.next.Store(int64(p.n))
		}
	}()
	n := int64(p.n)
	for {
		t := p.next.Add(1) - 1
		if t >= n {
			return
		}
		p.fn(w, int(t))
	}
}

// Close releases the pool's background workers. The pool must be idle and
// must not be used afterwards; Close exists so tests and short-lived tools
// can avoid accumulating parked goroutines. Closing a pool whose workers
// never started is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := 1; w < len(p.wake); w++ {
		close(p.wake[w])
	}
	p.wake = nil
}
