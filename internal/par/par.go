package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of worker goroutines executing indexed task sets.
// Workers are started lazily on the first parallel submission and then parked
// on per-worker wake channels between runs, so steady-state use spawns no
// goroutines and allocates nothing: a Run costs one channel send per woken
// worker, an atomic ticket per index, and one send/receive on the submitting
// run's reusable completion barrier.
//
// Submissions share the worker set: concurrent and nested Runs are queued as
// independent run descriptors that idle workers pull from in submission
// order, so a busy pool never silently degrades a parallel call site to the
// inline-serial loop (the submitter always participates in its own run, which
// also makes nested submissions deadlock-free). The only inline executions
// left are the structural ones — a single-executor bound (pool size 1,
// maxWorkers 1, or n = 1) — and Stats counts them so callers can assert their
// parallel paths actually ran on the pool.
//
// The zero Pool is not usable; construct with New or use the process-wide
// Default.
type Pool struct {
	size int

	// mu guards the run queue, the parked-worker set, the recycled run
	// descriptors and worker startup. Ticket draining is lock-free; the
	// mutex is only taken at run enqueue/claim/retire edges.
	mu      sync.Mutex
	started bool
	active  []*run
	free    []*run
	parked  []int
	wake    []chan struct{}

	inline atomic.Int64
	pooled atomic.Int64
	shared atomic.Int64
	steals atomic.Int64
}

// run is one submission's descriptor. Descriptors are pool-owned and
// recycled, so steady-state submissions allocate nothing.
type run struct {
	n  int
	fn func(worker, i int)

	// next hands out index tickets for dynamic runs; sharded runs draw from
	// shards instead (one cursor per executor slot, stolen when drained).
	next    atomic.Int64
	sharded bool
	shards  []shardCursor

	// slots hands out run-local executor ids (0 = submitter), bounded by
	// maxSlots; claimed under the pool mutex. refs tracks executors still
	// inside drainRun, so a descriptor is only recycled after the last one
	// has left — a claimed-but-slow executor must never observe a reused
	// descriptor.
	slots    int
	maxSlots int
	refs     atomic.Int32
	retired  bool
	freed    bool

	// pending counts indices not yet executed (or abandoned by a panic);
	// the executor whose batch takes it to zero signals the reusable done
	// barrier the submitter waits on.
	pending atomic.Int64
	done    chan struct{}

	panicMu    sync.Mutex
	panicVal   any
	panicStack []byte
}

// shardCursor is one executor slot's contiguous index range [next, hi) in a
// sharded run. The owner drains it front to back; thieves share the same
// atomic cursor, so every index is still executed exactly once.
type shardCursor struct {
	next atomic.Int64
	hi   int64
}

// New returns a pool of size executors; size < 1 picks runtime.GOMAXPROCS(0).
// One executor is the submitting goroutine itself, so a pool of size n parks
// n-1 background workers. Pools are intended to live for the process (Default
// does); short-lived pools should be Closed to release their workers.
func New(size int) *Pool {
	if size < 1 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, sized to runtime.GOMAXPROCS(0) at
// first use. All the simulator's parallel drivers share it, so the whole
// process runs one persistent worker set however many selections, farm runs
// and dispatch slices execute.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Size reports the pool's executor count (background workers plus the
// submitter).
func (p *Pool) Size() int { return p.size }

// Stats is a snapshot of the pool's submission counters.
type Stats struct {
	// Inline counts runs executed on the submitting goroutine alone because
	// the executor bound was 1 (pool size, maxWorkers, or n). Busy or nested
	// pools no longer force this path; a parallel call site that expects to
	// fan out can assert Inline did not grow.
	Inline int64
	// Pooled counts runs dispatched to the shared worker set.
	Pooled int64
	// Shared counts pooled runs that overlapped at least one other active
	// run — submissions that the pre-queue pool would have serialized.
	Shared int64
	// Steals counts sharded-run indices executed by an executor other than
	// the shard's owner (work stealing after the thief drained its own
	// shard).
	Steals int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Inline: p.inline.Load(),
		Pooled: p.pooled.Load(),
		Shared: p.shared.Load(),
		Steals: p.steals.Load(),
	}
}

// TaskPanic is the value Run re-panics with on the submitting goroutine when
// a task function panicked on a worker: the original value plus the worker's
// stack. Only the first panic of a run is kept; the run's remaining shards
// are abandoned.
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("par: task panicked: %v\n%s", t.Value, t.Stack)
}

// Run executes fn(worker, i) exactly once for every i in [0, n), distributing
// indices across at most min(Size, maxWorkers, n) executors (maxWorkers ≤ 0
// means no extra bound). Indices are handed out as shards from an atomic
// ticket counter, so distribution is dynamic; worker identifies the executor
// slot within this run, 0 ≤ worker < the executor bound, and all calls
// sharing a worker value are sequential on one goroutine — per-executor
// scratch indexed by worker needs no locking. Run returns once every index
// has completed (the reusable barrier), and re-panics on the submitter — as a
// *TaskPanic — if any task panicked.
//
// Determinism contract: Run promises nothing about which worker executes
// which index, so callers must make results independent of the interleaving —
// write only to per-index (or per-worker) slots and merge in index order
// afterwards. Under that discipline every pool size, including 1, produces
// bit-identical results; the single-executor case runs inline on the
// submitter with no handoff at all. Concurrent and nested submissions share
// the worker set through the run queue and stay bit-identical too.
func (p *Pool) Run(n, maxWorkers int, fn func(worker, i int)) {
	p.submit(n, maxWorkers, fn, false)
}

// RunSharded is Run with persistent shard ownership: the index range is cut
// into one contiguous shard per executor slot — slot w owns
// [w·n/W, (w+1)·n/W) — and each executor drains its own shard front to back
// before stealing from the fullest remaining one. Because the partition
// depends only on (n, executor bound), repeated same-shape calls hand every
// slot the same indices each time: a caller pinning state to indices (a farm
// pinning engines to servers) keeps each executor's working set hot across
// calls instead of re-sharding it every barrier, while stealing still evens
// out imbalanced shards. The executor bound, worker-id semantics, panic
// contract and determinism contract are exactly Run's.
func (p *Pool) RunSharded(n, maxWorkers int, fn func(worker, i int)) {
	p.submit(n, maxWorkers, fn, true)
}

// submit enqueues one run and participates in draining it until every index
// has completed.
func (p *Pool) submit(n, maxWorkers int, fn func(worker, i int), sharded bool) {
	if n <= 0 {
		return
	}
	workers := p.size
	if workers > n {
		workers = n
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	if workers <= 1 {
		p.inline.Add(1)
		runSerial(n, fn)
		return
	}

	p.mu.Lock()
	if !p.started {
		p.startWorkers()
	}
	r := p.getRun()
	r.n, r.fn, r.maxSlots = n, fn, workers
	r.sharded = sharded
	r.slots = 1 // the submitter is executor 0
	r.refs.Store(1)
	r.retired = false
	r.freed = false
	r.pending.Store(int64(n))
	r.next.Store(0)
	if sharded {
		if cap(r.shards) < workers {
			r.shards = make([]shardCursor, workers)
		}
		r.shards = r.shards[:workers]
		for w := 0; w < workers; w++ {
			r.shards[w].next.Store(int64(w * n / workers))
			r.shards[w].hi = int64((w + 1) * n / workers)
		}
	}
	if len(p.active) > 0 {
		p.shared.Add(1)
	}
	p.active = append(p.active, r)
	p.pooled.Add(1)
	for toWake := workers - 1; toWake > 0 && len(p.parked) > 0; toWake-- {
		w := p.parked[len(p.parked)-1]
		p.parked = p.parked[:len(p.parked)-1]
		p.wake[w] <- struct{}{}
	}
	p.mu.Unlock()

	p.finish(r, p.drainRun(r, 0))
	<-r.done

	r.panicMu.Lock()
	val, stack := r.panicVal, r.panicStack
	r.panicVal, r.panicStack = nil, nil
	r.panicMu.Unlock()

	p.mu.Lock()
	p.removeActive(r)
	r.retired = true
	r.fn = nil // do not pin the closure between runs
	// The last departing executor may race this section on refs; the freed
	// latch makes recycling single-shot whichever side observes zero last.
	if r.refs.Load() == 0 && !r.freed {
		r.freed = true
		p.free = append(p.free, r)
	}
	p.mu.Unlock()

	if val != nil {
		panic(&TaskPanic{Value: val, Stack: stack})
	}
}

// getRun returns a recycled run descriptor, allocating only when the pool has
// never had this many overlapping submissions. Called with mu held.
func (p *Pool) getRun() *run {
	if k := len(p.free); k > 0 {
		r := p.free[k-1]
		p.free = p.free[:k-1]
		return r
	}
	return &run{done: make(chan struct{}, 1)}
}

// removeActive unlinks r from the active queue if still present. Called with
// mu held.
func (p *Pool) removeActive(r *run) {
	for i, a := range p.active {
		if a == r {
			p.active = append(p.active[:i], p.active[i+1:]...)
			return
		}
	}
}

// runSerial is the inline path for single-executor bounds: the plain serial
// loop, with panics wrapped as *TaskPanic so the panic contract is uniform
// across pool sizes.
func runSerial(n int, fn func(worker, i int)) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*TaskPanic); ok { // nested Run already wrapped it
				panic(tp)
			}
			panic(&TaskPanic{Value: r, Stack: debug.Stack()})
		}
	}()
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// startWorkers launches the size-1 background workers, each born parked on
// its wake channel — and registered in the parked list, so the very first
// submission can wake them. Called with mu held.
func (p *Pool) startWorkers() {
	p.started = true
	p.wake = make([]chan struct{}, p.size)
	p.parked = p.parked[:0]
	for w := 1; w < p.size; w++ {
		p.wake[w] = make(chan struct{}, 1)
		p.parked = append(p.parked, w)
		go p.worker(w, p.wake[w])
	}
}

// worker is one background executor: woken when runs are queued, it drains
// every claimable run (its own slot per run), parks when the queue is empty,
// and exits when its wake channel is closed. It owns its wake channel
// reference, so Close (which drops the pool's slice) cannot race a worker
// still starting up.
func (p *Pool) worker(w int, wake <-chan struct{}) {
	for {
		if _, ok := <-wake; !ok {
			return
		}
		for {
			r, slot := p.claimOrPark(w)
			if r == nil {
				break
			}
			p.finish(r, p.drainRun(r, slot))
		}
	}
}

// claimOrPark hands the worker the oldest active run with tickets and a free
// executor slot, or atomically parks it — the re-check and the parking happen
// under one critical section, so a submission can never slip between them and
// leave the worker asleep with work queued.
func (p *Pool) claimOrPark(w int) (*run, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.active); {
		r := p.active[i]
		if !r.hasTickets() {
			// Fully handed out: drop it from the claim queue (its executors
			// finish on their own; the submitter does the final retire).
			p.active = append(p.active[:i], p.active[i+1:]...)
			continue
		}
		if r.slots < r.maxSlots {
			slot := r.slots
			r.slots++
			r.refs.Add(1)
			return r, slot
		}
		i++
	}
	p.parked = append(p.parked, w)
	return nil, 0
}

// hasTickets reports whether the run still has indices to hand out.
func (r *run) hasTickets() bool {
	if !r.sharded {
		return r.next.Load() < int64(r.n)
	}
	for w := range r.shards {
		if r.shards[w].next.Load() < r.shards[w].hi {
			return true
		}
	}
	return false
}

// finish retires one executor's participation: its executed-index batch is
// subtracted from the run's pending count (the executor whose batch reaches
// zero signals the submitter's barrier), and the descriptor is recycled once
// the submitter has retired it and no executor still holds it.
func (p *Pool) finish(r *run, executed int64) {
	if executed > 0 && r.pending.Add(-executed) == 0 {
		r.done <- struct{}{}
	}
	if r.refs.Add(-1) == 0 {
		p.mu.Lock()
		if r.retired && !r.freed {
			r.freed = true
			p.free = append(p.free, r)
		}
		p.mu.Unlock()
	}
}

// drainRun executes r's indices on executor slot until none remain,
// returning how many indices this executor accounted for (executed, plus any
// abandoned by a panic it recovered). A panicking task is recovered so the
// goroutine survives: the first panic is recorded for the submitter to
// re-raise, and the remaining tickets are fast-forwarded — and counted here —
// so the run completes as abandoned rather than deadlocking the barrier.
func (p *Pool) drainRun(r *run, slot int) (executed int64) {
	defer func() {
		if rec := recover(); rec != nil {
			executed += r.abort(rec) + 1 // +1: the panicking index itself
		}
	}()
	if !r.sharded {
		n := int64(r.n)
		for {
			t := r.next.Add(1) - 1
			if t >= n {
				return executed
			}
			r.fn(slot, int(t))
			executed++
		}
	}
	// Sharded: drain the owned shard first, then steal from the fullest
	// remaining one (FIFO within each shard, so stolen work is still executed
	// in index order within the shard).
	own := slot
	if own >= len(r.shards) {
		own = 0 // cannot happen (slots ≤ maxSlots = len(shards)); belt and braces
	}
	for {
		sh := &r.shards[own]
		t := sh.next.Add(1) - 1
		if t >= sh.hi {
			break
		}
		r.fn(slot, int(t))
		executed++
	}
	for {
		victim, best := -1, int64(0)
		for w := range r.shards {
			if w == own {
				continue
			}
			if left := r.shards[w].hi - r.shards[w].next.Load(); left > best {
				victim, best = w, left
			}
		}
		if victim < 0 {
			return executed
		}
		sh := &r.shards[victim]
		for {
			t := sh.next.Add(1) - 1
			if t >= sh.hi {
				break
			}
			r.fn(slot, int(t))
			executed++
			p.steals.Add(1)
		}
	}
}

// abort records the first panic of a run and fast-forwards every remaining
// ticket, returning how many indices the fast-forward abandoned (they are
// accounted as completed so the barrier releases).
func (r *run) abort(rec any) (abandoned int64) {
	val, stack := rec, []byte(nil)
	if tp, ok := rec.(*TaskPanic); ok { // a nested Run wrapped it already
		val, stack = tp.Value, tp.Stack
	}
	if stack == nil {
		stack = debug.Stack()
	}
	r.panicMu.Lock()
	if r.panicVal == nil {
		r.panicVal = val
		r.panicStack = stack
	}
	r.panicMu.Unlock()
	if !r.sharded {
		n := int64(r.n)
		if old := r.next.Swap(n); old < n {
			abandoned += n - old
		}
		return abandoned
	}
	for w := range r.shards {
		sh := &r.shards[w]
		if old := sh.next.Swap(sh.hi); old < sh.hi {
			abandoned += sh.hi - old
		}
	}
	return abandoned
}

// Close releases the pool's background workers. The pool must be idle and
// must not be used afterwards; Close exists so tests and short-lived tools
// can avoid accumulating parked goroutines. Closing a pool whose workers
// never started is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := 1; w < len(p.wake); w++ {
		close(p.wake[w])
	}
	p.wake = nil
	p.parked = nil
	p.started = false
}
