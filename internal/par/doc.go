// Package par is the simulator's persistent worker-pool runtime: a sharded,
// zero-spawn fan-out primitive shared by every parallel hot path (policy
// selection, farm runs, per-source farms, time-sliced streaming dispatch).
//
// SleepScale's premise is that the policy search loop is cheap enough to run
// at runtime every epoch (paper §5–6), so the simulator's parallel drivers
// must not pay per-invocation setup. Before this package each of them spawned
// a fresh goroutine set — and the time-sliced dispatcher spawned one per
// slice. A Pool starts its workers once (sized to GOMAXPROCS by default,
// overridable), parks them on per-worker wake channels, hands out work as
// index shards from an atomic ticket counter, and resynchronizes through a
// reusable completion barrier: steady-state fan-out costs no goroutine
// creation and no allocation.
//
// # Pool contract
//
//   - Run(n, maxWorkers, fn) calls fn(worker, i) exactly once per i in
//     [0, n), across at most min(Size, maxWorkers, n) executors. Executor 0
//     is the submitting goroutine itself — a pool of size 1 is a plain
//     inline loop with no handoff.
//   - Calls sharing a worker value are sequential on one goroutine, so
//     per-executor scratch (a pooled evaluator, a chunk buffer) indexed by
//     worker needs no locking. Worker ids are per-Run: two Runs may map the
//     same id to different goroutines.
//   - Run returns only when every index has completed. A panic in fn is
//     caught on the worker (which survives for the next run), recorded
//     first-wins, aborts the run's remaining shards, and is re-raised on
//     the submitter as *TaskPanic.
//   - Submissions share the workers: a Run issued while the pool is busy — a
//     concurrent caller or fn itself nesting — enqueues a run descriptor
//     that idle workers claim in submission order. The submitter always
//     participates in its own run, so nested submissions make progress even
//     when every worker is occupied; the pool can never deadlock on itself,
//     and a busy pool no longer silently degrades parallel call sites to the
//     inline loop. The only inline executions left are the structural
//     single-executor bounds (pool size 1, maxWorkers 1, n = 1), counted in
//     Stats.Inline so callers can assert their parallel paths actually
//     pooled.
//
// # Shard ownership and stealing
//
// RunSharded is Run with a static partition instead of the dynamic ticket
// counter: the index range is cut into one contiguous shard per executor
// slot — slot w owns [w·n/W, (w+1)·n/W) — and each executor drains its own
// shard front to back before stealing from the fullest remaining one. The
// partition depends only on (n, executor bound), so repeated same-shape calls
// hand every slot the same indices each time: a caller pinning state to
// indices — the farm pins queue engines to servers — keeps each executor's
// working set hot across barriers instead of re-sharding it every call, while
// stealing still absorbs imbalanced shards (Stats.Steals observes it). The
// executor bound, worker-id semantics, panic contract and determinism rules
// are exactly Run's.
//
// # Determinism rules
//
// The pool promises nothing about which worker executes which index or in
// what order indices complete. Callers on the simulator's bit-identical
// paths therefore follow one discipline: tasks write only to per-index (or
// per-worker) slots, never to shared accumulators, and all merging happens
// on the submitter in index order after Run returns. Under that discipline
// the result is bit-identical for every pool size — including 1, which is
// the serial reference the equivalence tests pin against — and regardless of
// worker interleaving. This is exactly the contract the farm's deterministic
// server-order merge and the policy manager's per-candidate evaluation slots
// were already built around; the pool makes it explicit.
package par
