// Package par is the simulator's persistent worker-pool runtime: a sharded,
// zero-spawn fan-out primitive shared by every parallel hot path (policy
// selection, farm runs, per-source farms, time-sliced streaming dispatch).
//
// SleepScale's premise is that the policy search loop is cheap enough to run
// at runtime every epoch (paper §5–6), so the simulator's parallel drivers
// must not pay per-invocation setup. Before this package each of them spawned
// a fresh goroutine set — and the time-sliced dispatcher spawned one per
// slice. A Pool starts its workers once (sized to GOMAXPROCS by default,
// overridable), parks them on per-worker wake channels, hands out work as
// index shards from an atomic ticket counter, and resynchronizes through a
// reusable completion barrier: steady-state fan-out costs no goroutine
// creation and no allocation.
//
// # Pool contract
//
//   - Run(n, maxWorkers, fn) calls fn(worker, i) exactly once per i in
//     [0, n), across at most min(Size, maxWorkers, n) executors. Executor 0
//     is the submitting goroutine itself — a pool of size 1 is a plain
//     inline loop with no handoff.
//   - Calls sharing a worker value are sequential on one goroutine, so
//     per-executor scratch (a pooled evaluator, a chunk buffer) indexed by
//     worker needs no locking. Worker ids are per-Run: two Runs may map the
//     same id to different goroutines.
//   - Run returns only when every index has completed. A panic in fn is
//     caught on the worker (which survives for the next run), recorded
//     first-wins, aborts the run's remaining shards, and is re-raised on
//     the submitter as *TaskPanic.
//   - Submissions are serialized: a Run issued while the pool is busy — a
//     concurrent caller or fn itself nesting — runs inline serially instead
//     of queueing, so the pool can never deadlock on itself.
//
// # Determinism rules
//
// The pool promises nothing about which worker executes which index or in
// what order indices complete. Callers on the simulator's bit-identical
// paths therefore follow one discipline: tasks write only to per-index (or
// per-worker) slots, never to shared accumulators, and all merging happens
// on the submitter in index order after Run returns. Under that discipline
// the result is bit-identical for every pool size — including 1, which is
// the serial reference the equivalence tests pin against — and regardless of
// worker interleaving. This is exactly the contract the farm's deterministic
// server-order merge and the policy manager's per-candidate evaluation slots
// were already built around; the pool makes it explicit.
package par
