// Package metrics provides the statistics plumbing shared by the SleepScale
// simulators: streaming moments, exact sample percentiles, histograms and
// weighted tallies. Everything is allocation-conscious because the policy
// manager evaluates thousands of candidate policies per decision epoch.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count, mean and variance of a sequence of observations
// using Welford's online algorithm. The zero value is ready to use.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records the same observation n times.
func (s *Stream) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		s.Add(x)
	}
}

// Merge folds another stream into s (parallel Welford combination).
func (s *Stream) Merge(o Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	mn, mx := s.min, s.max
	if o.min < mn {
		mn = o.min
	}
	if o.max > mx {
		mx = o.max
	}
	*s = Stream{n: n, mean: mean, m2: m2, min: mn, max: mx}
}

// Count reports the number of observations.
func (s *Stream) Count() int { return s.n }

// Mean reports the sample mean, or 0 when empty.
func (s *Stream) Mean() float64 { return s.mean }

// Variance reports the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CV reports the coefficient of variation (stddev / mean), or 0 when the mean
// is zero.
func (s *Stream) CV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / s.mean
}

// Min reports the smallest observation, or 0 when empty.
func (s *Stream) Min() float64 { return s.min }

// Max reports the largest observation, or 0 when empty.
func (s *Stream) Max() float64 { return s.max }

// Sum reports mean × count.
func (s *Stream) Sum() float64 { return s.mean * float64(s.n) }

// StreamState is the full internal state of a Stream, exposed so long-running
// consumers (the serve daemon's checkpoints) can persist and restore the
// moments bit-for-bit.
type StreamState struct {
	N                  int
	Mean, M2, Min, Max float64
}

// State captures the stream's internal state exactly.
func (s *Stream) State() StreamState {
	return StreamState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// SetState overwrites the stream with a previously captured state; a stream
// restored this way continues bit-identically to the original.
func (s *Stream) SetState(st StreamState) {
	s.n, s.mean, s.m2, s.min, s.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// String implements fmt.Stringer.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Sample collects raw observations so that exact percentiles can be computed.
// It keeps every observation; the SleepScale evaluator works with runs of
// roughly 10⁴–10⁶ jobs, which fits comfortably in memory.
//
// Observations are stored in insertion order; order statistics (Percentile,
// FractionAbove) are served from a lazily maintained sorted scratch copy, so
// querying a percentile never disturbs insertion order. Reset and TrimFront
// keep the underlying capacity, making a Sample reusable with zero
// steady-state allocations.
type Sample struct {
	xs      []float64 // insertion order, never reordered
	scratch []float64 // ascending copy, rebuilt lazily for order statistics
	dirty   bool      // scratch is stale relative to xs
	Stream
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.dirty = true
	s.Stream.Add(x)
}

// Reset discards all observations but keeps the underlying capacity.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.scratch = s.scratch[:0]
	s.dirty = false
	s.Stream = Stream{}
}

// TrimFront discards the first n observations in insertion order (e.g. a
// simulation warm-up period) and recomputes the streaming moments over the
// remainder. Trimming more than the sample size empties it.
func (s *Sample) TrimFront(n int) {
	if n <= 0 {
		return
	}
	if n >= len(s.xs) {
		s.Reset()
		return
	}
	s.xs = s.xs[:copy(s.xs, s.xs[n:])]
	s.dirty = true
	s.Stream = Stream{}
	for _, x := range s.xs {
		s.Stream.Add(x)
	}
}

// TrimBack discards the last n observations in insertion order (e.g. jobs
// retroactively lost on a crashing server) and recomputes the streaming
// moments over the remainder. Because Welford accumulation is a left fold,
// the rebuilt moments are bit-identical to a stream that never saw the
// removed suffix. Trimming more than the sample size empties it.
func (s *Sample) TrimBack(n int) {
	if n <= 0 {
		return
	}
	if n >= len(s.xs) {
		s.Reset()
		return
	}
	s.xs = s.xs[:len(s.xs)-n]
	s.dirty = true
	s.Stream = Stream{}
	for _, x := range s.xs {
		s.Stream.Add(x)
	}
}

// Values returns the raw observations in insertion order. The slice aliases
// internal storage; callers must not modify it.
func (s *Sample) Values() []float64 { return s.xs }

// sortedValues returns the ascending scratch copy, rebuilding it if stale.
func (s *Sample) sortedValues() []float64 {
	if s.dirty || len(s.scratch) != len(s.xs) {
		s.scratch = append(s.scratch[:0], s.xs...)
		sort.Float64s(s.scratch)
		s.dirty = false
	}
	return s.scratch
}

// Percentile reports the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.sortedValues()
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// PercentileNearestRank reports the p-th percentile by the ceiling nearest-rank
// rule: the smallest observation x such that at least p% of the sample is ≤ x.
// It returns 0 for an empty sample.
func (s *Sample) PercentileNearestRank(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := s.sortedValues()
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return xs[idx]
}

// FractionAbove reports the fraction of observations strictly greater than or
// equal to x, i.e. the empirical Pr(X ≥ x).
func (s *Sample) FractionAbove(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.sortedValues()
	// First index with value >= x.
	i := sort.SearchFloat64s(xs, x)
	return float64(len(xs)-i) / float64(len(xs))
}

// WeightedTally accumulates time-weighted occupancy per named bucket, e.g.
// seconds of residency per power state.
type WeightedTally struct {
	weights map[string]float64
	order   []string
	total   float64
}

// NewWeightedTally returns an empty tally.
func NewWeightedTally() *WeightedTally {
	return &WeightedTally{weights: make(map[string]float64)}
}

// Add accumulates weight w (usually seconds) in bucket name.
func (t *WeightedTally) Add(name string, w float64) {
	if _, ok := t.weights[name]; !ok {
		t.order = append(t.order, name)
	}
	t.weights[name] += w
	t.total += w
}

// Reset empties the tally in place, keeping the map and slice storage so a
// reused tally accumulates again without allocating.
func (t *WeightedTally) Reset() {
	clear(t.weights)
	t.order = t.order[:0]
	t.total = 0
}

// Get reports the accumulated weight of bucket name.
func (t *WeightedTally) Get(name string) float64 { return t.weights[name] }

// Total reports the sum of all weights.
func (t *WeightedTally) Total() float64 { return t.total }

// Fraction reports bucket name's share of the total weight.
func (t *WeightedTally) Fraction(name string) float64 {
	if t.total == 0 {
		return 0
	}
	return t.weights[name] / t.total
}

// Names returns the bucket names in first-seen order.
func (t *WeightedTally) Names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Merge folds another tally into t.
func (t *WeightedTally) Merge(o *WeightedTally) {
	for _, name := range o.order {
		t.Add(name, o.weights[name])
	}
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); observations
// outside the range land in saturated edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	n       int
}

// NewHistogram returns a histogram with nb buckets covering [lo, hi).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if nb < 1 {
		nb = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, nb)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.n++
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int { return h.n }

// BucketMid reports the midpoint of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode reports the midpoint of the most populated bucket.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Buckets {
		if c > h.Buckets[best] {
			best = i
		}
	}
	return h.BucketMid(best)
}
