package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty stream not zeroed: %v", s.String())
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(42)
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if s.Mean() != 42 {
		t.Fatalf("mean = %v, want 42", s.Mean())
	}
	if s.Variance() != 0 {
		t.Fatalf("variance of single obs = %v, want 0", s.Variance())
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("min/max = %v/%v, want 42/42", s.Min(), s.Max())
	}
}

func TestStreamKnownValues(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got, want := s.Variance(), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("max = %v, want 9", got)
	}
	if got := s.Sum(); !almostEqual(got, 40, 1e-12) {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestStreamCV(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s.Add(3) // constant => CV 0
	}
	if got := s.CV(); got != 0 {
		t.Errorf("cv of constant = %v, want 0", got)
	}
	var z Stream
	z.Add(0)
	z.Add(0)
	if got := z.CV(); got != 0 {
		t.Errorf("cv with zero mean = %v, want 0 (guard)", got)
	}
}

func TestStreamMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Stream
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), whole.Count())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestStreamMergeEmpty(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 1 {
		t.Fatalf("merge empty changed stream: %v", a.String())
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatalf("merge into empty failed: %v", b.String())
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

// Property: streaming mean/variance agree with the direct two-pass formulas.
func TestStreamMatchesTwoPassProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 2
		xs := make([]float64, count)
		var s Stream
		for i := range xs {
			xs[i] = rng.Float64()*100 - 50
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(count)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(count-1)
		return almostEqual(s.Mean(), mean, 1e-9) && almostEqual(s.Variance(), variance, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentileExact(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSamplePercentileEmptyAndSingle(t *testing.T) {
	s := NewSample(4)
	if got := s.Percentile(50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	s.Add(7)
	for _, p := range []float64{0, 33, 50, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Errorf("single-obs P%v = %v, want 7", p, got)
		}
	}
}

func TestSampleFractionAbove(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FractionAbove(5); got != 0.6 {
		t.Errorf("Pr(X>=5) = %v, want 0.6", got)
	}
	if got := s.FractionAbove(0); got != 1 {
		t.Errorf("Pr(X>=0) = %v, want 1", got)
	}
	if got := s.FractionAbove(11); got != 0 {
		t.Errorf("Pr(X>=11) = %v, want 0", got)
	}
	if got := s.FractionAbove(5.5); got != 0.5 {
		t.Errorf("Pr(X>=5.5) = %v, want 0.5", got)
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Count() != 0 || len(s.Values()) != 0 {
		t.Fatalf("reset did not clear sample")
	}
	s.Add(9)
	if s.Mean() != 9 || s.Percentile(50) != 9 {
		t.Fatalf("sample unusable after reset")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestSamplePercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSample(0)
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			s.Add(rng.ExpFloat64())
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := s.Percentile(p)
			if v < prev || v < s.Min()-1e-12 || v > s.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Percentile must agree with a naive sorted-slice lookup at closest ranks.
func TestSamplePercentileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSample(0)
	raw := make([]float64, 999)
	for i := range raw {
		raw[i] = rng.NormFloat64()
		s.Add(raw[i])
	}
	sort.Float64s(raw)
	// With n=999, P50 is exactly raw[499]; P95 is raw[948.1] interpolated.
	if got := s.Percentile(50); !almostEqual(got, raw[499], 1e-12) {
		t.Errorf("P50 = %v, want %v", got, raw[499])
	}
	want := raw[948]*(1-0.1) + raw[949]*0.1
	if got := s.Percentile(95); !almostEqual(got, want, 1e-9) {
		t.Errorf("P95 = %v, want %v", got, want)
	}
}

func TestWeightedTally(t *testing.T) {
	w := NewWeightedTally()
	w.Add("C0iS0i", 3)
	w.Add("C6S0i", 1)
	w.Add("C0iS0i", 1)
	if got := w.Get("C0iS0i"); got != 4 {
		t.Errorf("Get = %v, want 4", got)
	}
	if got := w.Total(); got != 5 {
		t.Errorf("Total = %v, want 5", got)
	}
	if got := w.Fraction("C6S0i"); got != 0.2 {
		t.Errorf("Fraction = %v, want 0.2", got)
	}
	names := w.Names()
	if len(names) != 2 || names[0] != "C0iS0i" || names[1] != "C6S0i" {
		t.Errorf("Names = %v, want first-seen order", names)
	}
}

func TestWeightedTallyMerge(t *testing.T) {
	a, b := NewWeightedTally(), NewWeightedTally()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 || a.Total() != 6 {
		t.Fatalf("merge wrong: x=%v y=%v total=%v", a.Get("x"), a.Get("y"), a.Total())
	}
}

func TestWeightedTallyEmptyFraction(t *testing.T) {
	w := NewWeightedTally()
	if got := w.Fraction("nothing"); got != 0 {
		t.Errorf("empty fraction = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Buckets {
		if c != 1 {
			t.Errorf("bucket %d = %d, want 1", i, c)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
	if got := h.BucketMid(0); got != 0.5 {
		t.Errorf("BucketMid(0) = %v, want 0.5", got)
	}
}

func TestHistogramSaturation(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Buckets[0] != 1 || h.Buckets[3] != 1 {
		t.Fatalf("out-of-range values must saturate edges: %v", h.Buckets)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(2.5)
	h.Add(2.6)
	h.Add(0.1)
	if got := h.Mode(); got != 2.5 {
		t.Errorf("mode = %v, want 2.5", got)
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and nb<1 are both repaired
	h.Add(5)
	if h.Count() != 1 {
		t.Fatalf("degenerate histogram unusable")
	}
}

func TestSampleValuesKeepInsertionOrderAfterPercentile(t *testing.T) {
	s := NewSample(0)
	in := []float64{5, 1, 4, 2, 3}
	for _, x := range in {
		s.Add(x)
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50 = %v, want 3", got)
	}
	for i, x := range s.Values() {
		if x != in[i] {
			t.Fatalf("Values()[%d] = %v after percentile query, want insertion order %v", i, x, in)
		}
	}
	// Adding after a percentile query must be reflected in later queries.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("P0 after post-query Add = %v, want 0", got)
	}
}

func TestSampleTrimFront(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{9, 1, 2, 3} {
		s.Add(x)
	}
	// A percentile query before trimming must not disturb what TrimFront drops.
	_ = s.Percentile(95)
	s.TrimFront(1)
	if s.Count() != 3 || s.Mean() != 2 || s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("after TrimFront(1): n=%d mean=%v min=%v max=%v", s.Count(), s.Mean(), s.Min(), s.Max())
	}
	want := []float64{1, 2, 3}
	for i, x := range s.Values() {
		if x != want[i] {
			t.Fatalf("Values()[%d] = %v, want %v", i, x, want[i])
		}
	}
	s.TrimFront(0) // no-op
	if s.Count() != 3 {
		t.Fatalf("TrimFront(0) changed the sample")
	}
	s.TrimFront(10) // over-trim empties
	if s.Count() != 0 || len(s.Values()) != 0 {
		t.Fatalf("TrimFront past the end did not empty the sample")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Percentile(50) != 7 {
		t.Fatalf("sample unusable after over-trim")
	}
}

// TestSampleTrimFrontMatchesRebuild pins the exact equivalence the queue
// warm-up path relies on: TrimFront(n) must be bit-for-bit identical to
// re-adding xs[n:] into a fresh sample.
func TestSampleTrimFrontMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSample(0)
	var raw []float64
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		s.Add(x)
		raw = append(raw, x)
	}
	const n = 123
	s.TrimFront(n)
	fresh := NewSample(0)
	for _, x := range raw[n:] {
		fresh.Add(x)
	}
	if s.Count() != fresh.Count() || s.Mean() != fresh.Mean() ||
		s.Variance() != fresh.Variance() || s.Min() != fresh.Min() || s.Max() != fresh.Max() {
		t.Fatalf("TrimFront moments diverge from rebuild: %v vs %v", s.String(), fresh.String())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if s.Percentile(p) != fresh.Percentile(p) {
			t.Fatalf("P%v diverges: %v vs %v", p, s.Percentile(p), fresh.Percentile(p))
		}
	}
}

func TestSamplePercentileNearestRank(t *testing.T) {
	s := NewSample(0)
	if got := s.PercentileNearestRank(95); got != 0 {
		t.Fatalf("empty nearest-rank = %v, want 0", got)
	}
	for i := 1; i <= 20; i++ {
		s.Add(float64(i))
	}
	// ceil(0.95*20)-1 = 18 → value 19.
	if got := s.PercentileNearestRank(95); got != 19 {
		t.Errorf("P95 nearest-rank = %v, want 19", got)
	}
	if got := s.PercentileNearestRank(0); got != 1 {
		t.Errorf("P0 nearest-rank = %v, want 1", got)
	}
	if got := s.PercentileNearestRank(100); got != 20 {
		t.Errorf("P100 nearest-rank = %v, want 20", got)
	}
}

// TestSampleZeroAllocSteadyState pins the reuse contract: a warmed-up Sample
// must Add/Reset/query without allocating.
func TestSampleZeroAllocSteadyState(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 256; i++ {
		s.Add(float64(i % 17))
	}
	_ = s.Percentile(95) // warm the scratch buffer
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		for i := 0; i < 256; i++ {
			s.Add(float64((i * 31) % 23))
		}
		_ = s.Percentile(95)
		_ = s.PercentileNearestRank(95)
		_ = s.Mean()
	})
	if allocs != 0 {
		t.Errorf("steady-state Sample reuse allocates %v/op, want 0", allocs)
	}
}

// TestTrimBack pins the bit-identity contract: trimming a suffix leaves
// moments exactly as if the removed values were never added.
func TestTrimBack(t *testing.T) {
	vals := []float64{3.5, -1, 0.25, 7, 2, 9.5, -0.125}
	full := NewSample(0)
	ref := NewSample(0)
	for i, v := range vals {
		full.Add(v)
		if i < 4 {
			ref.Add(v)
		}
	}
	full.TrimBack(3)
	if got, want := full.Stream.State(), ref.Stream.State(); got != want {
		t.Fatalf("moments %+v != reference %+v", got, want)
	}
	if got, want := full.Percentile(50), ref.Percentile(50); got != want {
		t.Fatalf("p50 %g != %g", got, want)
	}
	full.TrimBack(0) // no-op
	if full.Count() != 4 {
		t.Fatalf("count %d after no-op trim", full.Count())
	}
	full.TrimBack(10) // over-trim empties
	if full.Count() != 0 || len(full.Values()) != 0 {
		t.Fatalf("over-trim left %d values", full.Count())
	}
}
