package policy

import (
	"math"
	"testing"
	"testing/quick"

	"sleepscale/internal/power"
	"sleepscale/internal/queue"
)

func TestBreakEvenDelayFormula(t *testing.T) {
	prof := power.Xeon()
	f := 0.5
	// Shallow C0(i)S0(i): 75·0.125 + 60.5 = 69.875 W; deep C6S3: 28.1 W;
	// active: 130·0.125 + 120 = 136.25 W; wake 1 s.
	got, err := BreakEvenDelay(prof, f, power.OperatingIdle, power.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 * 136.25 / (69.875 - 28.1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("break-even = %v, want %v", got, want)
	}
}

func TestBreakEvenDelayRejectsNonDeeper(t *testing.T) {
	prof := power.Xeon()
	// At f=1 the C0(i)S0(i) power (135.5 W) far exceeds C6S3 (28.1 W):
	// the "deep" target must actually save power.
	if _, err := BreakEvenDelay(prof, 1, power.DeeperSleep, power.OperatingIdle); err == nil {
		t.Error("inverted pair accepted")
	}
	if _, err := BreakEvenDelay(prof, 0, power.OperatingIdle, power.DeeperSleep); err == nil {
		t.Error("zero frequency accepted")
	}
	// At f=0.3 the power ordering genuinely flips — C0(i)S0(i) (62.5 W)
	// drops below C3S0(i) (82.5 W) — so the "inverted" pair is accepted,
	// with a zero break-even since C0(i)'s wake is free.
	tau, err := BreakEvenDelay(prof, 0.3, power.Sleep, power.OperatingIdle)
	if err != nil {
		t.Fatalf("low-frequency crossover pair rejected: %v", err)
	}
	if tau != 0 {
		t.Errorf("zero-wake deep target should break even immediately, got %v", tau)
	}
}

func TestGuardedPlanStructure(t *testing.T) {
	prof := power.Xeon()
	plan, err := GuardedPlan(prof, 0.5, power.OperatingIdle, power.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 2 {
		t.Fatalf("phases = %d", len(plan.Phases))
	}
	if plan.Phases[0].State != power.OperatingIdle || plan.Phases[0].Enter != 0 {
		t.Errorf("phase 0 wrong: %+v", plan.Phases[0])
	}
	tau, _ := BreakEvenDelay(prof, 0.5, power.OperatingIdle, power.DeeperSleep)
	if plan.Phases[1].Enter != tau {
		t.Errorf("deep entry = %v, want break-even %v", plan.Phases[1].Enter, tau)
	}
	if plan.Name != "C0(i)S0(i)→C6S3 guarded" {
		t.Errorf("name = %q", plan.Name)
	}
}

// TestGuardedIsTwoCompetitiveProperty is the ski-rental guarantee: on any
// single idle period, the guarded plan's energy is at most ~2× the better
// of always-shallow and immediately-deep (service energy is common to all
// three, which only strengthens the bound on totals).
func TestGuardedIsTwoCompetitiveProperty(t *testing.T) {
	prof := power.Xeon()
	run := func(plan SleepPlan, f, gap float64) float64 {
		pol := Policy{Frequency: f, Plan: plan}
		cfg, err := pol.Config(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		jobs := []queue.Job{
			{Arrival: 0, Size: 0.01},
			{Arrival: 0.0101/f + gap, Size: 0.01},
		}
		res, err := queue.Simulate(jobs, cfg, queue.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	prop := func(fRaw, gapRaw uint16) bool {
		f := 0.3 + float64(fRaw)/65535*0.7
		gap := math.Exp(float64(gapRaw)/65535*8 - 2) // 0.13 … 55 s
		guarded, err := GuardedPlan(prof, f, power.OperatingIdle, power.DeeperSleep)
		if err != nil {
			return false
		}
		eg := run(guarded, f, gap)
		es := run(SingleState(power.OperatingIdle), f, gap)
		ed := run(SingleState(power.DeeperSleep), f, gap)
		best := math.Min(es, ed)
		return eg <= 2*best+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestGuardedBeatsImmediateDeepOnShortGaps / beats shallow on long gaps:
// the threshold behaves as designed on both sides of the break-even point.
func TestGuardedThresholdBehaviour(t *testing.T) {
	prof := power.Xeon()
	f := 0.5
	tau, err := BreakEvenDelay(prof, f, power.OperatingIdle, power.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := GuardedPlan(prof, f, power.OperatingIdle, power.DeeperSleep)
	if err != nil {
		t.Fatal(err)
	}
	energy := func(plan SleepPlan, gap float64) float64 {
		pol := Policy{Frequency: f, Plan: plan}
		cfg, err := pol.Config(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		jobs := []queue.Job{
			{Arrival: 0, Size: 0.01},
			{Arrival: 0.03 + gap, Size: 0.01},
		}
		res, err := queue.Simulate(jobs, cfg, queue.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	shortGap := tau / 4
	longGap := tau * 20
	if eg, ed := energy(guarded, shortGap), energy(SingleState(power.DeeperSleep), shortGap); eg >= ed {
		t.Errorf("short gap: guarded %v not below immediate deep %v", eg, ed)
	}
	if eg, es := energy(guarded, longGap), energy(SingleState(power.OperatingIdle), longGap); eg >= es {
		t.Errorf("long gap: guarded %v not below always-shallow %v", eg, es)
	}
}
