package policy

import (
	"fmt"

	"sleepscale/internal/power"
)

// BreakEvenDelay returns the idle duration beyond which having entered deep
// saves energy over staying in shallow, given that waking from deep costs
// its wake-up latency at active power (the paper's conservative billing):
//
//	T* = w_deep · P_active(f) / (P_shallow(f) − P_deep(f))
//
// An idle period shorter than T* loses energy in deep (the wake premium
// outweighs the residency saving); a longer one wins. This is the classic
// guard threshold behind "guarded power gating" [23], which §4.2 lesson 3
// recommends for aggressive states like C6S3.
func BreakEvenDelay(prof *power.Profile, f float64, shallow, deep power.State) (float64, error) {
	if !(f > 0 && f <= 1) {
		return 0, fmt.Errorf("policy: frequency %g outside (0,1]", f)
	}
	ps := prof.SystemPower(shallow, f)
	pd := prof.SystemPower(deep, f)
	if pd >= ps {
		return 0, fmt.Errorf("policy: %v (%.3g W) not deeper than %v (%.3g W) at f=%g",
			deep, pd, shallow, ps, f)
	}
	return prof.Wake(deep) * prof.ActivePower(f) / (ps - pd), nil
}

// GuardedPlan returns the two-phase plan shallow→deep with the deep entry
// delayed by the break-even duration: the timeout analogue of ski rental,
// whose idle-period energy is at most twice the best of always-shallow and
// immediately-deep on every individual idle period, whatever the idle-length
// distribution. Use it when arrival statistics are unknown or bursty
// (lesson 4 / lesson 5's closing remark).
func GuardedPlan(prof *power.Profile, f float64, shallow, deep power.State) (SleepPlan, error) {
	tau, err := BreakEvenDelay(prof, f, shallow, deep)
	if err != nil {
		return SleepPlan{}, err
	}
	plan := SleepPlan{
		Name: fmt.Sprintf("%s→%s guarded", shallow, deep),
		Phases: []PlanPhase{
			{State: shallow, Enter: 0},
			{State: deep, Enter: tau},
		},
	}
	if err := plan.Validate(); err != nil {
		return SleepPlan{}, err
	}
	return plan, nil
}
