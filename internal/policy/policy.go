// Package policy defines the SleepScale decision space of §5.1: a policy is
// a DVFS frequency setting paired with a plan describing which low-power
// states the server enters when idle and after what delays. The package also
// implements the paper's two QoS constraint families (normalized mean
// response time and 95th-percentile response time, both derived from a peak
// design utilization ρ_b) and the enumeration of candidate policies the
// policy manager characterizes.
package policy

import (
	"fmt"
	"math"
	"strings"

	"sleepscale/internal/analytic"
	"sleepscale/internal/power"
	"sleepscale/internal/queue"
)

// PlanPhase is one step of a sleep plan: enter State τ seconds after the
// queue empties.
type PlanPhase struct {
	// State is the combined CPU+platform low-power state.
	State power.State
	// Enter is τᵢ in seconds; phases must be ordered by Enter.
	Enter float64
}

// SleepPlan is an ordered sequence of low-power states. The empty plan means
// the server never leaves C0(a)S0(a) (DVFS-only idling).
type SleepPlan struct {
	// Name labels the plan in reports, e.g. "C6S3" or
	// "C0(i)S0(i)→C6S3@30/µ".
	Name string
	// Phases is the ordered state sequence.
	Phases []PlanPhase
}

// NoSleep returns the empty plan: the server idles in the active state,
// modeling the DVFS-only baseline of §6.1.
func NoSleep() SleepPlan { return SleepPlan{Name: "none"} }

// SingleState returns the plan that enters s immediately when the queue
// empties (τ = 0) — the §4.2 setting.
func SingleState(s power.State) SleepPlan {
	return SleepPlan{Name: s.String(), Phases: []PlanPhase{{State: s}}}
}

// DelayedState returns the plan that enters s after waiting tau seconds.
func DelayedState(s power.State, tau float64) SleepPlan {
	return SleepPlan{
		Name:   fmt.Sprintf("%s@%.3g", s, tau),
		Phases: []PlanPhase{{State: s, Enter: tau}},
	}
}

// Sequence returns a plan walking through the given phases in order.
func Sequence(name string, phases ...PlanPhase) SleepPlan {
	if name == "" {
		parts := make([]string, len(phases))
		for i, ph := range phases {
			parts[i] = ph.State.String()
		}
		name = strings.Join(parts, "→")
	}
	return SleepPlan{Name: name, Phases: phases}
}

// FullSequence returns the §4.2 lesson-5 plan: every low-power state from
// C0(i)S0(i) to C6S3 entered in order at the given delays (which must have
// exactly five entries).
func FullSequence(delays [5]float64) SleepPlan {
	states := power.LowPowerStates()
	phases := make([]PlanPhase, len(states))
	for i, s := range states {
		phases[i] = PlanPhase{State: s, Enter: delays[i]}
	}
	return Sequence("full-sequence", phases...)
}

// Validate checks plan ordering and state validity.
func (pl SleepPlan) Validate() error {
	prev := math.Inf(-1)
	for i, ph := range pl.Phases {
		if !ph.State.Valid() {
			return fmt.Errorf("policy: plan %q phase %d: invalid state %v", pl.Name, i, ph.State)
		}
		if ph.State == power.Active {
			return fmt.Errorf("policy: plan %q phase %d: active state is not a sleep state", pl.Name, i)
		}
		if ph.Enter < 0 || ph.Enter < prev {
			return fmt.Errorf("policy: plan %q phase %d: enter %g not non-decreasing", pl.Name, i, ph.Enter)
		}
		prev = ph.Enter
	}
	return nil
}

// DeepestState reports the final state of the plan, or the active state for
// the empty plan.
func (pl SleepPlan) DeepestState() power.State {
	if len(pl.Phases) == 0 {
		return power.Active
	}
	return pl.Phases[len(pl.Phases)-1].State
}

// DefaultPlans returns SleepScale's standard candidates: each of the five
// low-power states entered immediately (§5.1.1).
func DefaultPlans() []SleepPlan {
	states := power.LowPowerStates()
	plans := make([]SleepPlan, len(states))
	for i, s := range states {
		plans[i] = SingleState(s)
	}
	return plans
}

// Policy pairs a frequency setting with a sleep plan.
type Policy struct {
	// Frequency is the DVFS factor f ∈ (0, 1].
	Frequency float64
	// Plan is the low-power state sequence used when idle.
	Plan SleepPlan
}

// String implements fmt.Stringer, e.g. "f=0.42 C6S3".
func (p Policy) String() string {
	return fmt.Sprintf("f=%.2f %s", p.Frequency, p.Plan.Name)
}

// Config resolves the policy against a power profile into the numeric
// queue.Config the simulator consumes. freqExponent is the workload's β.
func (p Policy) Config(prof *power.Profile, freqExponent float64) (queue.Config, error) {
	return p.AppendConfig(prof, freqExponent, nil)
}

// AppendConfig is Config with caller-provided phase storage: the resolved
// phases are appended to buf (normally buf[:0] of a scratch slice), so a
// selection loop resolving thousands of candidates reuses one buffer instead
// of allocating per policy. The returned Config's Phases alias buf's array
// whenever capacity suffices.
func (p Policy) AppendConfig(prof *power.Profile, freqExponent float64, buf []queue.SleepPhase) (queue.Config, error) {
	if err := p.Plan.Validate(); err != nil {
		return queue.Config{}, err
	}
	cfg := queue.Config{
		Frequency:    p.Frequency,
		FreqExponent: freqExponent,
		ActivePower:  prof.ActivePower(p.Frequency),
		IdlePower:    prof.ActivePower(p.Frequency),
		Phases:       buf,
	}
	for _, ph := range p.Plan.Phases {
		cfg.Phases = append(cfg.Phases, queue.SleepPhase{
			Name:        ph.State.String(),
			Power:       prof.SystemPower(ph.State, p.Frequency),
			WakeLatency: prof.Wake(ph.State),
			EnterAfter:  ph.Enter,
		})
	}
	if err := cfg.Validate(); err != nil {
		return queue.Config{}, err
	}
	return cfg, nil
}

// AnalyticModel resolves the policy into the Appendix model for arrival rate
// lambda and maximum service rate mu (CPU-bound service assumed, as in the
// paper's closed forms).
func (p Policy) AnalyticModel(prof *power.Profile, lambda, mu float64) (analytic.Model, error) {
	if err := p.Plan.Validate(); err != nil {
		return analytic.Model{}, err
	}
	m := analytic.Model{
		Lambda:      lambda,
		Mu:          mu,
		F:           p.Frequency,
		ActivePower: prof.ActivePower(p.Frequency),
	}
	for _, ph := range p.Plan.Phases {
		m.States = append(m.States, analytic.SleepState{
			Power: prof.SystemPower(ph.State, p.Frequency),
			Enter: ph.Enter,
			Wake:  prof.Wake(ph.State),
		})
	}
	return m, nil
}

// Metrics is the measured behaviour of one policy under one workload.
type Metrics struct {
	// AvgPower is E[P] in watts.
	AvgPower float64
	// MeanResponse is E[R] in seconds.
	MeanResponse float64
	// P95Response and P99Response are response-time percentiles in seconds.
	P95Response float64
	P99Response float64
}

// Evaluation couples a policy with its metrics and QoS feasibility.
type Evaluation struct {
	Policy   Policy
	Metrics  Metrics
	Feasible bool
}

// QoS is a quality-of-service constraint over policy metrics.
type QoS interface {
	// Satisfied reports whether the metrics meet the constraint.
	Satisfied(m Metrics) bool
	// Violation reports how far the metrics exceed the constraint in
	// seconds (≤ 0 when satisfied); the manager's fallback minimizes it
	// when no candidate is feasible.
	Violation(m Metrics) float64
	// EpochWithinBudget reports whether a realized epoch (mean and P95
	// delay) met the target; the over-provisioning guard of §5.2.3 keys
	// off this.
	EpochWithinBudget(meanDelay, p95Delay float64) bool
	// Describe renders the constraint for reports.
	Describe() string
}

// MeanResponseQoS bounds the mean response time by an absolute budget.
type MeanResponseQoS struct {
	// Budget is the maximum allowed E[R] in seconds.
	Budget float64
}

// NewMeanResponseQoS derives the §5.1.1 baseline budget from a peak design
// utilization ρ_b and service rate µ: E[R] ≤ 1/((1−ρ_b)·µ), i.e. the mean
// response of the baseline M/M/1 running at f = 1 under load ρ_b.
func NewMeanResponseQoS(rhoB, mu float64) (MeanResponseQoS, error) {
	if rhoB <= 0 || rhoB >= 1 || mu <= 0 {
		return MeanResponseQoS{}, fmt.Errorf("policy: bad baseline ρ_b=%g µ=%g", rhoB, mu)
	}
	return MeanResponseQoS{Budget: 1 / ((1 - rhoB) * mu)}, nil
}

// Satisfied implements QoS.
func (q MeanResponseQoS) Satisfied(m Metrics) bool { return m.MeanResponse <= q.Budget }

// Violation implements QoS.
func (q MeanResponseQoS) Violation(m Metrics) float64 { return m.MeanResponse - q.Budget }

// EpochWithinBudget implements QoS.
func (q MeanResponseQoS) EpochWithinBudget(meanDelay, _ float64) bool {
	return meanDelay <= q.Budget
}

// Describe implements QoS.
func (q MeanResponseQoS) Describe() string {
	return fmt.Sprintf("E[R] ≤ %.4g s", q.Budget)
}

// PercentileQoS bounds a response-time percentile by a deadline:
// Pr(R ≥ Deadline) ≤ 1 − Quantile.
type PercentileQoS struct {
	// Deadline is d in seconds.
	Deadline float64
	// Quantile selects the percentile; 0.95 and 0.99 are supported.
	Quantile float64
}

// NewPercentileQoS derives the tail-constraint analogue of the §5.1.1
// baseline: the deadline is the baseline M/M/1's own q-quantile at ρ_b and
// f = 1, i.e. d = −ln(1−q)/((1−ρ_b)µ).
func NewPercentileQoS(rhoB, mu, q float64) (PercentileQoS, error) {
	if rhoB <= 0 || rhoB >= 1 || mu <= 0 {
		return PercentileQoS{}, fmt.Errorf("policy: bad baseline ρ_b=%g µ=%g", rhoB, mu)
	}
	if q != 0.95 && q != 0.99 {
		return PercentileQoS{}, fmt.Errorf("policy: unsupported quantile %g (want 0.95 or 0.99)", q)
	}
	return PercentileQoS{
		Deadline: -math.Log(1-q) / ((1 - rhoB) * mu),
		Quantile: q,
	}, nil
}

// Satisfied implements QoS.
func (q PercentileQoS) Satisfied(m Metrics) bool {
	switch q.Quantile {
	case 0.95:
		return m.P95Response <= q.Deadline
	case 0.99:
		return m.P99Response <= q.Deadline
	}
	return false
}

// Violation implements QoS.
func (q PercentileQoS) Violation(m Metrics) float64 {
	switch q.Quantile {
	case 0.99:
		return m.P99Response - q.Deadline
	default:
		return m.P95Response - q.Deadline
	}
}

// EpochWithinBudget implements QoS.
func (q PercentileQoS) EpochWithinBudget(_, p95Delay float64) bool {
	return p95Delay <= q.Deadline
}

// Describe implements QoS.
func (q PercentileQoS) Describe() string {
	return fmt.Sprintf("P%.0f(R) ≤ %.4g s", q.Quantile*100, q.Deadline)
}

// Space is the candidate-policy grid the manager sweeps: every plan crossed
// with a frequency grid from the stability floor to 1.
type Space struct {
	// Plans are the candidate sleep plans.
	Plans []SleepPlan
	// FreqStep is the frequency grid step (paper: 0.01 for smooth plots,
	// "about 10 distinct frequencies" in a real system).
	FreqStep float64
	// MinFreq is the absolute frequency floor (also the floor for
	// memory-bound workloads, which any f serves stably).
	MinFreq float64
}

// DefaultSpace returns the five single-state plans on a 0.01 grid.
func DefaultSpace() Space {
	return Space{Plans: DefaultPlans(), FreqStep: 0.01, MinFreq: 0.05}
}

// Frequencies returns the ascending frequency grid for utilization rho and
// frequency exponent beta. The floor is the paper's stability margin
// f ≥ ρ^(1/β) + step (the smallest f with µ·f^β > λ), clamped to
// [MinFreq, 1]; 1.0 is always included.
func (s Space) Frequencies(rho, beta float64) []float64 {
	step := s.FreqStep
	if step <= 0 {
		step = 0.01
	}
	floor := s.MinFreq
	if floor <= 0 {
		floor = step
	}
	if beta > 0 && rho > 0 {
		stab := math.Pow(rho, 1/beta) + step
		if stab > floor {
			floor = stab
		}
	}
	if floor > 1 {
		return []float64{1}
	}
	start := math.Ceil(floor/step-1e-9) * step
	var out []float64
	for f := start; f < 1-1e-9; f += step {
		out = append(out, math.Round(f/step)*step)
	}
	out = append(out, 1)
	return out
}

// Policies enumerates every (plan, frequency) pair for the given utilization
// and frequency exponent.
func (s Space) Policies(rho, beta float64) []Policy {
	freqs := s.Frequencies(rho, beta)
	out := make([]Policy, 0, len(freqs)*len(s.Plans))
	for _, pl := range s.Plans {
		for _, f := range freqs {
			out = append(out, Policy{Frequency: f, Plan: pl})
		}
	}
	return out
}
