package policy

import (
	"math"
	"testing"
	"testing/quick"

	"sleepscale/internal/power"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1e-12, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestPlanConstructors(t *testing.T) {
	s := SingleState(power.DeeperSleep)
	if s.Name != "C6S3" || len(s.Phases) != 1 || s.Phases[0].Enter != 0 {
		t.Errorf("SingleState wrong: %+v", s)
	}
	d := DelayedState(power.DeeperSleep, 0.126)
	if d.Phases[0].Enter != 0.126 {
		t.Errorf("DelayedState wrong: %+v", d)
	}
	seq := Sequence("", PlanPhase{State: power.OperatingIdle},
		PlanPhase{State: power.DeeperSleep, Enter: 2})
	if seq.Name != "C0(i)S0(i)→C6S3" {
		t.Errorf("sequence auto-name = %q", seq.Name)
	}
	if NoSleep().Name != "none" || len(NoSleep().Phases) != 0 {
		t.Errorf("NoSleep wrong: %+v", NoSleep())
	}
	full := FullSequence([5]float64{0, 0.01, 0.05, 0.2, 1})
	if len(full.Phases) != 5 {
		t.Fatalf("full sequence has %d phases", len(full.Phases))
	}
	if full.Phases[4].State != power.DeeperSleep {
		t.Errorf("full sequence last state = %v", full.Phases[4].State)
	}
	if err := full.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []SleepPlan{
		{Name: "neg", Phases: []PlanPhase{{State: power.Halt, Enter: -1}}},
		{Name: "order", Phases: []PlanPhase{
			{State: power.Halt, Enter: 2}, {State: power.DeeperSleep, Enter: 1}}},
		{Name: "active", Phases: []PlanPhase{{State: power.Active}}},
		{Name: "invalid", Phases: []PlanPhase{{State: power.State{CPU: power.C1, Platform: power.S3}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q accepted", p.Name)
		}
	}
}

func TestDeepestState(t *testing.T) {
	if got := NoSleep().DeepestState(); got != power.Active {
		t.Errorf("empty plan deepest = %v", got)
	}
	seq := Sequence("", PlanPhase{State: power.OperatingIdle},
		PlanPhase{State: power.DeeperSleep, Enter: 1})
	if got := seq.DeepestState(); got != power.DeeperSleep {
		t.Errorf("deepest = %v", got)
	}
}

func TestDefaultPlansCoverAllStates(t *testing.T) {
	plans := DefaultPlans()
	if len(plans) != 5 {
		t.Fatalf("default plans = %d, want 5", len(plans))
	}
	names := map[string]bool{}
	for _, p := range plans {
		names[p.Name] = true
	}
	for _, s := range power.LowPowerStates() {
		if !names[s.String()] {
			t.Errorf("missing plan for %v", s)
		}
	}
}

func TestPolicyConfigResolution(t *testing.T) {
	prof := power.Xeon()
	p := Policy{Frequency: 0.5, Plan: SingleState(power.DeeperSleep)}
	cfg, err := p.Config(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "active power", cfg.ActivePower, 130*0.125+120, 1e-12)
	approx(t, "idle power", cfg.IdlePower, 130*0.125+120, 1e-12)
	if len(cfg.Phases) != 1 {
		t.Fatalf("phases = %d", len(cfg.Phases))
	}
	approx(t, "sleep power", cfg.Phases[0].Power, 28.1, 1e-12)
	approx(t, "wake", cfg.Phases[0].WakeLatency, 1, 1e-12)
	if cfg.Phases[0].Name != "C6S3" {
		t.Errorf("phase name = %q", cfg.Phases[0].Name)
	}
	// C0(i)S0(i) power tracks f cubically.
	p2 := Policy{Frequency: 0.5, Plan: SingleState(power.OperatingIdle)}
	cfg2, err := p2.Config(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "C0(i)S0(i) power", cfg2.Phases[0].Power, 75*0.125+60.5, 1e-12)
}

func TestPolicyConfigRejectsBadPlans(t *testing.T) {
	prof := power.Xeon()
	p := Policy{Frequency: 0.5, Plan: SleepPlan{
		Name: "bad", Phases: []PlanPhase{{State: power.Active}}}}
	if _, err := p.Config(prof, 1); err == nil {
		t.Error("active-state plan accepted")
	}
	p2 := Policy{Frequency: 0, Plan: NoSleep()}
	if _, err := p2.Config(prof, 1); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestAnalyticModelResolution(t *testing.T) {
	prof := power.Xeon()
	p := Policy{Frequency: 0.42, Plan: SingleState(power.DeeperSleep)}
	m, err := p.AnalyticModel(prof, 0.5155, 5.155)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, "P0", m.ActivePower, 130*math.Pow(0.42, 3)+120, 1e-12)
	if len(m.States) != 1 || m.States[0].Power != 28.1 || m.States[0].Wake != 1 {
		t.Errorf("states wrong: %+v", m.States)
	}
}

func TestMeanResponseQoS(t *testing.T) {
	mu := 1 / 0.194 // DNS
	q, err := NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1.1: µE[R] ≤ 1/(1−0.8) = 5, so the absolute budget is 5/µ.
	approx(t, "budget", q.Budget, 5*0.194, 1e-9)
	ok := Metrics{MeanResponse: q.Budget - 0.01}
	notOk := Metrics{MeanResponse: q.Budget + 0.01}
	if !q.Satisfied(ok) || q.Satisfied(notOk) {
		t.Error("satisfaction wrong")
	}
	if q.Violation(ok) > 0 || q.Violation(notOk) <= 0 {
		t.Error("violation sign wrong")
	}
	if !q.EpochWithinBudget(q.Budget-0.01, 99) || q.EpochWithinBudget(q.Budget+0.01, 0) {
		t.Error("epoch budget wrong")
	}
	for _, bad := range [][2]float64{{0, 1}, {1, 1}, {0.5, 0}} {
		if _, err := NewMeanResponseQoS(bad[0], bad[1]); err == nil {
			t.Errorf("baseline %v accepted", bad)
		}
	}
}

func TestPercentileQoS(t *testing.T) {
	mu := 1 / 0.194
	q, err := NewPercentileQoS(0.8, mu, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline is the baseline M/M/1 95th percentile: −ln(0.05)/((1−ρb)µ).
	approx(t, "deadline", q.Deadline, -math.Log(0.05)/((1-0.8)*mu), 1e-9)
	ok := Metrics{P95Response: q.Deadline * 0.9}
	notOk := Metrics{P95Response: q.Deadline * 1.1}
	if !q.Satisfied(ok) || q.Satisfied(notOk) {
		t.Error("satisfaction wrong")
	}
	if q.Violation(notOk) <= 0 {
		t.Error("violation sign wrong")
	}
	if !q.EpochWithinBudget(99, q.Deadline*0.9) {
		t.Error("epoch budget should use P95")
	}
	q99, err := NewPercentileQoS(0.8, mu, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !q99.Satisfied(Metrics{P99Response: q99.Deadline * 0.5}) {
		t.Error("P99 satisfaction wrong")
	}
	if _, err := NewPercentileQoS(0.8, mu, 0.5); err == nil {
		t.Error("unsupported quantile accepted")
	}
}

func TestSpaceFrequencies(t *testing.T) {
	s := DefaultSpace()
	// CPU-bound at ρ=0.4: the paper's floor is ρ+0.01.
	fs := s.Frequencies(0.4, 1)
	if fs[0] < 0.41-1e-9 {
		t.Errorf("floor = %v, want ≥ 0.41", fs[0])
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("grid must end at 1, got %v", fs[len(fs)-1])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("grid not ascending at %d: %v", i, fs)
		}
	}
	// Memory-bound: any frequency is stable; floor is MinFreq.
	fs0 := s.Frequencies(0.4, 0)
	if fs0[0] > 0.06 {
		t.Errorf("memory-bound floor = %v, want ≈ MinFreq", fs0[0])
	}
	// Sub-linear β: stability needs f^β > ρ ⇒ f > ρ^(1/β).
	fs5 := s.Frequencies(0.4, 0.5)
	if want := 0.4 * 0.4; fs5[0] < want {
		t.Errorf("β=0.5 floor = %v, want ≥ %v", fs5[0], want)
	}
	// Utilization so high only f=1 remains.
	fs99 := s.Frequencies(0.995, 1)
	if len(fs99) != 1 || fs99[0] != 1 {
		t.Errorf("near-saturation grid = %v, want [1]", fs99)
	}
}

func TestSpacePolicies(t *testing.T) {
	s := Space{Plans: DefaultPlans(), FreqStep: 0.1, MinFreq: 0.1}
	pols := s.Policies(0.35, 1)
	fs := s.Frequencies(0.35, 1)
	if len(pols) != len(fs)*5 {
		t.Fatalf("policies = %d, want %d", len(pols), len(fs)*5)
	}
	// Every policy's frequency is on the grid and every plan appears.
	plans := map[string]bool{}
	for _, p := range pols {
		plans[p.Plan.Name] = true
	}
	if len(plans) != 5 {
		t.Errorf("plans seen = %d, want 5", len(plans))
	}
}

// Property: the frequency grid is always ascending, within (0,1], ends at 1,
// and respects the stability floor.
func TestFrequencyGridProperty(t *testing.T) {
	s := DefaultSpace()
	f := func(rs, bs uint8) bool {
		rho := float64(rs) / 256 * 0.98
		beta := float64(bs) / 255
		fs := s.Frequencies(rho, beta)
		if len(fs) == 0 || fs[len(fs)-1] != 1 {
			return false
		}
		prev := 0.0
		for _, fr := range fs {
			if fr <= prev || fr > 1 {
				return false
			}
			if beta > 0 && rho > 0 && math.Pow(fr, beta) <= rho-1e-9 {
				return false // unstable frequency in grid
			}
			prev = fr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	p := Policy{Frequency: 0.42, Plan: SingleState(power.DeeperSleep)}
	if got := p.String(); got != "f=0.42 C6S3" {
		t.Errorf("String = %q", got)
	}
}
