// Package experiments regenerates every table and figure of the SleepScale
// paper's evaluation. Each FigureN/TableN function returns structured series
// plus human-readable tables; cmd/experiments renders them and the package's
// tests assert the reproduction criteria listed in DESIGN.md §5 (shape and
// ordering, not absolute watts — our substrate is a simulator, not the
// authors' testbed).
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sleepscale/internal/power"
	"sleepscale/internal/queue"
	"sleepscale/internal/workload"
)

// Config tunes experiment fidelity. DefaultConfig matches the paper's
// methodology; QuickConfig trades resolution for speed (tests, benches).
type Config struct {
	// Profile is the power model (Xeon by default).
	Profile *power.Profile
	// Seed drives all randomness; experiments are deterministic in it.
	Seed int64
	// EvalJobs is N, the jobs per policy simulation (paper: 10,000).
	EvalJobs int
	// FreqStep is the DVFS sweep step (paper: 0.01).
	FreqStep float64
	// MarkStep is the spacing of reported points along frequency sweeps
	// (the paper's hash marks are 0.05 apart).
	MarkStep float64
	// TraceDays is how many synthetic trace days to generate.
	TraceDays int
	// TraceWindow is the evaluated portion of each day in minutes
	// [start, end); the paper uses 2 AM–8 PM = [120, 1200).
	TraceWindowStart int
	TraceWindowEnd   int
	// RunnerEvalJobs is N for in-loop policy selection during trace runs.
	RunnerEvalJobs int
	// RunnerFreqStep is the frequency grid inside trace runs (a real
	// system has ~10 frequencies; coarser than the §4 sweeps).
	RunnerFreqStep float64
}

// DefaultConfig returns paper-fidelity settings.
func DefaultConfig() Config {
	return Config{
		Profile:          power.Xeon(),
		Seed:             1,
		EvalJobs:         10000,
		FreqStep:         0.01,
		MarkStep:         0.05,
		TraceDays:        1,
		TraceWindowStart: 120,
		TraceWindowEnd:   1200,
		RunnerEvalJobs:   1500,
		RunnerFreqStep:   0.02,
	}
}

// QuickConfig returns reduced-resolution settings for tests and benches.
func QuickConfig() Config {
	return Config{
		Profile:          power.Xeon(),
		Seed:             1,
		EvalJobs:         4000,
		FreqStep:         0.02,
		MarkStep:         0.05,
		TraceDays:        1,
		TraceWindowStart: 120,
		TraceWindowEnd:   420, // 2 AM–7 AM: five hours
		RunnerEvalJobs:   600,
		RunnerFreqStep:   0.05,
	}
}

func (c Config) profile() *power.Profile {
	if c.Profile != nil {
		return c.Profile
	}
	return power.Xeon()
}

// Table is a rendered result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Point is one sample along a frequency sweep.
type Point struct {
	// Frequency is the DVFS factor f.
	Frequency float64
	// NormMeanResponse is µ·E[R] (normalized by the f = 1 service time).
	NormMeanResponse float64
	// Power is E[P] in watts.
	Power float64
}

// Curve is one labeled series of sweep points.
type Curve struct {
	// Label names the policy family, e.g. "C6S3".
	Label string
	// Points are ordered by descending frequency (left end of the paper's
	// plots is f = 1).
	Points []Point
}

// MinPower returns the point with the lowest power (the bowl bottom) and
// true, or false for an empty curve.
func (c Curve) MinPower() (Point, bool) {
	if len(c.Points) == 0 {
		return Point{}, false
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.Power < best.Power {
			best = p
		}
	}
	return best, true
}

// MinPowerWithin returns the minimum-power point whose normalized mean
// response does not exceed budget.
func (c Curve) MinPowerWithin(budget float64) (Point, bool) {
	found := false
	var best Point
	for _, p := range c.Points {
		if p.NormMeanResponse > budget {
			continue
		}
		if !found || p.Power < best.Power {
			best, found = p, true
		}
	}
	return best, found
}

// crnJobs generates the common-random-numbers evaluation stream for a
// workload at the given utilization: one job set shared by every policy
// (arrivals fixed, sizes at f = 1), the §4.1 methodology.
func crnJobs(cfg Config, spec workload.Spec, rho float64) ([]queue.Job, error) {
	st, err := workload.NewIdealizedStats(spec)
	if err != nil {
		return nil, err
	}
	st, err = st.AtUtilization(rho)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return st.Jobs(cfg.EvalJobs, rng), nil
}

// sweep evaluates one plan across the frequency grid over the given jobs,
// returning a curve ordered from f = 1 downwards. mu is the workload's
// maximum service rate (for normalization), beta its frequency exponent.
func sweep(cfg Config, jobs []queue.Job, plan planSpec, mu, rho, beta float64) (Curve, error) {
	freqs := freqGrid(rho, beta, cfg.FreqStep)
	curve := Curve{Label: plan.label}
	// Walk from high to low frequency to mirror the paper's plots.
	for i := len(freqs) - 1; i >= 0; i-- {
		f := freqs[i]
		qcfg, err := plan.config(cfg.profile(), f, beta)
		if err != nil {
			return Curve{}, err
		}
		res, err := queue.Simulate(jobs, qcfg, queue.Options{})
		if err != nil {
			return Curve{}, err
		}
		curve.Points = append(curve.Points, Point{
			Frequency:        f,
			NormMeanResponse: mu * res.MeanResponse,
			Power:            res.AvgPower,
		})
	}
	return curve, nil
}

// freqGrid mirrors policy.Space.Frequencies but local to the sweep helpers.
func freqGrid(rho, beta, step float64) []float64 {
	if step <= 0 {
		step = 0.01
	}
	floor := step
	if beta > 0 && rho > 0 {
		stab := math.Pow(rho, 1/beta) + step
		if stab > floor {
			floor = stab
		}
	}
	var out []float64
	start := math.Ceil(floor/step-1e-9) * step
	for f := start; f < 1-1e-9; f += step {
		out = append(out, math.Round(f/step)*step)
	}
	out = append(out, 1)
	return out
}
