package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON writes any experiment result as indented JSON, for downstream
// plotting tools.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// WriteCurvesCSV writes sweep curves in long format:
// label,frequency,norm_mean_response,power_w — one row per point.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "frequency", "norm_mean_response", "power_w"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			row := []string{
				c.Label,
				strconv.FormatFloat(p.Frequency, 'g', -1, 64),
				strconv.FormatFloat(p.NormMeanResponse, 'g', -1, 64),
				strconv.FormatFloat(p.Power, 'g', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes every Figure 6 policy map in long format:
// workload,qos,rho_b,model,rho,frequency,plan,feasible,power_w,norm_mean_response.
func (r *Figure6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "qos", "rho_b", "model", "rho",
		"frequency", "plan", "feasible", "power_w", "norm_mean_response"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pm := range r.Maps {
		for _, p := range pm.Points {
			row := []string{
				pm.Workload, pm.QoSKind,
				strconv.FormatFloat(pm.RhoB, 'g', -1, 64),
				pm.Model,
				strconv.FormatFloat(p.Utilization, 'g', -1, 64),
				strconv.FormatFloat(p.Frequency, 'g', -1, 64),
				p.Plan,
				strconv.FormatBool(p.Feasible),
				strconv.FormatFloat(p.Power, 'g', -1, 64),
				strconv.FormatFloat(p.NormMeanResponse, 'g', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the Figure 8 grid:
// predictor,epoch_minutes,mean_response_s,p95_response_s,avg_power_w.
func (r *Figure8Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"predictor", "epoch_minutes",
		"mean_response_s", "p95_response_s", "avg_power_w"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Predictor,
			strconv.Itoa(c.EpochMinutes),
			strconv.FormatFloat(c.MeanResponse, 'g', -1, 64),
			strconv.FormatFloat(c.P95Response, 'g', -1, 64),
			strconv.FormatFloat(c.AvgPower, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the Figure 9 strategy comparison.
func (r *Figure9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "mean_response_s",
		"p95_response_s", "avg_power_w", "energy_j"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Strategy,
			strconv.FormatFloat(row.MeanResponse, 'g', -1, 64),
			strconv.FormatFloat(row.P95Response, 'g', -1, 64),
			strconv.FormatFloat(row.AvgPower, 'g', -1, 64),
			strconv.FormatFloat(row.Energy, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the Figure 10 state distribution in long format:
// trace,workload,rho_b,plan,fraction.
func (r *Figure10Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "workload", "rho_b", "plan", "fraction"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for plan, frac := range row.PlanFractions {
			rec := []string{
				row.TraceName, row.Workload,
				strconv.FormatFloat(row.RhoB, 'g', -1, 64),
				plan,
				strconv.FormatFloat(frac, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVWriter is implemented by results that support long-format CSV export.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

// ExportCSV writes any supported result as CSV; curve-based results export
// their curves, others their native layout.
func ExportCSV(w io.Writer, result any) error {
	switch r := result.(type) {
	case *Figure1Result:
		var all []Curve
		for _, name := range []string{"DNS", "Google"} {
			for _, c := range r.Curves[name] {
				c.Label = name + ": " + c.Label
				all = append(all, c)
			}
		}
		return WriteCurvesCSV(w, all)
	case *Figure2Result:
		return WriteCurvesCSV(w, r.Curves)
	case *Figure3Result:
		all := append([]Curve{}, r.Curves...)
		for _, c := range r.Bursty {
			c.Label = "bursty: " + c.Label
			all = append(all, c)
		}
		return WriteCurvesCSV(w, all)
	case *Figure4Result:
		return WriteCurvesCSV(w, r.Curves)
	case *Figure5Result:
		return WriteCurvesCSV(w, r.Curves)
	case CSVWriter:
		return r.WriteCSV(w)
	}
	return fmt.Errorf("experiments: no CSV exporter for %T", result)
}
