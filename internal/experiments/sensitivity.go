package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sleepscale/internal/core"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/strategy"
	"sleepscale/internal/workload"
)

// WakeSensitivityRow records the high-utilization winner for one wake
// latency setting.
type WakeSensitivityRow struct {
	// C6Wake is the C6S0(i) wake latency tried (Table 4 range 0.1–1 ms).
	C6Wake float64
	// DNSWinner and GoogleWinner are the ρ=0.7 optimal states.
	DNSWinner    string
	GoogleWinner string
}

// WakeSensitivityResult holds the §4.2 robustness check: "other choices from
// the range specified do not greatly change the engineering lessons".
type WakeSensitivityResult struct {
	Rows []WakeSensitivityRow
}

// WakeSensitivity re-derives the Figure 2 winners with the C6S0(i) wake
// latency swept across its Table 4 range. The DNS lesson (C6S0(i) wins —
// any wake in the range is negligible against 194 ms jobs) must hold
// everywhere; the Google lesson (C3S0(i) wins) holds in the upper part of
// the range, weakening as the wake shrinks toward C3's own latency.
func WakeSensitivity(cfg Config) (*WakeSensitivityResult, error) {
	const rho = 0.7
	out := &WakeSensitivityResult{}
	for _, wake := range []float64{100e-6, 300e-6, 1e-3} {
		prof := power.Xeon()
		prof.WakeLatency[power.DeepSleep] = wake
		row := WakeSensitivityRow{C6Wake: wake}
		for _, wname := range []string{"DNS", "Google"} {
			spec, err := specByName(wname)
			if err != nil {
				return nil, err
			}
			mu := spec.MaxServiceRate()
			qos, err := policy.NewMeanResponseQoS(0.8, mu)
			if err != nil {
				return nil, err
			}
			mgr := &core.Manager{
				Profile:      prof,
				FreqExponent: spec.FreqExponent,
				Space: policy.Space{
					Plans:    policy.DefaultPlans(),
					FreqStep: cfg.FreqStep,
					MinFreq:  0.05,
				},
				QoS: qos,
			}
			best, _, err := mgr.SelectIdealized(rho*mu, mu)
			if err != nil {
				return nil, err
			}
			switch wname {
			case "DNS":
				row.DNSWinner = best.Policy.Plan.Name
			case "Google":
				row.GoogleWinner = best.Policy.Plan.Name
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Tables renders the sensitivity study.
func (r *WakeSensitivityResult) Tables() []Table {
	t := Table{
		Title:  "Wake-latency sensitivity (§4.2): ρ=0.7 winners across the Table 4 C6S0(i) range",
		Header: []string{"C6S0(i) wake", "DNS winner", "Google winner"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f µs", row.C6Wake*1e6),
			row.DNSWinner,
			row.GoogleWinner,
		})
	}
	return []Table{t}
}

// AnalyticStrategyRow is one runtime variant of the analytic-vs-simulated
// strategy study.
type AnalyticStrategyRow struct {
	Strategy     string
	MeanResponse float64
	AvgPower     float64
	// DecideMicros is the mean per-epoch decision cost in microseconds.
	DecideMicros float64
}

// AnalyticStrategyResult compares the simulation-based SleepScale runtime
// with the closed-form variant of §5.1.2 observation 3 on the same trace.
type AnalyticStrategyResult struct {
	Rows   []AnalyticStrategyRow
	Budget float64
}

// AnalyticStrategyStudy runs SS (simulation-based selection) and
// SS(analytic) (closed forms + continuous frequency refinement) over the
// email-store day and reports quality and decision cost.
func AnalyticStrategyStudy(cfg Config) (*AnalyticStrategyResult, error) {
	const (
		rhoB  = 0.8
		alpha = 0.35
		T     = 5
	)
	spec := workload.DNS()
	stats, err := workload.NewFittedStats(spec)
	if err != nil {
		return nil, err
	}
	tr, err := evalTrace(cfg, 0)
	if err != nil {
		return nil, err
	}
	qos, err := policy.NewMeanResponseQoS(rhoB, spec.MaxServiceRate())
	if err != nil {
		return nil, err
	}
	out := &AnalyticStrategyResult{Budget: qos.Budget}
	for _, variant := range []string{"SS", "SS(analytic)"} {
		mgr, err := runnerManager(cfg, spec, rhoB)
		if err != nil {
			return nil, err
		}
		var strat core.Strategy
		switch variant {
		case "SS":
			strat, err = strategy.NewSleepScale(mgr, cfg.RunnerEvalJobs, alpha)
		default:
			strat, err = strategy.NewAnalyticSleepScale(mgr, alpha)
		}
		if err != nil {
			return nil, err
		}
		timed := &timedStrategy{inner: strat}
		pred, err := predictorByName("LC", tr)
		if err != nil {
			return nil, err
		}
		rep, err := core.Run(core.RunnerConfig{
			Stats:        stats,
			FreqExponent: spec.FreqExponent,
			Profile:      cfg.profile(),
			Trace:        tr,
			EpochSlots:   T,
			Predictor:    pred,
			Strategy:     timed,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AnalyticStrategyRow{
			Strategy:     variant,
			MeanResponse: rep.MeanResponse,
			AvgPower:     rep.AvgPower,
			DecideMicros: timed.meanMicros(),
		})
	}
	return out, nil
}

// timedStrategy wraps a strategy and measures per-decision wall time.
type timedStrategy struct {
	inner core.Strategy
	total time.Duration
	n     int
}

func (t *timedStrategy) Name() string { return t.inner.Name() }

func (t *timedStrategy) Decide(in core.DecideInput) (policy.Policy, error) {
	start := time.Now()
	p, err := t.inner.Decide(in)
	t.total += time.Since(start)
	t.n++
	return p, err
}

func (t *timedStrategy) meanMicros() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.total.Microseconds()) / float64(t.n)
}

// Tables renders the study.
func (r *AnalyticStrategyResult) Tables() []Table {
	t := Table{
		Title:  fmt.Sprintf("§5.1.2 obs. 3: simulated vs closed-form runtime (budget %.3g s)", r.Budget),
		Header: []string{"strategy", "E[R] (s)", "E[P] (W)", "decision cost (µs)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Strategy,
			fmt.Sprintf("%.3f", row.MeanResponse),
			fmt.Sprintf("%.1f", row.AvgPower),
			fmt.Sprintf("%.0f", row.DecideMicros),
		})
	}
	return []Table{t}
}

// MailStudyResult compares idealized vs empirical selection for the
// heavy-tailed Mail workload (service Cv = 3.6) under a 95th-percentile
// constraint — §5.1.2 observation 2 in its most extreme published case.
type MailStudyResult struct {
	Rho float64
	// IdealizedFrequency / EmpiricalFrequency are the selected f's; the
	// heavy tail should force the empirical selection at least as fast.
	IdealizedFrequency float64
	EmpiricalFrequency float64
	IdealizedPlan      string
	EmpiricalPlan      string
	// DNSGap and MailGap are the empirical−idealized frequency gaps for
	// DNS and Mail; the Mail gap should dominate.
	DNSGap  float64
	MailGap float64
}

// MailStudy quantifies how far the idealized M/M model underestimates the
// frequency a heavy-tailed workload needs under a tail constraint.
func MailStudy(cfg Config) (*MailStudyResult, error) {
	const (
		rho  = 0.4
		rhoB = 0.8
	)
	out := &MailStudyResult{Rho: rho}
	gap := func(spec workload.Spec) (idealF, empF float64, idealPlan, empPlan string, err error) {
		mu := spec.MaxServiceRate()
		qos, err := policy.NewPercentileQoS(rhoB, mu, 0.95)
		if err != nil {
			return 0, 0, "", "", err
		}
		mgr := &core.Manager{
			Profile:      cfg.profile(),
			FreqExponent: spec.FreqExponent,
			Space: policy.Space{
				Plans:    policy.DefaultPlans(),
				FreqStep: cfg.FreqStep,
				MinFreq:  0.05,
			},
			QoS: qos,
		}
		ideal, _, err := mgr.SelectIdealized(rho*mu, mu)
		if err != nil {
			return 0, 0, "", "", err
		}
		st, err := workload.NewEmpiricalStats(spec, 40000, cfg.Seed)
		if err != nil {
			return 0, 0, "", "", err
		}
		st, err = st.AtUtilization(rho)
		if err != nil {
			return 0, 0, "", "", err
		}
		emp, _, err := mgr.Select(st.Jobs(cfg.EvalJobs, rand.New(rand.NewSource(cfg.Seed+5))), rho)
		if err != nil {
			return 0, 0, "", "", err
		}
		return ideal.Policy.Frequency, emp.Policy.Frequency,
			ideal.Policy.Plan.Name, emp.Policy.Plan.Name, nil
	}
	iF, eF, iP, eP, err := gap(workload.Mail())
	if err != nil {
		return nil, err
	}
	out.IdealizedFrequency, out.EmpiricalFrequency = iF, eF
	out.IdealizedPlan, out.EmpiricalPlan = iP, eP
	out.MailGap = eF - iF
	diF, deF, _, _, err := gap(workload.DNS())
	if err != nil {
		return nil, err
	}
	out.DNSGap = deF - diF
	return out, nil
}

// Tables renders the Mail study.
func (r *MailStudyResult) Tables() []Table {
	t := Table{
		Title:  fmt.Sprintf("Mail heavy-tail study (ρ=%.1f, P95 QoS): idealized vs empirical", r.Rho),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"idealized selection", fmt.Sprintf("f=%.2f %s", r.IdealizedFrequency, r.IdealizedPlan)},
			{"empirical selection", fmt.Sprintf("f=%.2f %s", r.EmpiricalFrequency, r.EmpiricalPlan)},
			{"Mail frequency gap (emp − ideal)", fmt.Sprintf("%.2f", r.MailGap)},
			{"DNS frequency gap (emp − ideal)", fmt.Sprintf("%.2f", r.DNSGap)},
		},
	}
	return []Table{t}
}
