package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/queue"
	"sleepscale/internal/workload"
)

// Table5Result reproduces the workload summary table.
type Table5Result struct {
	Specs []workload.Spec
}

// Table5 returns the Table 5 workload statistics together with measured
// moments from the fitted generators (validating that the synthesis matches
// the published numbers).
func Table5(cfg Config) (*Table5Result, error) {
	return &Table5Result{Specs: workload.Table5()}, nil
}

// Tables renders Table 5 with declared vs generated moments.
func (r *Table5Result) Tables() []Table {
	t := Table{
		Title: "Table 5: workload statistics (declared vs fitted-generator sample)",
		Header: []string{"workload", "IA mean", "IA Cv", "svc mean", "svc Cv",
			"sample IA mean", "sample svc mean"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range r.Specs {
		st, err := workload.NewFittedStats(s)
		if err != nil {
			continue
		}
		var iaSum, svcSum float64
		const n = 20000
		for i := 0; i < n; i++ {
			iaSum += st.Inter.Sample(rng)
			svcSum += st.Size.Sample(rng)
		}
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.4g s", s.InterArrivalMean),
			fmt.Sprintf("%.2g", s.InterArrivalCV),
			fmt.Sprintf("%.4g s", s.ServiceMean),
			fmt.Sprintf("%.2g", s.ServiceCV),
			fmt.Sprintf("%.4g s", iaSum/n),
			fmt.Sprintf("%.4g s", svcSum/n),
		})
	}
	return []Table{t}
}

// AppendixRow is one model-vs-simulation comparison point.
type AppendixRow struct {
	Scenario                      string
	SimPower, AnalyticPower       float64
	SimResponse, AnalyticResponse float64
}

// AppendixResult holds the closed-form validation (§4.3 / Appendix).
type AppendixResult struct {
	Rows []AppendixRow
}

// AppendixValidation cross-checks the Appendix closed forms against
// Algorithm 1 on representative scenarios: the paper's §4.3 claim that
// "results obtained from the closed-form expressions match those presented
// in Figure 1".
func AppendixValidation(cfg Config) (*AppendixResult, error) {
	type scenario struct {
		name string
		spec workload.Spec
		rho  float64
		f    float64
		plan policy.SleepPlan
	}
	scenarios := []scenario{
		{"DNS ρ=0.1 C6S3 f=0.42", workload.DNS(), 0.1, 0.42, policy.SingleState(power.DeeperSleep)},
		{"DNS ρ=0.1 C0(i)S0(i) f=0.40", workload.DNS(), 0.1, 0.40, policy.SingleState(power.OperatingIdle)},
		{"Google ρ=0.3 C3S0(i) f=0.60", workload.Google(), 0.3, 0.60, policy.SingleState(power.Sleep)},
		{"Google ρ=0.1 2-state τ₂=30/µ", workload.Google(), 0.1, 0.40,
			policy.Sequence("",
				policy.PlanPhase{State: power.OperatingIdle},
				policy.PlanPhase{State: power.DeeperSleep, Enter: 30 * 4.2e-3})},
	}
	out := &AppendixResult{}
	for _, sc := range scenarios {
		mu := sc.spec.MaxServiceRate()
		lambda := sc.rho * mu
		pol := policy.Policy{Frequency: sc.f, Plan: sc.plan}
		model, err := pol.AnalyticModel(cfg.profile(), lambda, mu)
		if err != nil {
			return nil, err
		}
		ar, err := model.MeanResponse()
		if err != nil {
			return nil, err
		}
		ap, err := model.MeanPower()
		if err != nil {
			return nil, err
		}
		jobs, err := crnJobs(cfg, sc.spec, sc.rho)
		if err != nil {
			return nil, err
		}
		qcfg, err := pol.Config(cfg.profile(), 1)
		if err != nil {
			return nil, err
		}
		res, err := queue.Simulate(jobs, qcfg, queue.Options{})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AppendixRow{
			Scenario:         sc.name,
			SimPower:         res.AvgPower,
			AnalyticPower:    ap,
			SimResponse:      res.MeanResponse,
			AnalyticResponse: ar,
		})
	}
	return out, nil
}

// MaxRelativeError reports the largest relative gap between simulation and
// closed forms across all rows and both metrics.
func (r *AppendixResult) MaxRelativeError() float64 {
	worst := 0.0
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	for _, row := range r.Rows {
		if e := rel(row.SimPower, row.AnalyticPower); e > worst {
			worst = e
		}
		if e := rel(row.SimResponse, row.AnalyticResponse); e > worst {
			worst = e
		}
	}
	return worst
}

// Tables renders the validation.
func (r *AppendixResult) Tables() []Table {
	t := Table{
		Title:  "Appendix validation: Algorithm 1 vs closed forms",
		Header: []string{"scenario", "E[P] sim (W)", "E[P] model (W)", "E[R] sim (s)", "E[R] model (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scenario,
			fmt.Sprintf("%.2f", row.SimPower),
			fmt.Sprintf("%.2f", row.AnalyticPower),
			fmt.Sprintf("%.4f", row.SimResponse),
			fmt.Sprintf("%.4f", row.AnalyticResponse),
		})
	}
	return []Table{t}
}

// SequentialRow compares one idle-management plan at its optimum.
type SequentialRow struct {
	Plan     string
	BestF    float64
	MinPower float64
}

// SequentialResult holds the §4.2 lesson-5 study.
type SequentialResult struct {
	Rho  float64
	Rows []SequentialRow
}

// SequentialLesson reproduces §4.2 lesson 5: walking the full five-state
// sequence (C0(i)S0(i)→C1→C3→C6→C6S3 with staggered delays) is conservative —
// at any given utilization it is beaten by jumping straight to the best
// single state, because at high load the deep states are never reached and
// at low load the walk wastes time in shallow states.
func SequentialLesson(cfg Config, rho float64) (*SequentialResult, error) {
	w := dnsWorkload()
	jobs, err := crnJobs(cfg, w.spec, rho)
	if err != nil {
		return nil, err
	}
	invMu := 1 / w.mu
	plans := []planSpec{
		single(power.OperatingIdle),
		single(power.Sleep),
		single(power.DeepSleep),
		single(power.DeeperSleep),
		{label: "full-sequence", plan: policy.FullSequence([5]float64{
			0, 1 * invMu, 3 * invMu, 6 * invMu, 20 * invMu})},
	}
	out := &SequentialResult{Rho: rho}
	for _, ps := range plans {
		c, err := sweep(cfg, jobs, ps, w.mu, rho, w.beta)
		if err != nil {
			return nil, err
		}
		bottom, _ := c.MinPower()
		out.Rows = append(out.Rows, SequentialRow{
			Plan: ps.label, BestF: bottom.Frequency, MinPower: bottom.Power,
		})
	}
	return out, nil
}

// BestSingle returns the lowest min-power among single-state plans, and the
// full-sequence row.
func (r *SequentialResult) BestSingle() (best SequentialRow, seq SequentialRow) {
	first := true
	for _, row := range r.Rows {
		if row.Plan == "full-sequence" {
			seq = row
			continue
		}
		if first || row.MinPower < best.MinPower {
			best, first = row, false
		}
	}
	return best, seq
}

// Tables renders the lesson-5 study.
func (r *SequentialResult) Tables() []Table {
	t := Table{
		Title:  fmt.Sprintf("§4.2 lesson 5: sequential throttle-back is conservative (DNS, ρ=%.1f)", r.Rho),
		Header: []string{"plan", "f*", "min E[P] (W)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Plan, fmt.Sprintf("%.2f", row.BestF), fmt.Sprintf("%.1f", row.MinPower),
		})
	}
	return []Table{t}
}

// AtomRow is one profile's optimum for the Atom study.
type AtomRow struct {
	Profile  string
	Plan     string
	BestF    float64
	MinPower float64
}

// AtomResult holds the §4.2 Atom remarks study.
type AtomResult struct {
	Rho  float64
	Rows []AtomRow
}

// AtomStudy reproduces the §4.2 Atom observations: because the Atom-class
// platform has a small CPU dynamic range relative to platform power, a
// DNS-like workload at low utilization is best served by running fast
// (higher f*) and sleeping immediately, whereas the Xeon's cubic CPU power
// pulls its optimum to a low frequency.
func AtomStudy(cfg Config) (*AtomResult, error) {
	const rho = 0.1
	w := dnsWorkload()
	jobs, err := crnJobs(cfg, w.spec, rho)
	if err != nil {
		return nil, err
	}
	out := &AtomResult{Rho: rho}
	for _, prof := range []*power.Profile{power.Xeon(), power.Atom()} {
		c := cfg
		c.Profile = prof
		bestPower := math.Inf(1)
		var bestRow AtomRow
		for _, ps := range []planSpec{
			single(power.OperatingIdle), single(power.DeepSleep), single(power.DeeperSleep),
		} {
			curve, err := sweep(c, jobs, ps, w.mu, rho, w.beta)
			if err != nil {
				return nil, err
			}
			bottom, _ := curve.MinPower()
			if bottom.Power < bestPower {
				bestPower = bottom.Power
				bestRow = AtomRow{
					Profile: prof.Name, Plan: ps.label,
					BestF: bottom.Frequency, MinPower: bottom.Power,
				}
			}
		}
		out.Rows = append(out.Rows, bestRow)
	}
	return out, nil
}

// Tables renders the Atom study.
func (r *AtomResult) Tables() []Table {
	t := Table{
		Title:  fmt.Sprintf("§4.2 Atom remarks: profile-dependent optima (DNS, ρ=%.1f)", r.Rho),
		Header: []string{"profile", "best plan", "f*", "min E[P] (W)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Profile, row.Plan, fmt.Sprintf("%.2f", row.BestF), fmt.Sprintf("%.1f", row.MinPower),
		})
	}
	return []Table{t}
}
