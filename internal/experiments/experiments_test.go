package experiments

import (
	"strings"
	"testing"
)

// The tests in this file assert the reproduction criteria of DESIGN.md §5:
// the *shape* of every figure — who wins, in which regime, by roughly what
// factor — using QuickConfig resolution.

func quick() Config { return QuickConfig() }

func curveByLabel(t *testing.T, curves []Curve, label string) Curve {
	t.Helper()
	for _, c := range curves {
		if c.Label == label {
			return c
		}
	}
	t.Fatalf("curve %q not found in %d curves", label, len(curves))
	return Curve{}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1(quick())
	if err != nil {
		t.Fatal(err)
	}
	dns := r.Curves["DNS"]
	if len(dns) != 3 {
		t.Fatalf("DNS curves = %d, want 3", len(dns))
	}

	// Criterion 1a: each curve is a bowl — the minimum power is strictly
	// below both endpoints (f=1 and the lowest stable f).
	for _, name := range []string{"DNS", "Google"} {
		for _, c := range r.Curves[name] {
			bottom, _ := c.MinPower()
			left := c.Points[0]                // f = 1
			right := c.Points[len(c.Points)-1] // slowest
			if bottom.Power >= left.Power || bottom.Power >= right.Power {
				// C6S3 on Google can be monotone because the wake dominates;
				// require the bowl only for the shallow states.
				if c.Label != "C6S3" {
					t.Errorf("%s/%s: no bowl (bottom %.1f, ends %.1f/%.1f)",
						name, c.Label, bottom.Power, left.Power, right.Power)
				}
			}
		}
	}

	// Criterion 1b: race-to-halt with the optimal state (the f=1 tip of
	// the curve whose bottom is the joint optimum — the paper's "leftmost
	// tip of each curve") costs ≥30% more than the joint optimum; the
	// paper reports up to 50%.
	joint := 1e18
	var jointCurve Curve
	for _, c := range dns {
		if b, ok := c.MinPower(); ok && b.Power < joint {
			joint = b.Power
			jointCurve = c
		}
	}
	tip := jointCurve.Points[0] // f = 1
	if tip.Power < joint*1.3 {
		t.Errorf("race-to-halt on %s: %.1f W not ≥1.3× joint optimum %.1f W",
			jointCurve.Label, tip.Power, joint)
	}

	// Criterion 1c: regime ordering on DNS. Tight budget (µE[R] ≤ 2):
	// C6S0(i) wins; mid budget (≈4): C0(i)S0(i) wins; loose (≥20): C6S3.
	bestAt := func(budget float64) string {
		best, bestP := "", 1e18
		for _, c := range dns {
			if p, ok := c.MinPowerWithin(budget); ok && p.Power < bestP {
				best, bestP = c.Label, p.Power
			}
		}
		return best
	}
	if got := bestAt(2); got != "C6S0(i)" {
		t.Errorf("tight budget winner = %s, want C6S0(i)", got)
	}
	if got := bestAt(4); got != "C0(i)S0(i)" {
		t.Errorf("mid budget winner = %s, want C0(i)S0(i)", got)
	}
	if got := bestAt(25); got != "C6S3" {
		t.Errorf("loose budget winner = %s, want C6S3", got)
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Compare at a binding budget (µE[R] ≤ 5, the ρ_b=0.8 bar) where the
	// states differentiate — at the unconstrained bottom every curve
	// converges to the stability floor.
	atBudget := func(label string) float64 {
		c := curveByLabel(t, r.Curves, label)
		p, ok := c.MinPowerWithin(5)
		if !ok {
			t.Fatalf("%s infeasible at µE[R]≤5", label)
		}
		return p.Power
	}
	// Criterion 2: DNS prefers C6S0(i) (1 ms wake ≪ 194 ms jobs); Google
	// prefers C3S0(i) (1 ms wake hurts 4.2 ms jobs).
	if atBudget("DNS: C6S0(i)") >= atBudget("DNS: C3S0(i)") {
		t.Errorf("DNS: C6S0(i) %.1f not below C3S0(i) %.1f",
			atBudget("DNS: C6S0(i)"), atBudget("DNS: C3S0(i)"))
	}
	if atBudget("Google: C3S0(i)") >= atBudget("Google: C6S0(i)") {
		t.Errorf("Google: C3S0(i) %.1f not below C6S0(i) %.1f",
			atBudget("Google: C3S0(i)"), atBudget("Google: C6S0(i)"))
	}
	// C6S3's 1 s wake is hopeless at high utilization: infeasible or
	// dominated at the budget for Google; never the winner for DNS.
	if c := curveByLabel(t, r.Curves, "Google: C6S3"); true {
		if p, ok := c.MinPowerWithin(5); ok && p.Power < atBudget("Google: C3S0(i)") {
			t.Error("Google: C6S3 should not win at high utilization")
		}
	}
	if c := curveByLabel(t, r.Curves, "DNS: C6S3"); true {
		if p, ok := c.MinPowerWithin(5); ok && p.Power < atBudget("DNS: C6S0(i)") {
			t.Error("DNS: C6S3 should not win at high utilization")
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Criterion 3a (interpolation, Poisson Google): at a mild budget the
	// delayed plans are feasible where immediate C6S3 is not, and they
	// beat it; a longer τ₂ moves the delayed curve toward C0(i)S0(i).
	at := func(curves []Curve, label string, budget float64) (float64, bool) {
		c := curveByLabel(t, curves, label)
		p, ok := c.MinPowerWithin(budget)
		return p.Power, ok
	}
	if _, ok := at(r.Curves, "C6S3", 20); ok {
		t.Error("immediate C6S3 feasible at µE[R]≤20 for Google — its 1 s wake should forbid that")
	}
	del30, ok30 := at(r.Curves, "C0(i)S0(i)→C6S3 τ₂=30/µ", 80)
	imm6, ok6 := at(r.Curves, "C6S3", 130)
	if !ok30 || !ok6 {
		t.Fatal("expected feasibility points missing")
	}
	if del30 >= imm6 {
		t.Errorf("delayed C6S3 (%.1f W @80) does not beat immediate C6S3 (%.1f W @130)", del30, imm6)
	}
	del50, ok50 := at(r.Curves, "C0(i)S0(i)→C6S3 τ₂=50/µ", 80)
	imm0, ok0 := at(r.Curves, "C0(i)S0(i)", 80)
	if !ok50 || !ok0 {
		t.Fatal("expected feasibility points missing")
	}
	// τ₂=50/µ sits closer to C0(i)S0(i) than τ₂=30/µ does (interpolation).
	if d50, d30 := del50-imm0, del30-imm0; d50 > d30+1 {
		t.Errorf("interpolation broken: τ₂=50/µ gap %.1f W above τ₂=30/µ gap %.1f W", d50, d30)
	}

	// Criterion 3b (bursty variant): with Cv=4 arrivals, a finite timeout
	// beats BOTH immediates at the mild budget — the paper's lesson-4
	// claim in the regime where timeouts pay.
	bImm0, ok1 := at(r.Bursty, "C0(i)S0(i)", 20)
	bImm6, ok2 := at(r.Bursty, "C6S3", 20)
	bDel, ok3 := at(r.Bursty, "C0(i)S0(i)→C6S3 τ₂=10/µ", 20)
	if !ok1 || !ok3 {
		t.Fatal("bursty feasibility points missing")
	}
	if bDel >= bImm0 {
		t.Errorf("bursty: delayed C6S3 (%.1f W) does not beat immediate C0(i)S0(i) (%.1f W)",
			bDel, bImm0)
	}
	if ok2 && bDel >= bImm6 {
		t.Errorf("bursty: delayed C6S3 (%.1f W) does not beat immediate C6S3 (%.1f W)",
			bDel, bImm6)
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Criterion 4: memory-bound optimum is the lowest swept frequency;
	// CPU-bound optimum is interior (strictly between the ends).
	mem := curveByLabel(t, r.Curves, "µ (memory-bound)")
	bottom, _ := mem.MinPower()
	lowest := mem.Points[len(mem.Points)-1].Frequency
	if bottom.Frequency != lowest {
		t.Errorf("memory-bound optimum f=%.2f, want lowest swept %.2f", bottom.Frequency, lowest)
	}
	cpu := curveByLabel(t, r.Curves, "µf (CPU-bound)")
	cb, _ := cpu.MinPower()
	if cb.Frequency >= 1 || cb.Frequency <= cpu.Points[len(cpu.Points)-1].Frequency {
		t.Errorf("CPU-bound optimum f=%.2f not interior", cb.Frequency)
	}
	// Sub-linear curves order their optima between the extremes.
	mid5, _ := curveByLabel(t, r.Curves, "µf^0.5").MinPower()
	if mid5.Frequency > cb.Frequency {
		t.Errorf("µf^0.5 optimum %.2f should be ≤ CPU-bound optimum %.2f",
			mid5.Frequency, cb.Frequency)
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Budget != 5 {
		t.Fatalf("budget = %v, want 5", r.Budget)
	}
	// Criterion 5a: optimal frequency rises with utilization.
	prev := 0.0
	for _, label := range []string{"ρ=0.1", "ρ=0.2", "ρ=0.3", "ρ=0.4"} {
		f, ok := r.OptimalF[label]
		if !ok {
			t.Fatalf("no optimal f for %s", label)
		}
		if f < prev {
			t.Errorf("optimal f not nondecreasing: %s gives %.2f after %.2f", label, f, prev)
		}
		prev = f
	}
	// Criterion 5b: at ρ=0.1 the unconstrained optimum already meets the
	// QoS with slack (the bump): its µE[R] is strictly below the bar.
	c := curveByLabel(t, r.Curves, "ρ=0.1")
	bottom, _ := c.MinPower()
	if bottom.NormMeanResponse >= r.Budget {
		t.Errorf("ρ=0.1 global optimum µE[R]=%.2f does not beat the bar %.1f",
			bottom.NormMeanResponse, r.Budget)
	}
	// Criterion 5c: at ρ=0.4 the constraint binds — the feasible optimum
	// response sits near the bar.
	f4, _ := r.OptimalF["ρ=0.4"]
	c4 := curveByLabel(t, r.Curves, "ρ=0.4")
	var at4 Point
	for _, p := range c4.Points {
		if p.Frequency == f4 {
			at4 = p
		}
	}
	if at4.NormMeanResponse < r.Budget*0.5 {
		t.Errorf("ρ=0.4 optimum µE[R]=%.2f suspiciously far from the binding bar", at4.NormMeanResponse)
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long policy-map sweep")
	}
	cfg := quick()
	r, err := Figure6(cfg, Figure6Options{RhoStep: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Maps) != 16 {
		t.Fatalf("maps = %d, want 16", len(r.Maps))
	}

	// Criterion 6a (DNS, mean, ρb=0.8, idealized): C0(i)S0(i) at low ρ,
	// C6S0(i) at high ρ.
	pm, ok := r.Find("DNS", "mean", 0.8, "idealized")
	if !ok {
		t.Fatal("missing DNS idealized map")
	}
	if got := pm.Points[0].Plan; got != "C0(i)S0(i)" {
		t.Errorf("DNS low-ρ state = %s, want C0(i)S0(i)", got)
	}
	// High-utilization check at ρ=0.7 — at ρ = ρ_b = 0.8 exactly, only a
	// zero-wake state at f=1 can hit the razor-edge budget, so the last
	// grid point legitimately reverts to C0(i)S0(i).
	var high PolicyMapPoint
	for _, p := range pm.Points {
		if p.Utilization > 0.65 && p.Utilization < 0.75 {
			high = p
		}
	}
	if high.Plan != "C6S0(i)" {
		t.Errorf("DNS ρ=0.7 state = %s, want C6S0(i)", high.Plan)
	}

	// Criterion 6b: frequencies are non-decreasing in ρ beyond the bump
	// region, and the ρb=0.6 curve sits at or above the ρb=0.8 curve
	// (tighter constraint needs more speed).
	pm6, ok := r.Find("DNS", "mean", 0.6, "idealized")
	if !ok {
		t.Fatal("missing ρb=0.6 map")
	}
	for i := range pm.Points {
		if pm6.Points[i].Frequency < pm.Points[i].Frequency-1e-9 {
			t.Errorf("ρ=%.2f: tighter ρb=0.6 frequency %.2f below ρb=0.8's %.2f",
				pm.Points[i].Utilization, pm6.Points[i].Frequency, pm.Points[i].Frequency)
		}
	}

	// Criterion 6c: idealized and empirical mostly agree on the state, and
	// where both are QoS-bound the idealized frequency does not exceed the
	// empirical one by more than grid noise (§5.1.2 observation 3).
	emp, ok := r.Find("DNS", "mean", 0.8, "empirical")
	if !ok {
		t.Fatal("missing empirical map")
	}
	agree := 0
	for i := range pm.Points {
		if pm.Points[i].Plan == emp.Points[i].Plan {
			agree++
		}
	}
	if agree < len(pm.Points)*6/10 {
		t.Errorf("idealized/empirical state agreement %d/%d too low", agree, len(pm.Points))
	}

	// Criterion 6d: Google uses a wider palette of states than DNS across
	// its maps (the paper's legend lists four states for Google, two for
	// DNS).
	distinct := func(w string) map[string]bool {
		set := map[string]bool{}
		for _, m := range r.Maps {
			if m.Workload != w {
				continue
			}
			for _, p := range m.Points {
				set[p.Plan] = true
			}
		}
		return set
	}
	if g, d := len(distinct("Google")), len(distinct("DNS")); g < d {
		t.Errorf("Google state palette (%d) smaller than DNS (%d)", g, d)
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	_, _, fsMax := r.FileServer.Stats()
	esMean, _, esMax := r.EmailStore.Stats()
	if fsMax > 0.3 {
		t.Errorf("file server max %.2f too high", fsMax)
	}
	if esMax < 0.8 {
		t.Errorf("email store max %.2f too low", esMax)
	}
	if esMean < 0.2 {
		t.Errorf("email store mean %.2f too low", esMean)
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace run")
	}
	cfg := quick()
	r, err := Figure8(cfg, []string{"LC", "NP", "Offline"}, []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(r.Cells))
	}
	// Criterion 7a: the genie never does worse than the causal predictors
	// at the same update interval (small tolerance for bootstrap noise).
	for _, T := range []int{2, 10} {
		off, _ := r.Cell("Offline", T)
		for _, p := range []string{"LC", "NP"} {
			c, ok := r.Cell(p, T)
			if !ok {
				t.Fatalf("missing cell %s/%d", p, T)
			}
			if off.MeanResponse > c.MeanResponse*1.1 {
				t.Errorf("T=%d: offline %.3f worse than %s %.3f", T, off.MeanResponse, p, c.MeanResponse)
			}
		}
	}
	// Criterion 7b: faster updates help — for each causal predictor the
	// T=2 response is not worse than T=10 beyond tolerance.
	for _, p := range []string{"LC", "NP"} {
		fast, _ := r.Cell(p, 2)
		slow, _ := r.Cell(p, 10)
		if fast.MeanResponse > slow.MeanResponse*1.15 {
			t.Errorf("%s: T=2 response %.3f worse than T=10 %.3f", p, fast.MeanResponse, slow.MeanResponse)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace run")
	}
	r, err := Figure9(quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Figure9Row {
		row, ok := r.Row(name)
		if !ok {
			t.Fatalf("missing strategy %s", name)
		}
		return row
	}
	ss := get("SS")
	// Criterion 8a: SleepScale has the lowest power of all strategies.
	for _, name := range []string{"SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)"} {
		if other := get(name); other.AvgPower < ss.AvgPower {
			t.Errorf("%s power %.1f below SS %.1f", name, other.AvgPower, ss.AvgPower)
		}
	}
	// Criterion 8b: SS meets the response budget (α=0.35 guard band).
	if ss.MeanResponse > r.Budget {
		t.Errorf("SS response %.3f exceeds budget %.3f", ss.MeanResponse, r.Budget)
	}
	// Criterion 8c: DVFS-only pays in response time — the worst mean
	// response of the five strategies.
	dvfs := get("DVFS")
	for _, name := range []string{"SS", "SS(C3)", "R2H(C3)", "R2H(C6)"} {
		if other := get(name); other.MeanResponse > dvfs.MeanResponse {
			t.Errorf("%s response %.3f above DVFS %.3f", name, other.MeanResponse, dvfs.MeanResponse)
		}
	}
	// R2H runs flat out: its response is the floor.
	r2h := get("R2H(C6)")
	if r2h.MeanResponse > ss.MeanResponse {
		t.Errorf("R2H(C6) response %.3f above SS %.3f", r2h.MeanResponse, ss.MeanResponse)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace run")
	}
	r, err := Figure10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	dominant := func(m map[string]float64) (string, float64) {
		best, bf := "", 0.0
		for k, v := range m {
			if v > bf {
				best, bf = k, v
			}
		}
		return best, bf
	}
	// Criterion 9a: the stable low-utilization file server concentrates on
	// one state.
	fs, _ := r.Row("fs", "DNS", 0.8)
	if _, frac := dominant(fs.PlanFractions); frac < 0.6 {
		t.Errorf("file server dominant state fraction %.2f, want ≥ 0.6", frac)
	}
	// Criterion 9b: the time-varying email store shows more variety than
	// the file server for the same workload and baseline.
	es, _ := r.Row("es", "DNS", 0.8)
	_, fsFrac := dominant(fs.PlanFractions)
	_, esFrac := dominant(es.PlanFractions)
	if esFrac > fsFrac+0.05 {
		t.Errorf("email store dominant fraction %.2f exceeds file server %.2f — expected more variety",
			esFrac, fsFrac)
	}
}

func TestAppendixValidation(t *testing.T) {
	r, err := AppendixValidation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MaxRelativeError(); got > 0.10 {
		t.Errorf("model-vs-simulation max relative error %.3f > 10%%", got)
	}
}

func TestSequentialLesson(t *testing.T) {
	// §4.2 lesson 5: at both low and high utilization, the best single
	// state is at least as good as walking the full sequence.
	for _, rho := range []float64{0.1, 0.7} {
		r, err := SequentialLesson(quick(), rho)
		if err != nil {
			t.Fatal(err)
		}
		best, seq := r.BestSingle()
		if seq.MinPower < best.MinPower*0.99 {
			t.Errorf("ρ=%.1f: full sequence %.1f W beats best single %.1f W — lesson 5 violated",
				rho, seq.MinPower, best.MinPower)
		}
	}
}

func TestAtomStudy(t *testing.T) {
	r, err := AtomStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	var xeonF, atomF float64
	for _, row := range r.Rows {
		switch row.Profile {
		case "Xeon":
			xeonF = row.BestF
		case "Atom":
			atomF = row.BestF
		}
	}
	// §4.2: Atom-class systems should run faster at their optimum than the
	// Xeon (small CPU dynamic range → little gained from slowing down).
	if atomF <= xeonF {
		t.Errorf("Atom optimal f %.2f not above Xeon's %.2f", atomF, xeonF)
	}
}

func TestTable5Render(t *testing.T) {
	r, err := Table5(quick())
	if err != nil {
		t.Fatal(err)
	}
	tables := r.Tables()
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("table shape wrong: %+v", tables)
	}
	s := tables[0].String()
	for _, want := range []string{"DNS", "Mail", "Google"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	if !strings.Contains(s, "## demo") || !strings.Contains(s, "333") {
		t.Errorf("rendering wrong:\n%s", s)
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{Points: []Point{
		{Frequency: 1, NormMeanResponse: 1, Power: 10},
		{Frequency: 0.5, NormMeanResponse: 3, Power: 5},
		{Frequency: 0.3, NormMeanResponse: 9, Power: 7},
	}}
	p, ok := c.MinPower()
	if !ok || p.Power != 5 {
		t.Errorf("MinPower = %+v", p)
	}
	p, ok = c.MinPowerWithin(2)
	if !ok || p.Power != 10 {
		t.Errorf("MinPowerWithin(2) = %+v", p)
	}
	if _, ok := c.MinPowerWithin(0.5); ok {
		t.Error("impossible budget satisfied")
	}
	if _, ok := (Curve{}).MinPower(); ok {
		t.Error("empty curve has a minimum")
	}
}
