package experiments

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/dist"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/queue"
	"sleepscale/internal/workload"
)

// planSpec is an internal handle pairing a label with a resolved sleep plan.
type planSpec struct {
	label string
	plan  policy.SleepPlan
}

func (ps planSpec) config(prof *power.Profile, f, beta float64) (queue.Config, error) {
	return policy.Policy{Frequency: f, Plan: ps.plan}.Config(prof, beta)
}

func single(s power.State) planSpec {
	return planSpec{label: s.String(), plan: policy.SingleState(s)}
}

// Figure1Result holds the Figure 1 trade-off curves per workload.
type Figure1Result struct {
	// Curves maps workload name ("DNS", "Google") to the per-state sweeps.
	Curves map[string][]Curve
	// Rho is the studied utilization (0.1 in the paper).
	Rho float64
}

// Figure1 reproduces Figure 1: mean response / average power trade-off for
// DNS-like and Google-like workloads at ρ = 0.1 under the representative
// low-power states C0(i)S0(i), C6S0(i) and C6S3, swept over frequency.
func Figure1(cfg Config) (*Figure1Result, error) {
	const rho = 0.1
	plans := []planSpec{
		single(power.OperatingIdle),
		single(power.DeepSleep),
		single(power.DeeperSleep),
	}
	out := &Figure1Result{Curves: map[string][]Curve{}, Rho: rho}
	for _, spec := range []struct {
		name string
		w    func() planWorkload
	}{
		{"DNS", dnsWorkload}, {"Google", googleWorkload},
	} {
		w := spec.w()
		jobs, err := crnJobs(cfg, w.spec, rho)
		if err != nil {
			return nil, err
		}
		for _, ps := range plans {
			c, err := sweep(cfg, jobs, ps, w.mu, rho, w.beta)
			if err != nil {
				return nil, err
			}
			out.Curves[spec.name] = append(out.Curves[spec.name], c)
		}
	}
	return out, nil
}

// Tables renders Figure 1 as per-workload bowl-bottom summaries.
func (r *Figure1Result) Tables() []Table {
	var tables []Table
	for _, name := range []string{"DNS", "Google"} {
		t := Table{
			Title:  fmt.Sprintf("Figure 1 (%s-like, ρ=%.1f): power/response trade-off", name, r.Rho),
			Header: []string{"state", "f*", "µE[R] at f*", "E[P] at f* (W)", "E[P] at f=1 (W)"},
		}
		for _, c := range r.Curves[name] {
			bottom, ok := c.MinPower()
			if !ok {
				continue
			}
			var atFull Point
			for _, p := range c.Points {
				if p.Frequency == 1 {
					atFull = p
				}
			}
			t.Rows = append(t.Rows, []string{
				c.Label,
				fmt.Sprintf("%.2f", bottom.Frequency),
				fmt.Sprintf("%.2f", bottom.NormMeanResponse),
				fmt.Sprintf("%.1f", bottom.Power),
				fmt.Sprintf("%.1f", atFull.Power),
			})
		}
		tables = append(tables, t)
	}
	return tables
}

// planWorkload bundles the workload quantities the sweeps need.
type planWorkload struct {
	spec workload.Spec
	mu   float64
	beta float64
}

func dnsWorkload() planWorkload {
	s := workload.DNS()
	return planWorkload{spec: s, mu: s.MaxServiceRate(), beta: s.FreqExponent}
}

func googleWorkload() planWorkload {
	s := workload.Google()
	return planWorkload{spec: s, mu: s.MaxServiceRate(), beta: s.FreqExponent}
}

// Figure2Result holds the high-utilization comparison of Figure 2.
type Figure2Result struct {
	Curves []Curve // labeled "Google: C3S0(i)", "DNS: C6S0(i)", etc.
	Rho    float64
}

// Figure2 reproduces Figure 2: optimal low-power states for Google and
// DNS-like workloads under high utilization (ρ = 0.7): C3S0(i) wins for
// Google (small jobs punished by the 1 ms C6 wake), C6S0(i) for DNS, and
// the paper plots C6S3 as the non-viable contrast.
func Figure2(cfg Config) (*Figure2Result, error) {
	const rho = 0.7
	out := &Figure2Result{Rho: rho}
	for _, spec := range []struct {
		name string
		w    planWorkload
	}{
		{"Google", googleWorkload()}, {"DNS", dnsWorkload()},
	} {
		jobs, err := crnJobs(cfg, spec.w.spec, rho)
		if err != nil {
			return nil, err
		}
		for _, ps := range []planSpec{
			single(power.Sleep), single(power.DeepSleep), single(power.DeeperSleep),
		} {
			c, err := sweep(cfg, jobs, ps, spec.w.mu, rho, spec.w.beta)
			if err != nil {
				return nil, err
			}
			c.Label = spec.name + ": " + c.Label
			out.Curves = append(out.Curves, c)
		}
	}
	return out, nil
}

// Tables renders Figure 2. At high utilization the unconstrained bowl
// bottom sits at the stability floor where every state converges (idle time
// vanishes), so the meaningful comparison is at response budgets — the
// paper's plot spans µE[R] ∈ [10, 100].
func (r *Figure2Result) Tables() []Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 2: optimal low-power states at high utilization (ρ=%.1f)", r.Rho),
		Header: []string{"workload: state", "E[P] @ µE[R]≤5 (W)", "E[P] @ µE[R]≤10 (W)", "E[P] @ µE[R]≤30 (W)"},
	}
	for _, c := range r.Curves {
		row := []string{c.Label}
		for _, budget := range []float64{5, 10, 30} {
			if p, ok := c.MinPowerWithin(budget); ok {
				row = append(row, fmt.Sprintf("%.1f", p.Power))
			} else {
				row = append(row, "—")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Figure3Result holds the delayed-entry study of Figure 3.
type Figure3Result struct {
	// Curves are the paper-faithful idealized (Poisson) Google-like runs.
	Curves []Curve
	// Bursty are the same plans under bursty arrivals (inter-arrival
	// Cv = 4). Under exponential idle periods a sleep timeout is
	// bang-bang optimal (delay never beats both immediates outright);
	// the paper's claimed win at a mild budget emerges once idle periods
	// are bursty, which is how real traces behave. See EXPERIMENTS.md.
	Bursty []Curve
	Rho    float64
}

// Figure3 reproduces Figure 3: entering C6S3 only after the server has idled
// τ₂ ∈ {30/µ, 50/µ} seconds (having entered C0(i)S0(i) immediately)
// interpolates between the immediate-C6S3 and immediate-C0(i)S0(i) curves
// for the Google-like workload at ρ = 0.1.
func Figure3(cfg Config) (*Figure3Result, error) {
	const rho = 0.1
	w := googleWorkload()
	jobs, err := crnJobs(cfg, w.spec, rho)
	if err != nil {
		return nil, err
	}
	invMu := 1 / w.mu
	plans := []planSpec{
		single(power.OperatingIdle),
		single(power.DeeperSleep),
		{label: "C0(i)S0(i)→C6S3 τ₂=30/µ", plan: policy.Sequence("",
			policy.PlanPhase{State: power.OperatingIdle},
			policy.PlanPhase{State: power.DeeperSleep, Enter: 30 * invMu})},
		{label: "C0(i)S0(i)→C6S3 τ₂=50/µ", plan: policy.Sequence("",
			policy.PlanPhase{State: power.OperatingIdle},
			policy.PlanPhase{State: power.DeeperSleep, Enter: 50 * invMu})},
	}
	out := &Figure3Result{Rho: rho}
	for _, ps := range plans {
		c, err := sweep(cfg, jobs, ps, w.mu, rho, w.beta)
		if err != nil {
			return nil, err
		}
		c.Label = ps.label
		out.Curves = append(out.Curves, c)
	}

	// Bursty variant: DNS-sized jobs with hyperexponential (Cv = 4)
	// inter-arrivals at the same utilization, where long idle tails make
	// the timeout pay. Delays scale with the DNS service time.
	bw := dnsWorkload()
	inter, err := dist.NewHyperExp2(bw.spec.ServiceMean/rho, 4)
	if err != nil {
		return nil, err
	}
	size, err := dist.NewExponentialMean(bw.spec.ServiceMean)
	if err != nil {
		return nil, err
	}
	st := workload.Stats{Inter: inter, Size: size}
	bJobs := st.Jobs(cfg.EvalJobs, rand.New(rand.NewSource(cfg.Seed+3)))
	invMuB := bw.spec.ServiceMean
	bPlans := []planSpec{
		single(power.OperatingIdle),
		single(power.DeeperSleep),
		{label: "C0(i)S0(i)→C6S3 τ₂=10/µ", plan: policy.Sequence("",
			policy.PlanPhase{State: power.OperatingIdle},
			policy.PlanPhase{State: power.DeeperSleep, Enter: 10 * invMuB})},
		{label: "C0(i)S0(i)→C6S3 τ₂=30/µ", plan: policy.Sequence("",
			policy.PlanPhase{State: power.OperatingIdle},
			policy.PlanPhase{State: power.DeeperSleep, Enter: 30 * invMuB})},
	}
	for _, ps := range bPlans {
		c, err := sweep(cfg, bJobs, ps, bw.mu, rho, bw.beta)
		if err != nil {
			return nil, err
		}
		c.Label = ps.label
		out.Bursty = append(out.Bursty, c)
	}
	return out, nil
}

// Tables renders Figure 3 with per-curve power at mild budgets.
func (r *Figure3Result) Tables() []Table {
	render := func(title string, curves []Curve, budget float64) Table {
		t := Table{
			Title: title,
			Header: []string{"policy", "min E[P] (W)",
				fmt.Sprintf("E[P] @ µE[R]≤%.0f (W)", budget)},
		}
		for _, c := range curves {
			bottom, _ := c.MinPower()
			within, ok := c.MinPowerWithin(budget)
			cell := "—"
			if ok {
				cell = fmt.Sprintf("%.1f", within.Power)
			}
			t.Rows = append(t.Rows, []string{
				c.Label, fmt.Sprintf("%.1f", bottom.Power), cell,
			})
		}
		return t
	}
	return []Table{
		render("Figure 3 (Google-like, ρ=0.1, Poisson): delayed entry into C6S3",
			r.Curves, 80),
		render("Figure 3 variant (DNS-sized, bursty Cv=4 arrivals, ρ=0.1): delayed entry",
			r.Bursty, 20),
	}
}

// Figure4Result holds the frequency-dependence study of Figure 4.
type Figure4Result struct {
	Curves []Curve // labeled by scaling: "µf", "µf^0.5", "µf^0.2", "µ"
	Rho    float64
}

// Figure4 reproduces Figure 4: the DNS-like workload at ρ = 0.1 under
// C0(i)S0(i) with service rate scaling µf^β for β ∈ {1, 0.5, 0.2, 0}. For
// memory-bound jobs (β = 0) the optimal speed is the lowest one; CPU-bound
// jobs have an interior optimum.
func Figure4(cfg Config) (*Figure4Result, error) {
	const rho = 0.1
	w := dnsWorkload()
	jobs, err := crnJobs(cfg, w.spec, rho)
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{Rho: rho}
	for _, tc := range []struct {
		label string
		beta  float64
	}{
		{"µf (CPU-bound)", 1}, {"µf^0.5", 0.5}, {"µf^0.2", 0.2}, {"µ (memory-bound)", 0},
	} {
		c, err := sweep(cfg, jobs, single(power.OperatingIdle), w.mu, rho, tc.beta)
		if err != nil {
			return nil, err
		}
		c.Label = tc.label
		out.Curves = append(out.Curves, c)
	}
	return out, nil
}

// Tables renders Figure 4.
func (r *Figure4Result) Tables() []Table {
	t := Table{
		Title:  "Figure 4 (DNS-like, ρ=0.1, C0(i)S0(i)): service-time frequency dependence",
		Header: []string{"scaling", "f*", "E[P] at f* (W)", "lowest swept f"},
	}
	for _, c := range r.Curves {
		bottom, _ := c.MinPower()
		lowest := c.Points[len(c.Points)-1].Frequency
		t.Rows = append(t.Rows, []string{
			c.Label,
			fmt.Sprintf("%.2f", bottom.Frequency),
			fmt.Sprintf("%.1f", bottom.Power),
			fmt.Sprintf("%.2f", lowest),
		})
	}
	return []Table{t}
}

// Figure5Result holds the QoS illustration of Figure 5.
type Figure5Result struct {
	Curves []Curve // one per utilization, labeled "ρ=0.1" …
	// Budget is the normalized QoS bar µE[R] ≤ 1/(1−ρ_b).
	Budget float64
	// OptimalF maps each curve label to the minimum-power frequency
	// meeting the budget (the paper's f = 0.41 … 0.56 annotations).
	OptimalF map[string]float64
	RhoB     float64
}

// Figure5 reproduces Figure 5: the Google-like workload under C0(i)S0(i) at
// ρ ∈ {0.1, 0.2, 0.3, 0.4} with the baseline QoS bar at µE[R] = 1/(1−0.8) = 5.
// At low utilizations the global power minimum beats the QoS requirement
// (the response sits left of the bar); as ρ grows the constraint binds and
// the optimal frequency rises.
func Figure5(cfg Config) (*Figure5Result, error) {
	const rhoB = 0.8
	w := googleWorkload()
	out := &Figure5Result{
		Budget:   1 / (1 - rhoB),
		OptimalF: map[string]float64{},
		RhoB:     rhoB,
	}
	for _, rho := range []float64{0.1, 0.2, 0.3, 0.4} {
		jobs, err := crnJobs(cfg, w.spec, rho)
		if err != nil {
			return nil, err
		}
		c, err := sweep(cfg, jobs, single(power.OperatingIdle), w.mu, rho, w.beta)
		if err != nil {
			return nil, err
		}
		c.Label = fmt.Sprintf("ρ=%.1f", rho)
		out.Curves = append(out.Curves, c)
		if p, ok := c.MinPowerWithin(out.Budget); ok {
			out.OptimalF[c.Label] = p.Frequency
		}
	}
	return out, nil
}

// Tables renders Figure 5.
func (r *Figure5Result) Tables() []Table {
	t := Table{
		Title: fmt.Sprintf("Figure 5 (Google-like, C0(i)S0(i)): QoS bar µE[R] ≤ %.1f (ρ_b=%.1f)",
			r.Budget, r.RhoB),
		Header: []string{"utilization", "f* meeting QoS", "E[P] (W)", "µE[R] at f*", "exceeds QoS?"},
	}
	for _, c := range r.Curves {
		p, ok := c.MinPowerWithin(r.Budget)
		if !ok {
			t.Rows = append(t.Rows, []string{c.Label, "—", "—", "—", "—"})
			continue
		}
		exceeds := "no"
		if p.NormMeanResponse < r.Budget*0.95 {
			exceeds = "yes" // operating strictly left of the bar
		}
		t.Rows = append(t.Rows, []string{
			c.Label,
			fmt.Sprintf("%.2f", p.Frequency),
			fmt.Sprintf("%.1f", p.Power),
			fmt.Sprintf("%.2f", p.NormMeanResponse),
			exceeds,
		})
	}
	return []Table{t}
}
