package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	r := &Figure5Result{
		Budget:   5,
		RhoB:     0.8,
		OptimalF: map[string]float64{"ρ=0.1": 0.39},
		Curves: []Curve{{Label: "ρ=0.1", Points: []Point{
			{Frequency: 1, NormMeanResponse: 1.1, Power: 250},
		}}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back Figure5Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Budget != 5 || len(back.Curves) != 1 || back.Curves[0].Points[0].Power != 250 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestWriteCurvesCSV(t *testing.T) {
	curves := []Curve{
		{Label: "a", Points: []Point{{Frequency: 1, NormMeanResponse: 2, Power: 3}}},
		{Label: "b", Points: []Point{
			{Frequency: 0.5, NormMeanResponse: 4, Power: 5},
			{Frequency: 0.4, NormMeanResponse: 6, Power: 7},
		}},
	}
	var buf bytes.Buffer
	if err := WriteCurvesCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 points
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0][0] != "label" || rows[2][0] != "b" || rows[3][3] != "7" {
		t.Errorf("csv content wrong: %v", rows)
	}
}

func TestFigureCSVExporters(t *testing.T) {
	f6 := &Figure6Result{Maps: []PolicyMap{{
		Workload: "DNS", QoSKind: "mean", RhoB: 0.8, Model: "idealized",
		Points: []PolicyMapPoint{{Utilization: 0.1, Frequency: 0.4, Plan: "C6S3", Feasible: true}},
	}}}
	var buf bytes.Buffer
	if err := f6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DNS,mean,0.8,idealized,0.1,0.4,C6S3,true") {
		t.Errorf("figure 6 csv wrong:\n%s", buf.String())
	}

	f8 := &Figure8Result{Cells: []Figure8Cell{
		{Predictor: "LC", EpochMinutes: 5, MeanResponse: 1.1, P95Response: 2.2, AvgPower: 100},
	}}
	buf.Reset()
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LC,5,1.1,2.2,100") {
		t.Errorf("figure 8 csv wrong:\n%s", buf.String())
	}

	f9 := &Figure9Result{Rows: []Figure9Row{
		{Strategy: "SS", MeanResponse: 0.5, P95Response: 1.5, AvgPower: 147, Energy: 9e6},
	}}
	buf.Reset()
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SS,0.5,1.5,147,9e+06") {
		t.Errorf("figure 9 csv wrong:\n%s", buf.String())
	}

	f10 := &Figure10Result{Rows: []Figure10Row{
		{TraceName: "es", Workload: "DNS", RhoB: 0.8,
			PlanFractions: map[string]float64{"C6S0(i)": 0.68}},
	}}
	buf.Reset()
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "es,DNS,0.8,C6S0(i),0.68") {
		t.Errorf("figure 10 csv wrong:\n%s", buf.String())
	}
}

func TestExportCSVDispatch(t *testing.T) {
	// Curve-based results route through WriteCurvesCSV.
	f1 := &Figure1Result{Curves: map[string][]Curve{
		"DNS":    {{Label: "C6S3", Points: []Point{{Frequency: 1, Power: 2}}}},
		"Google": {{Label: "C6S3", Points: []Point{{Frequency: 1, Power: 3}}}},
	}}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, f1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DNS: C6S3") || !strings.Contains(buf.String(), "Google: C6S3") {
		t.Errorf("figure 1 export wrong:\n%s", buf.String())
	}

	f3 := &Figure3Result{
		Curves: []Curve{{Label: "C6S3", Points: []Point{{Frequency: 1}}}},
		Bursty: []Curve{{Label: "C6S3", Points: []Point{{Frequency: 1}}}},
	}
	buf.Reset()
	if err := ExportCSV(&buf, f3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bursty: C6S3") {
		t.Errorf("figure 3 export missing bursty curves:\n%s", buf.String())
	}

	// Unsupported types are rejected.
	if err := ExportCSV(&buf, struct{}{}); err == nil {
		t.Error("unsupported type accepted")
	}
}
