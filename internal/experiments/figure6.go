package experiments

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/core"
	"sleepscale/internal/policy"
	"sleepscale/internal/workload"
)

// PolicyMapPoint is one optimal-policy sample of Figure 6: the best
// (frequency, state) pair at one utilization.
type PolicyMapPoint struct {
	// Utilization is ρ.
	Utilization float64
	// Frequency is the selected f.
	Frequency float64
	// Plan names the selected low-power state.
	Plan string
	// Feasible reports whether the selection met the QoS (false means the
	// least-violating fallback was reported).
	Feasible bool
	// Power and NormMeanResponse record the winning metrics.
	Power            float64
	NormMeanResponse float64
}

// PolicyMap is one curve of Figure 6.
type PolicyMap struct {
	// Workload is "DNS" or "Google".
	Workload string
	// QoSKind is "mean" (µE[R]) or "p95" (95th percentile).
	QoSKind string
	// RhoB is the baseline peak design utilization.
	RhoB float64
	// Model is "idealized" (closed forms, solid lines) or "empirical"
	// (BigHouse-surrogate statistics through the simulator, dashed lines).
	Model string
	// Points are ordered by utilization.
	Points []PolicyMapPoint
}

// Label renders the curve identity.
func (pm PolicyMap) Label() string {
	return fmt.Sprintf("%s/%s/ρb=%.1f/%s", pm.Workload, pm.QoSKind, pm.RhoB, pm.Model)
}

// Figure6Result holds all Figure 6 policy maps.
type Figure6Result struct {
	Maps []PolicyMap
	// RhoGrid is the utilization grid used.
	RhoGrid []float64
}

// Figure6Options selects which subset of the 16 curves to compute; the zero
// value computes everything.
type Figure6Options struct {
	// Workloads restricts to the named workloads (default DNS and Google).
	Workloads []string
	// QoSKinds restricts to "mean" and/or "p95".
	QoSKinds []string
	// RhoBs restricts the baselines (default 0.6 and 0.8).
	RhoBs []float64
	// Models restricts to "idealized" and/or "empirical".
	Models []string
	// RhoStep sets the utilization grid step (default 0.05).
	RhoStep float64
}

func (o *Figure6Options) fill() {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"DNS", "Google"}
	}
	if len(o.QoSKinds) == 0 {
		o.QoSKinds = []string{"mean", "p95"}
	}
	if len(o.RhoBs) == 0 {
		o.RhoBs = []float64{0.6, 0.8}
	}
	if len(o.Models) == 0 {
		o.Models = []string{"idealized", "empirical"}
	}
	if o.RhoStep <= 0 {
		o.RhoStep = 0.05
	}
}

// Figure6 reproduces Figure 6: the optimal pairing of frequency setting and
// low-power state as a function of utilization, for DNS and Google-like
// workloads, under mean-response and 95th-percentile QoS at ρ_b ∈ {0.6, 0.8},
// computed both with the idealized M/M model (closed forms) and with
// empirical BigHouse-surrogate statistics (simulation, common random
// numbers).
func Figure6(cfg Config, opts Figure6Options) (*Figure6Result, error) {
	opts.fill()
	var grid []float64
	for rho := opts.RhoStep; rho <= 0.8+1e-9; rho += opts.RhoStep {
		grid = append(grid, rho)
	}
	out := &Figure6Result{RhoGrid: grid}

	for _, wname := range opts.Workloads {
		spec, err := specByName(wname)
		if err != nil {
			return nil, err
		}
		mu := spec.MaxServiceRate()
		// Empirical statistics are built once per workload and rescaled
		// per utilization, as BigHouse's stored CDFs are in the paper.
		empStats, err := workload.NewEmpiricalStats(spec, 40000, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, kind := range opts.QoSKinds {
			for _, rhoB := range opts.RhoBs {
				qos, err := qosFor(kind, rhoB, mu)
				if err != nil {
					return nil, err
				}
				mgr := &core.Manager{
					Profile:      cfg.profile(),
					FreqExponent: spec.FreqExponent,
					Space: policy.Space{
						Plans:    policy.DefaultPlans(),
						FreqStep: cfg.FreqStep,
						MinFreq:  0.05,
					},
					QoS: qos,
				}
				for _, model := range opts.Models {
					pm := PolicyMap{Workload: wname, QoSKind: kind, RhoB: rhoB, Model: model}
					for _, rho := range grid {
						var best policy.Evaluation
						switch model {
						case "idealized":
							best, _, err = mgr.SelectIdealized(rho*mu, mu)
						case "empirical":
							st, serr := empStats.AtUtilization(rho)
							if serr != nil {
								return nil, serr
							}
							rng := rand.New(rand.NewSource(cfg.Seed + int64(rho*1000)))
							jobs := st.Jobs(cfg.EvalJobs, rng)
							best, _, err = mgr.Select(jobs, rho)
						default:
							return nil, fmt.Errorf("experiments: unknown model %q", model)
						}
						if err != nil {
							return nil, err
						}
						pm.Points = append(pm.Points, PolicyMapPoint{
							Utilization:      rho,
							Frequency:        best.Policy.Frequency,
							Plan:             best.Policy.Plan.Name,
							Feasible:         best.Feasible,
							Power:            best.Metrics.AvgPower,
							NormMeanResponse: mu * best.Metrics.MeanResponse,
						})
					}
					out.Maps = append(out.Maps, pm)
				}
			}
		}
	}
	return out, nil
}

func specByName(name string) (workload.Spec, error) {
	switch name {
	case "DNS":
		return workload.DNS(), nil
	case "Google":
		return workload.Google(), nil
	case "Mail":
		return workload.Mail(), nil
	}
	return workload.Spec{}, fmt.Errorf("experiments: unknown workload %q", name)
}

func qosFor(kind string, rhoB, mu float64) (policy.QoS, error) {
	switch kind {
	case "mean":
		return policy.NewMeanResponseQoS(rhoB, mu)
	case "p95":
		return policy.NewPercentileQoS(rhoB, mu, 0.95)
	}
	return nil, fmt.Errorf("experiments: unknown QoS kind %q", kind)
}

// Tables renders each policy map as a utilization → (frequency, state) grid.
func (r *Figure6Result) Tables() []Table {
	var tables []Table
	for _, pm := range r.Maps {
		t := Table{
			Title:  "Figure 6 " + pm.Label(),
			Header: []string{"ρ", "f", "state", "feasible", "E[P] (W)", "µE[R]"},
		}
		for _, p := range pm.Points {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", p.Utilization),
				fmt.Sprintf("%.2f", p.Frequency),
				p.Plan,
				fmt.Sprintf("%t", p.Feasible),
				fmt.Sprintf("%.1f", p.Power),
				fmt.Sprintf("%.2f", p.NormMeanResponse),
			})
		}
		tables = append(tables, t)
	}
	return tables
}

// Find returns the map matching the given identity, or false.
func (r *Figure6Result) Find(workloadName, qosKind string, rhoB float64, model string) (PolicyMap, bool) {
	for _, pm := range r.Maps {
		if pm.Workload == workloadName && pm.QoSKind == qosKind &&
			pm.RhoB == rhoB && pm.Model == model {
			return pm, true
		}
	}
	return PolicyMap{}, false
}
