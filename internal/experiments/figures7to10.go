package experiments

import (
	"fmt"

	"sleepscale/internal/core"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/strategy"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// Figure7Result holds the synthetic utilization traces of Figure 7.
type Figure7Result struct {
	FileServer *trace.Trace
	EmailStore *trace.Trace
}

// Figure7 generates the Figure 7 traces: three days of minute-granularity
// utilization for a lightly loaded file server and a wide-range email store
// with end-of-day backup surges (synthetic equivalents; see DESIGN.md §2.2).
func Figure7(cfg Config) (*Figure7Result, error) {
	days := cfg.TraceDays
	if days < 1 {
		days = 3
	}
	return &Figure7Result{
		FileServer: trace.FileServer(days, cfg.Seed),
		EmailStore: trace.EmailStore(days, cfg.Seed),
	}, nil
}

// Tables renders Figure 7 summary statistics.
func (r *Figure7Result) Tables() []Table {
	t := Table{
		Title:  "Figure 7: utilization traces (synthetic, minute granularity)",
		Header: []string{"trace", "days", "mean ρ", "min ρ", "max ρ"},
	}
	for _, tr := range []*trace.Trace{r.FileServer, r.EmailStore} {
		mean, min, max := tr.Stats()
		t.Rows = append(t.Rows, []string{
			tr.Name,
			fmt.Sprintf("%d", tr.Len()/trace.MinutesPerDay),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", min),
			fmt.Sprintf("%.3f", max),
		})
	}
	return []Table{t}
}

// evalTrace returns the evaluated window of the email-store trace: the paper
// runs 2 AM–8 PM because 8 PM–2 AM hosts scheduled backups.
func evalTrace(cfg Config, seedOffset int64) (*trace.Trace, error) {
	full := trace.EmailStore(maxInt(cfg.TraceDays, 1), cfg.Seed+seedOffset)
	return full.DailyWindow(cfg.TraceWindowStart, cfg.TraceWindowEnd)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runnerManager builds a fresh manager for trace runs (each strategy must
// own its manager because some constructors restrict the plan space).
func runnerManager(cfg Config, spec workload.Spec, rhoB float64) (*core.Manager, error) {
	qos, err := policy.NewMeanResponseQoS(rhoB, spec.MaxServiceRate())
	if err != nil {
		return nil, err
	}
	return &core.Manager{
		Profile:      cfg.profile(),
		FreqExponent: spec.FreqExponent,
		Space: policy.Space{
			Plans:    policy.DefaultPlans(),
			FreqStep: cfg.RunnerFreqStep,
			MinFreq:  0.05,
		},
		QoS: qos,
	}, nil
}

// predictorByName builds the Figure 8 predictors; "Offline" needs the trace.
func predictorByName(name string, tr *trace.Trace) (predict.Predictor, error) {
	switch name {
	case "NP":
		return predict.NewNaivePrevious(), nil
	case "LMS":
		return predict.NewLMS(10, 0.5)
	case "LC":
		return predict.NewLMSCUSUM(10, 0.5)
	case "Offline":
		return predict.NewOffline(tr.Utilization), nil
	}
	return nil, fmt.Errorf("experiments: unknown predictor %q", name)
}

// Figure8Cell is one bar of Figure 8.
type Figure8Cell struct {
	Predictor    string
	EpochMinutes int
	MeanResponse float64
	P95Response  float64
	AvgPower     float64
}

// Figure8Result holds the predictor × update-interval study.
type Figure8Result struct {
	Cells []Figure8Cell
	// Budget is the absolute mean-response budget (1/((1−ρ_b)µ)).
	Budget float64
}

// Figure8 reproduces Figure 8: average response time of SleepScale under
// different utilization predictors (LC, LMS, NP, Offline) and policy update
// intervals T, with no over-provisioning (α = 0), on a DNS-like server
// following the email-store trace with ρ_b = 0.8.
func Figure8(cfg Config, predictors []string, epochs []int) (*Figure8Result, error) {
	if len(predictors) == 0 {
		predictors = []string{"LC", "LMS", "NP", "Offline"}
	}
	if len(epochs) == 0 {
		epochs = []int{1, 3, 5, 10}
	}
	spec := workload.DNS()
	stats, err := workload.NewFittedStats(spec)
	if err != nil {
		return nil, err
	}
	tr, err := evalTrace(cfg, 0)
	if err != nil {
		return nil, err
	}
	qos, err := policy.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		return nil, err
	}
	out := &Figure8Result{Budget: qos.Budget}
	for _, pname := range predictors {
		for _, T := range epochs {
			mgr, err := runnerManager(cfg, spec, 0.8)
			if err != nil {
				return nil, err
			}
			strat, err := strategy.NewSleepScale(mgr, cfg.RunnerEvalJobs, 0)
			if err != nil {
				return nil, err
			}
			pred, err := predictorByName(pname, tr)
			if err != nil {
				return nil, err
			}
			rep, err := core.Run(core.RunnerConfig{
				Stats:        stats,
				FreqExponent: spec.FreqExponent,
				Profile:      cfg.profile(),
				Trace:        tr,
				EpochSlots:   T,
				Predictor:    pred,
				Strategy:     strat,
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Figure8Cell{
				Predictor:    pname,
				EpochMinutes: T,
				MeanResponse: rep.MeanResponse,
				P95Response:  rep.P95Response,
				AvgPower:     rep.AvgPower,
			})
		}
	}
	return out, nil
}

// Cell returns the cell for (predictor, T), or false.
func (r *Figure8Result) Cell(pred string, T int) (Figure8Cell, bool) {
	for _, c := range r.Cells {
		if c.Predictor == pred && c.EpochMinutes == T {
			return c, true
		}
	}
	return Figure8Cell{}, false
}

// Tables renders Figure 8.
func (r *Figure8Result) Tables() []Table {
	t := Table{
		Title: fmt.Sprintf("Figure 8: mean response (s) by predictor × update interval, α=0 (budget %.3g s)",
			r.Budget),
		Header: []string{"predictor", "T (min)", "E[R] (s)", "P95 (s)", "E[P] (W)", "within budget"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Predictor,
			fmt.Sprintf("%d", c.EpochMinutes),
			fmt.Sprintf("%.3f", c.MeanResponse),
			fmt.Sprintf("%.3f", c.P95Response),
			fmt.Sprintf("%.1f", c.AvgPower),
			fmt.Sprintf("%t", c.MeanResponse <= r.Budget),
		})
	}
	return []Table{t}
}

// Figure9Row is one strategy of the Figure 9 comparison.
type Figure9Row struct {
	Strategy     string
	MeanResponse float64
	P95Response  float64
	AvgPower     float64
	Energy       float64
}

// Figure9Result holds the strategy comparison.
type Figure9Result struct {
	Rows   []Figure9Row
	Budget float64
}

// Figure9 reproduces Figure 9: SleepScale (with α = 0.35) against SS(C3),
// DVFS-only, R2H(C3) and R2H(C6), all driven by the LMS+CUSUM predictor with
// T = 5 minute epochs on the DNS-like email-store day.
func Figure9(cfg Config) (*Figure9Result, error) {
	const (
		rhoB  = 0.8
		alpha = 0.35
		T     = 5
	)
	spec := workload.DNS()
	stats, err := workload.NewFittedStats(spec)
	if err != nil {
		return nil, err
	}
	tr, err := evalTrace(cfg, 0)
	if err != nil {
		return nil, err
	}
	qos, err := policy.NewMeanResponseQoS(rhoB, spec.MaxServiceRate())
	if err != nil {
		return nil, err
	}
	build := func(name string) (core.Strategy, error) {
		switch name {
		case "SS":
			m, err := runnerManager(cfg, spec, rhoB)
			if err != nil {
				return nil, err
			}
			return strategy.NewSleepScale(m, cfg.RunnerEvalJobs, alpha)
		case "SS(C3)":
			m, err := runnerManager(cfg, spec, rhoB)
			if err != nil {
				return nil, err
			}
			return strategy.NewFixedSleep(m, power.Sleep, cfg.RunnerEvalJobs, alpha)
		case "DVFS":
			m, err := runnerManager(cfg, spec, rhoB)
			if err != nil {
				return nil, err
			}
			return strategy.NewDVFSOnly(m, cfg.RunnerEvalJobs, alpha)
		case "R2H(C3)":
			return strategy.NewRaceToHalt(power.Sleep)
		case "R2H(C6)":
			return strategy.NewRaceToHalt(power.DeepSleep)
		}
		return nil, fmt.Errorf("experiments: unknown strategy %q", name)
	}
	out := &Figure9Result{Budget: qos.Budget}
	for _, name := range []string{"SS", "SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)"} {
		strat, err := build(name)
		if err != nil {
			return nil, err
		}
		pred, err := predictorByName("LC", tr)
		if err != nil {
			return nil, err
		}
		rep, err := core.Run(core.RunnerConfig{
			Stats:        stats,
			FreqExponent: spec.FreqExponent,
			Profile:      cfg.profile(),
			Trace:        tr,
			EpochSlots:   T,
			Predictor:    pred,
			Strategy:     strat,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure9Row{
			Strategy:     name,
			MeanResponse: rep.MeanResponse,
			P95Response:  rep.P95Response,
			AvgPower:     rep.AvgPower,
			Energy:       rep.Energy,
		})
	}
	return out, nil
}

// Row returns the named strategy's row, or false.
func (r *Figure9Result) Row(name string) (Figure9Row, bool) {
	for _, row := range r.Rows {
		if row.Strategy == name {
			return row, true
		}
	}
	return Figure9Row{}, false
}

// Tables renders Figure 9 (both sub-figures: response and power).
func (r *Figure9Result) Tables() []Table {
	t := Table{
		Title: fmt.Sprintf("Figure 9: strategy comparison (LC predictor, T=5, α=0.35; budget %.3g s)",
			r.Budget),
		Header: []string{"strategy", "E[R] (s)", "P95 (s)", "E[P] (W)", "within budget"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Strategy,
			fmt.Sprintf("%.3f", row.MeanResponse),
			fmt.Sprintf("%.3f", row.P95Response),
			fmt.Sprintf("%.1f", row.AvgPower),
			fmt.Sprintf("%t", row.MeanResponse <= r.Budget),
		})
	}
	return []Table{t}
}

// Figure10Row is one run of the Figure 10 state-distribution study.
type Figure10Row struct {
	// TraceName is "fs" (file server) or "es" (email store).
	TraceName string
	// Workload is "DNS" or "Google".
	Workload string
	// RhoB is the baseline.
	RhoB float64
	// PlanFractions maps state name → fraction of decision epochs.
	PlanFractions map[string]float64
}

// Figure10Result holds the distribution of selected low-power states.
type Figure10Result struct {
	Rows []Figure10Row
}

// Figure10 reproduces Figure 10: the distribution of optimal low-power
// states selected by SleepScale (LC predictor, T = 5, α = 0.35) for the file
// server and email store traces running DNS and Google-like services at
// ρ_b ∈ {0.6, 0.8}.
func Figure10(cfg Config) (*Figure10Result, error) {
	const (
		alpha = 0.35
		T     = 5
	)
	out := &Figure10Result{}
	for _, tc := range []struct {
		traceName string
		tr        func() (*trace.Trace, error)
	}{
		{"fs", func() (*trace.Trace, error) {
			full := trace.FileServer(maxInt(cfg.TraceDays, 1), cfg.Seed)
			return full.DailyWindow(cfg.TraceWindowStart, cfg.TraceWindowEnd)
		}},
		{"es", func() (*trace.Trace, error) { return evalTrace(cfg, 0) }},
	} {
		for _, wname := range []string{"DNS", "Google"} {
			spec, err := specByName(wname)
			if err != nil {
				return nil, err
			}
			stats, err := workload.NewFittedStats(spec)
			if err != nil {
				return nil, err
			}
			for _, rhoB := range []float64{0.6, 0.8} {
				tr, err := tc.tr()
				if err != nil {
					return nil, err
				}
				mgr, err := runnerManager(cfg, spec, rhoB)
				if err != nil {
					return nil, err
				}
				strat, err := strategy.NewSleepScale(mgr, cfg.RunnerEvalJobs, alpha)
				if err != nil {
					return nil, err
				}
				pred, err := predictorByName("LC", tr)
				if err != nil {
					return nil, err
				}
				rep, err := core.Run(core.RunnerConfig{
					Stats:        stats,
					FreqExponent: spec.FreqExponent,
					Profile:      cfg.profile(),
					Trace:        tr,
					EpochSlots:   T,
					Predictor:    pred,
					Strategy:     strat,
					Seed:         cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, Figure10Row{
					TraceName:     tc.traceName,
					Workload:      wname,
					RhoB:          rhoB,
					PlanFractions: rep.PlanFractions(),
				})
			}
		}
	}
	return out, nil
}

// Row returns the row for (traceName, workload, rhoB), or false.
func (r *Figure10Result) Row(traceName, wname string, rhoB float64) (Figure10Row, bool) {
	for _, row := range r.Rows {
		if row.TraceName == traceName && row.Workload == wname && row.RhoB == rhoB {
			return row, true
		}
	}
	return Figure10Row{}, false
}

// Tables renders Figure 10.
func (r *Figure10Result) Tables() []Table {
	states := []string{"C0(i)S0(i)", "C1S0(i)", "C3S0(i)", "C6S0(i)", "C6S3"}
	t := Table{
		Title:  "Figure 10: distribution of low-power states selected by SleepScale",
		Header: append([]string{"trace", "workload", "ρ_b"}, states...),
	}
	for _, row := range r.Rows {
		cells := []string{row.TraceName, row.Workload, fmt.Sprintf("%.1f", row.RhoB)}
		for _, s := range states {
			cells = append(cells, fmt.Sprintf("%.2f", row.PlanFractions[s]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return []Table{t}
}
