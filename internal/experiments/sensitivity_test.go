package experiments

import "testing"

// TestWakeSensitivityLessonsStable asserts the §4.2 robustness claim: the
// DNS high-utilization winner is C6S0(i) across the entire Table 4 wake
// range, and Google prefers C3S0(i) at the published (upper) setting.
func TestWakeSensitivityLessonsStable(t *testing.T) {
	r, err := WakeSensitivity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DNSWinner != "C6S0(i)" {
			t.Errorf("C6 wake %.0fµs: DNS winner = %s, want C6S0(i) at every setting",
				row.C6Wake*1e6, row.DNSWinner)
		}
	}
	// At the published 1 ms wake Google must prefer C3S0(i); at the bottom
	// of the range the C6 penalty shrinks and the preference may flip,
	// which is fine — the "lesson" is about the published setting.
	top := r.Rows[len(r.Rows)-1]
	if top.C6Wake != 1e-3 {
		t.Fatalf("last row wake = %v, want 1 ms", top.C6Wake)
	}
	if top.GoogleWinner != "C3S0(i)" {
		t.Errorf("Google winner at 1 ms = %s, want C3S0(i)", top.GoogleWinner)
	}
}

// TestAnalyticStrategyStudy asserts the §5.1.2 observation 3 payoff: the
// closed-form runtime matches the simulated one on power and response
// (within 10%) at a far lower per-decision cost.
func TestAnalyticStrategyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace runs")
	}
	r, err := AnalyticStrategyStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	sim, ana := r.Rows[0], r.Rows[1]
	if sim.Strategy != "SS" || ana.Strategy != "SS(analytic)" {
		t.Fatalf("row order wrong: %+v", r.Rows)
	}
	if diff := ana.AvgPower/sim.AvgPower - 1; diff > 0.10 || diff < -0.10 {
		t.Errorf("analytic power %.1f too far from simulated %.1f", ana.AvgPower, sim.AvgPower)
	}
	if ana.MeanResponse > sim.MeanResponse*1.3 {
		t.Errorf("analytic response %.3f much worse than simulated %.3f",
			ana.MeanResponse, sim.MeanResponse)
	}
	if ana.DecideMicros*5 > sim.DecideMicros {
		t.Errorf("analytic decisions (%.0f µs) not ≥5× cheaper than simulated (%.0f µs)",
			ana.DecideMicros, sim.DecideMicros)
	}
}

// TestMailStudyHeavyTailGap asserts §5.1.2 observation 2 amplified: under a
// 95th-percentile constraint the heavy-tailed Mail workload needs a larger
// frequency bump over the idealized model than the near-exponential DNS.
func TestMailStudyHeavyTailGap(t *testing.T) {
	if testing.Short() {
		t.Skip("long empirical selection")
	}
	r, err := MailStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.MailGap < 0 {
		t.Errorf("Mail empirical frequency %.2f below idealized %.2f — heavy tail ignored",
			r.EmpiricalFrequency, r.IdealizedFrequency)
	}
	if r.MailGap < r.DNSGap {
		t.Errorf("Mail gap %.2f not above DNS gap %.2f — tail sensitivity missing",
			r.MailGap, r.DNSGap)
	}
}
