package multicore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sleepscale/internal/queue"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1e-12, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

// xeonQuad is a 4-core Xeon-like chip: per-core 32.5 W active (130/4),
// per-core C6 at 3.75 W entered immediately with a 1 ms wake; platform
// 120/60.5/13.1 W with a 1 s revival after 2 s of chip-wide idleness.
func xeonQuad(cores int) Config {
	return Config{
		Cores:          cores,
		Frequency:      1,
		FreqExponent:   1,
		CPUActivePower: 32.5,
		CoreSleep: []Phase{
			{Name: "C6", Power: 3.75, WakeLatency: 1e-3, EnterAfter: 0},
		},
		PlatformActivePower: 120,
		PlatformIdlePower:   60.5,
		PlatformSleepPower:  13.1,
		PlatformSleepAfter:  2,
		PlatformWakeLatency: 1,
	}
}

func expJobs(n int, lambda, mu float64, seed int64) []queue.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = queue.Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}
	return jobs
}

func TestValidate(t *testing.T) {
	good := xeonQuad(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Frequency = 0 },
		func(c *Config) { c.Frequency = 1.5 },
		func(c *Config) { c.FreqExponent = 2 },
		func(c *Config) { c.CPUActivePower = -1 },
		func(c *Config) { c.PlatformSleepAfter = -1 },
		func(c *Config) { c.CoreSleep[0].EnterAfter = -1 },
		func(c *Config) { c.CoreSleep = append(c.CoreSleep, Phase{EnterAfter: -5}) },
	}
	for i, mutate := range bad {
		cfg := xeonQuad(4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestHandComputedTwoCores walks a deterministic two-core schedule.
func TestHandComputedTwoCores(t *testing.T) {
	cfg := Config{
		Cores: 2, Frequency: 1, FreqExponent: 1,
		CPUActivePower:      10,
		CoreSleep:           []Phase{{Name: "sleep", Power: 1, WakeLatency: 0, EnterAfter: 0}},
		PlatformActivePower: 100,
		PlatformIdlePower:   50,
		PlatformSleepPower:  5,
		PlatformSleepAfter:  4,
		PlatformWakeLatency: 0,
	}
	jobs := []queue.Job{
		{Arrival: 0, Size: 2}, // core A serves [0,2)
		{Arrival: 1, Size: 2}, // core B serves [1,3)
		{Arrival: 9, Size: 1}, // chip idle [3,9): idle 4 s then sleep 2 s
	}
	res, err := Simulate(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Platform: active over the union [0,3) and [9,10) = 4 s; idle [3,7) =
	// 4 s; sleep [7,9) = 2 s.
	approx(t, "platform active", res.PlatformResidency["active"], 4, 1e-12)
	approx(t, "platform idle", res.PlatformResidency["idle"], 4, 1e-12)
	approx(t, "platform sleep", res.PlatformResidency["sleep"], 2, 1e-12)
	wantPlat := 4*100.0 + 4*50 + 2*5
	approx(t, "platform energy", res.PlatformEnergy, wantPlat, 1e-12)
	// Cores: A busy [0,2) and [9,10) → 3 s busy, idle [2,9) at 1 W;
	// B busy [1,3) → 2 s busy, idle [0,1) and [3,10) at 1 W.
	wantCPU := 5*10.0 + (7+8)*1
	approx(t, "cpu energy", res.CPUEnergy, wantCPU, 1e-12)
	approx(t, "total energy", res.Energy, wantPlat+wantCPU, 1e-12)
	approx(t, "duration", res.Duration, 10, 1e-12)
	// Responses: 2, 2, 1.
	approx(t, "mean response", res.MeanResponse, 5.0/3, 1e-12)
	if res.Jobs != 3 {
		t.Errorf("jobs = %d", res.Jobs)
	}
}

// TestSingleCoreMatchesEngine: with k=1 the multicore simulator must agree
// exactly with queue.Engine under the equivalent merged configuration.
func TestSingleCoreMatchesEngine(t *testing.T) {
	mc := Config{
		Cores: 1, Frequency: 0.8, FreqExponent: 1,
		CPUActivePower:      130 * 0.512,
		CoreSleep:           []Phase{{Name: "C6", Power: 15, WakeLatency: 1e-3, EnterAfter: 0}},
		PlatformActivePower: 120,
		PlatformIdlePower:   60.5,
		PlatformSleepPower:  13.1,
		PlatformSleepAfter:  2,
		PlatformWakeLatency: 1,
	}
	merged := queue.Config{
		Frequency: 0.8, FreqExponent: 1,
		ActivePower: 130*0.512 + 120,
		IdlePower:   130*0.512 + 120,
		Phases: []queue.SleepPhase{
			{Name: "C6S0(i)", Power: 15 + 60.5, WakeLatency: 1e-3, EnterAfter: 0},
			{Name: "C6S3", Power: 15 + 13.1, WakeLatency: 1, EnterAfter: 2},
		},
	}
	jobs := expJobs(30000, 0.5155, 5.155, 3)
	got, err := Simulate(jobs, mc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := queue.Simulate(jobs, merged, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean response", got.MeanResponse, want.MeanResponse, 1e-9)
	approx(t, "energy", got.Energy, want.Energy, 1e-9)
	approx(t, "duration", got.Duration, want.Duration, 1e-9)
}

// TestMMkMeanResponseAgainstErlangC validates the simulator's queueing core
// against the textbook M/M/k formula (no sleep states, no wake).
func TestMMkMeanResponseAgainstErlangC(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const (
		k      = 4
		mu     = 5.0
		lambda = 14.0 // a = 2.8, per-core ρ = 0.7
	)
	cfg := Config{
		Cores: k, Frequency: 1, FreqExponent: 1,
		CPUActivePower:      10,
		PlatformActivePower: 10, PlatformIdlePower: 5, PlatformSleepPower: 1,
		PlatformSleepAfter: math.Inf(1),
	}
	jobs := expJobs(400000, lambda, mu, 9)
	res, err := Simulate(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MMkMeanResponse(k, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "M/M/4 E[R]", res.MeanResponse, want, 0.03)
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1 reduces to C = a (probability of delay = ρ).
	c, err := ErlangC(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ErlangC(1,0.5)", c, 0.5, 1e-12)
	// M/M/2 with a = 1: C = (1²/2!)(2/(2−1)) / (1 + 1 + that) = 1/3.
	c, err = ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ErlangC(2,1)", c, 1.0/3, 1e-12)
	for _, bad := range []struct {
		k int
		a float64
	}{{0, 0.5}, {2, 0}, {2, 2}, {2, 3}} {
		if _, err := ErlangC(bad.k, bad.a); err == nil {
			t.Errorf("ErlangC(%d, %v) accepted", bad.k, bad.a)
		}
	}
}

// TestPlatformGating: one long-running job on one core must pin the
// platform in its active state even while other cores sleep.
func TestPlatformGating(t *testing.T) {
	cfg := xeonQuad(4)
	jobs := []queue.Job{{Arrival: 0, Size: 100}}
	res, err := Simulate(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "platform active", res.PlatformResidency["active"], 100, 1e-9)
	if res.PlatformResidency["idle"] != 0 || res.PlatformResidency["sleep"] != 0 {
		t.Errorf("platform slept under a busy core: %+v", res.PlatformResidency)
	}
	// Three idle cores slept at 3.75 W while one served at 32.5 W.
	wantCPU := 100*32.5 + 3*100*3.75
	approx(t, "cpu energy", res.CPUEnergy, wantCPU, 1e-9)
}

// TestPlatformWakeLatencyApplied: a job arriving to a fully sleeping chip
// pays the platform revival latency.
func TestPlatformWakeLatencyApplied(t *testing.T) {
	cfg := xeonQuad(2)
	sim, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First job wakes the chip from its initial all-idle state; arrival at
	// t=5 exceeds PlatformSleepAfter=2, so the platform is asleep. The
	// core's own 1 ms wake is dominated by the 1 s platform revival.
	resp, err := sim.Process(queue.Job{Arrival: 5, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "response", resp, 1+1, 1e-12) // 1 s wake + 1 s service
	// A job arriving during activity pays no platform wake.
	resp, err = sim.Process(queue.Job{Arrival: 6.5, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "second response", resp, 1+1e-3, 1e-9) // core wake only
}

// TestShallowestCoreReuse: among several idle cores, the most recently
// idled one (shallowest sleep) serves the next arrival.
func TestShallowestCoreReuse(t *testing.T) {
	cfg := Config{
		Cores: 2, Frequency: 1, FreqExponent: 1,
		CPUActivePower: 10,
		CoreSleep: []Phase{
			{Name: "shallow", Power: 5, WakeLatency: 0.01, EnterAfter: 0},
			{Name: "deep", Power: 1, WakeLatency: 1, EnterAfter: 3},
		},
		PlatformActivePower: 1, PlatformIdlePower: 1, PlatformSleepPower: 1,
		PlatformSleepAfter: math.Inf(1),
	}
	sim, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Core A serves [0,1); core B serves [1,2); both idle afterwards.
	if _, err := sim.Process(queue.Job{Arrival: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Process(queue.Job{Arrival: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	// At t=4.5: A idle 3.5 s (deep, wake 1 s), B idle 2.5 s (shallow,
	// wake 10 ms). The shallow core must serve.
	resp, err := sim.Process(queue.Job{Arrival: 4.5, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "response", resp, 1+0.01, 1e-9)
}

// TestMoreCoresImproveResponseAndSleepSharedPlatform: scale-out inside the
// chip — with the aggregate load fixed, more cores cut response, while the
// shared platform keeps total power from scaling with k.
func TestMoreCoresImproveResponseAndSleepSharedPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison")
	}
	const (
		mu     = 5.0
		lambda = 3.5
	)
	jobs := expJobs(60000, lambda, mu, 11)
	r1, err := Simulate(jobs, xeonQuad(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(jobs, xeonQuad(4))
	if err != nil {
		t.Fatal(err)
	}
	if r4.MeanResponse >= r1.MeanResponse {
		t.Errorf("4 cores response %v not below 1 core %v", r4.MeanResponse, r1.MeanResponse)
	}
	// Per-core CPU power is 32.5 W max and sleeping cores draw 3.75 W, so
	// quadrupling cores must cost well under 4× the single-core chip.
	if r4.AvgPower > r1.AvgPower*1.6 {
		t.Errorf("4-core power %v vs 1-core %v — idle cores not sleeping", r4.AvgPower, r1.AvgPower)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	sim, err := New(xeonQuad(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Process(queue.Job{Arrival: 5, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Process(queue.Job{Arrival: 4, Size: 1}); err == nil {
		t.Error("out-of-order accepted")
	}
	if _, err := sim.Process(queue.Job{Arrival: 6, Size: -1}); err == nil {
		t.Error("negative size accepted")
	}
}

// Property: conservation — CPU busy time per core never exceeds duration,
// platform residency partitions duration, and energy is within physical
// bounds.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%4 + 1
		cfg := xeonQuad(k)
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]queue.Job, 300)
		tnow := 0.0
		for i := range jobs {
			tnow += rng.ExpFloat64() * 0.3
			jobs[i] = queue.Job{Arrival: tnow, Size: rng.ExpFloat64() * 0.4}
		}
		res, err := Simulate(jobs, cfg)
		if err != nil {
			return false
		}
		var resid float64
		for _, v := range res.PlatformResidency {
			resid += v
		}
		if math.Abs(resid-res.Duration) > 1e-6*res.Duration {
			return false
		}
		for _, busy := range res.CoreBusy {
			if busy > res.Duration+1e-9 {
				return false
			}
		}
		maxP := float64(k)*cfg.CPUActivePower + cfg.PlatformActivePower
		minP := float64(k)*cfg.CoreSleep[0].Power + cfg.PlatformSleepPower
		return res.Energy >= minP*res.Duration-1e-6 &&
			res.Energy <= maxP*res.Duration+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyStream(t *testing.T) {
	res, err := Simulate(nil, xeonQuad(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 0 || res.Energy != 0 {
		t.Errorf("empty stream result: %+v", res)
	}
}

// TestResetMatchesFresh pins Simulator.Reset: a dirtied then Reset simulator
// must reproduce a fresh one's result bit-for-bit, including shrinking and
// growing the core count.
func TestResetMatchesFresh(t *testing.T) {
	jobs := expJobs(5000, 10, 5, 8)
	for _, cores := range []int{1, 4, 2} {
		cfg := xeonQuad(cores)
		want, err := Simulate(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(xeonQuad(8), 0) // dirty with a different shape first
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs[:500] {
			if _, err := sim.Process(j); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Reset(cfg, 0); err != nil {
			t.Fatal(err)
		}
		for i, j := range jobs {
			if _, err := sim.Process(j); err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
		}
		last := 0.0
		for i := 0; i < cores; i++ {
			if ft := sim.cores[i].freeAt; ft > last {
				last = ft
			}
		}
		got, err := sim.Finish(last)
		if err != nil {
			t.Fatal(err)
		}
		if got.Jobs != want.Jobs || got.Energy != want.Energy ||
			got.MeanResponse != want.MeanResponse || got.ResponseP95 != want.ResponseP95 ||
			got.CPUEnergy != want.CPUEnergy || got.PlatformEnergy != want.PlatformEnergy ||
			got.Duration != want.Duration {
			t.Fatalf("cores=%d: reset diverges from fresh:\n got %+v\nwant %+v", cores, got, want)
		}
		for k, v := range want.PlatformResidency {
			if got.PlatformResidency[k] != v {
				t.Errorf("cores=%d: residency[%s] = %v, want %v", cores, k, got.PlatformResidency[k], v)
			}
		}
	}
}

// TestSimulatePoolReuseDeterministic: repeated Simulate calls (which recycle
// pooled simulators) must be identical, and results must not alias pooled
// state.
func TestSimulatePoolReuseDeterministic(t *testing.T) {
	jobs := expJobs(3000, 12, 5, 9)
	cfg := xeonQuad(4)
	first, err := Simulate(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstBusy := append([]float64(nil), first.CoreBusy...)
	for i := 0; i < 5; i++ {
		again, err := Simulate(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again.Energy != first.Energy || again.MeanResponse != first.MeanResponse ||
			again.Jobs != first.Jobs {
			t.Fatalf("run %d diverges: %+v vs %+v", i, again, first)
		}
	}
	// The first result must be untouched by later pooled runs.
	for i, v := range first.CoreBusy {
		if v != firstBusy[i] {
			t.Fatalf("CoreBusy mutated by pooled reuse")
		}
	}
}
