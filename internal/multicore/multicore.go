// Package multicore extends the SleepScale model to a multi-core server —
// the second future-work direction of §7. A k-core chip serves one shared
// FCFS queue; each core walks its own CPU sleep schedule when idle, but the
// platform (chipset, RAM, PSU, fans) is shared: it can only leave its active
// state while *every* core is idle, and only reach its deep state after the
// whole chip has been idle for a configurable delay. This captures the
// coordination problem guarded power gating [23] points at: one busy core
// pins the platform for all of them.
//
// The simulator assigns each arriving job to the earliest-available core
// (FCFS for multi-server queues); among simultaneously idle cores it picks
// the most recently idled one, which occupies the shallowest sleep state and
// therefore wakes cheapest ("shallowest-first" reuse).
package multicore

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"sleepscale/internal/metrics"
	"sleepscale/internal/queue"
)

// Phase is one per-core CPU sleep phase (CPU power component only; the
// platform is accounted separately).
type Phase struct {
	// Name labels the phase for residency reporting, e.g. "C6".
	Name string
	// Power is the per-core CPU power while resident, watts.
	Power float64
	// WakeLatency is the core's time to return to service, seconds.
	WakeLatency float64
	// EnterAfter is τ: seconds after the core idles at which it enters.
	EnterAfter float64
}

// Config describes a k-core server sharing one platform.
type Config struct {
	// Cores is k ≥ 1.
	Cores int
	// Frequency is the chip-wide DVFS factor f ∈ (0, 1].
	Frequency float64
	// FreqExponent is β (service rate ∝ f^β).
	FreqExponent float64
	// CPUActivePower is one core's power while serving or waking, watts.
	CPUActivePower float64
	// CoreSleep is the per-core CPU sleep schedule.
	CoreSleep []Phase
	// PlatformActivePower applies while at least one core is serving or
	// waking; PlatformIdlePower while the whole chip is idle; and
	// PlatformSleepPower once the chip has been idle for
	// PlatformSleepAfter seconds.
	PlatformActivePower float64
	PlatformIdlePower   float64
	PlatformSleepPower  float64
	// PlatformSleepAfter is the all-idle delay before platform sleep;
	// +Inf (or simply a huge value) disables platform sleep.
	PlatformSleepAfter float64
	// PlatformWakeLatency is the extra latency to revive a sleeping
	// platform; the effective wake of a job is the maximum of the core
	// and platform latencies.
	PlatformWakeLatency float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("multicore: %d cores", c.Cores)
	}
	if !(c.Frequency > 0 && c.Frequency <= 1) {
		return fmt.Errorf("multicore: frequency %g outside (0,1]", c.Frequency)
	}
	if c.FreqExponent < 0 || c.FreqExponent > 1 {
		return fmt.Errorf("multicore: frequency exponent %g outside [0,1]", c.FreqExponent)
	}
	if c.CPUActivePower < 0 || c.PlatformActivePower < 0 ||
		c.PlatformIdlePower < 0 || c.PlatformSleepPower < 0 {
		return fmt.Errorf("multicore: negative power")
	}
	if c.PlatformSleepAfter < 0 || c.PlatformWakeLatency < 0 {
		return fmt.Errorf("multicore: negative platform delay")
	}
	prev := math.Inf(-1)
	for i, ph := range c.CoreSleep {
		if ph.EnterAfter < 0 || ph.EnterAfter < prev {
			return fmt.Errorf("multicore: phase %d enter %g not non-decreasing", i, ph.EnterAfter)
		}
		if ph.Power < 0 || ph.WakeLatency < 0 {
			return fmt.Errorf("multicore: phase %d negative power or wake", i)
		}
		prev = ph.EnterAfter
	}
	return nil
}

func (c *Config) speed() float64 {
	switch c.FreqExponent {
	case 0:
		return 1
	case 1:
		return c.Frequency
	default:
		return math.Pow(c.Frequency, c.FreqExponent)
	}
}

// Result summarizes a multi-core run.
type Result struct {
	// Jobs served.
	Jobs int
	// MeanResponse and ResponseP95 in seconds.
	MeanResponse float64
	ResponseP95  float64
	// Energy (J), Duration (s) and AvgPower (W) for the whole chip.
	Energy   float64
	Duration float64
	AvgPower float64
	// CPUEnergy and PlatformEnergy partition Energy.
	CPUEnergy      float64
	PlatformEnergy float64
	// CoreBusy[i] is core i's cumulative serving+waking time.
	CoreBusy []float64
	// PlatformResidency maps "active"/"idle"/"sleep" to seconds.
	PlatformResidency map[string]float64
}

// ErrOutOfOrder mirrors queue.ErrOutOfOrder for the shared-queue simulator.
var ErrOutOfOrder = errors.New("multicore: job arrivals out of order")

// core tracks one core's lazy energy accounting, mirroring queue.Engine's
// idle billing but with CPU-only powers.
type core struct {
	freeAt float64 // busy (serving or waking) until this time
	billed float64 // idle billed up to this absolute time
	busy   float64
	energy float64
}

// Simulator is the resumable k-core engine. Reset rewinds it for a fresh run
// while keeping its buffers, so one simulator can score many configurations
// (or be recycled by Simulate's pool) without allocating.
type Simulator struct {
	cfg   Config
	cores []core
	// Platform horizon: busy (≥1 core active) until this time; idle billed
	// up to billedP.
	platformBusyUntil float64
	billedP           float64
	platformEnergy    float64
	// Platform residency tally: the bucket set is fixed, so three scalars
	// replace a name-keyed map on the hot path.
	residActive float64
	residIdle   float64
	residSleep  float64

	lastSeen  float64
	lastBegin float64
	responses metrics.Sample
	started   float64
}

// New returns a simulator with all cores idle at time start.
func New(cfg Config, start float64) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg, start); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rewinds the simulator to all cores idle at time start under cfg,
// exactly as a fresh New would, but reuses the core and response buffers.
func (s *Simulator) Reset(cfg Config, start float64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg = cfg
	if cap(s.cores) < cfg.Cores {
		s.cores = make([]core, cfg.Cores)
	} else {
		s.cores = s.cores[:cfg.Cores]
	}
	for i := range s.cores {
		s.cores[i] = core{freeAt: start, billed: start}
	}
	s.platformBusyUntil = start
	s.billedP = start
	s.platformEnergy = 0
	s.residActive, s.residIdle, s.residSleep = 0, 0, 0
	s.lastSeen = start
	s.lastBegin = start
	s.started = start
	s.responses.Reset()
	return nil
}

// coreIdleEnergy bills core idle time [from, to) against the CPU sleep
// schedule anchored at the core's freeAt.
func (s *Simulator) coreIdleEnergy(c *core, from, to float64) {
	if to <= from {
		return
	}
	o1, o2 := from-c.freeAt, to-c.freeAt
	preEnd := math.Inf(1)
	if len(s.cfg.CoreSleep) > 0 {
		preEnd = s.cfg.CoreSleep[0].EnterAfter
	}
	if o1 < preEnd {
		seg := math.Min(o2, preEnd) - o1
		c.energy += seg * s.cfg.CPUActivePower
	}
	for i, ph := range s.cfg.CoreSleep {
		start := ph.EnterAfter
		end := math.Inf(1)
		if i+1 < len(s.cfg.CoreSleep) {
			end = s.cfg.CoreSleep[i+1].EnterAfter
		}
		lo, hi := math.Max(o1, start), math.Min(o2, end)
		if hi > lo {
			c.energy += (hi - lo) * ph.Power
		}
	}
}

// corePhase reports the sleep phase a core occupies at idle offset off, or
// -1 while still in the pre-sleep window.
func (s *Simulator) corePhase(off float64) int {
	idx := -1
	for i, ph := range s.cfg.CoreSleep {
		if ph.EnterAfter <= off {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// platformIdleEnergy bills chip-wide idle [from, to) against the platform
// schedule anchored at platformBusyUntil.
func (s *Simulator) platformIdleEnergy(from, to float64) {
	if to <= from {
		return
	}
	o1, o2 := from-s.platformBusyUntil, to-s.platformBusyUntil
	sleepAt := s.cfg.PlatformSleepAfter
	if o1 < sleepAt {
		seg := math.Min(o2, sleepAt) - o1
		s.platformEnergy += seg * s.cfg.PlatformIdlePower
		s.residIdle += seg
	}
	if o2 > sleepAt {
		seg := o2 - math.Max(o1, sleepAt)
		s.platformEnergy += seg * s.cfg.PlatformSleepPower
		s.residSleep += seg
	}
}

// Process serves one job, returning its response time. Jobs must be fed in
// non-decreasing arrival order.
func (s *Simulator) Process(j queue.Job) (float64, error) {
	if j.Arrival < s.lastSeen {
		return 0, fmt.Errorf("%w: %g after %g", ErrOutOfOrder, j.Arrival, s.lastSeen)
	}
	if j.Size < 0 {
		return 0, fmt.Errorf("multicore: negative job size %g", j.Size)
	}
	s.lastSeen = j.Arrival
	svc := j.Size / s.cfg.speed()

	// Pick the core: among idle cores the most recently idled (shallowest
	// state, cheapest wake); with none idle, the earliest to free (FCFS).
	best, bestIdle := -1, false
	for i := range s.cores {
		c := &s.cores[i]
		// A zero-length gap (freeAt == arrival) is busy continuation, not
		// an idle period — matching queue.Engine's boundary semantics.
		idle := c.freeAt < j.Arrival
		switch {
		case best < 0:
			best, bestIdle = i, idle
		case idle && !bestIdle:
			best, bestIdle = i, true
		case idle && bestIdle && c.freeAt > s.cores[best].freeAt:
			best = i
		case !idle && !bestIdle && c.freeAt < s.cores[best].freeAt:
			best = i
		}
	}
	c := &s.cores[best]

	var begin, wake float64
	if c.freeAt < j.Arrival {
		// Idle assignment: wake from the occupied phase; a sleeping
		// platform adds its own revival latency.
		if k := s.corePhase(j.Arrival - c.freeAt); k >= 0 {
			wake = s.cfg.CoreSleep[k].WakeLatency
		}
		if s.platformBusyUntil <= j.Arrival &&
			j.Arrival-s.platformBusyUntil >= s.cfg.PlatformSleepAfter {
			wake = math.Max(wake, s.cfg.PlatformWakeLatency)
		}
		begin = j.Arrival
	} else {
		// Queued: service begins the moment the core frees; no wake.
		begin = c.freeAt
	}
	if begin < s.lastBegin-1e-9 {
		return 0, fmt.Errorf("multicore: internal: busy segment begins out of order (%g after %g)",
			begin, s.lastBegin)
	}
	if begin > s.lastBegin {
		s.lastBegin = begin
	}

	// Bill the core's idle gap, then its wake + service at active power.
	s.coreIdleEnergy(c, c.billed, begin)
	c.energy += (wake + svc) * s.cfg.CPUActivePower
	c.busy += wake + svc
	end := begin + wake + svc
	c.freeAt = end
	c.billed = end

	// Platform horizon: bill any chip-wide idle gap, then extend the busy
	// union. Overlapping segments only extend the horizon.
	if begin > s.platformBusyUntil {
		s.platformIdleEnergy(s.billedP, begin)
		s.billedP = begin
		s.platformBusyUntil = begin
	}
	if end > s.platformBusyUntil {
		seg := end - math.Max(begin, s.billedP)
		if seg > 0 {
			s.platformEnergy += seg * s.cfg.PlatformActivePower
			s.residActive += seg
		}
		s.platformBusyUntil = end
		s.billedP = end
	}

	resp := end - j.Arrival
	s.responses.Add(resp)
	return resp, nil
}

// Finish closes the run at time at (≥ the last departure) and aggregates.
func (s *Simulator) Finish(at float64) (Result, error) {
	for i := range s.cores {
		c := &s.cores[i]
		if at < c.freeAt {
			at = c.freeAt
		}
	}
	for i := range s.cores {
		c := &s.cores[i]
		s.coreIdleEnergy(c, c.billed, at)
		c.billed = at
	}
	if at > s.billedP {
		s.platformIdleEnergy(s.billedP, at)
		s.billedP = at
	}
	res := Result{
		Jobs:              s.responses.Count(),
		MeanResponse:      s.responses.Mean(),
		ResponseP95:       s.responses.Percentile(95),
		Duration:          at - s.started,
		PlatformEnergy:    s.platformEnergy,
		CoreBusy:          make([]float64, len(s.cores)),
		PlatformResidency: map[string]float64{},
	}
	for i := range s.cores {
		res.CPUEnergy += s.cores[i].energy
		res.CoreBusy[i] = s.cores[i].busy
	}
	res.Energy = res.CPUEnergy + res.PlatformEnergy
	if res.Duration > 0 {
		res.AvgPower = res.Energy / res.Duration
	}
	if s.residActive != 0 {
		res.PlatformResidency["active"] = s.residActive
	}
	if s.residIdle != 0 {
		res.PlatformResidency["idle"] = s.residIdle
	}
	if s.residSleep != 0 {
		res.PlatformResidency["sleep"] = s.residSleep
	}
	return res, nil
}

// simPool recycles simulators across Simulate calls: Result carries no
// references into the simulator (CoreBusy and PlatformResidency are fresh),
// so the kernel's buffers can be reused immediately.
var simPool = sync.Pool{New: func() any { return new(Simulator) }}

// Simulate runs a whole sorted job stream from time 0 and finishes at the
// last departure, drawing a reusable simulator from an internal pool.
func Simulate(jobs []queue.Job, cfg Config) (Result, error) {
	sim := simPool.Get().(*Simulator)
	defer simPool.Put(sim)
	if err := sim.Reset(cfg, 0); err != nil {
		return Result{}, err
	}
	for i, j := range jobs {
		if _, err := sim.Process(j); err != nil {
			return Result{}, fmt.Errorf("job %d: %w", i, err)
		}
	}
	last := 0.0
	for i := range sim.cores {
		if t := sim.cores[i].freeAt; t > last {
			last = t
		}
	}
	return sim.Finish(last)
}

// ErlangC returns the M/M/k probability of queueing with offered load
// a = λ/µ on k servers (a < k). It is the textbook validation target for
// the simulator's zero-wake configuration.
func ErlangC(k int, a float64) (float64, error) {
	if k < 1 || a <= 0 || a >= float64(k) {
		return 0, fmt.Errorf("multicore: ErlangC(k=%d, a=%g) out of range", k, a)
	}
	// Compute a^n/n! iteratively to avoid overflow.
	term := 1.0
	sum := term // n = 0
	for n := 1; n < k; n++ {
		term *= a / float64(n)
		sum += term
	}
	top := term * a / float64(k) * float64(k) / (float64(k) - a)
	return top / (sum + top), nil
}

// MMkMeanResponse returns the M/M/k mean response 1/µ + C(k,a)/(kµ−λ).
func MMkMeanResponse(k int, lambda, mu float64) (float64, error) {
	c, err := ErlangC(k, lambda/mu)
	if err != nil {
		return 0, err
	}
	return 1/mu + c/(float64(k)*mu-lambda), nil
}
