package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sleepscale/internal/metrics"
	"sleepscale/internal/queue"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1e-12, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, tol)
	}
}

// TestTable5Numbers pins the published summary statistics.
func TestTable5Numbers(t *testing.T) {
	specs := Table5()
	if len(specs) != 3 {
		t.Fatalf("Table5 has %d entries, want 3", len(specs))
	}
	cases := []struct {
		spec Spec
		ia   float64
		iacv float64
		sv   float64
		svcv float64
	}{
		{DNS(), 1.1, 1.1, 194e-3, 1.0},
		{Mail(), 206e-3, 1.9, 92e-3, 3.6},
		{Google(), 319e-6, 1.2, 4.2e-3, 1.1},
	}
	for _, c := range cases {
		if c.spec.InterArrivalMean != c.ia || c.spec.InterArrivalCV != c.iacv ||
			c.spec.ServiceMean != c.sv || c.spec.ServiceCV != c.svcv {
			t.Errorf("%s numbers drifted from Table 5: %+v", c.spec.Name, c.spec)
		}
		if err := c.spec.Validate(); err != nil {
			t.Errorf("%s: %v", c.spec.Name, err)
		}
	}
}

func TestNativeUtilization(t *testing.T) {
	// DNS: 0.194/1.1 ≈ 0.176 — a lightly loaded service.
	approx(t, "DNS native ρ", DNS().NativeUtilization(), 0.194/1.1, 1e-12)
	// Google: 4.2ms/319µs > 1 — the paper's traces are per-cluster and get
	// rescaled to the studied utilization, so >1 native is expected here.
	if g := Google().NativeUtilization(); g <= 1 {
		t.Errorf("Google native utilization = %v, expected > 1 pre-rescale", g)
	}
}

func TestWithUtilization(t *testing.T) {
	s, err := DNS().WithUtilization(0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "rescaled ρ", s.NativeUtilization(), 0.5, 1e-12)
	approx(t, "service mean unchanged", s.ServiceMean, 194e-3, 1e-12)
	if s.InterArrivalCV != DNS().InterArrivalCV {
		t.Error("inter-arrival Cv must be preserved")
	}
	for _, bad := range []float64{0, 1, -0.3, 1.5} {
		if _, err := DNS().WithUtilization(bad); err == nil {
			t.Errorf("utilization %v accepted", bad)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", InterArrivalMean: 0, ServiceMean: 1},
		{Name: "x", InterArrivalMean: 1, ServiceMean: -1},
		{Name: "x", InterArrivalMean: 1, ServiceMean: 1, InterArrivalCV: -1},
		{Name: "x", InterArrivalMean: 1, ServiceMean: 1, FreqExponent: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestIdealizedStatsMoments(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "inter mean", st.Inter.Mean(), 1.1, 1e-12)
	approx(t, "size mean", st.Size.Mean(), 194e-3, 1e-12)
	if st.Inter.CV() != 1 || st.Size.CV() != 1 {
		t.Error("idealized stats must be exponential (Cv 1)")
	}
	approx(t, "utilization", st.Utilization(), DNS().NativeUtilization(), 1e-12)
}

func TestFittedStatsMoments(t *testing.T) {
	st, err := NewFittedStats(Mail())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "inter mean", st.Inter.Mean(), 206e-3, 1e-9)
	approx(t, "inter cv", st.Inter.CV(), 1.9, 1e-9)
	approx(t, "size mean", st.Size.Mean(), 92e-3, 1e-9)
	approx(t, "size cv", st.Size.CV(), 3.6, 1e-9)
}

func TestEmpiricalStatsMoments(t *testing.T) {
	st, err := NewEmpiricalStats(Google(), 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical moments come from finite heavy-tailed samples: allow slack.
	approx(t, "inter mean", st.Inter.Mean(), 319e-6, 0.05)
	approx(t, "size mean", st.Size.Mean(), 4.2e-3, 0.05)
	if st.Size.CV() < 0.8 {
		t.Errorf("empirical size cv = %v, want ≳ published 1.1", st.Size.CV())
	}
	// Determinism in seed.
	st2, err := NewEmpiricalStats(Google(), 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Inter.Mean() != st2.Inter.Mean() || st.Size.Mean() != st2.Size.Mean() {
		t.Error("empirical stats not deterministic in seed")
	}
	if _, err := NewEmpiricalStats(Google(), 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestAtUtilization(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	for _, rho := range []float64{0.1, 0.4, 0.9} {
		scaled, err := st.AtUtilization(rho)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "ρ", scaled.Utilization(), rho, 1e-12)
		approx(t, "size mean unchanged", scaled.Size.Mean(), 194e-3, 1e-12)
		if scaled.Inter.CV() != st.Inter.CV() {
			t.Error("scaling must preserve Cv")
		}
	}
	if _, err := st.AtUtilization(0); err == nil {
		t.Error("ρ=0 accepted")
	}
	if _, err := st.AtUtilization(1); err == nil {
		t.Error("ρ=1 accepted")
	}
}

func TestJobsStream(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	jobs := st.Jobs(20000, rng)
	if len(jobs) != 20000 {
		t.Fatalf("len = %d", len(jobs))
	}
	var ia, sz metrics.Stream
	prev := 0.0
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("arrivals must be strictly increasing for continuous dists")
		}
		ia.Add(j.Arrival - prev)
		sz.Add(j.Size)
		prev = j.Arrival
	}
	approx(t, "empirical inter mean", ia.Mean(), 1.1, 0.03)
	approx(t, "empirical size mean", sz.Mean(), 194e-3, 0.03)
}

// Property: rescaling to any valid utilization then measuring a generated
// stream reproduces that utilization (λ·E[S] within sampling noise).
func TestAtUtilizationRoundTripProperty(t *testing.T) {
	st, err := NewIdealizedStats(Google())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, rs uint8) bool {
		rho := 0.05 + float64(rs)/255*0.9
		scaled, err := st.AtUtilization(rho)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		jobs := scaled.Jobs(4000, rng)
		var work float64
		for _, j := range jobs {
			work += j.Size
		}
		span := jobs[len(jobs)-1].Arrival
		measured := work / span
		return math.Abs(measured-rho)/rho < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTraceJobsFollowsUtilization(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// 3 slots: busy, idle, busy — with a long slot so per-slot load is tight.
	slot := 600.0
	util := []float64{0.6, 0, 0.2}
	jobs := st.TraceJobs(util, slot, rng)
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	var work [3]float64
	for _, j := range jobs {
		m := int(j.Arrival / slot)
		if m < 0 || m >= 3 {
			t.Fatalf("arrival %v outside horizon", j.Arrival)
		}
		work[m] += j.Size
	}
	approx(t, "slot 0 load", work[0]/slot, 0.6, 0.12)
	if work[1] != 0 {
		t.Errorf("idle slot received %v seconds of work", work[1])
	}
	approx(t, "slot 2 load", work[2]/slot, 0.2, 0.2)
	// Arrivals sorted.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("trace jobs not sorted")
		}
	}
}

func TestTraceJobsEmptyTrace(t *testing.T) {
	st, _ := NewIdealizedStats(DNS())
	rng := rand.New(rand.NewSource(1))
	if jobs := st.TraceJobs(nil, 60, rng); len(jobs) != 0 {
		t.Errorf("nil trace produced %d jobs", len(jobs))
	}
	if jobs := st.TraceJobs([]float64{0, 0, 0}, 60, rng); len(jobs) != 0 {
		t.Errorf("all-zero trace produced %d jobs", len(jobs))
	}
}

func TestStatsConstructorsRejectBadSpec(t *testing.T) {
	bad := Spec{Name: "bad", InterArrivalMean: -1, ServiceMean: 1}
	if _, err := NewIdealizedStats(bad); err == nil {
		t.Error("idealized accepted bad spec")
	}
	if _, err := NewFittedStats(bad); err == nil {
		t.Error("fitted accepted bad spec")
	}
	if _, err := NewEmpiricalStats(bad, 100, 1); err == nil {
		t.Error("empirical accepted bad spec")
	}
}

// TestTraceGenMatchesTraceJobs pins the one-generator-two-drivers
// invariant: the incremental TraceGen and the materializing TraceJobs are
// the same core, so equal seeds give bit-identical streams, regardless of
// chunk size.
func TestTraceGenMatchesTraceJobs(t *testing.T) {
	st, err := NewFittedStats(Mail())
	if err != nil {
		t.Fatal(err)
	}
	util := []float64{0.3, 0, 0.8, 0.05, 0.6, 0, 0, 0.9}
	const slot, seed = 30.0, 17
	want := st.TraceJobs(util, slot, rand.New(rand.NewSource(seed)))
	if len(want) == 0 {
		t.Fatal("empty reference stream")
	}
	for _, chunk := range []int{1, 3, 1024} {
		g, err := st.NewTraceGen(util, slot, seed)
		if err != nil {
			t.Fatal(err)
		}
		var got []queue.Job
		buf := make([]queue.Job, chunk)
		for {
			n, ok := g.Next(buf)
			got = append(got, buf[:n]...)
			if !ok {
				break
			}
		}
		if g.Err() != nil {
			t.Fatal(g.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d jobs, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d job %d: %+v != %+v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestTraceGenReset pins Reset determinism: the same seed replays the same
// stream, a different seed a different one.
func TestTraceGenReset(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	util := []float64{0.4, 0.7, 0.2}
	g, err := st.NewTraceGen(util, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() []queue.Job {
		var out []queue.Job
		buf := make([]queue.Job, 8)
		for {
			n, ok := g.Next(buf)
			out = append(out, buf[:n]...)
			if !ok {
				return out
			}
		}
	}
	first := drain()
	g.Reset(5)
	second := drain()
	if len(first) != len(second) {
		t.Fatalf("replay length %d != %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay job %d: %+v != %+v", i, second[i], first[i])
		}
	}
	g.Reset(6)
	third := drain()
	same := len(third) == len(first)
	if same {
		for i := range third {
			if third[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same && len(first) > 0 {
		t.Error("different seeds produced identical streams")
	}
}

// errFeed fails after two good slots.
type errFeed struct{ n int }

func (f *errFeed) NextSlot() (float64, bool, error) {
	f.n++
	if f.n > 2 {
		return 0, false, fmt.Errorf("synthetic feed failure")
	}
	return 0.5, true, nil
}
func (f *errFeed) ResetSlots() error { f.n = 0; return nil }

func TestTraceGenFeedErrorSurfaces(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	g, err := st.NewTraceGenFeed(&errFeed{}, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]queue.Job, 16)
	for {
		if _, ok := g.Next(buf); !ok {
			break
		}
	}
	if g.Err() == nil {
		t.Fatal("feed error not surfaced")
	}
	// Reset clears the error and replays the good prefix.
	g.Reset(1)
	if g.Err() != nil {
		t.Fatalf("error survived reset: %v", g.Err())
	}
}

func TestNewTraceGenValidation(t *testing.T) {
	st, err := NewIdealizedStats(DNS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NewTraceGen(nil, 0, 1); err == nil {
		t.Error("zero slot length accepted")
	}
	if _, err := st.NewTraceGenFeed(nil, 60, 1); err == nil {
		t.Error("nil feed accepted")
	}
}
