// Package workload models the workloads of the SleepScale evaluation:
// the Table 5 summary statistics (DNS, Mail, Google), job-stream generation
// from idealized (Poisson/exponential), moment-fitted, or empirical
// statistics, and inter-arrival rescaling to a target utilization — the
// operation §5.2.1 performs when the runtime predictor adjusts logged
// workloads to the predicted utilization.
//
// BigHouse's stored CDFs are not public; NewEmpiricalStats synthesizes
// surrogate empirical distributions from heavy-tailed fits matching the
// published means and coefficients of variation (see DESIGN.md §2.1).
package workload

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
)

// Spec is a workload summary in the shape of Table 5.
type Spec struct {
	// Name identifies the workload ("DNS", "Mail", "Google").
	Name string
	// InterArrivalMean and InterArrivalCV describe the inter-arrival
	// process at the trace's native load, in seconds.
	InterArrivalMean float64
	InterArrivalCV   float64
	// ServiceMean and ServiceCV describe the service demand at f = 1,
	// in seconds.
	ServiceMean float64
	ServiceCV   float64
	// FreqExponent is β for this workload: 1 for CPU-bound (the paper's
	// default), 0 for memory-bound.
	FreqExponent float64
}

// DNS returns the DNS look-up workload of Table 5: inter-arrival mean 1.1 s
// (Cv 1.1), service mean 194 ms (Cv 1.0).
func DNS() Spec {
	return Spec{Name: "DNS", InterArrivalMean: 1.1, InterArrivalCV: 1.1,
		ServiceMean: 194e-3, ServiceCV: 1.0, FreqExponent: 1}
}

// Mail returns the email workload of Table 5: inter-arrival mean 206 ms
// (Cv 1.9), service mean 92 ms (Cv 3.6).
func Mail() Spec {
	return Spec{Name: "Mail", InterArrivalMean: 206e-3, InterArrivalCV: 1.9,
		ServiceMean: 92e-3, ServiceCV: 3.6, FreqExponent: 1}
}

// Google returns the web-search workload of Table 5: inter-arrival mean
// 319 µs (Cv 1.2), service mean 4.2 ms (Cv 1.1).
func Google() Spec {
	return Spec{Name: "Google", InterArrivalMean: 319e-6, InterArrivalCV: 1.2,
		ServiceMean: 4.2e-3, ServiceCV: 1.1, FreqExponent: 1}
}

// Table5 returns the three workloads the paper tabulates.
func Table5() []Spec { return []Spec{DNS(), Mail(), Google()} }

// MaxServiceRate reports µ, the f = 1 service rate in jobs/second.
func (s Spec) MaxServiceRate() float64 { return 1 / s.ServiceMean }

// NativeUtilization reports ρ = λ/µ at the spec's native inter-arrival mean.
func (s Spec) NativeUtilization() float64 { return s.ServiceMean / s.InterArrivalMean }

// WithUtilization returns a copy whose inter-arrival mean is rescaled so the
// utilization ρ = λ/µ equals rho, keeping the service statistics and the
// inter-arrival Cv — exactly how §6 scales generated traces to the
// time-varying utilization of Figure 7.
func (s Spec) WithUtilization(rho float64) (Spec, error) {
	if rho <= 0 || rho >= 1 {
		return Spec{}, fmt.Errorf("workload: utilization %g outside (0,1)", rho)
	}
	out := s
	out.InterArrivalMean = s.ServiceMean / rho
	return out, nil
}

// Validate checks the spec parameters.
func (s Spec) Validate() error {
	if s.InterArrivalMean <= 0 || s.ServiceMean <= 0 {
		return fmt.Errorf("workload %q: nonpositive means", s.Name)
	}
	if s.InterArrivalCV < 0 || s.ServiceCV < 0 {
		return fmt.Errorf("workload %q: negative cv", s.Name)
	}
	if s.FreqExponent < 0 || s.FreqExponent > 1 {
		return fmt.Errorf("workload %q: frequency exponent %g outside [0,1]",
			s.Name, s.FreqExponent)
	}
	return nil
}

// Stats pairs the two distributions that describe a workload: inter-arrival
// times and service demands (sizes at f = 1). This is the object the policy
// manager characterizes policies against.
type Stats struct {
	// Inter is the inter-arrival time distribution, seconds.
	Inter dist.Distribution
	// Size is the service-demand distribution at f = 1, seconds.
	Size dist.Distribution
}

// NewIdealizedStats returns the idealized model of §4: Poisson arrivals and
// exponential service with the spec's means (Cv forced to 1).
func NewIdealizedStats(s Spec) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	inter, err := dist.NewExponentialMean(s.InterArrivalMean)
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.NewExponentialMean(s.ServiceMean)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// NewFittedStats returns moment-fitted parametric distributions matching the
// spec's means and coefficients of variation.
func NewFittedStats(s Spec) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	inter, err := dist.FitMeanCV(s.InterArrivalMean, s.InterArrivalCV)
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.FitMeanCV(s.ServiceMean, s.ServiceCV)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// NewEmpiricalStats synthesizes the BigHouse surrogate: empirical CDFs built
// from n samples of heavy-tailed (lognormal) fits to the spec's summary
// statistics, replayed through inverse-CDF sampling the way BigHouse replays
// its stored traces. The result is deterministic in seed.
func NewEmpiricalStats(s Spec, n int, seed int64) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("workload: empirical stats need n ≥ 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	interBase, err := dist.FitHeavyTail(s.InterArrivalMean, s.InterArrivalCV)
	if err != nil {
		return Stats{}, err
	}
	sizeBase, err := dist.FitHeavyTail(s.ServiceMean, s.ServiceCV)
	if err != nil {
		return Stats{}, err
	}
	inter, err := dist.NewEmpirical(dist.SampleN(interBase, rng, n))
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.NewEmpirical(dist.SampleN(sizeBase, rng, n))
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// Utilization reports ρ = size mean / inter-arrival mean.
func (st Stats) Utilization() float64 { return st.Size.Mean() / st.Inter.Mean() }

// AtUtilization returns a copy with the inter-arrival distribution scaled so
// that the utilization equals rho; Cv is preserved (§5.2.1's rescaling).
func (st Stats) AtUtilization(rho float64) (Stats, error) {
	if rho <= 0 || rho >= 1 {
		return Stats{}, fmt.Errorf("workload: utilization %g outside (0,1)", rho)
	}
	factor := st.Size.Mean() / rho / st.Inter.Mean()
	return Stats{
		Inter: dist.Scaled{Base: st.Inter, Factor: factor},
		Size:  st.Size,
	}, nil
}

// Jobs draws n jobs: arrival times are cumulative inter-arrival samples
// starting from time 0, sizes are service-demand samples.
func (st Stats) Jobs(n int, rng *rand.Rand) []queue.Job {
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += st.Inter.Sample(rng)
		jobs[i] = queue.Job{Arrival: tnow, Size: st.Size.Sample(rng)}
	}
	return jobs
}

// TraceJobs generates the §6 evaluation input: a job stream whose
// minute-by-minute arrival intensity follows the given utilization trace.
// utilization[m] is the target ρ for minute m; minuteSeconds is the length
// of a trace slot (60 for real minutes, smaller for accelerated tests).
// Sizes come from the stats' service distribution; inter-arrival gaps are
// base samples rescaled so that within slot m the mean gap is
// size.Mean()/ρ(m)·(base gap / base mean). Arrivals are generated slot by
// slot so a zero-utilization slot produces no arrivals; the gap straddling a
// slot boundary is redrawn at the new slot's rate (a negligible boundary
// effect at minute-long slots).
//
// TraceJobs materializes the whole stream; it is a thin driver over the
// same incremental core as TraceGen, so the two can never drift: a TraceGen
// seeded like rng delivers bit-identical jobs in bounded chunks.
func (st Stats) TraceJobs(utilization []float64, minuteSeconds float64, rng *rand.Rand) []queue.Job {
	g := TraceGen{
		stats:       st,
		feed:        &sliceFeed{utilization: utilization},
		slotSeconds: minuteSeconds,
		rng:         rng,
		baseMean:    st.Inter.Mean(),
		sizeMean:    st.Size.Mean(),
	}
	var jobs []queue.Job
	var buf [128]queue.Job
	for {
		n, ok := g.Next(buf[:])
		jobs = append(jobs, buf[:n]...)
		if !ok {
			return jobs
		}
	}
}

// SlotFeed supplies successive utilization slots to a TraceGen. Slice-backed
// traces use the built-in feed; streaming feeds (a CSV row reader, a live
// telemetry tap) let a generator run without ever holding the whole trace.
type SlotFeed interface {
	// NextSlot returns the next slot's target utilization ρ; ok is false
	// once the trace is exhausted. Errors end the stream.
	NextSlot() (rho float64, ok bool, err error)
	// ResetSlots rewinds the feed to the first slot.
	ResetSlots() error
}

// SliceSlots returns a SlotFeed over a materialized utilization slice — the
// adapter that lets SlotFeed consumers (a live epoch driver, a feeder
// replaying a recorded trace) run from in-memory data.
func SliceSlots(utilization []float64) SlotFeed {
	return &sliceFeed{utilization: utilization}
}

// sliceFeed feeds slots from a materialized utilization slice.
type sliceFeed struct {
	utilization []float64
	pos         int
}

func (f *sliceFeed) NextSlot() (float64, bool, error) {
	if f.pos >= len(f.utilization) {
		return 0, false, nil
	}
	u := f.utilization[f.pos]
	f.pos++
	return u, true, nil
}

func (f *sliceFeed) ResetSlots() error {
	f.pos = 0
	return nil
}

// TraceGen is the incremental form of TraceJobs: it delivers the identical
// job stream in caller-sized chunks, holding O(1) state regardless of trace
// length. It implements the stream package's Source contract (Next, Reset,
// Err) and allocates nothing in steady state.
type TraceGen struct {
	stats       Stats
	feed        SlotFeed
	slotSeconds float64
	rng         *rand.Rand
	baseMean    float64
	sizeMean    float64

	slot    int // index of the next slot to pull from the feed
	inSlot  bool
	tnow    float64
	scale   float64
	slotEnd float64
	done    bool
	err     error
}

// NewTraceGen returns a generator over a materialized utilization slice,
// deterministic in seed: it yields exactly TraceJobs(utilization,
// slotSeconds, rand.New(rand.NewSource(seed))).
func (st Stats) NewTraceGen(utilization []float64, slotSeconds float64, seed int64) (*TraceGen, error) {
	return st.NewTraceGenFeed(&sliceFeed{utilization: utilization}, slotSeconds, seed)
}

// NewTraceGenFeed returns a generator pulling slots from feed — the fully
// streaming form, for traces too long to materialize.
func (st Stats) NewTraceGenFeed(feed SlotFeed, slotSeconds float64, seed int64) (*TraceGen, error) {
	if feed == nil {
		return nil, fmt.Errorf("workload: nil slot feed")
	}
	if slotSeconds <= 0 {
		return nil, fmt.Errorf("workload: slot length %g ≤ 0", slotSeconds)
	}
	return &TraceGen{
		stats:       st,
		feed:        feed,
		slotSeconds: slotSeconds,
		rng:         rand.New(rand.NewSource(seed)),
		baseMean:    st.Inter.Mean(),
		sizeMean:    st.Size.Mean(),
	}, nil
}

// Next fills buf with the next jobs in non-decreasing arrival order. It
// reports how many were written and whether more may follow; n can be less
// than len(buf) even mid-stream. After ok=false the generator stays
// exhausted until Reset; check Err for a feed failure.
func (g *TraceGen) Next(buf []queue.Job) (n int, ok bool) {
	for n < len(buf) {
		if g.done {
			return n, false
		}
		if !g.inSlot {
			rho, more, err := g.feed.NextSlot()
			if err != nil {
				g.err = fmt.Errorf("workload: slot %d: %w", g.slot, err)
				g.done = true
				return n, false
			}
			if !more {
				g.done = true
				return n, false
			}
			m := g.slot
			g.slot++
			if rho <= 0 {
				continue
			}
			slotStart := float64(m) * g.slotSeconds
			g.slotEnd = slotStart + g.slotSeconds
			g.scale = g.sizeMean / rho / g.baseMean
			g.tnow = slotStart
			g.inSlot = true
		}
		g.tnow += g.stats.Inter.Sample(g.rng) * g.scale
		if g.tnow >= g.slotEnd {
			g.inSlot = false
			continue
		}
		buf[n] = queue.Job{Arrival: g.tnow, Size: g.stats.Size.Sample(g.rng)}
		n++
	}
	return n, true
}

// Reset rewinds the generator to the first slot and reseeds its randomness,
// so equal seeds replay bit-identical streams. A generator built over a
// caller-owned rng (the TraceJobs path) gets a fresh deterministic state.
func (g *TraceGen) Reset(seed int64) {
	g.rng.Seed(seed)
	g.slot, g.inSlot, g.done, g.err = 0, false, false, nil
	if err := g.feed.ResetSlots(); err != nil {
		g.err = fmt.Errorf("workload: reset slot feed: %w", err)
		g.done = true
	}
}

// Err reports a slot-feed failure that ended the stream early; nil for a
// clean end.
func (g *TraceGen) Err() error { return g.err }
