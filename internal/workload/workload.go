// Package workload models the workloads of the SleepScale evaluation:
// the Table 5 summary statistics (DNS, Mail, Google), job-stream generation
// from idealized (Poisson/exponential), moment-fitted, or empirical
// statistics, and inter-arrival rescaling to a target utilization — the
// operation §5.2.1 performs when the runtime predictor adjusts logged
// workloads to the predicted utilization.
//
// BigHouse's stored CDFs are not public; NewEmpiricalStats synthesizes
// surrogate empirical distributions from heavy-tailed fits matching the
// published means and coefficients of variation (see DESIGN.md §2.1).
package workload

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
)

// Spec is a workload summary in the shape of Table 5.
type Spec struct {
	// Name identifies the workload ("DNS", "Mail", "Google").
	Name string
	// InterArrivalMean and InterArrivalCV describe the inter-arrival
	// process at the trace's native load, in seconds.
	InterArrivalMean float64
	InterArrivalCV   float64
	// ServiceMean and ServiceCV describe the service demand at f = 1,
	// in seconds.
	ServiceMean float64
	ServiceCV   float64
	// FreqExponent is β for this workload: 1 for CPU-bound (the paper's
	// default), 0 for memory-bound.
	FreqExponent float64
}

// DNS returns the DNS look-up workload of Table 5: inter-arrival mean 1.1 s
// (Cv 1.1), service mean 194 ms (Cv 1.0).
func DNS() Spec {
	return Spec{Name: "DNS", InterArrivalMean: 1.1, InterArrivalCV: 1.1,
		ServiceMean: 194e-3, ServiceCV: 1.0, FreqExponent: 1}
}

// Mail returns the email workload of Table 5: inter-arrival mean 206 ms
// (Cv 1.9), service mean 92 ms (Cv 3.6).
func Mail() Spec {
	return Spec{Name: "Mail", InterArrivalMean: 206e-3, InterArrivalCV: 1.9,
		ServiceMean: 92e-3, ServiceCV: 3.6, FreqExponent: 1}
}

// Google returns the web-search workload of Table 5: inter-arrival mean
// 319 µs (Cv 1.2), service mean 4.2 ms (Cv 1.1).
func Google() Spec {
	return Spec{Name: "Google", InterArrivalMean: 319e-6, InterArrivalCV: 1.2,
		ServiceMean: 4.2e-3, ServiceCV: 1.1, FreqExponent: 1}
}

// Table5 returns the three workloads the paper tabulates.
func Table5() []Spec { return []Spec{DNS(), Mail(), Google()} }

// MaxServiceRate reports µ, the f = 1 service rate in jobs/second.
func (s Spec) MaxServiceRate() float64 { return 1 / s.ServiceMean }

// NativeUtilization reports ρ = λ/µ at the spec's native inter-arrival mean.
func (s Spec) NativeUtilization() float64 { return s.ServiceMean / s.InterArrivalMean }

// WithUtilization returns a copy whose inter-arrival mean is rescaled so the
// utilization ρ = λ/µ equals rho, keeping the service statistics and the
// inter-arrival Cv — exactly how §6 scales generated traces to the
// time-varying utilization of Figure 7.
func (s Spec) WithUtilization(rho float64) (Spec, error) {
	if rho <= 0 || rho >= 1 {
		return Spec{}, fmt.Errorf("workload: utilization %g outside (0,1)", rho)
	}
	out := s
	out.InterArrivalMean = s.ServiceMean / rho
	return out, nil
}

// Validate checks the spec parameters.
func (s Spec) Validate() error {
	if s.InterArrivalMean <= 0 || s.ServiceMean <= 0 {
		return fmt.Errorf("workload %q: nonpositive means", s.Name)
	}
	if s.InterArrivalCV < 0 || s.ServiceCV < 0 {
		return fmt.Errorf("workload %q: negative cv", s.Name)
	}
	if s.FreqExponent < 0 || s.FreqExponent > 1 {
		return fmt.Errorf("workload %q: frequency exponent %g outside [0,1]",
			s.Name, s.FreqExponent)
	}
	return nil
}

// Stats pairs the two distributions that describe a workload: inter-arrival
// times and service demands (sizes at f = 1). This is the object the policy
// manager characterizes policies against.
type Stats struct {
	// Inter is the inter-arrival time distribution, seconds.
	Inter dist.Distribution
	// Size is the service-demand distribution at f = 1, seconds.
	Size dist.Distribution
}

// NewIdealizedStats returns the idealized model of §4: Poisson arrivals and
// exponential service with the spec's means (Cv forced to 1).
func NewIdealizedStats(s Spec) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	inter, err := dist.NewExponentialMean(s.InterArrivalMean)
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.NewExponentialMean(s.ServiceMean)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// NewFittedStats returns moment-fitted parametric distributions matching the
// spec's means and coefficients of variation.
func NewFittedStats(s Spec) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	inter, err := dist.FitMeanCV(s.InterArrivalMean, s.InterArrivalCV)
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.FitMeanCV(s.ServiceMean, s.ServiceCV)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// NewEmpiricalStats synthesizes the BigHouse surrogate: empirical CDFs built
// from n samples of heavy-tailed (lognormal) fits to the spec's summary
// statistics, replayed through inverse-CDF sampling the way BigHouse replays
// its stored traces. The result is deterministic in seed.
func NewEmpiricalStats(s Spec, n int, seed int64) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("workload: empirical stats need n ≥ 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	interBase, err := dist.FitHeavyTail(s.InterArrivalMean, s.InterArrivalCV)
	if err != nil {
		return Stats{}, err
	}
	sizeBase, err := dist.FitHeavyTail(s.ServiceMean, s.ServiceCV)
	if err != nil {
		return Stats{}, err
	}
	inter, err := dist.NewEmpirical(dist.SampleN(interBase, rng, n))
	if err != nil {
		return Stats{}, err
	}
	size, err := dist.NewEmpirical(dist.SampleN(sizeBase, rng, n))
	if err != nil {
		return Stats{}, err
	}
	return Stats{Inter: inter, Size: size}, nil
}

// Utilization reports ρ = size mean / inter-arrival mean.
func (st Stats) Utilization() float64 { return st.Size.Mean() / st.Inter.Mean() }

// AtUtilization returns a copy with the inter-arrival distribution scaled so
// that the utilization equals rho; Cv is preserved (§5.2.1's rescaling).
func (st Stats) AtUtilization(rho float64) (Stats, error) {
	if rho <= 0 || rho >= 1 {
		return Stats{}, fmt.Errorf("workload: utilization %g outside (0,1)", rho)
	}
	factor := st.Size.Mean() / rho / st.Inter.Mean()
	return Stats{
		Inter: dist.Scaled{Base: st.Inter, Factor: factor},
		Size:  st.Size,
	}, nil
}

// Jobs draws n jobs: arrival times are cumulative inter-arrival samples
// starting from time 0, sizes are service-demand samples.
func (st Stats) Jobs(n int, rng *rand.Rand) []queue.Job {
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += st.Inter.Sample(rng)
		jobs[i] = queue.Job{Arrival: tnow, Size: st.Size.Sample(rng)}
	}
	return jobs
}

// TraceJobs generates the §6 evaluation input: a job stream whose
// minute-by-minute arrival intensity follows the given utilization trace.
// utilization[m] is the target ρ for minute m; minuteSeconds is the length
// of a trace slot (60 for real minutes, smaller for accelerated tests).
// Sizes come from the stats' service distribution; inter-arrival gaps are
// base samples rescaled so that within slot m the mean gap is
// size.Mean()/ρ(m)·(base gap / base mean). Arrivals are generated slot by
// slot so a zero-utilization slot produces no arrivals; the gap straddling a
// slot boundary is redrawn at the new slot's rate (a negligible boundary
// effect at minute-long slots).
func (st Stats) TraceJobs(utilization []float64, minuteSeconds float64, rng *rand.Rand) []queue.Job {
	var jobs []queue.Job
	baseMean := st.Inter.Mean()
	sizeMean := st.Size.Mean()
	for m, rho := range utilization {
		if rho <= 0 {
			continue
		}
		slotStart := float64(m) * minuteSeconds
		slotEnd := slotStart + minuteSeconds
		scale := sizeMean / rho / baseMean
		tnow := slotStart
		for {
			tnow += st.Inter.Sample(rng) * scale
			if tnow >= slotEnd {
				break
			}
			jobs = append(jobs, queue.Job{Arrival: tnow, Size: st.Size.Sample(rng)})
		}
	}
	return jobs
}
