package workload

import (
	"math"
	"math/rand"
	"testing"
)

// statsConstructors builds Stats via every constructor for one spec.
func statsConstructors(t *testing.T, s Spec) map[string]Stats {
	t.Helper()
	ideal, err := NewIdealizedStats(s)
	if err != nil {
		t.Fatalf("idealized: %v", err)
	}
	fitted, err := NewFittedStats(s)
	if err != nil {
		t.Fatalf("fitted: %v", err)
	}
	emp, err := NewEmpiricalStats(s, 50_000, 11)
	if err != nil {
		t.Fatalf("empirical: %v", err)
	}
	return map[string]Stats{"idealized": ideal, "fitted": fitted, "empirical": emp}
}

// TestStatsUtilizationRoundTrip rescales every constructor's Stats to a set
// of target utilizations and checks ρ round-trips within 1e-9 with the
// inter-arrival Cv preserved — the §5.2.1 rescaling invariant.
func TestStatsUtilizationRoundTrip(t *testing.T) {
	for _, spec := range Table5() {
		for name, st := range statsConstructors(t, spec) {
			for _, rho := range []float64{0.05, 0.3, 0.5, 0.9} {
				scaled, err := st.AtUtilization(rho)
				if err != nil {
					t.Fatalf("%s/%s AtUtilization(%g): %v", spec.Name, name, rho, err)
				}
				if got := scaled.Utilization(); math.Abs(got-rho) > 1e-9 {
					t.Errorf("%s/%s: Utilization() = %g, want %g", spec.Name, name, got, rho)
				}
				if got, want := scaled.Inter.CV(), st.Inter.CV(); math.Abs(got-want) > 1e-12 {
					t.Errorf("%s/%s: inter Cv %g changed from %g", spec.Name, name, got, want)
				}
				if got, want := scaled.Size.Mean(), st.Size.Mean(); got != want {
					t.Errorf("%s/%s: size mean %g changed from %g", spec.Name, name, got, want)
				}
			}
		}
	}
}

// TestAtUtilizationDouble rescales twice and checks the second target wins
// exactly (rescaling composes, it does not accumulate).
func TestAtUtilizationDouble(t *testing.T) {
	st, err := NewFittedStats(Mail())
	if err != nil {
		t.Fatal(err)
	}
	once, err := st.AtUtilization(0.2)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.AtUtilization(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := twice.Utilization(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("double rescale: Utilization() = %g, want 0.7", got)
	}
}

// TestEmpiricalStatsDeterministicInSeed checks same (spec, n, seed) gives
// bitwise-identical distributions and job streams, and a different seed does
// not.
func TestEmpiricalStatsDeterministicInSeed(t *testing.T) {
	spec := DNS()
	a, err := NewEmpiricalStats(spec, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEmpiricalStats(spec, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inter.Mean() != b.Inter.Mean() || a.Size.Mean() != b.Size.Mean() ||
		a.Inter.CV() != b.Inter.CV() || a.Size.CV() != b.Size.CV() {
		t.Fatalf("same seed produced different moments: %+v vs %+v", a, b)
	}
	ja := a.Jobs(200, rand.New(rand.NewSource(1)))
	jb := b.Jobs(200, rand.New(rand.NewSource(1)))
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("job %d differs under identical seeds: %+v vs %+v", i, ja[i], jb[i])
		}
	}
	c, err := NewEmpiricalStats(spec, 5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inter.Mean() == c.Inter.Mean() && a.Size.Mean() == c.Size.Mean() {
		t.Errorf("different seeds produced identical moments")
	}
}

// TestEmpiricalStatsMatchesSpecMoments checks the surrogate lands near the
// Table 5 summary statistics it was fit to.
func TestEmpiricalStatsMatchesSpecMoments(t *testing.T) {
	for _, spec := range Table5() {
		st, err := NewEmpiricalStats(spec, 200_000, 7)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got := st.Inter.Mean(); math.Abs(got-spec.InterArrivalMean)/spec.InterArrivalMean > 0.05 {
			t.Errorf("%s: inter mean %g, want ≈ %g", spec.Name, got, spec.InterArrivalMean)
		}
		if got := st.Size.Mean(); math.Abs(got-spec.ServiceMean)/spec.ServiceMean > 0.05 {
			t.Errorf("%s: size mean %g, want ≈ %g", spec.Name, got, spec.ServiceMean)
		}
	}
}
