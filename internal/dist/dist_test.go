package dist

import (
	"math"
	"math/rand"
	"testing"
)

// seeds are the distinct RNG seeds every statistical test runs under.
var seeds = []int64{1, 17, 42}

// sampleN is the draw count for moment-convergence tests. Tolerances below
// are ~3× the standard error of the relevant estimator at this N.
const sampleN = 200_000

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func sampleMoments(d Distribution, rng *rand.Rand, n int) (mean, cv float64) {
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// momentCase is one (family, mean, cv) target for both the closed-form and
// the sampled-moment assertions.
type momentCase struct {
	name string
	make func() (Distribution, error)
	mean float64
	cv   float64
	// meanTol / cvTol are relative tolerances for the sampled moments;
	// closed-form Mean()/CV() must be exact to 1e-9.
	meanTol, cvTol float64
}

func momentCases() []momentCase {
	return []momentCase{
		{"exp/mean=1", func() (Distribution, error) { return NewExponentialMean(1) }, 1, 1, 0.01, 0.02},
		{"exp/dns-service", func() (Distribution, error) { return NewExponentialMean(194e-3) }, 194e-3, 1, 0.01, 0.02},
		{"hyperexp/cv=4", func() (Distribution, error) { return NewHyperExp2(1, 4) }, 1, 4, 0.03, 0.06},
		{"hyperexp/mail-arrivals", func() (Distribution, error) { return NewHyperExp2(206e-3, 1.9) }, 206e-3, 1.9, 0.02, 0.04},
		{"hyperexp/cv=1", func() (Distribution, error) { return NewHyperExp2(1, 1) }, 1, 1, 0.01, 0.02},
		{"erlang/cv=0.5", func() (Distribution, error) { return NewErlangMix(1, 0.5) }, 1, 0.5, 0.01, 0.02},
		{"erlang/cv=0.9", func() (Distribution, error) { return NewErlangMix(1, 0.9) }, 1, 0.9, 0.01, 0.02},
		{"erlang/google-sized", func() (Distribution, error) { return NewErlangMix(4.2e-3, 0.3) }, 4.2e-3, 0.3, 0.01, 0.02},
		// Pure-Erlang boundary: cv² = 1/4 exactly, mixture weight p = 0.
		{"erlang/cv=0.5-boundary", func() (Distribution, error) { return NewErlangMix(2, 0.5) }, 2, 0.5, 0.01, 0.02},
		{"lognormal/cv=1.1", func() (Distribution, error) { return NewLognormal(1, 1.1) }, 1, 1.1, 0.02, 0.08},
		{"lognormal/cv=1.5", func() (Distribution, error) { return NewLognormal(92e-3, 1.5) }, 92e-3, 1.5, 0.03, 0.10},
		{"fit/cv<1", func() (Distribution, error) { return FitMeanCV(1, 0.4) }, 1, 0.4, 0.01, 0.02},
		{"fit/cv=1", func() (Distribution, error) { return FitMeanCV(1, 1) }, 1, 1, 0.01, 0.02},
		{"fit/cv>1", func() (Distribution, error) { return FitMeanCV(1, 2.5) }, 1, 2.5, 0.02, 0.05},
		{"fit/cv=0", func() (Distribution, error) { return FitMeanCV(3, 0) }, 3, 0, 1e-12, 1e-12},
		{"heavytail/dns-arrivals", func() (Distribution, error) { return FitHeavyTail(1.1, 1.1) }, 1.1, 1.1, 0.02, 0.08},
		{"scaled/hyperexp", func() (Distribution, error) {
			h, err := NewHyperExp2(2, 1.9)
			return Scaled{Base: h, Factor: 0.25}, err
		}, 0.5, 1.9, 0.02, 0.04},
	}
}

// TestClosedFormMoments checks that Mean() and CV() reproduce the requested
// moments exactly — i.e. the moment-matching algebra of every fit is right.
func TestClosedFormMoments(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.make()
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			if e := relErr(d.Mean(), tc.mean); e > 1e-9 {
				t.Errorf("Mean() = %g, want %g (rel err %g)", d.Mean(), tc.mean, e)
			}
			if e := relErr(d.CV(), tc.cv); e > 1e-9 {
				t.Errorf("CV() = %g, want %g (rel err %g)", d.CV(), tc.cv, e)
			}
		})
	}
}

// TestSampleMomentsConverge draws sampleN values per seed and checks the
// sample mean and Cv land on the requested moments within tolerance, for
// every family and every fitting branch (Cv < 1, = 1, > 1, heavy tail).
func TestSampleMomentsConverge(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.make()
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			for _, seed := range seeds {
				mean, cv := sampleMoments(d, rand.New(rand.NewSource(seed)), sampleN)
				if e := relErr(mean, tc.mean); e > tc.meanTol {
					t.Errorf("seed %d: sample mean %g, want %g (rel err %g > %g)",
						seed, mean, tc.mean, e, tc.meanTol)
				}
				if tc.cv == 0 {
					if cv > tc.cvTol {
						t.Errorf("seed %d: sample cv %g, want 0", seed, cv)
					}
				} else if e := relErr(cv, tc.cv); e > tc.cvTol {
					t.Errorf("seed %d: sample cv %g, want %g (rel err %g > %g)",
						seed, cv, tc.cv, e, tc.cvTol)
				}
			}
		})
	}
}

// TestDeterminism asserts identical seeds yield identical sample streams and
// different seeds do not.
func TestDeterminism(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.make()
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			a := SampleN(d, rand.New(rand.NewSource(7)), 1000)
			b := SampleN(d, rand.New(rand.NewSource(7)), 1000)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sample %d differs under identical seed: %g vs %g", i, a[i], b[i])
				}
			}
			if tc.cv == 0 {
				return // constant: every stream is identical by design
			}
			c := SampleN(d, rand.New(rand.NewSource(8)), 1000)
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same == len(a) {
				t.Fatalf("streams identical under different seeds")
			}
		})
	}
}

func TestSamplesPositive(t *testing.T) {
	for _, tc := range momentCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.make()
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 10_000; i++ {
				v := d.Sample(rng)
				if !(v >= 0) || math.IsInf(v, 0) {
					t.Fatalf("sample %d = %g, want finite and ≥ 0", i, v)
				}
			}
		})
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		make func() (Distribution, error)
	}{
		{"exp/zero-mean", func() (Distribution, error) { return NewExponentialMean(0) }},
		{"exp/negative-mean", func() (Distribution, error) { return NewExponentialMean(-1) }},
		{"exp/nan-mean", func() (Distribution, error) { return NewExponentialMean(math.NaN()) }},
		{"hyperexp/zero-mean", func() (Distribution, error) { return NewHyperExp2(0, 4) }},
		{"hyperexp/cv-below-1", func() (Distribution, error) { return NewHyperExp2(1, 0.5) }},
		{"hyperexp/nan-cv", func() (Distribution, error) { return NewHyperExp2(1, math.NaN()) }},
		{"erlang/zero-mean", func() (Distribution, error) { return NewErlangMix(0, 0.5) }},
		{"erlang/cv-zero", func() (Distribution, error) { return NewErlangMix(1, 0) }},
		{"erlang/cv-at-1", func() (Distribution, error) { return NewErlangMix(1, 1) }},
		{"erlang/cv-above-1", func() (Distribution, error) { return NewErlangMix(1, 1.2) }},
		{"lognormal/zero-mean", func() (Distribution, error) { return NewLognormal(0, 1) }},
		{"lognormal/zero-cv", func() (Distribution, error) { return NewLognormal(1, 0) }},
		{"fit/negative-mean", func() (Distribution, error) { return FitMeanCV(-1, 1) }},
		{"fit/negative-cv", func() (Distribution, error) { return FitMeanCV(1, -0.5) }},
		{"fit/inf-mean-cv0", func() (Distribution, error) { return FitMeanCV(math.Inf(1), 0) }},
		{"fit/nan-mean-cv0", func() (Distribution, error) { return FitMeanCV(math.NaN(), 0) }},
		{"fit/nan-cv", func() (Distribution, error) { return FitMeanCV(1, math.NaN()) }},
		{"heavytail/negative-cv", func() (Distribution, error) { return FitHeavyTail(1, -1) }},
		{"empirical/empty", func() (Distribution, error) { return NewEmpirical(nil) }},
		{"empirical/one-sample", func() (Distribution, error) { return NewEmpirical([]float64{1}) }},
		{"empirical/nan-sample", func() (Distribution, error) { return NewEmpirical([]float64{1, math.NaN()}) }},
		{"empirical/negative-sample", func() (Distribution, error) { return NewEmpirical([]float64{1, -2}) }},
		{"empirical/all-zero", func() (Distribution, error) { return NewEmpirical([]float64{0, 0}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.make(); err == nil {
				t.Fatalf("want error, got nil")
			}
		})
	}
}

// TestFitMeanCVFamilies pins the family chosen per Cv branch.
func TestFitMeanCVFamilies(t *testing.T) {
	cases := []struct {
		cv   float64
		want string
	}{
		{0, "Constant"}, {0.3, "ErlangMix"}, {0.99, "ErlangMix"},
		{1, "Exponential"}, {1.01, "HyperExp2"}, {3.6, "HyperExp2"},
	}
	for _, tc := range cases {
		d, err := FitMeanCV(1, tc.cv)
		if err != nil {
			t.Fatalf("cv=%g: %v", tc.cv, err)
		}
		got := ""
		switch d.(type) {
		case Constant:
			got = "Constant"
		case ErlangMix:
			got = "ErlangMix"
		case Exponential:
			got = "Exponential"
		case HyperExp2:
			got = "HyperExp2"
		default:
			got = "unknown"
		}
		if got != tc.want {
			t.Errorf("cv=%g: fitted %s, want %s", tc.cv, got, tc.want)
		}
	}
}

// TestErlangMixPhaseCount pins Tijms' k selection: 1/k ≤ cv² ≤ 1/(k−1).
func TestErlangMixPhaseCount(t *testing.T) {
	cases := []struct {
		cv float64
		k  int
	}{
		{0.9, 2}, {0.75, 2}, {0.5, 4}, {0.45, 5}, {0.2, 25},
	}
	for _, tc := range cases {
		e, err := NewErlangMix(1, tc.cv)
		if err != nil {
			t.Fatalf("cv=%g: %v", tc.cv, err)
		}
		if e.Phases() != tc.k {
			t.Errorf("cv=%g: k=%d, want %d", tc.cv, e.Phases(), tc.k)
		}
	}
}

func TestQuantiles(t *testing.T) {
	t.Run("exponential", func(t *testing.T) {
		e, _ := NewExponentialMean(2)
		if got, want := e.Quantile(0.5), 2*math.Ln2; relErr(got, want) > 1e-12 {
			t.Errorf("median %g, want %g", got, want)
		}
		if e.Quantile(0) != 0 {
			t.Errorf("Quantile(0) = %g, want 0", e.Quantile(0))
		}
		if !math.IsInf(e.Quantile(1), 1) {
			t.Errorf("Quantile(1) = %g, want +Inf", e.Quantile(1))
		}
	})
	t.Run("lognormal-median", func(t *testing.T) {
		l, _ := NewLognormal(1, 1.5)
		// Median of lognormal is exp(µ) = mean / √(1+cv²).
		want := 1 / math.Sqrt(1+1.5*1.5)
		if got := l.Quantile(0.5); relErr(got, want) > 1e-9 {
			t.Errorf("median %g, want %g", got, want)
		}
	})
	t.Run("empirical-interpolation", func(t *testing.T) {
		emp, err := NewEmpirical([]float64{4, 2, 1, 3}) // sorts to 1,2,3,4
		if err != nil {
			t.Fatal(err)
		}
		checks := map[float64]float64{0: 1, 0.5: 2.5, 1: 4, 1.0 / 3: 2}
		for p, want := range checks {
			if got := emp.Quantile(p); relErr(got, want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", p, got, want)
			}
		}
	})
	t.Run("scaled-delegates", func(t *testing.T) {
		e, _ := NewExponentialMean(1)
		s := Scaled{Base: e, Factor: 3}
		if got, want := s.Quantile(0.5), 3*math.Ln2; relErr(got, want) > 1e-12 {
			t.Errorf("scaled median %g, want %g", got, want)
		}
	})
	t.Run("scaled-no-closed-form", func(t *testing.T) {
		h, _ := NewHyperExp2(1, 2)
		s := Scaled{Base: h, Factor: 3}
		if got := s.Quantile(0.5); !math.IsNaN(got) {
			t.Errorf("scaled quantile over non-Quantiler = %g, want NaN", got)
		}
	})
	t.Run("monotone", func(t *testing.T) {
		l, _ := NewLognormal(1, 2)
		prev := 0.0
		for p := 0.05; p < 1; p += 0.05 {
			q := l.Quantile(p)
			if q < prev {
				t.Fatalf("Quantile(%g) = %g < Quantile(%g) = %g", p, q, p-0.05, prev)
			}
			prev = q
		}
	})
}

// TestEmpiricalReplaysMoments checks that sampling the interpolated inverse
// CDF reproduces the stored samples' own mean and Cv.
func TestEmpiricalReplaysMoments(t *testing.T) {
	base, err := FitHeavyTail(1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	src := SampleN(base, rand.New(rand.NewSource(5)), 20_000)
	emp, err := NewEmpirical(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		mean, cv := sampleMoments(emp, rand.New(rand.NewSource(seed)), sampleN)
		if e := relErr(mean, emp.Mean()); e > 0.02 {
			t.Errorf("seed %d: replayed mean %g, stored %g (rel err %g)", seed, mean, emp.Mean(), e)
		}
		if e := relErr(cv, emp.CV()); e > 0.05 {
			t.Errorf("seed %d: replayed cv %g, stored %g (rel err %g)", seed, cv, emp.CV(), e)
		}
	}
}

// TestHeavyTailIsHeavier pins the reason FitHeavyTail exists: at equal
// (mean, Cv) the lognormal's extreme quantile exceeds the hyperexponential's.
func TestHeavyTailIsHeavier(t *testing.T) {
	ln, err := NewLognormal(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHyperExp2(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare p999 of the hyperexp by Monte Carlo against lognormal closed form.
	samples := SampleN(h, rand.New(rand.NewSource(9)), sampleN)
	hEmp, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if lnQ, hQ := ln.Quantile(0.9999), hEmp.Quantile(0.9999); lnQ <= hQ {
		t.Errorf("lognormal p9999 %g not heavier than hyperexp %g", lnQ, hQ)
	}
}

func TestSampleN(t *testing.T) {
	e, _ := NewExponentialMean(1)
	got := SampleN(e, rand.New(rand.NewSource(1)), 17)
	if len(got) != 17 {
		t.Fatalf("len = %d, want 17", len(got))
	}
	if SampleN(e, rand.New(rand.NewSource(1)), 0) == nil {
		// zero-length is fine; just must not panic
		t.Log("zero-length sample returned nil slice")
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	src := []float64{3, 1, 2}
	emp, err := NewEmpirical(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 1e9
	if got := emp.Quantile(1); got != 3 {
		t.Errorf("mutating input changed empirical max: %g", got)
	}
}
