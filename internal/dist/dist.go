package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution is a positive continuous random variable with known first two
// moments. Sample must be a pure function of the supplied rng so that draws
// are deterministic in the caller's seed.
type Distribution interface {
	// Sample draws one value using rng as the only randomness source.
	Sample(rng *rand.Rand) float64
	// Mean reports E[X].
	Mean() float64
	// CV reports the coefficient of variation, σ/E[X].
	CV() float64
}

// Quantiler is implemented by the families whose inverse CDF has a closed
// form (Exponential, Lognormal, Constant) or is exact by construction
// (Empirical, and Scaled over any of these).
type Quantiler interface {
	// Quantile reports the p-quantile, p ∈ [0, 1].
	Quantile(p float64) float64
}

// SampleN draws n samples from d into a fresh slice.
func SampleN(d Distribution, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// FitMeanCV returns a distribution matching the given mean and coefficient
// of variation exactly (moment matching), picking the family by Cv:
//
//	Cv = 0 → Constant
//	Cv < 1 → ErlangMix (Tijms' Erlang k−1/k mixture)
//	Cv = 1 → Exponential
//	Cv > 1 → HyperExp2 (balanced-means two-phase hyperexponential)
func FitMeanCV(mean, cv float64) (Distribution, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return nil, fmt.Errorf("dist: fit mean %g not positive and finite", mean)
	}
	if !(cv >= 0) {
		return nil, fmt.Errorf("dist: fit cv %g negative", cv)
	}
	switch {
	case cv == 0:
		return Constant{Value: mean}, nil
	case cv < 1:
		return NewErlangMix(mean, cv)
	case cv == 1:
		return NewExponentialMean(mean)
	default:
		return NewHyperExp2(mean, cv)
	}
}

// FitHeavyTail returns a lognormal distribution matching the given mean and
// coefficient of variation. Its tail is heavier than any FitMeanCV family at
// the same moments, which is what makes it the BigHouse surrogate used by
// workload.NewEmpiricalStats.
func FitHeavyTail(mean, cv float64) (Distribution, error) {
	return NewLognormal(mean, cv)
}

// Constant is the degenerate distribution at Value (Cv = 0).
type Constant struct {
	// Value is the single point of support; must be positive.
	Value float64
}

// Sample returns the constant value.
func (c Constant) Sample(*rand.Rand) float64 { return c.Value }

// Mean reports the constant value.
func (c Constant) Mean() float64 { return c.Value }

// CV reports 0.
func (c Constant) CV() float64 { return 0 }

// Quantile reports the constant value for every p.
func (c Constant) Quantile(float64) float64 { return c.Value }

// Exponential is the exponential distribution (Cv = 1), the idealized model
// of §4.
type Exponential struct {
	mean float64
}

// NewExponentialMean returns an exponential distribution with the given mean.
func NewExponentialMean(mean float64) (Exponential, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return Exponential{}, fmt.Errorf("dist: exponential mean %g not positive and finite", mean)
	}
	return Exponential{mean: mean}, nil
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *rand.Rand) float64 { return e.mean * rng.ExpFloat64() }

// Mean reports the mean.
func (e Exponential) Mean() float64 { return e.mean }

// CV reports 1.
func (e Exponential) CV() float64 { return 1 }

// Quantile reports −mean·ln(1−p).
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -e.mean * math.Log1p(-p)
}

// HyperExp2 is a two-phase hyperexponential with balanced means: with
// probability p an Exp(rate1) variate, else Exp(rate2). The balanced-means
// moment match sets p = (1 + √((c²−1)/(c²+1)))/2, rate1 = 2p/mean,
// rate2 = 2(1−p)/mean, which hits any Cv ≥ 1 exactly.
type HyperExp2 struct {
	p, rate1, rate2 float64
}

// NewHyperExp2 returns a balanced-means hyperexponential with the given mean
// and coefficient of variation cv ≥ 1.
func NewHyperExp2(mean, cv float64) (HyperExp2, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return HyperExp2{}, fmt.Errorf("dist: hyperexp mean %g not positive and finite", mean)
	}
	if cv < 1 || math.IsInf(cv, 1) || math.IsNaN(cv) {
		return HyperExp2{}, fmt.Errorf("dist: hyperexp cv %g below 1 (use FitMeanCV for low variability)", cv)
	}
	c2 := cv * cv
	d := math.Sqrt((c2 - 1) / (c2 + 1))
	p := (1 + d) / 2
	return HyperExp2{p: p, rate1: 2 * p / mean, rate2: 2 * (1 - p) / mean}, nil
}

// Sample draws from the mixture. Exactly two rng calls per draw (one branch
// pick, one exponential) so sample streams stay aligned across branches.
func (h HyperExp2) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	x := rng.ExpFloat64()
	if u < h.p {
		return x / h.rate1
	}
	return x / h.rate2
}

// Mean reports p/rate1 + (1−p)/rate2.
func (h HyperExp2) Mean() float64 { return h.p/h.rate1 + (1-h.p)/h.rate2 }

// CV reports the coefficient of variation from the mixture moments:
// E[X²] = 2p/rate1² + 2(1−p)/rate2².
func (h HyperExp2) CV() float64 {
	m := h.Mean()
	m2 := 2*h.p/(h.rate1*h.rate1) + 2*(1-h.p)/(h.rate2*h.rate2)
	return math.Sqrt(m2-m*m) / m
}

// ErlangMix is Tijms' mixed-Erlang fit for Cv < 1: with probability p an
// Erlang(k−1, rate) variate, else Erlang(k, rate). A pure Erlang-k only
// reaches Cv = 1/√k; the mixture matches any Cv ∈ (0, 1) exactly.
type ErlangMix struct {
	k    int // phase count of the larger branch, ≥ 2
	p    float64
	rate float64
}

// NewErlangMix returns the mixed Erlang(k−1)/Erlang(k) distribution with the
// given mean and coefficient of variation cv ∈ (0, 1). k is chosen so that
// 1/k ≤ cv² ≤ 1/(k−1); p and the common rate follow Tijms (1994):
//
//	p = (k·cv² − √(k(1+cv²) − k²cv²)) / (1 + cv²)
//	rate = (k − p) / mean
func NewErlangMix(mean, cv float64) (ErlangMix, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return ErlangMix{}, fmt.Errorf("dist: erlang mean %g not positive and finite", mean)
	}
	if !(cv > 0 && cv < 1) {
		return ErlangMix{}, fmt.Errorf("dist: erlang cv %g outside (0,1)", cv)
	}
	c2 := cv * cv
	k := int(math.Ceil(1 / c2))
	if k < 2 {
		k = 2
	}
	disc := float64(k)*(1+c2) - float64(k)*float64(k)*c2
	if disc < 0 {
		disc = 0 // 1/k ≤ cv² guarantees ≥ 0 up to rounding
	}
	p := (float64(k)*c2 - math.Sqrt(disc)) / (1 + c2)
	if p < 0 {
		p = 0
	}
	return ErlangMix{k: k, p: p, rate: (float64(k) - p) / mean}, nil
}

// Sample draws from the mixture. The branch pick plus k exponential phases
// are all driven by rng, so streams are deterministic in seed.
func (e ErlangMix) Sample(rng *rand.Rand) float64 {
	n := e.k
	if rng.Float64() < e.p {
		n--
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / e.rate
}

// Mean reports (k − p)/rate.
func (e ErlangMix) Mean() float64 { return (float64(e.k) - e.p) / e.rate }

// CV reports the coefficient of variation from the mixture moments:
// E[X²] = (p·(k−1)k + (1−p)·k(k+1)) / rate².
func (e ErlangMix) CV() float64 {
	k := float64(e.k)
	m := e.Mean()
	m2 := (e.p*(k-1)*k + (1-e.p)*k*(k+1)) / (e.rate * e.rate)
	return math.Sqrt(m2-m*m) / m
}

// Phases reports the larger branch's phase count k.
func (e ErlangMix) Phases() int { return e.k }

// Lognormal is the heavy-tailed family: exp(µ + σZ) for standard normal Z.
type Lognormal struct {
	mu, sigma float64
}

// NewLognormal returns a lognormal distribution with the given mean and
// coefficient of variation cv > 0: σ² = ln(1+cv²), µ = ln(mean) − σ²/2.
func NewLognormal(mean, cv float64) (Lognormal, error) {
	if !(mean > 0) || math.IsInf(mean, 1) {
		return Lognormal{}, fmt.Errorf("dist: lognormal mean %g not positive and finite", mean)
	}
	if !(cv > 0) || math.IsInf(cv, 1) {
		return Lognormal{}, fmt.Errorf("dist: lognormal cv %g not positive and finite", cv)
	}
	s2 := math.Log1p(cv * cv)
	return Lognormal{mu: math.Log(mean) - s2/2, sigma: math.Sqrt(s2)}, nil
}

// Sample draws exp(µ + σZ).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.mu + l.sigma*rng.NormFloat64())
}

// Mean reports exp(µ + σ²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.mu + l.sigma*l.sigma/2) }

// CV reports √(exp(σ²) − 1).
func (l Lognormal) CV() float64 { return math.Sqrt(math.Expm1(l.sigma * l.sigma)) }

// Quantile reports exp(µ + σ·√2·erf⁻¹(2p−1)).
func (l Lognormal) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(l.mu + l.sigma*math.Sqrt2*math.Erfinv(2*p-1))
}

// Empirical replays a fixed sample set through its linearly interpolated
// inverse CDF, the way BigHouse replays stored traces: a uniform u maps to
// position u·(n−1) along the sorted samples.
type Empirical struct {
	sorted []float64
	mean   float64
	cv     float64
}

// NewEmpirical builds an empirical distribution from at least two finite,
// non-negative samples. The input slice is copied and sorted.
func NewEmpirical(samples []float64) (Empirical, error) {
	if len(samples) < 2 {
		return Empirical{}, fmt.Errorf("dist: empirical needs ≥ 2 samples, got %d", len(samples))
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sum := 0.0
	for i, v := range sorted {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return Empirical{}, fmt.Errorf("dist: empirical sample %d is %g (need finite, ≥ 0)", i, v)
		}
		sum += v
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	mean := sum / n
	if mean <= 0 {
		return Empirical{}, fmt.Errorf("dist: empirical sample mean %g not positive", mean)
	}
	ss := 0.0
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	return Empirical{sorted: sorted, mean: mean, cv: math.Sqrt(ss/n) / mean}, nil
}

// Sample draws via the interpolated inverse CDF.
func (e Empirical) Sample(rng *rand.Rand) float64 { return e.Quantile(rng.Float64()) }

// Mean reports the sample mean.
func (e Empirical) Mean() float64 { return e.mean }

// CV reports the sample coefficient of variation (population variance).
func (e Empirical) CV() float64 { return e.cv }

// Quantile reports the p-quantile by linear interpolation between adjacent
// sorted samples.
func (e Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return e.sorted[n-1]
	}
	frac := pos - float64(i)
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Len reports the number of stored samples.
func (e Empirical) Len() int { return len(e.sorted) }

// Scaled multiplies every draw of Base by Factor, preserving Cv. It is how
// workload.Stats.AtUtilization rescales inter-arrival times to a target
// utilization (§5.2.1). Factor must be positive.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// Sample draws Factor·Base.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Factor * s.Base.Sample(rng) }

// Mean reports Factor·Base.Mean().
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// CV reports Base.CV(): Cv is invariant under positive scaling.
func (s Scaled) CV() float64 { return s.Base.CV() }

// Quantile reports Factor·Base.Quantile(p) when Base supports quantiles, and
// NaN otherwise.
func (s Scaled) Quantile(p float64) float64 {
	if q, ok := s.Base.(Quantiler); ok {
		return s.Factor * q.Quantile(p)
	}
	return math.NaN()
}
