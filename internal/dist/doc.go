// Package dist provides the probability distributions the SleepScale
// evaluation draws workloads from: inter-arrival times and service demands
// with controlled mean and coefficient of variation (Cv), including the
// heavy-tailed surrogates that stand in for BigHouse's stored empirical
// CDFs (paper §4–§5, Table 5).
//
// # Families
//
//   - Exponential — the idealized Poisson/exponential model of §4 (Cv = 1).
//   - HyperExp2 — a two-phase hyperexponential with balanced means, the
//     standard moment match for Cv > 1 (bursty arrivals, Figure 3's
//     Cv = 4 variant).
//   - ErlangMix — a mixture of Erlang(k−1) and Erlang(k) with a common
//     rate (Tijms' fit), the standard moment match for Cv < 1. A pure
//     Erlang-k only reaches Cv = 1/√k; the mixture hits any Cv ∈ (0, 1)
//     exactly.
//   - Lognormal — the heavy-tailed fit used by NewEmpiricalStats to
//     synthesize BigHouse-like traces from published (mean, Cv) pairs.
//   - Empirical — a sorted-sample inverse-CDF, replaying measured or
//     synthesized samples the way BigHouse replays its stored traces.
//   - Scaled — wraps any distribution with a multiplicative factor,
//     preserving Cv; used by workload.Stats.AtUtilization to rescale
//     inter-arrival times to a target utilization (§5.2.1).
//
// # Fitting rules
//
// FitMeanCV(mean, cv) matches the first two moments exactly and picks the
// family by Cv:
//
//	Cv < 1  → ErlangMix (Tijms' Erlang k−1/k mixture)
//	Cv = 1  → Exponential
//	Cv > 1  → HyperExp2 (balanced-means hyperexponential)
//
// FitHeavyTail(mean, cv) always returns a Lognormal with the same two
// moments; its tail is heavier than any of the parametric fits above,
// which is what makes it a better surrogate for scale-out service-time
// distributions (cf. Subramaniam & Feng 2015).
//
// All samplers take an explicit *rand.Rand so that every draw is
// deterministic in the caller's seed; nothing in this package reads global
// randomness.
package dist
