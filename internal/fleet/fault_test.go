package fleet

import (
	"reflect"
	"testing"

	"sleepscale/internal/farm"
	"sleepscale/internal/fault"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
)

func emptySchedule(t *testing.T) *fault.Schedule {
	t.Helper()
	s, err := fault.NewSchedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSchedule(t *testing.T, events []fault.Event) *fault.Schedule {
	t.Helper()
	s, err := fault.NewSchedule(events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkConservation asserts the exact fault ledger: every offered job is
// accounted once, and completed jobs are exactly the retained engine
// responses.
func checkConservation(t *testing.T, tag string, rep *Report) {
	t.Helper()
	if rep.Offered != rep.Completed+rep.Requeued+rep.Dropped {
		t.Fatalf("%s: conservation broken: offered %d != completed %d + requeued %d + dropped %d",
			tag, rep.Offered, rep.Completed, rep.Requeued, rep.Dropped)
	}
	if rep.Jobs != rep.Completed {
		t.Fatalf("%s: engine responses %d != completed %d", tag, rep.Jobs, rep.Completed)
	}
}

// checkEnergyTelescope asserts the per-epoch energy/time deltas sum exactly
// to the whole-run aggregates — crash refunds and down-time gaps included.
func checkEnergyTelescope(t *testing.T, tag string, rep *Report) {
	t.Helper()
	var energy, busy float64
	for i := range rep.Epochs {
		energy += rep.Epochs[i].Energy
		busy += rep.Epochs[i].BusyTime
	}
	var wantE, wantB float64
	for s := range rep.PerServer {
		wantE += rep.PerServer[s].Energy
		wantB += rep.PerServer[s].BusyTime
	}
	if energy != wantE {
		t.Fatalf("%s: epoch energy deltas sum to %g, per-server totals %g", tag, energy, wantE)
	}
	if busy != wantB {
		t.Fatalf("%s: epoch busy deltas sum to %g, per-server totals %g", tag, busy, wantB)
	}
}

// TestFaultFreeScheduleEquivalence pins the acceptance bar for the fault
// wiring: a coordinator given an empty fault schedule must be bit-identical
// — every epoch record, fleet epoch, per-server summary and aggregate — to
// one with no fault source at all, across dispatchers, seeds and fleet
// sizes, in shared and per-server+park+quorum modes alike.
func TestFaultFreeScheduleEquivalence(t *testing.T) {
	tr := flatTrace(12, 0.3)
	cases := []struct {
		k      int
		lambda float64
		disp   func() farm.Dispatcher
		name   string
	}{
		{1, 5, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
		{7, 35, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
		{7, 35, func() farm.Dispatcher { return &farm.RoundRobin{} }, "rr"},
		{7, 35, func() farm.Dispatcher { return &farm.LeastWorkLeft{} }, "lwl"},
		{1000, 2000, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
	}
	modes := []struct {
		name   string
		perSrv bool
		park   bool
		quorum int
	}{
		{"shared", false, false, 0},
		{"persrv-park-quorum", true, true, 1},
	}
	for _, tc := range cases {
		for _, mode := range modes {
			for _, seed := range []int64{1, 2} {
				jobs := fleetJobs(int(tc.lambda*10), tc.lambda, 5, seed+10)
				mk := func(faults fault.Source) Config {
					cfg := Config{
						Servers:      tc.k,
						FreqExponent: 1,
						Profile:      power.Xeon(),
						Trace:        tr,
						EpochSlots:   4,
						Strategy:     newRngStrategy(),
						Seed:         seed,
						Dispatcher:   tc.disp(),
						PerServer:    mode.perSrv,
						Park:         mode.park,
						Quorum:       mode.quorum,
						Faults:       faults,
						Retry:        fault.RetryPolicy{Budget: 2, Backoff: 0.5},
					}
					if mode.perSrv {
						cfg.NewPredictor = func() predict.Predictor { return predict.NewNaivePrevious() }
					} else {
						cfg.Predictor = predict.NewNaivePrevious()
					}
					return cfg
				}
				tag := tc.name + "/" + mode.name
				plain, err := New(mk(nil))
				if err != nil {
					t.Fatalf("k=%d %s seed=%d new: %v", tc.k, tag, seed, err)
				}
				want, err := plain.Run(stream.Slice(jobs))
				if err != nil {
					t.Fatalf("k=%d %s seed=%d plain run: %v", tc.k, tag, seed, err)
				}
				faulty, err := New(mk(emptySchedule(t)))
				if err != nil {
					t.Fatalf("k=%d %s seed=%d new faulty: %v", tc.k, tag, seed, err)
				}
				got, err := faulty.Run(stream.Slice(jobs))
				if err != nil {
					t.Fatalf("k=%d %s seed=%d faulty run: %v", tc.k, tag, seed, err)
				}
				if !reflect.DeepEqual(got.RunReport, want.RunReport) {
					t.Fatalf("k=%d %s seed=%d run reports diverge:\n got %+v\nwant %+v",
						tc.k, tag, seed, got.RunReport, want.RunReport)
				}
				if !reflect.DeepEqual(got.FleetEpochs, want.FleetEpochs) {
					t.Fatalf("k=%d %s seed=%d fleet epochs diverge", tc.k, tag, seed)
				}
				if !reflect.DeepEqual(got.PerServer, want.PerServer) {
					t.Fatalf("k=%d %s seed=%d per-server summaries diverge", tc.k, tag, seed)
				}
				if got.EnergyProportionality != want.EnergyProportionality ||
					got.JobsPerJoule != want.JobsPerJoule || got.PeakPower != want.PeakPower {
					t.Fatalf("k=%d %s seed=%d figure-of-merit diverges", tc.k, tag, seed)
				}
				if got.Crashes != 0 || got.Repairs != 0 || got.Dropped != 0 || got.Retries != 0 {
					t.Fatalf("k=%d %s seed=%d spurious fault counters %+v", tc.k, tag, seed, got)
				}
				if got.Offered != got.Completed || got.Requeued != 0 {
					t.Fatalf("k=%d %s seed=%d empty schedule lost jobs: offered %d completed %d requeued %d",
						tc.k, tag, seed, got.Offered, got.Completed, got.Requeued)
				}
			}
		}
	}
}

// chaosConfig is the scripted crash/repair scenario the conservation and
// determinism checks run: six servers, parking, a quorum, per-server
// decisions, crashes at and between epoch boundaries, repairs mid-epoch.
func chaosConfig(disp farm.Dispatcher, faults fault.Source, seed int64) Config {
	return Config{
		Servers:      6,
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        flatTrace(12, 0.5),
		EpochSlots:   2,
		Strategy:     newRngStrategy(),
		NewPredictor: func() predict.Predictor { return predict.NewNaivePrevious() },
		PerServer:    true,
		Seed:         seed,
		Dispatcher:   disp,
		Quorum:       1,
		Park:         true,
		Retry:        fault.RetryPolicy{Budget: 3, Backoff: 0.25},
		Faults:       faults,
	}
}

func chaosEvents() []fault.Event {
	return []fault.Event{
		{Time: 1.0, Server: 2, Kind: fault.Crash},
		{Time: 2.0, Server: 4, Kind: fault.Crash}, // exactly on an epoch boundary
		{Time: 3.5, Server: 2, Kind: fault.Repair},
		{Time: 5.0, Server: 0, Kind: fault.Crash},
		{Time: 8.0, Server: 4, Kind: fault.Repair}, // boundary again
		{Time: 9.5, Server: 0, Kind: fault.Repair},
	}
}

// TestFaultChaosConservation drives the scripted chaos week over every
// dispatcher: the conservation ledger must close exactly, the per-epoch
// energy deltas must telescope to the run totals through crash refunds, the
// fleet partition must stay consistent every epoch, and the whole run must
// be deterministic under a fixed seed.
func TestFaultChaosConservation(t *testing.T) {
	disps := []struct {
		name string
		mk   func() farm.Dispatcher
	}{
		{"jsq", func() farm.Dispatcher { return farm.JSQ{} }},
		{"rr", func() farm.Dispatcher { return &farm.RoundRobin{} }},
		{"lwl", func() farm.Dispatcher { return &farm.LeastWorkLeft{} }},
	}
	jobs := fleetJobs(360, 30, 10, 77)
	for _, d := range disps {
		run := func() *Report {
			coord, err := New(chaosConfig(d.mk(), mustSchedule(t, chaosEvents()), 5))
			if err != nil {
				t.Fatalf("%s: new: %v", d.name, err)
			}
			rep, err := coord.Run(stream.Slice(jobs))
			if err != nil {
				t.Fatalf("%s: run: %v", d.name, err)
			}
			return rep
		}
		rep := run()
		checkConservation(t, d.name, rep)
		checkEnergyTelescope(t, d.name, rep)
		if rep.Crashes != 3 || rep.Repairs != 3 {
			t.Fatalf("%s: applied %d crashes, %d repairs; want 3 and 3", d.name, rep.Crashes, rep.Repairs)
		}
		if !reflect.DeepEqual(rep.FaultEvents, chaosEvents()) {
			t.Fatalf("%s: fault log %v != schedule", d.name, rep.FaultEvents)
		}
		var lost, dropped int
		for _, fe := range rep.FleetEpochs {
			if fe.Active+fe.Parked+fe.Down != rep.Servers {
				t.Fatalf("%s: epoch %d partition %d active + %d parked + %d down != %d servers",
					d.name, fe.Index, fe.Active, fe.Parked, fe.Down, rep.Servers)
			}
			lost += fe.Lost
			dropped += fe.Dropped
		}
		if lost == 0 {
			t.Fatalf("%s: chaos run lost no jobs — scenario not exercising failover", d.name)
		}
		if dropped != rep.Dropped {
			t.Fatalf("%s: per-epoch drops %d != report %d", d.name, dropped, rep.Dropped)
		}
		if rep.Offered != len(jobsBefore(jobs, 12)) {
			t.Fatalf("%s: offered %d != %d jobs in trace span", d.name, rep.Offered, len(jobsBefore(jobs, 12)))
		}
		// Determinism: a fresh coordinator with the same seed replays the
		// same timeline to the same report, bit for bit.
		again := run()
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("%s: same seed, different report", d.name)
		}
	}
}

func jobsBefore(jobs []queue.Job, end float64) []queue.Job {
	n := 0
	for n < len(jobs) && jobs[n].Arrival < end {
		n++
	}
	return jobs[:n]
}

// TestFaultRenewalDeterminism runs a seeded MTBF/MTTR renewal process
// through the coordinator: the ledger must still close and two fresh
// coordinators must agree bit for bit.
func TestFaultRenewalDeterminism(t *testing.T) {
	jobs := fleetJobs(360, 30, 10, 99)
	run := func() *Report {
		ren, err := fault.NewRenewal(fault.RenewalConfig{
			Servers: 6, MTBF: 4, MTTR: 1.5, Horizon: 12,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := New(chaosConfig(farm.JSQ{}, ren, 5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := coord.Run(stream.Slice(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	checkConservation(t, "renewal", a)
	checkEnergyTelescope(t, "renewal", a)
	if a.Crashes == 0 {
		t.Fatal("renewal produced no crashes inside the horizon")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different renewal report")
	}
}

// TestFaultOutageExactEnergy pins exact energy accounting through a total
// outage: a single-server fleet crashes mid-run and is repaired three
// seconds later. The fully-down epoch must bill exactly zero energy and
// zero busy time, and with a generous retry budget every job must
// eventually complete.
func TestFaultOutageExactEnergy(t *testing.T) {
	jobs := fleetJobs(36, 3, 5, 21)
	events := []fault.Event{
		{Time: 3.0, Server: 0, Kind: fault.Crash},
		{Time: 6.0, Server: 0, Kind: fault.Repair},
	}
	mk := func(retry fault.RetryPolicy) Config {
		return Config{
			Servers:      1,
			FreqExponent: 1,
			Profile:      power.Xeon(),
			Trace:        flatTrace(12, 0.4),
			EpochSlots:   2,
			Strategy:     &staticStrategy{pol: policy.Policy{Frequency: 1, Plan: policy.NoSleep()}},
			Predictor:    predict.NewNaivePrevious(),
			Seed:         3,
			Dispatcher:   farm.JSQ{},
			Faults:       nil, // set below
			Retry:        retry,
		}
	}

	cfg := mk(fault.RetryPolicy{Budget: 8, Backoff: 0.5})
	cfg.Faults = mustSchedule(t, events)
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "outage", rep)
	checkEnergyTelescope(t, "outage", rep)
	if rep.Dropped != 0 || rep.Requeued != 0 {
		t.Fatalf("generous budget still dropped %d, requeued %d", rep.Dropped, rep.Requeued)
	}
	if rep.Offered != rep.Completed {
		t.Fatalf("offered %d != completed %d", rep.Offered, rep.Completed)
	}
	if rep.Retries == 0 {
		t.Fatal("outage caused no retries")
	}
	// Epoch [4,6) sits entirely inside the outage: the engine is down the
	// whole time and no job can be dispatched, so its deltas are exactly 0.
	deadEpoch := rep.Epochs[2]
	if deadEpoch.Energy != 0 || deadEpoch.BusyTime != 0 || deadEpoch.Jobs != 0 {
		t.Fatalf("outage epoch billed energy %g, busy %g, jobs %d; want exactly zero",
			deadEpoch.Energy, deadEpoch.BusyTime, deadEpoch.Jobs)
	}
	if rep.FleetEpochs[2].Down != 1 || rep.FleetEpochs[2].Active != 0 {
		t.Fatalf("outage epoch partition %+v", rep.FleetEpochs[2])
	}

	// Budget 0: every loss is a drop, nothing is requeued, and the ledger
	// still closes.
	cfg0 := mk(fault.RetryPolicy{})
	cfg0.Faults = mustSchedule(t, events)
	coord0, err := New(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := coord0.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "outage-budget0", rep0)
	if rep0.Retries != 0 || rep0.Requeued != 0 {
		t.Fatalf("zero budget retried %d, requeued %d", rep0.Retries, rep0.Requeued)
	}
	if rep0.Dropped == 0 {
		t.Fatal("zero budget dropped nothing through a three-second outage")
	}
}

// TestQuorumWiderThanHealthy is the satellite edge case: a quorum window
// larger than the surviving fleet. Three of four servers crash in the first
// epoch — the emergency unpark keeps the last healthy server routing, and
// from the next boundary the quorum degrades to capping everything healthy.
func TestQuorumWiderThanHealthy(t *testing.T) {
	jobs := fleetJobs(240, 20, 10, 13)
	events := []fault.Event{
		{Time: 1.0, Server: 0, Kind: fault.Crash},
		{Time: 1.2, Server: 1, Kind: fault.Crash},
		{Time: 1.4, Server: 2, Kind: fault.Crash},
	}
	coord, err := New(Config{
		Servers:      4,
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        flatTrace(12, 0.5),
		EpochSlots:   2,
		Strategy:     newRngStrategy(),
		Predictor:    predict.NewNaivePrevious(),
		Seed:         7,
		Dispatcher:   farm.JSQ{},
		Quorum:       3,
		Park:         true,
		Retry:        fault.RetryPolicy{Budget: 4, Backoff: 0.2},
		Faults:       mustSchedule(t, events),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "quorum-wide", rep)
	checkEnergyTelescope(t, "quorum-wide", rep)
	if rep.Crashes != 3 {
		t.Fatalf("applied %d crashes, want 3", rep.Crashes)
	}
	if rep.FleetEpochs[0].Unparked == 0 {
		t.Fatal("crash of the whole active set did not emergency-unpark the survivor")
	}
	for _, fe := range rep.FleetEpochs[1:] {
		if fe.Down != 3 || fe.Active != 1 || fe.Parked != 0 {
			t.Fatalf("epoch %d partition %+v; want 1 active / 0 parked / 3 down", fe.Index, fe)
		}
		// min(quorum, active) = 1: the lone survivor must stay shallow.
		if fe.Shallow != 1 {
			t.Fatalf("epoch %d: survivor not quorum-capped (%+v)", fe.Index, fe)
		}
	}
	if rep.PerServer[3].Jobs == 0 {
		t.Fatal("survivor served nothing")
	}
}

// TestParkCrossesCrashBoundary is the other satellite edge case: demand
// rises so the park target sweeps upward across a server that crashed —
// parked — in the same stretch. The unpark wave must skip the down server,
// and its mid-epoch repair must rejoin it cold without disturbing the
// partition accounting.
func TestParkCrossesCrashBoundary(t *testing.T) {
	tr := &trace.Trace{Name: "step", SlotSeconds: 1, Utilization: make([]float64, 12)}
	for i := range tr.Utilization {
		if i < 6 {
			tr.Utilization[i] = 0.05
		} else {
			tr.Utilization[i] = 0.9
		}
	}
	// Sparse arrivals while demand is low, dense after the step.
	var jobs []queue.Job
	for a := 0.5; a < 6; a += 1.0 {
		jobs = append(jobs, queue.Job{Arrival: a, Size: 0.2})
	}
	for a := 6.01; a < 12; a += 0.05 {
		jobs = append(jobs, queue.Job{Arrival: a, Size: 0.3})
	}
	events := []fault.Event{
		{Time: 5.0, Server: 1, Kind: fault.Crash},   // parked at crash time
		{Time: 11.5, Server: 1, Kind: fault.Repair}, // mid-final-epoch rejoin
	}
	run := func() *Report {
		coord, err := New(Config{
			Servers:       6,
			FreqExponent:  1,
			Profile:       power.Xeon(),
			Trace:         tr,
			EpochSlots:    2,
			Strategy:      &staticStrategy{pol: policy.Policy{Frequency: 1, Plan: policy.SingleState(power.Sleep)}},
			Predictor:     predict.NewNaivePrevious(),
			Seed:          11,
			Dispatcher:    farm.JSQ{},
			Park:          true,
			ParkTargetRho: 0.3,
			Retry:         fault.RetryPolicy{Budget: 4, Backoff: 0.2},
			Faults:        mustSchedule(t, events),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := coord.Run(stream.Slice(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	checkConservation(t, "park-crash", rep)
	checkEnergyTelescope(t, "park-crash", rep)
	for _, fe := range rep.FleetEpochs {
		if fe.Active+fe.Parked+fe.Down != rep.Servers {
			t.Fatalf("epoch %d partition %+v does not cover the fleet", fe.Index, fe)
		}
	}
	// The crash epoch ([4,6)) sees the parked server go down; the unpark
	// wave in the high-demand half must grow the active set around it.
	if fe := rep.FleetEpochs[2]; fe.Crashes != 1 || fe.Down != 1 {
		t.Fatalf("crash epoch partition %+v", fe)
	}
	grew := false
	for _, fe := range rep.FleetEpochs[3:] {
		if fe.Down == 1 && fe.Active > 2 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("park target never crossed the down server while it was out")
	}
	if fe := rep.FleetEpochs[5]; fe.Repairs != 1 {
		t.Fatalf("repair epoch %+v did not record the rejoin", fe)
	}
	if rep.PerServer[1].Wakes == 0 {
		t.Fatal("repaired server never paid a wake")
	}
	if again := run(); !reflect.DeepEqual(rep, again) {
		t.Fatal("same seed, different report")
	}
}

// TestFaultConfigValidation covers the fault-mode guards: a bad retry
// policy is rejected at construction, and an event addressing a server
// outside the fleet fails the run at its application instant.
func TestFaultConfigValidation(t *testing.T) {
	cfg := chaosConfig(farm.JSQ{}, nil, 1)
	cfg.Retry = fault.RetryPolicy{Budget: -1}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative retry budget accepted")
	}
	cfg = chaosConfig(farm.JSQ{}, mustSchedule(t, []fault.Event{
		{Time: 1, Server: 99, Kind: fault.Crash},
	}), 1)
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(stream.Slice(fleetJobs(60, 30, 10, 1))); err == nil {
		t.Fatal("out-of-fleet fault event accepted")
	}
}
