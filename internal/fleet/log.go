package fleet

import (
	"fmt"

	"sleepscale/internal/colstore"
)

// EpochLogSchema returns the column-file schema fleet per-epoch logs use:
// the core epoch-log quantities plus the fleet dimensions, one row per
// epoch. The "plan" column stores dictionary ids of the recorded policy's
// sleep-plan name.
func EpochLogSchema() colstore.Schema {
	return colstore.Schema{
		Kind: colstore.KindFleetEpochs,
		Cols: []string{
			"epoch", "predicted", "realized", "frequency", "plan",
			"jobs", "mean_delay", "p95_delay", "energy", "busy", "wake", "idle",
			"active", "parked", "shallow", "unparked",
		},
	}
}

// WriteEpochLog appends a coordinated run's per-epoch records — the core
// epoch records zipped with their fleet rollups — to the column file at
// path, creating it if absent. Append-only, like core.WriteEpochLog, so a
// long-lived coordinator keeps one growing log.
func WriteEpochLog(path string, rep *Report) error {
	if len(rep.Epochs) != len(rep.FleetEpochs) {
		return fmt.Errorf("fleet: %d epoch records but %d fleet records", len(rep.Epochs), len(rep.FleetEpochs))
	}
	w, err := colstore.Append(path, EpochLogSchema())
	if err != nil {
		return err
	}
	row := make([]float64, 16)
	for i := range rep.Epochs {
		rec, fe := &rep.Epochs[i], &rep.FleetEpochs[i]
		row[0] = float64(rec.Index)
		row[1] = rec.Predicted
		row[2] = rec.Realized
		row[3] = rec.Policy.Frequency
		row[4] = w.DictID(rec.Policy.Plan.Name)
		row[5] = float64(rec.Jobs)
		row[6] = rec.MeanDelay
		row[7] = rec.P95Delay
		row[8] = rec.Energy
		row[9] = rec.BusyTime
		row[10] = rec.WakeTime
		row[11] = rec.IdleTime
		row[12] = float64(fe.Active)
		row[13] = float64(fe.Parked)
		row[14] = float64(fe.Shallow)
		row[15] = float64(fe.Unparked)
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// ServerLogSchema returns the column-file schema fleet per-server rollups
// use: one row per server with its whole-run totals.
func ServerLogSchema() colstore.Schema {
	return colstore.Schema{
		Kind: colstore.KindFleetServers,
		Cols: []string{
			"server", "jobs", "mean_response", "p95_response",
			"avg_power", "energy", "busy", "wake", "idle", "wakes",
			"utilization",
		},
	}
}

// WriteServerLog appends a coordinated run's per-server summaries to the
// column file at path, creating it if absent.
func WriteServerLog(path string, rep *Report) error {
	w, err := colstore.Append(path, ServerLogSchema())
	if err != nil {
		return err
	}
	row := make([]float64, 11)
	for s := range rep.PerServer {
		sum := &rep.PerServer[s]
		row[0] = float64(s)
		row[1] = float64(sum.Jobs)
		row[2] = sum.MeanResponse
		row[3] = sum.ResponseP95
		row[4] = sum.AvgPower
		row[5] = sum.Energy
		row[6] = sum.BusyTime
		row[7] = sum.WakeTime
		row[8] = sum.IdleTime
		row[9] = float64(sum.Wakes)
		row[10] = sum.MeasuredUtilization
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
