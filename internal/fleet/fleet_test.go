package fleet

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"sleepscale/internal/colstore"
	"sleepscale/internal/core"
	"sleepscale/internal/farm"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
)

func flatTrace(slots int, util float64) *trace.Trace {
	t := &trace.Trace{Name: "flat", SlotSeconds: 1, Utilization: make([]float64, slots)}
	for i := range t.Utilization {
		t.Utilization[i] = util
	}
	return t
}

func fleetJobs(n int, lambda, mu float64, seed int64) []queue.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = queue.Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}
	return jobs
}

// staticStrategy pins one policy for every epoch.
type staticStrategy struct{ pol policy.Policy }

func (s *staticStrategy) Name() string { return "static-test" }
func (s *staticStrategy) Decide(core.DecideInput) (policy.Policy, error) {
	return s.pol, nil
}

// rngStrategy consumes the decision RNG every epoch, so any divergence in
// the decide stream between two drivers shows up as different policies —
// the sharpest possible probe of bit-for-bit decision equivalence.
type rngStrategy struct{ plans []policy.SleepPlan }

func newRngStrategy() *rngStrategy {
	return &rngStrategy{plans: []policy.SleepPlan{
		policy.NoSleep(),
		policy.SingleState(power.Sleep),
		policy.SingleState(power.DeeperSleep),
		policy.DelayedState(power.DeepSleep, 0.5),
	}}
}

func (s *rngStrategy) Name() string { return "rng-test" }
func (s *rngStrategy) Decide(in core.DecideInput) (policy.Policy, error) {
	pl := s.plans[in.Rng.Intn(len(s.plans))]
	f := 0.4 + 0.6*in.Rng.Float64()
	return policy.Policy{Frequency: f, Plan: pl}, nil
}

func runnerCfg(tr *trace.Trace, strat core.Strategy, seed int64) core.RunnerConfig {
	return core.RunnerConfig{
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        tr,
		EpochSlots:   4,
		Predictor:    predict.NewNaivePrevious(),
		Strategy:     strat,
		Seed:         seed,
	}
}

// TestCoordinatorSharedMatchesRunFarmSource pins the tentpole equivalence:
// a shared-mode coordinator with no quorum and no parking must reproduce
// core.RunFarmSource bit for bit — every epoch record, every aggregate —
// across seeds, fleet sizes and dispatchers, with an RNG-consuming strategy
// so the decision stream itself is compared.
func TestCoordinatorSharedMatchesRunFarmSource(t *testing.T) {
	tr := flatTrace(12, 0.3)
	cases := []struct {
		k      int
		lambda float64
		disp   func() farm.Dispatcher
		name   string
	}{
		{1, 5, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
		{7, 35, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
		{7, 35, func() farm.Dispatcher { return &farm.RoundRobin{} }, "rr"},
		{7, 35, func() farm.Dispatcher { return &farm.LeastWorkLeft{} }, "lwl"},
		{1000, 2000, func() farm.Dispatcher { return farm.JSQ{} }, "jsq"},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 2} {
			jobs := fleetJobs(int(tc.lambda*10), tc.lambda, 5, seed+10)
			strat := newRngStrategy()

			want, err := core.RunFarmSource(runnerCfg(tr, strat, seed), tc.k, tc.disp(), stream.Slice(jobs))
			if err != nil {
				t.Fatalf("k=%d %s seed=%d farm runner: %v", tc.k, tc.name, seed, err)
			}

			coord, err := New(Config{
				Servers:      tc.k,
				FreqExponent: 1,
				Profile:      power.Xeon(),
				Trace:        tr,
				EpochSlots:   4,
				Strategy:     strat,
				Predictor:    predict.NewNaivePrevious(),
				Seed:         seed,
				Dispatcher:   tc.disp(),
			})
			if err != nil {
				t.Fatalf("k=%d %s seed=%d new: %v", tc.k, tc.name, seed, err)
			}
			got, err := coord.Run(stream.Slice(jobs))
			if err != nil {
				t.Fatalf("k=%d %s seed=%d run: %v", tc.k, tc.name, seed, err)
			}

			if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
				got.P95Response != want.P95Response || got.AvgPower != want.AvgPower ||
				got.Energy != want.Energy || got.Duration != want.Duration ||
				got.MeanFrequency != want.MeanFrequency {
				t.Fatalf("k=%d %s seed=%d aggregates diverge:\n got %+v\nwant %+v",
					tc.k, tc.name, seed, got.RunReport, want.RunReport)
			}
			if !reflect.DeepEqual(got.PlanEpochs, want.PlanEpochs) {
				t.Fatalf("k=%d %s seed=%d plan epochs %v != %v", tc.k, tc.name, seed, got.PlanEpochs, want.PlanEpochs)
			}
			if len(got.Epochs) != len(want.Epochs) {
				t.Fatalf("k=%d %s seed=%d epoch count %d != %d", tc.k, tc.name, seed, len(got.Epochs), len(want.Epochs))
			}
			for i := range got.Epochs {
				if !reflect.DeepEqual(got.Epochs[i], want.Epochs[i]) {
					t.Fatalf("k=%d %s seed=%d epoch %d diverges:\n got %+v\nwant %+v",
						tc.k, tc.name, seed, i, got.Epochs[i], want.Epochs[i])
				}
			}
			for i, fe := range got.FleetEpochs {
				if fe.Active != tc.k || fe.Parked != 0 || fe.Unparked != 0 {
					t.Fatalf("k=%d %s seed=%d epoch %d: unexpected fleet dims %+v", tc.k, tc.name, seed, i, fe)
				}
			}
		}
	}
}

// TestCoordinatorRunIsRepeatable: a reused coordinator must reproduce its
// own run exactly when the predictor state is equivalent (static strategy,
// reset source) — the reuse contract the benchmark leans on.
func TestCoordinatorRunIsRepeatable(t *testing.T) {
	tr := flatTrace(12, 0.3)
	jobs := fleetJobs(300, 30, 5, 3)
	pol := policy.Policy{Frequency: 0.9, Plan: policy.SingleState(power.DeepSleep)}
	coord, err := New(Config{
		Servers: 5, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 4, Strategy: &staticStrategy{pol: pol},
		PerServer:    true,
		NewPredictor: func() predict.Predictor { return predict.NewNaivePrevious() },
		Seed:         1, Dispatcher: farm.JSQ{},
		Quorum: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	jobsA, meanA, energyA := first.Jobs, first.MeanResponse, first.Energy
	epochsA := append([]core.EpochRecord(nil), first.Epochs...)
	for run := 0; run < 2; run++ {
		rep, err := coord.Run(stream.Slice(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Jobs != jobsA || rep.MeanResponse != meanA || rep.Energy != energyA {
			t.Fatalf("run %d diverged: %d/%.17g/%.17g != %d/%.17g/%.17g",
				run, rep.Jobs, rep.MeanResponse, rep.Energy, jobsA, meanA, energyA)
		}
		for i := range rep.Epochs {
			if rep.Epochs[i].Jobs != epochsA[i].Jobs || rep.Epochs[i].Energy != epochsA[i].Energy {
				t.Fatalf("run %d epoch %d diverged", run, i)
			}
		}
	}
}

// TestCoordinatorPerServerStaticMatchesShared: with a static strategy,
// per-server decisions are identical to the shared decision, so everything
// except the Predicted column must match the homogeneous farm runner.
func TestCoordinatorPerServerStaticMatchesShared(t *testing.T) {
	tr := flatTrace(12, 0.4)
	jobs := fleetJobs(400, 35, 5, 7)
	pol := policy.Policy{Frequency: 0.8, Plan: policy.SingleState(power.DeepSleep)}
	const k = 7

	want, err := core.RunFarmSource(runnerCfg(tr, &staticStrategy{pol: pol}, 1), k, farm.JSQ{}, stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Servers: k, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 4, Strategy: &staticStrategy{pol: pol},
		PerServer:    true,
		NewPredictor: func() predict.Predictor { return predict.NewNaivePrevious() },
		Seed:         1, Dispatcher: farm.JSQ{},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
		got.P95Response != want.P95Response || got.AvgPower != want.AvgPower ||
		got.Energy != want.Energy {
		t.Fatalf("aggregates diverge:\n got %+v\nwant %+v", got.RunReport, want.RunReport)
	}
	for i := range got.Epochs {
		g, w := got.Epochs[i], want.Epochs[i]
		if g.Jobs != w.Jobs || g.MeanDelay != w.MeanDelay || g.P95Delay != w.P95Delay ||
			g.Realized != w.Realized || g.Energy != w.Energy || g.BusyTime != w.BusyTime {
			t.Fatalf("epoch %d diverges:\n got %+v\nwant %+v", i, g, w)
		}
	}
	// Per-server mode counts one plan epoch per active server.
	if got.PlanEpochs[pol.Plan.Name] != k*len(got.Epochs) {
		t.Fatalf("plan epochs %v, want %d", got.PlanEpochs, k*len(got.Epochs))
	}
}

// TestCoordinatorHeterogeneousPerServer: a strategy keying off per-server
// predictions must produce genuinely different per-server policies on a
// skewed fleet, and the run must still complete with consistent accounting.
func TestCoordinatorHeterogeneousPerServer(t *testing.T) {
	tr := flatTrace(16, 0.5)
	jobs := fleetJobs(600, 40, 5, 11)
	strat := newRngStrategy()
	const k = 4
	distinct := make(map[string]bool)
	coord, err := New(Config{
		Servers: k, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 4, Strategy: strat,
		PerServer:    true,
		NewPredictor: func() predict.Predictor { return predict.NewNaivePrevious() },
		Seed:         3, Dispatcher: &farm.LeastWorkLeft{},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.cfg.Observer = func(Epoch) {
		for s := 0; s < k; s++ {
			pol, parked := coord.Installed(s)
			if !parked {
				distinct[pol.String()] = true
			}
		}
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	if len(distinct) < 2 {
		t.Fatalf("per-server decisions never diverged: %v", distinct)
	}
	total := 0
	for s := range rep.PerServer {
		total += rep.PerServer[s].Jobs
	}
	if total != rep.Jobs {
		t.Fatalf("per-server jobs sum %d != %d", total, rep.Jobs)
	}
}

// TestQuorumInvariantAndRotation: with Quorum=2 over 6 servers and a
// deep-sleeping strategy, every epoch must keep exactly min(Q, active)
// servers shallow, the duty window must rotate so every server gets capped,
// and every server must also get its deep-sleep epochs.
func TestQuorumInvariantAndRotation(t *testing.T) {
	const k, q = 6, 2
	tr := flatTrace(24, 0.2)
	jobs := fleetJobs(300, 12, 5, 5)
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeeperSleep)}
	var coord *Coordinator
	capped := make([]int, k)
	deep := make([]int, k)
	cfg := Config{
		Servers: k, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 2, Strategy: &staticStrategy{pol: pol},
		Predictor: predict.NewNaivePrevious(),
		Seed:      1, Dispatcher: farm.JSQ{},
		Quorum: q,
		Observer: func(fe Epoch) {
			if fe.Shallow < q {
				t.Fatalf("epoch %d: shallow %d < quorum %d", fe.Index, fe.Shallow, q)
			}
			for s := 0; s < k; s++ {
				p, parked := coord.Installed(s)
				if parked {
					continue
				}
				if p.Plan.DeepestState().CPU <= power.C1 {
					capped[s]++
				} else {
					deep[s]++
				}
			}
		},
	}
	var err error
	coord, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FleetEpochs) != 12 {
		t.Fatalf("epochs %d != 12", len(rep.FleetEpochs))
	}
	for _, fe := range rep.FleetEpochs {
		if fe.Shallow != q {
			t.Fatalf("epoch %d: shallow %d != %d with a deep strategy", fe.Index, fe.Shallow, q)
		}
	}
	for s := 0; s < k; s++ {
		if capped[s] == 0 {
			t.Fatalf("server %d never entered the duty window: %v", s, capped)
		}
		if deep[s] == 0 {
			t.Fatalf("server %d never slept deep: %v", s, deep)
		}
	}
}

// TestParkRoutesOnlyActive: under constant low demand the fleet shrinks to
// the floor and parked servers must never receive a job.
func TestParkRoutesOnlyActive(t *testing.T) {
	const k = 4
	tr := flatTrace(12, 0.05)
	jobs := fleetJobs(100, 2, 5, 9)
	pol := policy.Policy{Frequency: 1, Plan: policy.NoSleep()}
	coord, err := New(Config{
		Servers: k, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 2, Strategy: &staticStrategy{pol: pol},
		Predictor: predict.NewNaivePrevious(),
		Seed:      1, Dispatcher: farm.JSQ{},
		Park: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range rep.FleetEpochs {
		if fe.Active != 1 || fe.Parked != k-1 {
			t.Fatalf("epoch %d: active/parked %d/%d, want 1/%d", fe.Index, fe.Active, fe.Parked, k-1)
		}
	}
	if rep.PerServer[0].Jobs != rep.Jobs || rep.Jobs == 0 {
		t.Fatalf("server 0 served %d of %d", rep.PerServer[0].Jobs, rep.Jobs)
	}
	for s := 1; s < k; s++ {
		if rep.PerServer[s].Jobs != 0 {
			t.Fatalf("parked server %d served %d jobs", s, rep.PerServer[s].Jobs)
		}
	}
	if rep.EnergyProportionality <= 0 || rep.EnergyProportionality > 1 {
		t.Fatalf("energy proportionality %g outside (0, 1]", rep.EnergyProportionality)
	}
	if rep.PeakPower != float64(k)*power.Xeon().ActivePower(1) {
		t.Fatalf("peak power %g", rep.PeakPower)
	}
}

// TestParkRespectsQuorumFloor: the active set never shrinks below the
// quorum, even under negligible demand.
func TestParkRespectsQuorumFloor(t *testing.T) {
	coord, err := New(Config{
		Servers: 4, FreqExponent: 1, Profile: power.Xeon(), Trace: flatTrace(8, 0.05),
		EpochSlots: 2, Strategy: &staticStrategy{pol: policy.Policy{Frequency: 1, Plan: policy.NoSleep()}},
		Predictor: predict.NewNaivePrevious(),
		Seed:      1, Dispatcher: farm.JSQ{},
		Park: true, Quorum: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(fleetJobs(50, 2, 5, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range rep.FleetEpochs {
		if fe.Active < 3 {
			t.Fatalf("epoch %d: active %d below quorum floor 3", fe.Index, fe.Active)
		}
	}
}

// TestUnparkPaysExactWake: a server unparked after sleeping in the deepest
// state must record exactly one wake of exactly the deep-sleep latency.
func TestUnparkPaysExactWake(t *testing.T) {
	const k = 2
	tr := flatTrace(12, 0.05)
	for i := 4; i < 12; i++ {
		tr.Utilization[i] = 0.9
	}
	jobs := fleetJobs(200, 8, 4, 13)
	pol := policy.Policy{Frequency: 1, Plan: policy.NoSleep()}
	coord, err := New(Config{
		Servers: k, FreqExponent: 1, Profile: power.Xeon(), Trace: tr,
		EpochSlots: 2, Strategy: &staticStrategy{pol: pol},
		Predictor: predict.NewNaivePrevious(),
		Seed:      1, Dispatcher: farm.JSQ{},
		Park: true, ParkTargetRho: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	unparked := 0
	for _, fe := range rep.FleetEpochs {
		unparked += fe.Unparked
	}
	if unparked != 1 {
		t.Fatalf("unpark events %d != 1 (%+v)", unparked, rep.FleetEpochs)
	}
	wantWake := power.Xeon().Wake(power.DeeperSleep)
	if rep.PerServer[1].Wakes != 1 || rep.PerServer[1].WakeTime != wantWake {
		t.Fatalf("server 1 wakes=%d wakeTime=%.17g, want 1 wake of exactly %.17g",
			rep.PerServer[1].Wakes, rep.PerServer[1].WakeTime, wantWake)
	}
	// The NoSleep policy never wakes, so server 0 must record none.
	if rep.PerServer[0].Wakes != 0 {
		t.Fatalf("server 0 wakes=%d", rep.PerServer[0].Wakes)
	}
}

// TestNewValidation covers the configuration error surface, the quorum >
// fleet rejection included.
func TestNewValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Servers: 4, FreqExponent: 1, Profile: power.Xeon(), Trace: flatTrace(8, 0.3),
			EpochSlots: 2, Strategy: &staticStrategy{pol: policy.Policy{Frequency: 1, Plan: policy.NoSleep()}},
			Predictor: predict.NewNaivePrevious(), Dispatcher: farm.JSQ{},
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero servers", func(c *Config) { c.Servers = 0 }},
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"no strategy", func(c *Config) { c.Strategy = nil }},
		{"no profile", func(c *Config) { c.Profile = nil }},
		{"no dispatcher", func(c *Config) { c.Dispatcher = nil }},
		{"no predictor", func(c *Config) { c.Predictor = nil }},
		{"per-server without factory", func(c *Config) { c.PerServer = true }},
		{"quorum exceeds fleet", func(c *Config) { c.Quorum = 5 }},
		{"negative quorum", func(c *Config) { c.Quorum = -1 }},
		{"park target above 1", func(c *Config) { c.ParkTargetRho = 1.5 }},
		{"min active exceeds fleet", func(c *Config) { c.MinActive = 9 }},
		{"zero epoch slots", func(c *Config) { c.EpochSlots = 0 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestWriteLogsRoundtrip: the fleet epoch and server logs must come back
// with the right kinds, shapes and values through the column store.
func TestWriteLogsRoundtrip(t *testing.T) {
	coord, err := New(Config{
		Servers: 3, FreqExponent: 1, Profile: power.Xeon(), Trace: flatTrace(8, 0.3),
		EpochSlots: 2, Strategy: &staticStrategy{pol: policy.Policy{Frequency: 0.7, Plan: policy.SingleState(power.Sleep)}},
		Predictor: predict.NewNaivePrevious(),
		Seed:      1, Dispatcher: farm.JSQ{},
		Quorum: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(stream.Slice(fleetJobs(120, 10, 5, 2)))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	epochPath := filepath.Join(dir, "epochs.col")
	if err := WriteEpochLog(epochPath, rep); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(epochPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Schema().Kind != colstore.KindFleetEpochs {
		t.Fatalf("kind %d", r.Schema().Kind)
	}
	if r.Rows() != len(rep.Epochs) {
		t.Fatalf("rows %d != %d", r.Rows(), len(rep.Epochs))
	}
	ci := r.Schema().ColIndex("active")
	if ci < 0 {
		t.Fatal("no active column")
	}
	col, err := r.Col(0, ci, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, fe := range rep.FleetEpochs {
		if col[i] != float64(fe.Active) {
			t.Fatalf("epoch %d active %g != %d", i, col[i], fe.Active)
		}
	}

	srvPath := filepath.Join(dir, "servers.col")
	if err := WriteServerLog(srvPath, rep); err != nil {
		t.Fatal(err)
	}
	rs, err := colstore.Open(srvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Schema().Kind != colstore.KindFleetServers {
		t.Fatalf("kind %d", rs.Schema().Kind)
	}
	if rs.Rows() != 3 {
		t.Fatalf("rows %d != 3", rs.Rows())
	}
	ji := rs.Schema().ColIndex("jobs")
	col, err = rs.Col(0, ji, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range col {
		total += v
	}
	if int(total) != rep.Jobs {
		t.Fatalf("logged jobs %g != %d", total, rep.Jobs)
	}
}
