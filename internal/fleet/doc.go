// Package fleet is the coordinator layer above the §6 farm runner: it owns
// per-server (queue.Config, policy) state and makes epoch-boundary decisions
// for a whole fleet, where core.RunFarmSource switches one fleet-wide policy.
// Three capabilities extend the per-server policy table into cluster
// management:
//
//   - Per-server policies: with Config.PerServer, every server gets its own
//     utilization predictor (fed the demand actually routed to it) and its
//     own Strategy decision each epoch, so a skewed fleet runs a different
//     (frequency, sleep-plan) pair per server. Routing prices each server
//     from its own live configuration (farm.ConfigRouter / the heterogeneous
//     sliced dispatch path).
//
//   - Coordinated, staggered sleep: Config.Quorum = Q caps a rotating duty
//     window of Q active servers to sleep states no deeper than C1, so deep
//     sleep rotates through the fleet while a bounded-wake quorum always
//     stays shallow. Wake-ups are priced exactly by the engines' existing
//     NextFreeAtAnchored machinery — the cap only truncates the installed
//     sleep plan.
//
//   - Horizontal scaling: Config.Park turns whole-server park/unpark into a
//     policy dimension. The coordinator sizes the active prefix to the
//     predicted fleet demand (ceil(W/ParkTargetRho), floored at
//     max(MinActive, Quorum)), parks surplus servers — drain under a
//     full-speed deepest-sleep configuration, then removal from routing via
//     a prefix Subfarm view — and unparks by queue.Engine.WakeAt, so an
//     unparked server's first job pays the full deep-sleep wake latency.
//
// Invariants, enforced every epoch:
//
//   - Quorum: at least min(Q, active) active servers' installed plans are no
//     deeper than C1 (their DeepestState().CPU ≤ power.C1). The duty window
//     rotates by Q per epoch over the active prefix, so deep sleep visits
//     every server.
//
//   - Park: the active set is always the prefix [0, active); routing never
//     selects a parked server (the serving view contains only the prefix),
//     and active ≥ max(MinActive, Quorum, 1). A parked server keeps draining
//     already-accepted work at full speed, then idles into the deepest
//     state; unparking wakes it at the epoch boundary, charging the wake
//     latency and energy of the occupied phase before any new job starts.
//
// The epoch cycle is the exact decide→serve→observe loop of the batch
// runners (the serve step runs on the sharded worker pool via
// farm.ServeSourceSliced between policy switches), and with shared-mode
// homogeneous decisions — no quorum, no parking — a Coordinator run is
// bit-for-bit identical to core.RunFarmSource: same decision RNG stream,
// same per-epoch records, same aggregates. The equivalence suite pins this
// across seeds and fleet sizes.
//
// Beyond the farm report's quantities, Report carries fleet rollups: peak
// power, jobs per joule, and an energy-proportionality score comparing each
// epoch's energy to the ideal proportional fleet's (busy·P_active(1)).
package fleet
