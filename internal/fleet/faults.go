package fleet

import (
	"fmt"
	"math"

	"sleepscale/internal/farm"
	"sleepscale/internal/fault"
	"sleepscale/internal/queue"
)

// This file holds the fault-mode half of the coordinator: the segment walker
// that interleaves fault events with job arrivals inside an epoch, the
// crash/repair application, the in-flight ledger behind the conservation
// invariant, and the bounded retry queue. None of it runs when Config.Faults
// is nil.

// pendJob tracks one job in flight on a server: dispatched, response known
// analytically, completion not yet reached. If the server crashes before
// completion the job is lost and re-offered through the retry queue.
// respIdx indexes the job's response in the current epoch's accumulation,
// or -1 once the epoch that dispatched it has closed (its response is
// already published in that epoch's statistics; a later loss can no longer
// be masked out of them, though the engine-side sample is still corrected).
type pendJob struct {
	arrival, size float64
	completion    float64
	attempt       int
	respIdx       int
}

// retryJob is one lost job awaiting re-dispatch at its backed-off arrival.
// seq breaks arrival ties in loss order, keeping the replay deterministic.
type retryJob struct {
	arrival, size float64
	attempt       int
	seq           uint64
}

// resetFaults rewinds all fault-mode state for a fresh Run.
func (c *Coordinator) resetFaults() {
	rep := &c.report
	rep.Offered, rep.Completed, rep.Requeued, rep.Dropped = 0, 0, 0, 0
	rep.Retries, rep.Crashes, rep.Repairs = 0, 0, 0
	rep.FaultEvents = nil
	c.offered, c.completed, c.dropped = 0, 0, 0
	c.retries, c.crashes, c.repairs = 0, 0, 0
	c.epCrash, c.epRepair, c.epLost, c.epDrop = 0, 0, 0, 0
	c.faultLog = c.faultLog[:0]
	c.retryq = c.retryq[:0]
	c.retrySeq = 0
	for s := range c.pending {
		c.pending[s] = c.pending[s][:0]
	}
	if c.cfg.Faults == nil {
		return
	}
	c.cfg.Faults.Reset(c.cfg.Seed)
	if c.faultCur == nil {
		c.faultCur = fault.NewCursor(c.cfg.Faults)
	} else {
		c.faultCur.Reset(c.cfg.Faults)
	}
}

// serveEpochFaults serves one epoch's collected jobs with the fault timeline
// interleaved: the epoch is cut into segments at each event instant, every
// segment's arrivals (offered jobs merged with due retries) are served over
// the current healthy active view, and the event is applied at the cut. An
// event at exactly the epoch's start applies after openEpoch's boundary
// decisions and before any arrival. With no events in the epoch there is a
// single segment over the same prefix view the fault-free path uses, making
// an empty timeline bit-identical to no injection at all.
func (c *Coordinator) serveEpochFaults(epochStart, epochEnd float64) error {
	c.eJobs = c.eJobs[:0]
	c.eSrv = c.eSrv[:0]
	c.eResp = c.eResp[:0]
	c.eLost = c.eLost[:0]
	c.offered += len(c.epochJobs)
	pos := 0
	segStart := epochStart
	for {
		segEnd := epochEnd
		ev, haveEv := c.faultCur.Peek()
		if haveEv && ev.Time < epochEnd {
			segEnd = ev.Time
		} else {
			haveEv = false
		}
		// Merge offered jobs and due retries in arrival order; a retry whose
		// backed-off arrival is already past re-enters at the segment start
		// (ties go to the retry, then loss order via the heap).
		c.segJobs = c.segJobs[:0]
		c.segAtt = c.segAtt[:0]
		for {
			var ra float64
			haveRetry := len(c.retryq) > 0 && c.retryq[0].arrival < segEnd
			if haveRetry {
				ra = math.Max(c.retryq[0].arrival, segStart)
			}
			haveJob := pos < len(c.epochJobs) && c.epochJobs[pos].Arrival < segEnd
			switch {
			case haveRetry && (!haveJob || ra <= c.epochJobs[pos].Arrival):
				rj := c.popRetry()
				c.segJobs = append(c.segJobs, queue.Job{Arrival: ra, Size: rj.size})
				c.segAtt = append(c.segAtt, rj.attempt)
			case haveJob:
				c.segJobs = append(c.segJobs, c.epochJobs[pos])
				c.segAtt = append(c.segAtt, 0)
				pos++
			default:
				goto serve
			}
		}
	serve:
		if err := c.serveSegment(); err != nil {
			return err
		}
		if !haveEv {
			return nil
		}
		c.faultCur.Advance()
		if err := c.applyFault(ev); err != nil {
			return err
		}
		segStart = segEnd
	}
}

// serveSegment routes the collected segment jobs over the healthy active
// set and records each dispatch in the epoch accumulation and the in-flight
// ledger. With no healthy server anywhere, arrivals are lost on arrival and
// run through the same retry budget as in-flight losses.
func (c *Coordinator) serveSegment() error {
	n := len(c.segJobs)
	if n == 0 {
		return nil
	}
	if len(c.actList) == 0 {
		for i := range c.segJobs {
			c.epLost++
			c.requeueLost(c.segJobs[i].Arrival, c.segJobs[i].Size, c.segAtt[i])
		}
		return nil
	}
	// A prefix active list serves through the same cached Subfarm as the
	// fault-free path; any other shape goes through the reusable compact
	// Select view.
	var fv *farm.Farm
	var err error
	if last := c.actList[len(c.actList)-1]; last == len(c.actList)-1 {
		fv, err = c.view(len(c.actList))
	} else {
		c.faultView, err = c.f.Select(c.faultView, c.actList)
		fv = c.faultView
	}
	if err != nil {
		return err
	}
	c.segResp = resizeFloats(c.segResp, n)
	c.segSrv = resizeIntsF(c.segSrv, n)
	fv.RecordServe(c.segResp, c.segSrv)
	c.src.jobs, c.src.pos = c.segJobs, 0
	if _, err := fv.ServeSourceSliced(&c.src, c.cfg.Options); err != nil {
		return fmt.Errorf("fleet: epoch %d: %w", c.epoch, err)
	}
	for i := 0; i < n; i++ {
		real := c.actList[c.segSrv[i]]
		j := c.segJobs[i]
		c.pending[real] = append(c.pending[real], pendJob{
			arrival: j.Arrival, size: j.Size,
			completion: j.Arrival + c.segResp[i],
			attempt:    c.segAtt[i],
			respIdx:    len(c.eResp),
		})
		c.eJobs = append(c.eJobs, j)
		c.eSrv = append(c.eSrv, real)
		c.eResp = append(c.eResp, c.segResp[i])
		c.eLost = append(c.eLost, false)
	}
	return nil
}

// applyFault validates and applies one event at its instant.
func (c *Coordinator) applyFault(ev fault.Event) error {
	if ev.Server < 0 || ev.Server >= c.k {
		return fmt.Errorf("fleet: fault event at t=%g: server %d outside fleet of %d", ev.Time, ev.Server, c.k)
	}
	switch ev.Kind {
	case fault.Crash:
		if c.downSrv[ev.Server] {
			return fmt.Errorf("fleet: fault event at t=%g: server %d crashed while already down", ev.Time, ev.Server)
		}
		return c.applyCrash(ev)
	case fault.Repair:
		if !c.downSrv[ev.Server] {
			return fmt.Errorf("fleet: fault event at t=%g: server %d repaired while up", ev.Time, ev.Server)
		}
		return c.applyRepair(ev)
	default:
		return fmt.Errorf("fleet: fault event at t=%g: unknown kind %d", ev.Time, uint8(ev.Kind))
	}
}

// applyCrash takes a server down at ev.Time: in-flight jobs whose FCFS
// completion has not been reached are lost (their responses retracted from
// the engine sample and masked out of this epoch's statistics) and
// re-offered through the retry budget; the engine refunds the energy it
// had pre-billed past the crash instant. If the crash empties the active
// set while healthy parked servers remain, the lowest-indexed one is
// emergency-unparked at the crash instant so routing can go on.
func (c *Coordinator) applyCrash(ev fault.Event) error {
	s, tc := ev.Server, ev.Time
	// FCFS completions are non-decreasing in dispatch order, so the
	// completed jobs form a prefix of the in-flight ledger.
	pend := c.pending[s]
	done := 0
	for done < len(pend) && pend[done].completion <= tc {
		done++
	}
	c.completed += done
	lost := pend[done:]
	if err := c.f.Server(s).CrashAt(tc, len(lost)); err != nil {
		return fmt.Errorf("fleet: epoch %d server %d crash at t=%g: %w", c.epoch, s, tc, err)
	}
	for i := range lost {
		if idx := lost[i].respIdx; idx >= 0 {
			c.eLost[idx] = true
		}
		c.epLost++
		c.requeueLost(tc, lost[i].size, lost[i].attempt)
	}
	c.pending[s] = pend[:0]
	c.downSrv[s] = true
	c.downCount++
	c.crashes++
	c.epCrash++
	c.parked[s] = false
	c.healthy = removeSorted(c.healthy, s)
	c.actList = removeSorted(c.actList, s)
	c.active = len(c.actList)
	c.faultLog = append(c.faultLog, ev)
	if len(c.actList) == 0 && len(c.healthy) > 0 {
		u := c.healthy[0]
		if err := c.f.Server(u).WakeAt(tc); err != nil {
			return fmt.Errorf("fleet: epoch %d server %d emergency unpark at t=%g: %w", c.epoch, u, tc, err)
		}
		c.parked[u] = false
		c.actList = append(c.actList, u)
		c.active = 1
		c.unpark++
	}
	return nil
}

// applyRepair brings a crashed server back at ev.Time: its engine rejoins
// cold, paying the deepest wake, and the server joins the active set
// immediately — under the configuration it crashed with until the next
// epoch boundary re-decides for it.
func (c *Coordinator) applyRepair(ev fault.Event) error {
	s, tr := ev.Server, ev.Time
	if err := c.f.Server(s).RejoinAt(tr); err != nil {
		return fmt.Errorf("fleet: epoch %d server %d repair at t=%g: %w", c.epoch, s, tr, err)
	}
	c.downSrv[s] = false
	c.downCount--
	c.repairs++
	c.epRepair++
	c.parked[s] = false
	c.healthy = insertSorted(c.healthy, s)
	c.actList = insertSorted(c.actList, s)
	c.active = len(c.actList)
	c.faultLog = append(c.faultLog, ev)
	return nil
}

// requeueLost runs one lost job through the retry policy: re-offered at
// at + Backoff·attempt with the attempt count bumped, or dropped once the
// budget is spent. Every loss lands in exactly one of the two buckets, which
// is what makes the conservation ledger close.
func (c *Coordinator) requeueLost(at, size float64, attempt int) {
	if attempt >= c.cfg.Retry.Budget {
		c.dropped++
		c.epDrop++
		return
	}
	c.retries++
	next := attempt + 1
	c.pushRetry(retryJob{
		arrival: at + c.cfg.Retry.Backoff*float64(next),
		size:    size,
		attempt: next,
		seq:     c.retrySeq,
	})
	c.retrySeq++
}

// settleEpoch trims jobs completed by the epoch's end out of the in-flight
// ledger and unbinds the survivors from the recycled per-epoch response
// accumulation.
func (c *Coordinator) settleEpoch(epochEnd float64) {
	for s := range c.pending {
		pend := c.pending[s]
		done := 0
		for done < len(pend) && pend[done].completion <= epochEnd {
			done++
		}
		c.completed += done
		rest := pend[:copy(pend, pend[done:])]
		for i := range rest {
			rest[i].respIdx = -1
		}
		c.pending[s] = rest
	}
}

// retryLess orders the retry queue by backed-off arrival, then loss order.
func retryLess(a, b retryJob) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.seq < b.seq
}

// pushRetry adds a job to the retry min-heap.
func (c *Coordinator) pushRetry(rj retryJob) {
	c.retryq = append(c.retryq, rj)
	i := len(c.retryq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !retryLess(c.retryq[i], c.retryq[parent]) {
			break
		}
		c.retryq[i], c.retryq[parent] = c.retryq[parent], c.retryq[i]
		i = parent
	}
}

// popRetry removes and returns the earliest retry.
func (c *Coordinator) popRetry() retryJob {
	q := c.retryq
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	c.retryq = q[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && retryLess(q[l], q[small]) {
			small = l
		}
		if r < n && retryLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// insertSorted inserts v into ascending list s (v must be absent).
func insertSorted(s []int, v int) []int {
	i := len(s)
	s = append(s, v)
	for i > 0 && s[i-1] > v {
		s[i] = s[i-1]
		i--
	}
	s[i] = v
	return s
}

// removeSorted removes v from ascending list s if present.
func removeSorted(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
