package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"sleepscale/internal/core"
	"sleepscale/internal/eventlog"
	"sleepscale/internal/farm"
	"sleepscale/internal/fault"
	"sleepscale/internal/metrics"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
)

// Config describes one coordinated fleet run.
type Config struct {
	// Servers is the fleet size k.
	Servers int
	// FreqExponent is the workload's β.
	FreqExponent float64
	// Profile supplies the power model.
	Profile *power.Profile
	// Trace drives epoch boundaries and realized utilizations, exactly as in
	// the batch runners.
	Trace *trace.Trace
	// EpochSlots is T: trace slots per policy epoch.
	EpochSlots int
	// Strategy picks policies at epoch boundaries — once per epoch in shared
	// mode, once per active server in per-server mode, consuming the same
	// decision RNG stream either way.
	Strategy core.Strategy
	// Predictor is the shared fleet predictor (PerServer false): it observes
	// the trace's realized slot utilizations, exactly as in RunFarmSource.
	Predictor predict.Predictor
	// NewPredictor builds one predictor per server (PerServer true). Each
	// server's predictor observes the per-slot demand actually routed to
	// that server (Σ size / slot length), so skew shows up in its forecasts.
	NewPredictor func() predict.Predictor
	// PerServer selects per-server prediction and decisions.
	PerServer bool
	// WindowEpochs is the job-log window depth (default 3).
	WindowEpochs int
	// Seed drives the strategy's bootstrap resampling via core.DecideSeed.
	Seed int64
	// Dispatcher routes jobs over the active servers. It must support the
	// sliced dispatch path (Preassigner or VirtualRouter); per-server
	// policies additionally need a ConfigRouter or configuration-free
	// dispatcher.
	Dispatcher farm.Dispatcher
	// Options tunes the sliced serving path (slice size, worker bound).
	Options farm.DispatchOptions
	// Quorum, when positive, keeps a rotating duty window of min(Quorum,
	// active) servers no deeper than C1 each epoch. Must not exceed Servers.
	Quorum int
	// Park enables horizontal scaling: the active prefix is sized to
	// ceil(predicted fleet demand / ParkTargetRho) each epoch.
	Park bool
	// ParkTargetRho is the per-active-server utilization the scaler aims at
	// (default 0.7).
	ParkTargetRho float64
	// MinActive floors the active set (default 1); the quorum floors it too.
	MinActive int
	// Observer, when set, sees every fleet epoch record as it closes —
	// the hook the invariant checks and live dashboards use.
	Observer func(Epoch)
	// Faults, when set, injects a deterministic crash/repair timeline into
	// the run: events apply at their exact instants, interleaved with job
	// arrivals (an event on an epoch boundary belongs to the epoch it
	// opens). Run rewinds the source with Reset(Seed) alongside the decision
	// RNG, so every Run replays the same timeline. An empty or exhausted
	// source leaves the run bit-identical to no fault injection at all —
	// the equivalence suite pins this.
	Faults fault.Source
	// Retry bounds failover re-dispatch of jobs lost in flight on a
	// crashing server (fault mode only): each lost job is re-offered at
	// loss instant + Backoff·attempt until it has been lost Budget times,
	// then dropped. The zero policy drops every lost job outright.
	Retry fault.RetryPolicy
}

// Epoch is the fleet-level rollup of one epoch, alongside the embedded
// runner's core.EpochRecord.
type Epoch struct {
	// Index is the epoch number.
	Index int
	// Active and Parked partition the fleet at this epoch.
	Active int
	Parked int
	// Shallow counts active servers whose installed plan is no deeper than
	// C1 — the quorum invariant is Shallow ≥ min(Quorum, Active).
	Shallow int
	// Unparked counts servers woken this epoch, each paying a deep wake.
	Unparked int
	// MeanFrequency averages the installed frequency over active servers.
	MeanFrequency float64
	// Down counts servers crashed and not yet repaired as the epoch closes;
	// Crashes/Repairs count this epoch's applied fault events, Lost the
	// jobs lost in flight (or arriving with no healthy server), and Dropped
	// the losses whose retry budget was exhausted. All zero without fault
	// injection.
	Down, Crashes, Repairs, Lost, Dropped int
}

// Report aggregates a coordinated fleet run. The embedded RunReport carries
// the same fleet-wide quantities as core.FarmRunReport — in shared mode with
// no quorum and no parking they are bit-identical to RunFarmSource's. The
// report reuses the coordinator's storage: it is valid until the next Run.
type Report struct {
	core.RunReport
	// Servers is the fleet size k.
	Servers int
	// Dispatcher names the routing discipline.
	Dispatcher string
	// FleetEpochs records the fleet dimensions of every epoch, parallel to
	// Epochs.
	FleetEpochs []Epoch
	// PerServer holds each server's whole-run scalar summary.
	PerServer []queue.Summary
	// PeakPower is k servers at full frequency, the energy-proportionality
	// denominator.
	PeakPower float64
	// EnergyProportionality scores how closely per-epoch energy tracks the
	// ideal proportional fleet (busy·P_active(1)): 1 − Σ|E_e −
	// Busy_e·P1|/(PeakPower·Duration). 1 is perfectly proportional.
	EnergyProportionality float64
	// JobsPerJoule is the fleet's performance-per-watt figure of merit.
	JobsPerJoule float64
	// Fault accounting, maintained only when Config.Faults is set. The
	// conservation invariant holds exactly: Offered == Completed + Requeued
	// + Dropped, where Requeued counts jobs still awaiting re-dispatch when
	// the trace ended, and Completed equals the embedded Jobs count (every
	// retained engine response is a completed job). Retries counts
	// re-dispatch attempts; FaultEvents is the applied timeline in order
	// (aliasing coordinator storage, valid until the next Run).
	Offered, Completed, Requeued, Dropped int
	Retries, Crashes, Repairs             int
	FaultEvents                           []fault.Event
}

// Coordinator owns per-server (queue.Config, policy) state and drives the
// epoch-boundary decide→serve→observe cycle over a dispatched farm. Build
// one with New; Run executes a whole trace. A coordinator is reusable —
// Run resets all simulation state — but predictors carry their learned
// state across runs (build a fresh coordinator for independent replays).
type Coordinator struct {
	cfg     Config
	k       int
	lo      int // active-set floor: max(1, MinActive, Quorum)
	parkPol policy.Policy
	parkCfg queue.Config

	f     *farm.Farm
	views map[int]*farm.Farm // prefix Subfarm per active-set size

	window    *eventlog.Window
	decideSrc rand.Source
	decideRng *rand.Rand
	preds     []predict.Predictor // per-server mode

	pols    []policy.Policy // installed policy per server
	parked  []bool
	active  int
	rotor   int // quorum duty-window origin
	epoch   int
	unpark  int // servers woken at the current epoch's boundary
	recPred float64
	recPol  policy.Policy

	// Healthy-set state. actList is the active healthy servers in strictly
	// ascending order — always the prefix [0, active) without fault
	// injection, so the list-driven epoch arithmetic reduces bit-identically
	// to the prefix arithmetic the no-fault equivalence pins. healthy is
	// every not-down server ascending; newAct/inPrev/inNew are openEpoch
	// scratch. The remaining fault-mode state lives in faults.go.
	actList   []int
	newAct    []int
	inPrev    []bool
	inNew     []bool
	healthy   []int
	downSrv   []bool
	downCount int

	faultCur  *fault.Cursor
	faultView *farm.Farm
	faultLog  []fault.Event
	pending   [][]pendJob
	retryq    []retryJob
	retrySeq  uint64
	segJobs   []queue.Job
	segAtt    []int
	segResp   []float64
	segSrv    []int
	eJobs     []queue.Job
	eSrv      []int
	eResp     []float64
	eLost     []bool

	offered, completed, dropped       int
	retries, crashes, repairs         int
	epCrash, epRepair, epLost, epDrop int

	// phaseBufs is the per-server ping-pong phase scratch: AppendConfig
	// fills the buffer the previous epoch is NOT using, because the engine
	// still reads the old phase slice while closing out the old idle
	// schedule inside SetConfigAt.
	phaseBufs   [][2][]queue.SleepPhase
	cappedPlans map[string]policy.SleepPlan
	rawPred     []float64

	cursor      *stream.Cursor
	src         epochSource
	epochJobs   []queue.Job
	resp        []float64
	srv         []int
	demand      []float64 // active×slots per-server demand scratch
	epochDelays metrics.Sample

	lastMean, lastP95 float64
	lastJobs          int
	prevTotals        queue.Snapshot
	freqSum           float64

	report Report
}

// epochSource replays one epoch's collected jobs as a queue.JobSource.
type epochSource struct {
	jobs []queue.Job
	pos  int
}

func (s *epochSource) Next(buf []queue.Job) (int, bool) {
	n := copy(buf, s.jobs[s.pos:])
	s.pos += n
	return n, s.pos < len(s.jobs)
}

// New validates cfg and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("fleet: size %d < 1", cfg.Servers)
	}
	if cfg.Trace == nil || cfg.Trace.Len() == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs a non-empty trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.EpochSlots < 1 {
		return nil, fmt.Errorf("fleet: epoch slots %d < 1", cfg.EpochSlots)
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a strategy")
	}
	if cfg.Profile == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a power profile")
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a dispatcher")
	}
	if cfg.PerServer {
		if cfg.NewPredictor == nil {
			return nil, fmt.Errorf("fleet: per-server mode needs a predictor factory")
		}
	} else if cfg.Predictor == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a predictor")
	}
	if cfg.Quorum < 0 || cfg.Quorum > cfg.Servers {
		return nil, fmt.Errorf("fleet: quorum %d outside [0, %d servers]", cfg.Quorum, cfg.Servers)
	}
	if cfg.ParkTargetRho == 0 {
		cfg.ParkTargetRho = 0.7
	}
	if cfg.ParkTargetRho <= 0 || cfg.ParkTargetRho > 1 {
		return nil, fmt.Errorf("fleet: park target utilization %g outside (0, 1]", cfg.ParkTargetRho)
	}
	if cfg.MinActive == 0 {
		cfg.MinActive = 1
	}
	if cfg.MinActive < 1 || cfg.MinActive > cfg.Servers {
		return nil, fmt.Errorf("fleet: min active %d outside [1, %d servers]", cfg.MinActive, cfg.Servers)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	windowEpochs := cfg.WindowEpochs
	if windowEpochs <= 0 {
		windowEpochs = 3
	}
	window, err := eventlog.NewWindow(windowEpochs)
	if err != nil {
		return nil, err
	}
	k := cfg.Servers
	c := &Coordinator{
		cfg:         cfg,
		k:           k,
		lo:          maxInt(1, maxInt(cfg.MinActive, cfg.Quorum)),
		window:      window,
		views:       make(map[int]*farm.Farm),
		pols:        make([]policy.Policy, k),
		parked:      make([]bool, k),
		phaseBufs:   make([][2][]queue.SleepPhase, k),
		cappedPlans: make(map[string]policy.SleepPlan),
		rawPred:     make([]float64, k),
		actList:     make([]int, 0, k),
		newAct:      make([]int, 0, k),
		inPrev:      make([]bool, k),
		inNew:       make([]bool, k),
		healthy:     make([]int, 0, k),
		downSrv:     make([]bool, k),
		pending:     make([][]pendJob, k),
	}
	c.decideSrc = rand.NewSource(core.DecideSeed(cfg.Seed))
	c.decideRng = rand.New(c.decideSrc)
	// The park configuration: full frequency to drain accepted work fast,
	// then straight to the deepest state. Resolved once; its phase storage
	// is never shared with the per-server ping-pong buffers.
	c.parkPol = policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeeperSleep)}
	c.parkCfg, err = c.parkPol.Config(cfg.Profile, cfg.FreqExponent)
	if err != nil {
		return nil, fmt.Errorf("fleet: park policy: %w", err)
	}
	if cfg.PerServer {
		c.preds = make([]predict.Predictor, k)
		for s := range c.preds {
			if c.preds[s] = cfg.NewPredictor(); c.preds[s] == nil {
				return nil, fmt.Errorf("fleet: predictor factory returned nil")
			}
		}
	}
	c.report.PerServer = make([]queue.Summary, k)
	return c, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Installed reports server s's currently installed policy and whether it is
// parked — the accessor invariant checks use from inside an Observer.
func (c *Coordinator) Installed(s int) (policy.Policy, bool) {
	return c.pols[s], c.parked[s]
}

// Run executes the §6 epoch loop over the whole trace with jobs pulled from
// src (consumed from its current position; Reset it first for
// reproducibility). Jobs arriving at or after the trace's end are left
// unread. The returned report aliases coordinator storage and is valid
// until the next Run.
func (c *Coordinator) Run(src stream.Source) (*Report, error) {
	if src == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a job source")
	}
	c.resetRun(src)
	tr := c.cfg.Trace
	slotSec := tr.SlotSeconds
	nSlots := tr.Len()
	for s0 := 0; s0 < nSlots; s0 += c.cfg.EpochSlots {
		slots := c.cfg.EpochSlots
		if s0+slots > nSlots {
			slots = nSlots - s0
		}
		epochStart := float64(s0) * slotSec
		epochEnd := float64(s0+slots) * slotSec
		if err := c.openEpoch(epochStart); err != nil {
			return nil, err
		}
		c.epochJobs = c.epochJobs[:0]
		for {
			j, ok := c.cursor.Peek()
			if !ok || j.Arrival >= epochEnd {
				break
			}
			c.epochJobs = append(c.epochJobs, j)
			c.cursor.Advance()
		}
		if c.cfg.Faults != nil {
			if err := c.serveEpochFaults(epochStart, epochEnd); err != nil {
				return nil, err
			}
			c.closeEpoch(epochStart, epochEnd, tr.Utilization[s0:s0+slots], slotSec,
				c.eJobs, c.eSrv, c.eResp, c.eLost)
			c.settleEpoch(epochEnd)
		} else {
			if err := c.serveEpoch(); err != nil {
				return nil, err
			}
			c.closeEpoch(epochStart, epochEnd, tr.Utilization[s0:s0+slots], slotSec,
				c.epochJobs, c.srv, c.resp, nil)
		}
	}
	if err := stream.Err(src); err != nil {
		return nil, fmt.Errorf("fleet: job source: %w", err)
	}
	c.finish(tr.Duration())
	return &c.report, nil
}

// resetRun rewinds all simulation state for a fresh trace replay, reusing
// every buffer. Predictor state is deliberately not reset — see Coordinator.
func (c *Coordinator) resetRun(src stream.Source) {
	c.epoch = 0
	c.active = c.k
	c.rotor = 0
	c.unpark = 0
	for s := range c.parked {
		c.parked[s] = false
	}
	c.actList = c.actList[:0]
	c.healthy = c.healthy[:0]
	for s := 0; s < c.k; s++ {
		c.actList = append(c.actList, s)
		c.healthy = append(c.healthy, s)
		c.downSrv[s] = false
		c.inPrev[s] = false // may be left marked by an aborted openEpoch
		c.inNew[s] = false
	}
	c.downCount = 0
	c.resetFaults()
	c.lastMean, c.lastP95, c.lastJobs = 0, 0, 0
	c.prevTotals = queue.Snapshot{}
	c.freqSum = 0
	c.window.Reset()
	c.decideSrc.Seed(core.DecideSeed(c.cfg.Seed))
	c.epochDelays.Reset()
	if c.cursor == nil {
		c.cursor = stream.NewCursor(src)
	} else {
		c.cursor.Reset(src)
	}
	rep := &c.report
	rep.Strategy = c.cfg.Strategy.Name()
	if c.cfg.PerServer {
		rep.Predictor = c.preds[0].Name()
	} else {
		rep.Predictor = c.cfg.Predictor.Name()
	}
	rep.Jobs = 0
	rep.MeanResponse, rep.P95Response = 0, 0
	rep.AvgPower, rep.Energy, rep.Duration, rep.MeanFrequency = 0, 0, 0, 0
	nEpochs := (c.cfg.Trace.Len() + c.cfg.EpochSlots - 1) / c.cfg.EpochSlots
	if rep.Epochs == nil {
		rep.Epochs = make([]core.EpochRecord, 0, nEpochs)
	}
	rep.Epochs = rep.Epochs[:0]
	if rep.FleetEpochs == nil {
		rep.FleetEpochs = make([]Epoch, 0, nEpochs)
	}
	rep.FleetEpochs = rep.FleetEpochs[:0]
	if rep.PlanEpochs == nil {
		rep.PlanEpochs = make(map[string]int)
	} else {
		for name := range rep.PlanEpochs {
			delete(rep.PlanEpochs, name)
		}
	}
	rep.Servers = c.k
	rep.Dispatcher = c.cfg.Dispatcher.Name()
	rep.PeakPower = float64(c.k) * c.cfg.Profile.ActivePower(1)
	rep.EnergyProportionality, rep.JobsPerJoule = 0, 0
}

// openEpoch runs the top of the epoch cycle: predict per server, size the
// active set, decide policies, enforce the quorum cap, and install the
// resulting configurations at the epoch's start instant.
//
// All of it is driven by explicit server lists — the previously active set
// (actList as the epoch opens) and the healthy set — so crashed servers are
// skipped everywhere. Without fault injection both lists are the ascending
// prefixes [0, active) and [0, k), and every loop below visits exactly the
// indices the prefix arithmetic did, in the same order, consuming the same
// RNG draws: the no-fault equivalence tests pin this reduction bit for bit.
func (c *Coordinator) openEpoch(epochStart float64) error {
	first := c.epoch == 0
	perSrv := c.cfg.PerServer
	prevAct := c.actList
	c.epCrash, c.epRepair, c.epLost, c.epDrop = 0, 0, 0, 0

	// 1. Predict. Parked servers' predictors are frozen: they see no demand
	// while parked, so feeding them would only teach them zeros. Down
	// servers' predictors are frozen the same way.
	var sharedPred float64
	if perSrv {
		for _, s := range prevAct {
			c.rawPred[s] = core.ClampRho(c.preds[s].Predict())
		}
	} else {
		sharedPred = core.ClampRho(c.cfg.Predictor.Predict())
	}

	// 2. Size the active set to predicted fleet demand, within what is
	// healthy. The quorum/min-active floor caps to the healthy count: a
	// quorum window larger than the surviving fleet degrades to "everything
	// healthy stays shallow" rather than failing.
	h := len(c.healthy)
	m := h
	if c.cfg.Park {
		w := 0.0
		if perSrv {
			for _, s := range prevAct {
				w += c.rawPred[s]
			}
		} else {
			w = sharedPred * float64(len(prevAct))
		}
		m = int(math.Ceil(w / c.cfg.ParkTargetRho))
		lo := c.lo
		if lo > h {
			lo = h
		}
		if m < lo {
			m = lo
		}
		if m > h {
			m = h
		}
	}
	// The new active set is the first m healthy servers. Mark membership to
	// find the park/unpark transitions.
	c.newAct = append(c.newAct[:0], c.healthy[:m]...)
	for _, s := range prevAct {
		c.inPrev[s] = true
	}
	c.unpark = 0
	for _, s := range c.newAct {
		c.inNew[s] = true
		if !c.inPrev[s] { // servers about to unpark need forecasts too
			if perSrv {
				c.rawPred[s] = core.ClampRho(c.preds[s].Predict())
			}
			c.parked[s] = false
			c.unpark++
		}
	}
	for _, s := range prevAct {
		if !c.inNew[s] {
			c.parked[s] = true
			c.pols[s] = c.parkPol
		}
	}

	// 3. Decide, consuming the decision RNG once per decision in active
	// server order — shared mode consumes exactly one draw sequence per
	// epoch, matching the homogeneous runner bit for bit. With every server
	// down there is nobody to decide for: the RNG is not consumed and the
	// previous recommendation stands in the epoch record.
	if len(c.newAct) > 0 {
		if perSrv {
			sum := 0.0
			for _, s := range c.newAct {
				pol, err := c.decide(c.rawPred[s])
				if err != nil {
					return fmt.Errorf("fleet: epoch %d server %d decision: %w", c.epoch, s, err)
				}
				c.pols[s] = pol
				sum += c.rawPred[s]
			}
			c.recPred = sum / float64(len(c.newAct))
			c.recPol = c.pols[c.newAct[0]]
		} else {
			pol, err := c.decide(sharedPred)
			if err != nil {
				return fmt.Errorf("fleet: epoch %d decision: %w", c.epoch, err)
			}
			for _, s := range c.newAct {
				c.pols[s] = pol
			}
			c.recPred = sharedPred
			c.recPol = pol
		}
	} else {
		c.recPred = 0
	}

	// 4. Quorum: cap the rotating duty window to C1-or-shallower plans.
	if q := c.cfg.Quorum; q > 0 && len(c.newAct) > 0 {
		ml := len(c.newAct)
		d := q
		if d > ml {
			d = ml
		}
		start := c.rotor % ml
		for i := 0; i < d; i++ {
			s := c.newAct[(start+i)%ml]
			c.pols[s].Plan = c.capPlan(c.pols[s].Plan)
		}
		c.rotor += d
	}

	// 5. Install. The first epoch creates (or Resets) the farm under the
	// first active server's configuration and only switches servers that
	// differ — exactly the homogeneous runner's farm.New when every server
	// agrees. Later epochs switch every active server at the boundary in
	// server order, as the farm backend does, then park the newly parked;
	// down servers are never touched (their engines reject clocked calls).
	if first {
		qcfg0, err := c.resolve(c.newAct[0])
		if err != nil {
			return err
		}
		if c.f == nil {
			f, err := farm.New(c.k, qcfg0, c.cfg.Dispatcher)
			if err != nil {
				return err
			}
			c.f = f
		} else if err := c.f.Reset(qcfg0); err != nil {
			return err
		}
		for s := 1; s < c.k; s++ {
			switch {
			case c.parked[s]:
				if err := c.f.Server(s).SetConfigAt(epochStart, c.parkCfg); err != nil {
					return fmt.Errorf("fleet: epoch %d server %d park: %w", c.epoch, s, err)
				}
			case !polEqual(c.pols[s], c.pols[c.newAct[0]]):
				qcfg, err := c.resolve(s)
				if err != nil {
					return err
				}
				if err := c.f.Server(s).SetConfigAt(epochStart, qcfg); err != nil {
					return fmt.Errorf("fleet: epoch %d server %d switch: %w", c.epoch, s, err)
				}
			}
		}
	} else {
		for _, s := range c.newAct {
			if !c.inPrev[s] { // unparking: pay the deep wake before the switch
				if err := c.f.Server(s).WakeAt(epochStart); err != nil {
					return fmt.Errorf("fleet: epoch %d server %d unpark: %w", c.epoch, s, err)
				}
			}
			qcfg, err := c.resolve(s)
			if err != nil {
				return err
			}
			if err := c.f.Server(s).SetConfigAt(epochStart, qcfg); err != nil {
				return fmt.Errorf("fleet: epoch %d server %d switch: %w", c.epoch, s, err)
			}
		}
		for _, s := range prevAct {
			if !c.inNew[s] { // newly parked: drain fast, then deepest sleep
				if err := c.f.Server(s).SetConfigAt(epochStart, c.parkCfg); err != nil {
					return fmt.Errorf("fleet: epoch %d server %d park: %w", c.epoch, s, err)
				}
			}
		}
	}
	for _, s := range prevAct {
		c.inPrev[s] = false
	}
	for _, s := range c.newAct {
		c.inNew[s] = false
	}
	c.actList = append(c.actList[:0], c.newAct...)
	c.active = len(c.actList)
	return nil
}

// decide runs one strategy decision against the shared epoch telemetry.
func (c *Coordinator) decide(pred float64) (policy.Policy, error) {
	return c.cfg.Strategy.Decide(core.DecideInput{
		PredictedUtilization: pred,
		Window:               c.window,
		LastEpochMeanDelay:   c.lastMean,
		LastEpochP95Delay:    c.lastP95,
		LastEpochJobs:        c.lastJobs,
		Rng:                  c.decideRng,
	})
}

// resolve materializes server s's installed policy into a queue.Config using
// the server's ping-pong phase scratch.
func (c *Coordinator) resolve(s int) (queue.Config, error) {
	buf := &c.phaseBufs[s][c.epoch&1]
	qcfg, err := c.pols[s].AppendConfig(c.cfg.Profile, c.cfg.FreqExponent, (*buf)[:0])
	if err != nil {
		return queue.Config{}, fmt.Errorf("fleet: epoch %d server %d policy %v: %w", c.epoch, s, c.pols[s], err)
	}
	*buf = qcfg.Phases // retain growth for reuse
	return qcfg, nil
}

// polEqual reports whether two policies install the same configuration.
// Plan names are assumed to identify plan contents, which holds for every
// plan this package installs (capped plans are renamed).
func polEqual(a, b policy.Policy) bool {
	return a.Frequency == b.Frequency && a.Plan.Name == b.Plan.Name
}

// capPlan truncates a plan to its C1-or-shallower prefix, memoized by plan
// name. A plan that never goes deeper than C1 is returned unchanged; one
// that starts deep becomes an immediate-halt plan, the shallowest plan that
// still sleeps.
func (c *Coordinator) capPlan(pl policy.SleepPlan) policy.SleepPlan {
	if pl.DeepestState().CPU <= power.C1 {
		return pl
	}
	if capped, ok := c.cappedPlans[pl.Name]; ok {
		return capped
	}
	n := 0
	for n < len(pl.Phases) && pl.Phases[n].State.CPU <= power.C1 {
		n++
	}
	var capped policy.SleepPlan
	if n == 0 {
		capped = policy.SingleState(power.Halt)
		capped.Name = pl.Name + "≤C1"
	} else {
		capped = policy.SleepPlan{Name: pl.Name + "≤C1", Phases: pl.Phases[:n:n]}
	}
	c.cappedPlans[pl.Name] = capped
	return capped
}

// view returns the farm serving this epoch: the whole fleet, or the cached
// prefix Subfarm over the m active servers.
func (c *Coordinator) view(m int) (*farm.Farm, error) {
	if m == c.k {
		return c.f, nil
	}
	if v, ok := c.views[m]; ok {
		return v, nil
	}
	v, err := c.f.Subfarm(m)
	if err != nil {
		return nil, err
	}
	c.views[m] = v
	return v, nil
}

// serveEpoch routes and simulates the collected epoch jobs over the active
// prefix, recording each job's response and server at its stream position.
func (c *Coordinator) serveEpoch() error {
	n := len(c.epochJobs)
	c.resp = resizeFloats(c.resp, n)
	c.srv = resizeIntsF(c.srv, n)
	fv, err := c.view(c.active)
	if err != nil {
		return err
	}
	fv.RecordServe(c.resp, c.srv)
	c.src.jobs, c.src.pos = c.epochJobs, 0
	if _, err := fv.ServeSourceSliced(&c.src, c.cfg.Options); err != nil {
		return fmt.Errorf("fleet: epoch %d: %w", c.epoch, err)
	}
	return nil
}

// closeEpoch runs the bottom of the epoch cycle: summarize delays in stream
// order, log the window, feed the predictors, difference the fleet totals
// and emit both epoch records. served/srv/resp describe the jobs actually
// dispatched this epoch and the real server each went to — the offered
// stream itself without faults, or the segment-walker's accumulation
// (retries included, dispatch order) with them; lost, when non-nil, masks
// responses of jobs later lost in flight out of the delay statistics.
func (c *Coordinator) closeEpoch(epochStart, epochEnd float64, rhos []float64, slotSec float64,
	served []queue.Job, srv []int, resp []float64, lost []bool) {
	c.epochDelays.Reset()
	if lost == nil {
		for _, r := range resp {
			c.epochDelays.Add(r)
		}
	} else {
		for i, r := range resp {
			if !lost[i] {
				c.epochDelays.Add(r)
			}
		}
	}
	c.window.PushJobs(c.epochJobs, epochStart)
	var realized float64
	if c.cfg.PerServer {
		// Same arithmetic as core.FeedPredictor's realized mean; the
		// observations go to the per-server predictors instead.
		for _, rho := range rhos {
			realized += rho
		}
		if len(rhos) > 0 {
			realized /= float64(len(rhos))
		}
		c.feedPerServer(served, srv, rhos, epochStart, slotSec)
	} else {
		realized = core.FeedPredictor(c.cfg.Predictor, rhos)
	}
	c.lastJobs = c.epochDelays.Count()
	c.lastMean = c.epochDelays.Mean()
	c.lastP95 = c.epochDelays.PercentileNearestRank(95)
	tot := c.totalsAt(epochEnd)
	rep := &c.report
	rep.Epochs = append(rep.Epochs, core.EpochRecord{
		Index: c.epoch, Predicted: c.recPred, Realized: realized,
		Policy: c.recPol, Jobs: c.lastJobs, MeanDelay: c.lastMean, P95Delay: c.lastP95,
		Energy:   tot.Energy - c.prevTotals.Energy,
		BusyTime: tot.BusyTime - c.prevTotals.BusyTime,
		WakeTime: tot.WakeTime - c.prevTotals.WakeTime,
		IdleTime: tot.IdleTime - c.prevTotals.IdleTime,
	})
	c.prevTotals = tot

	shallow := 0
	for _, s := range c.actList {
		if c.pols[s].Plan.DeepestState().CPU <= power.C1 {
			shallow++
		}
	}
	var freq float64
	if c.cfg.PerServer {
		for _, s := range c.actList {
			freq += c.pols[s].Frequency
			rep.PlanEpochs[c.pols[s].Plan.Name]++
		}
		if c.active > 0 {
			freq /= float64(c.active)
		}
	} else {
		// The decided frequency, not a recomputed mean: (f·m)/m is not
		// bit-equal to f, and shared mode is pinned to the farm runner.
		freq = c.recPol.Frequency
		rep.PlanEpochs[c.recPol.Plan.Name]++
	}
	c.freqSum += freq
	fe := Epoch{
		Index: c.epoch, Active: c.active, Parked: c.k - c.active - c.downCount,
		Shallow: shallow, Unparked: c.unpark, MeanFrequency: freq,
		Down: c.downCount, Crashes: c.epCrash, Repairs: c.epRepair,
		Lost: c.epLost, Dropped: c.epDrop,
	}
	rep.FleetEpochs = append(rep.FleetEpochs, fe)
	if c.cfg.Observer != nil {
		c.cfg.Observer(fe)
	}
	c.epoch++
}

// feedPerServer observes each active server's realized demand — the sizes
// of the jobs routed to it, bucketed by arrival slot and normalized by the
// slot length — into its predictor, in slot order. The demand matrix is
// indexed by real server id, and only the currently active (healthy)
// servers' rows are observed: demand routed to a server that crashed later
// in the epoch stays unobserved, consistent with frozen-while-down
// predictors. Without faults srv holds prefix view indices that equal real
// ids, reducing to the original arithmetic exactly.
func (c *Coordinator) feedPerServer(served []queue.Job, srv []int, rhos []float64, epochStart, slotSec float64) {
	slots := len(rhos)
	need := c.k * slots
	c.demand = resizeFloats(c.demand, need)
	for i := range c.demand {
		c.demand[i] = 0
	}
	for i, j := range served {
		slot := int((j.Arrival - epochStart) / slotSec)
		if slot < 0 {
			slot = 0
		}
		if slot >= slots {
			slot = slots - 1
		}
		c.demand[srv[i]*slots+slot] += j.Size
	}
	for _, s := range c.actList {
		row := c.demand[s*slots : (s+1)*slots]
		for _, d := range row {
			c.preds[s].Observe(d / slotSec)
		}
	}
}

// totalsAt sums cumulative counters over every server — parked ones too, so
// epoch energy deltas account for the whole fleet — in server order, exactly
// as the farm backend does.
func (c *Coordinator) totalsAt(t float64) queue.Snapshot {
	var sum queue.Snapshot
	for s := 0; s < c.k; s++ {
		sn := c.f.Server(s).TotalsAt(t)
		sum.Energy += sn.Energy
		sum.BusyTime += sn.BusyTime
		sum.WakeTime += sn.WakeTime
		sum.IdleTime += sn.IdleTime
		sum.Jobs += sn.Jobs
		sum.Wakes += sn.Wakes
	}
	return sum
}

// finish closes every server at the trace's end and folds the per-server
// summaries into the fleet aggregates, mirroring farm.Finish's summation
// order so shared-mode aggregates are bit-identical to RunFarmSource's.
func (c *Coordinator) finish(duration float64) {
	rep := &c.report
	if c.epoch > 0 {
		rep.MeanFrequency = c.freqSum / float64(c.epoch)
	}
	if c.cfg.Faults != nil {
		// Jobs still tracked in flight past the trace's end were accepted
		// and complete (engines bill their service); fold them in so the
		// conservation ledger closes: offered == completed + requeued +
		// dropped, with completed matching the retained engine responses.
		for s := range c.pending {
			c.completed += len(c.pending[s])
			c.pending[s] = c.pending[s][:0]
		}
		rep.Offered = c.offered
		rep.Completed = c.completed
		rep.Requeued = len(c.retryq)
		rep.Dropped = c.dropped
		rep.Retries = c.retries
		rep.Crashes = c.crashes
		rep.Repairs = c.repairs
		rep.FaultEvents = c.faultLog
	}
	var respSum float64
	for s := 0; s < c.k; s++ {
		sum := c.f.Server(s).FinishSummary(duration)
		rep.PerServer[s] = sum
		rep.Jobs += sum.Jobs
		respSum += sum.MeanResponse * float64(sum.Jobs)
		rep.AvgPower += sum.AvgPower
		rep.Energy += sum.Energy
		if sum.ResponseP95 > rep.P95Response {
			rep.P95Response = sum.ResponseP95
		}
		if sum.Duration > rep.Duration {
			rep.Duration = sum.Duration
		}
	}
	if rep.Jobs > 0 {
		rep.MeanResponse = respSum / float64(rep.Jobs)
	}
	if rep.Energy > 0 {
		rep.JobsPerJoule = float64(rep.Jobs) / rep.Energy
	}
	var dev float64
	p1 := c.cfg.Profile.ActivePower(1)
	for i := range rep.Epochs {
		dev += math.Abs(rep.Epochs[i].Energy - rep.Epochs[i].BusyTime*p1)
	}
	if denom := rep.PeakPower * duration; denom > 0 {
		rep.EnergyProportionality = 1 - dev/denom
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeIntsF(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
