package core

import (
	"errors"
	"fmt"
	"math"

	"sleepscale/internal/policy"
)

// SelectIdealizedRefined runs the idealized grid selection and then polishes
// the winning plan's frequency continuously: first the QoS-feasibility
// boundary is located by bisection (mean response is strictly decreasing in
// f), then the closed-form power is minimized over the feasible band with a
// golden-section search. This realizes §5.1.2 observation 3 — "if there is
// a way to adjust the frequency in runtime, one can rely simply on the
// idealized model without simulation" — which the paper leaves as future
// work. The power curve is a single bowl for the profiles modeled here;
// the refined result is cross-checked against the grid winner and the
// better of the two is returned.
func (m *Manager) SelectIdealizedRefined(lambda, mu float64) (policy.Evaluation, error) {
	gridBest, _, err := m.SelectIdealized(lambda, mu)
	if err != nil {
		return policy.Evaluation{}, err
	}
	refined, err := m.refinePlan(gridBest.Policy.Plan, lambda, mu)
	if err != nil {
		// Refinement is best-effort; the grid winner stands.
		return gridBest, nil
	}
	if refined.Feasible && refined.Metrics.AvgPower < gridBest.Metrics.AvgPower {
		return refined, nil
	}
	return gridBest, nil
}

// refinePlan finds the continuous minimum-power feasible frequency for one
// plan under the idealized model.
func (m *Manager) refinePlan(plan policy.SleepPlan, lambda, mu float64) (policy.Evaluation, error) {
	evalAt := func(f float64) (policy.Metrics, error) {
		pol := policy.Policy{Frequency: f, Plan: plan}
		am, err := pol.AnalyticModel(m.Profile, lambda, mu)
		if err != nil {
			return policy.Metrics{}, err
		}
		er, err := am.MeanResponse()
		if err != nil {
			return policy.Metrics{}, err
		}
		ep, err := am.MeanPower()
		if err != nil {
			return policy.Metrics{}, err
		}
		met := policy.Metrics{AvgPower: ep, MeanResponse: er}
		if _, tail := m.QoS.(policy.PercentileQoS); tail {
			p95, err := am.ResponseQuantile(0.95)
			if err != nil {
				return policy.Metrics{}, err
			}
			p99, err := am.ResponseQuantile(0.99)
			if err != nil {
				return policy.Metrics{}, err
			}
			met.P95Response, met.P99Response = p95, p99
		}
		return met, nil
	}

	lo := lambda/mu + 1e-6 // stability floor (CPU-bound closed forms)
	hi := 1.0
	if lo >= hi {
		return policy.Evaluation{}, errors.New("core: no stable frequency band")
	}
	// Feasibility boundary: response metrics decrease in f, so the
	// feasible set is [fFeas, 1] (possibly empty).
	metHi, err := evalAt(hi)
	if err != nil {
		return policy.Evaluation{}, err
	}
	if !m.QoS.Satisfied(metHi) {
		return policy.Evaluation{}, fmt.Errorf("core: plan %q infeasible even at f=1", plan.Name)
	}
	fFeas := lo
	if metLo, err := evalAt(lo + 1e-9); err != nil || !m.QoS.Satisfied(metLo) {
		a, b := lo, hi
		for i := 0; i < 100; i++ {
			mid := (a + b) / 2
			met, err := evalAt(mid)
			if err != nil || !m.QoS.Satisfied(met) {
				a = mid
			} else {
				b = mid
			}
		}
		fFeas = b
	}

	// Golden-section minimization of power over [fFeas, 1].
	const invPhi = 0.6180339887498949
	a, b := fFeas, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	m1, err := evalAt(x1)
	if err != nil {
		return policy.Evaluation{}, err
	}
	m2, err := evalAt(x2)
	if err != nil {
		return policy.Evaluation{}, err
	}
	for i := 0; i < 120 && b-a > 1e-6; i++ {
		if m1.AvgPower <= m2.AvgPower {
			b, x2, m2 = x2, x1, m1
			x1 = b - invPhi*(b-a)
			m1, err = evalAt(x1)
		} else {
			a, x1, m1 = x1, x2, m2
			x2 = a + invPhi*(b-a)
			m2, err = evalAt(x2)
		}
		if err != nil {
			return policy.Evaluation{}, err
		}
	}
	f := (a + b) / 2
	met, err := evalAt(f)
	if err != nil {
		return policy.Evaluation{}, err
	}
	// Guard against non-unimodal corner cases: also consider the band ends.
	if metFeas, err := evalAt(fFeas); err == nil && metFeas.AvgPower < met.AvgPower &&
		m.QoS.Satisfied(metFeas) {
		f, met = fFeas, metFeas
	}
	if metHi.AvgPower < met.AvgPower {
		f, met = hi, metHi
	}
	if math.IsNaN(met.AvgPower) {
		return policy.Evaluation{}, errors.New("core: refinement produced NaN")
	}
	return policy.Evaluation{
		Policy:   policy.Policy{Frequency: f, Plan: plan},
		Metrics:  met,
		Feasible: m.QoS.Satisfied(met),
	}, nil
}
