package core

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/eventlog"
	"sleepscale/internal/metrics"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
)

// decideSeedSalt separates the strategy's bootstrap randomness from the
// workload seed (historically runEpochs' rand.NewSource(cfg.Seed + 0x5157)).
const decideSeedSalt = 0x5157

// DecideSeed maps a runner seed to the seed of the strategy's decision RNG.
// Every epoch driver builds its decide stream as
// rand.New(rand.NewSource(DecideSeed(cfg.Seed))) — the epoch loop's counting
// wrapper is draw-transparent — so an external driver (the fleet coordinator)
// seeding the same way reproduces the decision stream bit for bit.
func DecideSeed(seed int64) int64 { return seed + decideSeedSalt }

// countingSource is the runner's deterministic randomness source with a
// draw cursor: it counts Int63 calls so a checkpoint can record (seed,
// draws) and a restore can fast-forward a fresh source to the identical
// stream position. It deliberately implements only rand.Source (not
// Source64): rand.Rand then composes Uint64 from two Int63 draws — exactly
// what rand.NewSource's own Source64 implementation does — so a Rand over a
// countingSource is bit-identical to one over the bare source, and every
// draw advances the cursor by exactly one.
type countingSource struct {
	inner rand.Source
	seed  int64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{inner: rand.NewSource(seed), seed: seed}
}

// Int63 implements rand.Source.
func (s *countingSource) Int63() int64 {
	s.draws++
	return s.inner.Int63()
}

// Seed implements rand.Source, rewinding the cursor.
func (s *countingSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.inner.Seed(seed)
}

// skipTo fast-forwards the source to a recorded cursor position.
func (s *countingSource) skipTo(draws uint64) {
	for s.draws < draws {
		s.draws++
		s.inner.Int63()
	}
}

// FeedPredictor is the one predictor-feed path shared by the batch runners,
// the live serve loop and the fleet coordinator: it observes every realized
// slot utilization of a just-finished epoch, in slot order, and returns their
// mean — the epoch's realized utilization. All epoch drivers close epochs
// through this function (batch and live via epochLoop.closeEpoch), so the
// realized-utilization arithmetic cannot drift between them.
func FeedPredictor(p predict.Predictor, rhos []float64) (realized float64) {
	for _, rho := range rhos {
		p.Observe(rho)
		realized += rho
	}
	if len(rhos) > 0 {
		realized /= float64(len(rhos))
	}
	return realized
}

// loopConfig parameterizes the incremental epoch machine. It is
// RunnerConfig minus the trace (slots arrive incrementally) and minus the
// workload statistics (jobs arrive from outside).
type loopConfig struct {
	// SlotSeconds is the telemetry slot length in seconds.
	SlotSeconds float64
	// EpochSlots is T: slots per policy epoch.
	EpochSlots int
	// FreqExponent is the workload's β.
	FreqExponent float64
	// Profile supplies the power model.
	Profile *power.Profile
	// Predictor forecasts per-slot utilization.
	Predictor predict.Predictor
	// Strategy picks the per-epoch policy.
	Strategy Strategy
	// WindowEpochs is the job-log window depth (default 3).
	WindowEpochs int
	// Seed drives the strategy's bootstrap resampling.
	Seed int64
}

func (c *loopConfig) validate() error {
	if c.SlotSeconds <= 0 {
		return fmt.Errorf("core: slot length %g ≤ 0", c.SlotSeconds)
	}
	if c.EpochSlots < 1 {
		return fmt.Errorf("core: epoch slots %d < 1", c.EpochSlots)
	}
	if c.Predictor == nil || c.Strategy == nil {
		return fmt.Errorf("core: runner needs a predictor and a strategy")
	}
	if c.Profile == nil {
		return fmt.Errorf("core: runner needs a power profile")
	}
	return nil
}

// epochLoop is the incremental form of the §6 epoch loop: the same
// decide→serve→observe cycle as the batch runners, advanced one telemetry
// event at a time, with no materialized trace and no epoch horizon. Jobs
// are offered as they arrive (OfferJob) and realized slot utilizations as
// slots complete (OfferSlot); every EpochSlots-th slot closes an epoch and
// yields its EpochRecord. The batch runners drive the same machine from a
// trace and a job stream, so batch and live epoch accounting are one code
// path and bit-identical by construction.
//
// A job is served once the slot containing its arrival completes — the
// machine's only lookahead rule. It changes nothing observable (the engine
// runs in virtual time and the policy in force is fixed at epoch open) and
// it gives live feeds the batch runners' exact end-of-stream semantics:
// jobs arriving past the last completed slot are never served, just as the
// batch loop leaves jobs beyond the trace unread.
//
// Steady state allocates nothing: the pending ring, per-epoch job log,
// slot buffer, delay sample and the ping-pong policy-phase scratch are all
// reused across epochs.
type epochLoop struct {
	cfg     loopConfig
	backend epochBackend
	window  *eventlog.Window

	decideSrc *countingSource
	decideRng *rand.Rand

	epoch     int  // index of the epoch currently being assembled
	slot      int  // global index of the next slot to observe
	epochOpen bool // policy decided and applied for the current epoch

	curPol  policy.Policy
	curPred float64

	rhos        []float64   // realized utilizations of the open epoch's slots
	pending     []queue.Job // offered jobs not yet covered by a completed slot
	pendHead    int
	epochJobs   []queue.Job // jobs served in the open epoch, arrival order
	epochDelays metrics.Sample

	lastArrival float64 // latest offered arrival, for order validation
	jobsOffered int64
	jobsServed  int64

	lastMean, lastP95 float64
	lastJobs          int

	freqSum    float64
	planEpochs map[string]int
	prevTotals queue.Snapshot

	// phaseBuf is the ping-pong scratch behind the per-epoch policy
	// resolution: AppendConfig fills the buffer the previous epoch is NOT
	// using, because the engine still reads the old phase slice while
	// closing out the old idle schedule inside SetConfigAt.
	phaseBuf [2][]queue.SleepPhase
}

func newEpochLoop(cfg loopConfig, backend epochBackend) (*epochLoop, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("core: epoch loop needs a backend")
	}
	windowEpochs := cfg.WindowEpochs
	if windowEpochs <= 0 {
		windowEpochs = 3
	}
	window, err := eventlog.NewWindow(windowEpochs)
	if err != nil {
		return nil, err
	}
	src := newCountingSource(cfg.Seed + decideSeedSalt)
	return &epochLoop{
		cfg:        cfg,
		backend:    backend,
		window:     window,
		decideSrc:  src,
		decideRng:  rand.New(src),
		rhos:       make([]float64, 0, cfg.EpochSlots),
		planEpochs: make(map[string]int),
	}, nil
}

// openEpoch runs the top of the epoch cycle: predict, decide, resolve and
// install the policy at the epoch's start instant.
func (l *epochLoop) openEpoch() error {
	epochStart := float64(l.slot) * l.cfg.SlotSeconds
	pred := ClampRho(l.cfg.Predictor.Predict())
	pol, err := l.cfg.Strategy.Decide(DecideInput{
		PredictedUtilization: pred,
		Window:               l.window,
		LastEpochMeanDelay:   l.lastMean,
		LastEpochP95Delay:    l.lastP95,
		LastEpochJobs:        l.lastJobs,
		Rng:                  l.decideRng,
	})
	if err != nil {
		return fmt.Errorf("core: epoch %d decision: %w", l.epoch, err)
	}
	buf := &l.phaseBuf[l.epoch&1]
	qcfg, err := pol.AppendConfig(l.cfg.Profile, l.cfg.FreqExponent, (*buf)[:0])
	if err != nil {
		return fmt.Errorf("core: epoch %d policy %v: %w", l.epoch, pol, err)
	}
	*buf = qcfg.Phases // retain growth for reuse
	if err := l.backend.applyPolicy(epochStart, qcfg); err != nil {
		return fmt.Errorf("core: epoch %d switch: %w", l.epoch, err)
	}
	l.curPol, l.curPred = pol, pred
	l.epochOpen = true
	l.epochDelays.Reset()
	l.epochJobs = l.epochJobs[:0]
	l.rhos = l.rhos[:0]
	return nil
}

// OfferJob hands the machine one arriving job. Arrivals must be
// non-decreasing; the job is buffered and served once the slot containing
// its arrival completes.
func (l *epochLoop) OfferJob(j queue.Job) error {
	if j.Arrival < l.lastArrival {
		return fmt.Errorf("core: job arrival %g before previous %g", j.Arrival, l.lastArrival)
	}
	l.lastArrival = j.Arrival
	if l.pendHead > 0 && l.pendHead == len(l.pending) {
		l.pending = l.pending[:0]
		l.pendHead = 0
	}
	l.pending = append(l.pending, j)
	l.jobsOffered++
	return nil
}

// OfferSlot hands the machine one completed telemetry slot's realized
// utilization. Pending jobs the slot covers are served under the epoch's
// policy; the EpochSlots-th slot closes the epoch and returns its record
// with closed=true.
func (l *epochLoop) OfferSlot(rho float64) (rec EpochRecord, closed bool, err error) {
	if !l.epochOpen {
		if err := l.openEpoch(); err != nil {
			return EpochRecord{}, false, err
		}
	}
	slotEnd := float64(l.slot+1) * l.cfg.SlotSeconds
	for l.pendHead < len(l.pending) {
		j := l.pending[l.pendHead]
		if j.Arrival >= slotEnd {
			break
		}
		resp, err := l.backend.process(j)
		if err != nil {
			return EpochRecord{}, false, fmt.Errorf("core: epoch %d job %d: %w", l.epoch, l.jobsServed, err)
		}
		l.epochDelays.Add(resp)
		l.epochJobs = append(l.epochJobs, j)
		l.pendHead++
		l.jobsServed++
	}
	if l.pendHead == len(l.pending) {
		l.pending = l.pending[:0]
		l.pendHead = 0
	}
	l.slot++
	l.rhos = append(l.rhos, rho)
	if len(l.rhos) == l.cfg.EpochSlots {
		return l.closeEpoch(), true, nil
	}
	return EpochRecord{}, false, nil
}

// closeEpoch runs the bottom of the epoch cycle: log the epoch's jobs,
// feed the predictor, summarize delays and difference the backend totals.
func (l *epochLoop) closeEpoch() EpochRecord {
	epochStart := float64(l.slot-len(l.rhos)) * l.cfg.SlotSeconds
	epochEnd := float64(l.slot) * l.cfg.SlotSeconds
	// PushJobs logs the epoch in the window's recycled ring buffers — no
	// per-epoch slice allocations.
	l.window.PushJobs(l.epochJobs, epochStart)
	realized := FeedPredictor(l.cfg.Predictor, l.rhos)
	// The ceiling nearest-rank P95 matches the paper's epoch-budget
	// accounting (the guard keys off it).
	l.lastJobs = l.epochDelays.Count()
	l.lastMean = l.epochDelays.Mean()
	l.lastP95 = l.epochDelays.PercentileNearestRank(95)
	tot := l.backend.totalsAt(epochEnd)
	rec := EpochRecord{
		Index: l.epoch, Predicted: l.curPred, Realized: realized,
		Policy: l.curPol, Jobs: l.lastJobs, MeanDelay: l.lastMean, P95Delay: l.lastP95,
		Energy:   tot.Energy - l.prevTotals.Energy,
		BusyTime: tot.BusyTime - l.prevTotals.BusyTime,
		WakeTime: tot.WakeTime - l.prevTotals.WakeTime,
		IdleTime: tot.IdleTime - l.prevTotals.IdleTime,
	}
	l.prevTotals = tot
	l.planEpochs[l.curPol.Plan.Name]++
	l.freqSum += l.curPol.Frequency
	l.epoch++
	l.epochOpen = false
	return rec
}

// FinishEpoch closes a partially-filled final epoch at the end of the
// telemetry stream: if any slots are buffered the epoch closes short, just
// as the batch loop's last epoch covers only the trace's remaining slots.
// Pending jobs not covered by a completed slot are never served, matching
// the batch semantics of leaving jobs beyond the trace unread.
func (l *epochLoop) FinishEpoch() (rec EpochRecord, closed bool, err error) {
	if !l.epochOpen {
		return EpochRecord{}, false, nil
	}
	if len(l.rhos) == 0 {
		// An epoch opened by a job offer alone cannot exist (openEpoch
		// only runs from OfferSlot), so an open epoch always has slots.
		l.epochOpen = false
		return EpochRecord{}, false, nil
	}
	return l.closeEpoch(), true, nil
}

// atBoundary reports whether the machine sits exactly on an epoch boundary
// — no epoch open, no slots buffered — the only instants at which its
// state is checkpointable.
func (l *epochLoop) atBoundary() bool { return !l.epochOpen }

// duration is the simulated span covered by completed slots.
func (l *epochLoop) duration() float64 { return float64(l.slot) * l.cfg.SlotSeconds }

// fillReport folds the machine's whole-run aggregates into a report.
func (l *epochLoop) fillReport(report *RunReport) {
	if l.epoch > 0 {
		report.MeanFrequency = l.freqSum / float64(l.epoch)
	}
	if report.PlanEpochs == nil {
		report.PlanEpochs = make(map[string]int, len(l.planEpochs))
	}
	for name, n := range l.planEpochs {
		report.PlanEpochs[name] += n
	}
}
