package core

import (
	"sleepscale/internal/colstore"
)

// EpochLogSchema returns the column-file schema per-epoch run logs use: one
// row per decision epoch. The "plan" column stores dictionary ids of sleep
// plan names (Schema.Dict resolves them); everything else is the
// EpochRecord scalar of the same name.
func EpochLogSchema() colstore.Schema {
	return colstore.Schema{
		Kind: colstore.KindEpochs,
		Cols: []string{
			"epoch", "predicted", "realized", "frequency", "plan",
			"jobs", "mean_delay", "p95_delay", "energy", "busy", "wake", "idle",
		},
	}
}

// WriteEpochLog appends a run's per-epoch records to the column file at
// path, creating it if absent — append-only, so a daemon restarting across
// runs keeps one growing log (epoch indices restart per run; group or
// filter on them per ingest if that matters). Aggregations over the result
// are cmd/colq's job: per-epoch mean energy, plan residency, delay tails.
func WriteEpochLog(path string, epochs []EpochRecord) error {
	w, err := colstore.Append(path, EpochLogSchema())
	if err != nil {
		return err
	}
	row := make([]float64, 12)
	for _, rec := range epochs {
		row[0] = float64(rec.Index)
		row[1] = rec.Predicted
		row[2] = rec.Realized
		row[3] = rec.Policy.Frequency
		row[4] = w.DictID(rec.Policy.Plan.Name)
		row[5] = float64(rec.Jobs)
		row[6] = rec.MeanDelay
		row[7] = rec.P95Delay
		row[8] = rec.Energy
		row[9] = rec.BusyTime
		row[10] = rec.WakeTime
		row[11] = rec.IdleTime
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
