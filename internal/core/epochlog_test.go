package core

import (
	"math"
	"path/filepath"
	"testing"

	"sleepscale/internal/colstore"
	"sleepscale/internal/farm"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/stream"
)

// TestEpochEnergySumsToReportEnergy pins the per-epoch accounting: epoch
// energy (and busy/wake/idle) deltas sum to the closed-out report's totals,
// for a strategy that switches policies so boundaries land in idle periods
// under changing phase schedules.
func TestEpochEnergySumsToReportEnergy(t *testing.T) {
	plans := []policy.Policy{
		{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
		{Frequency: 0.6, Plan: policy.SingleState(power.DeeperSleep)},
	}
	tr := shortTrace(12, 0.2)
	rep, err := Run(runnerConfig(t, &switchingStrategy{plans: plans}, tr, 3))
	if err != nil {
		t.Fatal(err)
	}
	var energy, busy, wake, idle float64
	var jobs int
	for _, e := range rep.Epochs {
		energy += e.Energy
		busy += e.BusyTime
		wake += e.WakeTime
		idle += e.IdleTime
		jobs += e.Jobs
		if e.Jobs > 0 && e.P95Delay < e.MeanDelay*0.5 {
			t.Fatalf("epoch %d p95 %g implausibly below mean %g", e.Index, e.P95Delay, e.MeanDelay)
		}
	}
	// The final Finish may bill trailing idle past the last epoch boundary
	// only when backlog runs past the trace end; with the boundary at trace
	// end, the sums must match the report exactly up to float summation.
	if math.Abs(energy-rep.Energy) > 1e-6*rep.Energy {
		t.Fatalf("epoch energies sum to %g, report says %g", energy, rep.Energy)
	}
	if jobs != rep.Jobs {
		t.Fatalf("epoch jobs sum to %d, report says %d", jobs, rep.Jobs)
	}
	if busy+wake+idle <= 0 {
		t.Fatal("no time accounted")
	}
}

// TestFarmEpochEnergySumsToReportEnergy is the farm analogue at k = 3: epoch
// deltas sum the whole fleet's counters.
func TestFarmEpochEnergySumsToReportEnergy(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(12, 0.4)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 3)
	src, err := cfg.Stats.NewTraceGen(tr.Utilization, tr.SlotSeconds, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFarmSource(cfg, 3, farm.JSQ{}, src)
	if err != nil {
		t.Fatal(err)
	}
	var energy float64
	for _, e := range rep.Epochs {
		energy += e.Energy
	}
	if math.Abs(energy-rep.Energy) > 1e-6*rep.Energy {
		t.Fatalf("farm epoch energies sum to %g, report says %g", energy, rep.Energy)
	}
}

// TestEpochLogRoundTrip pins WriteEpochLog: records come back through the
// column reader bit-exactly, plan names resolve through the dictionary, and
// a second run appends.
func TestEpochLogRoundTrip(t *testing.T) {
	plans := []policy.Policy{
		{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
		{Frequency: 0.7, Plan: policy.SingleState(power.DeeperSleep)},
	}
	tr := shortTrace(12, 0.3)
	rep, err := Run(runnerConfig(t, &switchingStrategy{plans: plans}, tr, 3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "epochs.col")
	if err := WriteEpochLog(path, rep.Epochs); err != nil {
		t.Fatal(err)
	}

	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != len(rep.Epochs) {
		t.Fatalf("log has %d rows, want %d", r.Rows(), len(rep.Epochs))
	}
	s := r.Schema()
	energyCol := s.ColIndex("energy")
	planCol := s.ColIndex("plan")
	if energyCol < 0 || planCol < 0 {
		t.Fatalf("schema missing columns: %v", s.Cols)
	}
	var energies, planIDs []float64
	for b := 0; b < r.NumBlocks(); b++ {
		ev, err := r.Col(b, energyCol, nil)
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, ev...)
		pv, err := r.Col(b, planCol, nil)
		if err != nil {
			t.Fatal(err)
		}
		planIDs = append(planIDs, pv...)
	}
	for i, e := range rep.Epochs {
		if math.Float64bits(energies[i]) != math.Float64bits(e.Energy) {
			t.Fatalf("epoch %d energy %v != %v", i, energies[i], e.Energy)
		}
		if got := s.Dict[int(planIDs[i])]; got != e.Policy.Plan.Name {
			t.Fatalf("epoch %d plan %q != %q", i, got, e.Policy.Plan.Name)
		}
	}

	// Per-epoch mean energy through the query engine — the colq use case.
	res, err := colstore.Query{Col: "energy", Op: colstore.Mean, GroupBy: "epoch"}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != len(rep.Epochs) {
		t.Fatalf("query found %d epochs, want %d", len(res.Groups), len(rep.Epochs))
	}
	r.Close()

	// Appending a second run grows the same file.
	if err := WriteEpochLog(path, rep.Epochs); err != nil {
		t.Fatal(err)
	}
	r2, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Rows() != 2*len(rep.Epochs) {
		t.Fatalf("after append: %d rows, want %d", r2.Rows(), 2*len(rep.Epochs))
	}
}

// TestRunWithEventTee pins the eventlog tee path end to end: RunSource with
// a teed window is not part of the runner API, so this exercises the
// stream-recording analogue — record the trace-driven stream, replay it
// through the runner, and check both runs agree bit-for-bit.
func TestRunWithRecordedJobsMatchesLive(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(12, 0.3)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 3)

	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	src, err := cfg.Stats.NewTraceGen(tr.Utilization, tr.SlotSeconds, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "jobs.col")
	w, err := colstore.Create(path, stream.JobsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.RecordJobs(src, w.Writer); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replaySrc, err := stream.NewColJobs(r)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh config: the predictor is stateful and the live run fed it.
	cfg2 := runnerConfig(t, &staticStrategy{pol: pol}, tr, 3)
	replay, err := RunSource(cfg2, replaySrc)
	if err != nil {
		t.Fatal(err)
	}
	requireReportsIdentical(t, replay, live)
}
