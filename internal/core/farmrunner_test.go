package core

import (
	"math"
	"testing"

	"sleepscale/internal/farm"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/stream"
)

// farmSource builds a reproducible trace-driven source for farm-runner
// tests, reset to seed before use.
func farmSource(t *testing.T, cfg RunnerConfig) stream.Source {
	t.Helper()
	src, err := cfg.Stats.NewTraceGen(cfg.Trace.Utilization, cfg.Trace.SlotSeconds, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestRunFarmSourceBasics(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(20, 0.6)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 5)
	rep, err := RunFarmSource(cfg, 3, &farm.RoundRobin{}, farmSource(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	if rep.Servers != 3 || rep.Dispatcher != "round-robin" {
		t.Errorf("report identifies %d servers / %q", rep.Servers, rep.Dispatcher)
	}
	if len(rep.Epochs) != 4 {
		t.Errorf("epochs = %d, want 4", len(rep.Epochs))
	}
	if len(rep.PerServer) != 3 || len(rep.JobShare) != 3 {
		t.Fatalf("per-server shape: %d results, %d shares", len(rep.PerServer), len(rep.JobShare))
	}
	var share, jobs float64
	for s := range rep.PerServer {
		share += rep.JobShare[s]
		jobs += float64(rep.PerServer[s].Jobs)
	}
	if math.Abs(share-1) > 1e-12 {
		t.Errorf("job shares sum to %v, want 1", share)
	}
	if int(jobs) != rep.Jobs {
		t.Errorf("per-server jobs sum %v != total %d", jobs, rep.Jobs)
	}
	// Cluster power is the sum of per-server draws: more than one idle
	// server's worth, and the report's AvgPower must be that total.
	var total float64
	for _, sr := range rep.PerServer {
		total += sr.AvgPower
	}
	if math.Abs(total-rep.AvgPower) > 1e-9 {
		t.Errorf("AvgPower %v != per-server sum %v", rep.AvgPower, total)
	}
}

// TestRunFarmSourceK1MatchesRunSource anchors the farm epoch runner to the
// single-server runner: with one server, any dispatcher degenerates to the
// same engine fed the same jobs under the same per-epoch switches, so every
// aggregate must match RunSource bit for bit.
func TestRunFarmSourceK1MatchesRunSource(t *testing.T) {
	pols := []policy.Policy{
		{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)},
		{Frequency: 0.7, Plan: policy.SingleState(power.Sleep)},
	}
	tr := shortTrace(24, 0.5)
	cfg := runnerConfig(t, &switchingStrategy{plans: pols}, tr, 4)
	want, err := RunSource(cfg, farmSource(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := runnerConfig(t, &switchingStrategy{plans: pols}, tr, 4)
	got, err := RunFarmSource(cfg2, 1, farm.JSQ{}, farmSource(t, cfg2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
		got.P95Response != want.P95Response || got.AvgPower != want.AvgPower ||
		got.Energy != want.Energy || got.Duration != want.Duration ||
		got.MeanFrequency != want.MeanFrequency {
		t.Fatalf("k=1 farm run diverges from RunSource:\n got %+v\nwant %+v", got.RunReport, want)
	}
	if len(got.Epochs) != len(want.Epochs) {
		t.Fatalf("epoch counts diverge: %d vs %d", len(got.Epochs), len(want.Epochs))
	}
	for e := range got.Epochs {
		g, w := got.Epochs[e], want.Epochs[e]
		if g.Index != w.Index || g.Predicted != w.Predicted || g.Realized != w.Realized ||
			g.Jobs != w.Jobs || g.MeanDelay != w.MeanDelay || g.Policy.Frequency != w.Policy.Frequency {
			t.Fatalf("epoch %d diverges:\n got %+v\nwant %+v", e, g, w)
		}
	}
}

// TestRunFarmSourceScaleOutSpreadsLoad: with JSQ over more servers, the
// same aggregate stream must yield a lower mean response while total power
// grows sub-linearly (idle servers sleep) — the §7 scale-out story through
// the epoch runner.
func TestRunFarmSourceScaleOutSpreadsLoad(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(20, 0.8)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 5)
	one, err := RunFarmSource(cfg, 1, farm.JSQ{}, farmSource(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunFarmSource(cfg, 4, farm.JSQ{}, farmSource(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if four.MeanResponse >= one.MeanResponse {
		t.Errorf("scale-out did not improve response: %v vs %v", four.MeanResponse, one.MeanResponse)
	}
	if four.AvgPower >= 4*one.AvgPower {
		t.Errorf("4 servers draw %v W ≥ 4× one server's %v W — sleep not exploited", four.AvgPower, one.AvgPower)
	}
}

func TestRunFarmSourceValidation(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(10, 0.3)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 5)
	src := farmSource(t, cfg)
	if _, err := RunFarmSource(cfg, 0, farm.JSQ{}, src); err == nil {
		t.Error("farm size 0 accepted")
	}
	if _, err := RunFarmSource(cfg, 2, nil, src); err == nil {
		t.Error("nil dispatcher accepted")
	}
	if _, err := RunFarmSource(cfg, 2, farm.JSQ{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	bad := cfg
	bad.EpochSlots = 0
	if _, err := RunFarmSource(bad, 2, farm.JSQ{}, src); err == nil {
		t.Error("invalid runner config accepted")
	}
}
