package core

import (
	"encoding"
	"fmt"
	"sort"

	"sleepscale/internal/eventlog"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
)

// LiveConfig configures a LiveRunner: a RunnerConfig minus the trace and the
// generating workload — in live mode both jobs and telemetry slots arrive
// from outside, unbounded.
type LiveConfig struct {
	// SlotSeconds is the telemetry slot length in seconds.
	SlotSeconds float64
	// EpochSlots is T: slots per policy epoch.
	EpochSlots int
	// FreqExponent is the workload's β.
	FreqExponent float64
	// Profile supplies the power model.
	Profile *power.Profile
	// Predictor forecasts per-slot utilization. It must implement
	// encoding.BinaryMarshaler/Unmarshaler for State/Restore to work (all
	// predictors in internal/predict do).
	Predictor predict.Predictor
	// Strategy picks the per-epoch policy.
	Strategy Strategy
	// WindowEpochs is the job-log window depth (default 3).
	WindowEpochs int
	// Seed drives the strategy's bootstrap resampling.
	Seed int64
	// RetainResponses keeps the raw per-job response sample for whole-run
	// percentiles. Off (the default, and the serve daemon's mode) the
	// engine folds responses into streaming moments only — O(1) memory over
	// an unbounded run; Finish then reports exact counts, means and energy
	// but zero whole-run percentiles (per-epoch P95s are unaffected).
	RetainResponses bool
}

func (c LiveConfig) loopConfig() loopConfig {
	return loopConfig{
		SlotSeconds:  c.SlotSeconds,
		EpochSlots:   c.EpochSlots,
		FreqExponent: c.FreqExponent,
		Profile:      c.Profile,
		Predictor:    c.Predictor,
		Strategy:     c.Strategy,
		WindowEpochs: c.WindowEpochs,
		Seed:         c.Seed,
	}
}

func (c LiveConfig) windowEpochs() int {
	if c.WindowEpochs <= 0 {
		return 3
	}
	return c.WindowEpochs
}

// LiveRunner is the live-serving form of the §6 runner: the same epoch
// machine the batch runners replay traces through, driven one event at a
// time. Offer jobs as they arrive and realized slot utilizations as slots
// complete; every EpochSlots-th slot closes an epoch — predict, decide,
// switch policy, serve, observe — and yields its EpochRecord. The loop is
// allocation-free at steady state and holds O(pending + one epoch) memory
// however long it runs.
//
// Determinism contract: a LiveRunner fed the jobs and slots of a batch run's
// trace produces bit-identical epoch records to Run/RunSource (they share
// the machine), and a runner restored from State continues bit-identically
// to one that never stopped.
type LiveRunner struct {
	cfg     LiveConfig
	loop    *epochLoop
	backend *engineBackend
}

// NewLiveRunner validates cfg and returns a runner positioned before the
// first slot.
func NewLiveRunner(cfg LiveConfig) (*LiveRunner, error) {
	backend := &engineBackend{discardResponses: !cfg.RetainResponses}
	loop, err := newEpochLoop(cfg.loopConfig(), backend)
	if err != nil {
		return nil, err
	}
	return &LiveRunner{cfg: cfg, loop: loop, backend: backend}, nil
}

// OfferJob hands the runner one arriving job. Arrivals must be
// non-decreasing; the job is served once the slot containing its arrival
// completes.
func (r *LiveRunner) OfferJob(j queue.Job) error { return r.loop.OfferJob(j) }

// OfferSlot hands the runner one completed telemetry slot's realized
// utilization; closed reports whether the slot completed an epoch, in which
// case rec is its record.
func (r *LiveRunner) OfferSlot(rho float64) (rec EpochRecord, closed bool, err error) {
	return r.loop.OfferSlot(rho)
}

// Epoch is the index of the epoch currently being assembled.
func (r *LiveRunner) Epoch() int { return r.loop.epoch }

// Slot is the global index of the next telemetry slot.
func (r *LiveRunner) Slot() int { return r.loop.slot }

// JobsOffered counts jobs ever offered; JobsServed counts those served.
func (r *LiveRunner) JobsOffered() int64 { return r.loop.jobsOffered }

// JobsServed counts jobs served so far.
func (r *LiveRunner) JobsServed() int64 { return r.loop.jobsServed }

// AtBoundary reports whether the runner sits exactly on an epoch boundary —
// the only instants at which State may be captured.
func (r *LiveRunner) AtBoundary() bool { return r.loop.atBoundary() }

// Duration is the simulated span covered by completed slots, seconds.
func (r *LiveRunner) Duration() float64 { return r.loop.duration() }

// Finish ends the stream: a partially-filled final epoch is closed short
// (rec/closed, exactly as a batch run's last epoch covers only the trace's
// remaining slots), the engine is finalized at the last completed slot
// boundary, and the whole-run aggregate is returned. Pending jobs not
// covered by a completed slot are never served, matching the batch
// semantics of leaving jobs beyond the trace unread.
func (r *LiveRunner) Finish() (rec EpochRecord, closed bool, report RunReport, err error) {
	rec, closed, err = r.loop.FinishEpoch()
	if err != nil {
		return EpochRecord{}, false, RunReport{}, err
	}
	report = RunReport{
		Strategy:   r.cfg.Strategy.Name(),
		Predictor:  r.cfg.Predictor.Name(),
		PlanEpochs: make(map[string]int),
	}
	r.loop.fillReport(&report)
	if r.backend.eng == nil {
		return rec, closed, report, nil
	}
	res, err := r.backend.eng.Finish(r.loop.duration())
	if err != nil {
		return EpochRecord{}, false, RunReport{}, err
	}
	report.Jobs = res.Jobs
	report.MeanResponse = res.MeanResponse
	report.P95Response = res.ResponseP95
	report.AvgPower = res.AvgPower
	report.Energy = res.Energy
	report.Duration = res.Duration
	return rec, closed, report, nil
}

// LivePhase is one serialized sleep-plan phase of the policy in force.
type LivePhase struct {
	// CPU and Platform are the power.CPUState/PlatformState enum values.
	CPU, Platform int
	// Enter is τ in seconds.
	Enter float64
}

// LiveState is the complete resumable state of a LiveRunner, captured at an
// epoch boundary. All fields are plain exported values (the predictor is a
// self-describing binary blob), so any codec can persist it; RestoreLiveRunner
// rebuilds a runner that continues bit-identically — same decisions, same
// engine billing, same epoch records — under the same LiveConfig. Runner
// configuration is deliberately not part of the state: a checkpoint is
// restored into a runner built from the same config that produced it.
type LiveState struct {
	// Epoch and Slot position the run; Slot is always Epoch*EpochSlots at a
	// boundary.
	Epoch, Slot int
	// LastArrival is the latest offered arrival, for order validation.
	LastArrival float64
	// JobsOffered and JobsServed are the lifetime job counts.
	JobsOffered, JobsServed int64
	// Pending holds offered jobs not yet covered by a completed slot.
	Pending []queue.Job
	// LastMean, LastP95 and LastJobs summarize the epoch just closed.
	LastMean, LastP95 float64
	LastJobs          int
	// FreqSum accumulates selected frequencies for MeanFrequency.
	FreqSum float64
	// PlanNames/PlanCounts are the per-plan epoch counts, name-sorted.
	PlanNames  []string
	PlanCounts []int64
	// RngDraws is the decision RNG's cursor: the number of draws consumed.
	RngDraws uint64
	// Predictor is the predictor's MarshalBinary blob.
	Predictor []byte
	// Window is the job-log window contents.
	Window eventlog.WindowState
	// HasEngine is false only before the first epoch ever opened.
	HasEngine bool
	// CurFrequency and CurPlanName/CurPhases serialize the policy in force,
	// from which the engine's configuration is re-derived on restore.
	CurFrequency float64
	CurPlanName  string
	CurPhases    []LivePhase
	// Engine is the queue engine's resumable state.
	Engine queue.EngineState
	// PrevTotals is the running-total baseline for epoch deltas.
	PrevTotals queue.Snapshot
}

// State captures the runner's resumable state. It fails unless the runner
// sits on an epoch boundary (no epoch open) and the predictor implements
// encoding.BinaryMarshaler. The runner is not mutated; the returned state
// shares no memory with it.
func (r *LiveRunner) State() (*LiveState, error) {
	l := r.loop
	if !l.atBoundary() {
		return nil, fmt.Errorf("core: live state: epoch %d open (%d/%d slots); state is only capturable at epoch boundaries",
			l.epoch, len(l.rhos), l.cfg.EpochSlots)
	}
	bm, ok := r.cfg.Predictor.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: predictor %s is not checkpointable", r.cfg.Predictor.Name())
	}
	blob, err := bm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st := &LiveState{
		Epoch:       l.epoch,
		Slot:        l.slot,
		LastArrival: l.lastArrival,
		JobsOffered: l.jobsOffered,
		JobsServed:  l.jobsServed,
		Pending:     append([]queue.Job(nil), l.pending[l.pendHead:]...),
		LastMean:    l.lastMean,
		LastP95:     l.lastP95,
		LastJobs:    l.lastJobs,
		FreqSum:     l.freqSum,
		RngDraws:    l.decideSrc.draws,
		Predictor:   blob,
		Window:      l.window.State(),
		PrevTotals:  l.prevTotals,
	}
	for name := range l.planEpochs {
		st.PlanNames = append(st.PlanNames, name)
	}
	sort.Strings(st.PlanNames)
	for _, name := range st.PlanNames {
		st.PlanCounts = append(st.PlanCounts, int64(l.planEpochs[name]))
	}
	if r.backend.eng != nil {
		st.HasEngine = true
		st.CurFrequency = l.curPol.Frequency
		st.CurPlanName = l.curPol.Plan.Name
		for _, ph := range l.curPol.Plan.Phases {
			st.CurPhases = append(st.CurPhases, LivePhase{
				CPU: int(ph.State.CPU), Platform: int(ph.State.Platform), Enter: ph.Enter,
			})
		}
		st.Engine = r.backend.eng.State()
	}
	return st, nil
}

// RestoreLiveRunner rebuilds a runner from a captured state under cfg, which
// must be the configuration that produced the state (same predictor and
// strategy construction, same seed, same slot geometry). The restored runner
// continues bit-identically to the original: every subsequent OfferJob,
// OfferSlot, State and Finish behaves exactly as the uninterrupted runner's
// would. Malformed state returns an error, never panics.
func RestoreLiveRunner(cfg LiveConfig, st *LiveState) (*LiveRunner, error) {
	r, err := NewLiveRunner(cfg)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("core: restore: nil state")
	}
	if st.Epoch < 0 || st.Slot != st.Epoch*cfg.EpochSlots {
		return nil, fmt.Errorf("core: restore: slot %d not the boundary of epoch %d (T=%d)",
			st.Slot, st.Epoch, cfg.EpochSlots)
	}
	if len(st.PlanNames) != len(st.PlanCounts) {
		return nil, fmt.Errorf("core: restore: %d plan names, %d counts", len(st.PlanNames), len(st.PlanCounts))
	}
	if st.Window.Capacity != cfg.windowEpochs() {
		return nil, fmt.Errorf("core: restore: window capacity %d, config wants %d",
			st.Window.Capacity, cfg.windowEpochs())
	}
	bu, ok := cfg.Predictor.(encoding.BinaryUnmarshaler)
	if !ok {
		return nil, fmt.Errorf("core: predictor %s is not checkpointable", cfg.Predictor.Name())
	}
	if err := bu.UnmarshalBinary(st.Predictor); err != nil {
		return nil, err
	}
	window, err := eventlog.RestoreWindow(st.Window)
	if err != nil {
		return nil, err
	}
	l := r.loop
	l.window = window
	l.decideSrc.skipTo(st.RngDraws)
	l.epoch, l.slot = st.Epoch, st.Slot
	l.lastArrival = st.LastArrival
	l.jobsOffered, l.jobsServed = st.JobsOffered, st.JobsServed
	l.pending = append(l.pending[:0], st.Pending...)
	l.pendHead = 0
	l.lastMean, l.lastP95, l.lastJobs = st.LastMean, st.LastP95, st.LastJobs
	l.freqSum = st.FreqSum
	for i, name := range st.PlanNames {
		l.planEpochs[name] = int(st.PlanCounts[i])
	}
	l.prevTotals = st.PrevTotals
	if st.HasEngine {
		pol := policy.Policy{
			Frequency: st.CurFrequency,
			Plan:      policy.SleepPlan{Name: st.CurPlanName},
		}
		for _, ph := range st.CurPhases {
			pol.Plan.Phases = append(pol.Plan.Phases, policy.PlanPhase{
				State: power.State{CPU: power.CPUState(ph.CPU), Platform: power.PlatformState(ph.Platform)},
				Enter: ph.Enter,
			})
		}
		// AppendConfig re-derives the engine configuration in force;
		// RestoreEngine deep-copies its phases, so no scratch aliasing.
		qcfg, err := pol.AppendConfig(cfg.Profile, cfg.FreqExponent, nil)
		if err != nil {
			return nil, fmt.Errorf("core: restore: policy in force: %w", err)
		}
		eng, err := queue.RestoreEngine(qcfg, st.Engine)
		if err != nil {
			return nil, err
		}
		r.backend.eng = eng
		l.curPol = pol
	}
	return r, nil
}
