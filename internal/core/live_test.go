package core

import (
	"math/rand"
	"reflect"
	"testing"

	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// liveFixture materializes the golden trace's job stream once so live tests
// can slice it at arbitrary slot boundaries.
func liveFixture(t *testing.T) (*trace.Trace, []queue.Job) {
	t.Helper()
	tr := goldenTrace(t)
	cfg := runnerConfig(t, &staticStrategy{}, tr, 5)
	jobs := cfg.Stats.TraceJobs(tr.Utilization, tr.SlotSeconds,
		rand.New(rand.NewSource(cfg.Seed)))
	if len(jobs) == 0 {
		t.Fatal("no jobs in fixture stream")
	}
	return tr, jobs
}

func liveConfig(t *testing.T, strat Strategy, pred predict.Predictor, seed int64, epochSlots int) LiveConfig {
	t.Helper()
	return LiveConfig{
		SlotSeconds:     60,
		EpochSlots:      epochSlots,
		FreqExponent:    1,
		Profile:         power.Xeon(),
		Predictor:       pred,
		Strategy:        strat,
		Seed:            seed,
		RetainResponses: true,
	}
}

// driveLive feeds jobs and slots [fromSlot, len(util)) into r in arrival
// order — the same interleaving the batch cursor produces — and returns the
// epoch records emitted. jobIdx tracks how many jobs have been offered so a
// restored runner resumes at the right position.
func driveLive(t *testing.T, r *LiveRunner, util []float64, jobs []queue.Job, fromSlot int, jobIdx int, stopSlot int) (recs []EpochRecord, nextJob int) {
	t.Helper()
	for s := fromSlot; s < stopSlot; s++ {
		slotEnd := float64(s+1) * 60
		for jobIdx < len(jobs) && jobs[jobIdx].Arrival < slotEnd {
			if err := r.OfferJob(jobs[jobIdx]); err != nil {
				t.Fatal(err)
			}
			jobIdx++
		}
		rec, closed, err := r.OfferSlot(util[s])
		if err != nil {
			t.Fatal(err)
		}
		if closed {
			recs = append(recs, rec)
		}
	}
	return recs, jobIdx
}

// TestLiveMatchesBatch is the tentpole's first contract: a LiveRunner fed a
// batch run's jobs and slots incrementally produces bit-identical epoch
// records and aggregates — batch and live share one epoch machine.
func TestLiveMatchesBatch(t *testing.T) {
	tr, jobs := liveFixture(t)
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	strategies := map[string]func() Strategy{
		"static": func() Strategy {
			return &staticStrategy{pol: policy.Policy{
				Frequency: 0.7, Plan: policy.SingleState(power.DeepSleep)}}
		},
		"switching": func() Strategy {
			return &switchingStrategy{plans: []policy.Policy{
				{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
				{Frequency: 0.6, Plan: policy.SingleState(power.DeeperSleep)},
			}}
		},
		// The manager-backed strategy consults the window and draws from the
		// decision RNG, so this case pins the full decision-state plumbing.
		"manager": func() Strategy {
			return &managerStrategyForTest{m: &Manager{
				Profile:      power.Xeon(),
				FreqExponent: 1,
				Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
				QoS:          qos,
			}, evalJobs: 200}
		},
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			cfg := runnerConfig(t, mk(), tr, 5)
			want, err := RunSource(cfg, sliceSource(jobs))
			if err != nil {
				t.Fatal(err)
			}

			live, err := NewLiveRunner(liveConfig(t, mk(), predict.NewNaivePrevious(), cfg.Seed, 5))
			if err != nil {
				t.Fatal(err)
			}
			recs, _ := driveLive(t, live, tr.Utilization, jobs, 0, 0, tr.Len())
			rec, closed, got, err := live.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if closed {
				recs = append(recs, rec)
			}
			got.Epochs = recs
			requireReportsIdentical(t, got, want)
		})
	}
}

// sliceSource adapts a job slice for RunSource without importing stream in
// this file (stream.Slice exists; re-wrapping keeps the fixture local).
type sliceJobs struct {
	jobs []queue.Job
	pos  int
}

func sliceSource(jobs []queue.Job) *sliceJobs { return &sliceJobs{jobs: jobs} }

func (s *sliceJobs) Next(buf []queue.Job) (int, bool) {
	n := copy(buf, s.jobs[s.pos:])
	s.pos += n
	return n, s.pos < len(s.jobs)
}
func (s *sliceJobs) Reset(int64) { s.pos = 0 }

// TestLiveFinishWithPartialEpoch pins the short-final-epoch semantics: a
// live feed ending mid-epoch closes the epoch over its completed slots,
// exactly as a batch run over the same shortened trace would.
func TestLiveFinishWithPartialEpoch(t *testing.T) {
	tr, jobs := liveFixture(t)
	nSlots := tr.Len() - 2 // not a multiple of 5: final epoch holds 3 slots
	short := &trace.Trace{Name: "short", SlotSeconds: 60, Utilization: tr.Utilization[:nSlots]}
	pol := policy.Policy{Frequency: 0.7, Plan: policy.SingleState(power.DeepSleep)}

	cfg := runnerConfig(t, &staticStrategy{pol: pol}, short, 5)
	want, err := RunSource(cfg, sliceSource(jobs))
	if err != nil {
		t.Fatal(err)
	}

	live, err := NewLiveRunner(liveConfig(t, &staticStrategy{pol: pol}, predict.NewNaivePrevious(), cfg.Seed, 5))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := driveLive(t, live, short.Utilization, jobs, 0, 0, nSlots)
	rec, closed, got, err := live.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("partial final epoch not closed")
	}
	recs = append(recs, rec)
	got.Epochs = recs
	requireReportsIdentical(t, got, want)
}

// TestLiveRestoreEquivalence is the tentpole's durability contract: capture
// State at an epoch boundary, abandon the runner mid-epoch ("kill"), restore
// into a fresh runner and continue — the stitched record sequence and final
// aggregates must be bit-identical to an uninterrupted run, across seeds and
// checkpoint intervals.
func TestLiveRestoreEquivalence(t *testing.T) {
	tr, _ := liveFixture(t)
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	mkStrategy := func() Strategy {
		return &managerStrategyForTest{m: &Manager{
			Profile:      power.Xeon(),
			FreqExponent: 1,
			Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
			QoS:          qos,
		}, evalJobs: 200}
	}
	mkPredictor := func() predict.Predictor {
		lms, err := predict.NewLMS(4, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return lms
	}
	// Restore runs in the serve daemon's discard-responses mode: EngineState
	// carries responses as streaming moments only, so whole-run percentiles
	// are excluded from the restore contract (per-epoch P95s are exact).
	mkConfig := func(seed int64) LiveConfig {
		cfg := liveConfig(t, mkStrategy(), mkPredictor(), seed, 5)
		cfg.RetainResponses = false
		return cfg
	}

	for _, seed := range []int64{1, 42} {
		for _, everyEpochs := range []int{2, 5} {
			t.Run("", func(t *testing.T) {
				st := runnerConfig(t, &staticStrategy{}, tr, 5).Stats
				jobs := st.TraceJobs(tr.Utilization, tr.SlotSeconds,
					rand.New(rand.NewSource(seed)))

				// Uninterrupted reference.
				ref, err := NewLiveRunner(mkConfig(seed))
				if err != nil {
					t.Fatal(err)
				}
				wantRecs, _ := driveLive(t, ref, tr.Utilization, jobs, 0, 0, tr.Len())
				_, _, wantRep, err := ref.Finish()
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: checkpoint at every everyEpochs-th
				// boundary, kill mid-epoch past the second checkpoint.
				victim, err := NewLiveRunner(mkConfig(seed))
				if err != nil {
					t.Fatal(err)
				}
				var snap *LiveState
				var snapJobIdx int
				var kept []EpochRecord
				jobIdx := 0
				killSlot := everyEpochs*2*5 + 3 // mid-epoch, past two checkpoints
				for s := 0; s < killSlot; s++ {
					slotEnd := float64(s+1) * 60
					for jobIdx < len(jobs) && jobs[jobIdx].Arrival < slotEnd {
						if err := victim.OfferJob(jobs[jobIdx]); err != nil {
							t.Fatal(err)
						}
						jobIdx++
					}
					rec, closed, err := victim.OfferSlot(tr.Utilization[s])
					if err != nil {
						t.Fatal(err)
					}
					if closed {
						kept = append(kept, rec)
						if victim.Epoch()%everyEpochs == 0 {
							snap, err = victim.State()
							if err != nil {
								t.Fatal(err)
							}
							snapJobIdx = jobIdx
						}
					}
				}
				if snap == nil {
					t.Fatal("no checkpoint captured before kill")
				}
				// The kill discards everything after the last checkpoint.
				kept = kept[:snap.Epoch]

				restored, err := RestoreLiveRunner(mkConfig(seed), snap)
				if err != nil {
					t.Fatal(err)
				}
				tail, _ := driveLive(t, restored, tr.Utilization, jobs, snap.Slot, snapJobIdx, tr.Len())
				_, _, gotRep, err := restored.Finish()
				if err != nil {
					t.Fatal(err)
				}
				gotRecs := append(kept, tail...)

				if len(gotRecs) != len(wantRecs) {
					t.Fatalf("stitched epochs %d, want %d", len(gotRecs), len(wantRecs))
				}
				for i := range gotRecs {
					if !reflect.DeepEqual(gotRecs[i], wantRecs[i]) {
						t.Fatalf("epoch %d diverges after restore:\n got %+v\nwant %+v",
							i, gotRecs[i], wantRecs[i])
					}
				}
				gotRep.Epochs, wantRep.Epochs = gotRecs, wantRecs
				requireReportsIdentical(t, gotRep, wantRep)
			})
		}
	}
}

// TestLiveRestorePendingJobs pins that jobs offered past the last completed
// slot survive a checkpoint: the restored runner serves them, bit-identical.
func TestLiveRestorePendingJobs(t *testing.T) {
	pol := policy.Policy{Frequency: 0.8, Plan: policy.SingleState(power.DeepSleep)}
	mk := func() (*LiveRunner, error) {
		cfg := liveConfig(t, &staticStrategy{pol: pol}, predict.NewNaivePrevious(), 7, 2)
		cfg.RetainResponses = false
		return NewLiveRunner(cfg)
	}
	jobs := []queue.Job{
		{Arrival: 10, Size: 0.5}, {Arrival: 70, Size: 0.5},
		{Arrival: 130, Size: 0.5}, {Arrival: 150, Size: 0.5}, {Arrival: 200, Size: 0.5},
	}
	util := []float64{0.3, 0.3, 0.3, 0.3}

	ref, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	var wantRecs []EpochRecord
	for _, j := range jobs { // offer everything up front: all beyond slot 0
		if err := ref.OfferJob(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, rho := range util {
		rec, closed, err := ref.OfferSlot(rho)
		if err != nil {
			t.Fatal(err)
		}
		if closed {
			wantRecs = append(wantRecs, rec)
		}
	}
	_, _, wantRep, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}

	victim, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := victim.OfferJob(j); err != nil {
			t.Fatal(err)
		}
	}
	var gotRecs []EpochRecord
	for _, rho := range util[:2] {
		rec, closed, err := victim.OfferSlot(rho)
		if err != nil {
			t.Fatal(err)
		}
		if closed {
			gotRecs = append(gotRecs, rec)
		}
	}
	snap, err := victim.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Pending) != 3 {
		t.Fatalf("pending jobs in state = %d, want 3", len(snap.Pending))
	}
	restoreCfg := liveConfig(t, &staticStrategy{pol: pol}, predict.NewNaivePrevious(), 7, 2)
	restoreCfg.RetainResponses = false
	restored, err := RestoreLiveRunner(restoreCfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, rho := range util[2:] {
		rec, closed, err := restored.OfferSlot(rho)
		if err != nil {
			t.Fatal(err)
		}
		if closed {
			gotRecs = append(gotRecs, rec)
		}
	}
	_, _, gotRep, err := restored.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("records diverge:\n got %+v\nwant %+v", gotRecs, wantRecs)
	}
	gotRep.Epochs, wantRep.Epochs = gotRecs, wantRecs
	requireReportsIdentical(t, gotRep, wantRep)
}

// TestLiveStateValidation covers the error paths: mid-epoch capture, stale
// geometry, malformed counts — errors, never panics.
func TestLiveStateValidation(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	cfg := liveConfig(t, &staticStrategy{pol: pol}, predict.NewNaivePrevious(), 1, 3)
	r, err := NewLiveRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.OfferSlot(0.3); err != nil {
		t.Fatal(err)
	}
	if r.AtBoundary() {
		t.Fatal("mid-epoch runner claims boundary")
	}
	if _, err := r.State(); err == nil {
		t.Error("mid-epoch State accepted")
	}
	if err := r.OfferJob(queue.Job{Arrival: 100}); err != nil {
		t.Fatal(err)
	}
	if err := r.OfferJob(queue.Job{Arrival: 10}); err == nil {
		t.Error("out-of-order arrival accepted")
	}

	// Fresh boundary state to corrupt.
	r2, err := NewLiveRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := r2.OfferSlot(0.3); err != nil {
			t.Fatal(err)
		}
	}
	good, err := r2.State()
	if err != nil {
		t.Fatal(err)
	}

	bad := *good
	bad.Slot = good.Slot + 1
	if _, err := RestoreLiveRunner(cfg, &bad); err == nil {
		t.Error("off-boundary slot accepted")
	}
	bad = *good
	bad.PlanCounts = bad.PlanCounts[:0]
	if len(bad.PlanNames) > 0 {
		if _, err := RestoreLiveRunner(cfg, &bad); err == nil {
			t.Error("mismatched plan counts accepted")
		}
	}
	bad = *good
	bad.Window.Capacity = 99
	if _, err := RestoreLiveRunner(cfg, &bad); err == nil {
		t.Error("wrong window capacity accepted")
	}
	bad = *good
	bad.Predictor = []byte{1, 2, 3}
	if _, err := RestoreLiveRunner(cfg, &bad); err == nil {
		t.Error("corrupt predictor blob accepted")
	}
	if _, err := RestoreLiveRunner(cfg, nil); err == nil {
		t.Error("nil state accepted")
	}
}

// TestFeedPredictorSharedPath is the satellite-f equivalence check: the
// extracted FeedPredictor observes exactly what a hand-rolled loop would, so
// batch and live predictor feeds cannot drift.
func TestFeedPredictorSharedPath(t *testing.T) {
	rhos := []float64{0.1, 0.4, 0.9, 0.2, 0.55}
	a, err := predict.NewLMS(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := predict.NewLMS(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	realized := FeedPredictor(a, rhos)
	var manual float64
	for _, r := range rhos {
		b.Observe(r)
		manual += r
	}
	manual /= float64(len(rhos))
	if realized != manual {
		t.Fatalf("realized %v, manual %v", realized, manual)
	}
	if a.Predict() != b.Predict() {
		t.Fatalf("predictions diverge: %v vs %v", a.Predict(), b.Predict())
	}
	if got := FeedPredictor(predict.NewNaivePrevious(), nil); got != 0 {
		t.Fatalf("empty feed realized %v, want 0", got)
	}
}

// TestCountingSourceBitIdentical pins the RNG-cursor trick: a Rand over a
// countingSource draws the same stream as one over the bare source, and
// skipTo fast-forwards to the identical position.
func TestCountingSourceBitIdentical(t *testing.T) {
	plain := rand.New(rand.NewSource(99))
	cs := newCountingSource(99)
	counted := rand.New(cs)
	for i := 0; i < 1000; i++ {
		// Mix the call types the strategies use.
		if plain.Float64() != counted.Float64() {
			t.Fatalf("Float64 diverges at %d", i)
		}
		if plain.Intn(1000) != counted.Intn(1000) {
			t.Fatalf("Intn diverges at %d", i)
		}
	}
	draws := cs.draws

	cs2 := newCountingSource(99)
	cs2.skipTo(draws)
	resumed := rand.New(cs2)
	for i := 0; i < 100; i++ {
		if plain.Float64() != resumed.Float64() {
			t.Fatalf("resumed Float64 diverges at %d", i)
		}
	}
}
