package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/queue"
	"sleepscale/internal/workload"
)

func dnsManager(t *testing.T, qos policy.QoS) *Manager {
	t.Helper()
	m := &Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.DefaultSpace(),
		QoS:          qos,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func dnsJobs(t *testing.T, rho float64, n int, seed int64) []queue.Job {
	t.Helper()
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	st, err = st.AtUtilization(rho)
	if err != nil {
		t.Fatal(err)
	}
	return st.Jobs(n, rand.New(rand.NewSource(seed)))
}

func TestManagerValidate(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	bad := []*Manager{
		{FreqExponent: 1, Space: policy.DefaultSpace(), QoS: qos},
		{Profile: power.Xeon(), FreqExponent: 1, Space: policy.DefaultSpace()},
		{Profile: power.Xeon(), FreqExponent: 1, QoS: qos},
		{Profile: power.Xeon(), FreqExponent: 2, Space: policy.DefaultSpace(), QoS: qos},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid manager accepted", i)
		}
	}
}

func TestSelectRejectsEmptyJobs(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	if _, _, err := m.Select(nil, 0.1); !errors.Is(err, ErrNoJobs) {
		t.Errorf("err = %v, want ErrNoJobs", err)
	}
}

func TestEvaluateSinglePolicy(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	jobs := dnsJobs(t, 0.3, 5000, 1)
	ev, err := m.Evaluate(jobs, policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)})
	if err != nil {
		t.Fatal(err)
	}
	// At f=1 and ρ=0.3 the M/M/1 mean response is 1/(µ−λ) ≈ 0.277 s, well
	// inside the 0.97 s budget; power must lie between deep-sleep idle and
	// full active.
	if !ev.Feasible {
		t.Errorf("full-speed policy infeasible: %+v", ev.Metrics)
	}
	if ev.Metrics.AvgPower < 75.5 || ev.Metrics.AvgPower > 250 {
		t.Errorf("power %v outside physical range", ev.Metrics.AvgPower)
	}
	if ev.Metrics.P95Response < ev.Metrics.MeanResponse {
		t.Errorf("P95 %v below mean %v", ev.Metrics.P95Response, ev.Metrics.MeanResponse)
	}
}

// TestSelectLooseBudgetPrefersDeepSleep reproduces the Figure 1(a) loose-
// budget regime: DNS-like at ρ=0.1 with a 20·(1/µ) mean budget — the C6S3
// bowl bottom wins over every other state's optimum.
func TestSelectLooseBudgetPrefersDeepSleep(t *testing.T) {
	if testing.Short() {
		t.Skip("long policy sweep")
	}
	mu := workload.DNS().MaxServiceRate()
	m := dnsManager(t, policy.MeanResponseQoS{Budget: 20 / mu})
	jobs := dnsJobs(t, 0.1, 40000, 2)
	best, all, err := m.Select(jobs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Policy.Plan.Name != "C6S3" {
		t.Errorf("loose-budget winner = %v, want C6S3", best.Policy)
	}
	// The winning frequency sits in the bowl (paper: f ≈ 0.42).
	if best.Policy.Frequency < 0.2 || best.Policy.Frequency > 0.7 {
		t.Errorf("winner frequency %v outside the bowl", best.Policy.Frequency)
	}
	if len(all) == 0 {
		t.Error("no evaluations returned")
	}
}

// TestSelectTightBudgetPrefersC6S0i reproduces the Figure 1(a) tight-budget
// regime: µE[R] ≤ 2 forces fast processing, making C6S0(i) the winner.
func TestSelectTightBudgetPrefersC6S0i(t *testing.T) {
	if testing.Short() {
		t.Skip("long policy sweep")
	}
	mu := workload.DNS().MaxServiceRate()
	m := dnsManager(t, policy.MeanResponseQoS{Budget: 2 / mu})
	jobs := dnsJobs(t, 0.1, 40000, 3)
	best, _, err := m.Select(jobs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Policy.Plan.Name != "C6S0(i)" {
		t.Errorf("tight-budget winner = %v, want C6S0(i)", best.Policy)
	}
}

// TestSelectFallbackWhenNothingFeasible: an impossible budget must still
// return the least-violating policy rather than failing.
func TestSelectFallbackWhenNothingFeasible(t *testing.T) {
	m := dnsManager(t, policy.MeanResponseQoS{Budget: 1e-6})
	jobs := dnsJobs(t, 0.3, 5000, 4)
	best, all, err := m.Select(jobs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Feasible {
		t.Error("impossible budget marked feasible")
	}
	// The fallback minimizes mean response: no candidate can beat it.
	for _, e := range all {
		if e.Metrics.MeanResponse < best.Metrics.MeanResponse-1e-12 {
			t.Errorf("fallback %v not minimum-violation (found %v)", best.Policy, e.Policy)
			break
		}
	}
}

func TestSelectDeterministicAndParallelConsistent(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	jobs := dnsJobs(t, 0.2, 8000, 5)
	m1 := dnsManager(t, qos)
	m1.Parallelism = 1
	m2 := dnsManager(t, qos)
	m2.Parallelism = 8
	b1, a1, err := m1.Select(jobs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b2, a2, err := m2.Select(jobs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Policy.String() != b2.Policy.String() {
		t.Errorf("parallelism changed the winner: %v vs %v", b1.Policy, b2.Policy)
	}
	if len(a1) != len(a2) {
		t.Fatalf("evaluation counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Metrics != a2[i].Metrics {
			t.Fatalf("evaluation %d differs across parallelism", i)
		}
	}
}

// TestSelectIdealizedAgreesWithSimulation: on an exponential workload the
// idealized (closed-form) and simulated selections must pick the same plan
// and a nearby frequency — observation 3 of §5.1.2.
func TestSelectIdealizedAgreesWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long policy sweep")
	}
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	rho := 0.3
	lambda := rho * mu
	idealBest, _, err := m.SelectIdealized(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	jobs := dnsJobs(t, rho, 60000, 6)
	simBest, _, err := m.Select(jobs, rho)
	if err != nil {
		t.Fatal(err)
	}
	if idealBest.Policy.Plan.Name != simBest.Policy.Plan.Name {
		t.Errorf("plan disagreement: idealized %v vs simulated %v",
			idealBest.Policy, simBest.Policy)
	}
	if math.Abs(idealBest.Policy.Frequency-simBest.Policy.Frequency) > 0.06 {
		t.Errorf("frequency gap too large: idealized %v vs simulated %v",
			idealBest.Policy.Frequency, simBest.Policy.Frequency)
	}
}

// TestSelectIdealizedFigure2HighUtilization reproduces Figure 2 with the
// closed forms: at high utilization the best state for DNS-like jobs is
// C6S0(i) (1 ms wake ≪ 194 ms jobs) while Google-like jobs prefer C3S0(i)
// (1 ms wake hurts 4.2 ms jobs), and C6S3 never wins.
func TestSelectIdealizedFigure2HighUtilization(t *testing.T) {
	rho := 0.7
	for _, tc := range []struct {
		spec workload.Spec
		want string
	}{
		{workload.DNS(), "C6S0(i)"},
		{workload.Google(), "C3S0(i)"},
	} {
		mu := tc.spec.MaxServiceRate()
		qos, err := policy.NewMeanResponseQoS(0.8, mu)
		if err != nil {
			t.Fatal(err)
		}
		m := dnsManager(t, qos)
		best, all, err := m.SelectIdealized(rho*mu, mu)
		if err != nil {
			t.Fatal(err)
		}
		if best.Policy.Plan.Name != tc.want {
			t.Errorf("%s at ρ=%.1f: winner %v, want %s", tc.spec.Name, rho, best.Policy, tc.want)
		}
		for _, e := range all {
			if e.Feasible && e.Policy.Plan.Name == "C6S3" &&
				e.Metrics.AvgPower < best.Metrics.AvgPower {
				t.Errorf("%s: C6S3 beat the winner — should never happen at high ρ", tc.spec.Name)
			}
		}
	}
}

// TestSelectIdealizedLowUtilizationPrefersShallow reproduces the Figure 6
// low-utilization regime: with the ρ_b=0.8 budget at ρ=0.1, C0(i)S0(i) is
// optimal for Google-like jobs (the low-f cubic idle power beats constant
// deep-state power, and C6-class wakes hurt small jobs).
func TestSelectIdealizedLowUtilizationPrefersShallow(t *testing.T) {
	mu := workload.Google().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	best, _, err := m.SelectIdealized(0.1*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	if best.Policy.Plan.Name != "C0(i)S0(i)" {
		t.Errorf("Google ρ=0.1 winner = %v, want C0(i)S0(i)", best.Policy)
	}
}

func TestSelectIdealizedRejectsBadInput(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	if _, _, err := m.SelectIdealized(0, mu); err == nil {
		t.Error("λ=0 accepted")
	}
	if _, _, err := m.SelectIdealized(mu, mu); err == nil {
		t.Error("λ=µ accepted")
	}
}

// TestSelectIdealizedPercentileQoS: the closed-form tail supports the
// default single-state space; the winner must meet the P95 deadline.
func TestSelectIdealizedPercentileQoS(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewPercentileQoS(0.8, mu, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	m := dnsManager(t, qos)
	best, _, err := m.SelectIdealized(0.3*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Errorf("percentile winner infeasible: %+v", best)
	}
	if best.Metrics.P95Response > qos.Deadline {
		t.Errorf("P95 %v exceeds deadline %v", best.Metrics.P95Response, qos.Deadline)
	}
}

// TestRaceToHaltCostsMore quantifies the §4.2 lesson-1 claim: the joint
// optimum beats race-to-halt (f=1, immediate single state) by a wide margin
// at low utilization.
func TestRaceToHaltCostsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("long policy sweep")
	}
	mu := workload.DNS().MaxServiceRate()
	m := dnsManager(t, policy.MeanResponseQoS{Budget: 20 / mu})
	jobs := dnsJobs(t, 0.1, 40000, 8)
	best, all, err := m.Select(jobs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Find race-to-halt evaluations: f = 1 with any single state.
	worstGap := 0.0
	for _, e := range all {
		if e.Policy.Frequency == 1 {
			gap := e.Metrics.AvgPower / best.Metrics.AvgPower
			if gap > worstGap {
				worstGap = gap
			}
		}
	}
	if worstGap < 1.3 {
		t.Errorf("race-to-halt premium = %.2fx, want ≥ 1.3x (paper: up to 1.5x)", worstGap)
	}
}

// TestSelectMatchesEvaluatePerPolicy pins the pooled-evaluator Select path to
// the public thin-wrapper Evaluate bit-for-bit: reusable kernels must not
// change what any candidate scores.
func TestSelectMatchesEvaluatePerPolicy(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	jobs := dnsJobs(t, 0.3, 3000, 11)
	m := dnsManager(t, qos)
	m.Space.FreqStep = 0.1 // keep the per-policy reference sweep quick
	_, evals, err := m.Select(jobs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no evaluations")
	}
	for _, e := range evals {
		ref, err := m.Evaluate(jobs, e.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if e.Metrics != ref.Metrics || e.Feasible != ref.Feasible {
			t.Fatalf("policy %v: Select gave %+v, Evaluate gave %+v", e.Policy, e, ref)
		}
	}
}
