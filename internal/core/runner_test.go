package core

import (
	"math"
	"testing"

	"sleepscale/internal/eventlog"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// staticStrategy is a minimal Strategy for runner tests.
type staticStrategy struct{ pol policy.Policy }

func (s *staticStrategy) Name() string { return "static-test" }
func (s *staticStrategy) Decide(DecideInput) (policy.Policy, error) {
	return s.pol, nil
}

// switchingStrategy alternates between two frequencies to exercise
// mid-run policy switches.
type switchingStrategy struct {
	n     int
	plans []policy.Policy
}

func (s *switchingStrategy) Name() string { return "switching-test" }
func (s *switchingStrategy) Decide(DecideInput) (policy.Policy, error) {
	p := s.plans[s.n%len(s.plans)]
	s.n++
	return p, nil
}

func shortTrace(slots int, util float64) *trace.Trace {
	t := &trace.Trace{Name: "flat", SlotSeconds: 60, Utilization: make([]float64, slots)}
	for i := range t.Utilization {
		t.Utilization[i] = util
	}
	return t
}

func runnerConfig(t *testing.T, strat Strategy, tr *trace.Trace, epochSlots int) RunnerConfig {
	t.Helper()
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	return RunnerConfig{
		Stats:        st,
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        tr,
		EpochSlots:   epochSlots,
		Predictor:    predict.NewNaivePrevious(),
		Strategy:     strat,
		Seed:         1,
	}
}

func TestRunStaticStrategyBasics(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(20, 0.3)
	rep, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	if rep.Duration < tr.Duration()-1e-9 {
		t.Errorf("duration = %v, want ≥ %v", rep.Duration, tr.Duration())
	}
	if len(rep.Epochs) != 4 {
		t.Errorf("epochs = %d, want 4", len(rep.Epochs))
	}
	if rep.PlanEpochs["C6S0(i)"] != 4 {
		t.Errorf("plan usage = %v, want all C6S0(i)", rep.PlanEpochs)
	}
	// Power must lie between deep-sleep idle and full active power.
	if rep.AvgPower < 75.5 || rep.AvgPower > 250 {
		t.Errorf("avg power %v outside physical range", rep.AvgPower)
	}
	// At ρ=0.3 and f=1, responses should be comfortably under a second.
	if rep.MeanResponse > 1 {
		t.Errorf("mean response %v suspiciously high", rep.MeanResponse)
	}
	if rep.MeanFrequency != 1 {
		t.Errorf("mean frequency = %v, want 1", rep.MeanFrequency)
	}
	fr := rep.PlanFractions()
	if math.Abs(fr["C6S0(i)"]-1) > 1e-12 {
		t.Errorf("plan fractions = %v", fr)
	}
}

func TestRunSwitchingStrategy(t *testing.T) {
	plans := []policy.Policy{
		{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
		{Frequency: 0.6, Plan: policy.SingleState(power.DeeperSleep)},
	}
	tr := shortTrace(12, 0.2)
	rep, err := Run(runnerConfig(t, &switchingStrategy{plans: plans}, tr, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanEpochs["C0(i)S0(i)"] != 2 || rep.PlanEpochs["C6S3"] != 2 {
		t.Errorf("plan usage = %v, want 2+2", rep.PlanEpochs)
	}
	if math.Abs(rep.MeanFrequency-0.8) > 1e-9 {
		t.Errorf("mean frequency = %v, want 0.8", rep.MeanFrequency)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	good := runnerConfig(t, &staticStrategy{pol: pol}, shortTrace(4, 0.2), 2)

	c := good
	c.Trace = nil
	if _, err := Run(c); err == nil {
		t.Error("nil trace accepted")
	}
	c = good
	c.EpochSlots = 0
	if _, err := Run(c); err == nil {
		t.Error("epoch slots 0 accepted")
	}
	c = good
	c.Predictor = nil
	if _, err := Run(c); err == nil {
		t.Error("nil predictor accepted")
	}
	c = good
	c.Strategy = nil
	if _, err := Run(c); err == nil {
		t.Error("nil strategy accepted")
	}
	c = good
	c.Trace = &trace.Trace{SlotSeconds: 60, Utilization: []float64{1.5}}
	if _, err := Run(c); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	pol := policy.Policy{Frequency: 0.8, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(10, 0.25)
	a, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs != b.Jobs || a.Energy != b.Energy || a.MeanResponse != b.MeanResponse {
		t.Errorf("runs with same seed differ: %+v vs %+v", a, b)
	}
}

func TestRunPredictorSeesEverySlot(t *testing.T) {
	// With a naive-previous predictor and a flat trace, every epoch after
	// the first should predict exactly the flat utilization.
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)}
	tr := shortTrace(20, 0.37)
	rep, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Epochs[1:] {
		if math.Abs(e.Predicted-0.37) > 1e-9 {
			t.Errorf("epoch %d predicted %v, want 0.37", e.Index, e.Predicted)
		}
		if math.Abs(e.Realized-0.37) > 1e-9 {
			t.Errorf("epoch %d realized %v, want 0.37", e.Index, e.Realized)
		}
	}
}

func TestRunBacklogCarriesAcrossEpochs(t *testing.T) {
	// Epoch 1 runs at a frequency far below the load; the backlog it builds
	// must delay epoch 2's jobs (§5.2.3's queue-propagation effect).
	slow := policy.Policy{Frequency: 0.31, Plan: policy.SingleState(power.OperatingIdle)}
	fast := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)}
	tr := shortTrace(10, 0.3)

	slowFirst, err := Run(runnerConfig(t, &switchingStrategy{plans: []policy.Policy{slow, fast, fast, fast, fast}}, tr, 2))
	if err != nil {
		t.Fatal(err)
	}
	allFast, err := Run(runnerConfig(t, &staticStrategy{pol: fast}, tr, 2))
	if err != nil {
		t.Fatal(err)
	}
	if slowFirst.Epochs[1].MeanDelay <= allFast.Epochs[1].MeanDelay {
		t.Errorf("backlog did not propagate: slow-first epoch-1 delay %v vs all-fast %v",
			slowFirst.Epochs[1].MeanDelay, allFast.Epochs[1].MeanDelay)
	}
}

func TestRunWithSleepScaleStrategySmoke(t *testing.T) {
	// A tiny end-to-end run with the real manager in the loop.
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
		QoS:          qos,
	}
	strat := &managerStrategyForTest{m: m, evalJobs: 400}
	tr := shortTrace(12, 0.3)
	cfg := runnerConfig(t, strat, tr, 3)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	total := 0
	for _, n := range rep.PlanEpochs {
		total += n
	}
	if total != len(rep.Epochs) {
		t.Errorf("plan usage total %d != epochs %d", total, len(rep.Epochs))
	}
}

// managerStrategyForTest is a minimal in-package manager-backed strategy so
// the runner smoke test does not depend on internal/strategy (which imports
// this package).
type managerStrategyForTest struct {
	m        *Manager
	evalJobs int
}

func (s *managerStrategyForTest) Name() string { return "ss-test" }
func (s *managerStrategyForTest) Decide(in DecideInput) (policy.Policy, error) {
	jobs, ok := in.Window.Jobs(s.evalJobs, in.PredictedUtilization, in.Rng)
	if !ok {
		return policy.Policy{Frequency: 1, Plan: s.m.Space.Plans[0]}, nil
	}
	best, _, err := s.m.Select(jobs, in.PredictedUtilization)
	if err != nil {
		return policy.Policy{}, err
	}
	return best.Policy, nil
}

var _ = eventlog.Epoch{} // keep the import for documentation clarity
