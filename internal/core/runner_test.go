package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sleepscale/internal/eventlog"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// staticStrategy is a minimal Strategy for runner tests.
type staticStrategy struct{ pol policy.Policy }

func (s *staticStrategy) Name() string { return "static-test" }
func (s *staticStrategy) Decide(DecideInput) (policy.Policy, error) {
	return s.pol, nil
}

// switchingStrategy alternates between two frequencies to exercise
// mid-run policy switches.
type switchingStrategy struct {
	n     int
	plans []policy.Policy
}

func (s *switchingStrategy) Name() string { return "switching-test" }
func (s *switchingStrategy) Decide(DecideInput) (policy.Policy, error) {
	p := s.plans[s.n%len(s.plans)]
	s.n++
	return p, nil
}

func shortTrace(slots int, util float64) *trace.Trace {
	t := &trace.Trace{Name: "flat", SlotSeconds: 60, Utilization: make([]float64, slots)}
	for i := range t.Utilization {
		t.Utilization[i] = util
	}
	return t
}

func runnerConfig(t *testing.T, strat Strategy, tr *trace.Trace, epochSlots int) RunnerConfig {
	t.Helper()
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	return RunnerConfig{
		Stats:        st,
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        tr,
		EpochSlots:   epochSlots,
		Predictor:    predict.NewNaivePrevious(),
		Strategy:     strat,
		Seed:         1,
	}
}

func TestRunStaticStrategyBasics(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(20, 0.3)
	rep, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	if rep.Duration < tr.Duration()-1e-9 {
		t.Errorf("duration = %v, want ≥ %v", rep.Duration, tr.Duration())
	}
	if len(rep.Epochs) != 4 {
		t.Errorf("epochs = %d, want 4", len(rep.Epochs))
	}
	if rep.PlanEpochs["C6S0(i)"] != 4 {
		t.Errorf("plan usage = %v, want all C6S0(i)", rep.PlanEpochs)
	}
	// Power must lie between deep-sleep idle and full active power.
	if rep.AvgPower < 75.5 || rep.AvgPower > 250 {
		t.Errorf("avg power %v outside physical range", rep.AvgPower)
	}
	// At ρ=0.3 and f=1, responses should be comfortably under a second.
	if rep.MeanResponse > 1 {
		t.Errorf("mean response %v suspiciously high", rep.MeanResponse)
	}
	if rep.MeanFrequency != 1 {
		t.Errorf("mean frequency = %v, want 1", rep.MeanFrequency)
	}
	fr := rep.PlanFractions()
	if math.Abs(fr["C6S0(i)"]-1) > 1e-12 {
		t.Errorf("plan fractions = %v", fr)
	}
}

func TestRunSwitchingStrategy(t *testing.T) {
	plans := []policy.Policy{
		{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
		{Frequency: 0.6, Plan: policy.SingleState(power.DeeperSleep)},
	}
	tr := shortTrace(12, 0.2)
	rep, err := Run(runnerConfig(t, &switchingStrategy{plans: plans}, tr, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanEpochs["C0(i)S0(i)"] != 2 || rep.PlanEpochs["C6S3"] != 2 {
		t.Errorf("plan usage = %v, want 2+2", rep.PlanEpochs)
	}
	if math.Abs(rep.MeanFrequency-0.8) > 1e-9 {
		t.Errorf("mean frequency = %v, want 0.8", rep.MeanFrequency)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	good := runnerConfig(t, &staticStrategy{pol: pol}, shortTrace(4, 0.2), 2)

	c := good
	c.Trace = nil
	if _, err := Run(c); err == nil {
		t.Error("nil trace accepted")
	}
	c = good
	c.EpochSlots = 0
	if _, err := Run(c); err == nil {
		t.Error("epoch slots 0 accepted")
	}
	c = good
	c.Predictor = nil
	if _, err := Run(c); err == nil {
		t.Error("nil predictor accepted")
	}
	c = good
	c.Strategy = nil
	if _, err := Run(c); err == nil {
		t.Error("nil strategy accepted")
	}
	c = good
	c.Trace = &trace.Trace{SlotSeconds: 60, Utilization: []float64{1.5}}
	if _, err := Run(c); err == nil {
		t.Error("invalid trace accepted")
	}
	// A zero-value Stats must surface as an error, not a nil-distribution
	// panic inside the streaming generator.
	c = good
	c.Stats = workload.Stats{}
	if _, err := Run(c); err == nil {
		t.Error("empty workload stats accepted")
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	pol := policy.Policy{Frequency: 0.8, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(10, 0.25)
	a, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs != b.Jobs || a.Energy != b.Energy || a.MeanResponse != b.MeanResponse {
		t.Errorf("runs with same seed differ: %+v vs %+v", a, b)
	}
}

func TestRunPredictorSeesEverySlot(t *testing.T) {
	// With a naive-previous predictor and a flat trace, every epoch after
	// the first should predict exactly the flat utilization.
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)}
	tr := shortTrace(20, 0.37)
	rep, err := Run(runnerConfig(t, &staticStrategy{pol: pol}, tr, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Epochs[1:] {
		if math.Abs(e.Predicted-0.37) > 1e-9 {
			t.Errorf("epoch %d predicted %v, want 0.37", e.Index, e.Predicted)
		}
		if math.Abs(e.Realized-0.37) > 1e-9 {
			t.Errorf("epoch %d realized %v, want 0.37", e.Index, e.Realized)
		}
	}
}

func TestRunBacklogCarriesAcrossEpochs(t *testing.T) {
	// Epoch 1 runs at a frequency far below the load; the backlog it builds
	// must delay epoch 2's jobs (§5.2.3's queue-propagation effect).
	slow := policy.Policy{Frequency: 0.31, Plan: policy.SingleState(power.OperatingIdle)}
	fast := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)}
	tr := shortTrace(10, 0.3)

	slowFirst, err := Run(runnerConfig(t, &switchingStrategy{plans: []policy.Policy{slow, fast, fast, fast, fast}}, tr, 2))
	if err != nil {
		t.Fatal(err)
	}
	allFast, err := Run(runnerConfig(t, &staticStrategy{pol: fast}, tr, 2))
	if err != nil {
		t.Fatal(err)
	}
	if slowFirst.Epochs[1].MeanDelay <= allFast.Epochs[1].MeanDelay {
		t.Errorf("backlog did not propagate: slow-first epoch-1 delay %v vs all-fast %v",
			slowFirst.Epochs[1].MeanDelay, allFast.Epochs[1].MeanDelay)
	}
}

func TestRunWithSleepScaleStrategySmoke(t *testing.T) {
	// A tiny end-to-end run with the real manager in the loop.
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
		QoS:          qos,
	}
	strat := &managerStrategyForTest{m: m, evalJobs: 400}
	tr := shortTrace(12, 0.3)
	cfg := runnerConfig(t, strat, tr, 3)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs served")
	}
	total := 0
	for _, n := range rep.PlanEpochs {
		total += n
	}
	if total != len(rep.Epochs) {
		t.Errorf("plan usage total %d != epochs %d", total, len(rep.Epochs))
	}
}

// managerStrategyForTest is a minimal in-package manager-backed strategy so
// the runner smoke test does not depend on internal/strategy (which imports
// this package).
type managerStrategyForTest struct {
	m        *Manager
	evalJobs int
}

func (s *managerStrategyForTest) Name() string { return "ss-test" }
func (s *managerStrategyForTest) Decide(in DecideInput) (policy.Policy, error) {
	jobs, ok := in.Window.Jobs(s.evalJobs, in.PredictedUtilization, in.Rng)
	if !ok {
		return policy.Policy{Frequency: 1, Plan: s.m.Space.Plans[0]}, nil
	}
	best, _, err := s.m.Select(jobs, in.PredictedUtilization)
	if err != nil {
		return policy.Policy{}, err
	}
	return best.Policy, nil
}

var _ = eventlog.Epoch{} // keep the import for documentation clarity

// goldenTrace is the equivalence tests' fixture: a slice of the synthetic
// email-store day, wide-ranging enough to exercise variable per-slot rates.
func goldenTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.EmailStore(1, 3).DailyWindow(120, 300)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// requireReportsIdentical pins two runs to bit-identical epoch metrics and
// aggregates — the streamed/materialized equivalence contract.
func requireReportsIdentical(t *testing.T, got, want RunReport) {
	t.Helper()
	if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
		got.P95Response != want.P95Response || got.AvgPower != want.AvgPower ||
		got.Energy != want.Energy || got.Duration != want.Duration ||
		got.MeanFrequency != want.MeanFrequency {
		t.Fatalf("aggregates diverge:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Epochs) != len(want.Epochs) {
		t.Fatalf("epochs: %d vs %d", len(got.Epochs), len(want.Epochs))
	}
	for i := range got.Epochs {
		if !reflect.DeepEqual(got.Epochs[i], want.Epochs[i]) {
			t.Fatalf("epoch %d diverges:\n got %+v\nwant %+v", i, got.Epochs[i], want.Epochs[i])
		}
	}
	if !reflect.DeepEqual(got.PlanEpochs, want.PlanEpochs) {
		t.Fatalf("plan usage diverges: %v vs %v", got.PlanEpochs, want.PlanEpochs)
	}
}

// TestRunStreamedMatchesMaterialized is the subsystem's core equivalence
// claim: the streaming Run (jobs pulled chunk by chunk from the incremental
// generator) reproduces a run over the fully materialized TraceJobs stream
// bit for bit, on the golden trace, for both a static and a switching
// strategy.
func TestRunStreamedMatchesMaterialized(t *testing.T) {
	tr := goldenTrace(t)
	strategies := map[string]func() Strategy{
		"static": func() Strategy {
			return &staticStrategy{pol: policy.Policy{
				Frequency: 0.7, Plan: policy.SingleState(power.DeepSleep)}}
		},
		"switching": func() Strategy {
			return &switchingStrategy{plans: []policy.Policy{
				{Frequency: 1, Plan: policy.SingleState(power.OperatingIdle)},
				{Frequency: 0.6, Plan: policy.SingleState(power.DeeperSleep)},
			}}
		},
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			cfg := runnerConfig(t, mk(), tr, 5)
			streamed, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Materialized path: the full TraceJobs slice through the
			// stream.Slice adapter, with the generator's exact seeding.
			cfg2 := runnerConfig(t, mk(), tr, 5)
			jobs := cfg2.Stats.TraceJobs(tr.Utilization, tr.SlotSeconds,
				rand.New(rand.NewSource(cfg2.Seed)))
			if len(jobs) == 0 {
				t.Fatal("no jobs in materialized stream")
			}
			materialized, err := RunSource(cfg2, stream.Slice(jobs))
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Jobs != len(jobs) {
				t.Fatalf("streamed run served %d jobs, materialized stream has %d",
					streamed.Jobs, len(jobs))
			}
			requireReportsIdentical(t, streamed, materialized)
		})
	}
}

// TestRunSourceScenario drives the runner from a composed scenario source
// (trace baseline merged with an MMPP burst overlay) — the bursty shapes
// the fixed-trace path cannot express.
func TestRunSourceScenario(t *testing.T) {
	tr := goldenTrace(t)
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 5)

	base, err := cfg.Stats.NewTraceGen(tr.Utilization, tr.SlotSeconds, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunSource(cfg, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := runnerConfig(t, &staticStrategy{pol: pol}, tr, 5)
	base2, err := cfg2.Stats.NewTraceGen(tr.Utilization, tr.SlotSeconds, cfg2.Seed)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := stream.NewMMPP(stream.MMPPConfig{
		OnRate: 2, OffRate: 0, MeanOn: 300, MeanOff: 1200,
		Size: cfg2.Stats.Size, Horizon: tr.Duration(),
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	withBurst, err := RunSource(cfg2, stream.Merge(base2, burst))
	if err != nil {
		t.Fatal(err)
	}
	if withBurst.Jobs <= baseline.Jobs {
		t.Fatalf("burst overlay added no jobs: %d vs %d", withBurst.Jobs, baseline.Jobs)
	}
	if withBurst.Energy <= baseline.Energy {
		t.Errorf("burst overlay added no energy: %g vs %g", withBurst.Energy, baseline.Energy)
	}
}

// failingSource delivers a few jobs then fails, checking RunSource surfaces
// deferred source errors instead of silently truncating the run.
type failingSource struct {
	n   int
	err error
}

func (f *failingSource) Next(buf []queue.Job) (int, bool) {
	n := 0
	for n < len(buf) && f.n < 5 {
		buf[n] = queue.Job{Arrival: float64(f.n), Size: 0.01}
		f.n++
		n++
	}
	return n, f.n < 5
}
func (f *failingSource) Reset(int64) { f.n = 0 }
func (f *failingSource) Err() error  { return f.err }

func TestRunSourceSurfacesSourceError(t *testing.T) {
	pol := policy.Policy{Frequency: 1, Plan: policy.SingleState(power.DeepSleep)}
	tr := shortTrace(4, 0.2)
	cfg := runnerConfig(t, &staticStrategy{pol: pol}, tr, 2)
	src := &failingSource{err: errTest}
	if _, err := RunSource(cfg, src); err == nil {
		t.Fatal("source error not surfaced")
	}
	src = &failingSource{}
	if _, err := RunSource(cfg, src); err != nil {
		t.Fatalf("clean source rejected: %v", err)
	}
	if _, err := RunSource(cfg, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

var errTest = fmt.Errorf("synthetic stream failure")
