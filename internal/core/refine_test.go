package core

import (
	"math"
	"testing"
	"testing/quick"

	"sleepscale/internal/policy"
	"sleepscale/internal/workload"
)

func TestSelectIdealizedRefinedBeatsGrid(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	// A coarse grid leaves room for the continuous refiner to improve.
	m := dnsManager(t, qos)
	m.Space.FreqStep = 0.1
	for _, rho := range []float64{0.1, 0.3, 0.5} {
		grid, _, err := m.SelectIdealized(rho*mu, mu)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := m.SelectIdealizedRefined(rho*mu, mu)
		if err != nil {
			t.Fatal(err)
		}
		if refined.Metrics.AvgPower > grid.Metrics.AvgPower+1e-9 {
			t.Errorf("ρ=%.1f: refined power %.4f above grid %.4f",
				rho, refined.Metrics.AvgPower, grid.Metrics.AvgPower)
		}
		if !refined.Feasible {
			t.Errorf("ρ=%.1f: refined selection infeasible", rho)
		}
	}
}

func TestRefinedMatchesFineGrid(t *testing.T) {
	// Against a very fine grid the refiner should land within one step.
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	fine := dnsManager(t, qos)
	fine.Space.FreqStep = 0.002
	coarse := dnsManager(t, qos)
	coarse.Space.FreqStep = 0.05
	rho := 0.25
	fineBest, _, err := fine.SelectIdealized(rho*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := coarse.SelectIdealizedRefined(rho*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Policy.Plan.Name != fineBest.Policy.Plan.Name {
		t.Errorf("plan %s != fine grid %s", refined.Policy.Plan.Name, fineBest.Policy.Plan.Name)
	}
	if math.Abs(refined.Policy.Frequency-fineBest.Policy.Frequency) > 0.01 {
		t.Errorf("frequency %.4f vs fine grid %.4f", refined.Policy.Frequency, fineBest.Policy.Frequency)
	}
	if refined.Metrics.AvgPower > fineBest.Metrics.AvgPower+1e-6 {
		t.Errorf("refined power %.4f above fine grid %.4f",
			refined.Metrics.AvgPower, fineBest.Metrics.AvgPower)
	}
}

func TestRefinedPercentileQoS(t *testing.T) {
	mu := workload.Google().MaxServiceRate()
	qos, err := policy.NewPercentileQoS(0.8, mu, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	m := dnsManager(t, qos)
	m.Space.FreqStep = 0.05
	refined, err := m.SelectIdealizedRefined(0.3*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !refined.Feasible {
		t.Fatalf("refined percentile selection infeasible: %+v", refined)
	}
	if refined.Metrics.P95Response > qos.Deadline {
		t.Errorf("P95 %v exceeds deadline %v", refined.Metrics.P95Response, qos.Deadline)
	}
}

// Property: across utilizations, the refined selection is always feasible
// and never worse than the grid winner.
func TestRefinedDominatesGridProperty(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	m := dnsManager(t, qos)
	m.Space.FreqStep = 0.05
	f := func(rRaw uint8) bool {
		rho := 0.05 + float64(rRaw)/255*0.7
		grid, _, err := m.SelectIdealized(rho*mu, mu)
		if err != nil {
			return false
		}
		refined, err := m.SelectIdealizedRefined(rho*mu, mu)
		if err != nil {
			return false
		}
		return refined.Metrics.AvgPower <= grid.Metrics.AvgPower+1e-9 && refined.Feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRefinedRejectsBadInput(t *testing.T) {
	mu := workload.DNS().MaxServiceRate()
	qos, _ := policy.NewMeanResponseQoS(0.8, mu)
	m := dnsManager(t, qos)
	if _, err := m.SelectIdealizedRefined(0, mu); err == nil {
		t.Error("λ=0 accepted")
	}
	if _, err := m.SelectIdealizedRefined(mu, mu); err == nil {
		t.Error("λ=µ accepted")
	}
}
