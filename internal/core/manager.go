// Package core implements SleepScale itself (§5): the policy manager that
// characterizes every candidate (frequency, low-power state) policy against
// observed workload statistics and selects the cheapest one meeting the QoS
// constraint, and the epoch-driven runtime that couples the manager to a
// utilization predictor over real traces.
package core

import (
	"errors"
	"fmt"
	"math"

	"sleepscale/internal/analytic"
	"sleepscale/internal/par"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/queue"
)

// analyticUnstable aliases the analytic package's stability error for the
// idealized sweep, which simply skips infeasible frequencies.
var analyticUnstable = analytic.ErrUnstable

// Manager is the policy manager of §5.1.1: it owns the candidate space, the
// power profile, and the QoS constraint, and selects the minimum-power
// feasible policy by simulating each candidate over the same job stream
// (common random numbers, the rescaled-log replay of §5.2.1).
type Manager struct {
	// Profile supplies state powers and wake latencies.
	Profile *power.Profile
	// FreqExponent is the workload's β (1 = CPU-bound).
	FreqExponent float64
	// Space is the candidate grid.
	Space policy.Space
	// QoS is the constraint policies must satisfy.
	QoS policy.QoS
	// Parallelism bounds the persistent worker-pool executors a selection
	// may use; 0 (or anything above the pool size) uses the whole
	// process-wide pool — GOMAXPROCS executors — and 1 scores candidates
	// serially on the calling goroutine. The selected policy is identical
	// for every setting.
	Parallelism int
}

// ErrNoJobs reports a selection attempted with an empty evaluation stream.
var ErrNoJobs = errors.New("core: no jobs to evaluate policies against")

// Validate checks the manager's configuration.
func (m *Manager) Validate() error {
	if m.Profile == nil {
		return fmt.Errorf("core: manager needs a power profile")
	}
	if m.QoS == nil {
		return fmt.Errorf("core: manager needs a QoS constraint")
	}
	if len(m.Space.Plans) == 0 {
		return fmt.Errorf("core: manager needs at least one sleep plan")
	}
	if m.FreqExponent < 0 || m.FreqExponent > 1 {
		return fmt.Errorf("core: frequency exponent %g outside [0,1]", m.FreqExponent)
	}
	return nil
}

// Evaluate runs Algorithm 1 for one policy over the given job stream and
// reports its metrics and feasibility. It is the thin public wrapper around
// the pooled-evaluator path Select uses per worker; callers scoring many
// policies should prefer Select, which amortizes the simulation buffers.
func (m *Manager) Evaluate(jobs []queue.Job, p policy.Policy) (policy.Evaluation, error) {
	ev := queue.GetEvaluator(jobs, queue.Options{})
	defer ev.Release()
	e, _, err := m.evaluateInto(ev, p, nil)
	return e, err
}

// evaluateInto is the zero-allocation inner loop of Select: it resolves the
// policy's configuration into the scratch phase buffer, scores it on the
// worker's evaluator, and hands the (possibly grown) buffer back for the next
// candidate.
func (m *Manager) evaluateInto(ev *queue.Evaluator, p policy.Policy, buf []queue.SleepPhase) (policy.Evaluation, []queue.SleepPhase, error) {
	cfg, err := p.AppendConfig(m.Profile, m.FreqExponent, buf[:0])
	if err != nil {
		return policy.Evaluation{}, buf, err
	}
	sum, err := ev.Evaluate(cfg)
	if err != nil {
		return policy.Evaluation{}, cfg.Phases, err
	}
	met := policy.Metrics{
		AvgPower:     sum.AvgPower,
		MeanResponse: sum.MeanResponse,
		P95Response:  sum.ResponseP95,
		P99Response:  sum.ResponseP99,
	}
	return policy.Evaluation{Policy: p, Metrics: met, Feasible: m.QoS.Satisfied(met)}, cfg.Phases, nil
}

// Select evaluates every policy in the space against the same job stream and
// returns the feasible policy with the lowest average power, plus all
// evaluations. rho is the (predicted) utilization, used only to set the
// frequency grid's stability floor. When no policy is feasible the policy
// with the smallest QoS violation is returned — the closest the server can
// get to restoring its target.
func (m *Manager) Select(jobs []queue.Job, rho float64) (policy.Evaluation, []policy.Evaluation, error) {
	if err := m.Validate(); err != nil {
		return policy.Evaluation{}, nil, err
	}
	if len(jobs) == 0 {
		return policy.Evaluation{}, nil, ErrNoJobs
	}
	pols := m.Space.Policies(rho, m.FreqExponent)
	evals := make([]policy.Evaluation, len(pols))
	errs := make([]error, len(pols))

	// Candidates are scored on the persistent worker pool: each pool
	// executor lazily acquires one pooled evaluator and one phase scratch
	// buffer (executor slots are sequential, so the per-slot state needs no
	// locking), and candidate evaluation allocates nothing in steady state.
	// Parallelism bounds the executors; every bound — including 1, the
	// inline serial loop — scores candidates into per-index slots, so the
	// selection is bit-identical regardless of pool size or interleaving.
	pool := par.Default()
	workers := m.Parallelism
	if workers <= 0 || workers > pool.Size() {
		workers = pool.Size()
	}
	if workers > len(pols) {
		workers = len(pols)
	}
	type workerState struct {
		ev     *queue.Evaluator
		phases []queue.SleepPhase
	}
	states := make([]workerState, workers)
	// Deferred so the evaluators return to their pool even when a candidate
	// evaluation panics (pool.Run re-raises it on this goroutine).
	defer func() {
		for _, st := range states {
			if st.ev != nil {
				st.ev.Release()
			}
		}
	}()
	pool.Run(len(pols), workers, func(w, i int) {
		st := &states[w]
		if st.ev == nil {
			st.ev = queue.GetEvaluator(jobs, queue.Options{})
		}
		evals[i], st.phases, errs[i] = m.evaluateInto(st.ev, pols[i], st.phases)
	})
	for _, err := range errs {
		if err != nil {
			return policy.Evaluation{}, nil, err
		}
	}
	best, err := pickBest(evals, m.QoS)
	if err != nil {
		return policy.Evaluation{}, nil, err
	}
	return best, evals, nil
}

// SelectIdealized is the §4 idealized model: it scores every candidate with
// the closed-form Appendix results for Poisson(λ) arrivals and exponential
// service at maximum rate µ, with no simulation. Policies whose metrics the
// closed forms cannot produce under the configured QoS (multi-state plans
// under a percentile constraint) are rejected with an error.
func (m *Manager) SelectIdealized(lambda, mu float64) (policy.Evaluation, []policy.Evaluation, error) {
	if err := m.Validate(); err != nil {
		return policy.Evaluation{}, nil, err
	}
	if lambda <= 0 || mu <= 0 || lambda >= mu {
		return policy.Evaluation{}, nil, fmt.Errorf("core: idealized needs 0 < λ < µ, got λ=%g µ=%g", lambda, mu)
	}
	_, needTail := m.QoS.(policy.PercentileQoS)
	rho := lambda / mu
	pols := m.Space.Policies(rho, 1) // closed forms assume CPU-bound scaling
	evals := make([]policy.Evaluation, 0, len(pols))
	for _, p := range pols {
		am, err := p.AnalyticModel(m.Profile, lambda, mu)
		if err != nil {
			return policy.Evaluation{}, nil, err
		}
		if err := am.Validate(); err != nil {
			if errors.Is(err, analyticUnstable) {
				continue // below the stability floor after rounding; skip
			}
			return policy.Evaluation{}, nil, err
		}
		er, err := am.MeanResponse()
		if err != nil {
			return policy.Evaluation{}, nil, err
		}
		ep, err := am.MeanPower()
		if err != nil {
			return policy.Evaluation{}, nil, err
		}
		met := policy.Metrics{AvgPower: ep, MeanResponse: er}
		if needTail {
			p95, err := am.ResponseQuantile(0.95)
			if err != nil {
				return policy.Evaluation{}, nil,
					fmt.Errorf("core: idealized percentile QoS for %v: %w", p, err)
			}
			p99, err := am.ResponseQuantile(0.99)
			if err != nil {
				return policy.Evaluation{}, nil, err
			}
			met.P95Response, met.P99Response = p95, p99
		}
		evals = append(evals, policy.Evaluation{
			Policy: p, Metrics: met, Feasible: m.QoS.Satisfied(met),
		})
	}
	best, err := pickBest(evals, m.QoS)
	if err != nil {
		return policy.Evaluation{}, nil, err
	}
	return best, evals, nil
}

// pickBest returns the feasible minimum-power evaluation, falling back to
// the minimum-violation one when nothing is feasible.
func pickBest(evals []policy.Evaluation, qos policy.QoS) (policy.Evaluation, error) {
	if len(evals) == 0 {
		return policy.Evaluation{}, fmt.Errorf("core: no candidate policies")
	}
	bestIdx := -1
	for i, e := range evals {
		if !e.Feasible {
			continue
		}
		if bestIdx < 0 || e.Metrics.AvgPower < evals[bestIdx].Metrics.AvgPower {
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		return evals[bestIdx], nil
	}
	// Nothing feasible: minimize the violation.
	bestIdx = 0
	bestV := math.Inf(1)
	for i, e := range evals {
		if v := qos.Violation(e.Metrics); v < bestV {
			bestV, bestIdx = v, i
		}
	}
	return evals[bestIdx], nil
}
