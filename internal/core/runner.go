package core

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/eventlog"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// DecideInput is what a power-management strategy may consult when choosing
// the policy for the upcoming epoch.
type DecideInput struct {
	// PredictedUtilization is the predictor's forecast for the first slot
	// of the upcoming epoch (§5.2.3), clamped to (0, 1).
	PredictedUtilization float64
	// Window is the recent job-event log for distribution prediction.
	Window *eventlog.Window
	// LastEpochMeanDelay and LastEpochP95Delay summarize the epoch that
	// just ended (0 when it served no jobs); the over-provisioning guard
	// keys off them.
	LastEpochMeanDelay float64
	LastEpochP95Delay  float64
	// LastEpochJobs is the number of jobs completed-or-accepted last epoch.
	LastEpochJobs int
	// Rng is the runner-provided randomness for bootstrap resampling.
	Rng *rand.Rand
}

// Strategy selects one policy per epoch. Implementations include SleepScale
// itself and the §6.1 baselines (DVFS-only, race-to-halt, fixed-state
// SleepScale).
type Strategy interface {
	// Name identifies the strategy in reports ("SS", "R2H(C6)", …).
	Name() string
	// Decide returns the policy to apply for the upcoming epoch.
	Decide(in DecideInput) (policy.Policy, error)
}

// RunnerConfig describes one trace-driven evaluation run (§6).
type RunnerConfig struct {
	// Stats is the generating workload process for the actual job stream.
	Stats workload.Stats
	// FreqExponent is the workload's β.
	FreqExponent float64
	// Profile supplies the power model.
	Profile *power.Profile
	// Trace is the per-slot utilization trace driving arrival intensity.
	Trace *trace.Trace
	// EpochSlots is T: the number of trace slots per policy epoch.
	EpochSlots int
	// Predictor forecasts per-slot utilization; it is fed the realized
	// utilization of every slot as the run plays out.
	Predictor predict.Predictor
	// Strategy picks the per-epoch policy.
	Strategy Strategy
	// WindowEpochs is how many past epochs of job logs to retain for
	// distribution prediction (default 3).
	WindowEpochs int
	// Seed drives workload generation and bootstrap resampling.
	Seed int64
}

// EpochRecord summarizes one epoch of a run.
type EpochRecord struct {
	// Index is the epoch number.
	Index int
	// Predicted is the utilization forecast the decision used.
	Predicted float64
	// Realized is the mean trace utilization over the epoch's slots.
	Realized float64
	// Policy is the strategy's choice.
	Policy policy.Policy
	// Jobs is the number of jobs arriving in the epoch.
	Jobs int
	// MeanDelay is the mean response of those jobs.
	MeanDelay float64
	// P95Delay is the ceiling nearest-rank 95th percentile of those
	// responses — the figure the over-provisioning guard keys off.
	P95Delay float64
	// Energy is the epoch's energy in joules, taken as the delta of the
	// backend's running totals at the epoch boundary. Idle spanning the
	// boundary is split exactly at it; service energy counts in the epoch
	// that accepted the job. Epoch energies therefore sum to the report's
	// Energy.
	Energy float64
	// BusyTime, WakeTime and IdleTime are the epoch's deltas of the
	// corresponding totals (farm runs sum them across servers).
	BusyTime float64
	WakeTime float64
	IdleTime float64
}

// RunReport aggregates a whole trace-driven run.
type RunReport struct {
	// Strategy and Predictor name the configuration.
	Strategy  string
	Predictor string
	// Jobs is the total number served.
	Jobs int
	// MeanResponse and P95Response are over all jobs, seconds.
	MeanResponse float64
	P95Response  float64
	// AvgPower is total energy over total duration, watts.
	AvgPower float64
	// Energy (joules) and Duration (seconds).
	Energy   float64
	Duration float64
	// Epochs records every per-epoch decision.
	Epochs []EpochRecord
	// PlanEpochs counts decision epochs per sleep-plan name (Figure 10).
	PlanEpochs map[string]int
	// MeanFrequency is the epoch-averaged selected frequency.
	MeanFrequency float64
}

// PlanFractions reports each plan's share of decision epochs, the quantity
// Figure 10 plots.
func (r *RunReport) PlanFractions() map[string]float64 {
	out := make(map[string]float64, len(r.PlanEpochs))
	total := 0
	for _, n := range r.PlanEpochs {
		total += n
	}
	if total == 0 {
		return out
	}
	for name, n := range r.PlanEpochs {
		out[name] = float64(n) / float64(total)
	}
	return out
}

// Run executes the §6 evaluation loop: generate the trace-driven job stream,
// then epoch by epoch predict utilization, let the strategy pick a policy,
// serve the epoch's jobs under it, and feed realized utilizations back to
// the predictor. Queue backlog carries across epoch boundaries, so
// under-prediction shows up as delay in later epochs exactly as §5.2.3
// describes.
//
// The job stream is never materialized: Run streams it from the
// workload.TraceGen incremental generator (seeded with cfg.Seed, so the
// stream is bit-identical to Stats.TraceJobs under the same seed) through
// RunSource, keeping peak job-buffer memory independent of trace length. A
// pre-generated slice runs through RunSource(cfg, stream.Slice(jobs)).
func Run(cfg RunnerConfig) (RunReport, error) {
	// Validate before touching cfg.Stats, so configuration mistakes stay
	// errors rather than nil-distribution panics in the generator.
	if err := validateRunner(cfg); err != nil {
		return RunReport{}, err
	}
	if cfg.Stats.Inter == nil || cfg.Stats.Size == nil {
		return RunReport{}, fmt.Errorf("core: runner needs workload stats to generate the job stream")
	}
	src, err := cfg.Stats.NewTraceGen(cfg.Trace.Utilization, cfg.Trace.SlotSeconds, cfg.Seed)
	if err != nil {
		return RunReport{}, fmt.Errorf("core: job stream: %w", err)
	}
	return RunSource(cfg, src)
}

// validateRunner is the configuration check shared by Run and RunSource.
func validateRunner(cfg RunnerConfig) error {
	if cfg.Trace == nil || cfg.Trace.Len() == 0 {
		return fmt.Errorf("core: runner needs a non-empty trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return err
	}
	if cfg.EpochSlots < 1 {
		return fmt.Errorf("core: epoch slots %d < 1", cfg.EpochSlots)
	}
	if cfg.Predictor == nil || cfg.Strategy == nil {
		return fmt.Errorf("core: runner needs a predictor and a strategy")
	}
	return nil
}

// RunSource is the streaming evaluation loop: identical epoch accounting to
// Run, with jobs pulled from src in bounded chunks — any stream.Source (a
// CSV replay, an MMPP burst overlay merged onto a trace, a flash-crowd
// scenario) drives the full runtime. cfg.Stats is not consulted; the trace
// still drives epoch boundaries and the predictor's observations. The
// source is consumed from its current position (Reset it first for
// reproducibility); cfg.Seed seeds only the strategy's bootstrap
// randomness. Jobs arriving at or after the trace's end are left unread.
func RunSource(cfg RunnerConfig, src stream.Source) (RunReport, error) {
	if err := validateRunner(cfg); err != nil {
		return RunReport{}, err
	}
	report := RunReport{
		Strategy:   cfg.Strategy.Name(),
		Predictor:  cfg.Predictor.Name(),
		PlanEpochs: make(map[string]int),
	}
	backend := &engineBackend{}
	if err := runEpochs(cfg, src, backend, &report); err != nil {
		return RunReport{}, err
	}
	res, err := backend.eng.Finish(cfg.Trace.Duration())
	if err != nil {
		return RunReport{}, err
	}
	report.Jobs = res.Jobs
	report.MeanResponse = res.MeanResponse
	report.P95Response = res.ResponseP95
	report.AvgPower = res.AvgPower
	report.Energy = res.Energy
	report.Duration = res.Duration
	return report, nil
}

// epochBackend abstracts what the epoch loop drives: one engine (RunSource)
// or a dispatched farm (RunFarmSource). applyPolicy installs the epoch's
// configuration — the first call creates the backend — and process serves
// one job, returning its response time. totalsAt reports the cumulative
// counters as of time t (idle priced to t without billing it), which the
// loop differences at epoch boundaries for per-epoch energy accounting; it
// is only called after the first applyPolicy.
type epochBackend interface {
	applyPolicy(epochStart float64, qcfg queue.Config) error
	process(j queue.Job) (float64, error)
	totalsAt(t float64) queue.Snapshot
}

// engineBackend is the single-server backend. discardResponses (the live
// runner's default) folds responses into streaming moments on creation, so
// an unbounded run holds O(1) response memory.
type engineBackend struct {
	eng              *queue.Engine
	discardResponses bool
}

func (b *engineBackend) applyPolicy(epochStart float64, qcfg queue.Config) error {
	if b.eng == nil {
		eng, err := queue.NewEngine(qcfg, 0)
		if err != nil {
			return err
		}
		if b.discardResponses {
			eng.SetRetainResponses(false)
		}
		b.eng = eng
		return nil
	}
	return b.eng.SetConfigAt(epochStart, qcfg)
}

func (b *engineBackend) process(j queue.Job) (float64, error) { return b.eng.Process(j) }

func (b *engineBackend) totalsAt(t float64) queue.Snapshot { return b.eng.TotalsAt(t) }

// runEpochs is the shared §6 epoch loop behind RunSource and RunFarmSource:
// it replays the trace slot by slot through the incremental epochLoop
// machine, offering each slot's arrivals from the chunk cursor and then the
// slot's realized utilization. The machine — the same one the live serving
// subsystem drives from sockets — predicts, decides, installs the policy on
// the backend, serves, logs the window and feeds the predictor, so batch
// and live epoch accounting (including the k = 1 bit-for-bit equivalence
// the farm runner guarantees) can never drift. It fills report.Epochs,
// PlanEpochs and MeanFrequency; closing out the backend and the aggregate
// report fields is the caller's job. cfg must already have passed
// validateRunner.
func runEpochs(cfg RunnerConfig, src stream.Source, backend epochBackend, report *RunReport) error {
	if src == nil {
		return fmt.Errorf("core: runner needs a job source")
	}
	loop, err := newEpochLoop(loopConfig{
		SlotSeconds:  cfg.Trace.SlotSeconds,
		EpochSlots:   cfg.EpochSlots,
		FreqExponent: cfg.FreqExponent,
		Profile:      cfg.Profile,
		Predictor:    cfg.Predictor,
		Strategy:     cfg.Strategy,
		WindowEpochs: cfg.WindowEpochs,
		Seed:         cfg.Seed,
	}, backend)
	if err != nil {
		return err
	}

	slotSec := cfg.Trace.SlotSeconds
	nSlots := cfg.Trace.Len()
	nEpochs := (nSlots + cfg.EpochSlots - 1) / cfg.EpochSlots
	report.Epochs = make([]EpochRecord, 0, nEpochs)

	// The chunk cursor and the machine's per-epoch job log are the run's
	// only job buffers: one chunk of lookahead plus one epoch of arrivals,
	// however long the trace. Jobs arriving at or after the trace's end are
	// never offered, so they stay unread in the source.
	cursor := stream.NewCursor(src)
	for s := 0; s < nSlots; s++ {
		slotEnd := float64(s+1) * slotSec
		for {
			j, ok := cursor.Peek()
			if !ok || j.Arrival >= slotEnd {
				break
			}
			if err := loop.OfferJob(j); err != nil {
				return err
			}
			cursor.Advance()
		}
		rec, closed, err := loop.OfferSlot(cfg.Trace.Utilization[s])
		if err != nil {
			return err
		}
		if closed {
			report.Epochs = append(report.Epochs, rec)
		}
	}
	rec, closed, err := loop.FinishEpoch()
	if err != nil {
		return err
	}
	if closed {
		report.Epochs = append(report.Epochs, rec)
	}

	if err := stream.Err(src); err != nil {
		return fmt.Errorf("core: job source: %w", err)
	}
	loop.fillReport(report)
	return nil
}

// ClampRho clamps a utilization forecast to the runner's working range
// (0.01, 0.98) — the clamp every epoch driver (batch, live, fleet) applies to
// Predictor.Predict before handing the forecast to Strategy.Decide. Exported
// so the fleet coordinator's per-server decisions use the identical clamp.
func ClampRho(r float64) float64 {
	if r < 0.01 {
		return 0.01
	}
	if r > 0.98 {
		return 0.98
	}
	return r
}
