package core

import (
	"fmt"

	"sleepscale/internal/farm"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
)

// FarmRunReport aggregates a trace-driven run over a k-server farm. The
// embedded RunReport carries the fleet-wide quantities: Jobs is the total
// served, MeanResponse the job-weighted mean across servers, AvgPower the
// cluster's steady draw (the sum of per-server average powers) and
// P95Response the worst per-server 95th percentile — the bound a
// cluster-level SLA would be held to.
type FarmRunReport struct {
	RunReport
	// Servers is the farm size k.
	Servers int
	// Dispatcher names the routing discipline.
	Dispatcher string
	// JobShare[i] is the fraction of jobs server i handled.
	JobShare []float64
	// PerServer holds each server's closed-out simulation result.
	PerServer []queue.Result
}

// farmBackend drives a dispatched farm through the shared epoch loop.
type farmBackend struct {
	servers int
	disp    farm.Dispatcher
	f       *farm.Farm
}

func (b *farmBackend) applyPolicy(epochStart float64, qcfg queue.Config) error {
	if b.f == nil {
		f, err := farm.New(b.servers, qcfg, b.disp)
		if err != nil {
			return err
		}
		b.f = f
		return nil
	}
	for s := 0; s < b.servers; s++ {
		if err := b.f.Server(s).SetConfigAt(epochStart, qcfg); err != nil {
			return fmt.Errorf("server %d: %w", s, err)
		}
	}
	return nil
}

func (b *farmBackend) process(j queue.Job) (float64, error) {
	resp, _, err := b.f.Process(j)
	return resp, err
}

func (b *farmBackend) totalsAt(t float64) queue.Snapshot {
	var sum queue.Snapshot
	for s := 0; s < b.servers; s++ {
		sn := b.f.Server(s).TotalsAt(t)
		sum.Energy += sn.Energy
		sum.BusyTime += sn.BusyTime
		sum.WakeTime += sn.WakeTime
		sum.IdleTime += sn.IdleTime
		sum.Jobs += sn.Jobs
		sum.Wakes += sn.Wakes
	}
	return sum
}

// RunFarmSource executes the §6 evaluation loop of RunSource over a
// k-server farm behind a dispatcher: one strategy decision per epoch,
// applied fleet-wide (every server switches to the chosen policy at the
// epoch boundary — the homogeneous-cluster operating model of the scale-out
// studies), with jobs pulled from src in bounded chunks and routed through
// disp at their arrival instants, so state-dependent dispatchers like JSQ
// see live backlogs. The epoch accounting is runEpochs — the same driver
// RunSource uses — so per-epoch delay statistics aggregate across the whole
// farm and feed the §5.2.3 over-provisioning guard exactly as the
// single-server runner's do; with k = 1 the report's aggregate fields match
// RunSource bit for bit.
//
// The trace drives epoch boundaries and the predictor's observations;
// cfg.Stats is not consulted. The source is consumed from its current
// position (Reset it first for reproducibility). Jobs arriving at or after
// the trace's end are left unread.
func RunFarmSource(cfg RunnerConfig, servers int, disp farm.Dispatcher, src stream.Source) (FarmRunReport, error) {
	if err := validateRunner(cfg); err != nil {
		return FarmRunReport{}, err
	}
	if servers < 1 {
		return FarmRunReport{}, fmt.Errorf("core: farm size %d < 1", servers)
	}
	if disp == nil {
		return FarmRunReport{}, fmt.Errorf("core: farm runner needs a dispatcher")
	}
	report := FarmRunReport{
		RunReport: RunReport{
			Strategy:   cfg.Strategy.Name(),
			Predictor:  cfg.Predictor.Name(),
			PlanEpochs: make(map[string]int),
		},
		Servers:    servers,
		Dispatcher: disp.Name(),
	}
	backend := &farmBackend{servers: servers, disp: disp}
	if err := runEpochs(cfg, src, backend, &report.RunReport); err != nil {
		return FarmRunReport{}, err
	}
	res, err := backend.f.Finish(cfg.Trace.Duration())
	if err != nil {
		return FarmRunReport{}, err
	}
	report.Jobs = res.Jobs
	report.MeanResponse = res.MeanResponse
	report.AvgPower = res.TotalAvgPower
	report.Energy = res.Energy
	report.JobShare = res.JobShare
	report.PerServer = res.PerServer
	for _, sr := range res.PerServer {
		if sr.ResponseP95 > report.P95Response {
			report.P95Response = sr.ResponseP95
		}
		if sr.Duration > report.Duration {
			report.Duration = sr.Duration
		}
	}
	return report, nil
}
