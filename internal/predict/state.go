package predict

// Checkpoint support: every predictor implements encoding.BinaryMarshaler
// and encoding.BinaryUnmarshaler over its full mutable state, so a
// long-running serve loop can persist its predictor mid-stream and restore
// it bit-identically — the restored predictor's every future Predict agrees
// with the uninterrupted one's exactly (state is carried as raw float64
// bits, never reformatted). UnmarshalBinary restores *state only*: it is
// called on a predictor constructed with the same configuration (depth,
// step, period, …) as the one that was marshaled, and fails loudly on a
// type-tag mismatch or a malformed blob rather than guessing.

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
)

// Type tags keep a blob from being restored into the wrong predictor.
const (
	tagNaive    = uint32(0x5053_4e50) // "PSNP"
	tagMovAvg   = uint32(0x5053_4d41) // "PSMA"
	tagLMS      = uint32(0x5053_4c53) // "PSLS"
	tagLMSCUSUM = uint32(0x5053_4c43) // "PSLC"
	tagSeasonal = uint32(0x5053_5345) // "PSSE"
	tagOffline  = uint32(0x5053_4f46) // "PSOF"
)

// stateEnc builds a little-endian state blob.
type stateEnc struct{ b []byte }

func (e *stateEnc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *stateEnc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *stateEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *stateEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *stateEnc) floats(vs []float64) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}
func (e *stateEnc) blob(b []byte) {
	e.u64(uint64(len(b)))
	e.b = append(e.b, b...)
}

// stateDec consumes a state blob, latching the first error.
type stateDec struct {
	b   []byte
	err error
}

func (d *stateDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("predict: "+format, args...)
	}
}

func (d *stateDec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated state")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *stateDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated state")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *stateDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *stateDec) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("truncated state")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *stateDec) count() int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.b)/8) {
		d.fail("length %d exceeds remaining state", n)
		return 0
	}
	return int(n)
}

func (d *stateDec) floats() []float64 {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *stateDec) blob() []byte {
	if d.err != nil {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("blob length %d exceeds remaining state", n)
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *stateDec) tag(want uint32, who string) {
	if got := d.u32(); d.err == nil && got != want {
		d.fail("%s: state tag %#x, want %#x", who, got, want)
	}
}

func (d *stateDec) finish(who string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("predict: %s: %d trailing bytes in state", who, len(d.b))
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (n *NaivePrevious) MarshalBinary() ([]byte, error) {
	var e stateEnc
	e.u32(tagNaive)
	e.f64(n.last)
	e.boolean(n.seen)
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (n *NaivePrevious) UnmarshalBinary(data []byte) error {
	d := stateDec{b: data}
	d.tag(tagNaive, "NP")
	last, seen := d.f64(), d.boolean()
	if err := d.finish("NP"); err != nil {
		return err
	}
	n.last, n.seen = last, seen
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *MovingAverage) MarshalBinary() ([]byte, error) {
	var e stateEnc
	e.u32(tagMovAvg)
	e.u64(uint64(m.p))
	e.floats(m.window)
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *MovingAverage) UnmarshalBinary(data []byte) error {
	d := stateDec{b: data}
	d.tag(tagMovAvg, "MA")
	p := int(d.u64())
	window := d.floats()
	if err := d.finish("MA"); err != nil {
		return err
	}
	if p != m.p {
		return fmt.Errorf("predict: MA: state window %d, predictor configured for %d", p, m.p)
	}
	if len(window) > p {
		return fmt.Errorf("predict: MA: state holds %d observations, window is %d", len(window), p)
	}
	m.window = window
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (l *LMS) MarshalBinary() ([]byte, error) {
	var e stateEnc
	e.u32(tagLMS)
	e.u64(uint64(l.hist))
	e.u64(uint64(l.p))
	e.f64(l.step)
	e.floats(l.weights)
	e.floats(l.history)
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (l *LMS) UnmarshalBinary(data []byte) error {
	d := stateDec{b: data}
	d.tag(tagLMS, "LMS")
	hist, p := int(d.u64()), int(d.u64())
	step := d.f64()
	weights := d.floats()
	history := d.floats()
	if err := d.finish("LMS"); err != nil {
		return err
	}
	if hist != l.hist {
		return fmt.Errorf("predict: LMS: state depth %d, predictor configured for %d", hist, l.hist)
	}
	if p < 1 || p > hist {
		return fmt.Errorf("predict: LMS: active depth %d outside [1,%d]", p, hist)
	}
	if len(weights) != hist {
		return fmt.Errorf("predict: LMS: %d weights, want %d", len(weights), hist)
	}
	if len(history) > hist {
		return fmt.Errorf("predict: LMS: history %d deeper than %d", len(history), hist)
	}
	l.p, l.step = p, step
	l.weights = weights
	l.history = history
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *LMSCUSUM) MarshalBinary() ([]byte, error) {
	inner, err := c.lms.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var e stateEnc
	e.u32(tagLMSCUSUM)
	e.blob(inner)
	e.f64(c.ewmaAbs)
	e.f64(c.ewmaSq)
	e.u64(uint64(c.warm))
	e.f64(c.K)
	e.f64(c.Floor)
	e.u64(uint64(c.alarms))
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *LMSCUSUM) UnmarshalBinary(data []byte) error {
	d := stateDec{b: data}
	d.tag(tagLMSCUSUM, "LC")
	inner := d.blob()
	ewmaAbs, ewmaSq := d.f64(), d.f64()
	warm := int(d.u64())
	k, floor := d.f64(), d.f64()
	alarms := int(d.u64())
	if err := d.finish("LC"); err != nil {
		return err
	}
	if err := c.lms.UnmarshalBinary(inner); err != nil {
		return err
	}
	c.ewmaAbs, c.ewmaSq = ewmaAbs, ewmaSq
	c.warm = warm
	c.K, c.Floor = k, floor
	c.alarms = alarms
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler; the base predictor must
// itself be a BinaryMarshaler.
func (s *Seasonal) MarshalBinary() ([]byte, error) {
	bm, ok := s.base.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("predict: seasonal base %s is not checkpointable", s.base.Name())
	}
	inner, err := bm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var e stateEnc
	e.u32(tagSeasonal)
	e.blob(inner)
	e.u64(uint64(s.period))
	e.floats(s.history)
	e.f64(s.baseErr)
	e.f64(s.seasonErr)
	e.boolean(s.warm)
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the base predictor
// must itself be a BinaryUnmarshaler.
func (s *Seasonal) UnmarshalBinary(data []byte) error {
	bu, ok := s.base.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("predict: seasonal base %s is not checkpointable", s.base.Name())
	}
	d := stateDec{b: data}
	d.tag(tagSeasonal, "seasonal")
	inner := d.blob()
	period := int(d.u64())
	history := d.floats()
	baseErr, seasonErr := d.f64(), d.f64()
	warm := d.boolean()
	if err := d.finish("seasonal"); err != nil {
		return err
	}
	if period != s.period {
		return fmt.Errorf("predict: seasonal: state period %d, predictor configured for %d", period, s.period)
	}
	if err := bu.UnmarshalBinary(inner); err != nil {
		return err
	}
	s.history = history
	s.baseErr, s.seasonErr = baseErr, seasonErr
	s.warm = warm
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Only the cursor is
// state; the true sequence is construction configuration.
func (o *Offline) MarshalBinary() ([]byte, error) {
	var e stateEnc
	e.u32(tagOffline)
	e.u64(uint64(o.idx))
	return e.b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (o *Offline) UnmarshalBinary(data []byte) error {
	d := stateDec{b: data}
	d.tag(tagOffline, "offline")
	idx := int(d.u64())
	if err := d.finish("offline"); err != nil {
		return err
	}
	o.idx = idx
	return nil
}
