package predict

import (
	"math"
	"math/rand"
	"testing"
)

// run drives a predictor over a sequence, returning the per-slot forecasts
// (forecast[i] precedes Observe(seq[i])) and the mean absolute error.
func run(p Predictor, seq []float64) (forecasts []float64, mae float64) {
	forecasts = make([]float64, len(seq))
	var sum float64
	for i, actual := range seq {
		forecasts[i] = p.Predict()
		sum += math.Abs(forecasts[i] - actual)
		p.Observe(actual)
	}
	return forecasts, sum / float64(len(seq))
}

func TestNaivePrevious(t *testing.T) {
	p := NewNaivePrevious()
	if got := p.Predict(); got != 0 {
		t.Errorf("initial prediction = %v, want 0", got)
	}
	p.Observe(0.7)
	if got := p.Predict(); got != 0.7 {
		t.Errorf("prediction = %v, want 0.7", got)
	}
	p.Observe(0.2)
	if got := p.Predict(); got != 0.2 {
		t.Errorf("prediction = %v, want 0.2", got)
	}
	if p.Name() != "NP" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestMovingAverage(t *testing.T) {
	p := NewMovingAverage(3)
	if got := p.Predict(); got != 0 {
		t.Errorf("initial prediction = %v, want 0", got)
	}
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		p.Observe(x)
	}
	// Window of 3: mean(0.4, 0.6, 0.8) = 0.6.
	if got := p.Predict(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("prediction = %v, want 0.6", got)
	}
	if NewMovingAverage(0).p != 1 {
		t.Error("window must be repaired to >= 1")
	}
}

func TestLMSConstructorValidation(t *testing.T) {
	if _, err := NewLMS(0, 0.5); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewLMS(5, 0); err == nil {
		t.Error("step=0 accepted")
	}
	if _, err := NewLMS(5, 2); err == nil {
		t.Error("step=2 accepted")
	}
	if _, err := NewLMSCUSUM(0, 0.5); err == nil {
		t.Error("LC with p=0 accepted")
	}
}

func TestLMSConvergesOnConstant(t *testing.T) {
	p, err := NewLMS(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]float64, 200)
	for i := range seq {
		seq[i] = 0.6
	}
	forecasts, _ := run(p, seq)
	for i := 50; i < len(forecasts); i++ {
		if math.Abs(forecasts[i]-0.6) > 0.01 {
			t.Fatalf("slot %d forecast %v, want ≈0.6 after convergence", i, forecasts[i])
		}
	}
}

func TestLMSBeatsNaiveOnNoisyStationary(t *testing.T) {
	// White noise around a level: smoothing should beat copying the last
	// noisy value (the paper's argument for LMS over naive).
	rng := rand.New(rand.NewSource(2))
	seq := make([]float64, 600)
	for i := range seq {
		seq[i] = 0.5 + 0.1*rng.NormFloat64()
	}
	lms, err := NewLMS(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, maeLMS := run(lms, seq)
	_, maeNP := run(NewNaivePrevious(), seq)
	if maeLMS >= maeNP {
		t.Errorf("LMS mae %v not better than naive %v on stationary noise", maeLMS, maeNP)
	}
}

func TestLMSAdaptiveWeightsBeatMovingAverage(t *testing.T) {
	// A slow trend: adaptive weights should beat the fixed uniform window
	// (§5.2.2: "LMS outperforms the moving average predictor").
	seq := make([]float64, 500)
	for i := range seq {
		seq[i] = 0.2 + 0.5*float64(i)/500
	}
	lms, err := NewLMS(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, maeLMS := run(lms, seq)
	_, maeMA := run(NewMovingAverage(10), seq)
	if maeLMS >= maeMA {
		t.Errorf("LMS mae %v not better than MA %v on trend", maeLMS, maeMA)
	}
}

func TestLMSCUSUMDetectsStepChange(t *testing.T) {
	lc, err := NewLMSCUSUM(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Stationary at 0.2 for 100 slots, then a step to 0.8.
	seq := make([]float64, 160)
	for i := range seq {
		if i < 100 {
			seq[i] = 0.2
		} else {
			seq[i] = 0.8
		}
	}
	forecasts, _ := run(lc, seq)
	if lc.Alarms() == 0 {
		t.Fatal("CUSUM did not fire on a 0.2→0.8 step")
	}
	// Within a few slots of the step the forecast must have tracked it.
	for i := 104; i < 120; i++ {
		if math.Abs(forecasts[i]-0.8) > 0.1 {
			t.Errorf("slot %d forecast %v, want ≈0.8 shortly after step", i, forecasts[i])
		}
	}
}

func TestLMSCUSUMTracksStepFasterThanLMS(t *testing.T) {
	seq := make([]float64, 140)
	for i := range seq {
		if i < 100 {
			seq[i] = 0.2
		} else {
			seq[i] = 0.8
		}
	}
	lc, _ := NewLMSCUSUM(10, 0.5)
	lms, _ := NewLMS(10, 0.5)
	fLC, _ := run(lc, seq)
	fLMS, _ := run(lms, seq)
	// Compare cumulative error over the 10 slots after the step.
	var eLC, eLMS float64
	for i := 100; i < 110; i++ {
		eLC += math.Abs(fLC[i] - seq[i])
		eLMS += math.Abs(fLMS[i] - seq[i])
	}
	if eLC >= eLMS {
		t.Errorf("LC post-step error %v not below LMS %v", eLC, eLMS)
	}
}

func TestLMSCUSUMDepthResetAndRegrowth(t *testing.T) {
	lc, _ := NewLMSCUSUM(10, 0.5)
	for i := 0; i < 100; i++ {
		lc.Predict()
		lc.Observe(0.3)
	}
	if lc.Depth() != 10 {
		t.Fatalf("steady-state depth = %d, want 10", lc.Depth())
	}
	// Force a step; depth must drop to 1 on the alarm slot.
	lc.Predict()
	lc.Observe(0.9)
	if lc.Depth() != 1 {
		t.Fatalf("post-alarm depth = %d, want 1", lc.Depth())
	}
	// Stationary again: depth regrows to the maximum.
	for i := 0; i < 20; i++ {
		lc.Predict()
		lc.Observe(0.9)
	}
	if lc.Depth() != 10 {
		t.Errorf("regrown depth = %d, want 10", lc.Depth())
	}
}

func TestLMSCUSUMNoFalseAlarmsOnConstant(t *testing.T) {
	lc, _ := NewLMSCUSUM(10, 0.5)
	for i := 0; i < 500; i++ {
		lc.Predict()
		lc.Observe(0.4)
	}
	if lc.Alarms() != 0 {
		t.Errorf("alarms on constant input = %d, want 0", lc.Alarms())
	}
}

func TestOfflineIsExact(t *testing.T) {
	seq := []float64{0.1, 0.5, 0.9, 0.3}
	o := NewOffline(seq)
	_, mae := run(o, seq)
	if mae != 0 {
		t.Errorf("offline mae = %v, want 0", mae)
	}
	// Exhausted sequence repeats the final value.
	if got := o.Predict(); got != 0.3 {
		t.Errorf("post-sequence prediction = %v, want 0.3", got)
	}
	if NewOffline(nil).Predict() != 0 {
		t.Error("empty offline should predict 0")
	}
}

func TestOfflineCopiesInput(t *testing.T) {
	seq := []float64{0.5}
	o := NewOffline(seq)
	seq[0] = 0.9
	if got := o.Predict(); got != 0.5 {
		t.Errorf("offline aliases caller slice: %v", got)
	}
}

func TestPredictionsClamped(t *testing.T) {
	preds := []Predictor{NewNaivePrevious(), NewMovingAverage(5)}
	lms, _ := NewLMS(5, 0.9)
	lc, _ := NewLMSCUSUM(5, 0.9)
	preds = append(preds, lms, lc)
	rng := rand.New(rand.NewSource(8))
	for _, p := range preds {
		for i := 0; i < 300; i++ {
			got := p.Predict()
			if got < 0 || got > 1 {
				t.Fatalf("%s forecast %v outside [0,1]", p.Name(), got)
			}
			p.Observe(rng.Float64())
		}
	}
}

func TestNames(t *testing.T) {
	lms, _ := NewLMS(5, 0.5)
	lc, _ := NewLMSCUSUM(5, 0.5)
	names := map[string]Predictor{
		"NP": NewNaivePrevious(), "MA": NewMovingAverage(3),
		"LMS": lms, "LC": lc, "Offline": NewOffline(nil),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}

func TestSeasonalConstruction(t *testing.T) {
	if _, err := NewSeasonal(nil, 10); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSeasonal(NewNaivePrevious(), 0); err == nil {
		t.Error("period 0 accepted")
	}
	s, err := NewSeasonal(NewNaivePrevious(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "NP+seasonal" {
		t.Errorf("name = %q", s.Name())
	}
}

// TestSeasonalBeatsBaseOnPeriodicSignal: on a strongly periodic trace with
// sharp pattern edges, day-over-day memory should beat the purely local
// predictor — the §5.2.2 improvement.
func TestSeasonalBeatsBaseOnPeriodicSignal(t *testing.T) {
	const period = 100
	seq := make([]float64, 8*period)
	for i := range seq {
		phase := i % period
		if phase < 30 {
			seq[i] = 0.15
		} else if phase < 60 {
			seq[i] = 0.75 // sharp repeated surge
		} else {
			seq[i] = 0.35
		}
	}
	lcBase, err := NewLMSCUSUM(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seasonal, err := NewSeasonal(lcBase, period)
	if err != nil {
		t.Fatal(err)
	}
	lcAlone, err := NewLMSCUSUM(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Score only after the first period so both have seen the pattern.
	score := func(p Predictor) float64 {
		var sum float64
		for i, x := range seq {
			f := p.Predict()
			if i >= period {
				sum += math.Abs(f - x)
			}
			p.Observe(x)
		}
		return sum / float64(len(seq)-period)
	}
	maeSeasonal := score(seasonal)
	maeAlone := score(lcAlone)
	if maeSeasonal >= maeAlone {
		t.Errorf("seasonal mae %v not below base %v on periodic signal", maeSeasonal, maeAlone)
	}
}

// TestSeasonalFallsBackBeforeOnePeriod: without a full period of history
// the wrapper must defer entirely to its base.
func TestSeasonalFallsBackBeforeOnePeriod(t *testing.T) {
	base := NewNaivePrevious()
	s, err := NewSeasonal(NewNaivePrevious(), 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := float64(i%7) / 10
		if s.Predict() != base.Predict() {
			t.Fatalf("slot %d: seasonal diverged from base before one period", i)
		}
		s.Observe(x)
		base.Observe(x)
	}
}

// TestSeasonalAdaptsAwayFromBrokenSeason: when the daily pattern breaks
// (no repetition), the adaptive blend must keep tracking near the base
// predictor rather than chasing stale history.
func TestSeasonalAdaptsAwayFromBrokenSeason(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := make([]float64, 600)
	for i := range seq {
		seq[i] = rng.Float64() * 0.9 // no periodic structure at period 50
	}
	base, _ := NewLMS(10, 0.5)
	s, err := NewSeasonal(base, 50)
	if err != nil {
		t.Fatal(err)
	}
	alone, _ := NewLMS(10, 0.5)
	score := func(p Predictor) float64 {
		var sum float64
		for _, x := range seq {
			sum += math.Abs(p.Predict() - x)
			p.Observe(x)
		}
		return sum / float64(len(seq))
	}
	maeS := score(s)
	maeA := score(alone)
	if maeS > maeA*1.25 {
		t.Errorf("seasonal mae %v collapsed vs base %v on aperiodic signal", maeS, maeA)
	}
}

// The email-store-like scenario: diurnal ramp with a square surge. LC should
// be no worse than LMS overall.
func TestLCAtLeastAsGoodAsLMSOnSurgeSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	seq := make([]float64, 1000)
	for i := range seq {
		base := 0.3 + 0.2*math.Sin(float64(i)/120)
		if i%250 > 200 { // periodic surges
			base += 0.4
		}
		seq[i] = base + 0.02*rng.NormFloat64()
		if seq[i] < 0 {
			seq[i] = 0
		}
		if seq[i] > 1 {
			seq[i] = 1
		}
	}
	lc, _ := NewLMSCUSUM(10, 0.5)
	lms, _ := NewLMS(10, 0.5)
	_, maeLC := run(lc, seq)
	_, maeLMS := run(lms, seq)
	if maeLC > maeLMS*1.05 {
		t.Errorf("LC mae %v clearly worse than LMS %v on surge signal", maeLC, maeLMS)
	}
}
