package predict

import (
	"encoding"
	"math"
	"testing"
)

// checkpointable pairs the predictor interface with the marshaling side.
type checkpointable interface {
	Predictor
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// synthetic utilization trace with drift and a level shift, enough to warm
// every predictor's internal state.
func stateTrace(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := 0.45 + 0.3*math.Sin(float64(i)/7) + 0.01*float64(i%13)
		if i > n/2 {
			x += 0.25
		}
		out[i] = math.Min(0.95, math.Max(0.05, x))
	}
	return out
}

func TestStateRoundTripMidStream(t *testing.T) {
	cases := []struct {
		name  string
		make  func() checkpointable
		split int
	}{
		{"naive", func() checkpointable { return NewNaivePrevious() }, 17},
		{"moving-average", func() checkpointable { return NewMovingAverage(5) }, 23},
		{"moving-average-cold", func() checkpointable { return NewMovingAverage(5) }, 2},
		{"lms", func() checkpointable {
			l, err := NewLMS(8, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			return l
		}, 31},
		{"lms-cusum", func() checkpointable {
			c, err := NewLMSCUSUM(8, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}, 41},
		{"seasonal-lms", func() checkpointable {
			l, err := NewLMS(6, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSeasonal(l, 12)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, 37},
		{"offline", func() checkpointable { return NewOffline(stateTrace(90)) }, 29},
	}
	trace := stateTrace(90)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.make()
			for _, x := range trace[:tc.split] {
				ref.Predict()
				ref.Observe(x)
			}
			blob, err := ref.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			restored := tc.make()
			if err := restored.UnmarshalBinary(blob); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			// The restored predictor must track the original bit-for-bit
			// over the remainder of the stream.
			for i, x := range trace[tc.split:] {
				want, got := ref.Predict(), restored.Predict()
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("step %d: restored Predict %v, want %v", i, got, want)
				}
				ref.Observe(x)
				restored.Observe(x)
			}
			// And re-marshaling both must agree.
			b1, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := restored.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("post-restore state blobs diverge")
			}
		})
	}
}

func TestStateRejectsWrongTag(t *testing.T) {
	blob, err := NewNaivePrevious().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewMovingAverage(3).UnmarshalBinary(blob); err == nil {
		t.Fatal("MA accepted an NP state blob")
	}
}

func TestStateRejectsTruncationAndTrailing(t *testing.T) {
	l, err := NewLMS(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range stateTrace(20) {
		l.Predict()
		l.Observe(x)
	}
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *LMS {
		v, err := NewLMS(4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Every truncation must error, never panic.
	for cut := 0; cut < len(blob); cut++ {
		if err := fresh().UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", cut)
		}
	}
	if err := fresh().UnmarshalBinary(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	// Mismatched configuration must be rejected too.
	if other, err2 := NewLMS(5, 0.5); err2 == nil {
		if err := other.UnmarshalBinary(blob); err == nil {
			t.Fatal("depth-5 LMS accepted depth-4 state")
		}
	}
}

func TestStateRejectsOversizedLengths(t *testing.T) {
	blob, err := NewMovingAverage(3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the window length field (after 4-byte tag + 8-byte p) to a
	// huge value; the decoder must refuse rather than allocate or panic.
	bad := append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		bad[4+8+i] = 0xff
	}
	if err := NewMovingAverage(3).UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted absurd length field")
	}
}
