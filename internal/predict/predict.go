// Package predict implements the utilization predictors of §5.2.2: the
// naive-previous predictor, a (normalized) least-mean-square adaptive
// filter, the LMS + CUSUM change-point combination of Algorithm 2, a moving
// average baseline, and the offline genie the evaluation compares against.
//
// All predictors share the same epoch protocol: Predict() forecasts the
// utilization of the upcoming slot, then Observe(actual) feeds back the
// realized value once the slot ends. Forecasts are clamped to [0, 1].
package predict

import (
	"fmt"
	"math"
)

// Predictor forecasts per-slot utilization from causally observed history.
type Predictor interface {
	// Predict returns the forecast for the next slot.
	Predict() float64
	// Observe records the realized utilization of the slot just ended.
	Observe(actual float64)
	// Name identifies the predictor in reports ("NP", "LMS", "LC", …).
	Name() string
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// NaivePrevious predicts the most recently observed utilization: best at
// tracking sudden changes, worst at stationary noise.
type NaivePrevious struct {
	last float64
	seen bool
}

// NewNaivePrevious returns a naive-previous predictor.
func NewNaivePrevious() *NaivePrevious { return &NaivePrevious{} }

// Predict implements Predictor. Before any observation it returns 0.
func (n *NaivePrevious) Predict() float64 {
	if !n.seen {
		return 0
	}
	return clamp01(n.last)
}

// Observe implements Predictor.
func (n *NaivePrevious) Observe(actual float64) { n.last, n.seen = actual, true }

// Name implements Predictor.
func (n *NaivePrevious) Name() string { return "NP" }

// MovingAverage predicts the mean of the last p observations. The paper uses
// it only as the strawman LMS beats; it is here for the same comparison.
type MovingAverage struct {
	window []float64
	p      int
}

// NewMovingAverage returns a moving-average predictor over p slots.
func NewMovingAverage(p int) *MovingAverage {
	if p < 1 {
		p = 1
	}
	return &MovingAverage{p: p}
}

// Predict implements Predictor.
func (m *MovingAverage) Predict() float64 {
	if len(m.window) == 0 {
		return 0
	}
	var sum float64
	for _, x := range m.window {
		sum += x
	}
	return clamp01(sum / float64(len(m.window)))
}

// Observe implements Predictor.
func (m *MovingAverage) Observe(actual float64) {
	m.window = append(m.window, actual)
	if len(m.window) > m.p {
		m.window = m.window[1:]
	}
}

// Name implements Predictor.
func (m *MovingAverage) Name() string { return "MA" }

// LMS is a normalized least-mean-square adaptive filter over the last p
// observations. Weights are updated on every observation by the NLMS rule
// v ← v + µ·e·x/(ε+‖x‖²), which outperforms a fixed moving average because
// the weights adapt to the signal (§5.2.2).
type LMS struct {
	hist    int       // maximum history depth
	p       int       // current depth (< hist while recovering from reset)
	weights []float64 // weights[0] applies to the most recent observation
	history []float64 // history[0] is the most recent observation
	step    float64   // NLMS step size µ
}

// NewLMS returns an LMS predictor with history depth p (the paper uses 10)
// and NLMS step size step (0.5 is a robust default; must be in (0, 2) for
// stability).
func NewLMS(p int, step float64) (*LMS, error) {
	if p < 1 {
		return nil, fmt.Errorf("predict: history depth %d < 1", p)
	}
	if step <= 0 || step >= 2 {
		return nil, fmt.Errorf("predict: NLMS step %g outside (0,2)", step)
	}
	l := &LMS{hist: p, p: p, step: step, weights: make([]float64, p)}
	for i := range l.weights {
		l.weights[i] = 1 / float64(p)
	}
	return l, nil
}

// Predict implements Predictor: ρ'(t) = clamp(Σᵢ vᵢ·ρ(t−i)).
func (l *LMS) Predict() float64 {
	if len(l.history) == 0 {
		return 0
	}
	var sum float64
	n := min(l.p, len(l.history))
	var wsum float64
	for i := 0; i < n; i++ {
		sum += l.weights[i] * l.history[i]
		wsum += l.weights[i]
	}
	if n < l.p && wsum != 0 {
		// Not enough history yet: renormalize the visible weights so the
		// forecast is not biased toward zero.
		sum /= wsum
	}
	return clamp01(sum)
}

// Observe implements Predictor: computes the prediction error and applies
// the NLMS update.
func (l *LMS) Observe(actual float64) {
	if len(l.history) > 0 {
		pred := l.Predict()
		err := actual - pred
		n := min(l.p, len(l.history))
		var norm float64
		for i := 0; i < n; i++ {
			norm += l.history[i] * l.history[i]
		}
		const eps = 1e-6
		for i := 0; i < n; i++ {
			l.weights[i] += l.step * err * l.history[i] / (eps + norm)
		}
	}
	l.push(actual)
}

func (l *LMS) push(x float64) {
	if cap(l.history) < l.hist {
		// First pushes (or a restore that handed us a tight slice): move to
		// a full-depth buffer once, then shift in place forever after.
		h := make([]float64, len(l.history), l.hist)
		copy(h, l.history)
		l.history = h
	}
	if len(l.history) < l.hist {
		l.history = l.history[:len(l.history)+1]
	}
	copy(l.history[1:], l.history)
	l.history[0] = x
}

// Name implements Predictor.
func (l *LMS) Name() string { return "LMS" }

// weightSum reports Σ vᵢ over the active depth.
func (l *LMS) weightSum() float64 {
	var s float64
	for i := 0; i < l.p; i++ {
		s += l.weights[i]
	}
	return s
}

// LMSCUSUM is Algorithm 2: an LMS filter guarded by a CUSUM change-point
// test on the prediction error. When an abrupt utilization change is
// detected the look-back depth p resets to 1 (dropping the smoothing so the
// filter can track the change), then grows back to the maximum as long as no
// further change fires.
type LMSCUSUM struct {
	lms *LMS
	// CUSUM state: EWMA estimates of the absolute error and its square,
	// used as the adaptive threshold ("some adaptive threshold", line 8).
	ewmaAbs float64
	ewmaSq  float64
	warm    int
	// K is the alarm sensitivity in standard deviations, Floor the minimum
	// absolute error that can fire.
	K     float64
	Floor float64
	// alarms counts detected change points (exported via Alarms).
	alarms int
}

// NewLMSCUSUM returns an Algorithm 2 predictor with history depth p and NLMS
// step size step. Sensitivity defaults: K = 4 standard deviations with an
// absolute floor of 0.04 utilization.
func NewLMSCUSUM(p int, step float64) (*LMSCUSUM, error) {
	l, err := NewLMS(p, step)
	if err != nil {
		return nil, err
	}
	return &LMSCUSUM{lms: l, K: 4, Floor: 0.04}, nil
}

// Predict implements Predictor.
func (c *LMSCUSUM) Predict() float64 { return c.lms.Predict() }

// Observe implements Predictor, applying lines 6–13 of Algorithm 2.
func (c *LMSCUSUM) Observe(actual float64) {
	if len(c.lms.history) == 0 {
		c.lms.Observe(actual)
		return
	}
	absErr := math.Abs(actual - c.lms.Predict())
	// Adaptive threshold from EWMA error statistics (computed before this
	// observation so a surge does not raise its own threshold).
	const alpha = 0.05
	mean := c.ewmaAbs
	sd := math.Sqrt(math.Max(0, c.ewmaSq-mean*mean))
	threshold := math.Max(c.Floor, mean+c.K*sd)
	c.ewmaAbs = (1-alpha)*c.ewmaAbs + alpha*absErr
	c.ewmaSq = (1-alpha)*c.ewmaSq + alpha*absErr*absErr
	if c.warm < 5 {
		// Do not alarm while the error statistics are still warming up.
		c.warm++
		c.lms.Observe(actual)
		c.growDepth()
		return
	}
	if absErr > threshold {
		// Line 10: reset p = 1, v(1) = sum(v) — drop the smoothing. The
		// weight sum is taken before any NLMS update: updating against a
		// regime that just ended would only corrupt the weights (a
		// converged filter has Σv ≈ 1, so the reset behaves like
		// naive-previous until the depth regrows).
		c.alarms++
		total := c.lms.weightSum()
		c.lms.p = 1
		c.lms.weights[0] = total
		c.lms.push(actual)
		return
	}
	c.lms.Observe(actual)
	c.growDepth()
}

// growDepth implements line 12: grow p toward hist, redistributing the
// weight mass uniformly over the wider window while recovering.
func (c *LMSCUSUM) growDepth() {
	l := c.lms
	if l.p >= l.hist {
		return
	}
	total := l.weightSum()
	l.p++
	for i := 0; i < l.p; i++ {
		l.weights[i] = total / float64(l.p)
	}
	for i := l.p; i < l.hist; i++ {
		l.weights[i] = 0
	}
}

// Alarms reports the number of change points detected so far.
func (c *LMSCUSUM) Alarms() int { return c.alarms }

// Depth reports the current look-back depth (1 right after a reset).
func (c *LMSCUSUM) Depth() int { return c.lms.p }

// Name implements Predictor.
func (c *LMSCUSUM) Name() string { return "LC" }

// Seasonal augments a base predictor with the day-over-day correlation
// §5.2.2 points at ("the accuracy of these predictors can be further
// improved by considering the correlation (i.e., repeated daily patterns)
// across past days"): the forecast blends the base predictor's output with
// the utilization observed exactly one period (e.g. 1440 minutes) earlier.
// The blend weight adapts by comparing the two sources' recent errors.
type Seasonal struct {
	base    Predictor
	period  int
	history []float64
	// EWMA absolute errors of the two sources drive the blend.
	baseErr   float64
	seasonErr float64
	warm      bool
}

// NewSeasonal wraps base with a periodic memory of the given period (in
// slots; 1440 for daily patterns on minute traces).
func NewSeasonal(base Predictor, period int) (*Seasonal, error) {
	if base == nil {
		return nil, fmt.Errorf("predict: nil base predictor")
	}
	if period < 1 {
		return nil, fmt.Errorf("predict: period %d < 1", period)
	}
	return &Seasonal{base: base, period: period}, nil
}

// seasonal returns last period's value for the upcoming slot, or ok=false
// before one full period has been observed.
func (s *Seasonal) seasonal() (float64, bool) {
	if len(s.history) < s.period {
		return 0, false
	}
	return s.history[len(s.history)-s.period], true
}

// Predict implements Predictor.
func (s *Seasonal) Predict() float64 {
	b := s.base.Predict()
	sv, ok := s.seasonal()
	if !ok {
		return b
	}
	// Inverse-error weighting with a floor so neither source is silenced.
	const eps = 1e-3
	wb := 1 / (eps + s.baseErr)
	ws := 1 / (eps + s.seasonErr)
	return clamp01((wb*b + ws*sv) / (wb + ws))
}

// Observe implements Predictor.
func (s *Seasonal) Observe(actual float64) {
	const alpha = 0.05
	be := math.Abs(s.base.Predict() - actual)
	if sv, ok := s.seasonal(); ok {
		se := math.Abs(sv - actual)
		if !s.warm {
			s.baseErr, s.seasonErr, s.warm = be, se, true
		} else {
			s.baseErr = (1-alpha)*s.baseErr + alpha*be
			s.seasonErr = (1-alpha)*s.seasonErr + alpha*se
		}
	}
	s.base.Observe(actual)
	s.history = append(s.history, actual)
	if len(s.history) > 2*s.period {
		// Keep a bounded window: only the last period is ever read.
		s.history = s.history[len(s.history)-s.period:]
	}
}

// Name implements Predictor.
func (s *Seasonal) Name() string { return s.base.Name() + "+seasonal" }

// Offline is the genie-aided predictor of §6.1: it knows the true
// utilization sequence non-causally and predicts it exactly.
type Offline struct {
	values []float64
	idx    int
}

// NewOffline returns an offline predictor over the given true sequence.
func NewOffline(values []float64) *Offline {
	vs := make([]float64, len(values))
	copy(vs, values)
	return &Offline{values: vs}
}

// Predict implements Predictor: the true value of the upcoming slot (or the
// final value once the sequence is exhausted).
func (o *Offline) Predict() float64 {
	if len(o.values) == 0 {
		return 0
	}
	i := o.idx
	if i >= len(o.values) {
		i = len(o.values) - 1
	}
	return clamp01(o.values[i])
}

// Observe implements Predictor: advances to the next slot.
func (o *Offline) Observe(float64) { o.idx++ }

// Name implements Predictor.
func (o *Offline) Name() string { return "Offline" }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
