package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// RenewalConfig parameterizes a fleet of independent per-server
// crash/repair renewal processes.
type RenewalConfig struct {
	// Servers is the fleet size; servers are numbered [0, Servers).
	Servers int
	// MTBF is the mean time between failures: each server's up intervals
	// are Exp(1/MTBF) draws. Seconds.
	MTBF float64
	// MTTR is the mean time to repair: each server's down intervals are
	// Exp(1/MTTR) draws. Seconds.
	MTTR float64
	// Horizon bounds the timeline: no event is emitted at or beyond it.
	// It normally equals the run duration.
	Horizon float64
}

// Validate rejects unusable configurations.
func (c RenewalConfig) Validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("fault: renewal needs >= 1 server, got %d", c.Servers)
	}
	if !(c.MTBF > 0) || math.IsInf(c.MTBF, 0) {
		return fmt.Errorf("fault: MTBF must be finite and > 0, got %g", c.MTBF)
	}
	if !(c.MTTR > 0) || math.IsInf(c.MTTR, 0) {
		return fmt.Errorf("fault: MTTR must be finite and > 0, got %g", c.MTTR)
	}
	if !(c.Horizon > 0) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("fault: horizon must be finite and > 0, got %g", c.Horizon)
	}
	return nil
}

// Renewal draws per-server alternating up/down renewal processes
// (exponential up times with mean MTBF, exponential down times with mean
// MTTR, every server starting up at t = 0) and exposes the merged,
// time-sorted crash/repair timeline through the Source contract.
//
// Determinism: each server's draws come from its own RNG derived from
// (seed, server), so one server's timeline never depends on how many
// draws another server consumed; ties in the merged timeline order by
// (time, server, kind). Reset(seed) therefore regenerates the exact same
// timeline for the same seed, and adding servers never perturbs the
// timelines of existing ones.
type Renewal struct {
	cfg    RenewalConfig
	events []Event
	pos    int
}

// NewRenewal validates cfg and returns a renewal source seeded with seed.
func NewRenewal(cfg RenewalConfig, seed int64) (*Renewal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Renewal{cfg: cfg}
	r.Reset(seed)
	return r, nil
}

// Next implements Source.
func (r *Renewal) Next(buf []Event) (int, bool) {
	n := copy(buf, r.events[r.pos:])
	r.pos += n
	return n, r.pos < len(r.events)
}

// Reset implements Source: it redraws the whole timeline from seed and
// rewinds to its first event.
func (r *Renewal) Reset(seed int64) {
	r.events = r.events[:0]
	r.pos = 0
	for s := 0; s < r.cfg.Servers; s++ {
		rng := rand.New(rand.NewSource(splitmix64(seed, int64(s))))
		t := 0.0
		for {
			t += rng.ExpFloat64() * r.cfg.MTBF
			if t >= r.cfg.Horizon {
				break
			}
			r.events = append(r.events, Event{Time: t, Server: s, Kind: Crash})
			t += rng.ExpFloat64() * r.cfg.MTTR
			if t >= r.cfg.Horizon {
				break
			}
			r.events = append(r.events, Event{Time: t, Server: s, Kind: Repair})
		}
	}
	sortEvents(r.events)
}

// Events returns the drawn timeline; the slice is shared, not copied, and
// valid until the next Reset.
func (r *Renewal) Events() []Event { return r.events }

// splitmix64 mixes (seed, lane) into an independent RNG seed; the standard
// splitmix64 finalizer keeps adjacent lanes statistically unrelated.
func splitmix64(seed, lane int64) int64 {
	z := uint64(seed) + uint64(lane)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
