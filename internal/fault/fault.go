package fault

import "fmt"

// Kind distinguishes the two fault transitions a server can make.
type Kind uint8

const (
	// Crash takes a server down instantly: jobs in flight on it are lost
	// and its engine stops consuming energy until repaired.
	Crash Kind = iota
	// Repair brings a crashed server back: it rejoins cold, paying its
	// deepest wake transition before serving again.
	Repair
)

// String returns the schedule-file spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("fault.Kind(%d)", uint8(k))
	}
}

// Event is one fault transition: server Server crashes or is repaired at
// simulated time Time (seconds from run start).
type Event struct {
	Time   float64
	Server int
	Kind   Kind
}

// Source is a pull-based, replayable fault-event stream, the failure-side
// sibling of stream.Source: Next fills buf with the next events in
// non-decreasing time order and Reset rewinds it reseeded, after which the
// same seed yields the same timeline event for event. Events for the same
// server must alternate crash/repair starting with a crash; consumers are
// entitled to reject streams that violate this.
type Source interface {
	Next(buf []Event) (n int, ok bool)
	Reset(seed int64)
}

// DefaultChunk is the buffer size Cursor uses for its refills.
const DefaultChunk = 64

// Cursor adapts a Source to one-event-at-a-time consumption with
// lookahead, mirroring stream.Cursor: Peek exposes the next event without
// consuming it, Advance consumes it. The cursor owns its chunk buffer.
type Cursor struct {
	src       Source
	buf       []Event
	pos, n    int
	exhausted bool
}

// NewCursor returns a cursor over src, consumed from its current position.
func NewCursor(src Source) *Cursor {
	return &Cursor{src: src, buf: make([]Event, DefaultChunk)}
}

// Peek returns the next event without consuming it; ok=false means the
// source is exhausted.
func (c *Cursor) Peek() (ev Event, ok bool) {
	for c.pos == c.n {
		if c.exhausted {
			return Event{}, false
		}
		n, more := c.src.Next(c.buf)
		c.pos, c.n = 0, n
		if !more {
			c.exhausted = true
		}
	}
	return c.buf[c.pos], true
}

// Advance consumes the event the last Peek exposed.
func (c *Cursor) Advance() { c.pos++ }

// Reset rebinds the cursor to src (consumed from its current position),
// keeping the chunk buffer.
func (c *Cursor) Reset(src Source) {
	c.src = src
	c.pos, c.n = 0, 0
	c.exhausted = false
}

// RetryPolicy bounds failover re-dispatch of jobs lost in flight on a
// crashing server. Each lost job is re-offered at
// crashTime + Backoff·attempt (attempt counting from 1), until it has been
// lost Budget times in total — after that it is dropped and accounted.
// The zero policy retries nothing: every lost job is an immediate drop.
type RetryPolicy struct {
	// Budget is the maximum number of times one job may be re-dispatched
	// after a loss. 0 means lost jobs are dropped outright.
	Budget int
	// Backoff is the delay, in seconds per attempt already made, added to
	// the crash instant to form the retry's new arrival time.
	Backoff float64
}

// Validate rejects unusable policies.
func (p RetryPolicy) Validate() error {
	if p.Budget < 0 {
		return fmt.Errorf("fault: retry budget must be >= 0, got %d", p.Budget)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("fault: retry backoff must be >= 0, got %g", p.Backoff)
	}
	return nil
}
