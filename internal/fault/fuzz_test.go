package fault

import "testing"

// FuzzParseSchedule throws arbitrary text at the schedule parser: it must
// never panic, and anything it accepts must satisfy the schedule
// invariants (sorted, alternating per server) and round-trip through
// FormatSchedule.
func FuzzParseSchedule(f *testing.F) {
	f.Add("10 0 crash\n20 0 repair\n")
	f.Add("# comment\n\n1.5 3 crash # inline\n")
	f.Add("nonsense")
	f.Add("10 0 crash\n5 1 crash\n")
	f.Add("1e308 0 crash\n")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return
		}
		evs := s.Events()
		if err := func() error {
			_, e := NewSchedule(evs)
			return e
		}(); err != nil {
			t.Fatalf("accepted schedule fails validation: %v", err)
		}
		s2, err := ParseSchedule(FormatSchedule(evs))
		if err != nil {
			t.Fatalf("formatted schedule does not re-parse: %v", err)
		}
		if s2.Len() != len(evs) {
			t.Fatalf("round trip changed event count: %d vs %d", s2.Len(), len(evs))
		}
		for i, ev := range s2.Events() {
			if ev != evs[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, ev, evs[i])
			}
		}
	})
}
