package fault

import "sleepscale/internal/colstore"

// LogSchema returns the column-file schema fault-event logs use: one row
// per applied transition, with "kind" holding 0 for crash and 1 for
// repair.
func LogSchema() colstore.Schema {
	return colstore.Schema{
		Kind: colstore.KindFaults,
		Cols: []string{"time", "server", "kind"},
	}
}

// WriteLog appends events to the fault-event column file at path,
// creating it if absent. Append-only, like the epoch logs, so a long-lived
// run keeps one growing fault log next to them.
func WriteLog(path string, events []Event) error {
	w, err := colstore.Append(path, LogSchema())
	if err != nil {
		return err
	}
	row := make([]float64, 3)
	for _, ev := range events {
		row[0] = ev.Time
		row[1] = float64(ev.Server)
		row[2] = float64(ev.Kind)
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
