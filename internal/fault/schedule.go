package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Schedule is a scripted fault timeline: a validated, time-sorted event
// list exposed through the Source contract. Reset rewinds to the first
// event; the seed is ignored, the script being fixed — the same schedule
// replays bit-identically every run.
type Schedule struct {
	events []Event
	pos    int
}

// NewSchedule validates events (sorted by time, finite non-negative times,
// non-negative server ids, per-server crash/repair alternation starting
// with a crash) and returns them as a Schedule. The slice is copied.
func NewSchedule(events []Event) (*Schedule, error) {
	evs := append([]Event(nil), events...)
	if err := validate(evs); err != nil {
		return nil, err
	}
	return &Schedule{events: evs}, nil
}

// Events returns the schedule's timeline; the slice is shared, not copied.
func (s *Schedule) Events() []Event { return s.events }

// Len returns the number of events in the schedule.
func (s *Schedule) Len() int { return len(s.events) }

// Next implements Source.
func (s *Schedule) Next(buf []Event) (int, bool) {
	n := copy(buf, s.events[s.pos:])
	s.pos += n
	return n, s.pos < len(s.events)
}

// Reset implements Source; the seed is ignored.
func (s *Schedule) Reset(int64) { s.pos = 0 }

func validate(events []Event) error {
	down := make(map[int]bool)
	prev := math.Inf(-1)
	for i, ev := range events {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
			return fmt.Errorf("fault: event %d: time %g must be finite and >= 0", i, ev.Time)
		}
		if ev.Time < prev {
			return fmt.Errorf("fault: event %d: time %g precedes event %d's %g (events must be sorted)", i, ev.Time, i-1, prev)
		}
		prev = ev.Time
		if ev.Server < 0 {
			return fmt.Errorf("fault: event %d: server %d must be >= 0", i, ev.Server)
		}
		switch ev.Kind {
		case Crash:
			if down[ev.Server] {
				return fmt.Errorf("fault: event %d: server %d crashes while already down", i, ev.Server)
			}
			down[ev.Server] = true
		case Repair:
			if !down[ev.Server] {
				return fmt.Errorf("fault: event %d: server %d repaired while up", i, ev.Server)
			}
			down[ev.Server] = false
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// ParseSchedule reads a scripted fault timeline, one event per line:
//
//	<time-seconds> <server> crash|repair
//
// Blank lines and lines starting with '#' are skipped; inline trailing
// '#' comments are allowed. Events must be sorted by time, and each
// server's events must alternate crash/repair starting with a crash.
func ParseSchedule(text string) (*Schedule, error) {
	var events []Event
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("fault: line %d: want \"<time> <server> crash|repair\", got %d fields", ln+1, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: bad time %q: %v", ln+1, fields[0], err)
		}
		srv, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: bad server %q: %v", ln+1, fields[1], err)
		}
		var kind Kind
		switch fields[2] {
		case "crash":
			kind = Crash
		case "repair":
			kind = Repair
		default:
			return nil, fmt.Errorf("fault: line %d: bad kind %q (want crash or repair)", ln+1, fields[2])
		}
		events = append(events, Event{Time: t, Server: srv, Kind: kind})
	}
	return NewSchedule(events)
}

// FormatSchedule renders events in ParseSchedule's line format, so a
// generated timeline (e.g. a Renewal draw) can be saved and replayed as a
// script.
func FormatSchedule(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%g %d %s\n", ev.Time, ev.Server, ev.Kind)
	}
	return b.String()
}

// sortEvents orders events by (time, server, kind) — the deterministic
// merge order Renewal emits regardless of draw interleaving.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		if events[i].Server != events[j].Server {
			return events[i].Server < events[j].Server
		}
		return events[i].Kind < events[j].Kind
	})
}
