package fault

import (
	"path/filepath"
	"strings"
	"testing"

	"sleepscale/internal/colstore"
)

func collect(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	buf := make([]Event, 7)
	for {
		n, ok := src.Next(buf)
		out = append(out, buf[:n]...)
		if !ok {
			return out
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule(`
# a scripted outage
10 1 crash
20.5 0 crash   # overlapping outage
30 1 repair

40 0 repair
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{10, 1, Crash}, {20.5, 0, Crash}, {30, 1, Repair}, {40, 0, Repair},
	}
	got := collect(t, s)
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Reset replays identically.
	s.Reset(99)
	again := collect(t, s)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("after reset, event %d: got %+v want %+v", i, again[i], want[i])
		}
	}
}

func TestParseScheduleRejects(t *testing.T) {
	cases := map[string]string{
		"fields":          "10 0",
		"time":            "x 0 crash",
		"neg time":        "-1 0 crash",
		"server":          "10 x crash",
		"neg server":      "10 -1 crash",
		"kind":            "10 0 explode",
		"unsorted":        "10 0 crash\n5 1 crash",
		"double crash":    "10 0 crash\n20 0 crash",
		"repair while up": "10 0 repair",
	}
	for name, text := range cases {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("%s: %q parsed, want error", name, text)
		}
	}
}

func TestFormatScheduleRoundTrip(t *testing.T) {
	events := []Event{{1.25, 3, Crash}, {2, 0, Crash}, {4.5, 3, Repair}, {9, 0, Repair}}
	s, err := ParseSchedule(FormatSchedule(events))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Events()
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestRenewalDeterminism(t *testing.T) {
	cfg := RenewalConfig{Servers: 8, MTBF: 100, MTTR: 20, Horizon: 2000}
	r, err := NewRenewal(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]Event(nil), collect(t, r)...)
	if len(first) == 0 {
		t.Fatal("no events drawn; horizon should yield many")
	}
	r.Reset(42)
	second := collect(t, r)
	if len(first) != len(second) {
		t.Fatalf("reseed changed event count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs after Reset(same seed): %+v vs %+v", i, first[i], second[i])
		}
	}
	r.Reset(43)
	third := collect(t, r)
	same := len(third) == len(first)
	if same {
		for i := range first {
			if first[i] != third[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seed produced identical timeline")
	}
	// The drawn timeline must itself be a valid schedule.
	if _, err := NewSchedule(first); err != nil {
		t.Fatalf("renewal timeline invalid: %v", err)
	}
}

func TestRenewalServerIndependence(t *testing.T) {
	// Growing the fleet must not perturb existing servers' timelines.
	small, err := NewRenewal(RenewalConfig{Servers: 3, MTBF: 50, MTTR: 10, Horizon: 500}, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRenewal(RenewalConfig{Servers: 6, MTBF: 50, MTTR: 10, Horizon: 500}, 7)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(evs []Event) []Event {
		var out []Event
		for _, ev := range evs {
			if ev.Server < 3 {
				out = append(out, ev)
			}
		}
		return out
	}
	a, b := filter(small.Events()), filter(big.Events())
	if len(a) != len(b) {
		t.Fatalf("server<3 event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRenewalValidate(t *testing.T) {
	bad := []RenewalConfig{
		{Servers: 0, MTBF: 1, MTTR: 1, Horizon: 1},
		{Servers: 1, MTBF: 0, MTTR: 1, Horizon: 1},
		{Servers: 1, MTBF: 1, MTTR: -2, Horizon: 1},
		{Servers: 1, MTBF: 1, MTTR: 1, Horizon: 0},
	}
	for i, cfg := range bad {
		if _, err := NewRenewal(cfg, 1); err == nil {
			t.Errorf("config %d validated, want error", i)
		}
	}
}

func TestCursor(t *testing.T) {
	s, err := NewSchedule([]Event{{1, 0, Crash}, {2, 1, Crash}, {3, 0, Repair}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCursor(s)
	var got []Event
	for {
		ev, ok := c.Peek()
		if !ok {
			break
		}
		// Peek is idempotent.
		if ev2, _ := c.Peek(); ev2 != ev {
			t.Fatalf("second peek %+v != %+v", ev2, ev)
		}
		got = append(got, ev)
		c.Advance()
	}
	if len(got) != 3 {
		t.Fatalf("cursor yielded %d events, want 3", len(got))
	}
	s.Reset(0)
	c.Reset(s)
	if ev, ok := c.Peek(); !ok || ev != (Event{1, 0, Crash}) {
		t.Fatalf("after reset, peek = %+v, %v", ev, ok)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := (RetryPolicy{Budget: 2, Backoff: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (RetryPolicy{Budget: -1}).Validate(); err == nil {
		t.Fatal("negative budget validated")
	}
	if err := (RetryPolicy{Backoff: -0.1}).Validate(); err == nil {
		t.Fatal("negative backoff validated")
	}
}

func TestWriteLog(t *testing.T) {
	events := []Event{{1, 0, Crash}, {2, 1, Crash}, {3.5, 0, Repair}}
	path := filepath.Join(t.TempDir(), "faults.col")
	if err := WriteLog(path, events); err != nil {
		t.Fatal(err)
	}
	// Append-only: a second write grows the same file.
	if err := WriteLog(path, []Event{{9, 1, Repair}}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Schema().Kind != colstore.KindFaults {
		t.Fatalf("kind %d", r.Schema().Kind)
	}
	if r.Rows() != 4 {
		t.Fatalf("rows %d != 4", r.Rows())
	}
	ki := r.Schema().ColIndex("kind")
	col, err := r.Col(0, ki, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 1}
	for i, v := range col {
		if v != want[i] {
			t.Fatalf("kind[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || Repair.String() != "repair" {
		t.Fatalf("kind strings: %q %q", Crash, Repair)
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatalf("unknown kind string %q", Kind(9))
	}
}
