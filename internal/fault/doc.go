// Package fault is the deterministic failure-injection subsystem: seeded
// crash/repair timelines that the farm's routing, the fleet coordinator
// and the serve daemon consume to exercise SleepScale's policies under
// server failures.
//
// # Sources
//
// A fault timeline is a Source — the failure-side sibling of
// stream.Source: Next pulls Events in non-decreasing time order, and
// Reset(seed) rewinds it so the same seed replays the exact same timeline
// event for event. Two implementations ship:
//
//   - Schedule: a scripted, validated timeline (ParseSchedule reads the
//     "<time> <server> crash|repair" line format); the seed is ignored.
//   - Renewal: per-server alternating up/down renewal processes with
//     exponential Exp(MTBF) up and Exp(MTTR) down intervals. Every
//     server draws from its own RNG derived from (seed, server), so
//     timelines are interleaving-independent and stable when the fleet
//     grows; ties order by (time, server, kind).
//
// # Determinism contract
//
// Same seed ⇒ same fault timeline ⇒ same simulation output. Consumers
// (fleet.Coordinator) apply events at exact simulated instants
// interleaved with job arrivals: an event at time t is applied after all
// jobs with arrival < t and before any job with arrival ≥ t, and an
// event on an epoch boundary belongs to the epoch it opens. An empty
// timeline is bit-identical to running without fault injection at all —
// equivalence tests pin this.
//
// # Conservation contract
//
// Every offered job is accounted for exactly once:
//
//	offered == completed + requeued_in_flight + dropped
//
// A job lost in flight on a crashing server is re-dispatched under a
// RetryPolicy (per-attempt backoff added to the crash instant) until the
// retry budget is exhausted, after which it is dropped. Crash-time energy
// accounting is exact: the crashing engine refunds the unserved remainder
// of its in-flight work, a down engine accrues no energy, and a repaired
// engine rejoins cold, paying its deepest wake transition. The fleet
// tests assert the invariant and exact per-epoch energy deltas on every
// chaos scenario.
package fault
