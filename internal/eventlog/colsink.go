package eventlog

import (
	"sleepscale/internal/colstore"
)

// EventsSchema returns the column-file schema per-job epoch event logs use:
// one row per job, columns epoch index, inter-arrival gap and service
// demand.
func EventsSchema() colstore.Schema {
	return colstore.Schema{Kind: colstore.KindEvents, Cols: []string{"epoch", "gap", "size"}}
}

// ColSink persists epoch job logs to a KindEvents column file as they are
// pushed — the durable companion of the in-memory ring, which only retains
// the last few epochs. Each epoch flushes as its own block, so a reader (or
// colq) skips straight to an epoch from the block footers, and a crash loses
// at most the in-flight epoch. Errors are sticky and deferred: logging keeps
// the epoch loop unconditional, Err reports the first failure.
type ColSink struct {
	w   *colstore.Writer
	row [3]float64
	err error
}

// NewColSink returns a sink appending to w, which must carry EventsSchema
// columns. The caller closes w when the run ends.
func NewColSink(w *colstore.Writer) *ColSink { return &ColSink{w: w} }

// logEpoch appends one epoch's gaps and sizes and flushes them as a block.
func (s *ColSink) logEpoch(epoch int, gaps, sizes []float64) {
	if s.err != nil {
		return
	}
	s.row[0] = float64(epoch)
	for i := range gaps {
		s.row[1], s.row[2] = gaps[i], sizes[i]
		if s.err = s.w.Append(s.row[:]); s.err != nil {
			return
		}
	}
	s.err = s.w.Flush()
}

// Err reports the first append failure, if any.
func (s *ColSink) Err() error { return s.err }
