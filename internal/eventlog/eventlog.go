// Package eventlog implements the per-epoch job logging of §5.2.1. The
// runtime predictor does not build explicit distribution histograms —
// "constructing, maintaining and updating a fine-grained distribution
// histogram ... is expensive" — it keeps the raw inter-arrival gaps and
// service demands from recent epochs and replays them, rescaled to the
// predicted utilization, as the policy manager's simulation input.
package eventlog

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/queue"
)

// Epoch is the job log of one policy epoch.
type Epoch struct {
	// Gaps are the observed inter-arrival gaps in seconds.
	Gaps []float64
	// Sizes are the observed service demands (seconds of work at f = 1).
	Sizes []float64
}

// FromJobs builds an epoch log from a job slice (sorted by arrival); the
// first gap is measured from epochStart.
func FromJobs(jobs []queue.Job, epochStart float64) Epoch {
	e := Epoch{
		Gaps:  make([]float64, 0, len(jobs)),
		Sizes: make([]float64, 0, len(jobs)),
	}
	prev := epochStart
	for _, j := range jobs {
		e.Gaps = append(e.Gaps, j.Arrival-prev)
		e.Sizes = append(e.Sizes, j.Size)
		prev = j.Arrival
	}
	return e
}

// Window is a bounded ring of the most recent epochs; "average behavior from
// the past several epochs will suffice" (§5.2.1). The ring owns its epoch
// buffers: an evicted epoch's gap and size slices are recycled for the
// incoming one, so the steady-state logging path — PushJobs every epoch —
// allocates nothing once the buffers have grown to the largest epoch seen.
type Window struct {
	epochs []Epoch // fixed-capacity ring storage
	head   int     // index of the oldest held epoch
	count  int     // epochs currently held
	pushed int     // epochs ever pushed — the tee's epoch index
	sink   *ColSink
}

// NewWindow returns a window retaining the most recent capacity epochs.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("eventlog: window capacity %d < 1", capacity)
	}
	return &Window{epochs: make([]Epoch, capacity)}, nil
}

// slot returns the ring slot for the next epoch — evicting the oldest when
// full — with its recycled buffers truncated, ready to refill.
func (w *Window) slot() *Epoch {
	var e *Epoch
	if w.count == len(w.epochs) {
		e = &w.epochs[w.head]
		w.head = (w.head + 1) % len(w.epochs)
	} else {
		e = &w.epochs[(w.head+w.count)%len(w.epochs)]
		w.count++
	}
	e.Gaps = e.Gaps[:0]
	e.Sizes = e.Sizes[:0]
	return e
}

// at returns the i-th held epoch, oldest first.
func (w *Window) at(i int) *Epoch { return &w.epochs[(w.head+i)%len(w.epochs)] }

// Tee attaches a columnar sink: every epoch pushed from now on is also
// appended to the sink's file, with epoch indices counting all pushes (not
// just the epochs the ring still holds). Tee(nil) detaches.
func (w *Window) Tee(s *ColSink) { w.sink = s }

// tee forwards the just-filled ring slot to the attached sink, if any.
func (w *Window) tee(s *Epoch) {
	if w.sink != nil {
		w.sink.logEpoch(w.pushed, s.Gaps, s.Sizes)
	}
	w.pushed++
}

// Push records an epoch, evicting the oldest beyond capacity. Empty epochs
// (no jobs) are recorded too — they carry load information. The epoch's
// slices are copied into ring-owned buffers; the caller's remain its own.
func (w *Window) Push(e Epoch) {
	s := w.slot()
	s.Gaps = append(s.Gaps, e.Gaps...)
	s.Sizes = append(s.Sizes, e.Sizes...)
	w.tee(s)
}

// PushJobs logs one epoch straight from its job slice (sorted by arrival,
// first gap measured from epochStart) — the streaming form of
// Push(FromJobs(jobs, epochStart)) that builds the log in recycled ring
// buffers instead of two fresh slices, making the epoch loop allocation-free
// at steady state.
func (w *Window) PushJobs(jobs []queue.Job, epochStart float64) {
	s := w.slot()
	prev := epochStart
	for _, j := range jobs {
		s.Gaps = append(s.Gaps, j.Arrival-prev)
		s.Sizes = append(s.Sizes, j.Size)
		prev = j.Arrival
	}
	w.tee(s)
}

// Reset empties the window for a fresh run, rewinding the push counter while
// retaining the ring's recycled epoch buffers — so a reused epoch driver (the
// fleet coordinator's Run) starts from a bit-identical empty window without
// allocating. An attached sink stays attached; its epoch indices restart at 0
// with the counter, matching a newly built window's.
func (w *Window) Reset() { w.head, w.count, w.pushed = 0, 0, 0 }

// Epochs reports how many epochs the window currently holds.
func (w *Window) Epochs() int { return w.count }

// Pushed reports how many epochs have ever been pushed — the next tee index.
func (w *Window) Pushed() int { return w.pushed }

// WindowState is a deep copy of a Window's contents, oldest epoch first,
// captured for checkpointing. The attached ColSink is not part of the state;
// a restored window starts detached and the caller re-attaches via Tee.
type WindowState struct {
	Capacity int
	Pushed   int
	Epochs   []Epoch // oldest first, deep-copied
}

// State captures the window's contents for a checkpoint.
func (w *Window) State() WindowState {
	st := WindowState{
		Capacity: len(w.epochs),
		Pushed:   w.pushed,
		Epochs:   make([]Epoch, w.count),
	}
	for i := 0; i < w.count; i++ {
		e := w.at(i)
		st.Epochs[i] = Epoch{
			Gaps:  append([]float64(nil), e.Gaps...),
			Sizes: append([]float64(nil), e.Sizes...),
		}
	}
	return st
}

// RestoreWindow rebuilds a window from a captured state. The restored window
// holds the same epochs in the same oldest-first order, so every subsequent
// Push, Means and Jobs call behaves bit-identically to the original's.
func RestoreWindow(st WindowState) (*Window, error) {
	w, err := NewWindow(st.Capacity)
	if err != nil {
		return nil, err
	}
	if len(st.Epochs) > st.Capacity {
		return nil, fmt.Errorf("eventlog: state holds %d epochs, capacity %d", len(st.Epochs), st.Capacity)
	}
	if st.Pushed < len(st.Epochs) {
		return nil, fmt.Errorf("eventlog: state pushed %d < %d held epochs", st.Pushed, len(st.Epochs))
	}
	for _, e := range st.Epochs {
		if len(e.Gaps) != len(e.Sizes) {
			return nil, fmt.Errorf("eventlog: state epoch has %d gaps, %d sizes", len(e.Gaps), len(e.Sizes))
		}
		w.Push(e)
	}
	w.pushed = st.Pushed
	return w, nil
}

// JobCount reports the total number of logged jobs.
func (w *Window) JobCount() int {
	var n int
	for i := 0; i < w.count; i++ {
		n += len(w.at(i).Sizes)
	}
	return n
}

// Means reports the mean inter-arrival gap and mean service demand across
// the window; ok is false when no jobs are logged.
func (w *Window) Means() (gapMean, sizeMean float64, ok bool) {
	var gsum, ssum float64
	var n int
	for i := 0; i < w.count; i++ {
		e := w.at(i)
		for _, g := range e.Gaps {
			gsum += g
		}
		for _, s := range e.Sizes {
			ssum += s
		}
		n += len(e.Sizes)
	}
	if n == 0 {
		return 0, 0, false
	}
	return gsum / float64(n), ssum / float64(n), true
}

// Utilization reports the observed ρ = mean size / mean gap, or 0 when the
// window is empty.
func (w *Window) Utilization() float64 {
	g, s, ok := w.Means()
	if !ok || g == 0 {
		return 0
	}
	return s / g
}

// Jobs bootstraps an n-job simulation input from the logged events: gaps and
// sizes are resampled with replacement, and every gap is scaled by a common
// factor so the stream's utilization matches targetRho — the §5.2.1
// adjustment of logged workloads to the predicted utilization. It returns
// ok=false when the window holds no jobs.
func (w *Window) Jobs(n int, targetRho float64, rng *rand.Rand) ([]queue.Job, bool) {
	if targetRho <= 0 || n <= 0 {
		return nil, false
	}
	gapMean, sizeMean, ok := w.Means()
	if !ok || gapMean <= 0 || sizeMean <= 0 {
		return nil, false
	}
	// Flatten once; windows are small (a few epochs of logs).
	var gaps, sizes []float64
	for i := 0; i < w.count; i++ {
		e := w.at(i)
		gaps = append(gaps, e.Gaps...)
		sizes = append(sizes, e.Sizes...)
	}
	scale := sizeMean / targetRho / gapMean
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += gaps[rng.Intn(len(gaps))] * scale
		jobs[i] = queue.Job{Arrival: tnow, Size: sizes[rng.Intn(len(sizes))]}
	}
	return jobs, true
}
