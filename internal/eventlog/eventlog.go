// Package eventlog implements the per-epoch job logging of §5.2.1. The
// runtime predictor does not build explicit distribution histograms —
// "constructing, maintaining and updating a fine-grained distribution
// histogram ... is expensive" — it keeps the raw inter-arrival gaps and
// service demands from recent epochs and replays them, rescaled to the
// predicted utilization, as the policy manager's simulation input.
package eventlog

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/queue"
)

// Epoch is the job log of one policy epoch.
type Epoch struct {
	// Gaps are the observed inter-arrival gaps in seconds.
	Gaps []float64
	// Sizes are the observed service demands (seconds of work at f = 1).
	Sizes []float64
}

// FromJobs builds an epoch log from a job slice (sorted by arrival); the
// first gap is measured from epochStart.
func FromJobs(jobs []queue.Job, epochStart float64) Epoch {
	e := Epoch{
		Gaps:  make([]float64, 0, len(jobs)),
		Sizes: make([]float64, 0, len(jobs)),
	}
	prev := epochStart
	for _, j := range jobs {
		e.Gaps = append(e.Gaps, j.Arrival-prev)
		e.Sizes = append(e.Sizes, j.Size)
		prev = j.Arrival
	}
	return e
}

// Window is a bounded ring of the most recent epochs; "average behavior from
// the past several epochs will suffice" (§5.2.1).
type Window struct {
	epochs []Epoch
	cap    int
}

// NewWindow returns a window retaining the most recent capacity epochs.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("eventlog: window capacity %d < 1", capacity)
	}
	return &Window{cap: capacity}, nil
}

// Push appends an epoch, evicting the oldest beyond capacity. Empty epochs
// (no jobs) are recorded too — they carry load information.
func (w *Window) Push(e Epoch) {
	w.epochs = append(w.epochs, e)
	if len(w.epochs) > w.cap {
		w.epochs = w.epochs[1:]
	}
}

// Epochs reports how many epochs the window currently holds.
func (w *Window) Epochs() int { return len(w.epochs) }

// JobCount reports the total number of logged jobs.
func (w *Window) JobCount() int {
	var n int
	for _, e := range w.epochs {
		n += len(e.Sizes)
	}
	return n
}

// Means reports the mean inter-arrival gap and mean service demand across
// the window; ok is false when no jobs are logged.
func (w *Window) Means() (gapMean, sizeMean float64, ok bool) {
	var gsum, ssum float64
	var n int
	for _, e := range w.epochs {
		for _, g := range e.Gaps {
			gsum += g
		}
		for _, s := range e.Sizes {
			ssum += s
		}
		n += len(e.Sizes)
	}
	if n == 0 {
		return 0, 0, false
	}
	return gsum / float64(n), ssum / float64(n), true
}

// Utilization reports the observed ρ = mean size / mean gap, or 0 when the
// window is empty.
func (w *Window) Utilization() float64 {
	g, s, ok := w.Means()
	if !ok || g == 0 {
		return 0
	}
	return s / g
}

// Jobs bootstraps an n-job simulation input from the logged events: gaps and
// sizes are resampled with replacement, and every gap is scaled by a common
// factor so the stream's utilization matches targetRho — the §5.2.1
// adjustment of logged workloads to the predicted utilization. It returns
// ok=false when the window holds no jobs.
func (w *Window) Jobs(n int, targetRho float64, rng *rand.Rand) ([]queue.Job, bool) {
	if targetRho <= 0 || n <= 0 {
		return nil, false
	}
	gapMean, sizeMean, ok := w.Means()
	if !ok || gapMean <= 0 || sizeMean <= 0 {
		return nil, false
	}
	// Flatten once; windows are small (a few epochs of logs).
	var gaps, sizes []float64
	for _, e := range w.epochs {
		gaps = append(gaps, e.Gaps...)
		sizes = append(sizes, e.Sizes...)
	}
	scale := sizeMean / targetRho / gapMean
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += gaps[rng.Intn(len(gaps))] * scale
		jobs[i] = queue.Job{Arrival: tnow, Size: sizes[rng.Intn(len(sizes))]}
	}
	return jobs, true
}
