package eventlog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sleepscale/internal/queue"
)

func TestFromJobs(t *testing.T) {
	jobs := []queue.Job{
		{Arrival: 12, Size: 0.1},
		{Arrival: 15, Size: 0.2},
		{Arrival: 15.5, Size: 0.3},
	}
	e := FromJobs(jobs, 10)
	wantGaps := []float64{2, 3, 0.5}
	for i, g := range wantGaps {
		if e.Gaps[i] != g {
			t.Errorf("gap %d = %v, want %v", i, e.Gaps[i], g)
		}
	}
	if e.Sizes[2] != 0.3 {
		t.Errorf("sizes wrong: %v", e.Sizes)
	}
	empty := FromJobs(nil, 0)
	if len(empty.Gaps) != 0 {
		t.Error("empty jobs should give empty epoch")
	}
}

func TestWindowCapacity(t *testing.T) {
	w, err := NewWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(Epoch{Gaps: []float64{1}, Sizes: []float64{1}})
	w.Push(Epoch{Gaps: []float64{2}, Sizes: []float64{2}})
	w.Push(Epoch{Gaps: []float64{3}, Sizes: []float64{3}})
	if w.Epochs() != 2 {
		t.Fatalf("epochs = %d, want 2 (evicted)", w.Epochs())
	}
	g, s, ok := w.Means()
	if !ok {
		t.Fatal("means not ok")
	}
	if g != 2.5 || s != 2.5 {
		t.Errorf("means = %v,%v, want 2.5,2.5 (epoch 1 evicted)", g, s)
	}
	if w.JobCount() != 2 {
		t.Errorf("job count = %d, want 2", w.JobCount())
	}
	if _, err := NewWindow(0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestMeansEmptyWindow(t *testing.T) {
	w, _ := NewWindow(3)
	if _, _, ok := w.Means(); ok {
		t.Error("empty window reported means")
	}
	if w.Utilization() != 0 {
		t.Error("empty window utilization != 0")
	}
	w.Push(Epoch{}) // an epoch with no jobs
	if _, _, ok := w.Means(); ok {
		t.Error("window with only empty epochs reported means")
	}
}

func TestUtilization(t *testing.T) {
	w, _ := NewWindow(1)
	// Mean gap 2 s, mean size 0.5 s ⇒ ρ = 0.25.
	w.Push(Epoch{Gaps: []float64{1, 3}, Sizes: []float64{0.25, 0.75}})
	if got := w.Utilization(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
}

func TestJobsBootstrap(t *testing.T) {
	w, _ := NewWindow(2)
	rng := rand.New(rand.NewSource(3))
	// Log with gap mean 0.5, size mean 0.1 (ρ = 0.2).
	gaps := make([]float64, 500)
	sizes := make([]float64, 500)
	for i := range gaps {
		gaps[i] = rng.ExpFloat64() * 0.5
		sizes[i] = rng.ExpFloat64() * 0.1
	}
	w.Push(Epoch{Gaps: gaps, Sizes: sizes})
	jobs, ok := w.Jobs(5000, 0.4, rng)
	if !ok {
		t.Fatal("bootstrap failed")
	}
	if len(jobs) != 5000 {
		t.Fatalf("len = %d", len(jobs))
	}
	var work float64
	prev := -1.0
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("bootstrap arrivals not increasing")
		}
		prev = j.Arrival
		work += j.Size
	}
	// The stream's realized utilization must be close to the 0.4 target.
	got := work / jobs[len(jobs)-1].Arrival
	if math.Abs(got-0.4) > 0.05 {
		t.Errorf("bootstrap utilization = %v, want ≈0.4", got)
	}
}

func TestJobsBootstrapGuards(t *testing.T) {
	w, _ := NewWindow(1)
	rng := rand.New(rand.NewSource(1))
	if _, ok := w.Jobs(100, 0.5, rng); ok {
		t.Error("empty window bootstrap should fail")
	}
	w.Push(Epoch{Gaps: []float64{1}, Sizes: []float64{0.5}})
	if _, ok := w.Jobs(100, 0, rng); ok {
		t.Error("ρ=0 accepted")
	}
	if _, ok := w.Jobs(0, 0.5, rng); ok {
		t.Error("n=0 accepted")
	}
	if jobs, ok := w.Jobs(10, 0.5, rng); !ok || len(jobs) != 10 {
		t.Error("valid bootstrap failed")
	}
}

// Property: for any logged workload and target ρ, the bootstrap stream hits
// the target utilization within sampling error.
func TestBootstrapUtilizationProperty(t *testing.T) {
	f := func(seed int64, rs uint8) bool {
		rho := 0.05 + float64(rs)/255*0.9
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWindow(3)
		gaps := make([]float64, 300)
		sizes := make([]float64, 300)
		for i := range gaps {
			gaps[i] = rng.ExpFloat64()*0.2 + 1e-6
			sizes[i] = rng.ExpFloat64()*0.05 + 1e-6
		}
		w.Push(Epoch{Gaps: gaps, Sizes: sizes})
		jobs, ok := w.Jobs(3000, rho, rng)
		if !ok {
			return false
		}
		var work float64
		for _, j := range jobs {
			work += j.Size
		}
		got := work / jobs[len(jobs)-1].Arrival
		return math.Abs(got-rho)/rho < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPushJobsMatchesPush: the ring-buffered streaming form must log
// exactly what Push(FromJobs(...)) logs.
func TestPushJobsMatchesPush(t *testing.T) {
	jobs := []queue.Job{
		{Arrival: 12, Size: 0.1},
		{Arrival: 15, Size: 0.2},
		{Arrival: 15.5, Size: 0.3},
	}
	a, _ := NewWindow(2)
	b, _ := NewWindow(2)
	a.Push(FromJobs(jobs, 10))
	b.PushJobs(jobs, 10)
	ag, as, aok := a.Means()
	bg, bs, bok := b.Means()
	if aok != bok || ag != bg || as != bs {
		t.Fatalf("PushJobs diverges from Push: (%v %v %v) vs (%v %v %v)", bg, bs, bok, ag, as, aok)
	}
	if a.JobCount() != b.JobCount() {
		t.Fatalf("job counts diverge: %d vs %d", a.JobCount(), b.JobCount())
	}
}

// TestWindowRingEviction exercises wrap-around: after pushing far more
// epochs than capacity, the window must hold exactly the most recent ones.
func TestWindowRingEviction(t *testing.T) {
	w, _ := NewWindow(3)
	for i := 1; i <= 10; i++ {
		w.Push(Epoch{Gaps: []float64{float64(i)}, Sizes: []float64{float64(i)}})
	}
	if w.Epochs() != 3 {
		t.Fatalf("epochs = %d, want 3", w.Epochs())
	}
	g, s, ok := w.Means()
	if !ok || g != 9 || s != 9 { // epochs 8, 9, 10
		t.Fatalf("means = %v,%v,%v, want 9,9 over the last three epochs", g, s, ok)
	}
}

// TestPushCopiesCallerSlices: the ring owns its buffers, so mutating the
// caller's slices after Push must not corrupt the log.
func TestPushCopiesCallerSlices(t *testing.T) {
	w, _ := NewWindow(2)
	gaps := []float64{1, 3}
	sizes := []float64{0.25, 0.75}
	w.Push(Epoch{Gaps: gaps, Sizes: sizes})
	gaps[0], sizes[0] = 1e9, 1e9
	if got := w.Utilization(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("utilization after caller mutation = %v, want 0.25", got)
	}
}

// TestPushJobsZeroAllocSteadyState pins the PR's allocation fix: once the
// ring buffers have grown to the largest epoch seen, per-epoch logging
// allocates nothing (FromJobs allocated two slices per epoch).
func TestPushJobsZeroAllocSteadyState(t *testing.T) {
	w, _ := NewWindow(3)
	jobs := make([]queue.Job, 500)
	for i := range jobs {
		jobs[i] = queue.Job{Arrival: float64(i), Size: 0.1}
	}
	for i := 0; i < 4; i++ { // warm every ring slot past capacity
		w.PushJobs(jobs, 0)
	}
	avg := testing.AllocsPerRun(5, func() { w.PushJobs(jobs, 0) })
	if avg != 0 {
		t.Errorf("steady-state PushJobs allocates %.1f/run, want 0", avg)
	}
}
