package eventlog

import (
	"math"
	"path/filepath"
	"testing"

	"sleepscale/internal/colstore"
	"sleepscale/internal/queue"
)

// TestWindowTee pins the columnar tee: epochs pushed into the ring also land
// in the column file, one block per non-empty epoch, with epoch indices
// counting pushes beyond the ring's capacity and gaps/sizes bit-exact.
func TestWindowTee(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.col")
	fw, err := colstore.Create(path, EventsSchema())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindow(2) // smaller than the number of epochs pushed
	if err != nil {
		t.Fatal(err)
	}
	w.Tee(NewColSink(fw.Writer))

	epochs := [][]queue.Job{
		{{Arrival: 1, Size: 0.5}, {Arrival: 2.5, Size: 0.25}},
		{}, // empty epoch: pushed, logged as no rows
		{{Arrival: 20.125, Size: 1}, {Arrival: 21, Size: 2}, {Arrival: 22, Size: 3}},
		{{Arrival: 31, Size: 0.125}},
	}
	for e, jobs := range epochs {
		w.PushJobs(jobs, float64(10*e))
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Epochs() != 2 {
		t.Fatalf("ring holds %d epochs, want capacity 2", w.Epochs())
	}

	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 6 {
		t.Fatalf("log has %d rows, want 6", r.Rows())
	}
	// One block per non-empty epoch (the sink flushes each).
	if r.NumBlocks() != 3 {
		t.Fatalf("log has %d blocks, want 3", r.NumBlocks())
	}

	var eps, gaps, sizes []float64
	for b := 0; b < r.NumBlocks(); b++ {
		for c, dst := range []*[]float64{&eps, &gaps, &sizes} {
			v, err := r.Col(b, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			*dst = append(*dst, v...)
		}
	}
	wantEpoch := []float64{0, 0, 2, 2, 2, 3}
	wantGap := []float64{1, 1.5, 0.125, 0.875, 1, 1}
	wantSize := []float64{0.5, 0.25, 1, 2, 3, 0.125}
	for i := range wantEpoch {
		if eps[i] != wantEpoch[i] || math.Float64bits(gaps[i]) != math.Float64bits(wantGap[i]) || sizes[i] != wantSize[i] {
			t.Fatalf("row %d = (%g, %g, %g), want (%g, %g, %g)",
				i, eps[i], gaps[i], sizes[i], wantEpoch[i], wantGap[i], wantSize[i])
		}
	}

	// Block footers let a reader skip straight to epoch 2.
	res, err := colstore.Query{
		Col: "size", Op: colstore.Sum,
		Filters: []colstore.Filter{{Col: "epoch", Lo: 2, Hi: 2}},
	}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != 1 || res.BlocksSkipped != 2 {
		t.Fatalf("scanned=%d skipped=%d, want 1/2", res.BlocksScanned, res.BlocksSkipped)
	}
	if res.Groups[0].Value != 6 {
		t.Fatalf("epoch 2 size sum = %g, want 6", res.Groups[0].Value)
	}
}

// TestWindowTeePushMatchesPushJobs pins Push and PushJobs to the same teed
// output.
func TestWindowTeePushMatchesPushJobs(t *testing.T) {
	jobs := []queue.Job{{Arrival: 3, Size: 1}, {Arrival: 4.5, Size: 2}}
	build := func(push func(w *Window)) []byte {
		path := filepath.Join(t.TempDir(), "e.col")
		fw, err := colstore.Create(path, EventsSchema())
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWindow(3)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewColSink(fw.Writer)
		w.Tee(sink)
		push(w)
		if sink.Err() != nil {
			t.Fatal(sink.Err())
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := colstore.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		var flat []byte
		for b := 0; b < r.NumBlocks(); b++ {
			for c := 0; c < 3; c++ {
				v, err := r.Col(b, c, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range v {
					bits := math.Float64bits(f)
					for s := 0; s < 64; s += 8 {
						flat = append(flat, byte(bits>>s))
					}
				}
			}
		}
		return flat
	}
	a := build(func(w *Window) { w.PushJobs(jobs, 2) })
	b := build(func(w *Window) { w.Push(FromJobs(jobs, 2)) })
	if string(a) != string(b) {
		t.Fatal("Push and PushJobs tee different bytes")
	}
}
