package serve

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sleepscale/internal/colstore"
	"sleepscale/internal/core"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/strategy"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// fixture builds the serve tests' scenario: the golden daily-window trace
// and its generated job stream under the given seed.
func fixture(t *testing.T, seed int64) (util []float64, jobs []queue.Job) {
	t.Helper()
	tr, err := trace.EmailStore(1, 3).DailyWindow(120, 300)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	jobs = stats.TraceJobs(tr.Utilization, tr.SlotSeconds, rand.New(rand.NewSource(seed)))
	if len(jobs) == 0 {
		t.Fatal("no jobs in fixture stream")
	}
	return tr.Utilization, jobs
}

// liveCfg is the daemon-mode runner configuration the tests share.
func liveCfg(t *testing.T, strat core.Strategy, pred predict.Predictor, seed int64) core.LiveConfig {
	t.Helper()
	return core.LiveConfig{
		SlotSeconds:  60,
		EpochSlots:   5,
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Predictor:    pred,
		Strategy:     strat,
		Seed:         seed,
	}
}

func mkSleepScale(t *testing.T, seed int64) core.LiveConfig {
	t.Helper()
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
		QoS:          qos,
	}
	ss, err := strategy.NewSleepScale(m, 200, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := predict.NewLMS(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return liveCfg(t, ss, lms, seed)
}

// encodeStream materializes the full wire stream for a fixture — the bytes
// a load generator would send.
func encodeStream(t *testing.T, util []float64, jobs []queue.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	if err := Feed(w, stream.Slice(jobs), workload.SliceSlots(util), 60); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// logRows reads every row of a colstore epoch log, plus the plan dictionary.
func logRows(t *testing.T, path string) (rows [][]float64, dict []string) {
	t.Helper()
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ncols := len(r.Schema().Cols)
	cols := make([][]float64, ncols)
	for b := 0; b < r.NumBlocks(); b++ {
		for c := 0; c < ncols; c++ {
			v, err := r.Col(b, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			cols[c] = append(cols[c], v...)
		}
	}
	for i := 0; i < r.Rows(); i++ {
		row := make([]float64, ncols)
		for c := range cols {
			row[c] = cols[c][i]
		}
		rows = append(rows, row)
	}
	return rows, append([]string(nil), r.Schema().Dict...)
}

func requireSameLog(t *testing.T, gotPath, wantPath string) {
	t.Helper()
	got, gotDict := logRows(t, gotPath)
	want, wantDict := logRows(t, wantPath)
	if !reflect.DeepEqual(gotDict, wantDict) {
		t.Fatalf("plan dictionaries diverge: %v vs %v", gotDict, wantDict)
	}
	if len(got) != len(want) {
		t.Fatalf("log rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("log row %d diverges:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}

// TestWireRoundTrip pins the wire format: events decode to exactly what was
// encoded, bit for bit.
func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	events := []Event{
		{Kind: EventJob, Job: queue.Job{Arrival: 0.1234567890123456789, Size: 3e-17}},
		{Kind: EventSlot, Rho: 0.7},
		{Kind: EventJob, Job: queue.Job{Arrival: 61, Size: 0.001}},
		{Kind: EventSlot, Rho: 0.2},
	}
	for _, ev := range events {
		var err error
		if ev.Kind == EventJob {
			err = w.Job(ev.Job)
		} else {
			err = w.Slot(ev.Rho)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}

	r := NewWireReader(bytes.NewReader(buf.Bytes()))
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("event %d: %+v, want %+v", i, got, want)
		}
	}
	if got, err := r.Next(); err != nil || got.Kind != EventEnd {
		t.Fatalf("end event: %+v, %v", got, err)
	}
}

// TestWireRejectsDamage pins the failure modes: truncation mid-event and
// mid-magic, a bad magic, an unknown kind — errors, never hangs or panics.
func TestWireRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	if err := w.Job(queue.Job{Arrival: 1, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, cut := range []int{0, 2, 4, 5, 12, len(full) - 1} {
		r := NewWireReader(bytes.NewReader(full[:cut]))
		var err error
		for err == nil {
			var ev Event
			ev, err = r.Next()
			if err == nil && ev.Kind == EventEnd {
				t.Fatalf("cut %d: clean end from truncated stream", cut)
			}
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut %d: err = %v, want unexpected EOF", cut, err)
		}
	}

	r := NewWireReader(strings.NewReader("XXXX"))
	if _, err := r.Next(); err == nil {
		t.Error("bad magic accepted")
	}
	r = NewWireReader(strings.NewReader(wireMagic + "?"))
	if _, err := r.Next(); err == nil {
		t.Error("unknown event kind accepted")
	}
}

// TestServeMatchesBatch is the serve loop's determinism contract: the daemon
// fed a batch run's stream over the wire produces a bit-identical epoch log
// and aggregates to core.RunSource over the same inputs.
func TestServeMatchesBatch(t *testing.T) {
	util, jobs := fixture(t, 1)
	tr := &trace.Trace{Name: "fixture", SlotSeconds: 60, Utilization: util}
	dir := t.TempDir()

	// Batch reference.
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
		QoS:          qos,
	}
	ss, err := strategy.NewSleepScale(m, 200, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := predict.NewLMS(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	batchCfg := core.RunnerConfig{
		FreqExponent: 1,
		Profile:      power.Xeon(),
		Trace:        tr,
		EpochSlots:   5,
		Predictor:    lms,
		Strategy:     ss,
		Seed:         1,
	}
	want, err := core.RunSource(batchCfg, stream.Slice(jobs))
	if err != nil {
		t.Fatal(err)
	}
	wantLog := filepath.Join(dir, "batch.col")
	if err := core.WriteEpochLog(wantLog, want.Epochs); err != nil {
		t.Fatal(err)
	}

	// Live daemon over the wire.
	gotLog := filepath.Join(dir, "serve.col")
	var out bytes.Buffer
	srv, err := NewServer(Config{
		Runner:       mkSleepScale(t, 1),
		EpochLogPath: gotLog,
		Out:          &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, done, err := srv.Serve(bytes.NewReader(encodeStream(t, util, jobs)))
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("clean stream did not finish")
	}
	requireSameLog(t, gotLog, wantLog)
	if rep.Jobs != want.Jobs || rep.Energy != want.Energy ||
		rep.Duration != want.Duration || rep.MeanResponse != want.MeanResponse ||
		rep.MeanFrequency != want.MeanFrequency || rep.AvgPower != want.AvgPower {
		t.Fatalf("aggregates diverge:\n got %+v\nwant %+v", rep, want)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(want.Epochs)+1 {
		t.Fatalf("NDJSON lines = %d, want %d epochs + 1 summary", len(lines), len(want.Epochs))
	}
	if !strings.Contains(lines[len(lines)-1], `"done":true`) {
		t.Fatalf("last NDJSON line is not the summary: %s", lines[len(lines)-1])
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("NDJSON line %d malformed: %s", i, line)
		}
	}
}

// TestServeKillRestoreEquivalence is the durability acceptance criterion:
// interrupt the daemon mid-stream (truncated feed ⇒ drain persists the last
// boundary), restore from the checkpoint with a from-the-start replay, and
// require the stitched epoch log and final report to be bit-identical to an
// uninterrupted run — across 2 seeds × 2 checkpoint intervals.
func TestServeKillRestoreEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		for _, every := range []int{3, 7} {
			t.Run("", func(t *testing.T) {
				util, jobs := fixture(t, seed)
				full := encodeStream(t, util, jobs)
				dir := t.TempDir()

				// Uninterrupted reference.
				refLog := filepath.Join(dir, "ref.col")
				ref, err := NewServer(Config{Runner: mkSleepScale(t, seed), EpochLogPath: refLog})
				if err != nil {
					t.Fatal(err)
				}
				wantRep, done, err := ref.Serve(bytes.NewReader(full))
				if err != nil || !done {
					t.Fatal(done, err)
				}

				// Interrupted run: the feed dies ~60% in, mid-event.
				cfg := Config{
					Runner:          mkSleepScale(t, seed),
					CheckpointPath:  filepath.Join(dir, "ckpt"),
					CheckpointEvery: every,
					EpochLogPath:    filepath.Join(dir, "live.col"),
				}
				victim, err := NewServer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cut := len(full) * 6 / 10
				if _, done, err := victim.Serve(bytes.NewReader(full[:cut])); done || err == nil {
					t.Fatalf("truncated stream finished cleanly (done=%v err=%v)", done, err)
				}

				// Simulate unflushed rows landing after the checkpoint (a
				// crash between log flush and checkpoint write): restore
				// must truncate them away.
				if err := core.WriteEpochLog(cfg.EpochLogPath, []core.EpochRecord{
					{Index: 999, Jobs: 1}, {Index: 1000, Jobs: 2},
				}); err != nil {
					t.Fatal(err)
				}

				restored, err := RestoreServer(Config{
					Runner:          mkSleepScale(t, seed),
					CheckpointPath:  cfg.CheckpointPath,
					CheckpointEvery: every,
					EpochLogPath:    cfg.EpochLogPath,
				}, true)
				if err != nil {
					t.Fatal(err)
				}
				gotRep, done, err := restored.Serve(bytes.NewReader(full))
				if err != nil {
					t.Fatal(err)
				}
				if !done {
					t.Fatal("replayed stream did not finish")
				}
				requireSameLog(t, cfg.EpochLogPath, refLog)
				if gotRep.Jobs != wantRep.Jobs || gotRep.Energy != wantRep.Energy ||
					gotRep.Duration != wantRep.Duration || gotRep.MeanResponse != wantRep.MeanResponse ||
					gotRep.MeanFrequency != wantRep.MeanFrequency {
					t.Fatalf("aggregates diverge:\n got %+v\nwant %+v", gotRep, wantRep)
				}
			})
		}
	}
}

// TestServeStopGraceful pins the SIGTERM drain path: Stop mid-stream
// persists a checkpoint at the last epoch boundary; a replayed restore
// finishes bit-identically to an uninterrupted run.
func TestServeStopGraceful(t *testing.T) {
	util, jobs := fixture(t, 7)
	full := encodeStream(t, util, jobs)
	dir := t.TempDir()

	refLog := filepath.Join(dir, "ref.col")
	ref, err := NewServer(Config{Runner: mkSleepScale(t, 7), EpochLogPath: refLog})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := ref.Serve(bytes.NewReader(full)); err != nil || !done {
		t.Fatal(done, err)
	}

	cfg := Config{
		Runner:          mkSleepScale(t, 7),
		CheckpointPath:  filepath.Join(dir, "ckpt"),
		CheckpointEvery: 4,
		EpochLogPath:    filepath.Join(dir, "live.col"),
	}
	victim, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reader that requests a stop partway through the stream: the loop
	// notices at the next event boundary — the in-process shape of "SIGTERM,
	// then the socket closes".
	sr := &stopReader{r: bytes.NewReader(full), stopAfter: len(full) / 2, srv: victim}
	rep, done, err := victim.Serve(sr)
	if err != nil {
		t.Fatalf("graceful stop surfaced error: %v", err)
	}
	if done {
		t.Fatalf("stopped serve reported done (report %+v)", rep)
	}

	restored, err := RestoreServer(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := restored.Serve(bytes.NewReader(full)); err != nil || !done {
		t.Fatal(done, err)
	}
	requireSameLog(t, cfg.EpochLogPath, refLog)
}

// stopReader calls srv.Stop once stopAfter bytes have been read, then keeps
// serving the remaining bytes — the server must stop on its own at the next
// event boundary.
type stopReader struct {
	r         *bytes.Reader
	stopAfter int
	read      int
	srv       *Server
}

func (s *stopReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.read += n
	if s.read >= s.stopAfter {
		s.srv.Stop()
	}
	return n, err
}

// TestCheckpointRoundTrip pins the codec: encode → decode is exact.
func TestCheckpointRoundTrip(t *testing.T) {
	util, jobs := fixture(t, 3)
	srv, err := NewServer(Config{Runner: mkSleepScale(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	// Advance a few epochs by hand to populate every state field.
	r := srv.Runner()
	ji := 0
	for s := 0; s < 35; s++ {
		slotEnd := float64(s+1) * 60
		for ji < len(jobs) && jobs[ji].Arrival < slotEnd {
			if err := r.OfferJob(jobs[ji]); err != nil {
				t.Fatal(err)
			}
			ji++
		}
		if _, _, err := r.OfferSlot(util[s]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	c := &Checkpoint{State: *st, EpochLogRows: 12345, EpochLogDict: []string{"C0S0", "C6S0(i)"}}
	got, err := DecodeCheckpoint(EncodeCheckpoint(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, c)
	}
}

// TestCheckpointCorruption is the decoder-hardening satellite: truncated,
// bit-flipped, oversized-length and wrong-magic checkpoints error and fall
// back to the previous snapshot — never a panic, never a partial state.
func TestCheckpointCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")

	mk := func(epoch int) *Checkpoint {
		util, jobs := fixture(t, 5)
		srv, err := NewServer(Config{Runner: mkSleepScale(t, 5)})
		if err != nil {
			t.Fatal(err)
		}
		r := srv.Runner()
		ji := 0
		for s := 0; s < epoch*5; s++ {
			slotEnd := float64(s+1) * 60
			for ji < len(jobs) && jobs[ji].Arrival < slotEnd {
				if err := r.OfferJob(jobs[ji]); err != nil {
					t.Fatal(err)
				}
				ji++
			}
			if _, _, err := r.OfferSlot(util[s]); err != nil {
				t.Fatal(err)
			}
		}
		st, err := r.State()
		if err != nil {
			t.Fatal(err)
		}
		return &Checkpoint{State: *st}
	}

	if _, err := LoadCheckpoint(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: err = %v, want not-exist", err)
	}

	c1, c2 := mk(2), mk(4)
	if err := WriteCheckpoint(path, c1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(path, c2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Epoch != c2.State.Epoch {
		t.Fatalf("loaded epoch %d, want %d", got.State.Epoch, c2.State.Epoch)
	}

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"empty":      func([]byte) []byte { return nil },
		"bad-magic":  func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"crc-flip":   func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x40; return c },
		"header-len": func(b []byte) []byte { c := append([]byte(nil), b...); c[8] ^= 0xff; return c },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeCheckpoint(corrupt(pristine)); err == nil {
				t.Error("corrupt image decoded cleanly")
			}
			// The rotated .prev snapshot (c1) must still load.
			got, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("fallback failed: %v", err)
			}
			if got.State.Epoch != c1.State.Epoch {
				t.Fatalf("fallback epoch %d, want %d", got.State.Epoch, c1.State.Epoch)
			}
		})
	}

	// Both damaged: a descriptive error, not a panic.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+PrevSuffix, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("doubly-damaged checkpoint loaded")
	}
}

// TestRestoreServerFallsBackToPrev pins end-to-end recovery through a
// damaged primary: RestoreServer restores from .prev and the replayed run
// still matches the uninterrupted one bit for bit.
func TestRestoreServerFallsBackToPrev(t *testing.T) {
	util, jobs := fixture(t, 11)
	full := encodeStream(t, util, jobs)
	dir := t.TempDir()

	refLog := filepath.Join(dir, "ref.col")
	ref, err := NewServer(Config{Runner: mkSleepScale(t, 11), EpochLogPath: refLog})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := ref.Serve(bytes.NewReader(full)); err != nil || !done {
		t.Fatal(done, err)
	}

	cfg := Config{
		Runner:          mkSleepScale(t, 11),
		CheckpointPath:  filepath.Join(dir, "ckpt"),
		CheckpointEvery: 2,
		EpochLogPath:    filepath.Join(dir, "live.col"),
	}
	victim, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := victim.Serve(bytes.NewReader(full[:len(full)/2])); done || err == nil {
		t.Fatal("truncated stream finished cleanly")
	}

	// Damage the primary: the daemon crashed mid-write. The epoch log may
	// now hold rows past the .prev checkpoint's high-water mark; restore
	// must truncate them.
	if err := os.WriteFile(cfg.CheckpointPath, []byte("partial write garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := restored.Serve(bytes.NewReader(full)); err != nil || !done {
		t.Fatal(done, err)
	}
	requireSameLog(t, cfg.EpochLogPath, refLog)
}

// TestFeedSlotFeedShapes pins that any stream.Source becomes a load
// generator: the same scenario fed from a materialized slice and from the
// incremental trace generator produce identical wire bytes.
func TestFeedSlotFeedShapes(t *testing.T) {
	util, jobs := fixture(t, 1)
	stats, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := stats.NewTraceGen(util, 60, 1)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := Feed(NewWireWriter(&a), stream.Slice(jobs), workload.SliceSlots(util), 60); err != nil {
		t.Fatal(err)
	}
	if err := Feed(NewWireWriter(&b), gen, workload.SliceSlots(util), 60); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("materialized and generated feeds produce different wire bytes")
	}
}
