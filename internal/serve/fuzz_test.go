package serve

import (
	"bytes"
	"testing"

	"sleepscale/internal/core"
	"sleepscale/internal/eventlog"
	"sleepscale/internal/queue"
)

// fuzzSeedCheckpoint is a hand-built checkpoint exercising every encoded
// field, including the engine branch.
func fuzzSeedCheckpoint() *Checkpoint {
	return &Checkpoint{
		State: core.LiveState{
			Epoch:       7,
			Slot:        35,
			LastArrival: 2099.5,
			JobsOffered: 1234,
			JobsServed:  1200,
			Pending:     []queue.Job{{Arrival: 2090, Size: 0.01}, {Arrival: 2095, Size: 0.02}},
			LastMean:    0.8,
			LastP95:     2.5,
			LastJobs:    170,
			FreqSum:     5.6,
			PlanNames:   []string{"C0S0", "C6S0(i)"},
			PlanCounts:  []int64{3, 4},
			RngDraws:    991,
			Predictor:   []byte{1, 2, 3, 4, 5},
			Window: eventlog.WindowState{
				Capacity: 3,
				Pushed:   7,
				Epochs: []eventlog.Epoch{
					{Gaps: []float64{0.1, 0.2}, Sizes: []float64{0.01, 0.02}},
					{Gaps: []float64{0.3}, Sizes: []float64{0.03}},
				},
			},
			HasEngine:    true,
			CurFrequency: 0.85,
			CurPlanName:  "C6S0(i)",
			CurPhases:    []core.LivePhase{{CPU: 0, Platform: 0, Enter: 0}, {CPU: 6, Platform: 0, Enter: 0.5}},
			Engine: queue.EngineState{
				FreeAt: 2098, Anchor: 2040, Billed: 2040, Energy: 310.5,
				Busy: 1500, Wake: 20, Idle: 520, Wakes: 44,
				Started: 1, LastSeen: 2095,
				Resid:            []float64{1, 2, 3},
				ResidPrevNames:   []string{"C0S0"},
				ResidPrevWeights: []float64{0.25},
			},
			PrevTotals: queue.Snapshot{Energy: 300, BusyTime: 1400, WakeTime: 18, IdleTime: 500, Jobs: 1100, Wakes: 40},
		},
		EpochLogRows: 7,
		EpochLogDict: []string{"C0S0", "C6S0(i)"},
	}
}

// FuzzCheckpointDecode drives the checkpoint decoder with arbitrary bytes:
// it must return a checkpoint or an error, never panic or over-allocate, and
// anything it accepts must re-encode to a decodable image.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	full := EncodeCheckpoint(fuzzSeedCheckpoint())
	f.Add(full)
	f.Add(full[:len(full)/2])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped)
	minimal := EncodeCheckpoint(&Checkpoint{State: core.LiveState{Window: eventlog.WindowState{Capacity: 3}}})
	f.Add(minimal)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// Accepted images must round-trip: re-encoding the decoded state
		// yields an image that decodes to the same state.
		again, err := DecodeCheckpoint(EncodeCheckpoint(c))
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint rejected: %v", err)
		}
		_ = again
	})
}

// FuzzWireDecode drives the wire decoder with arbitrary bytes: every stream
// ends in a clean EventEnd or an error, never a panic or an infinite loop.
func FuzzWireDecode(f *testing.F) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	w.Job(queue.Job{Arrival: 1, Size: 0.5})
	w.Slot(0.7)
	w.End()
	f.Add(buf.Bytes())
	f.Add([]byte(wireMagic))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewWireReader(bytes.NewReader(data))
		for i := 0; i <= len(data)+1; i++ {
			ev, err := r.Next()
			if err != nil {
				return
			}
			if ev.Kind == EventEnd {
				return
			}
		}
		t.Fatal("decoder consumed more events than input bytes")
	})
}
