// Package serve is the live serving subsystem: SleepScale as a long-running
// controller rather than a batch simulator. A Server drives the core
// package's incremental epoch machine from an unbounded wire stream of job
// arrivals and telemetry slots — a Unix/TCP socket, or a pipe replaying any
// recorded or synthetic stream.Source via Feed — and streams per-epoch
// stats and policy decisions out as NDJSON while teeing them to a colstore
// epoch log.
//
// Two contracts govern the package, both enforced by equivalence tests:
//
// Determinism: the live loop shares one epoch machine with the batch
// runners, so a Server fed a batch run's jobs and slots produces
// bit-identical epoch records — same decisions, same per-epoch energy
// deltas, same delay percentiles. The steady-state serve loop (decode
// event, advance the runner, emit NDJSON) allocates nothing and holds
// O(pending jobs + one epoch) memory however long the stream runs.
//
// Durability: with a checkpoint path configured, the runner's complete
// state — engine totals, predictor state, RNG cursor, policy-selection
// state, the job-log window and pending jobs — is written atomically every
// CheckpointEvery epochs and on graceful stop, with the previous snapshot
// rotated to ".prev". A run that is checkpointed, killed and restored
// produces the same epoch log as one that never stopped: closed epochs are
// buffered in memory and flushed to the log only at checkpoint time, the
// checkpoint records the log's row count and plan dictionary, and a restore
// cuts the log back to that high-water mark before the replayed epochs land
// again — exactly once, bit for bit. Truncated or CRC-damaged checkpoints
// fall back to the previous snapshot and error rather than panic.
package serve
