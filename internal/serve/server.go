package serve

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync/atomic"

	"sleepscale/internal/colstore"
	"sleepscale/internal/core"
	"sleepscale/internal/fault"
)

// Config describes one daemon serve session.
type Config struct {
	// Runner configures the live epoch runner.
	Runner core.LiveConfig
	// CheckpointPath, when set, enables durable state: the runner state is
	// captured at every epoch boundary and written atomically every
	// CheckpointEvery epochs (and on Stop). Empty disables checkpointing —
	// the mode the steady-state benchmark gates at 0 allocs/op.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in epochs (default 16).
	CheckpointEvery int
	// EpochLogPath, when set, tees closed epochs to the colstore epoch log,
	// exactly once across restarts: rows land at checkpoint time, and a
	// restore rewrites the log back to the checkpoint's row high-water mark
	// before re-emitting.
	EpochLogPath string
	// Out, when set, streams one NDJSON object per closed epoch, written
	// immediately (at-least-once across restarts: a replayed restore
	// re-emits epochs after the checkpoint), plus a final summary object on
	// clean end.
	Out io.Writer
	// Faults, when set, gates ingest with a scripted outage timeline for the
	// daemon's single server (events for server 0; other servers' events are
	// ignored). The source is rewound with Reset(Runner.Seed) at start, so a
	// replayed restore sheds the same arrivals again — jobs arriving inside
	// a crash..repair window never reach the runner and are counted as shed.
	// Telemetry slots keep flowing: the predictor still observes utilization
	// through an outage.
	Faults fault.Source
	// FaultLogPath, when set with Faults, appends the applied fault events
	// to a colstore KindFaults column file on clean end.
	FaultLogPath string
}

func (c *Config) every() int {
	if c.CheckpointEvery <= 0 {
		return 16
	}
	return c.CheckpointEvery
}

// Server drives a LiveRunner from a wire event stream: jobs and slots in,
// NDJSON epoch records and policy decisions out, durable checkpoints on the
// side. One Server serves one stream once.
type Server struct {
	cfg    Config
	runner *core.LiveRunner

	recs     []core.EpochRecord // closed epochs not yet flushed to the log
	logRows  int64              // epoch-log rows flushed so far (checkpoint mode)
	logDict  []string           // the log's plan dictionary, intern order
	dictSeen map[string]bool    // membership index over logDict
	last     *core.LiveState    // latest boundary state (checkpoint mode only)

	skipJobs  int64 // replay realignment: events already in the checkpoint
	skipSlots int

	faults  *fault.Cursor // nil without injection
	down    bool          // server 0 inside a crash..repair window
	shed    int64         // jobs refused at ingest while down
	applied []fault.Event // server-0 transitions consumed so far

	restoredFrom string // checkpoint file actually loaded (restore only)

	outBuf  []byte
	stop    atomic.Bool
	served  bool
	stopped bool
}

// NewServer starts a fresh serve session. When both checkpointing and epoch
// logging are configured and the log already holds rows from earlier runs,
// the checkpoint's high-water mark starts past them — a restore keeps them.
func NewServer(cfg Config) (*Server, error) {
	runner, err := core.NewLiveRunner(cfg.Runner)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, runner: runner}
	s.initFaults()
	if cfg.CheckpointPath != "" && cfg.EpochLogPath != "" {
		if err := s.seedLogState(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// initFaults rewinds the configured fault source to the runner's seed and
// binds the ingest-gate cursor over it.
func (s *Server) initFaults() {
	if s.cfg.Faults == nil {
		return
	}
	s.cfg.Faults.Reset(s.cfg.Runner.Seed)
	s.faults = fault.NewCursor(s.cfg.Faults)
}

// seedLogState reads an existing epoch log's row count and dictionary so the
// first checkpoint's high-water mark covers prior runs' rows.
func (s *Server) seedLogState() error {
	fi, err := os.Stat(s.cfg.EpochLogPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	if fi.Size() == 0 {
		return nil
	}
	r, err := colstore.Open(s.cfg.EpochLogPath)
	if err != nil {
		return fmt.Errorf("serve: existing epoch log: %w", err)
	}
	defer r.Close()
	if r.Rows() > 0 && len(r.Schema().Dict) == 0 {
		return fmt.Errorf("serve: existing epoch log %s has rows but no dictionary (crashed writer?) — repair or remove it", s.cfg.EpochLogPath)
	}
	s.logRows = int64(r.Rows())
	s.logDict = append([]string(nil), r.Schema().Dict...)
	return nil
}

// RestoreServer resumes a session from cfg.CheckpointPath (falling back to
// the rotated previous snapshot when the primary is damaged). The epoch log
// is cut back to the checkpoint's row high-water mark, so re-emitted epochs
// land exactly once. replay=true realigns a feed that restarts from the
// beginning of the stream (a replayed pipe): events the checkpoint already
// accounts for are skipped. Pass false when the feed itself resumes from
// the interruption point (a socket producer that kept its own cursor).
func RestoreServer(cfg Config, replay bool) (*Server, error) {
	if cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("serve: restore needs a checkpoint path")
	}
	c, source, err := LoadCheckpointFrom(cfg.CheckpointPath)
	if err != nil {
		return nil, err
	}
	runner, err := core.RestoreLiveRunner(cfg.Runner, &c.State)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, runner: runner, logRows: c.EpochLogRows, last: &c.State, restoredFrom: source}
	s.logDict = append([]string(nil), c.EpochLogDict...)
	s.initFaults()
	if cfg.EpochLogPath != "" {
		if err := reconcileLog(cfg.EpochLogPath, c.EpochLogRows, c.EpochLogDict); err != nil {
			return nil, err
		}
	}
	if replay {
		s.skipJobs = c.State.JobsOffered
		s.skipSlots = c.State.Slot
	}
	return s, nil
}

// reconcileLog cuts the epoch log back to the checkpoint's recorded row
// count, discarding rows from epochs the restored runner will re-emit. A
// colstore append drops the old footer before writing new blocks, so a
// longer (or footer-less, crashed-mid-append) file cannot be fixed by byte
// truncation: the kept rows are rewritten into a fresh file instead, with
// plan ids re-interned against the checkpoint's dictionary.
func reconcileLog(path string, rows int64, dict []string) error {
	if rows == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("serve: epoch log: %w", err)
		}
		return nil
	}
	r, err := colstore.Open(path)
	if err != nil {
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	total := int64(r.Rows())
	if total < rows {
		r.Close()
		return fmt.Errorf("serve: epoch log %s has %d rows, checkpoint covers %d", path, total, rows)
	}
	if total == rows && len(r.Schema().Dict) > 0 {
		// Cleanly closed at exactly the checkpoint's rows: nothing to do.
		r.Close()
		return nil
	}
	ncols := len(r.Schema().Cols)
	cols := make([][]float64, ncols)
	read := int64(0)
	for b := 0; b < r.NumBlocks() && read < rows; b++ {
		for c := 0; c < ncols; c++ {
			v, err := r.Col(b, c, nil)
			if err != nil {
				r.Close()
				return fmt.Errorf("serve: epoch log: %w", err)
			}
			cols[c] = append(cols[c], v...)
		}
		read = int64(len(cols[0]))
	}
	r.Close()

	schema := core.EpochLogSchema()
	planCol := schema.ColIndex("plan")
	tmp := path + ".tmp"
	w, err := colstore.Create(tmp, schema)
	if err != nil {
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	abort := func(err error) error {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	row := make([]float64, ncols)
	for i := int64(0); i < rows; i++ {
		for c := 0; c < ncols; c++ {
			row[c] = cols[c][i]
		}
		id := int(row[planCol])
		if float64(id) != row[planCol] || id < 0 || id >= len(dict) {
			return abort(fmt.Errorf("row %d: plan id %g outside checkpoint dictionary (%d names)", i, row[planCol], len(dict)))
		}
		row[planCol] = w.DictID(dict[id])
		if err := w.Append(row); err != nil {
			return abort(err)
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: epoch log: %w", err)
	}
	return nil
}

// Stop requests a graceful drain: the serve loop stops consuming events at
// the next event boundary, persists the latest epoch-boundary checkpoint
// and flushes the epoch log, then Serve returns with done=false. Safe to
// call from a signal handler goroutine; if the loop is blocked reading,
// close the event stream to unblock it — a read error after Stop is treated
// as part of the drain, not a failure.
func (s *Server) Stop() { s.stop.Store(true) }

// Runner exposes the underlying live runner (read-only use: position and
// counters).
func (s *Server) Runner() *core.LiveRunner { return s.runner }

// RestoredFrom returns the checkpoint file a restore actually loaded —
// the configured path, or its rotated previous snapshot when the primary
// was missing or damaged. Empty for a fresh server.
func (s *Server) RestoredFrom() string { return s.restoredFrom }

// Shed returns the number of arrivals refused at ingest because the
// server was inside a scripted outage.
func (s *Server) Shed() int64 { return s.shed }

// FaultEvents returns the server-0 fault transitions applied so far, in
// time order. The slice is owned by the server; do not mutate it.
func (s *Server) FaultEvents() []fault.Event { return s.applied }

// Serve consumes wire events from r until the stream's EventEnd, a Stop, or
// an error. On clean end it finalizes the run and returns its report with
// done=true; on Stop it persists state and returns done=false. The
// steady-state loop — decode event, advance the runner, emit NDJSON — does
// not allocate when checkpointing is disabled.
func (s *Server) Serve(r io.Reader) (report core.RunReport, done bool, err error) {
	if s.served {
		return core.RunReport{}, false, fmt.Errorf("serve: server already served a stream")
	}
	s.served = true
	wr := NewWireReader(r)
	checkpointing := s.cfg.CheckpointPath != ""
	logging := s.cfg.EpochLogPath != ""
	every := s.cfg.every()

	for {
		if s.stop.Load() {
			return core.RunReport{}, false, s.drain()
		}
		ev, rerr := wr.Next()
		if rerr != nil {
			if s.stop.Load() {
				// The caller unblocked a pending read by closing the
				// stream; that is part of the graceful drain.
				return core.RunReport{}, false, s.drain()
			}
			if derr := s.drain(); derr != nil {
				return core.RunReport{}, false, fmt.Errorf("%w (drain also failed: %v)", rerr, derr)
			}
			return core.RunReport{}, false, rerr
		}
		switch ev.Kind {
		case EventJob:
			// Gate before replay realignment: shedding is a pure function of
			// the arrival time, so a replayed stream sheds the same jobs and
			// the checkpoint's offered-job count stays aligned with the jobs
			// that actually reached the runner.
			if s.faults != nil && !s.gateJob(ev.Job.Arrival) {
				s.shed++
				continue
			}
			if s.skipJobs > 0 {
				s.skipJobs--
				continue
			}
			if err := s.runner.OfferJob(ev.Job); err != nil {
				return core.RunReport{}, false, err
			}
		case EventSlot:
			if s.skipSlots > 0 {
				s.skipSlots--
				continue
			}
			rec, closed, err := s.runner.OfferSlot(ev.Rho)
			if err != nil {
				return core.RunReport{}, false, err
			}
			if !closed {
				continue
			}
			if err := s.emit(&rec); err != nil {
				return core.RunReport{}, false, err
			}
			if checkpointing || logging {
				s.recs = append(s.recs, rec)
			}
			if checkpointing {
				st, err := s.runner.State()
				if err != nil {
					return core.RunReport{}, false, err
				}
				s.last = st
				if s.runner.Epoch()%every == 0 {
					if err := s.persist(); err != nil {
						return core.RunReport{}, false, err
					}
				}
			} else if logging && len(s.recs) >= every {
				if err := s.flushLog(); err != nil {
					return core.RunReport{}, false, err
				}
			}
		case EventEnd:
			return s.finish()
		}
	}
}

// gateJob advances the fault timeline through arrival and reports whether
// the server is up to take the job. Only server 0's transitions apply —
// the daemon is a single server; fleet-wide schedules pass through with
// other servers' events ignored.
func (s *Server) gateJob(arrival float64) bool {
	for {
		ev, ok := s.faults.Peek()
		if !ok || ev.Time > arrival {
			break
		}
		s.faults.Advance()
		if ev.Server != 0 {
			continue
		}
		s.down = ev.Kind == fault.Crash
		s.applied = append(s.applied, ev)
	}
	return !s.down
}

// persist flushes buffered epoch records to the log and atomically writes
// the latest boundary checkpoint covering them. Every record buffered so
// far belongs to an epoch before s.last.Epoch, so the checkpoint's log
// high-water mark is exact: a crash between the two steps only leaves rows
// the next restore truncates away.
func (s *Server) persist() error {
	if err := s.flushLog(); err != nil {
		return err
	}
	if s.last == nil {
		return nil // nothing closed yet
	}
	return WriteCheckpoint(s.cfg.CheckpointPath, &Checkpoint{
		State: *s.last, EpochLogRows: s.logRows, EpochLogDict: s.logDict,
	})
}

// flushLog appends buffered records to the colstore epoch log and advances
// the row high-water mark, tracking the dictionary exactly as the log's
// writer interns it (first use, in record order).
func (s *Server) flushLog() error {
	if s.cfg.EpochLogPath == "" || len(s.recs) == 0 {
		return nil
	}
	if err := core.WriteEpochLog(s.cfg.EpochLogPath, s.recs); err != nil {
		return err
	}
	if s.dictSeen == nil {
		s.dictSeen = make(map[string]bool, len(s.logDict))
		for _, name := range s.logDict {
			s.dictSeen[name] = true
		}
	}
	for i := range s.recs {
		if name := s.recs[i].Policy.Plan.Name; !s.dictSeen[name] {
			s.dictSeen[name] = true
			s.logDict = append(s.logDict, name)
		}
	}
	s.logRows += int64(len(s.recs))
	s.recs = s.recs[:0]
	return nil
}

// drain is the graceful-stop path: persist the latest boundary state and
// flush the log, leaving a checkpoint a restore continues from
// bit-identically.
func (s *Server) drain() error {
	if s.stopped {
		return nil
	}
	s.stopped = true
	if s.cfg.CheckpointPath != "" {
		return s.persist()
	}
	return s.flushLog()
}

// finish is the clean-end path: close a partial final epoch, flush
// everything and emit the whole-run summary. No checkpoint is written — the
// run is complete, and its final state is not an epoch boundary.
func (s *Server) finish() (core.RunReport, bool, error) {
	rec, closed, report, err := s.runner.Finish()
	if err != nil {
		return core.RunReport{}, false, err
	}
	if closed {
		if err := s.emit(&rec); err != nil {
			return core.RunReport{}, false, err
		}
		if s.cfg.CheckpointPath != "" || s.cfg.EpochLogPath != "" {
			s.recs = append(s.recs, rec)
		}
	}
	if err := s.flushLog(); err != nil {
		return core.RunReport{}, false, err
	}
	if s.cfg.FaultLogPath != "" && len(s.applied) > 0 {
		if err := fault.WriteLog(s.cfg.FaultLogPath, s.applied); err != nil {
			return core.RunReport{}, false, err
		}
	}
	if err := s.emitReport(&report); err != nil {
		return core.RunReport{}, false, err
	}
	return report, true, nil
}

// emit streams one epoch record as NDJSON, reusing the output buffer — no
// allocations at steady state.
func (s *Server) emit(rec *core.EpochRecord) error {
	if s.cfg.Out == nil {
		return nil
	}
	b := s.outBuf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendInt(b, int64(rec.Index), 10)
	b = append(b, `,"predicted":`...)
	b = strconv.AppendFloat(b, rec.Predicted, 'g', -1, 64)
	b = append(b, `,"realized":`...)
	b = strconv.AppendFloat(b, rec.Realized, 'g', -1, 64)
	b = append(b, `,"frequency":`...)
	b = strconv.AppendFloat(b, rec.Policy.Frequency, 'g', -1, 64)
	b = append(b, `,"plan":"`...)
	b = append(b, rec.Policy.Plan.Name...)
	b = append(b, `","jobs":`...)
	b = strconv.AppendInt(b, int64(rec.Jobs), 10)
	b = append(b, `,"mean_delay":`...)
	b = strconv.AppendFloat(b, rec.MeanDelay, 'g', -1, 64)
	b = append(b, `,"p95_delay":`...)
	b = strconv.AppendFloat(b, rec.P95Delay, 'g', -1, 64)
	b = append(b, `,"energy":`...)
	b = strconv.AppendFloat(b, rec.Energy, 'g', -1, 64)
	b = append(b, `,"busy":`...)
	b = strconv.AppendFloat(b, rec.BusyTime, 'g', -1, 64)
	b = append(b, `,"wake":`...)
	b = strconv.AppendFloat(b, rec.WakeTime, 'g', -1, 64)
	b = append(b, `,"idle":`...)
	b = strconv.AppendFloat(b, rec.IdleTime, 'g', -1, 64)
	b = append(b, "}\n"...)
	s.outBuf = b
	_, err := s.cfg.Out.Write(b)
	return err
}

// emitReport streams the whole-run summary as the final NDJSON object,
// marked "done":true.
func (s *Server) emitReport(rep *core.RunReport) error {
	if s.cfg.Out == nil {
		return nil
	}
	b := s.outBuf[:0]
	b = append(b, `{"done":true,"strategy":"`...)
	b = append(b, rep.Strategy...)
	b = append(b, `","predictor":"`...)
	b = append(b, rep.Predictor...)
	b = append(b, `","jobs":`...)
	b = strconv.AppendInt(b, int64(rep.Jobs), 10)
	b = append(b, `,"mean_response":`...)
	b = strconv.AppendFloat(b, rep.MeanResponse, 'g', -1, 64)
	b = append(b, `,"avg_power":`...)
	b = strconv.AppendFloat(b, rep.AvgPower, 'g', -1, 64)
	b = append(b, `,"energy":`...)
	b = strconv.AppendFloat(b, rep.Energy, 'g', -1, 64)
	b = append(b, `,"duration":`...)
	b = strconv.AppendFloat(b, rep.Duration, 'g', -1, 64)
	b = append(b, `,"mean_frequency":`...)
	b = strconv.AppendFloat(b, rep.MeanFrequency, 'g', -1, 64)
	if s.faults != nil {
		crashes := 0
		for _, ev := range s.applied {
			if ev.Kind == fault.Crash {
				crashes++
			}
		}
		b = append(b, `,"jobs_shed":`...)
		b = strconv.AppendInt(b, s.shed, 10)
		b = append(b, `,"crashes":`...)
		b = strconv.AppendInt(b, int64(crashes), 10)
		b = append(b, `,"repairs":`...)
		b = strconv.AppendInt(b, int64(len(s.applied)-crashes), 10)
	}
	b = append(b, "}\n"...)
	s.outBuf = b
	_, err := s.cfg.Out.Write(b)
	return err
}
