package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/workload"
)

// Wire format: the byte stream between a load generator and the daemon,
// carried over a Unix/TCP socket or a replayed pipe. It opens with the
// 4-byte magic "SSW1"; each event is a 1-byte kind followed by little-endian
// raw float64 bits:
//
//	'j' arrival size — a job arrival (17 bytes)
//	's' rho          — a completed telemetry slot (9 bytes)
//	'e'              — clean end of stream (1 byte)
//
// Floats travel as raw bits, never reformatted, so a replayed stream is
// bit-identical to the source that produced it — the determinism contract
// the serve loop's equivalence tests rest on.

const wireMagic = "SSW1"

// EventKind discriminates wire events.
type EventKind byte

// Wire event kinds.
const (
	EventJob  EventKind = 'j'
	EventSlot EventKind = 's'
	EventEnd  EventKind = 'e'
)

// Event is one decoded wire event.
type Event struct {
	Kind EventKind
	Job  queue.Job // valid for EventJob
	Rho  float64   // valid for EventSlot
}

// WireWriter encodes events onto a stream. Not safe for concurrent use.
type WireWriter struct {
	w       *bufio.Writer
	started bool
	scratch [17]byte
}

// NewWireWriter returns a writer over w; the magic is emitted lazily before
// the first event.
func NewWireWriter(w io.Writer) *WireWriter { return &WireWriter{w: bufio.NewWriter(w)} }

func (w *WireWriter) begin() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := w.w.WriteString(wireMagic)
	return err
}

// Job emits a job arrival.
func (w *WireWriter) Job(j queue.Job) error {
	if err := w.begin(); err != nil {
		return err
	}
	w.scratch[0] = byte(EventJob)
	binary.LittleEndian.PutUint64(w.scratch[1:9], math.Float64bits(j.Arrival))
	binary.LittleEndian.PutUint64(w.scratch[9:17], math.Float64bits(j.Size))
	_, err := w.w.Write(w.scratch[:17])
	return err
}

// Slot emits a completed telemetry slot's realized utilization.
func (w *WireWriter) Slot(rho float64) error {
	if err := w.begin(); err != nil {
		return err
	}
	w.scratch[0] = byte(EventSlot)
	binary.LittleEndian.PutUint64(w.scratch[1:9], math.Float64bits(rho))
	_, err := w.w.Write(w.scratch[:9])
	return err
}

// End emits the clean end-of-stream marker and flushes.
func (w *WireWriter) End() error {
	if err := w.begin(); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(EventEnd)); err != nil {
		return err
	}
	return w.w.Flush()
}

// Flush pushes buffered events to the underlying writer — call it when
// feeding a live consumer that must see events promptly.
func (w *WireWriter) Flush() error {
	if err := w.begin(); err != nil {
		return err
	}
	return w.w.Flush()
}

// WireReader decodes events from a stream. Steady-state reads allocate
// nothing. Not safe for concurrent use.
type WireReader struct {
	r       *bufio.Reader
	started bool
	scratch [16]byte
}

// NewWireReader returns a reader over r.
func NewWireReader(r io.Reader) *WireReader { return &WireReader{r: bufio.NewReader(r)} }

// Next decodes the next event. A stream that ends without an EventEnd
// returns io.ErrUnexpectedEOF — the producer died mid-stream.
func (r *WireReader) Next() (Event, error) {
	if !r.started {
		if _, err := io.ReadFull(r.r, r.scratch[:4]); err != nil {
			return Event{}, fmt.Errorf("serve: wire magic: %w", noEOF(err))
		}
		if string(r.scratch[:4]) != wireMagic {
			return Event{}, fmt.Errorf("serve: bad wire magic %q", r.scratch[:4])
		}
		r.started = true
	}
	k, err := r.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("serve: wire event: %w", noEOF(err))
	}
	switch EventKind(k) {
	case EventJob:
		if _, err := io.ReadFull(r.r, r.scratch[:16]); err != nil {
			return Event{}, fmt.Errorf("serve: wire job: %w", noEOF(err))
		}
		return Event{Kind: EventJob, Job: queue.Job{
			Arrival: math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[0:8])),
			Size:    math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[8:16])),
		}}, nil
	case EventSlot:
		if _, err := io.ReadFull(r.r, r.scratch[:8]); err != nil {
			return Event{}, fmt.Errorf("serve: wire slot: %w", noEOF(err))
		}
		return Event{Kind: EventSlot, Rho: math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[0:8]))}, nil
	case EventEnd:
		return Event{Kind: EventEnd}, nil
	default:
		return Event{}, fmt.Errorf("serve: unknown wire event %#x", k)
	}
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: every clean wire
// stream ends with an explicit EventEnd, so plain EOF always means a
// truncated stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Feed replays a job source and a slot feed as one interleaved wire stream:
// each slot's covered jobs (arrivals before the slot's end) are emitted
// before the slot record, exactly the interleaving the batch cursor
// produces — any stream.Source (a trace generator, a ColJobs replay, a
// flash-crowd scenario) becomes a load generator for the daemon. Jobs
// arriving past the final slot are left unread, matching batch semantics.
// Feed closes the stream with End.
func Feed(w *WireWriter, src stream.Source, slots workload.SlotFeed, slotSeconds float64) error {
	if slotSeconds <= 0 {
		return fmt.Errorf("serve: slot length %g ≤ 0", slotSeconds)
	}
	cursor := stream.NewCursor(src)
	for slot := 0; ; slot++ {
		rho, ok, err := slots.NextSlot()
		if err != nil {
			return fmt.Errorf("serve: slot feed: %w", err)
		}
		if !ok {
			break
		}
		slotEnd := float64(slot+1) * slotSeconds
		for {
			j, jok := cursor.Peek()
			if !jok || j.Arrival >= slotEnd {
				break
			}
			if err := w.Job(j); err != nil {
				return err
			}
			cursor.Advance()
		}
		if err := w.Slot(rho); err != nil {
			return err
		}
	}
	if err := stream.Err(src); err != nil {
		return fmt.Errorf("serve: job source: %w", err)
	}
	return w.End()
}
