package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"sleepscale/internal/core"
	"sleepscale/internal/eventlog"
	"sleepscale/internal/metrics"
	"sleepscale/internal/queue"
)

// Checkpoint file layout:
//
//	"SSCK" | u32 version | u64 payload length | u32 CRC-32C(payload) | payload
//
// The payload is the little-endian encoding of Checkpoint below; floats are
// raw bits, so a restored state is bit-identical to the captured one. Writes
// are atomic (temp file + fsync + rename) and rotate the previous snapshot
// to path+".prev", so a crash mid-write always leaves a loadable snapshot;
// LoadCheckpoint falls back to it when the primary is truncated or damaged.

const (
	ckptMagic   = "SSCK"
	ckptVersion = 1
	// PrevSuffix names the rotated previous snapshot next to a checkpoint.
	PrevSuffix = ".prev"
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is the daemon's durable state: the live runner's resumable
// state plus the epoch-log high-water mark that makes log appends exactly
// once across restarts.
type Checkpoint struct {
	// State is the runner state at an epoch boundary.
	State core.LiveState
	// EpochLogRows is the number of rows the epoch log held when the
	// checkpoint was taken; restore rewrites the log back to exactly those
	// rows, discarding any from epochs the restored runner will re-emit.
	EpochLogRows int64
	// EpochLogDict is the log's plan-name dictionary (intern order) covering
	// those rows, so a restore can rebuild the log even when a crashed
	// append left the file without its footer.
	EpochLogDict []string
}

type ckptEnc struct{ b []byte }

func (e *ckptEnc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *ckptEnc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *ckptEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *ckptEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *ckptEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *ckptEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *ckptEnc) floats(vs []float64) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

type ckptDec struct {
	b   []byte
	err error
}

func (d *ckptDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("serve: checkpoint: "+format, args...)
	}
}

func (d *ckptDec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *ckptDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *ckptDec) i64() int64   { return int64(d.u64()) }
func (d *ckptDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *ckptDec) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("truncated payload")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

// count reads a u64 length whose elements occupy at least elemSize bytes
// each, rejecting lengths the remaining payload cannot hold — the guard
// that keeps corrupt lengths from turning into huge allocations.
func (d *ckptDec) count(elemSize int) int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.b)/elemSize) {
		d.fail("length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *ckptDec) str() string {
	if d.err != nil {
		return ""
	}
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds remaining payload", n)
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *ckptDec) floats() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *ckptDec) blob() []byte {
	if d.err != nil {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("blob length %d exceeds remaining payload", n)
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

// EncodeCheckpoint serializes c into a self-verifying checkpoint file image.
func EncodeCheckpoint(c *Checkpoint) []byte {
	var e ckptEnc
	st := &c.State
	e.i64(int64(st.Epoch))
	e.i64(int64(st.Slot))
	e.f64(st.LastArrival)
	e.i64(st.JobsOffered)
	e.i64(st.JobsServed)
	e.u64(uint64(len(st.Pending)))
	for _, j := range st.Pending {
		e.f64(j.Arrival)
		e.f64(j.Size)
	}
	e.f64(st.LastMean)
	e.f64(st.LastP95)
	e.i64(int64(st.LastJobs))
	e.f64(st.FreqSum)
	e.u64(uint64(len(st.PlanNames)))
	for i, name := range st.PlanNames {
		e.str(name)
		e.i64(st.PlanCounts[i])
	}
	e.u64(st.RngDraws)
	e.u64(uint64(len(st.Predictor)))
	e.b = append(e.b, st.Predictor...)
	e.i64(int64(st.Window.Capacity))
	e.i64(int64(st.Window.Pushed))
	e.u64(uint64(len(st.Window.Epochs)))
	for _, ep := range st.Window.Epochs {
		e.floats(ep.Gaps)
		e.floats(ep.Sizes)
	}
	e.boolean(st.HasEngine)
	if st.HasEngine {
		e.f64(st.CurFrequency)
		e.str(st.CurPlanName)
		e.u64(uint64(len(st.CurPhases)))
		for _, ph := range st.CurPhases {
			e.i64(int64(ph.CPU))
			e.i64(int64(ph.Platform))
			e.f64(ph.Enter)
		}
		en := &st.Engine
		e.f64(en.FreeAt)
		e.f64(en.Anchor)
		e.f64(en.Billed)
		e.f64(en.Energy)
		e.f64(en.Busy)
		e.f64(en.Wake)
		e.f64(en.Idle)
		e.i64(int64(en.Wakes))
		e.f64(en.Started)
		e.f64(en.LastSeen)
		e.floats(en.Resid)
		e.u64(uint64(len(en.ResidPrevNames)))
		for i, name := range en.ResidPrevNames {
			e.str(name)
			e.f64(en.ResidPrevWeights[i])
		}
		e.i64(int64(en.Responses.N))
		e.f64(en.Responses.Mean)
		e.f64(en.Responses.M2)
		e.f64(en.Responses.Min)
		e.f64(en.Responses.Max)
		e.boolean(en.DiscardResponses)
	}
	e.f64(st.PrevTotals.Energy)
	e.f64(st.PrevTotals.BusyTime)
	e.f64(st.PrevTotals.WakeTime)
	e.f64(st.PrevTotals.IdleTime)
	e.i64(int64(st.PrevTotals.Jobs))
	e.i64(int64(st.PrevTotals.Wakes))
	e.i64(c.EpochLogRows)
	e.u64(uint64(len(c.EpochLogDict)))
	for _, name := range c.EpochLogDict {
		e.str(name)
	}

	payload := e.b
	out := make([]byte, 0, len(payload)+20)
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, ckptVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, ckptCRC))
	return append(out, payload...)
}

// DecodeCheckpoint parses and verifies a checkpoint file image. Truncated,
// oversized or CRC-damaged images return an error — never a panic, and
// never a partially-applied state.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("serve: checkpoint: %d bytes, want ≥ 20", len(data))
	}
	if string(data[:4]) != ckptMagic {
		return nil, fmt.Errorf("serve: checkpoint: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("serve: checkpoint: version %d, want %d", v, ckptVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if plen != uint64(len(data)-20) {
		return nil, fmt.Errorf("serve: checkpoint: payload %d bytes, header says %d", len(data)-20, plen)
	}
	want := binary.LittleEndian.Uint32(data[16:20])
	payload := data[20:]
	if got := crc32.Checksum(payload, ckptCRC); got != want {
		return nil, fmt.Errorf("serve: checkpoint: CRC %#x, want %#x", got, want)
	}

	d := ckptDec{b: payload}
	c := &Checkpoint{}
	st := &c.State
	st.Epoch = int(d.i64())
	st.Slot = int(d.i64())
	st.LastArrival = d.f64()
	st.JobsOffered = d.i64()
	st.JobsServed = d.i64()
	nPend := d.count(16)
	for i := 0; i < nPend && d.err == nil; i++ {
		st.Pending = append(st.Pending, queue.Job{Arrival: d.f64(), Size: d.f64()})
	}
	st.LastMean = d.f64()
	st.LastP95 = d.f64()
	st.LastJobs = int(d.i64())
	st.FreqSum = d.f64()
	nPlans := d.count(16)
	for i := 0; i < nPlans && d.err == nil; i++ {
		st.PlanNames = append(st.PlanNames, d.str())
		st.PlanCounts = append(st.PlanCounts, d.i64())
	}
	st.RngDraws = d.u64()
	st.Predictor = d.blob()
	st.Window.Capacity = int(d.i64())
	st.Window.Pushed = int(d.i64())
	nEpochs := d.count(16)
	for i := 0; i < nEpochs && d.err == nil; i++ {
		st.Window.Epochs = append(st.Window.Epochs, eventlog.Epoch{
			Gaps: d.floats(), Sizes: d.floats(),
		})
	}
	st.HasEngine = d.boolean()
	if st.HasEngine {
		st.CurFrequency = d.f64()
		st.CurPlanName = d.str()
		nPh := d.count(24)
		for i := 0; i < nPh && d.err == nil; i++ {
			st.CurPhases = append(st.CurPhases, core.LivePhase{
				CPU: int(d.i64()), Platform: int(d.i64()), Enter: d.f64(),
			})
		}
		en := &st.Engine
		en.FreeAt = d.f64()
		en.Anchor = d.f64()
		en.Billed = d.f64()
		en.Energy = d.f64()
		en.Busy = d.f64()
		en.Wake = d.f64()
		en.Idle = d.f64()
		en.Wakes = int(d.i64())
		en.Started = d.f64()
		en.LastSeen = d.f64()
		en.Resid = d.floats()
		nResid := d.count(16)
		for i := 0; i < nResid && d.err == nil; i++ {
			en.ResidPrevNames = append(en.ResidPrevNames, d.str())
			en.ResidPrevWeights = append(en.ResidPrevWeights, d.f64())
		}
		en.Responses = metrics.StreamState{
			N: int(d.i64()), Mean: d.f64(), M2: d.f64(), Min: d.f64(), Max: d.f64(),
		}
		en.DiscardResponses = d.boolean()
	}
	st.PrevTotals = queue.Snapshot{
		Energy: d.f64(), BusyTime: d.f64(), WakeTime: d.f64(), IdleTime: d.f64(),
		Jobs: int(d.i64()), Wakes: int(d.i64()),
	}
	c.EpochLogRows = d.i64()
	nDict := d.count(8)
	for i := 0; i < nDict && d.err == nil; i++ {
		c.EpochLogDict = append(c.EpochLogDict, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("serve: checkpoint: %d trailing bytes", len(d.b))
	}
	return c, nil
}

// WriteCheckpoint atomically replaces the checkpoint at path with c: the
// image lands in a temp file, is fsynced, the existing checkpoint (if any)
// rotates to path+PrevSuffix, and the temp file renames into place. At every
// instant either the old or the new snapshot is loadable.
func WriteCheckpoint(path string, c *Checkpoint) error {
	data := EncodeCheckpoint(c)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSuffix); err != nil {
			os.Remove(tmpName)
			return err
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory durability
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads and verifies the checkpoint at path, falling back to
// the rotated previous snapshot when the primary is missing, truncated or
// corrupt — the crash-mid-write recovery path. os.ErrNotExist surfaces only
// when neither file exists, and the error then names both files tried.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c, _, err := LoadCheckpointFrom(path)
	return c, err
}

// LoadCheckpointFrom is LoadCheckpoint, additionally reporting which file
// the snapshot was actually loaded from — path itself, or path+PrevSuffix
// when the fallback was taken — so callers can surface the recovery
// decision to the operator.
func LoadCheckpointFrom(path string) (*Checkpoint, string, error) {
	c, primaryErr := loadOne(path)
	if primaryErr == nil {
		return c, path, nil
	}
	prev := path + PrevSuffix
	c, prevErr := loadOne(prev)
	if prevErr == nil {
		return c, prev, nil
	}
	if errors.Is(primaryErr, os.ErrNotExist) && errors.Is(prevErr, os.ErrNotExist) {
		return nil, "", fmt.Errorf("serve: checkpoint %s: %w (no previous snapshot %s either)", path, primaryErr, prev)
	}
	return nil, "", fmt.Errorf("serve: checkpoint %s unusable (%v); previous snapshot %s unusable (%v)", path, primaryErr, prev, prevErr)
}

func loadOne(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}
