// Package trace provides minute-granularity server utilization traces in the
// shape of the paper's Figure 7. The departmental data-center traces the
// paper uses (Wong & Annavaram) are not public, so this package generates
// synthetic equivalents with the structure the paper describes: a periodic
// diurnal pattern, a low-utilization file server, and a wide-range email
// store whose end-of-day backup and maintenance windows produce abrupt
// surges. Generation is deterministic in the seed. CSV import/export lets
// users substitute real traces.
package trace

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"sleepscale/internal/metrics"
)

// MinutesPerDay is the number of slots in one day of a minute-level trace.
const MinutesPerDay = 24 * 60

// Trace is a sequence of per-slot utilizations in [0, 1).
type Trace struct {
	// Name identifies the trace ("file-server", "email-store").
	Name string
	// SlotSeconds is the wall-clock length of one slot (60 for real
	// minute traces; tests may use shorter slots).
	SlotSeconds float64
	// Utilization holds one value per slot, starting at midnight.
	Utilization []float64
}

// Len reports the number of slots.
func (t *Trace) Len() int { return len(t.Utilization) }

// Duration reports the trace's wall-clock span in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Utilization)) * t.SlotSeconds }

// Window returns the sub-trace covering slots [start, end). It copies the
// data. The paper evaluates the email store over 2 AM–8 PM (slots 120–1200
// of each day).
func (t *Trace) Window(start, end int) (*Trace, error) {
	if start < 0 || end > len(t.Utilization) || start >= end {
		return nil, fmt.Errorf("trace: window [%d,%d) outside [0,%d)", start, end, len(t.Utilization))
	}
	out := &Trace{Name: t.Name, SlotSeconds: t.SlotSeconds,
		Utilization: make([]float64, end-start)}
	copy(out.Utilization, t.Utilization[start:end])
	return out, nil
}

// DailyWindow concatenates slots [startMinute, endMinute) of every full day,
// e.g. (120, 1200) extracts the paper's 2 AM–8 PM evaluation window.
func (t *Trace) DailyWindow(startMinute, endMinute int) (*Trace, error) {
	if startMinute < 0 || endMinute > MinutesPerDay || startMinute >= endMinute {
		return nil, fmt.Errorf("trace: daily window [%d,%d) invalid", startMinute, endMinute)
	}
	days := len(t.Utilization) / MinutesPerDay
	if days == 0 {
		return nil, fmt.Errorf("trace: no full day in %d slots", len(t.Utilization))
	}
	out := &Trace{Name: t.Name, SlotSeconds: t.SlotSeconds}
	for d := 0; d < days; d++ {
		base := d * MinutesPerDay
		out.Utilization = append(out.Utilization,
			t.Utilization[base+startMinute:base+endMinute]...)
	}
	return out, nil
}

// Stats reports the mean, min and max utilization.
func (t *Trace) Stats() (mean, min, max float64) {
	var s metrics.Stream
	for _, u := range t.Utilization {
		s.Add(u)
	}
	return s.Mean(), s.Min(), s.Max()
}

// Validate checks that every slot is a utilization in [0, 1).
func (t *Trace) Validate() error {
	if t.SlotSeconds <= 0 {
		return fmt.Errorf("trace: slot length %g", t.SlotSeconds)
	}
	for i, u := range t.Utilization {
		if u < 0 || u >= 1 || math.IsNaN(u) {
			return fmt.Errorf("trace: slot %d utilization %g outside [0,1)", i, u)
		}
	}
	return nil
}

// clamp keeps u inside [lo, hi].
func clamp(u, lo, hi float64) float64 {
	if u < lo {
		return lo
	}
	if u > hi {
		return hi
	}
	return u
}

// diurnal is a smooth daily activity curve in [0,1]: low overnight, ramping
// through the morning, peaking early afternoon, declining in the evening.
func diurnal(minute int) float64 {
	h := float64(minute%MinutesPerDay) / 60 // hour of day
	// Two raised cosines: work day bump centred at 13:30 and a small
	// evening bump at 20:30.
	day := math.Exp(-math.Pow(h-13.5, 2) / (2 * 4.5 * 4.5))
	eve := 0.35 * math.Exp(-math.Pow(h-20.5, 2)/(2*1.5*1.5))
	return clamp(day+eve, 0, 1)
}

// EmailStore generates the email-store trace of Figure 7: utilization
// covering roughly 0.1–0.9 across the day, with abrupt surges between 8 PM
// and 2 AM from scheduled backup and maintenance.
func EmailStore(days int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: "email-store", SlotSeconds: 60,
		Utilization: make([]float64, days*MinutesPerDay)}
	noise := 0.0
	for i := range t.Utilization {
		minute := i % MinutesPerDay
		h := float64(minute) / 60
		base := 0.1 + 0.55*diurnal(minute)
		// AR(1) minute-to-minute fluctuation.
		noise = 0.9*noise + 0.025*rng.NormFloat64()
		u := base + noise
		// Backup window: 8 PM–2 AM, square surges to ~0.85–0.95.
		if h >= 20 || h < 2 {
			u = 0.82 + 0.1*math.Abs(math.Sin(h*2.1)) + 0.03*rng.NormFloat64()
		}
		// Occasional short daytime surges (flash load) to stress CUSUM.
		if minute%360 == 137 && rng.Float64() < 0.6 {
			for j := 0; j < 12 && i+j < len(t.Utilization); j++ {
				t.Utilization[i+j] = clamp(u+0.25, 0.01, 0.95)
			}
		}
		if t.Utilization[i] == 0 {
			t.Utilization[i] = clamp(u, 0.01, 0.95)
		}
	}
	return t
}

// FileServer generates the file-server trace of Figure 7: a lightly loaded
// host (≈0.02–0.2) with a gentle diurnal swing and spiky minute noise.
func FileServer(days int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: "file-server", SlotSeconds: 60,
		Utilization: make([]float64, days*MinutesPerDay)}
	noise := 0.0
	for i := range t.Utilization {
		minute := i % MinutesPerDay
		base := 0.03 + 0.09*diurnal(minute)
		noise = 0.85*noise + 0.01*rng.NormFloat64()
		u := base + noise
		// Occasional short spikes (large file transfers).
		if rng.Float64() < 0.004 {
			u += 0.05 + 0.1*rng.Float64()
		}
		t.Utilization[i] = clamp(u, 0.005, 0.25)
	}
	return t
}

// Concat returns a new trace with o appended after t; slot lengths must
// match.
func (t *Trace) Concat(o *Trace) (*Trace, error) {
	if t.SlotSeconds != o.SlotSeconds {
		return nil, fmt.Errorf("trace: slot lengths differ (%g vs %g)", t.SlotSeconds, o.SlotSeconds)
	}
	out := &Trace{Name: t.Name, SlotSeconds: t.SlotSeconds,
		Utilization: make([]float64, 0, t.Len()+o.Len())}
	out.Utilization = append(out.Utilization, t.Utilization...)
	out.Utilization = append(out.Utilization, o.Utilization...)
	return out, nil
}

// Repeat returns the trace tiled n times (n ≥ 1).
func (t *Trace) Repeat(n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: repeat count %d < 1", n)
	}
	out := &Trace{Name: t.Name, SlotSeconds: t.SlotSeconds,
		Utilization: make([]float64, 0, t.Len()*n)}
	for i := 0; i < n; i++ {
		out.Utilization = append(out.Utilization, t.Utilization...)
	}
	return out, nil
}

// Scale returns a copy with every slot multiplied by factor, clamped to
// [0, 0.99] so the result stays a valid utilization.
func (t *Trace) Scale(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: scale factor %g ≤ 0", factor)
	}
	out := &Trace{Name: t.Name, SlotSeconds: t.SlotSeconds,
		Utilization: make([]float64, t.Len())}
	for i, u := range t.Utilization {
		out.Utilization[i] = clamp(u*factor, 0, 0.99)
	}
	return out, nil
}

// WriteCSV writes the trace as "slot,utilization" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "utilization"}); err != nil {
		return err
	}
	for i, u := range t.Utilization {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(u, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Name and SlotSeconds are the
// caller's to fill; SlotSeconds defaults to 60. It is a thin materializing
// driver over SlotReader, so batch parsing and streaming replay share one
// row parser.
func ReadCSV(r io.Reader) (*Trace, error) {
	sr := NewSlotReader(r)
	t := &Trace{Name: "csv", SlotSeconds: 60}
	for {
		u, ok, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		t.Utilization = append(t.Utilization, u)
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	return t, nil
}

// SlotReader parses a WriteCSV-format trace one row at a time, so week-long
// (or unbounded) traces replay in O(1) memory. Each Next validates its row
// the way ReadCSV validates the whole file. Rows are parsed off a single
// buffered reader with a reused line scratch, so steady-state reading does
// not allocate.
type SlotReader struct {
	br   *bufio.Reader
	line []byte // scratch for lines spanning the buffer boundary
	row  int
	eof  bool
}

// slotReaderBuf sizes the read buffer: a full buffer of ~20-byte rows per
// syscall.
const slotReaderBuf = 1 << 16

// NewSlotReader returns a reader over r; an optional "slot,utilization"
// header row is skipped.
func NewSlotReader(r io.Reader) *SlotReader {
	return &SlotReader{br: bufio.NewReaderSize(r, slotReaderBuf)}
}

// nextLine returns the next newline-terminated line (terminator stripped,
// trailing \r removed), sliced from the buffer when it fits and from the
// reused scratch when it does not. ok=false at end of input.
func (sr *SlotReader) nextLine() (line []byte, ok bool, err error) {
	if sr.eof {
		return nil, false, nil
	}
	line, err = sr.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Long line: spill into the scratch and keep reading.
		sr.line = append(sr.line[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = sr.br.ReadSlice('\n')
			sr.line = append(sr.line, line...)
		}
		line = sr.line
	}
	if err == io.EOF {
		sr.eof = true
		if len(line) == 0 {
			return nil, false, nil
		}
		err = nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("trace: read csv: %w", err)
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, true, nil
}

// Next returns the next slot's utilization; ok is false at end of input.
func (sr *SlotReader) Next() (u float64, ok bool, err error) {
	for {
		line, ok, err := sr.nextLine()
		if err != nil || !ok {
			return 0, false, err
		}
		if len(line) == 0 {
			continue // blank line, as encoding/csv skips them
		}
		i := sr.row
		sr.row++
		c := bytes.IndexByte(line, ',')
		if i == 0 && c >= 0 && string(line[:c]) == "slot" {
			continue
		}
		if c < 0 || bytes.IndexByte(line[c+1:], ',') >= 0 {
			n := bytes.Count(line, []byte{','}) + 1
			return 0, false, fmt.Errorf("trace: row %d has %d fields, want 2", i, n)
		}
		u, perr := strconv.ParseFloat(string(line[c+1:]), 64)
		if perr != nil {
			return 0, false, fmt.Errorf("trace: row %d: %w", i, perr)
		}
		if u < 0 || u >= 1 || math.IsNaN(u) {
			return 0, false, fmt.Errorf("trace: row %d utilization %g outside [0,1)", i, u)
		}
		return u, true, nil
	}
}
