package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestColRoundTrip(t *testing.T) {
	tr := EmailStore(1, 2)
	path := filepath.Join(t.TempDir(), "t.col")
	if err := tr.WriteCol(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCol(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.SlotSeconds != tr.SlotSeconds || got.Len() != tr.Len() {
		t.Fatalf("round trip changed metadata: %q %g %d", got.Name, got.SlotSeconds, got.Len())
	}
	for i := range tr.Utilization {
		if math.Float64bits(got.Utilization[i]) != math.Float64bits(tr.Utilization[i]) {
			t.Fatalf("slot %d: %v != %v", i, got.Utilization[i], tr.Utilization[i])
		}
	}
}

// TestColMatchesCSV pins the two serializations to the same materialized
// trace (CSV goes through decimal text, so compare values, not bits — 'g'
// with precision -1 round-trips float64 exactly).
func TestColMatchesCSV(t *testing.T) {
	tr := FileServer(1, 4)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.col")
	if err := tr.WriteCol(path); err != nil {
		t.Fatal(err)
	}
	fromCol, err := ReadCol(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromCol.Len() != fromCSV.Len() {
		t.Fatalf("lengths differ: %d vs %d", fromCol.Len(), fromCSV.Len())
	}
	for i := range fromCSV.Utilization {
		if math.Float64bits(fromCol.Utilization[i]) != math.Float64bits(fromCSV.Utilization[i]) {
			t.Fatalf("slot %d: col %v != csv %v", i, fromCol.Utilization[i], fromCSV.Utilization[i])
		}
	}
}

// TestSlotReaderSteadyStateAllocs pins the buffered row parser: after the
// first row, Next allocates nothing.
func TestSlotReaderSteadyStateAllocs(t *testing.T) {
	tr := FileServer(1, 4)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sr := NewSlotReader(bytes.NewReader(buf.Bytes()))
	if _, _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok, err := sr.Next(); err != nil || !ok {
			t.Fatal("reader ran dry mid-benchmark")
		}
	})
	if allocs != 0 {
		t.Fatalf("SlotReader.Next allocates %.1f/op, want 0", allocs)
	}
}

// SlotReader behavioral edges the csv-based parser handled.
func TestSlotReaderEdgeCases(t *testing.T) {
	read := func(s string) ([]float64, error) {
		sr := NewSlotReader(strings.NewReader(s))
		var out []float64
		for {
			u, ok, err := sr.Next()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil
			}
			out = append(out, u)
		}
	}
	// Header optional, CRLF tolerated, no trailing newline, blank lines.
	got, err := read("slot,utilization\r\n0,0.25\r\n\n1,0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0.25 || got[1] != 0.5 {
		t.Fatalf("parsed %v", got)
	}
	// Headerless input keeps row 0.
	got, err = read("0,0.125\n1,0.375\n")
	if err != nil || len(got) != 2 || got[0] != 0.125 {
		t.Fatalf("headerless: %v, %v", got, err)
	}
	for _, bad := range []string{
		"0,0.5,9\n",  // too many fields
		"justone\n",  // too few fields
		"0,nope\n",   // unparseable value
		"0,1.5\n",    // out of range
		"0,-0.1\n",   // negative
		"slot,1.5\n", // header only on row 0 — this is a data row with a bad value
	} {
		if _, err := read("0,0.5\n" + bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// A long line spilling the buffer still parses.
	long := "0," + "0.2500000000000000000000000000000000000000" + strings.Repeat("0", slotReaderBuf) + "\n"
	got, err = read(long)
	if err != nil || len(got) != 1 || got[0] != 0.25 {
		t.Fatalf("long line: %v, %v", got, err)
	}
}
