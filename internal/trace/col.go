package trace

import (
	"fmt"

	"sleepscale/internal/colstore"
)

// Column-file layout for utilization traces: kind KindTrace, columns
// "slot" and "utilization", the trace name as dictionary entry 0.

// ColSchema returns the column-file schema a trace of this slot length
// serializes under.
func ColSchema(slotSeconds float64) colstore.Schema {
	return colstore.Schema{
		Kind:        colstore.KindTrace,
		SlotSeconds: slotSeconds,
		Cols:        []string{"slot", "utilization"},
	}
}

// WriteCol writes the trace as a column file at path — the binary
// counterpart of WriteCSV.
func (t *Trace) WriteCol(path string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	w, err := colstore.Create(path, ColSchema(t.SlotSeconds))
	if err != nil {
		return err
	}
	if t.Name != "" {
		w.DictID(t.Name)
	}
	row := make([]float64, 2)
	for i, u := range t.Utilization {
		row[0], row[1] = float64(i), u
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// ReadCol materializes a KindTrace column file — the binary counterpart of
// ReadCSV. The trace name is restored from the dictionary when present.
func ReadCol(path string) (*Trace, error) {
	r, err := colstore.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return FromColReader(r)
}

// FromColReader materializes the trace held by an open column reader.
func FromColReader(r *colstore.Reader) (*Trace, error) {
	s := r.Schema()
	if s.Kind != colstore.KindTrace {
		return nil, fmt.Errorf("trace: column file kind %d is not a trace", s.Kind)
	}
	col := s.ColIndex("utilization")
	if col < 0 {
		return nil, fmt.Errorf("trace: column file has no utilization column (cols %v)", s.Cols)
	}
	if r.Rows() == 0 {
		return nil, fmt.Errorf("trace: empty column file")
	}
	t := &Trace{Name: "col", SlotSeconds: s.SlotSeconds,
		Utilization: make([]float64, 0, r.Rows())}
	if len(s.Dict) > 0 {
		t.Name = s.Dict[0]
	}
	for b := 0; b < r.NumBlocks(); b++ {
		v, err := r.Col(b, col, nil)
		if err != nil {
			return nil, err
		}
		t.Utilization = append(t.Utilization, v...)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
