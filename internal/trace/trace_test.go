package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestEmailStoreShape(t *testing.T) {
	tr := EmailStore(3, 1)
	if tr.Len() != 3*MinutesPerDay {
		t.Fatalf("len = %d, want %d", tr.Len(), 3*MinutesPerDay)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	mean, min, max := tr.Stats()
	// Figure 7: the email store covers roughly 0.1–0.9 across the day.
	if min > 0.15 {
		t.Errorf("min = %v, want ≲ 0.15", min)
	}
	if max < 0.8 {
		t.Errorf("max = %v, want ≳ 0.8", max)
	}
	if mean < 0.2 || mean > 0.7 {
		t.Errorf("mean = %v, want mid-range", mean)
	}
	// Backup window (8 PM–2 AM) must run hotter than the overnight trough
	// (2–6 AM) — the abrupt end-of-day surge of Figure 7.
	backup := avg(tr.Utilization[20*60 : 24*60])
	trough := avg(tr.Utilization[2*60 : 6*60])
	if backup < trough+0.3 {
		t.Errorf("backup window %v not markedly above trough %v", backup, trough)
	}
}

func TestFileServerShape(t *testing.T) {
	tr := FileServer(3, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	mean, _, max := tr.Stats()
	// Figure 7: file server stays below ≈0.25 with a low mean.
	if max > 0.25 {
		t.Errorf("max = %v, want ≤ 0.25", max)
	}
	if mean > 0.15 {
		t.Errorf("mean = %v, want ≲ 0.15", mean)
	}
}

func TestTracesDeterministicInSeed(t *testing.T) {
	a := EmailStore(1, 42)
	b := EmailStore(1, 42)
	c := EmailStore(1, 43)
	for i := range a.Utilization {
		if a.Utilization[i] != b.Utilization[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	same := true
	for i := range a.Utilization {
		if a.Utilization[i] != c.Utilization[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestDailyPeriodicity(t *testing.T) {
	// The underlying diurnal component repeats daily; day-to-day correlation
	// of the trace should be strongly positive.
	tr := EmailStore(2, 7)
	d0 := tr.Utilization[:MinutesPerDay]
	d1 := tr.Utilization[MinutesPerDay:]
	if corr(d0, d1) < 0.7 {
		t.Errorf("day-to-day correlation %v, want ≥ 0.7 (periodic pattern)", corr(d0, d1))
	}
}

func TestWindow(t *testing.T) {
	tr := EmailStore(1, 1)
	w, err := tr.Window(120, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1080 {
		t.Fatalf("window len = %d, want 1080", w.Len())
	}
	if w.Utilization[0] != tr.Utilization[120] {
		t.Error("window misaligned")
	}
	// Mutating the window must not affect the original.
	w.Utilization[0] = 0.123456
	if tr.Utilization[120] == 0.123456 {
		t.Error("window aliases original storage")
	}
	for _, bad := range [][2]int{{-1, 10}, {10, 5}, {0, tr.Len() + 1}} {
		if _, err := tr.Window(bad[0], bad[1]); err == nil {
			t.Errorf("window %v accepted", bad)
		}
	}
}

func TestDailyWindow(t *testing.T) {
	tr := EmailStore(3, 2)
	// The paper's evaluation window: 2 AM (minute 120) to 8 PM (minute 1200).
	w, err := tr.DailyWindow(120, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3*1080 {
		t.Fatalf("len = %d, want %d", w.Len(), 3*1080)
	}
	if w.Utilization[0] != tr.Utilization[120] {
		t.Error("day 0 misaligned")
	}
	if w.Utilization[1080] != tr.Utilization[MinutesPerDay+120] {
		t.Error("day 1 misaligned")
	}
	if _, err := tr.DailyWindow(1200, 120); err == nil {
		t.Error("inverted window accepted")
	}
	empty := &Trace{SlotSeconds: 60}
	if _, err := empty.DailyWindow(0, 10); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := FileServer(1, 5)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Utilization {
		if got.Utilization[i] != tr.Utilization[i] {
			t.Fatalf("slot %d: %v != %v", i, got.Utilization[i], tr.Utilization[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"slot,utilization\n0,notanumber\n",
		"slot,utilization\n0,1.5\n", // utilization >= 1
		"slot,utilization\n0,-0.1\n",
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
	// Headerless input is fine.
	got, err := ReadCSV(strings.NewReader("0,0.5\n1,0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Utilization[1] != 0.6 {
		t.Errorf("headerless parse wrong: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := &Trace{SlotSeconds: 0, Utilization: []float64{0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("zero slot length accepted")
	}
	bad = &Trace{SlotSeconds: 60, Utilization: []float64{1.0}}
	if err := bad.Validate(); err == nil {
		t.Error("utilization 1.0 accepted")
	}
}

func TestConcatRepeatScale(t *testing.T) {
	a := &Trace{Name: "a", SlotSeconds: 60, Utilization: []float64{0.1, 0.2}}
	b := &Trace{Name: "b", SlotSeconds: 60, Utilization: []float64{0.3}}
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.Utilization[2] != 0.3 {
		t.Errorf("concat wrong: %+v", c.Utilization)
	}
	mismatch := &Trace{SlotSeconds: 30, Utilization: []float64{0.1}}
	if _, err := a.Concat(mismatch); err == nil {
		t.Error("slot mismatch accepted")
	}

	r, err := a.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 || r.Utilization[4] != 0.1 {
		t.Errorf("repeat wrong: %+v", r.Utilization)
	}
	if _, err := a.Repeat(0); err == nil {
		t.Error("repeat 0 accepted")
	}

	s, err := a.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	if d0, d1 := s.Utilization[0]-0.3, s.Utilization[1]-0.6; d0 > 1e-12 || d0 < -1e-12 ||
		d1 > 1e-12 || d1 < -1e-12 {
		t.Errorf("scale wrong: %+v", s.Utilization)
	}
	big, err := a.Scale(20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Utilization[1] != 0.99 {
		t.Errorf("scale must clamp to 0.99, got %v", big.Utilization[1])
	}
	if _, err := a.Scale(0); err == nil {
		t.Error("scale 0 accepted")
	}
	// Originals untouched.
	if a.Utilization[0] != 0.1 {
		t.Error("operations mutated the source trace")
	}
}

func TestDuration(t *testing.T) {
	tr := &Trace{SlotSeconds: 60, Utilization: make([]float64, 10)}
	if got := tr.Duration(); got != 600 {
		t.Errorf("duration = %v, want 600", got)
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func corr(a, b []float64) float64 {
	ma, mb := avg(a), avg(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / (sqrt(da) * sqrt(db))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is fine here; avoids importing math for one call.
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// TestSlotReaderMatchesReadCSV pins the one-parser-two-drivers invariant:
// row-at-a-time streaming yields exactly the slots batch parsing does.
func TestSlotReaderMatchesReadCSV(t *testing.T) {
	tr := EmailStore(1, 9)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	want, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewSlotReader(bytes.NewReader(data))
	var got []float64
	for {
		u, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, u)
	}
	if len(got) != want.Len() {
		t.Fatalf("%d slots, want %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Utilization[i] {
			t.Fatalf("slot %d: %v != %v", i, got[i], want.Utilization[i])
		}
	}
}

func TestSlotReaderErrors(t *testing.T) {
	cases := []string{
		"slot,utilization\n0,notanumber\n",
		"slot,utilization\n0,1.5\n",
		"slot,utilization\n0,-0.1\n",
		"slot,utilization\nlonely\n",
		"0,0.5\n1,0.6,0.9\n", // ragged row: extra field
	}
	for i, s := range cases {
		sr := NewSlotReader(strings.NewReader(s))
		var err error
		var ok bool
		for {
			_, ok, err = sr.Next()
			if err != nil || !ok {
				break
			}
		}
		if err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
}
