package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// parseFile validates a whole column file held in memory: header, footer (or
// the sequential crash-recovery scan when the trailer is missing), and every
// block's framing and CRC. It returns the schema, the block index, the
// dictionary and the offset where block data ends (= where a footer would
// start). Malformed input errors; it never panics.
func parseFile(data []byte) (*Schema, []blockMeta, []string, int, error) {
	schema, headerLen, err := decodeHeader(data)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	ncols := len(schema.Cols)
	blocks, dict, footStart, hasFooter, err := decodeFooter(data)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if hasFooter {
		if footStart < headerLen {
			return nil, nil, nil, 0, fmt.Errorf("colstore: footer overlaps header")
		}
		next := int64(headerLen)
		for i, b := range blocks {
			if b.offset != next {
				return nil, nil, nil, 0, fmt.Errorf("colstore: block %d offset %d, want %d", i, b.offset, next)
			}
			if b.rows < 1 || b.rows > BlockRows {
				return nil, nil, nil, 0, fmt.Errorf("colstore: block %d rows %d out of range", i, b.rows)
			}
			size := int64(blockSize(ncols, b.rows))
			if b.offset+size > int64(footStart) {
				return nil, nil, nil, 0, fmt.Errorf("colstore: block %d overruns footer", i)
			}
			if err := checkBlock(data[b.offset:b.offset+size], b.rows); err != nil {
				return nil, nil, nil, 0, fmt.Errorf("colstore: block %d: %w", i, err)
			}
			next = b.offset + size
		}
		if next != int64(footStart) {
			return nil, nil, nil, 0, fmt.Errorf("colstore: %d unindexed bytes before footer", int64(footStart)-next)
		}
		schema.Dict = dict
		return schema, blocks, dict, footStart, nil
	}
	// No trailer: a crashed writer. Recover every complete block by
	// sequential scan; ignore a trailing partial write.
	off := headerLen
	for off+blockHeaderLen <= len(data) {
		if binary.LittleEndian.Uint32(data[off:]) != blockMagic {
			break
		}
		rows := int(binary.LittleEndian.Uint32(data[off+4:]))
		if rows < 1 || rows > BlockRows {
			break
		}
		size := blockSize(ncols, rows)
		if off+size > len(data) {
			break
		}
		if err := checkBlock(data[off:off+size], rows); err != nil {
			return nil, nil, nil, 0, fmt.Errorf("colstore: recovered block %d: %w", len(blocks), err)
		}
		blocks = append(blocks, blockMeta{offset: int64(off), rows: rows})
		off += size
	}
	return schema, blocks, nil, off, nil
}

// checkBlock verifies one block frame's magic, row count and CRC.
func checkBlock(frame []byte, rows int) error {
	if binary.LittleEndian.Uint32(frame[0:]) != blockMagic {
		return fmt.Errorf("bad block magic")
	}
	if got := int(binary.LittleEndian.Uint32(frame[4:])); got != rows {
		return fmt.Errorf("frame says %d rows, index says %d", got, rows)
	}
	want := binary.LittleEndian.Uint32(frame[8:])
	if got := crc32.Checksum(frame[blockHeaderLen:], crcTable); got != want {
		return fmt.Errorf("crc mismatch (%#08x != %#08x)", got, want)
	}
	return nil
}

// Reader serves column reads over a validated file. Open memory-maps when it
// can, so Col returns zero-copy []float64 views over the file; the ReaderAt
// fallback decodes blocks into caller scratch instead. A Reader is safe for
// concurrent readers once opened.
type Reader struct {
	schema *Schema
	blocks []blockMeta
	rows   int

	data   []byte // whole file, when mapped or in-memory
	mapped bool   // data came from mmap and needs munmap
	ra     io.ReaderAt
	closer io.Closer

	// ranges holds every block's per-column (min, max), decoded once at
	// open — the footers queries skip on.
	ranges []float64
}

// Open opens the column file at path, memory-mapping it when the platform
// allows; on any mapping failure it degrades to ReaderAt block reads over
// the same file handle.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if data, merr := mmapFile(f, st.Size()); merr == nil {
		r, err := openBytes(data, true)
		if err != nil {
			munmapFile(data)
			f.Close()
			return nil, err
		}
		r.closer = f
		return r, nil
	}
	// Portability fallback: plain ReaderAt reads.
	r, err := OpenReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// OpenBytes opens a column file already held in memory (a test fixture, a
// fuzz input, bytes read off a socket). The reader aliases data.
func OpenBytes(data []byte) (*Reader, error) { return openBytes(data, false) }

func openBytes(data []byte, mapped bool) (*Reader, error) {
	schema, blocks, _, _, err := parseFile(data)
	if err != nil {
		return nil, err
	}
	r := &Reader{schema: schema, blocks: blocks, data: data, mapped: mapped}
	r.finish()
	return r, nil
}

// OpenReaderAt opens a column file through plain ReaderAt reads — the
// portability path for platforms without mmap or for non-file sources.
// Validation streams the file once in block-sized reads, so peak memory is
// one block.
func OpenReaderAt(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < 0 || size > 1<<40 {
		return nil, fmt.Errorf("colstore: size %d out of range", size)
	}
	// The header, footer and per-block frames must be validated exactly as
	// the in-memory path does; the simple way that keeps one validator is
	// to read the whole file once here. Column reads afterwards go through
	// ReadAt into caller scratch (r.data stays nil), so steady-state replay
	// memory is still one block — only open pays the full-file read.
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(ra, 0, size), data); err != nil {
		return nil, fmt.Errorf("colstore: read: %w", err)
	}
	schema, blocks, _, _, err := parseFile(data)
	if err != nil {
		return nil, err
	}
	r := &Reader{schema: schema, blocks: blocks, ra: ra}
	// Decode the block ranges before dropping the file bytes.
	r.data = data
	r.finish()
	r.data = nil
	return r, nil
}

// finish computes row totals and decodes every block's column ranges.
func (r *Reader) finish() {
	ncols := len(r.schema.Cols)
	r.ranges = make([]float64, 0, 2*ncols*len(r.blocks))
	for _, b := range r.blocks {
		r.rows += b.rows
		off := b.offset + blockHeaderLen
		for c := 0; c < ncols; c++ {
			r.ranges = append(r.ranges,
				math.Float64frombits(binary.LittleEndian.Uint64(r.data[off:])),
				math.Float64frombits(binary.LittleEndian.Uint64(r.data[off+8:])))
			off += 16
		}
	}
}

// Close releases the mapping and underlying file, if any. Column views
// returned by Col become invalid.
func (r *Reader) Close() error {
	var err error
	if r.mapped {
		err = munmapFile(r.data)
		r.data = nil
		r.mapped = false
	}
	if r.closer != nil {
		if cerr := r.closer.Close(); err == nil {
			err = cerr
		}
		r.closer = nil
	}
	return err
}

// Schema returns the file's schema (dictionary included, when the file had
// a footer).
func (r *Reader) Schema() *Schema { return r.schema }

// Mapped reports whether column reads are zero-copy views over a mapping.
func (r *Reader) Mapped() bool { return r.data != nil && nativeLittle }

// NumBlocks reports the number of blocks.
func (r *Reader) NumBlocks() int { return len(r.blocks) }

// Rows reports the total row count.
func (r *Reader) Rows() int { return r.rows }

// BlockRows reports block b's row count.
func (r *Reader) BlockRows(b int) int { return r.blocks[b].rows }

// ColRange returns block b's (min, max) footer for column c — what lets a
// query skip the block without reading it.
func (r *Reader) ColRange(b, c int) (lo, hi float64) {
	i := 2 * (b*len(r.schema.Cols) + c)
	return r.ranges[i], r.ranges[i+1]
}

// Col returns block b's values for column c. On a mapped little-endian file
// the slice aliases the file — zero copy, zero allocation, valid until
// Close. Otherwise values are decoded into scratch (grown if needed) and
// scratch[:rows] is returned; passing the previous scratch back in makes
// steady-state iteration allocation-free.
func (r *Reader) Col(b, c int, scratch []float64) ([]float64, error) {
	if b < 0 || b >= len(r.blocks) {
		return nil, fmt.Errorf("colstore: block %d out of range [0,%d)", b, len(r.blocks))
	}
	if c < 0 || c >= len(r.schema.Cols) {
		return nil, fmt.Errorf("colstore: column %d out of range [0,%d)", c, len(r.schema.Cols))
	}
	blk := r.blocks[b]
	ncols := len(r.schema.Cols)
	off := blk.offset + int64(blockHeaderLen+16*ncols+8*blk.rows*c)
	if r.data != nil {
		payload := r.data[off : off+int64(8*blk.rows)]
		if nativeLittle {
			p := unsafe.Pointer(&payload[0])
			if uintptr(p)%8 == 0 { // blocks are 8-aligned; mappings page-aligned
				return unsafe.Slice((*float64)(p), blk.rows), nil
			}
		}
		return decodeCol(payload, blk.rows, scratch), nil
	}
	need := 8 * blk.rows
	buf := scratchBytes(scratch, need)
	if _, err := r.ra.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("colstore: read block %d col %d: %w", b, c, err)
	}
	return decodeCol(buf, blk.rows, scratch), nil
}

// decodeCol decodes rows little-endian float64s from payload into scratch.
// When scratch is the slice whose backing array payload already occupies
// (the ReaderAt path reads into it), decoding is in place and alias-safe:
// value i is read before slot i is written.
func decodeCol(payload []byte, rows int, scratch []float64) []float64 {
	out := scratch
	if cap(out) < rows {
		out = make([]float64, rows)
	}
	out = out[:rows]
	for i := 0; i < rows; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out
}

// scratchBytes views scratch's backing array as a byte slice of at least
// need bytes, allocating a replacement only when it is too small — the
// ReaderAt path's no-allocation trick: read bytes land in the same memory
// the decoded float64s end up in.
func scratchBytes(scratch []float64, need int) []byte {
	if 8*cap(scratch) < need {
		scratch = make([]float64, (need+7)/8)
	}
	scratch = scratch[:cap(scratch)]
	return unsafe.Slice((*byte)(unsafe.Pointer(&scratch[0])), 8*cap(scratch))[:need]
}
