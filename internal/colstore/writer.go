package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Writer appends rows to a column file. Rows buffer per column and flush as
// complete self-framed blocks (every BlockRows rows, or on Flush/Close);
// Close writes the footer index, dictionary and trailer. A Writer only ever
// appends — it never seeks — so it can sit on a pipe or an O_APPEND log fd.
type Writer struct {
	w      io.Writer
	schema Schema
	dict   map[string]int

	cols   [][]float64 // per-column block buffers
	blocks []blockMeta
	offset int64 // file offset of the next block
	frame  []byte
	closed bool
}

// NewWriter starts a column file on w: the header is written immediately.
// The schema's Dict seeds the dictionary (Append reopening relies on this);
// most callers leave it nil and intern via DictID.
func NewWriter(w io.Writer, s Schema) (*Writer, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	cw := &Writer{
		w:      w,
		schema: Schema{Kind: s.Kind, SlotSeconds: s.SlotSeconds},
		dict:   make(map[string]int, len(s.Dict)),
	}
	cw.schema.Cols = append([]string(nil), s.Cols...)
	cw.schema.Dict = append([]string(nil), s.Dict...)
	for i, d := range cw.schema.Dict {
		cw.dict[d] = i
	}
	cw.cols = make([][]float64, len(s.Cols))
	for i := range cw.cols {
		cw.cols[i] = make([]float64, 0, BlockRows)
	}
	hdr := encodeHeader(&cw.schema)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("colstore: write header: %w", err)
	}
	cw.offset = int64(len(hdr))
	return cw, nil
}

// Schema returns the writer's schema, including the dictionary as interned
// so far.
func (w *Writer) Schema() Schema { return w.schema }

// DictID interns name in the file's string dictionary and returns its id —
// the value an id column stores. Interning is idempotent.
func (w *Writer) DictID(name string) float64 {
	if i, ok := w.dict[name]; ok {
		return float64(i)
	}
	i := len(w.schema.Dict)
	w.schema.Dict = append(w.schema.Dict, name)
	w.dict[name] = i
	return float64(i)
}

// Append adds one row; len(row) must equal the column count. The row is
// copied out — callers reuse their slice.
func (w *Writer) Append(row []float64) error {
	if w.closed {
		return fmt.Errorf("colstore: append to closed writer")
	}
	if len(row) != len(w.cols) {
		return fmt.Errorf("colstore: row has %d values, schema %d columns", len(row), len(w.cols))
	}
	for i, v := range row {
		w.cols[i] = append(w.cols[i], v)
	}
	if len(w.cols[0]) == BlockRows {
		return w.Flush()
	}
	return nil
}

// Flush writes the buffered rows (if any) as one block. Sub-full blocks are
// legal anywhere in the file; a daemon flushing per epoch simply produces
// epoch-sized blocks.
func (w *Writer) Flush() error {
	if w.closed {
		return fmt.Errorf("colstore: flush of closed writer")
	}
	rows := len(w.cols[0])
	if rows == 0 {
		return nil
	}
	ncols := len(w.cols)
	size := blockSize(ncols, rows)
	if cap(w.frame) < size {
		w.frame = make([]byte, size)
	}
	frame := w.frame[:size]
	binary.LittleEndian.PutUint32(frame[0:], blockMagic)
	binary.LittleEndian.PutUint32(frame[4:], uint32(rows))
	binary.LittleEndian.PutUint32(frame[12:], 0)
	off := blockHeaderLen
	for _, col := range w.cols {
		lo, hi := col[0], col[0]
		for _, v := range col[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		binary.LittleEndian.PutUint64(frame[off:], math.Float64bits(lo))
		binary.LittleEndian.PutUint64(frame[off+8:], math.Float64bits(hi))
		off += 16
	}
	for _, col := range w.cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(frame[off:], math.Float64bits(v))
			off += 8
		}
	}
	crc := crc32.Checksum(frame[blockHeaderLen:], crcTable)
	binary.LittleEndian.PutUint32(frame[8:], crc)
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("colstore: write block: %w", err)
	}
	w.blocks = append(w.blocks, blockMeta{offset: w.offset, rows: rows})
	w.offset += int64(size)
	for i := range w.cols {
		w.cols[i] = w.cols[i][:0]
	}
	return nil
}

// Close flushes the last partial block and writes the footer and trailer.
// It does not close an underlying file — see FileWriter.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w.closed = true
	if _, err := w.w.Write(encodeFooter(w.blocks, w.schema.Dict)); err != nil {
		return fmt.Errorf("colstore: write footer: %w", err)
	}
	return nil
}

// Rows reports how many rows have been appended (buffered ones included).
func (w *Writer) Rows() int {
	n := len(w.cols[0])
	for _, b := range w.blocks {
		n += b.rows
	}
	return n
}

// FileWriter is a Writer bound to a file created by Create or reopened by
// Append; its Close also closes the file.
type FileWriter struct {
	*Writer
	f *os.File
}

// Create starts a new column file at path, truncating any existing one.
func Create(path string, s Schema) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, s)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileWriter{Writer: w, f: f}, nil
}

// Append reopens the column file at path for appending: the footer and
// trailer are dropped, the block index and dictionary carry over, and new
// blocks continue where the old ones ended — the append-only reopen a
// long-running daemon's epoch log restarts with. The file's schema must
// match s (kind, slot length and columns; the dictionary is taken from the
// file). If the file does not exist it is created.
func Append(path string, s Schema) (*FileWriter, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Create(path, s)
	}
	if err != nil {
		return nil, err
	}
	got, blocks, dict, dataEnd, err := parseFile(data)
	if err != nil {
		return nil, fmt.Errorf("colstore: append to %s: %w", path, err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if got.Kind != s.Kind || got.SlotSeconds != s.SlotSeconds {
		return nil, fmt.Errorf("colstore: append to %s: file kind/slot (%d, %g) != (%d, %g)",
			path, got.Kind, got.SlotSeconds, s.Kind, s.SlotSeconds)
	}
	if len(got.Cols) != len(s.Cols) {
		return nil, fmt.Errorf("colstore: append to %s: file has %d columns, schema %d", path, len(got.Cols), len(s.Cols))
	}
	for i, c := range got.Cols {
		if c != s.Cols[i] {
			return nil, fmt.Errorf("colstore: append to %s: column %d is %q, schema says %q", path, i, c, s.Cols[i])
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(dataEnd)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(dataEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		w:      f,
		schema: Schema{Kind: got.Kind, SlotSeconds: got.SlotSeconds},
		dict:   make(map[string]int, len(dict)),
		blocks: blocks,
		offset: int64(dataEnd),
	}
	w.schema.Cols = append([]string(nil), got.Cols...)
	w.schema.Dict = append([]string(nil), dict...)
	for i, d := range w.schema.Dict {
		w.dict[d] = i
	}
	w.cols = make([][]float64, len(got.Cols))
	for i := range w.cols {
		w.cols[i] = make([]float64, 0, BlockRows)
	}
	return &FileWriter{Writer: w, f: f}, nil
}

// Close finishes the file: footer, trailer, fsync-free close.
func (fw *FileWriter) Close() error {
	err := fw.Writer.Close()
	if cerr := fw.f.Close(); err == nil {
		err = cerr
	}
	return err
}
