package colstore

import (
	"fmt"
	"math"
	"sort"
)

// Agg is an aggregation operator.
type Agg int

// The supported aggregations. Percentiles use the ceiling nearest-rank
// definition, matching internal/metrics.
const (
	Count Agg = iota
	Sum
	Mean
	Min
	Max
	P50
	P95
	P99
)

// ParseAgg resolves an operator name ("mean", "p95", …).
func ParseAgg(name string) (Agg, error) {
	switch name {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "mean":
		return Mean, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "p50":
		return P50, nil
	case "p95":
		return P95, nil
	case "p99":
		return P99, nil
	}
	return 0, fmt.Errorf("colstore: unknown aggregation %q", name)
}

func (a Agg) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Mean:
		return "mean"
	case Min:
		return "min"
	case Max:
		return "max"
	case P50:
		return "p50"
	case P95:
		return "p95"
	case P99:
		return "p99"
	}
	return fmt.Sprintf("agg(%d)", int(a))
}

// needsValues reports whether the operator must retain individual values
// (percentiles) rather than streaming scalars.
func (a Agg) needsValues() bool { return a == P50 || a == P95 || a == P99 }

// Filter keeps rows whose column value lies in the closed interval
// [Lo, Hi]. Blocks whose footer range does not intersect it are skipped
// without reading their data.
type Filter struct {
	Col string
	Lo  float64
	Hi  float64
}

// Query is one aggregation over a column file: Op over Col, optionally
// grouped by the values of GroupBy, over the rows passing every filter.
type Query struct {
	Col     string
	Op      Agg
	GroupBy string // empty for a single whole-file group
	Filters []Filter
}

// Group is one result row. For ungrouped queries Key is 0 and meaningless.
type Group struct {
	Key   float64
	Value float64
	Count int
}

// Result reports the groups (ordered by key) and the block-skipping stats:
// BlocksSkipped blocks were eliminated from their footers alone.
type Result struct {
	Groups        []Group
	Rows          int // rows aggregated (after filtering)
	BlocksScanned int
	BlocksSkipped int
}

// groupAcc accumulates one group's streaming aggregates.
type groupAcc struct {
	count  int
	sum    float64
	min    float64
	max    float64
	values []float64 // only for percentile ops
}

// Run executes the query against r.
func (q Query) Run(r *Reader) (*Result, error) {
	s := r.Schema()
	aggCol := s.ColIndex(q.Col)
	if aggCol < 0 {
		return nil, fmt.Errorf("colstore: no column %q (have %v)", q.Col, s.Cols)
	}
	groupCol := -1
	if q.GroupBy != "" {
		if groupCol = s.ColIndex(q.GroupBy); groupCol < 0 {
			return nil, fmt.Errorf("colstore: no group-by column %q (have %v)", q.GroupBy, s.Cols)
		}
	}
	type filterBound struct {
		col    int
		lo, hi float64
	}
	filters := make([]filterBound, 0, len(q.Filters))
	for _, f := range q.Filters {
		c := s.ColIndex(f.Col)
		if c < 0 {
			return nil, fmt.Errorf("colstore: no filter column %q (have %v)", f.Col, s.Cols)
		}
		if f.Lo > f.Hi {
			return nil, fmt.Errorf("colstore: filter on %q has empty range [%g,%g]", f.Col, f.Lo, f.Hi)
		}
		filters = append(filters, filterBound{col: c, lo: f.Lo, hi: f.Hi})
	}

	res := &Result{}
	groups := make(map[float64]*groupAcc)
	// Column scratch slices for the ReaderAt fallback; on a mapped file Col
	// ignores them and returns views.
	scratch := make(map[int][]float64)
	colVals := func(b, c int) ([]float64, error) {
		v, err := r.Col(b, c, scratch[c])
		if err == nil {
			scratch[c] = v
		}
		return v, err
	}

blocks:
	for b := 0; b < r.NumBlocks(); b++ {
		// Footer check: a block whose [min,max] misses any filter interval
		// holds no qualifying row.
		for _, f := range filters {
			lo, hi := r.ColRange(b, f.col)
			if hi < f.lo || lo > f.hi {
				res.BlocksSkipped++
				continue blocks
			}
		}
		res.BlocksScanned++
		vals, err := colVals(b, aggCol)
		if err != nil {
			return nil, err
		}
		var keys []float64
		if groupCol >= 0 {
			if keys, err = colVals(b, groupCol); err != nil {
				return nil, err
			}
		}
		fvals := make([][]float64, len(filters))
		for i, f := range filters {
			if fvals[i], err = colVals(b, f.col); err != nil {
				return nil, err
			}
		}
	rows:
		for i := range vals {
			for j, f := range filters {
				if v := fvals[j][i]; v < f.lo || v > f.hi {
					continue rows
				}
			}
			key := 0.0
			if groupCol >= 0 {
				key = keys[i]
			}
			g := groups[key]
			if g == nil {
				g = &groupAcc{min: math.Inf(1), max: math.Inf(-1)}
				groups[key] = g
			}
			v := vals[i]
			g.count++
			g.sum += v
			if v < g.min {
				g.min = v
			}
			if v > g.max {
				g.max = v
			}
			if q.Op.needsValues() {
				g.values = append(g.values, v)
			}
			res.Rows++
		}
	}

	res.Groups = make([]Group, 0, len(groups))
	for key, g := range groups {
		res.Groups = append(res.Groups, Group{Key: key, Value: finish(q.Op, g), Count: g.count})
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	return res, nil
}

// finish folds one group's accumulator into the operator's scalar.
func finish(op Agg, g *groupAcc) float64 {
	switch op {
	case Count:
		return float64(g.count)
	case Sum:
		return g.sum
	case Mean:
		return g.sum / float64(g.count)
	case Min:
		return g.min
	case Max:
		return g.max
	case P50, P95, P99:
		q := map[Agg]float64{P50: 50, P95: 95, P99: 99}[op]
		sort.Float64s(g.values)
		// Ceiling nearest-rank, the metrics package's convention.
		rank := int(math.Ceil(q / 100 * float64(len(g.values))))
		if rank < 1 {
			rank = 1
		}
		return g.values[rank-1]
	}
	return math.NaN()
}
