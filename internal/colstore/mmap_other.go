//go:build !unix

package colstore

import (
	"fmt"
	"os"
)

// mmapFile always fails on platforms without the unix mmap syscall; Open
// degrades to the ReaderAt fallback.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("colstore: mmap unavailable on this platform")
}

func munmapFile(data []byte) error { return nil }
