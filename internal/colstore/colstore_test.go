package colstore

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFile writes rows of the given schema and returns the encoded file.
func buildFile(t *testing.T, s Schema, rows [][]float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, s)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append row %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func traceRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		// Deterministic, irregular float values exercising exact-bit checks.
		rows[i] = []float64{float64(i), math.Mod(float64(i)*0.6180339887498949, 1)}
	}
	return rows
}

func readAll(t *testing.T, r *Reader, col int) []float64 {
	t.Helper()
	var out []float64
	var scratch []float64
	for b := 0; b < r.NumBlocks(); b++ {
		v, err := r.Col(b, col, scratch)
		if err != nil {
			t.Fatalf("Col(%d,%d): %v", b, col, err)
		}
		out = append(out, v...)
	}
	return out
}

func TestRoundTripExactBits(t *testing.T) {
	const n = 3*BlockRows + 100 // four blocks, last partial
	rows := traceRows(n)
	data := buildFile(t, Schema{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot", "utilization"}}, rows)

	r, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer r.Close()
	if r.Rows() != n {
		t.Fatalf("Rows = %d, want %d", r.Rows(), n)
	}
	if r.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", r.NumBlocks())
	}
	s := r.Schema()
	if s.Kind != KindTrace || s.SlotSeconds != 60 || len(s.Cols) != 2 {
		t.Fatalf("schema mismatch: %+v", s)
	}
	for c := 0; c < 2; c++ {
		got := readAll(t, r, c)
		for i := range rows {
			if math.Float64bits(got[i]) != math.Float64bits(rows[i][c]) {
				t.Fatalf("col %d row %d: %v != %v", c, i, got[i], rows[i][c])
			}
		}
	}
}

func TestBlockFooterRanges(t *testing.T) {
	rows := traceRows(2 * BlockRows)
	data := buildFile(t, Schema{Kind: KindTrace, Cols: []string{"slot", "utilization"}}, rows)
	r, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer r.Close()
	for b := 0; b < r.NumBlocks(); b++ {
		lo, hi := r.ColRange(b, 0)
		wantLo := float64(b * BlockRows)
		wantHi := float64((b+1)*BlockRows - 1)
		if lo != wantLo || hi != wantHi {
			t.Fatalf("block %d slot range (%g,%g), want (%g,%g)", b, lo, hi, wantLo, wantHi)
		}
	}
}

// TestOpenPathsAgree pins the three open paths — mmap, in-memory bytes, and
// ReaderAt — to identical schemas and identical column bits.
func TestOpenPathsAgree(t *testing.T) {
	rows := traceRows(BlockRows + 17)
	data := buildFile(t, Schema{Kind: KindTrace, SlotSeconds: 300, Cols: []string{"slot", "utilization"}}, rows)
	path := filepath.Join(t.TempDir(), "t.col")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mm, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer mm.Close()
	bb, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer bb.Close()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, _ := f.Stat()
	ra, err := OpenReaderAt(f, st.Size())
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	defer ra.Close()

	if ra.Mapped() {
		t.Fatal("ReaderAt reader claims to be mapped")
	}
	for c := 0; c < 2; c++ {
		a, b, cc := readAll(t, mm, c), readAll(t, bb, c), readAll(t, ra, c)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) || math.Float64bits(a[i]) != math.Float64bits(cc[i]) {
				t.Fatalf("col %d row %d differs across open paths: %v %v %v", c, i, a[i], b[i], cc[i])
			}
		}
	}
}

func TestColScratchReuseReaderAt(t *testing.T) {
	rows := traceRows(2 * BlockRows)
	data := buildFile(t, Schema{Kind: KindTrace, Cols: []string{"slot", "utilization"}}, rows)
	r, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	defer r.Close()
	scratch, err := r.Col(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Col(1, 1, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &scratch[0] {
		t.Fatal("scratch was not reused for a same-size block")
	}
	if again[0] != rows[BlockRows][1] {
		t.Fatalf("block 1 row 0 = %v, want %v", again[0], rows[BlockRows][1])
	}
}

func TestDictRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Schema{Kind: KindEpochs, Cols: []string{"epoch", "plan"}})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"slow-down", "sleep", "slow-down"}
	for i, n := range names {
		if err := w.Append([]float64{float64(i), w.DictID(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dict := r.Schema().Dict
	if len(dict) != 2 || dict[0] != "slow-down" || dict[1] != "sleep" {
		t.Fatalf("dict = %v, want [slow-down sleep]", dict)
	}
	ids := readAll(t, r, 1)
	want := []float64{0, 1, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("plan ids = %v, want %v", ids, want)
		}
	}
}

func TestAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.col")
	s := Schema{Kind: KindEpochs, SlotSeconds: 1, Cols: []string{"epoch", "energy"}}

	w, err := Append(path, s) // creates
	if err != nil {
		t.Fatalf("Append(create): %v", err)
	}
	w.DictID("first")
	for i := 0; i < 10; i++ {
		if err := w.Append([]float64{float64(i), float64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = Append(path, s) // reopens
	if err != nil {
		t.Fatalf("Append(reopen): %v", err)
	}
	if got := w.DictID("first"); got != 0 {
		t.Fatalf("dictionary did not carry over: DictID(first) = %g", got)
	}
	w.DictID("second")
	for i := 10; i < 25; i++ {
		if err := w.Append([]float64{float64(i), float64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open after reopen: %v", err)
	}
	defer r.Close()
	if r.Rows() != 25 {
		t.Fatalf("Rows = %d, want 25", r.Rows())
	}
	if r.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2 (one per session)", r.NumBlocks())
	}
	if d := r.Schema().Dict; len(d) != 2 || d[0] != "first" || d[1] != "second" {
		t.Fatalf("dict = %v", d)
	}
	got := readAll(t, r, 0)
	for i := 0; i < 25; i++ {
		if got[i] != float64(i) {
			t.Fatalf("epoch[%d] = %g", i, got[i])
		}
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.col")
	if err := os.WriteFile(path, buildFile(t, Schema{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot", "utilization"}}, traceRows(4)), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []Schema{
		{Kind: KindJobs, SlotSeconds: 60, Cols: []string{"slot", "utilization"}},
		{Kind: KindTrace, SlotSeconds: 30, Cols: []string{"slot", "utilization"}},
		{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot"}},
		{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot", "rho"}},
	}
	for i, s := range cases {
		if _, err := Append(path, s); err == nil {
			t.Fatalf("case %d: Append accepted mismatched schema %+v", i, s)
		}
	}
}

// TestCrashRecovery drops the footer+trailer (simulating a writer that died
// before Close) and checks every complete block is still recovered, plus a
// trailing partial block write is ignored.
func TestCrashRecovery(t *testing.T) {
	rows := traceRows(BlockRows + 50)
	full := buildFile(t, Schema{Kind: KindTrace, Cols: []string{"slot", "utilization"}}, rows)

	// Find where block data ends by parsing the intact file.
	_, blocks, _, dataEnd, err := parseFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("fixture has %d blocks", len(blocks))
	}

	crashed := full[:dataEnd] // footer and trailer lost
	r, err := OpenBytes(crashed)
	if err != nil {
		t.Fatalf("OpenBytes(crashed): %v", err)
	}
	if r.Rows() != len(rows) || r.NumBlocks() != 2 {
		t.Fatalf("recovered %d rows in %d blocks, want %d in 2", r.Rows(), r.NumBlocks(), len(rows))
	}
	if len(r.Schema().Dict) != 0 {
		t.Fatal("dictionary should be lost with the footer")
	}
	got := readAll(t, r, 1)
	for i := range rows {
		if math.Float64bits(got[i]) != math.Float64bits(rows[i][1]) {
			t.Fatalf("row %d: %v != %v", i, got[i], rows[i][1])
		}
	}
	r.Close()

	// A torn half-written final block must be dropped, earlier blocks kept.
	torn := append(append([]byte(nil), crashed...), crashed[blocks[1].offset:blocks[1].offset+100]...)
	r, err = OpenBytes(torn)
	if err != nil {
		t.Fatalf("OpenBytes(torn): %v", err)
	}
	if r.Rows() != len(rows) {
		t.Fatalf("torn tail changed row count: %d", r.Rows())
	}
	r.Close()

	// Appending to a crashed file works: recovery, then new blocks.
	path := filepath.Join(t.TempDir(), "c.col")
	if err := os.WriteFile(path, crashed, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Append(path, Schema{Kind: KindTrace, Cols: []string{"slot", "utilization"}})
	if err != nil {
		t.Fatalf("Append(crashed): %v", err)
	}
	if err := w.Append([]float64{9999, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != len(rows)+1 {
		t.Fatalf("after crash+append: %d rows, want %d", r.Rows(), len(rows)+1)
	}
}

// Decoder error paths: malformed input must error, never panic, and never
// silently succeed.
func TestDecodeErrors(t *testing.T) {
	good := buildFile(t, Schema{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot", "utilization"}}, traceRows(BlockRows+5))

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want string // substring the error must carry ("" = any error)
	}{
		{"empty", nil, "too short"},
		{"truncated header", good[:10], "too short"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }), "bad magic"},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 99; return b }), "version"},
		{"zero columns", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:], 0); return b }), "column count"},
		{"huge header len", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[20:], 1<<30); return b }), "header length"},
		{"block offset out of range", mutate(func(b []byte) []byte {
			// First footer block-index entry: offset field.
			_, _, footStart, _, _ := decodeFooter(b)
			binary.LittleEndian.PutUint64(b[footStart+8:], 1<<40)
			return b
		}), "block 0"},
		{"block rows out of range", mutate(func(b []byte) []byte {
			_, _, footStart, _, _ := decodeFooter(b)
			binary.LittleEndian.PutUint64(b[footStart+16:], BlockRows+1)
			return b
		}), "rows"},
		{"footer length overrun", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-trailerLen:], uint64(len(b)))
			return b
		}), "footer length"},
		{"payload corruption", mutate(func(b []byte) []byte {
			s, _, _ := decodeHeader(b)
			b[s.headerSize()+blockHeaderLen+16*len(s.Cols)+3] ^= 0x40
			return b
		}), "crc"},
		{"footer crc field corruption", mutate(func(b []byte) []byte {
			s, _, _ := decodeHeader(b)
			b[s.headerSize()+8] ^= 0x01 // block 0's stored CRC
			return b
		}), "crc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := OpenBytes(tc.data)
			if err == nil {
				r.Close()
				t.Fatal("OpenBytes accepted malformed input")
			}
			if tc.want != "" && !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, Schema{Cols: []string{"a", "a"}}); err == nil {
		t.Fatal("duplicate columns accepted")
	}
	w, err := NewWriter(&bytes.Buffer{}, Schema{Kind: KindTrace, Cols: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestQueryAggregations(t *testing.T) {
	// Two epochs' worth of rows with a known layout.
	var rows [][]float64
	for e := 0; e < 3; e++ {
		for i := 0; i < 100; i++ {
			rows = append(rows, []float64{float64(e), float64(e*100 + i)})
		}
	}
	data := buildFile(t, Schema{Kind: KindEpochs, Cols: []string{"epoch", "energy"}}, rows)
	r, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	res, err := Query{Col: "energy", Op: Mean, GroupBy: "epoch"}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 || res.Rows != 300 {
		t.Fatalf("groups=%d rows=%d", len(res.Groups), res.Rows)
	}
	for e, g := range res.Groups {
		want := float64(e*100) + 49.5
		if g.Key != float64(e) || g.Value != want || g.Count != 100 {
			t.Fatalf("group %d = %+v, want key=%d mean=%g count=100", e, g, e, want)
		}
	}

	sum, err := Query{Col: "energy", Op: Sum}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := 299.0 * 300 / 2; sum.Groups[0].Value != want {
		t.Fatalf("sum = %g, want %g", sum.Groups[0].Value, want)
	}

	p95, err := Query{Col: "energy", Op: P95, Filters: []Filter{{Col: "epoch", Lo: 1, Hi: 1}}}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	// 100 values 100..199; ceil nearest-rank p95 = 95th value = 194.
	if p95.Groups[0].Value != 194 {
		t.Fatalf("p95 = %g, want 194", p95.Groups[0].Value)
	}

	if _, err := (Query{Col: "nope", Op: Sum}).Run(r); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := (Query{Col: "energy", Op: Sum, Filters: []Filter{{Col: "epoch", Lo: 2, Hi: 1}}}).Run(r); err == nil {
		t.Fatal("empty filter range accepted")
	}
}

// TestQueryBlockSkipping pins that a selective filter prunes blocks from
// their footers alone: a filter touching one block's range scans exactly one
// block.
func TestQueryBlockSkipping(t *testing.T) {
	// 8 full blocks of a monotone column: block b covers [b*4096,(b+1)*4096).
	rows := traceRows(8 * BlockRows)
	data := buildFile(t, Schema{Kind: KindTrace, Cols: []string{"slot", "utilization"}}, rows)
	r, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	lo := float64(5 * BlockRows)
	res, err := Query{
		Col:     "utilization",
		Op:      Count,
		Filters: []Filter{{Col: "slot", Lo: lo, Hi: lo + 10}},
	}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksScanned != 1 || res.BlocksSkipped != 7 {
		t.Fatalf("scanned=%d skipped=%d, want 1/7", res.BlocksScanned, res.BlocksSkipped)
	}
	if res.Rows != 11 {
		t.Fatalf("rows = %d, want 11", res.Rows)
	}

	// An unsatisfiable filter skips everything.
	none, err := Query{Col: "utilization", Op: Count, Filters: []Filter{{Col: "slot", Lo: -10, Hi: -5}}}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if none.BlocksScanned != 0 || none.BlocksSkipped != 8 || len(none.Groups) != 0 {
		t.Fatalf("unsatisfiable filter: scanned=%d skipped=%d groups=%d", none.BlocksScanned, none.BlocksSkipped, len(none.Groups))
	}
}

func TestParseAggRoundTrip(t *testing.T) {
	for _, a := range []Agg{Count, Sum, Mean, Min, Max, P50, P95, P99} {
		got, err := ParseAgg(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAgg(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Fatal("bogus op accepted")
	}
}
