//go:build unix

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only. An empty file cannot be mapped (and
// carries no valid header anyway) — callers fall back to the ReaderAt path,
// which reports the real error.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("colstore: cannot map %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
