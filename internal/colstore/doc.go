// Package colstore is the compact columnar binary store behind heavy-trace
// replay and post-hoc analysis: utilization traces, recorded job streams and
// per-epoch run statistics are laid out column-by-column in fixed-width
// blocks, so replay reads are straight float64 loads out of a memory-mapped
// file — no per-slot parsing, no per-chunk allocation — and aggregation
// queries can skip whole blocks from their footers without touching the
// data.
//
// # File format (version 1)
//
// Every multi-byte integer and float is little-endian; float64 values are
// IEEE 754 bits. The file is
//
//	header · block · block · … · block · footer · trailer
//
// Header:
//
//	offset 0   magic        uint32  "SSCL" (0x4c435353)
//	offset 4   version      uint16  1
//	offset 6   kind         uint16  KindTrace, KindJobs, KindEpochs, KindEvents
//	offset 8   slotSeconds  float64 trace slot length; 0 when not a trace
//	offset 16  ncols        uint32
//	offset 20  headerLen    uint32  total header size; the first block starts here
//	offset 24  per column:  nameLen uint32, name bytes
//	…padding to an 8-byte boundary…
//
// Block (always starting on an 8-byte boundary):
//
//	blockMagic uint32  "SSBK" (0x4b425353)
//	rows       uint32  1 ≤ rows ≤ BlockRows
//	crc        uint32  CRC-32C over the footer and payload bytes below
//	_          uint32  reserved (zero)
//	per column: min float64, max float64   — the block footer the queries skip on
//	per column: rows × 8 payload bytes     — column-major within the block
//
// The frame is self-describing given the schema: its size is
// 16 + 16·ncols + 8·rows·ncols bytes, itself a multiple of 8, so every
// column payload in a mapped file is 8-byte aligned and castable to a
// []float64 view in place.
//
// Footer and trailer (written by Close):
//
//	footMagic  uint32  "SSFT" (0x54465353)
//	nblocks    uint32
//	per block: offset uint64, rows uint64
//	ndict      uint32
//	per entry: nameLen uint32, name bytes
//	footerLen  uint64  bytes from footMagic through the dictionary
//	trailerMagic uint64 "SSCLTRLR"
//
// The dictionary interns strings (sleep-plan names, trace labels) that
// columns reference by float64 id — ids are indexes into it.
//
// # Append-only logging and crash recovery
//
// Writers only ever append: rows buffer per column and flush as a complete
// self-framed block; the footer and trailer are written once, at Close.
// Append reopens an existing file, drops its footer and trailer, and
// continues appending blocks (the dictionary carries over), which is what a
// long-running daemon's epoch log needs. A file missing its trailer — a
// crashed writer — is still readable: Open falls back to a sequential block
// scan from the header, recovering every complete block (the dictionary,
// which lives in the footer, is lost).
//
// Open validates the whole file eagerly — magic, version, block framing,
// footer offsets against the file size, and every block's CRC — so malformed
// or truncated input fails Open with an error rather than panicking later,
// and everything after Open is safe to index.
//
// # Zero-copy replay and the fallback
//
// Open memory-maps the file when the platform allows and serves column reads
// as unsafe []float64 views directly over the mapping: Reader.Col returns a
// slice aliasing the file bytes, allocation-free, valid until Close. On
// platforms without mmap (or when mapping fails, or for a non-file
// io.ReaderAt) the reader falls back to plain ReaderAt block reads decoded
// into a caller-provided scratch slice — same API, one copy, still
// allocation-free once the scratch has grown to one block. Big-endian hosts
// always take the decode path; the format stays little-endian on disk.
//
// # Determinism contract
//
// The store holds exactly the float64 bits it was given, so replay through
// it is bit-identical to replay from the original source: a trace written
// with WriteTrace and replayed through stream.ColTrace yields the same job
// stream as the CSV path under the same seed, and a job stream recorded
// with stream.RecordJobs replays byte-for-byte through stream.ColJobs.
package colstore
