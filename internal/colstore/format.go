package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// File kinds. The kind tags what the columns mean; the framing is identical.
const (
	// KindTrace is a utilization trace: columns "slot", "utilization".
	KindTrace uint16 = 1
	// KindJobs is a recorded job stream: columns "arrival", "size".
	KindJobs uint16 = 2
	// KindEpochs is a per-epoch run log (see core.WriteEpochLog).
	KindEpochs uint16 = 3
	// KindEvents is a per-job epoch event log: columns "epoch", "gap", "size".
	KindEvents uint16 = 4
	// KindSweep is a policy-sweep result set (see cmd/sweep): columns
	// "state", "f", "norm_mean_response", "avg_power", with "state" holding
	// dictionary ids of sleep-state names.
	KindSweep uint16 = 5
	// KindFleetEpochs is a fleet coordinator per-epoch log: the KindEpochs
	// quantities plus the fleet dimensions "active", "parked" and "shallow"
	// (see fleet.WriteEpochLog).
	KindFleetEpochs uint16 = 6
	// KindFleetServers is a fleet coordinator per-server rollup: one row per
	// server with its whole-run totals and final parked flag (see
	// fleet.WriteServerLog).
	KindFleetServers uint16 = 7
	// KindFaults is a fault-event log: columns "time", "server", "kind"
	// (0 = crash, 1 = repair), one row per applied fault transition (see
	// fault.WriteLog).
	KindFaults uint16 = 8
)

// BlockRows is the maximum (and default flush) number of rows per block.
const BlockRows = 4096

const (
	fileMagic    uint32 = 0x4c435353          // "SSCL"
	blockMagic   uint32 = 0x4b425353          // "SSBK"
	footerMagic  uint32 = 0x54465353          // "SSFT"
	trailerMagic uint64 = 0x524c5254_4c435353 // "SSCLTRLR"
	version      uint16 = 1

	fixedHeaderLen = 24
	blockHeaderLen = 16
	trailerLen     = 16 // footerLen uint64 + trailerMagic uint64
)

// maxNameLen bounds column and dictionary string lengths, so a corrupt
// length field cannot drive a giant allocation.
const maxNameLen = 1 << 16

// crcTable is the Castagnoli table shared by encode and verify.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// nativeLittle reports whether the host is little-endian, deciding whether
// mapped column payloads can be viewed in place.
var nativeLittle = func() bool {
	var probe [2]byte
	binary.NativeEndian.PutUint16(probe[:], 0x0102)
	return probe[0] == 0x02
}()

// Schema describes a column file: its kind, the trace slot length (0 when
// meaningless), the ordered column names, and the interned string
// dictionary that id-valued columns index into.
type Schema struct {
	Kind        uint16
	SlotSeconds float64
	Cols        []string
	Dict        []string
}

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func (s *Schema) validate() error {
	if len(s.Cols) == 0 {
		return fmt.Errorf("colstore: schema needs at least one column")
	}
	seen := make(map[string]bool, len(s.Cols))
	for _, c := range s.Cols {
		if c == "" {
			return fmt.Errorf("colstore: empty column name")
		}
		if len(c) >= maxNameLen {
			return fmt.Errorf("colstore: column name %q too long", c[:32]+"…")
		}
		if seen[c] {
			return fmt.Errorf("colstore: duplicate column %q", c)
		}
		seen[c] = true
	}
	if s.SlotSeconds < 0 || math.IsNaN(s.SlotSeconds) || math.IsInf(s.SlotSeconds, 0) {
		return fmt.Errorf("colstore: slot length %g invalid", s.SlotSeconds)
	}
	return nil
}

// headerSize returns the encoded header length, padded to 8 bytes.
func (s *Schema) headerSize() int {
	n := fixedHeaderLen
	for _, c := range s.Cols {
		n += 4 + len(c)
	}
	return pad8(n)
}

// blockSize returns the full frame size of a block holding rows rows of
// ncols columns.
func blockSize(ncols, rows int) int {
	return blockHeaderLen + 16*ncols + 8*rows*ncols
}

func pad8(n int) int { return (n + 7) &^ 7 }

// encodeHeader serializes the schema header.
func encodeHeader(s *Schema) []byte {
	buf := make([]byte, s.headerSize())
	binary.LittleEndian.PutUint32(buf[0:], fileMagic)
	binary.LittleEndian.PutUint16(buf[4:], version)
	binary.LittleEndian.PutUint16(buf[6:], s.Kind)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(s.SlotSeconds))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(s.Cols)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(buf)))
	off := fixedHeaderLen
	for _, c := range s.Cols {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(c)))
		off += 4
		off += copy(buf[off:], c)
	}
	return buf
}

// decodeHeader parses and validates a header prefix, returning the schema
// (dictionary empty — it lives in the footer) and the header length.
func decodeHeader(data []byte) (*Schema, int, error) {
	if len(data) < fixedHeaderLen {
		return nil, 0, fmt.Errorf("colstore: file too short for header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != fileMagic {
		return nil, 0, fmt.Errorf("colstore: bad magic %#08x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != version {
		return nil, 0, fmt.Errorf("colstore: unsupported version %d", v)
	}
	s := &Schema{
		Kind:        binary.LittleEndian.Uint16(data[6:]),
		SlotSeconds: math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
	}
	ncols := int(binary.LittleEndian.Uint32(data[16:]))
	headerLen := int(binary.LittleEndian.Uint32(data[20:]))
	if ncols < 1 || ncols > maxNameLen {
		return nil, 0, fmt.Errorf("colstore: column count %d out of range", ncols)
	}
	if headerLen < fixedHeaderLen || headerLen > len(data) || headerLen%8 != 0 {
		return nil, 0, fmt.Errorf("colstore: header length %d out of range", headerLen)
	}
	off := fixedHeaderLen
	for i := 0; i < ncols; i++ {
		if off+4 > headerLen {
			return nil, 0, fmt.Errorf("colstore: header truncated at column %d", i)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 1 || n >= maxNameLen || off+n > headerLen {
			return nil, 0, fmt.Errorf("colstore: column %d name length %d out of range", i, n)
		}
		s.Cols = append(s.Cols, string(data[off:off+n]))
		off += n
	}
	if pad8(off) != headerLen {
		return nil, 0, fmt.Errorf("colstore: header length %d does not match %d columns", headerLen, ncols)
	}
	if err := s.validate(); err != nil {
		return nil, 0, err
	}
	return s, headerLen, nil
}

// blockMeta locates one block inside the file.
type blockMeta struct {
	offset int64
	rows   int
}

// encodeFooter serializes the block index and dictionary, followed by the
// fixed trailer.
func encodeFooter(blocks []blockMeta, dict []string) []byte {
	n := 8 + 16*len(blocks) + 4
	for _, d := range dict {
		n += 4 + len(d)
	}
	buf := make([]byte, n+trailerLen)
	binary.LittleEndian.PutUint32(buf[0:], footerMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(blocks)))
	off := 8
	for _, b := range blocks {
		binary.LittleEndian.PutUint64(buf[off:], uint64(b.offset))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(b.rows))
		off += 16
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(dict)))
	off += 4
	for _, d := range dict {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(d)))
		off += 4
		off += copy(buf[off:], d)
	}
	binary.LittleEndian.PutUint64(buf[n:], uint64(n))
	binary.LittleEndian.PutUint64(buf[n+8:], trailerMagic)
	return buf
}

// decodeFooter parses the footer given the whole file; it returns the block
// index, the dictionary, and the offset at which the footer begins (the end
// of block data). ok=false means the file carries no (valid) trailer and the
// caller should fall back to a sequential block scan.
func decodeFooter(data []byte) (blocks []blockMeta, dict []string, footStart int, ok bool, err error) {
	if len(data) < trailerLen {
		return nil, nil, 0, false, nil
	}
	if binary.LittleEndian.Uint64(data[len(data)-8:]) != trailerMagic {
		return nil, nil, 0, false, nil
	}
	footerLen := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	if footerLen > uint64(len(data)-trailerLen) || footerLen < 12 {
		return nil, nil, 0, false, fmt.Errorf("colstore: footer length %d out of range", footerLen)
	}
	footStart = len(data) - trailerLen - int(footerLen)
	f := data[footStart : len(data)-trailerLen]
	if binary.LittleEndian.Uint32(f[0:]) != footerMagic {
		return nil, nil, 0, false, fmt.Errorf("colstore: bad footer magic")
	}
	nblocks := int(binary.LittleEndian.Uint32(f[4:]))
	off := 8
	if nblocks < 0 || off+16*nblocks > len(f) {
		return nil, nil, 0, false, fmt.Errorf("colstore: block count %d out of range", nblocks)
	}
	for i := 0; i < nblocks; i++ {
		b := blockMeta{
			offset: int64(binary.LittleEndian.Uint64(f[off:])),
			rows:   int(binary.LittleEndian.Uint64(f[off+8:])),
		}
		off += 16
		blocks = append(blocks, b)
	}
	if off+4 > len(f) {
		return nil, nil, 0, false, fmt.Errorf("colstore: footer truncated before dictionary")
	}
	ndict := int(binary.LittleEndian.Uint32(f[off:]))
	off += 4
	if ndict < 0 || ndict > maxNameLen {
		return nil, nil, 0, false, fmt.Errorf("colstore: dictionary size %d out of range", ndict)
	}
	for i := 0; i < ndict; i++ {
		if off+4 > len(f) {
			return nil, nil, 0, false, fmt.Errorf("colstore: dictionary truncated at entry %d", i)
		}
		n := int(binary.LittleEndian.Uint32(f[off:]))
		off += 4
		if n < 0 || n >= maxNameLen || off+n > len(f) {
			return nil, nil, 0, false, fmt.Errorf("colstore: dictionary entry %d length %d out of range", i, n)
		}
		dict = append(dict, string(f[off:off+n]))
		off += n
	}
	if off != len(f) {
		return nil, nil, 0, false, fmt.Errorf("colstore: %d trailing footer bytes", len(f)-off)
	}
	return blocks, dict, footStart, true, nil
}
