package colstore

import (
	"bytes"
	"testing"
)

// FuzzOpenBytes drives the whole decode stack — header, footer, block scan,
// CRC, column reads and a query — over malformed input. The contract under
// fuzz: errors are fine, panics are not, and a file that opens must serve
// every column read it advertises.
func FuzzOpenBytes(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Schema{Kind: KindTrace, SlotSeconds: 60, Cols: []string{"slot", "utilization"}})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := w.Append([]float64{float64(i), float64(i%7) / 7}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-trailerLen]) // crash-recovery path
	f.Add(valid[:40])                    // truncated
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenBytes(data)
		if err != nil {
			return
		}
		defer r.Close()
		var scratch []float64
		for b := 0; b < r.NumBlocks(); b++ {
			for c := range r.Schema().Cols {
				v, err := r.Col(b, c, scratch)
				if err != nil {
					t.Fatalf("opened file failed Col(%d,%d): %v", b, c, err)
				}
				if len(v) != r.BlockRows(b) {
					t.Fatalf("Col(%d,%d) returned %d values, block has %d rows", b, c, len(v), r.BlockRows(b))
				}
			}
		}
		if len(r.Schema().Cols) > 0 && r.Rows() > 0 {
			if _, err := (Query{Col: r.Schema().Cols[0], Op: Mean}).Run(r); err != nil {
				t.Fatalf("query over opened file: %v", err)
			}
		}
	})
}
