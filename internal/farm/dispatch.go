package farm

import (
	"fmt"

	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
)

// VirtualRouter is the state-dependent analogue of Preassigner: a dispatcher
// that can route against a lightweight per-server availability shadow —
// freeAt[i] being the time server i's accepted work completes — instead of
// live engines. RouteVirtual must pick exactly as Pick would against engines
// whose FreeAt equals the shadow, so the time-sliced parallel dispatch can
// decide routing serially (cheap scalar recursion) while the full
// energy-accounting simulation of each server runs concurrently.
type VirtualRouter interface {
	RouteVirtual(freeAt []float64, j queue.Job) int
}

// RouteVirtual implements VirtualRouter: the server with the least
// outstanding work at the arrival instant, ties toward the lowest index —
// the same decision Pick makes from engine backlogs.
func (JSQ) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestWork := 0, shadowBacklog(freeAt[0], j.Arrival)
	for i := 1; i < len(freeAt); i++ {
		if w := shadowBacklog(freeAt[i], j.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}

// shadowBacklog mirrors Engine.Backlog for the freeAt shadow.
func shadowBacklog(freeAt, t float64) float64 {
	if freeAt <= t {
		return 0
	}
	return freeAt - t
}

// DefaultSliceJobs is the synchronization granularity of the parallel
// dispatch mode when DispatchOptions does not pick one: jobs routed per
// slice between barriers. Larger slices amortize the barrier; the slice
// buffer (not the stream) is the mode's memory high-water mark.
const DefaultSliceJobs = 4096

// DispatchOptions tunes DispatchSource.
type DispatchOptions struct {
	// Parallel enables the time-sliced parallel mode: the stream is cut
	// into slices at dispatch-forced synchronization points, each slice is
	// routed serially against the shadow (or preassigned), and the
	// per-server substreams simulate concurrently between barriers. Results
	// are bit-identical to the sequential dispatch. Requires a dispatcher
	// implementing Preassigner or VirtualRouter; round-robin, random and
	// JSQ all qualify.
	Parallel bool
	// SliceJobs is the jobs-per-slice granularity of the parallel mode
	// (default DefaultSliceJobs). Smaller slices synchronize more often;
	// the results do not depend on the choice.
	SliceJobs int
}

// DispatchSource is the streaming k-way dispatch loop: it pulls chunks from
// src (any stream.Source or queue.JobSource), routes each job through disp
// at its arrival instant, and advances the k per-server engines in
// virtual-time order — JSQ sees accurate queue depths — without ever
// materializing the stream. Peak job-buffer memory is one chunk (sequential)
// or one slice (parallel); week-long streams run in O(chunk).
//
// The source is consumed from its current position; sources exposing
// Err() error surface their deferred failure. With opts.Parallel the
// time-sliced mode simulates servers concurrently and merges
// deterministically, bit-identical to the sequential reference.
func DispatchSource(k int, cfg queue.Config, disp Dispatcher, src queue.JobSource, opts DispatchOptions) (Result, error) {
	if disp == nil {
		return Result{}, fmt.Errorf("farm: nil dispatcher")
	}
	if src == nil {
		return Result{}, fmt.Errorf("farm: nil job source")
	}
	if opts.Parallel && k > 1 {
		if err := cfg.Validate(); err != nil {
			return Result{}, err
		}
		return dispatchSliced(k, cfg, disp, src, opts)
	}
	f, err := New(k, cfg, disp)
	if err != nil {
		return Result{}, err
	}
	if _, err := f.ServeSource(src); err != nil {
		return Result{}, err
	}
	if err := sourceErr(src); err != nil {
		return Result{}, fmt.Errorf("farm: job source: %w", err)
	}
	return f.Finish(lastFree(f.engines))
}

// sourceErr reports a source's deferred mid-stream failure, if any.
func sourceErr(src queue.JobSource) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// dispatchSliced is the time-sliced parallel driver. The stream is consumed
// slice by slice; within a slice routing is decided serially — by Preassign
// for state-independent dispatchers, or against the freeAt shadow advanced
// with queue.Config.NextFreeAt for VirtualRouters — then the per-server
// substreams advance concurrently and a barrier resynchronizes the shadow
// from the engines before the next slice. Because the shadow recursion
// mirrors Engine.Process bit for bit, every routing decision equals the one
// the sequential dispatch would make, and each engine sees the same jobs in
// the same order: the merged Result is bit-identical to the sequential
// reference.
func dispatchSliced(k int, cfg queue.Config, disp Dispatcher, src queue.JobSource, opts DispatchOptions) (Result, error) {
	pre, isPre := disp.(Preassigner)
	vr, isVR := disp.(VirtualRouter)
	if !isPre && !isVR {
		return Result{}, fmt.Errorf("farm: dispatcher %s supports neither preassignment nor virtual routing; run it sequentially (DispatchOptions{Parallel: false})", disp.Name())
	}

	engines := make([]*queue.Engine, k)
	for s := range engines {
		eng, err := queue.NewEngine(cfg, 0)
		if err != nil {
			return Result{}, err
		}
		engines[s] = eng
	}

	sliceJobs := opts.SliceJobs
	if sliceJobs < 1 {
		sliceJobs = DefaultSliceJobs
	}
	var (
		slice   = make([]queue.Job, 0, sliceJobs)
		assign  = make([]int, sliceJobs)
		backing = make([]queue.Job, sliceJobs)
		freeAt  = make([]float64, k)
		offsets = make([]int, k+1)
		fill    = make([]int, k)
		count   = make([]int, k)
		perSrv  = make([]int, k)
		errs    = make([]error, k)
	)
	cursor := stream.NewCursor(src)

	for {
		// Fill the next slice from the chunk cursor.
		slice = slice[:0]
		for len(slice) < sliceJobs {
			j, ok := cursor.Peek()
			if !ok {
				break
			}
			slice = append(slice, j)
			cursor.Advance()
		}
		if len(slice) == 0 {
			break
		}

		// Route the slice serially: this is the dispatch-forced
		// synchronization the mode's name refers to.
		if isPre {
			pre.Preassign(k, slice, assign[:len(slice)])
		} else {
			for i := range slice {
				assign[i] = vr.RouteVirtual(freeAt, slice[i])
				if s := assign[i]; s >= 0 && s < k {
					freeAt[s] = cfg.NextFreeAt(freeAt[s], slice[i])
				}
			}
		}
		for s := range count {
			count[s] = 0
		}
		for _, s := range assign[:len(slice)] {
			if s < 0 || s >= k {
				return Result{}, fmt.Errorf("farm: dispatcher %s picked server %d of %d", disp.Name(), s, k)
			}
			count[s]++
			perSrv[s]++
		}

		bucketByServer(slice, assign[:len(slice)], count, offsets, fill, backing)

		// Advance the servers concurrently; parallelServers' return is the
		// slice barrier.
		parallelServers(k, func(s int) {
			sub := backing[offsets[s]:offsets[s+1]]
			for i := range sub {
				if _, err := engines[s].Process(sub[i]); err != nil {
					errs[s] = fmt.Errorf("farm: server %d: %w", s, err)
					return
				}
			}
		})
		for _, err := range errs {
			if err != nil {
				return Result{}, err
			}
		}
		// Resynchronize the shadow from the engines — they agree bit for
		// bit with the NextFreeAt recursion, so this only re-anchors the
		// next slice's routing on the authoritative engine arithmetic.
		if isVR {
			for s, eng := range engines {
				freeAt[s] = eng.FreeAt()
			}
		}
	}

	if err := sourceErr(src); err != nil {
		return Result{}, fmt.Errorf("farm: job source: %w", err)
	}
	// Merge through the same Farm.Finish the sequential path uses, in
	// server order, so aggregation can never diverge between the modes.
	f := &Farm{engines: engines, disp: disp, perSrv: perSrv}
	return f.Finish(lastFree(engines))
}
