package farm

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/par"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
)

// VirtualRouter is the state-dependent analogue of Preassigner: a dispatcher
// that can route against a lightweight per-server availability shadow —
// freeAt[i] being the time server i's accepted work completes — instead of
// live engines. RouteVirtual must pick exactly as Pick would against engines
// whose FreeAt equals the shadow, so the time-sliced parallel dispatch can
// decide routing serially (cheap scalar recursion) while the full
// energy-accounting simulation of each server runs concurrently.
type VirtualRouter interface {
	RouteVirtual(freeAt []float64, j queue.Job) int
}

// AnchoredRouter is the optional refinement of VirtualRouter for dispatchers
// whose pricing depends on each server's idle-schedule anchor, not just its
// freeAt: anchor[i] is the start of server i's current idle schedule
// (queue.Engine.IdleAnchor). The anchors differ from freeAt only for servers
// that have been reconfigured (SetConfigAt) while idle and not served since;
// carrying them keeps the sliced parallel dispatch bit-identical to the
// sequential Pick path even across such switches. The sliced driver uses
// RouteVirtualAnchored when available and falls back to RouteVirtual.
type AnchoredRouter interface {
	RouteVirtualAnchored(freeAt, anchor []float64, j queue.Job) int
}

// RouteVirtual implements VirtualRouter: the server with the least
// outstanding work at the arrival instant, ties toward the lowest index —
// the same decision Pick makes from engine backlogs.
func (JSQ) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestWork := 0, shadowBacklog(freeAt[0], j.Arrival)
	for i := 1; i < len(freeAt); i++ {
		if w := shadowBacklog(freeAt[i], j.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}

// shadowBacklog mirrors Engine.Backlog for the freeAt shadow.
func shadowBacklog(freeAt, t float64) float64 {
	if freeAt <= t {
		return 0
	}
	return freeAt - t
}

// PowerOfD is the power-of-d-choices discipline: at each arrival it samples
// D servers uniformly at random (with replacement) and joins the
// least-backlogged of the sample, ties toward the lowest sampled index — the
// classic load-balancing compromise between random dispatch (d = 1) and full
// JSQ (d = k), scanning d servers instead of the whole fleet. D must be ≥ 1
// and Rng non-nil. Pick and RouteVirtual consume exactly D draws per job in
// the same order, so the sequential and time-sliced parallel dispatch modes
// route identically from equal Rng states.
type PowerOfD struct {
	// D is the sample size (2 is the textbook choice).
	D int
	// Rng drives the sampling; seed it for reproducible runs.
	Rng *rand.Rand
}

// Pick implements Dispatcher.
func (p *PowerOfD) Pick(f *Farm, j queue.Job) int {
	best, bestWork := -1, 0.0
	for c := 0; c < p.D; c++ {
		i := p.Rng.Intn(len(f.engines))
		w := f.engines[i].Backlog(j.Arrival)
		if best < 0 || w < bestWork || (w == bestWork && i < best) {
			best, bestWork = i, w
		}
	}
	return best
}

// RouteVirtual implements VirtualRouter with the same draws and the same
// comparator as Pick, against the freeAt shadow.
func (p *PowerOfD) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestWork := -1, 0.0
	for c := 0; c < p.D; c++ {
		i := p.Rng.Intn(len(freeAt))
		w := shadowBacklog(freeAt[i], j.Arrival)
		if best < 0 || w < bestWork || (w == bestWork && i < best) {
			best, bestWork = i, w
		}
	}
	return best
}

// Name implements Dispatcher.
func (p *PowerOfD) Name() string { return fmt.Sprintf("pd%d", p.D) }

// LeastWorkLeft routes to the server that would complete the arriving job
// earliest: the wake-aware refinement of JSQ. Where JSQ compares outstanding
// backlog alone, LeastWorkLeft additionally charges the wake-up latency a
// sleeping server must pay before it can serve, so an idle-but-asleep deep
// server competes against a nearly-free busy one on the work actually left
// before the job finishes. Ties break toward the lowest index.
//
// Cfg must be the farm's operating configuration: the virtual-routing path
// has no engines to consult, so it prices wake-ups from Cfg, while Pick uses
// each engine's live configuration — the two agree (and the parallel mode is
// bit-identical) exactly when Cfg matches the engines'. Idle pricing follows
// each server's actual idle anchor: Pick reads it from the engine, and the
// sliced driver carries an anchor shadow alongside freeAt, so the first wake
// after a mid-run SetConfigAt during an idle period is priced exactly (the
// anchor the switch moved is honored, not assumed equal to freeAt).
type LeastWorkLeft struct {
	// Cfg prices service and wake-up latency on the virtual-routing path.
	Cfg queue.Config
}

// Pick implements Dispatcher: the earliest completion of j across servers,
// computed by the same availability recursion the engines run, against each
// engine's live configuration and idle anchor.
func (l *LeastWorkLeft) Pick(f *Farm, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i, eng := range f.engines {
		done := eng.NextFreeAt(j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// RouteVirtual implements VirtualRouter: the same completion-time comparison
// against the freeAt shadow, priced by Cfg with idle schedules anchored at
// freeAt — exact whenever every server has processed a job since its last
// anchor move (the steady state of a dispatch run).
func (l *LeastWorkLeft) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i := range freeAt {
		done := l.Cfg.NextFreeAt(freeAt[i], j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// RouteVirtualAnchored is RouteVirtual against a shadow that also carries
// idle anchors, matching Pick bit for bit even when SetConfigAt moved an
// anchor away from its server's freeAt. The sliced driver prefers it.
func (l *LeastWorkLeft) RouteVirtualAnchored(freeAt, anchor []float64, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i := range freeAt {
		done := l.Cfg.NextFreeAtAnchored(freeAt[i], anchor[i], j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// Name implements Dispatcher.
func (l *LeastWorkLeft) Name() string { return "least-work-left" }

// DefaultSliceJobs is the synchronization granularity of the parallel
// dispatch mode when DispatchOptions does not pick one: jobs routed per
// slice between barriers. Larger slices amortize the barrier; the slice
// buffer (not the stream) is the mode's memory high-water mark.
const DefaultSliceJobs = 4096

// DispatchOptions tunes DispatchSource.
type DispatchOptions struct {
	// Parallel enables the time-sliced parallel mode: the stream is cut
	// into slices at dispatch-forced synchronization points, each slice is
	// routed serially against the shadow (or preassigned), and the
	// per-server substreams simulate concurrently between barriers. Results
	// are bit-identical to the sequential dispatch. Requires a dispatcher
	// implementing Preassigner or VirtualRouter; round-robin, random, JSQ,
	// power-of-d and least-work-left all qualify.
	Parallel bool
	// SliceJobs is the jobs-per-slice granularity of the parallel mode
	// (default DefaultSliceJobs). Smaller slices synchronize more often;
	// the results do not depend on the choice.
	SliceJobs int
	// Workers bounds the persistent pool executors the parallel mode may
	// use per slice; 0 uses the whole process-wide pool (GOMAXPROCS
	// executors). Results do not depend on the choice — 1 degenerates to
	// the serial reference on the submitting goroutine.
	Workers int
	// LinearRouting opts out of the O(log k) routing index and routes every
	// job by the dispatcher's O(k) linear scan. Routing decisions are
	// bit-identical either way (the equivalence suite pins it); the flag
	// exists for A/B comparison and as an escape hatch.
	LinearRouting bool
}

// DispatchSource is the streaming k-way dispatch loop: it pulls chunks from
// src (any stream.Source or queue.JobSource), routes each job through disp
// at its arrival instant, and advances the k per-server engines in
// virtual-time order — JSQ sees accurate queue depths — without ever
// materializing the stream. Peak job-buffer memory is one chunk (sequential)
// or one slice (parallel); week-long streams run in O(chunk).
//
// The source is consumed from its current position; sources exposing
// Err() error surface their deferred failure. With opts.Parallel the
// time-sliced mode simulates servers concurrently on the persistent worker
// pool and merges deterministically, bit-identical to the sequential
// reference. Engines are fresh per call, so the returned Result never
// aliases reused storage; steady-state callers should hold a Farm and drive
// Reset + ServeSourceSliced + FinishSummary instead.
func DispatchSource(k int, cfg queue.Config, disp Dispatcher, src queue.JobSource, opts DispatchOptions) (Result, error) {
	if disp == nil {
		return Result{}, fmt.Errorf("farm: nil dispatcher")
	}
	if src == nil {
		return Result{}, fmt.Errorf("farm: nil job source")
	}
	f, err := New(k, cfg, disp)
	if err != nil {
		return Result{}, err
	}
	if opts.Parallel && k > 1 {
		if _, err := f.ServeSourceSliced(src, opts); err != nil {
			return Result{}, err
		}
	} else if _, err := f.ServeSource(src); err != nil {
		return Result{}, err
	}
	if err := sourceErr(src); err != nil {
		return Result{}, fmt.Errorf("farm: job source: %w", err)
	}
	return f.Finish(lastFree(f.engines))
}

// sourceErr reports a source's deferred mid-stream failure, if any.
func sourceErr(src queue.JobSource) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// slicedState is the farm-owned reusable scratch of the time-sliced parallel
// dispatch: the slice buffer, routing table, bucketed-substream backing
// array, freeAt shadow, per-server counters and merge offsets, the chunk
// cursor, and the stored worker closure the pool executes. It is allocated
// on the farm's first ServeSourceSliced and reused across slices and across
// calls, which is what takes the parallel mode's steady state to zero
// allocations — the sliced counterpart of the sequential loop's farm-owned
// chunk.
type slicedState struct {
	f       *Farm
	cursor  *stream.Cursor
	slice   []queue.Job
	assign  []int
	backing []queue.Job
	freeAt  []float64
	anchor  []float64
	offsets []int
	fill    []int
	count   []int
	// idx is the dispatcher's O(log k) routing index over the freeAt/anchor
	// shadow, built on first use (the farm's dispatcher never changes) and
	// rebuilt per call; nil when the dispatcher has none.
	idx routeIndex
	// done[s] is how many of server s's substream jobs the current slice
	// actually simulated — equal to count[s] on success, fewer when the
	// engine failed mid-substream — so perSrv stays consistent with engine
	// state even on error returns.
	done []int
	errs []error
	// body advances one server's substream for the current slice; stored so
	// per-slice pool submissions allocate no closure.
	body func(worker, s int)
}

// sliced returns the farm's sliced-dispatch scratch, allocating on first use
// and growing the per-slice buffers when sliceJobs exceeds their capacity.
func (f *Farm) sliced(sliceJobs int) *slicedState {
	k := len(f.engines)
	sl := f.sl
	if sl == nil {
		sl = &slicedState{
			f:       f,
			freeAt:  make([]float64, k),
			anchor:  make([]float64, k),
			offsets: make([]int, k+1),
			fill:    make([]int, k),
			count:   make([]int, k),
			done:    make([]int, k),
			errs:    make([]error, k),
		}
		sl.body = func(_, s int) {
			sub := sl.backing[sl.offsets[s]:sl.offsets[s+1]]
			eng := sl.f.engines[s]
			for i := range sub {
				if _, err := eng.Process(sub[i]); err != nil {
					sl.errs[s] = fmt.Errorf("farm: server %d: %w", s, err)
					sl.done[s] = i
					return
				}
			}
			sl.done[s] = len(sub)
		}
		f.sl = sl
	}
	if cap(sl.slice) < sliceJobs {
		sl.slice = make([]queue.Job, 0, sliceJobs)
		sl.assign = make([]int, sliceJobs)
		sl.backing = make([]queue.Job, sliceJobs)
	}
	return sl
}

// ServeSourceSliced is the time-sliced parallel analogue of ServeSource: it
// dispatches every job src delivers through the farm's dispatcher and
// simulates the per-server substreams concurrently on the persistent worker
// pool, returning the number served. The stream is consumed slice by slice;
// within a slice routing is decided serially — by Preassign for
// state-independent dispatchers, or against the freeAt shadow advanced with
// queue.Config.NextFreeAt for VirtualRouters — then the servers advance in
// parallel and the pool's reusable barrier resynchronizes the shadow from
// the engines before the next slice. Because the shadow recursion mirrors
// Engine.Process bit for bit, every routing decision equals the one the
// sequential ServeSource would make, and each engine sees the same jobs in
// the same order: results are bit-identical to the sequential dispatch for
// every slice size and pool size.
//
// All slicing scratch is farm-owned and reused, so after the first call a
// Reset + ServeSourceSliced cycle allocates nothing. Deferred source errors
// are the caller's to check (DispatchSource does).
func (f *Farm) ServeSourceSliced(src queue.JobSource, opts DispatchOptions) (int, error) {
	k := len(f.engines)
	pre, isPre := f.disp.(Preassigner)
	vr, isVR := f.disp.(VirtualRouter)
	if !isPre && !isVR {
		return 0, fmt.Errorf("farm: dispatcher %s supports neither preassignment nor virtual routing; run it sequentially (DispatchOptions{Parallel: false})", f.disp.Name())
	}
	sliceJobs := opts.SliceJobs
	if sliceJobs < 1 {
		sliceJobs = DefaultSliceJobs
	}
	sl := f.sliced(sliceJobs)
	if sl.cursor == nil {
		sl.cursor = stream.NewCursor(src)
	} else {
		sl.cursor.Reset(src)
	}
	// Anchor the shadow on the engines' current availability and idle
	// anchors, so a warm farm can continue a stream mid-flight — including
	// one reconfigured while idle, whose anchor moved away from freeAt.
	for s, eng := range f.engines {
		sl.freeAt[s] = eng.FreeAt()
		sl.anchor[s] = eng.IdleAnchor()
		sl.errs[s] = nil
	}
	pool := par.Default()
	// The shadow recursion prices service and wake-ups from the engines'
	// (shared) configuration; ServeSourceSliced never switches it mid-run.
	cfg := f.engines[0].Config()
	ar, isAnchored := f.disp.(AnchoredRouter)
	var ridx routeIndex
	if isVR && !isPre && !opts.LinearRouting {
		if sl.idx == nil {
			sl.idx = newRouteIndexFor(f.disp, sl.freeAt, sl.anchor)
		}
		if sl.idx != nil {
			sl.idx.reset(cfg)
			ridx = sl.idx
		}
	}

	served := 0
	for {
		// Fill the next slice from the chunk cursor.
		slice := sl.slice[:0]
		for len(slice) < sliceJobs {
			j, ok := sl.cursor.Peek()
			if !ok {
				break
			}
			slice = append(slice, j)
			sl.cursor.Advance()
		}
		sl.slice = slice
		if len(slice) == 0 {
			return served, nil
		}

		// Route the slice serially: this is the dispatch-forced
		// synchronization the mode's name refers to.
		assign := sl.assign[:len(slice)]
		switch {
		case isPre:
			pre.Preassign(k, slice, assign)
		case ridx != nil:
			// O(log k) per job; the index commits the shadow advance itself.
			for i := range slice {
				assign[i] = ridx.route(slice[i])
			}
		default:
			for i := range slice {
				if isAnchored {
					assign[i] = ar.RouteVirtualAnchored(sl.freeAt, sl.anchor, slice[i])
				} else {
					assign[i] = vr.RouteVirtual(sl.freeAt, slice[i])
				}
				if s := assign[i]; s >= 0 && s < k {
					nf := cfg.NextFreeAtAnchored(sl.freeAt[s], sl.anchor[s], slice[i])
					sl.freeAt[s], sl.anchor[s] = nf, nf
				}
			}
		}
		for s := range sl.count {
			sl.count[s] = 0
		}
		for _, s := range assign {
			if s < 0 || s >= k {
				return served, fmt.Errorf("farm: dispatcher %s picked server %d of %d", f.disp.Name(), s, k)
			}
			sl.count[s]++
		}

		bucketByServer(slice, assign, sl.count, sl.offsets, sl.fill, sl.backing)

		// Advance the servers concurrently; the pool's reusable barrier is
		// the slice barrier. RunSharded pins each executor slot to the same
		// contiguous server range every slice, so workers keep their engines
		// hot across barriers instead of re-sharding them. perSrv accounts
		// only jobs actually simulated (done, not count), so a mid-substream
		// failure leaves the farm's counters consistent with its engines.
		pool.RunSharded(k, opts.Workers, sl.body)
		simulated := 0
		for s := range sl.count {
			f.perSrv[s] += sl.done[s]
			simulated += sl.done[s]
		}
		served += simulated
		for _, err := range sl.errs {
			if err != nil {
				return served, err
			}
		}
		// Resynchronize the shadow from the engines — they agree bit for
		// bit with the NextFreeAtAnchored recursion, so this only re-anchors
		// the next slice's routing on the authoritative engine arithmetic.
		// The routing index only rebuilds if a mismatch actually appeared
		// (it never should; the check is the safety net that keeps a
		// hypothetical divergence from compounding across slices).
		if isVR {
			dirty := false
			for s, eng := range f.engines {
				fa, an := eng.FreeAt(), eng.IdleAnchor()
				if sl.freeAt[s] != fa || sl.anchor[s] != an {
					sl.freeAt[s], sl.anchor[s] = fa, an
					dirty = true
				}
			}
			if dirty && ridx != nil {
				ridx.reset(cfg)
			}
		}
	}
}
