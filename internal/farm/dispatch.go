package farm

import (
	"fmt"
	"math/rand"

	"sleepscale/internal/par"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
)

// VirtualRouter is the state-dependent analogue of Preassigner: a dispatcher
// that can route against a lightweight per-server availability shadow —
// freeAt[i] being the time server i's accepted work completes — instead of
// live engines. RouteVirtual must pick exactly as Pick would against engines
// whose FreeAt equals the shadow, so the time-sliced parallel dispatch can
// decide routing serially (cheap scalar recursion) while the full
// energy-accounting simulation of each server runs concurrently.
type VirtualRouter interface {
	RouteVirtual(freeAt []float64, j queue.Job) int
}

// AnchoredRouter is the optional refinement of VirtualRouter for dispatchers
// whose pricing depends on each server's idle-schedule anchor, not just its
// freeAt: anchor[i] is the start of server i's current idle schedule
// (queue.Engine.IdleAnchor). The anchors differ from freeAt only for servers
// that have been reconfigured (SetConfigAt) while idle and not served since;
// carrying them keeps the sliced parallel dispatch bit-identical to the
// sequential Pick path even across such switches. The sliced driver uses
// RouteVirtualAnchored when available and falls back to RouteVirtual.
type AnchoredRouter interface {
	RouteVirtualAnchored(freeAt, anchor []float64, j queue.Job) int
}

// ConfigRouter is the heterogeneous-farm refinement of AnchoredRouter: a
// dispatcher whose virtual routing prices each server from that server's own
// configuration — cfgs[i] being engine i's live queue.Config — instead of
// one shared operating configuration. The sliced driver switches to it when
// a per-call scan finds the engines' configurations differ (the fleet
// coordinator's per-server policies), so routing matches what Pick computes
// against live engines even when every server runs a different (frequency,
// sleep-plan) pair. With identical cfgs entries it must pick exactly as
// RouteVirtualAnchored would.
type ConfigRouter interface {
	RouteVirtualConfigs(cfgs []queue.Config, freeAt, anchor []float64, j queue.Job) int
}

// RouteVirtual implements VirtualRouter: the server with the least
// outstanding work at the arrival instant, ties toward the lowest index —
// the same decision Pick makes from engine backlogs.
func (JSQ) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestWork := 0, shadowBacklog(freeAt[0], j.Arrival)
	for i := 1; i < len(freeAt); i++ {
		if w := shadowBacklog(freeAt[i], j.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}

// shadowBacklog mirrors Engine.Backlog for the freeAt shadow.
func shadowBacklog(freeAt, t float64) float64 {
	if freeAt <= t {
		return 0
	}
	return freeAt - t
}

// PowerOfD is the power-of-d-choices discipline: at each arrival it samples
// D servers uniformly at random (with replacement) and joins the
// least-backlogged of the sample, ties toward the lowest sampled index — the
// classic load-balancing compromise between random dispatch (d = 1) and full
// JSQ (d = k), scanning d servers instead of the whole fleet. D must be ≥ 1
// and Rng non-nil. Pick and RouteVirtual consume exactly D draws per job in
// the same order, so the sequential and time-sliced parallel dispatch modes
// route identically from equal Rng states.
type PowerOfD struct {
	// D is the sample size (2 is the textbook choice).
	D int
	// Rng drives the sampling; seed it for reproducible runs.
	Rng *rand.Rand
}

// Pick implements Dispatcher.
func (p *PowerOfD) Pick(f *Farm, j queue.Job) int {
	best, bestWork := -1, 0.0
	for c := 0; c < p.D; c++ {
		i := p.Rng.Intn(len(f.engines))
		w := f.engines[i].Backlog(j.Arrival)
		if best < 0 || w < bestWork || (w == bestWork && i < best) {
			best, bestWork = i, w
		}
	}
	return best
}

// RouteVirtual implements VirtualRouter with the same draws and the same
// comparator as Pick, against the freeAt shadow.
func (p *PowerOfD) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestWork := -1, 0.0
	for c := 0; c < p.D; c++ {
		i := p.Rng.Intn(len(freeAt))
		w := shadowBacklog(freeAt[i], j.Arrival)
		if best < 0 || w < bestWork || (w == bestWork && i < best) {
			best, bestWork = i, w
		}
	}
	return best
}

// Name implements Dispatcher.
func (p *PowerOfD) Name() string { return fmt.Sprintf("pd%d", p.D) }

// LeastWorkLeft routes to the server that would complete the arriving job
// earliest: the wake-aware refinement of JSQ. Where JSQ compares outstanding
// backlog alone, LeastWorkLeft additionally charges the wake-up latency a
// sleeping server must pay before it can serve, so an idle-but-asleep deep
// server competes against a nearly-free busy one on the work actually left
// before the job finishes. Ties break toward the lowest index.
//
// Pricing always follows the engines' live configurations wherever engines
// (or the sliced driver's snapshot of them) are in reach: Pick reads each
// engine directly, and ServeSourceSliced routes through the O(log k) index
// or RouteVirtualConfigs, both priced from the live operating point — so the
// parallel mode stays bit-identical to the sequential dispatch even when
// SetConfigAt switches configurations between calls (the fleet coordinator's
// epoch-boundary policy changes). Cfg prices only the standalone
// RouteVirtual/RouteVirtualAnchored entry points, which have no engines to
// consult; set it to the farm's operating configuration when calling those
// directly. Idle pricing follows each server's actual idle anchor: Pick
// reads it from the engine, and the sliced driver carries an anchor shadow
// alongside freeAt, so the first wake after a mid-run SetConfigAt during an
// idle period is priced exactly (the anchor the switch moved is honored, not
// assumed equal to freeAt).
type LeastWorkLeft struct {
	// Cfg prices service and wake-up latency on the standalone
	// RouteVirtual/RouteVirtualAnchored paths; the sliced driver and Pick
	// price from the engines' live configurations instead.
	Cfg queue.Config
}

// Pick implements Dispatcher: the earliest completion of j across servers,
// computed by the same availability recursion the engines run, against each
// engine's live configuration and idle anchor.
func (l *LeastWorkLeft) Pick(f *Farm, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i, eng := range f.engines {
		done := eng.NextFreeAt(j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// RouteVirtual implements VirtualRouter: the same completion-time comparison
// against the freeAt shadow, priced by Cfg with idle schedules anchored at
// freeAt — exact whenever every server has processed a job since its last
// anchor move (the steady state of a dispatch run).
func (l *LeastWorkLeft) RouteVirtual(freeAt []float64, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i := range freeAt {
		done := l.Cfg.NextFreeAt(freeAt[i], j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// RouteVirtualAnchored is RouteVirtual against a shadow that also carries
// idle anchors, matching Pick bit for bit even when SetConfigAt moved an
// anchor away from its server's freeAt. The sliced driver prefers it.
func (l *LeastWorkLeft) RouteVirtualAnchored(freeAt, anchor []float64, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i := range freeAt {
		done := l.Cfg.NextFreeAtAnchored(freeAt[i], anchor[i], j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// RouteVirtualConfigs implements ConfigRouter: the completion-time comparison
// of RouteVirtualAnchored with wake-ups and service priced from each server's
// own configuration. With every cfgs entry equal to Cfg it reduces to
// RouteVirtualAnchored operation for operation.
func (l *LeastWorkLeft) RouteVirtualConfigs(cfgs []queue.Config, freeAt, anchor []float64, j queue.Job) int {
	best, bestDone := 0, 0.0
	for i := range freeAt {
		done := cfgs[i].NextFreeAtAnchored(freeAt[i], anchor[i], j)
		if i == 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return best
}

// Name implements Dispatcher.
func (l *LeastWorkLeft) Name() string { return "least-work-left" }

// configsEqual reports whether two engine configurations are identical,
// phases included. The fast path is the homogeneous farm's: engines switched
// from one shared resolved policy alias the same phase slice, so the slice
// headers match and no element compare runs.
func configsEqual(a, b *queue.Config) bool {
	if a.Frequency != b.Frequency || a.FreqExponent != b.FreqExponent ||
		a.ActivePower != b.ActivePower || a.IdlePower != b.IdlePower ||
		len(a.Phases) != len(b.Phases) {
		return false
	}
	if len(a.Phases) == 0 || &a.Phases[0] == &b.Phases[0] {
		return true
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return false
		}
	}
	return true
}

// configFreeRouter reports whether the dispatcher's virtual routing consults
// no configuration at all (pure backlog comparison), making it valid over a
// heterogeneous farm as-is. Exact types, like newRouteIndexFor: a wrapper
// overriding RouteVirtual must not inherit the exemption.
func configFreeRouter(disp Dispatcher) bool {
	switch disp.(type) {
	case JSQ, *JSQ, *PowerOfD:
		return true
	}
	return false
}

// DefaultSliceJobs is the synchronization granularity of the parallel
// dispatch mode when DispatchOptions does not pick one: jobs routed per
// slice between barriers. Larger slices amortize the barrier; the slice
// buffer (not the stream) is the mode's memory high-water mark.
const DefaultSliceJobs = 4096

// DispatchOptions tunes DispatchSource.
type DispatchOptions struct {
	// Parallel enables the time-sliced parallel mode: the stream is cut
	// into slices at dispatch-forced synchronization points, each slice is
	// routed serially against the shadow (or preassigned), and the
	// per-server substreams simulate concurrently between barriers. Results
	// are bit-identical to the sequential dispatch. Requires a dispatcher
	// implementing Preassigner or VirtualRouter; round-robin, random, JSQ,
	// power-of-d and least-work-left all qualify.
	Parallel bool
	// SliceJobs is the jobs-per-slice granularity of the parallel mode
	// (default DefaultSliceJobs). Smaller slices synchronize more often;
	// the results do not depend on the choice.
	SliceJobs int
	// Workers bounds the persistent pool executors the parallel mode may
	// use per slice; 0 uses the whole process-wide pool (GOMAXPROCS
	// executors). Results do not depend on the choice — 1 degenerates to
	// the serial reference on the submitting goroutine.
	Workers int
	// LinearRouting opts out of the O(log k) routing index and routes every
	// job by the dispatcher's O(k) linear scan. Routing decisions are
	// bit-identical either way (the equivalence suite pins it); the flag
	// exists for A/B comparison and as an escape hatch.
	LinearRouting bool
}

// DispatchSource is the streaming k-way dispatch loop: it pulls chunks from
// src (any stream.Source or queue.JobSource), routes each job through disp
// at its arrival instant, and advances the k per-server engines in
// virtual-time order — JSQ sees accurate queue depths — without ever
// materializing the stream. Peak job-buffer memory is one chunk (sequential)
// or one slice (parallel); week-long streams run in O(chunk).
//
// The source is consumed from its current position; sources exposing
// Err() error surface their deferred failure. With opts.Parallel the
// time-sliced mode simulates servers concurrently on the persistent worker
// pool and merges deterministically, bit-identical to the sequential
// reference. Engines are fresh per call, so the returned Result never
// aliases reused storage; steady-state callers should hold a Farm and drive
// Reset + ServeSourceSliced + FinishSummary instead.
func DispatchSource(k int, cfg queue.Config, disp Dispatcher, src queue.JobSource, opts DispatchOptions) (Result, error) {
	if disp == nil {
		return Result{}, fmt.Errorf("farm: nil dispatcher")
	}
	if src == nil {
		return Result{}, fmt.Errorf("farm: nil job source")
	}
	f, err := New(k, cfg, disp)
	if err != nil {
		return Result{}, err
	}
	if opts.Parallel && k > 1 {
		if _, err := f.ServeSourceSliced(src, opts); err != nil {
			return Result{}, err
		}
	} else if _, err := f.ServeSource(src); err != nil {
		return Result{}, err
	}
	if err := sourceErr(src); err != nil {
		return Result{}, fmt.Errorf("farm: job source: %w", err)
	}
	return f.Finish(lastFree(f.engines))
}

// sourceErr reports a source's deferred mid-stream failure, if any.
func sourceErr(src queue.JobSource) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// resizeErrs returns s with length n, reusing capacity; new elements are nil
// (existing ones are cleared per serve call anyway).
func resizeErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	return s[:n]
}

// slicedState is the farm-owned reusable scratch of the time-sliced parallel
// dispatch: the slice buffer, routing table, bucketed-substream backing
// array, freeAt shadow, per-server counters and merge offsets, the chunk
// cursor, and the stored worker closure the pool executes. It is allocated
// on the farm's first ServeSourceSliced and reused across slices and across
// calls, which is what takes the parallel mode's steady state to zero
// allocations — the sliced counterpart of the sequential loop's farm-owned
// chunk.
type slicedState struct {
	f       *Farm
	cursor  *stream.Cursor
	slice   []queue.Job
	assign  []int
	backing []queue.Job
	freeAt  []float64
	anchor  []float64
	offsets []int
	fill    []int
	count   []int
	// idx is the dispatcher's O(log k) routing index over the freeAt/anchor
	// shadow, built on first use (the farm's dispatcher never changes) and
	// rebuilt per call; nil when the dispatcher has none.
	idx routeIndex
	// cfgs is the per-server configuration snapshot of a ConfigRouter call:
	// routing and the shadow advance price each server from its own entry.
	// Populated when the per-call uniformity scan finds differing engine
	// configurations, or with the shared configuration when a ConfigRouter
	// routes a uniform farm on the linear path.
	cfgs []queue.Config
	// ord maps bucket positions back to slice positions (ord[offsets[s]+i]
	// is the slice index of server s's i-th job), computed only while
	// RecordServe recording is armed so responses land at stream positions.
	ord []int
	// done[s] is how many of server s's substream jobs the current slice
	// actually simulated — equal to count[s] on success, fewer when the
	// engine failed mid-substream — so perSrv stays consistent with engine
	// state even on error returns.
	done []int
	errs []error
	// body advances one server's substream for the current slice; stored so
	// per-slice pool submissions allocate no closure.
	body func(worker, s int)
}

// sliced returns the farm's sliced-dispatch scratch, allocating on first use
// and growing the per-slice buffers when sliceJobs exceeds their capacity.
// When the farm's server count changed since the last call — a Select view
// refilled with a different subset — the per-server arrays resize in place
// (capacity reused) and the routing index is rebound to the moved shadow.
func (f *Farm) sliced(sliceJobs int) *slicedState {
	k := len(f.engines)
	sl := f.sl
	if sl != nil && len(sl.freeAt) != k {
		sl.freeAt = resizeFloats(sl.freeAt, k)
		sl.anchor = resizeFloats(sl.anchor, k)
		sl.offsets = resizeInts(sl.offsets, k+1)
		sl.fill = resizeInts(sl.fill, k)
		sl.count = resizeInts(sl.count, k)
		sl.done = resizeInts(sl.done, k)
		sl.errs = resizeErrs(sl.errs, k)
		if sl.idx != nil {
			// The index aliases the shadow slices; the resize moved them.
			sl.idx.rebind(sl.freeAt, sl.anchor)
		}
	}
	if sl == nil {
		sl = &slicedState{
			f:       f,
			freeAt:  make([]float64, k),
			anchor:  make([]float64, k),
			offsets: make([]int, k+1),
			fill:    make([]int, k),
			count:   make([]int, k),
			done:    make([]int, k),
			errs:    make([]error, k),
		}
		sl.body = func(_, s int) {
			sub := sl.backing[sl.offsets[s]:sl.offsets[s+1]]
			eng := sl.f.engines[s]
			rec, recSrv, base, off := sl.f.recResp, sl.f.recSrv, sl.f.recBase, sl.offsets[s]
			for i := range sub {
				r, err := eng.Process(sub[i])
				if err != nil {
					sl.errs[s] = fmt.Errorf("farm: server %d: %w", s, err)
					sl.done[s] = i
					return
				}
				if rec != nil || recSrv != nil {
					gi := base + sl.ord[off+i]
					if rec != nil {
						rec[gi] = r
					}
					if recSrv != nil {
						recSrv[gi] = s
					}
				}
			}
			sl.done[s] = len(sub)
		}
		f.sl = sl
	}
	if cap(sl.slice) < sliceJobs {
		sl.slice = make([]queue.Job, 0, sliceJobs)
		sl.assign = make([]int, sliceJobs)
		sl.backing = make([]queue.Job, sliceJobs)
	}
	return sl
}

// ServeSourceSliced is the time-sliced parallel analogue of ServeSource: it
// dispatches every job src delivers through the farm's dispatcher and
// simulates the per-server substreams concurrently on the persistent worker
// pool, returning the number served. The stream is consumed slice by slice;
// within a slice routing is decided serially — by Preassign for
// state-independent dispatchers, or against the freeAt shadow advanced with
// queue.Config.NextFreeAt for VirtualRouters — then the servers advance in
// parallel and the pool's reusable barrier resynchronizes the shadow from
// the engines before the next slice. Because the shadow recursion mirrors
// Engine.Process bit for bit, every routing decision equals the one the
// sequential ServeSource would make, and each engine sees the same jobs in
// the same order: results are bit-identical to the sequential dispatch for
// every slice size and pool size.
//
// All slicing scratch is farm-owned and reused, so after the first call a
// Reset + ServeSourceSliced cycle allocates nothing. Deferred source errors
// are the caller's to check (DispatchSource does).
func (f *Farm) ServeSourceSliced(src queue.JobSource, opts DispatchOptions) (int, error) {
	k := len(f.engines)
	pre, isPre := f.disp.(Preassigner)
	vr, isVR := f.disp.(VirtualRouter)
	if !isPre && !isVR {
		return 0, fmt.Errorf("farm: dispatcher %s supports neither preassignment nor virtual routing; run it sequentially (DispatchOptions{Parallel: false})", f.disp.Name())
	}
	sliceJobs := opts.SliceJobs
	if sliceJobs < 1 {
		sliceJobs = DefaultSliceJobs
	}
	sl := f.sliced(sliceJobs)
	if sl.cursor == nil {
		sl.cursor = stream.NewCursor(src)
	} else {
		sl.cursor.Reset(src)
	}
	// Anchor the shadow on the engines' current availability and idle
	// anchors, so a warm farm can continue a stream mid-flight — including
	// one reconfigured while idle, whose anchor moved away from freeAt.
	for s, eng := range f.engines {
		sl.freeAt[s] = eng.FreeAt()
		sl.anchor[s] = eng.IdleAnchor()
		sl.errs[s] = nil
	}
	pool := par.Default()
	// The shadow recursion prices service and wake-ups from the engines'
	// configuration; ServeSourceSliced never switches it mid-run. A
	// homogeneous farm (the overwhelmingly common case, and the only one the
	// routing index supports) shares server 0's; when the per-call scan finds
	// the engines disagree — per-server fleet policies — routing falls back
	// to the linear scans with a per-server configuration snapshot.
	cfg := f.engines[0].Config()
	uniform := true
	if isVR && !isPre {
		for _, eng := range f.engines[1:] {
			ec := eng.Config()
			if !configsEqual(&cfg, &ec) {
				uniform = false
				break
			}
		}
		if !uniform {
			if _, isCR := f.disp.(ConfigRouter); !isCR && !configFreeRouter(f.disp) {
				return 0, fmt.Errorf("farm: dispatcher %s cannot virtual-route a farm with per-server configurations (implement ConfigRouter or serve sequentially)", f.disp.Name())
			}
			if cap(sl.cfgs) < k {
				sl.cfgs = make([]queue.Config, k)
			}
			sl.cfgs = sl.cfgs[:k]
			for s, eng := range f.engines {
				sl.cfgs[s] = eng.Config()
			}
		}
	}
	ar, isAnchored := f.disp.(AnchoredRouter)
	cr, isCR := f.disp.(ConfigRouter)
	var ridx routeIndex
	if uniform && isVR && !isPre && !opts.LinearRouting {
		if sl.idx == nil {
			sl.idx = newRouteIndexFor(f.disp, sl.freeAt, sl.anchor)
		}
		if sl.idx != nil {
			sl.idx.reset(cfg)
			ridx = sl.idx
		}
	}
	// A ConfigRouter on the uniform linear path prices from the engines' live
	// configuration too: fill the snapshot with the shared cfg so routing
	// matches Pick (and the index) even when the dispatcher's own pricing
	// field is stale or zero — the fleet coordinator switches the operating
	// point every epoch and never updates dispatcher state.
	if uniform && isVR && !isPre && isCR && ridx == nil {
		if cap(sl.cfgs) < k {
			sl.cfgs = make([]queue.Config, k)
		}
		sl.cfgs = sl.cfgs[:k]
		for s := range sl.cfgs {
			sl.cfgs[s] = cfg
		}
	}
	f.recBase = 0
	recording := f.recResp != nil || f.recSrv != nil

	served := 0
	for {
		// Fill the next slice from the chunk cursor.
		slice := sl.slice[:0]
		for len(slice) < sliceJobs {
			j, ok := sl.cursor.Peek()
			if !ok {
				break
			}
			slice = append(slice, j)
			sl.cursor.Advance()
		}
		sl.slice = slice
		if len(slice) == 0 {
			return served, nil
		}

		// Route the slice serially: this is the dispatch-forced
		// synchronization the mode's name refers to.
		assign := sl.assign[:len(slice)]
		switch {
		case isPre:
			pre.Preassign(k, slice, assign)
		case ridx != nil:
			// O(log k) per job; the index commits the shadow advance itself.
			for i := range slice {
				assign[i] = ridx.route(slice[i])
			}
		case !uniform:
			// Heterogeneous: route and advance the shadow per-server from
			// the configuration snapshot, so pricing matches each engine's
			// live policy exactly.
			for i := range slice {
				if isCR {
					assign[i] = cr.RouteVirtualConfigs(sl.cfgs, sl.freeAt, sl.anchor, slice[i])
				} else {
					assign[i] = vr.RouteVirtual(sl.freeAt, slice[i])
				}
				if s := assign[i]; s >= 0 && s < k {
					nf := sl.cfgs[s].NextFreeAtAnchored(sl.freeAt[s], sl.anchor[s], slice[i])
					sl.freeAt[s], sl.anchor[s] = nf, nf
				}
			}
		default:
			for i := range slice {
				switch {
				case isCR:
					// Live-config pricing, identical to the indexed path.
					assign[i] = cr.RouteVirtualConfigs(sl.cfgs, sl.freeAt, sl.anchor, slice[i])
				case isAnchored:
					assign[i] = ar.RouteVirtualAnchored(sl.freeAt, sl.anchor, slice[i])
				default:
					assign[i] = vr.RouteVirtual(sl.freeAt, slice[i])
				}
				if s := assign[i]; s >= 0 && s < k {
					nf := cfg.NextFreeAtAnchored(sl.freeAt[s], sl.anchor[s], slice[i])
					sl.freeAt[s], sl.anchor[s] = nf, nf
				}
			}
		}
		for s := range sl.count {
			sl.count[s] = 0
		}
		for _, s := range assign {
			if s < 0 || s >= k {
				return served, fmt.Errorf("farm: dispatcher %s picked server %d of %d", f.disp.Name(), s, k)
			}
			sl.count[s]++
		}

		bucketByServer(slice, assign, sl.count, sl.offsets, sl.fill, sl.backing)
		if recording {
			// Invert the bucketing so workers can write each job's response
			// at its stream position: ord[bucket position] = slice index,
			// built by replaying the counting sort's fill pass over the
			// offsets it just computed.
			if cap(sl.ord) < len(slice) {
				sl.ord = make([]int, len(slice))
			}
			sl.ord = sl.ord[:len(slice)]
			copy(sl.fill, sl.offsets[:k])
			for i, s := range assign {
				sl.ord[sl.fill[s]] = i
				sl.fill[s]++
			}
		}

		// Advance the servers concurrently; the pool's reusable barrier is
		// the slice barrier. RunSharded pins each executor slot to the same
		// contiguous server range every slice, so workers keep their engines
		// hot across barriers instead of re-sharding them. perSrv accounts
		// only jobs actually simulated (done, not count), so a mid-substream
		// failure leaves the farm's counters consistent with its engines.
		pool.RunSharded(k, opts.Workers, sl.body)
		simulated := 0
		for s := range sl.count {
			f.perSrv[s] += sl.done[s]
			simulated += sl.done[s]
		}
		served += simulated
		f.recBase += len(slice)
		for _, err := range sl.errs {
			if err != nil {
				return served, err
			}
		}
		// Resynchronize the shadow from the engines — they agree bit for
		// bit with the NextFreeAtAnchored recursion, so this only re-anchors
		// the next slice's routing on the authoritative engine arithmetic.
		// The routing index only rebuilds if a mismatch actually appeared
		// (it never should; the check is the safety net that keeps a
		// hypothetical divergence from compounding across slices).
		if isVR {
			dirty := false
			for s, eng := range f.engines {
				fa, an := eng.FreeAt(), eng.IdleAnchor()
				if sl.freeAt[s] != fa || sl.anchor[s] != an {
					sl.freeAt[s], sl.anchor[s] = fa, an
					dirty = true
				}
			}
			if dirty && ridx != nil {
				ridx.reset(cfg)
			}
		}
	}
}
