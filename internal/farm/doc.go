// Package farm extends SleepScale to the multi-server setting the paper
// lists as future work (§7): a cluster of identical servers, each running
// its own power policy, with jobs spread across them by a dispatcher. It
// also enables the scale-out study of Gandhi & Harchol-Balter [6] — how the
// number of servers sharing a fixed aggregate load changes the value of
// dynamic power management — which the related-work section builds on.
//
// # Dispatchers
//
// A Dispatcher routes each arriving job to one of k servers; RoundRobin,
// Random, JSQ (join the shortest queue, by outstanding work), PowerOfD
// (d random choices, join the least backlogged of the sample) and
// LeastWorkLeft (earliest completion, wake-up latency included) are
// provided. Dispatchers may additionally implement one of two capability
// interfaces that unlock parallel simulation:
//
//   - Preassigner (round-robin, random): routing is independent of server
//     state, so the whole assignment can be computed up front and the
//     per-server substreams simulated concurrently.
//   - VirtualRouter (JSQ, PowerOfD, LeastWorkLeft): routing depends only on
//     each server's work-completion time, so decisions can be made against
//     a lightweight freeAt shadow advanced by queue.Config.NextFreeAt — no
//     live engines needed at routing time. LeastWorkLeft is additionally an
//     AnchoredRouter: its shadow carries each server's idle anchor so
//     wake-up pricing stays exact even after a mid-run SetConfigAt taken
//     during an idle period (queue.Config.NextFreeAtAnchored).
//
// # Drivers
//
// Three drivers cover the materialized/streamed × preassigned/dispatched
// matrix:
//
//   - Run dispatches a fully materialized, sorted job stream (parallel when
//     the dispatcher is a Preassigner, sequential otherwise).
//   - RunSources runs one server per source — routing decided by
//     construction — with servers simulating in parallel.
//   - DispatchSource is the streaming k-way dispatch loop: jobs are pulled
//     from any queue.JobSource in bounded chunks and routed through the
//     dispatcher at their arrival instants, advancing the k engines in
//     virtual-time order so JSQ sees accurate queue depths without the
//     stream ever being materialized.
//
// # Time-sliced parallel dispatch and its determinism contract
//
// DispatchSource's parallel mode (DispatchOptions.Parallel) removes the
// serial bottleneck of state-dependent dispatch: the stream is cut into
// slices at dispatch-forced synchronization points; each slice is routed
// serially — Preassign for state-independent dispatchers, the freeAt shadow
// recursion for VirtualRouters — and the per-server substreams then advance
// concurrently, with a barrier resynchronizing the shadow from the engines
// before the next slice. The contract is bit-identical determinism: because
// queue.Config.NextFreeAt mirrors Engine.Process's availability arithmetic
// operation for operation, every routing decision equals the one the
// sequential dispatch would make, each engine serves the same jobs in the
// same order, and the merge (server-ordered, through the same Farm.Finish)
// reproduces the sequential Result exactly — equivalence tests and a golden
// snapshot pin this across dispatchers, seeds and pool sizes. The slice
// size tunes only barrier frequency, never results.
//
// # Fleet-scale routing index
//
// At fleet scale the routing half of the sliced loop dominates: a linear
// shadow scan is Θ(k) per job, ~10^8 float compares per re-served stream at
// k = 10,000. The sliced driver therefore routes JSQ and LeastWorkLeft
// through an O(log k) index over the shadow (index.go): JSQ uses a
// tournament tree over (freeAt, index) with a leftmost-at-most descent for
// the all-idle case; LeastWorkLeft adds per-phase idle bitsets and a
// crossing heap so sleep-state wake pricing stays exact while only O(log k)
// state updates per decision are paid. The index is an implementation
// detail with a hard bit-identity contract — every decision equals the
// linear scan's, tie-breaks included — pinned by an equivalence suite up to
// k = 10,000 and benchmarked (indexed vs linear) in BenchmarkFarmRoute10k;
// DispatchOptions.LinearRouting disables it for A/B comparison. PowerOfD
// inspects only its d sampled servers and stays on the plain shadow.
//
// # Persistent worker pool and steady-state reuse
//
// Every parallel path in the package — Run's preassigned fan-out,
// RunSources' per-server workers, and each slice of the parallel dispatch —
// executes on the process-wide persistent pool of internal/par: workers are
// started once and parked between submissions, and the pool's reusable
// barrier replaces the per-call (previously per-slice) sync.WaitGroup
// churn. The sliced driver uses par.Pool.RunSharded, giving each executor a
// fixed contiguous server shard: the same worker touches the same engines
// slice after slice (cache-hot engines), with work stealing leveling
// imbalance and the pool's run queue keeping concurrent submissions
// parallel instead of degrading them to inline-serial.
// DispatchOptions.Workers bounds the executors a dispatch may use; results
// are identical for every bound.
//
// The sliced driver's scratch — slice buffer, routing table, bucketed
// substream backing, freeAt shadow, counters and chunk cursor — is owned by
// the Farm (slicedState) and reused across slices and calls, so the
// steady-state loop
//
//	f.Reset(cfg); src.Reset(seed); f.ServeSourceSliced(src, opts); f.FinishSummary(f.LastFree())
//
// allocates nothing once warm, matching the sequential ServeSource's
// zero-allocation contract (both CI-gated via BENCH_farm.json). One-shot
// DispatchSource calls still build fresh engines so their Results never
// alias reused storage; FinishSummary is the scalar aggregate for callers
// on the reuse path.
//
// # Heterogeneous fleets
//
// The sliced driver also serves fleets whose servers run different
// configurations — the substrate of the fleet coordinator
// (internal/fleet). Farm.Server exposes each engine for per-server
// SetConfigAt/WakeAt at epoch boundaries; the per-call uniformity scan
// notices differing configurations and routes through per-server shadow
// arithmetic, with ConfigRouter (implemented by LeastWorkLeft,
// RouteVirtualConfigs) pricing each candidate under that server's own
// phase schedule. Pricing is always live: the routing index and both
// linear arms price from the engines' current configurations exactly as
// the sequential Pick does, so a dispatcher's static Cfg field is never
// consulted inside the driver and mid-run switches reprice immediately.
// Farm.Subfarm returns a prefix view sharing the parent's engines and
// scratch, so a coordinator can serve a shrunken active set without
// rebuilding state — parked suffix servers keep accruing sleep residency
// but receive no work.
package farm
