// Package farm extends SleepScale to the multi-server setting the paper
// lists as future work (§7): a cluster of identical servers, each running
// its own power policy, with jobs spread across them by a dispatcher. It
// also enables the scale-out study of Gandhi & Harchol-Balter [6] — how the
// number of servers sharing a fixed aggregate load changes the value of
// dynamic power management — which the related-work section builds on.
//
// # Dispatchers
//
// A Dispatcher routes each arriving job to one of k servers; RoundRobin,
// Random and JSQ (join the shortest queue) are provided. Dispatchers may
// additionally implement one of two capability interfaces that unlock
// parallel simulation:
//
//   - Preassigner (round-robin, random): routing is independent of server
//     state, so the whole assignment can be computed up front and the
//     per-server substreams simulated concurrently.
//   - VirtualRouter (JSQ): routing depends only on each server's
//     work-completion time, so decisions can be made against a lightweight
//     freeAt shadow advanced by queue.Config.NextFreeAt — no live engines
//     needed at routing time.
//
// # Drivers
//
// Three drivers cover the materialized/streamed × preassigned/dispatched
// matrix:
//
//   - Run dispatches a fully materialized, sorted job stream (parallel when
//     the dispatcher is a Preassigner, sequential otherwise).
//   - RunSources runs one server per source — routing decided by
//     construction — with servers simulating in parallel.
//   - DispatchSource is the streaming k-way dispatch loop: jobs are pulled
//     from any queue.JobSource in bounded chunks and routed through the
//     dispatcher at their arrival instants, advancing the k engines in
//     virtual-time order so JSQ sees accurate queue depths without the
//     stream ever being materialized.
//
// # Time-sliced parallel dispatch and its determinism contract
//
// DispatchSource's parallel mode (DispatchOptions.Parallel) removes the
// serial bottleneck of state-dependent dispatch: the stream is cut into
// slices at dispatch-forced synchronization points; each slice is routed
// serially — Preassign for state-independent dispatchers, the freeAt shadow
// recursion for VirtualRouters — and the per-server substreams then advance
// concurrently, with a barrier resynchronizing the shadow from the engines
// before the next slice. The contract is bit-identical determinism: because
// queue.Config.NextFreeAt mirrors Engine.Process's availability arithmetic
// operation for operation, every routing decision equals the one the
// sequential dispatch would make, each engine serves the same jobs in the
// same order, and the merge (server-ordered, through the same Farm.Finish)
// reproduces the sequential Result exactly — equivalence tests and a golden
// snapshot pin this across dispatchers and seeds. The slice size tunes only
// barrier frequency, never results.
package farm
