package farm

import (
	"math"
	"math/rand"
	"testing"

	"sleepscale/internal/queue"
)

// dispatchers lists the three disciplines with fresh-state constructors, so
// every equivalence case routes from the same dispatcher state.
func dispatchers() []struct {
	name string
	mk   func() Dispatcher
} {
	return []struct {
		name string
		mk   func() Dispatcher
	}{
		{"round-robin", func() Dispatcher { return &RoundRobin{} }},
		{"random", func() Dispatcher { return &Random{Rng: rand.New(rand.NewSource(77))} }},
		{"jsq", func() Dispatcher { return JSQ{} }},
	}
}

// TestDispatchSourceMatchesRun pins the streamed dispatch loop — sequential
// and time-sliced parallel — to the materialized farm.Run reference bit for
// bit, across all three dispatchers and three seeds. This is the
// determinism contract of the parallel JSQ mode: slicing and concurrent
// simulation must never change a single routing decision or metric.
func TestDispatchSourceMatchesRun(t *testing.T) {
	const k = 4
	for _, seed := range []int64{1, 2, 3} {
		jobs := expJobs(20000, 10, 5, seed)
		for _, d := range dispatchers() {
			want := sequentialRun(t, k, testCfg(), d.mk(), jobs)

			seq, err := DispatchSource(k, testCfg(), d.mk(), &sliceSource{jobs: jobs}, DispatchOptions{})
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, d.name, err)
			}
			requireResultsEqual(t, seq, want)

			// Odd slice size straddles chunk boundaries on purpose.
			par, err := DispatchSource(k, testCfg(), d.mk(), &sliceSource{jobs: jobs},
				DispatchOptions{Parallel: true, SliceJobs: 777})
			if err != nil {
				t.Fatalf("seed %d %s parallel: %v", seed, d.name, err)
			}
			requireResultsEqual(t, par, want)
		}
	}
}

// TestDispatchParallelSliceSizeInvariance: the slice size tunes barrier
// frequency only — results must be identical for any choice, including
// slices smaller than the pull chunk.
func TestDispatchParallelSliceSizeInvariance(t *testing.T) {
	jobs := expJobs(12000, 10, 5, 8)
	const k = 3
	want, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs}, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sliceJobs := range []int{0, 1, 100, 12000, 50000} {
		got, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs},
			DispatchOptions{Parallel: true, SliceJobs: sliceJobs})
		if err != nil {
			t.Fatalf("slice %d: %v", sliceJobs, err)
		}
		requireResultsEqual(t, got, want)
	}
}

// TestJSQVirtualRouterMatchesPick: the freeAt-shadow routing must replicate
// Pick against live engines decision for decision, and the shadow recursion
// must track the engines' FreeAt exactly.
func TestJSQVirtualRouterMatchesPick(t *testing.T) {
	jobs := expJobs(5000, 12, 5, 13)
	const k = 4
	f, err := New(k, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	freeAt := make([]float64, k)
	for i, j := range jobs {
		virtual := (JSQ{}).RouteVirtual(freeAt, j)
		_, picked, err := f.Process(j)
		if err != nil {
			t.Fatal(err)
		}
		if virtual != picked {
			t.Fatalf("job %d: virtual route %d, engine pick %d", i, virtual, picked)
		}
		freeAt[virtual] = cfg.NextFreeAt(freeAt[virtual], j)
		if got := f.Server(virtual).FreeAt(); got != freeAt[virtual] {
			t.Fatalf("job %d: shadow freeAt %.17g, engine %.17g", i, freeAt[virtual], got)
		}
	}
}

// TestDispatchParallelJSQGolden is the checked-in determinism snapshot for
// the parallel JSQ merge: a fixed-seed stream across 5 servers must
// reproduce these exact aggregates. Regenerate deliberately with
// go test ./internal/farm -run ParallelJSQGolden -v and copy the logged
// values in.
func TestDispatchParallelJSQGolden(t *testing.T) {
	jobs := expJobs(30000, 18, 5, 2014)
	const k = 5
	res, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs},
		DispatchOptions{Parallel: true, SliceJobs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{
		"Jobs":          float64(res.Jobs),
		"MeanResponse":  res.MeanResponse,
		"TotalAvgPower": res.TotalAvgPower,
		"Energy":        res.Energy,
	}
	for s, sr := range res.PerServer {
		got["Server"+string(rune('0'+s))+".Jobs"] = float64(sr.Jobs)
		got["Server"+string(rune('0'+s))+".Energy"] = sr.Energy
	}
	for name, v := range got {
		t.Logf("golden %-16s %.17g", name, v)
	}
	golden := map[string]float64{
		"Jobs":           30000,
		"MeanResponse":   0.26498774294068933,
		"TotalAvgPower":  1010.7663743765854,
		"Energy":         1669046.4047101764,
		"Server0.Jobs":   7086,
		"Server0.Energy": 368790.54688545776,
		"Server1.Jobs":   6592,
		"Server1.Energy": 356102.64139828162,
		"Server2.Jobs":   6035,
		"Server2.Energy": 338186.79709980777,
		"Server3.Jobs":   5490,
		"Server3.Energy": 315473.36903038726,
		"Server4.Jobs":   4797,
		"Server4.Energy": 290493.050296242,
	}
	for name, want := range golden {
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got[name]-want) > tol {
			t.Errorf("%s = %.17g, want %.17g", name, got[name], want)
		}
	}
}

func TestDispatchSourceValidation(t *testing.T) {
	src := func() queue.JobSource { return &sliceSource{jobs: expJobs(10, 8, 5, 1)} }
	if _, err := DispatchSource(0, testCfg(), JSQ{}, src(), DispatchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DispatchSource(2, testCfg(), nil, src(), DispatchOptions{}); err == nil {
		t.Error("nil dispatcher accepted")
	}
	if _, err := DispatchSource(2, testCfg(), JSQ{}, nil, DispatchOptions{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := DispatchSource(2, queue.Config{}, JSQ{}, src(), DispatchOptions{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := DispatchSource(2, queue.Config{}, JSQ{}, src(), DispatchOptions{Parallel: true}); err == nil {
		t.Error("invalid config accepted in parallel mode")
	}
}

// pickOnly is a dispatcher with neither Preassign nor RouteVirtual: the
// parallel mode must reject it rather than silently serialize.
type pickOnly struct{}

func (pickOnly) Pick(f *Farm, _ queue.Job) int { return 0 }
func (pickOnly) Name() string                  { return "pick-only" }

func TestDispatchParallelRejectsPlainDispatcher(t *testing.T) {
	src := &sliceSource{jobs: expJobs(10, 8, 5, 1)}
	if _, err := DispatchSource(2, testCfg(), pickOnly{}, src, DispatchOptions{Parallel: true}); err == nil {
		t.Fatal("plain Pick dispatcher accepted in parallel mode")
	}
	// Sequentially it is fine.
	if _, err := DispatchSource(2, testCfg(), pickOnly{}, &sliceSource{jobs: expJobs(10, 8, 5, 1)}, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
}

// badRouter routes out of range through the virtual path.
type badRouter struct{ JSQ }

func (badRouter) RouteVirtual(freeAt []float64, _ queue.Job) int { return len(freeAt) }

func TestDispatchParallelRejectsBadRoute(t *testing.T) {
	src := &sliceSource{jobs: expJobs(100, 8, 5, 5)}
	if _, err := DispatchSource(3, testCfg(), badRouter{}, src, DispatchOptions{Parallel: true}); err == nil {
		t.Fatal("out-of-range virtual route accepted")
	}
}

func TestDispatchSourceSurfacesSourceError(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		src := &failingFarmSource{sliceSource{jobs: expJobs(10, 8, 5, 2)}}
		if _, err := DispatchSource(2, testCfg(), JSQ{}, src, DispatchOptions{Parallel: parallel}); err == nil {
			t.Errorf("parallel=%v: source error not surfaced", parallel)
		}
	}
}

// TestFarmResetReuse: a Reset farm re-serving the same stream must
// reproduce the first run exactly, with no state leaking across runs.
func TestFarmResetReuse(t *testing.T) {
	jobs := expJobs(10000, 10, 5, 17)
	f, err := New(3, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		t.Helper()
		if err := f.Reset(testCfg()); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ServeSource(&sliceSource{jobs: jobs}); err != nil {
			t.Fatal(err)
		}
		res, err := f.Finish(f.Server(0).FreeAt())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	again := run()
	if first.Jobs != again.Jobs || first.MeanResponse != again.MeanResponse ||
		first.Energy != again.Energy || first.TotalAvgPower != again.TotalAvgPower {
		t.Fatalf("reset farm diverged:\nfirst %+v\nagain %+v", first, again)
	}
}

// TestServeSourceZeroAllocSteadyState pins the streamed dispatch loop's
// allocation contract at the package level (the root-level benchmark gates
// it in CI): after warm-up, Reset + ServeSource allocates nothing.
func TestServeSourceZeroAllocSteadyState(t *testing.T) {
	jobs := expJobs(5000, 10, 5, 23)
	f, err := New(4, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	src := &sliceSource{jobs: jobs}
	if _, err := f.ServeSource(src); err != nil { // warm buffers
		t.Fatal(err)
	}
	cfg := testCfg()
	avg := testing.AllocsPerRun(3, func() {
		if err := f.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		src.pos = 0
		if _, err := f.ServeSource(src); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Reset+ServeSource allocates %.1f/run, want 0", avg)
	}
}
