package farm

import (
	"math"
	"math/rand"
	"testing"

	"sleepscale/internal/queue"
)

// dispatchers lists every discipline with fresh-state constructors, so each
// equivalence case routes from the same dispatcher state.
func dispatchers() []struct {
	name string
	mk   func() Dispatcher
} {
	return []struct {
		name string
		mk   func() Dispatcher
	}{
		{"round-robin", func() Dispatcher { return &RoundRobin{} }},
		{"random", func() Dispatcher { return &Random{Rng: rand.New(rand.NewSource(77))} }},
		{"jsq", func() Dispatcher { return JSQ{} }},
		{"pd2", func() Dispatcher { return &PowerOfD{D: 2, Rng: rand.New(rand.NewSource(55))} }},
		{"pd3", func() Dispatcher { return &PowerOfD{D: 3, Rng: rand.New(rand.NewSource(56))} }},
		{"lwl", func() Dispatcher { return &LeastWorkLeft{Cfg: testCfg()} }},
	}
}

// TestDispatchSourceMatchesRun pins the streamed dispatch loop — sequential
// and time-sliced parallel — to the materialized farm.Run reference bit for
// bit, across every dispatcher (power-of-d and least-work-left included),
// three seeds, and pool sizes 1, 2 and GOMAXPROCS (via DispatchOptions.
// Workers). This is the determinism contract of the pooled parallel mode:
// slicing, the persistent worker pool and its interleaving must never change
// a single routing decision or metric.
func TestDispatchSourceMatchesRun(t *testing.T) {
	const k = 4
	for _, seed := range []int64{1, 2, 3} {
		jobs := expJobs(20000, 10, 5, seed)
		for _, d := range dispatchers() {
			want := sequentialRun(t, k, testCfg(), d.mk(), jobs)

			seq, err := DispatchSource(k, testCfg(), d.mk(), &sliceSource{jobs: jobs}, DispatchOptions{})
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, d.name, err)
			}
			requireResultsEqual(t, seq, want)

			// 0 = the whole process-wide pool (GOMAXPROCS executors).
			for _, workers := range []int{1, 2, 0} {
				// Odd slice size straddles chunk boundaries on purpose.
				par, err := DispatchSource(k, testCfg(), d.mk(), &sliceSource{jobs: jobs},
					DispatchOptions{Parallel: true, SliceJobs: 777, Workers: workers})
				if err != nil {
					t.Fatalf("seed %d %s parallel workers=%d: %v", seed, d.name, workers, err)
				}
				requireResultsEqual(t, par, want)
			}
		}
	}
}

// TestDispatchParallelSliceSizeInvariance: the slice size tunes barrier
// frequency only — results must be identical for any choice, including
// slices smaller than the pull chunk.
func TestDispatchParallelSliceSizeInvariance(t *testing.T) {
	jobs := expJobs(12000, 10, 5, 8)
	const k = 3
	want, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs}, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sliceJobs := range []int{0, 1, 100, 12000, 50000} {
		got, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs},
			DispatchOptions{Parallel: true, SliceJobs: sliceJobs})
		if err != nil {
			t.Fatalf("slice %d: %v", sliceJobs, err)
		}
		requireResultsEqual(t, got, want)
	}
}

// TestJSQVirtualRouterMatchesPick: the freeAt-shadow routing must replicate
// Pick against live engines decision for decision, and the shadow recursion
// must track the engines' FreeAt exactly.
func TestJSQVirtualRouterMatchesPick(t *testing.T) {
	jobs := expJobs(5000, 12, 5, 13)
	const k = 4
	f, err := New(k, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	freeAt := make([]float64, k)
	for i, j := range jobs {
		virtual := (JSQ{}).RouteVirtual(freeAt, j)
		_, picked, err := f.Process(j)
		if err != nil {
			t.Fatal(err)
		}
		if virtual != picked {
			t.Fatalf("job %d: virtual route %d, engine pick %d", i, virtual, picked)
		}
		freeAt[virtual] = cfg.NextFreeAt(freeAt[virtual], j)
		if got := f.Server(virtual).FreeAt(); got != freeAt[virtual] {
			t.Fatalf("job %d: shadow freeAt %.17g, engine %.17g", i, freeAt[virtual], got)
		}
	}
}

// TestDispatchParallelJSQGolden is the checked-in determinism snapshot for
// the parallel JSQ merge: a fixed-seed stream across 5 servers must
// reproduce these exact aggregates. Regenerate deliberately with
// go test ./internal/farm -run ParallelJSQGolden -v and copy the logged
// values in.
func TestDispatchParallelJSQGolden(t *testing.T) {
	jobs := expJobs(30000, 18, 5, 2014)
	const k = 5
	res, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs},
		DispatchOptions{Parallel: true, SliceJobs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{
		"Jobs":          float64(res.Jobs),
		"MeanResponse":  res.MeanResponse,
		"TotalAvgPower": res.TotalAvgPower,
		"Energy":        res.Energy,
	}
	for s, sr := range res.PerServer {
		got["Server"+string(rune('0'+s))+".Jobs"] = float64(sr.Jobs)
		got["Server"+string(rune('0'+s))+".Energy"] = sr.Energy
	}
	for name, v := range got {
		t.Logf("golden %-16s %.17g", name, v)
	}
	golden := map[string]float64{
		"Jobs":           30000,
		"MeanResponse":   0.26498774294068933,
		"TotalAvgPower":  1010.7663743765854,
		"Energy":         1669046.4047101764,
		"Server0.Jobs":   7086,
		"Server0.Energy": 368790.54688545776,
		"Server1.Jobs":   6592,
		"Server1.Energy": 356102.64139828162,
		"Server2.Jobs":   6035,
		"Server2.Energy": 338186.79709980777,
		"Server3.Jobs":   5490,
		"Server3.Energy": 315473.36903038726,
		"Server4.Jobs":   4797,
		"Server4.Energy": 290493.050296242,
	}
	for name, want := range golden {
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got[name]-want) > tol {
			t.Errorf("%s = %.17g, want %.17g", name, got[name], want)
		}
	}
}

func TestDispatchSourceValidation(t *testing.T) {
	src := func() queue.JobSource { return &sliceSource{jobs: expJobs(10, 8, 5, 1)} }
	if _, err := DispatchSource(0, testCfg(), JSQ{}, src(), DispatchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DispatchSource(2, testCfg(), nil, src(), DispatchOptions{}); err == nil {
		t.Error("nil dispatcher accepted")
	}
	if _, err := DispatchSource(2, testCfg(), JSQ{}, nil, DispatchOptions{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := DispatchSource(2, queue.Config{}, JSQ{}, src(), DispatchOptions{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := DispatchSource(2, queue.Config{}, JSQ{}, src(), DispatchOptions{Parallel: true}); err == nil {
		t.Error("invalid config accepted in parallel mode")
	}
}

// pickOnly is a dispatcher with neither Preassign nor RouteVirtual: the
// parallel mode must reject it rather than silently serialize.
type pickOnly struct{}

func (pickOnly) Pick(f *Farm, _ queue.Job) int { return 0 }
func (pickOnly) Name() string                  { return "pick-only" }

func TestDispatchParallelRejectsPlainDispatcher(t *testing.T) {
	src := &sliceSource{jobs: expJobs(10, 8, 5, 1)}
	if _, err := DispatchSource(2, testCfg(), pickOnly{}, src, DispatchOptions{Parallel: true}); err == nil {
		t.Fatal("plain Pick dispatcher accepted in parallel mode")
	}
	// Sequentially it is fine.
	if _, err := DispatchSource(2, testCfg(), pickOnly{}, &sliceSource{jobs: expJobs(10, 8, 5, 1)}, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
}

// badRouter routes out of range through the virtual path.
type badRouter struct{ JSQ }

func (badRouter) RouteVirtual(freeAt []float64, _ queue.Job) int { return len(freeAt) }

func TestDispatchParallelRejectsBadRoute(t *testing.T) {
	src := &sliceSource{jobs: expJobs(100, 8, 5, 5)}
	if _, err := DispatchSource(3, testCfg(), badRouter{}, src, DispatchOptions{Parallel: true}); err == nil {
		t.Fatal("out-of-range virtual route accepted")
	}
}

func TestDispatchSourceSurfacesSourceError(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		src := &failingFarmSource{sliceSource{jobs: expJobs(10, 8, 5, 2)}}
		if _, err := DispatchSource(2, testCfg(), JSQ{}, src, DispatchOptions{Parallel: parallel}); err == nil {
			t.Errorf("parallel=%v: source error not surfaced", parallel)
		}
	}
}

// TestServeSourceSlicedWarmReuse: a persistent farm driving Reset +
// ServeSourceSliced over a rewound stream — the steady-state pattern the
// pooled parallel benchmark measures — must reproduce the one-shot
// DispatchSource result exactly, run after run.
func TestServeSourceSlicedWarmReuse(t *testing.T) {
	jobs := expJobs(20000, 12, 5, 41)
	const k = 4
	want, err := DispatchSource(k, testCfg(), JSQ{}, &sliceSource{jobs: jobs},
		DispatchOptions{Parallel: true, SliceJobs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(k, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		if err := f.Reset(testCfg()); err != nil {
			t.Fatal(err)
		}
		served, err := f.ServeSourceSliced(&sliceSource{jobs: jobs},
			DispatchOptions{Parallel: true, SliceJobs: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if served != len(jobs) {
			t.Fatalf("run %d served %d jobs, want %d", run, served, len(jobs))
		}
		sum := f.FinishSummary(f.LastFree())
		if sum.Jobs != want.Jobs || sum.MeanResponse != want.MeanResponse ||
			sum.TotalAvgPower != want.TotalAvgPower || sum.Energy != want.Energy {
			t.Fatalf("run %d summary diverged from one-shot dispatch:\n got %+v\nwant Jobs=%d Mean=%.17g Power=%.17g Energy=%.17g",
				run, sum, want.Jobs, want.MeanResponse, want.TotalAvgPower, want.Energy)
		}
	}
}

// TestServeSourceSlicedZeroAllocSteadyState pins the pooled parallel mode's
// allocation contract: once the farm's sliced scratch and the worker pool
// are warm, Reset + ServeSourceSliced + FinishSummary allocates nothing.
// Skipped under -race: the instrumented scheduler makes pool-side
// allocation counts meaningless (the non-race CI bench gate enforces the
// same contract via BENCH_farm.json).
func TestServeSourceSlicedZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	jobs := expJobs(8000, 12, 5, 43)
	f, err := New(4, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	src := &sliceSource{jobs: jobs}
	opts := DispatchOptions{Parallel: true, SliceJobs: 1000}
	if _, err := f.ServeSourceSliced(src, opts); err != nil { // warm scratch + pool
		t.Fatal(err)
	}
	cfg := testCfg()
	avg := testing.AllocsPerRun(3, func() {
		if err := f.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		src.pos = 0
		if _, err := f.ServeSourceSliced(src, opts); err != nil {
			t.Fatal(err)
		}
		_ = f.FinishSummary(f.LastFree())
	})
	if avg != 0 {
		t.Errorf("steady-state sliced dispatch allocates %.1f/run, want 0", avg)
	}
}

// TestServeSourceSlicedPartialFailureConsistency: when an engine fails mid
// substream (a poisoned job), the farm's per-server counters must still
// agree with what each engine actually processed — a retained Farm stays
// internally consistent after an error return, like the sequential path.
func TestServeSourceSlicedPartialFailureConsistency(t *testing.T) {
	jobs := expJobs(3000, 10, 5, 71)
	jobs[1500].Size = -1 // poison one job mid-stream
	const k = 3
	f, err := New(k, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	served, err := f.ServeSourceSliced(&sliceSource{jobs: jobs},
		DispatchOptions{Parallel: true, SliceJobs: 500})
	if err == nil {
		t.Fatal("poisoned stream accepted")
	}
	total := 0
	for s := 0; s < k; s++ {
		if got, want := f.perSrv[s], f.Server(s).Snapshot().Jobs; got != want {
			t.Errorf("server %d: perSrv %d != engine jobs %d after failure", s, got, want)
		}
		total += f.perSrv[s]
	}
	if served != total {
		t.Errorf("served %d != per-server total %d", served, total)
	}
}

// TestFinishSummaryMatchesFinish: the scalar fleet aggregate must equal the
// corresponding fields of the full Finish result bit for bit.
func TestFinishSummaryMatchesFinish(t *testing.T) {
	jobs := expJobs(10000, 10, 5, 47)
	f, err := New(3, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ServeSource(&sliceSource{jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	at := f.LastFree()
	sum := f.FinishSummary(at)
	res, err := f.Finish(at)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != res.Jobs || sum.MeanResponse != res.MeanResponse ||
		sum.TotalAvgPower != res.TotalAvgPower || sum.Energy != res.Energy {
		t.Fatalf("FinishSummary %+v diverges from Finish (Jobs=%d Mean=%.17g Power=%.17g Energy=%.17g)",
			sum, res.Jobs, res.MeanResponse, res.TotalAvgPower, res.Energy)
	}
}

// TestPowerOfDProperties: pd1 is random dispatch with PowerOfD's comparator,
// pdK with a huge sample approximates JSQ's routing (ties may differ from
// index order under sampling, so compare response quality, not decisions),
// and dispatcher names identify the sample size.
func TestPowerOfDProperties(t *testing.T) {
	jobs := expJobs(30000, 12, 5, 59)
	const k = 4
	pd1, err := Run(k, testCfg(), &PowerOfD{D: 1, Rng: rand.New(rand.NewSource(7))}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	pd2, err := Run(k, testCfg(), &PowerOfD{D: 2, Rng: rand.New(rand.NewSource(7))}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	jsq, err := Run(k, testCfg(), JSQ{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// The two-choices literature's claim, at this load a comfortable margin:
	// d=2 beats random (d=1), and full JSQ beats d=2.
	if pd2.MeanResponse >= pd1.MeanResponse {
		t.Errorf("pd2 response %v not below pd1 (random) %v", pd2.MeanResponse, pd1.MeanResponse)
	}
	if jsq.MeanResponse > pd2.MeanResponse {
		t.Errorf("jsq response %v above pd2 %v", jsq.MeanResponse, pd2.MeanResponse)
	}
	if (&PowerOfD{D: 2}).Name() != "pd2" || (&PowerOfD{D: 3}).Name() != "pd3" {
		t.Error("PowerOfD name")
	}
	if (&LeastWorkLeft{}).Name() != "least-work-left" {
		t.Error("LeastWorkLeft name")
	}
}

// TestLeastWorkLeftPricesFirstWakeAfterIdleSwitch is the regression test for
// the mispriced idle anchor: a SetConfigAt during an idle period restarts the
// sleep-entry clock at the switch instant while freeAt stays at the last
// departure. Pricing the first wake from freeAt instead of the moved anchor
// charges a wake latency the engine will never pay — and here that made Pick
// route to the busier server.
func TestLeastWorkLeftPricesFirstWakeAfterIdleSwitch(t *testing.T) {
	cfg := testCfg()
	cfg.Phases[0].EnterAfter = 3 // sleep entered 3 s after the queue empties
	cfg.Phases[0].WakeLatency = 5
	lwl := &LeastWorkLeft{Cfg: cfg}
	f, err := New(2, cfg, lwl)
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 departs at 10 and idles; server 1 is busy until 16.
	if _, err := f.Server(0).Process(queue.Job{Arrival: 0, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Server(1).Process(queue.Job{Arrival: 0, Size: 16}); err != nil {
		t.Fatal(err)
	}
	// The switch lands at t = 12, mid-idle on server 0: its sleep-entry clock
	// restarts there, so at t = 13 it is still in the pre-sleep window
	// (offset 1 < 3) and wakes for free.
	if err := f.Server(0).SetConfigAt(12, cfg); err != nil {
		t.Fatal(err)
	}
	j := queue.Job{Arrival: 13, Size: 1}
	// True completions: server 0 starts at 13 with no wake → done 14;
	// server 1 finishes its backlog at 16 → done 17. The old freeAt-anchored
	// pricing charged server 0 the 5 s wake (offset 13−10 = 3 ≥ 3) → 19, and
	// picked server 1.
	if done := f.Server(0).NextFreeAt(j); done != 14 {
		t.Fatalf("server 0 priced at %g, want 14 (no wake inside the restarted pre-sleep window)", done)
	}
	if got := lwl.Pick(f, j); got != 0 {
		t.Fatalf("Pick routed to server %d, want 0: the first wake after the idle switch is mispriced", got)
	}
	// The engine confirms the pricing: serving on server 0 departs at 14.
	resp, err := f.Server(0).Process(j)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 1 {
		t.Fatalf("response %g, want 1 (start at arrival, no wake)", resp)
	}
}

// TestLeastWorkLeftPricesWakeups: with one server mid-job and the others
// deep asleep behind a long wake latency, least-work-left routes a new
// arrival to the nearly-free busy server — the decision JSQ (backlog only)
// gets wrong — and its virtual routing mirrors Pick.
func TestLeastWorkLeftPricesWakeups(t *testing.T) {
	cfg := testCfg()
	cfg.Phases[0].WakeLatency = 5 // sleeping servers pay 5 s to wake
	lwl := &LeastWorkLeft{Cfg: cfg}
	f, err := New(3, cfg, lwl)
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 takes a 1 s job at t=1: one idle second of sleep, a 5 s
	// wake, service from t=6, free at t=7.
	if _, srv, err := f.Process(queue.Job{Arrival: 1, Size: 1}); err != nil || srv != 0 {
		t.Fatalf("first job: srv=%d err=%v", srv, err)
	}
	// At t=6.9 server 0 is still busy (free at 7) but finishing within
	// 0.1 s; servers 1 and 2 are asleep and would pay 5 s of wake. JSQ
	// would route to an idle server (backlog 0); LWL must keep it on 0.
	j := queue.Job{Arrival: 6.9, Size: 1}
	if got := (JSQ{}).Pick(f, j); got == 0 {
		t.Fatalf("JSQ picked the busy server, the scenario is not discriminating")
	}
	if got := lwl.Pick(f, j); got != 0 {
		t.Errorf("LWL picked server %d, want the nearly-free busy server 0", got)
	}
	freeAt := []float64{f.Server(0).FreeAt(), 0, 0}
	if got := lwl.RouteVirtual(freeAt, j); got != 0 {
		t.Errorf("LWL virtual route %d, want 0", got)
	}
}

// TestFarmResetReuse: a Reset farm re-serving the same stream must
// reproduce the first run exactly, with no state leaking across runs.
func TestFarmResetReuse(t *testing.T) {
	jobs := expJobs(10000, 10, 5, 17)
	f, err := New(3, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		t.Helper()
		if err := f.Reset(testCfg()); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ServeSource(&sliceSource{jobs: jobs}); err != nil {
			t.Fatal(err)
		}
		res, err := f.Finish(f.Server(0).FreeAt())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	again := run()
	if first.Jobs != again.Jobs || first.MeanResponse != again.MeanResponse ||
		first.Energy != again.Energy || first.TotalAvgPower != again.TotalAvgPower {
		t.Fatalf("reset farm diverged:\nfirst %+v\nagain %+v", first, again)
	}
}

// TestServeSourceZeroAllocSteadyState pins the streamed dispatch loop's
// allocation contract at the package level (the root-level benchmark gates
// it in CI): after warm-up, Reset + ServeSource allocates nothing.
func TestServeSourceZeroAllocSteadyState(t *testing.T) {
	jobs := expJobs(5000, 10, 5, 23)
	f, err := New(4, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	src := &sliceSource{jobs: jobs}
	if _, err := f.ServeSource(src); err != nil { // warm buffers
		t.Fatal(err)
	}
	cfg := testCfg()
	avg := testing.AllocsPerRun(3, func() {
		if err := f.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		src.pos = 0
		if _, err := f.ServeSource(src); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Reset+ServeSource allocates %.1f/run, want 0", avg)
	}
}

// hetConfigs returns three mutually distinct server configurations for the
// heterogeneous routing tests: different frequencies, powers and sleep
// schedules, as a per-server fleet policy would install.
func hetConfigs() []queue.Config {
	a := testCfg()
	b := testCfg()
	b.Frequency = 0.7
	b.ActivePower = 180
	b.IdlePower = 180
	b.Phases = []queue.SleepPhase{
		{Name: "sleep", Power: 40, WakeLatency: 5e-3, EnterAfter: 0.2},
	}
	c := testCfg()
	c.Frequency = 0.5
	c.Phases = nil // never sleeps
	return []queue.Config{a, b, c}
}

// hetFarm builds a 3-server farm with per-server configurations.
func hetFarm(t *testing.T, disp Dispatcher) *Farm {
	t.Helper()
	cfgs := hetConfigs()
	f, err := New(len(cfgs), cfgs[0], disp)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < len(cfgs); s++ {
		if err := f.Server(s).SetConfigAt(0, cfgs[s]); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestServeSourceSlicedHeterogeneousMatchesSequential pins the per-server
// configuration routing path — RouteVirtualConfigs for least-work-left, the
// configuration-free shadow for JSQ and power-of-d — to the sequential Pick
// dispatch over live engines, bit for bit.
func TestServeSourceSlicedHeterogeneousMatchesSequential(t *testing.T) {
	disps := []struct {
		name string
		mk   func() Dispatcher
	}{
		{"jsq", func() Dispatcher { return JSQ{} }},
		{"pd2", func() Dispatcher { return &PowerOfD{D: 2, Rng: rand.New(rand.NewSource(42))} }},
		{"lwl", func() Dispatcher { return &LeastWorkLeft{Cfg: hetConfigs()[0]} }},
	}
	for _, seed := range []int64{1, 2} {
		jobs := expJobs(20000, 6, 5, seed)
		for _, d := range disps {
			// Sequential reference: Pick consults each engine's live config.
			ref := hetFarm(t, d.mk())
			for i, j := range jobs {
				if _, _, err := ref.Process(j); err != nil {
					t.Fatalf("%s seed %d job %d: %v", d.name, seed, i, err)
				}
			}
			want, err := ref.Finish(ref.LastFree())
			if err != nil {
				t.Fatal(err)
			}

			got := hetFarm(t, d.mk())
			// Odd slice size straddles slice boundaries on purpose.
			if _, err := got.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{SliceJobs: 777}); err != nil {
				t.Fatalf("%s seed %d sliced: %v", d.name, seed, err)
			}
			res, err := got.Finish(got.LastFree())
			if err != nil {
				t.Fatal(err)
			}
			requireResultsEqual(t, res, want)
		}
	}
}

// bareVirtualRouter virtual-routes like JSQ but is neither a ConfigRouter
// nor one of the known configuration-free types, so a heterogeneous farm
// must reject it rather than silently misprice the shadow.
type bareVirtualRouter struct{}

func (bareVirtualRouter) Pick(f *Farm, j queue.Job) int { return JSQ{}.Pick(f, j) }
func (bareVirtualRouter) RouteVirtual(freeAt []float64, j queue.Job) int {
	return JSQ{}.RouteVirtual(freeAt, j)
}
func (bareVirtualRouter) Name() string { return "bare-virtual" }

func TestServeSourceSlicedHeterogeneousRejectsUnawareRouter(t *testing.T) {
	jobs := expJobs(100, 6, 5, 3)
	f := hetFarm(t, bareVirtualRouter{})
	if _, err := f.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{}); err == nil {
		t.Fatal("heterogeneous farm accepted a config-unaware virtual router")
	}
	// The same dispatcher over a homogeneous farm is fine.
	hom, err := New(3, testCfg(), bareVirtualRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hom.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{}); err != nil {
		t.Fatalf("homogeneous farm rejected: %v", err)
	}
}

// TestRecordServeStreamOrder: RecordServe must land every response and
// server pick at the job's stream position, across slices.
func TestRecordServeStreamOrder(t *testing.T) {
	jobs := expJobs(5000, 8, 5, 17)
	ref := hetFarm(t, JSQ{})
	wantResp := make([]float64, len(jobs))
	wantSrv := make([]int, len(jobs))
	for i, j := range jobs {
		r, s, err := ref.Process(j)
		if err != nil {
			t.Fatal(err)
		}
		wantResp[i], wantSrv[i] = r, s
	}

	f := hetFarm(t, JSQ{})
	resp := make([]float64, len(jobs))
	srv := make([]int, len(jobs))
	f.RecordServe(resp, srv)
	if _, err := f.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{SliceJobs: 333}); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if resp[i] != wantResp[i] || srv[i] != wantSrv[i] {
			t.Fatalf("job %d: got (%.17g, %d), want (%.17g, %d)", i, resp[i], srv[i], wantResp[i], wantSrv[i])
		}
	}
}

// TestSubfarmPrefixServes: a prefix Subfarm routes only within the prefix
// and shares engine state with its parent.
func TestSubfarmPrefixServes(t *testing.T) {
	jobs := expJobs(2000, 8, 5, 19)
	f, err := New(4, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.Subfarm(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := make([]int, len(jobs))
	sub.RecordServe(nil, srv)
	if _, err := sub.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, s := range srv {
		if s > 1 {
			t.Fatalf("job %d routed to server %d outside the 2-prefix", i, s)
		}
	}
	if f.Server(0).FreeAt() == 0 || f.Server(2).FreeAt() != 0 {
		t.Fatal("subfarm serving did not share prefix engines (or leaked past the prefix)")
	}
	if _, err := f.Subfarm(0); err == nil {
		t.Error("subfarm size 0 accepted")
	}
	if _, err := f.Subfarm(5); err == nil {
		t.Error("oversized subfarm accepted")
	}
}
