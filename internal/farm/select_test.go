package farm

import (
	"testing"

	"sleepscale/internal/queue"
)

// maskedPick is the reference "linear scan over all k servers, skipping the
// excluded ones" the Select view must match: JSQ and least-work-left
// comparisons over the full farm with down servers masked out, ties toward
// the lowest surviving index.
func maskedPick(f *Farm, disp Dispatcher, healthy []int, j queue.Job) int {
	best, first := -1, true
	var bestKey float64
	for _, s := range healthy {
		var key float64
		switch disp.(type) {
		case JSQ:
			key = f.engines[s].Backlog(j.Arrival)
		case *LeastWorkLeft:
			key = f.engines[s].NextFreeAt(j)
		default:
			panic("maskedPick: unsupported dispatcher")
		}
		if first || key < bestKey {
			best, bestKey, first = s, key, false
		}
	}
	return best
}

// TestSelectViewMatchesMaskedScan pins the tentpole routing contract: serving
// through a Select view — on the O(log k) index and both linear arms — routes
// every job to exactly the server a masked linear scan over the full farm
// (down servers skipped) would pick, with bit-identical responses.
func TestSelectViewMatchesMaskedScan(t *testing.T) {
	const k = 16
	healthy := []int{0, 2, 3, 7, 8, 9, 14}
	jobs := expJobs(4000, 10*float64(len(healthy)), 5, 11)

	for _, d := range indexedDispatchers(deepCfg()) {
		// Reference: masked sequential scan over the full farm.
		ref, err := New(k, deepCfg(), d.mk())
		if err != nil {
			t.Fatal(err)
		}
		refResp := make([]float64, len(jobs))
		refSrv := make([]int, len(jobs))
		for i, j := range jobs {
			s := maskedPick(ref, ref.disp, healthy, j)
			r, err := ref.engines[s].Process(j)
			if err != nil {
				t.Fatalf("%s ref job %d: %v", d.name, i, err)
			}
			refResp[i], refSrv[i] = r, s
		}

		for _, linear := range []bool{false, true} {
			full, err := New(k, deepCfg(), d.mk())
			if err != nil {
				t.Fatal(err)
			}
			view, err := full.Select(nil, healthy)
			if err != nil {
				t.Fatal(err)
			}
			resp := make([]float64, len(jobs))
			srv := make([]int, len(jobs))
			view.RecordServe(resp, srv)
			n, err := view.ServeSourceSliced(&sliceSource{jobs: jobs},
				DispatchOptions{Parallel: true, SliceJobs: 333, LinearRouting: linear})
			if err != nil {
				t.Fatalf("%s linear=%v: %v", d.name, linear, err)
			}
			if n != len(jobs) {
				t.Fatalf("%s linear=%v served %d of %d", d.name, linear, n, len(jobs))
			}
			for i := range jobs {
				if got := healthy[srv[i]]; got != refSrv[i] {
					t.Fatalf("%s linear=%v job %d routed to %d, masked scan picked %d", d.name, linear, i, got, refSrv[i])
				}
				if resp[i] != refResp[i] {
					t.Fatalf("%s linear=%v job %d response %g != %g", d.name, linear, i, resp[i], refResp[i])
				}
			}
			// Engine-level totals agree server for server.
			for _, s := range healthy {
				if g, w := full.engines[s].Snapshot(), ref.engines[s].Snapshot(); g != w {
					t.Fatalf("%s linear=%v server %d totals %+v != %+v", d.name, linear, s, g, w)
				}
			}
		}
	}
}

// TestSelectViewResize drives one reused view through subsets of different
// sizes — the crash/repair cadence — checking the resized scratch and the
// rebound routing index stay bit-identical to fresh views.
func TestSelectViewResize(t *testing.T) {
	const k = 12
	phases := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 2, 4, 6, 8},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{3, 11},
	}
	for _, d := range indexedDispatchers(deepCfg()) {
		reused, err := New(k, deepCfg(), d.mk())
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(k, deepCfg(), d.mk())
		if err != nil {
			t.Fatal(err)
		}
		var view *Farm
		base := 0.0
		for pi, healthy := range phases {
			jobs := expJobs(1500, 6*float64(len(healthy)), 5, int64(40+pi))
			for i := range jobs {
				jobs[i].Arrival += base
			}
			base = jobs[len(jobs)-1].Arrival + 1

			view, err = reused.Select(view, healthy)
			if err != nil {
				t.Fatal(err)
			}
			respA := make([]float64, len(jobs))
			srvA := make([]int, len(jobs))
			view.RecordServe(respA, srvA)
			if _, err := view.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{Parallel: true, SliceJobs: 256}); err != nil {
				t.Fatalf("%s phase %d reused: %v", d.name, pi, err)
			}

			fv, err := fresh.Select(nil, healthy)
			if err != nil {
				t.Fatal(err)
			}
			respB := make([]float64, len(jobs))
			srvB := make([]int, len(jobs))
			fv.RecordServe(respB, srvB)
			if _, err := fv.ServeSourceSliced(&sliceSource{jobs: jobs}, DispatchOptions{Parallel: true, SliceJobs: 256}); err != nil {
				t.Fatalf("%s phase %d fresh: %v", d.name, pi, err)
			}
			for i := range jobs {
				if respA[i] != respB[i] || srvA[i] != srvB[i] {
					t.Fatalf("%s phase %d job %d: reused (%g, %d) != fresh (%g, %d)",
						d.name, pi, i, respA[i], srvA[i], respB[i], srvB[i])
				}
			}
		}
	}
}

// TestSelectRejects covers the selection guards.
func TestSelectRejects(t *testing.T) {
	f, err := New(4, deepCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Select(nil, nil); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, err := f.Select(nil, []int{2, 1}); err == nil {
		t.Fatal("descending selection accepted")
	}
	if _, err := f.Select(nil, []int{1, 1}); err == nil {
		t.Fatal("duplicate selection accepted")
	}
	if _, err := f.Select(nil, []int{0, 4}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
	if _, err := f.Select(nil, []int{-1}); err == nil {
		t.Fatal("negative selection accepted")
	}
}
