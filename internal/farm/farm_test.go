package farm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sleepscale/internal/queue"
)

func testCfg() queue.Config {
	return queue.Config{
		Frequency:    1,
		FreqExponent: 1,
		ActivePower:  250,
		IdlePower:    250,
		Phases: []queue.SleepPhase{
			{Name: "sleep", Power: 75.5, WakeLatency: 1e-3, EnterAfter: 0},
		},
	}
}

func expJobs(n int, lambda, mu float64, seed int64) []queue.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = queue.Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}
	return jobs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, testCfg(), &RoundRobin{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(2, testCfg(), nil); err == nil {
		t.Error("nil dispatcher accepted")
	}
	if _, err := New(2, queue.Config{}, &RoundRobin{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSingleServerFarmMatchesEngine(t *testing.T) {
	jobs := expJobs(20000, 2, 5, 1)
	farmRes, err := Run(1, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	single, err := queue.Simulate(jobs, testCfg(), queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if farmRes.Jobs != single.Jobs {
		t.Fatalf("jobs %d != %d", farmRes.Jobs, single.Jobs)
	}
	if math.Abs(farmRes.MeanResponse-single.MeanResponse) > 1e-9 {
		t.Errorf("mean response %v != %v", farmRes.MeanResponse, single.MeanResponse)
	}
	if math.Abs(farmRes.Energy-single.Energy) > 1e-6 {
		t.Errorf("energy %v != %v", farmRes.Energy, single.Energy)
	}
}

func TestRoundRobinBalance(t *testing.T) {
	jobs := expJobs(10000, 4, 5, 2)
	res, err := Run(4, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, share := range res.JobShare {
		if math.Abs(share-0.25) > 1e-9 {
			t.Errorf("server %d share %v, want exactly 0.25", i, share)
		}
	}
}

func TestRandomRoughBalance(t *testing.T) {
	jobs := expJobs(20000, 4, 5, 3)
	res, err := Run(4, testCfg(), &Random{Rng: rand.New(rand.NewSource(9))}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, share := range res.JobShare {
		if math.Abs(share-0.25) > 0.02 {
			t.Errorf("server %d share %v, want ≈0.25", i, share)
		}
	}
}

func TestJSQBeatsRandomOnResponse(t *testing.T) {
	// At moderate load, join-shortest-queue should clearly beat random
	// dispatch on mean response.
	jobs := expJobs(30000, 12, 5, 4) // 4 servers, per-server ρ = 0.6
	jsq, err := Run(4, testCfg(), JSQ{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Run(4, testCfg(), &Random{Rng: rand.New(rand.NewSource(5))}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jsq.MeanResponse >= rnd.MeanResponse {
		t.Errorf("JSQ response %v not below random %v", jsq.MeanResponse, rnd.MeanResponse)
	}
}

// TestScaleOutSleepOpportunity reproduces the [6]-style observation: with a
// fixed aggregate load spread over more servers, each server idles more, so
// sleep states recover a larger share of the (larger) provisioned capacity —
// total power grows sub-linearly in k.
func TestScaleOutSleepOpportunity(t *testing.T) {
	const (
		mu          = 5.0
		totalLambda = 4.0 // aggregate ρ·µ for one server at 0.8
	)
	jobs := expJobs(40000, totalLambda, mu, 6)
	var powers []float64
	for _, k := range []int{1, 2, 4} {
		res, err := Run(k, testCfg(), JSQ{}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		powers = append(powers, res.TotalAvgPower)
	}
	// Doubling the farm must cost far less than doubling the power: the
	// idle servers sleep. (Busy power 250, sleep 75.5: a fully idle extra
	// server adds ~75.5 W, not 250 W.)
	if powers[1] > powers[0]*1.6 {
		t.Errorf("2 servers draw %.1f W vs 1 server %.1f W — sleep not exploited",
			powers[1], powers[0])
	}
	if powers[2] > powers[0]*2.6 {
		t.Errorf("4 servers draw %.1f W vs 1 server %.1f W — sleep not exploited",
			powers[2], powers[0])
	}
	// And response improves with scale-out.
	r1, err := Run(1, testCfg(), JSQ{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(4, testCfg(), JSQ{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r4.MeanResponse >= r1.MeanResponse {
		t.Errorf("scale-out did not improve response: %v vs %v",
			r4.MeanResponse, r1.MeanResponse)
	}
}

func TestPerServerPolicySwitch(t *testing.T) {
	f, err := New(2, testCfg(), &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	// Slow server 1 down mid-run; its queued jobs take twice as long.
	slow := testCfg()
	slow.Frequency = 0.5
	if _, _, err := f.Process(queue.Job{Arrival: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Process(queue.Job{Arrival: 0.1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Server(1).SetConfigAt(2, slow); err != nil {
		t.Fatal(err)
	}
	resp, srv, err := f.Process(queue.Job{Arrival: 3, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srv != 0 { // round robin: third job goes to server 0
		t.Fatalf("job went to server %d", srv)
	}
	_ = resp
	resp, srv, err = f.Process(queue.Job{Arrival: 3, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srv != 1 {
		t.Fatalf("job went to server %d", srv)
	}
	// Server 1 at f=0.5: service takes 2 s plus 1 ms wake.
	if math.Abs(resp-2.001) > 1e-9 {
		t.Errorf("slowed server response = %v, want 2.001", resp)
	}
}

func TestDispatcherNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "round-robin" {
		t.Error("round robin name")
	}
	if (&Random{}).Name() != "random" {
		t.Error("random name")
	}
	if (JSQ{}).Name() != "jsq" {
		t.Error("jsq name")
	}
}

func TestFinishEmptyFarm(t *testing.T) {
	f, err := New(3, testCfg(), JSQ{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Finish(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 0 {
		t.Errorf("jobs = %d", res.Jobs)
	}
	// Three idle servers for 100 s at 75.5 W each.
	want := 3 * 100 * 75.5
	if math.Abs(res.Energy-want) > 1e-6 {
		t.Errorf("idle energy = %v, want %v", res.Energy, want)
	}
}

// sequentialRun replays Run's sequential path explicitly (dispatch one job at
// a time through a Farm), as the reference for the parallel preassigned path.
func sequentialRun(t *testing.T, k int, cfg queue.Config, disp Dispatcher, jobs []queue.Job) Result {
	t.Helper()
	f, err := New(k, cfg, disp)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if _, _, err := f.Process(j); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	last := 0.0
	for i := 0; i < f.Size(); i++ {
		if ft := f.Server(i).FreeAt(); ft > last {
			last = ft
		}
	}
	res, err := f.Finish(last)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireResultsEqual(t *testing.T, got, want Result) {
	t.Helper()
	if got.Jobs != want.Jobs || got.MeanResponse != want.MeanResponse ||
		got.TotalAvgPower != want.TotalAvgPower || got.Energy != want.Energy {
		t.Fatalf("aggregate diverges:\n got Jobs=%d Mean=%.17g Power=%.17g Energy=%.17g\nwant Jobs=%d Mean=%.17g Power=%.17g Energy=%.17g",
			got.Jobs, got.MeanResponse, got.TotalAvgPower, got.Energy,
			want.Jobs, want.MeanResponse, want.TotalAvgPower, want.Energy)
	}
	if len(got.PerServer) != len(want.PerServer) || len(got.JobShare) != len(want.JobShare) {
		t.Fatalf("shape diverges: %d/%d servers, %d/%d shares",
			len(got.PerServer), len(want.PerServer), len(got.JobShare), len(want.JobShare))
	}
	for i := range got.PerServer {
		g, w := got.PerServer[i], want.PerServer[i]
		if g.Jobs != w.Jobs || g.Energy != w.Energy || g.MeanResponse != w.MeanResponse ||
			g.ResponseP95 != w.ResponseP95 || g.Duration != w.Duration || g.Wakes != w.Wakes {
			t.Fatalf("server %d diverges:\n got %+v\nwant %+v", i, g, w)
		}
		if got.JobShare[i] != want.JobShare[i] {
			t.Fatalf("server %d share %.17g != %.17g", i, got.JobShare[i], want.JobShare[i])
		}
	}
}

// TestRunParallelMatchesSequentialRoundRobin pins the preassigned parallel
// path to the sequential dispatch bit-for-bit.
func TestRunParallelMatchesSequentialRoundRobin(t *testing.T) {
	jobs := expJobs(30000, 8, 5, 3)
	for _, k := range []int{2, 4, 7} {
		want := sequentialRun(t, k, testCfg(), &RoundRobin{}, jobs)
		got, err := Run(k, testCfg(), &RoundRobin{}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsEqual(t, got, want)
	}
}

// TestRunParallelMatchesSequentialRandom does the same for the random
// dispatcher: Preassign must consume the Rng exactly as Pick would.
func TestRunParallelMatchesSequentialRandom(t *testing.T) {
	jobs := expJobs(30000, 8, 5, 4)
	const k = 5
	want := sequentialRun(t, k, testCfg(), &Random{Rng: rand.New(rand.NewSource(99))}, jobs)
	got, err := Run(k, testCfg(), &Random{Rng: rand.New(rand.NewSource(99))}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, got, want)
}

// TestRunJSQStaysSequential: JSQ routing depends on queue state, so it must
// not implement the preassigned fast path.
func TestRunJSQStaysSequential(t *testing.T) {
	if _, ok := interface{}(JSQ{}).(Preassigner); ok {
		t.Fatal("JSQ must not implement Preassigner: its routing is state-dependent")
	}
}

// TestRunParallelRejectsBadPreassign: an out-of-range preassignment must
// surface as an error, mirroring the sequential dispatcher check.
type badPreassigner struct{ RoundRobin }

func (badPreassigner) Preassign(k int, jobs []queue.Job, dst []int) {
	for i := range jobs {
		dst[i] = k // out of range
	}
}

func TestRunParallelRejectsBadPreassign(t *testing.T) {
	jobs := expJobs(100, 8, 5, 5)
	if _, err := Run(3, testCfg(), &badPreassigner{}, jobs); err == nil {
		t.Fatal("out-of-range preassignment accepted")
	}
}

// sliceSource adapts a job slice to queue.JobSource for RunSources tests.
type sliceSource struct {
	jobs []queue.Job
	pos  int
}

func (s *sliceSource) Next(buf []queue.Job) (int, bool) {
	n := copy(buf, s.jobs[s.pos:])
	s.pos += n
	return n, s.pos < len(s.jobs)
}

// TestRunSourcesMatchesPreassigned: feeding each server its round-robin
// substream as a source must reproduce the dispatched run bit for bit — the
// sources are just a streamed expression of the same routing.
func TestRunSourcesMatchesPreassigned(t *testing.T) {
	jobs := expJobs(30000, 8, 5, 11)
	const k = 4
	want, err := Run(k, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([][]queue.Job, k)
	for i, j := range jobs {
		subs[i%k] = append(subs[i%k], j)
	}
	srcs := make([]queue.JobSource, k)
	for s := range srcs {
		srcs[s] = &sliceSource{jobs: subs[s]}
	}
	got, err := RunSources(testCfg(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, got, want)
}

func TestRunSourcesValidation(t *testing.T) {
	if _, err := RunSources(testCfg(), nil); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := RunSources(queue.Config{}, []queue.JobSource{&sliceSource{}}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := RunSources(testCfg(), []queue.JobSource{&sliceSource{}, nil}); err == nil {
		t.Error("nil source accepted")
	}
}

// failingFarmSource exposes a deferred error.
type failingFarmSource struct{ sliceSource }

func (f *failingFarmSource) Err() error { return errSynthetic }

var errSynthetic = fmt.Errorf("synthetic farm source failure")

func TestRunSourcesSurfacesSourceError(t *testing.T) {
	srcs := []queue.JobSource{
		&sliceSource{jobs: expJobs(10, 8, 5, 1)},
		&failingFarmSource{sliceSource{jobs: expJobs(10, 8, 5, 2)}},
	}
	if _, err := RunSources(testCfg(), srcs); err == nil {
		t.Fatal("source error not surfaced")
	}
}

// TestPooledScratchStableAcrossRuns: the preassigned path's pooled scratch
// and engines must not leak state between runs — repeated identical runs
// stay bit-identical, including after an interleaved differently-shaped run.
func TestPooledScratchStableAcrossRuns(t *testing.T) {
	jobs := expJobs(20000, 8, 5, 21)
	first, err := Run(4, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Different shape in between re-dirties the pooled buffers.
	if _, err := Run(7, testCfg(), &RoundRobin{}, jobs[:5000]); err != nil {
		t.Fatal(err)
	}
	again, err := Run(4, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, again, first)
}

// TestPooledScratchConcurrentRuns exercises pool handout under the race
// detector: concurrent preassigned runs must not share scratch.
func TestPooledScratchConcurrentRuns(t *testing.T) {
	jobs := expJobs(8000, 8, 5, 31)
	want, err := Run(3, testCfg(), &RoundRobin{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	results := make([]Result, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = Run(3, testCfg(), &RoundRobin{}, jobs)
		}(g)
	}
	wg.Wait()
	for g := range errs {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		requireResultsEqual(t, results[g], want)
	}
}
