package farm

import (
	"math/rand"
	"testing"

	"sleepscale/internal/par"
	"sleepscale/internal/queue"
)

// deepCfg is a three-phase sleep ladder whose boundaries (0.05 s, 0.5 s, 2 s)
// fall inside the test streams' idle gaps, so the least-work-left index
// exercises every bucket and bucket crossing, not just the pre-sleep window.
func deepCfg() queue.Config {
	return queue.Config{
		Frequency: 1, FreqExponent: 1, ActivePower: 250, IdlePower: 120,
		Phases: []queue.SleepPhase{
			{Name: "c1", Power: 60, WakeLatency: 1e-3, EnterAfter: 0.05},
			{Name: "c3", Power: 30, WakeLatency: 0.01, EnterAfter: 0.5},
			{Name: "c6", Power: 8, WakeLatency: 0.05, EnterAfter: 2},
		},
	}
}

// indexedDispatchers returns fresh constructors for the disciplines that have
// an O(log k) routing index, priced by cfg.
func indexedDispatchers(cfg queue.Config) []struct {
	name string
	mk   func() Dispatcher
} {
	return []struct {
		name string
		mk   func() Dispatcher
	}{
		{"jsq", func() Dispatcher { return JSQ{} }},
		{"lwl", func() Dispatcher { return &LeastWorkLeft{Cfg: cfg} }},
	}
}

// TestRoutingIndexEquivalenceFullDispatch pins indexed routing to the linear
// scans through complete simulations: for every dispatcher, seed and fleet
// size, the sequential Pick dispatch, the sliced dispatch with LinearRouting
// and the sliced dispatch through the index must produce bit-identical
// results. k = 1 degenerates the tree to a single leaf; 7 is a non-power of
// two (padded leaves in play); 1000 runs the descent ten levels deep.
func TestRoutingIndexEquivalenceFullDispatch(t *testing.T) {
	for _, k := range []int{1, 7, 1000} {
		jobs := 20000
		if k >= 1000 {
			jobs = 4000 // the O(k)-per-job reference paths dominate the cost
		}
		// The shared dispatchers() table prices least-work-left with
		// testCfg; these farms run deepCfg, so build a fresh table. The
		// lwl entry deliberately leaves Cfg zero: every dispatch path —
		// Pick, the index, and the linear ConfigRouter arm — prices from
		// the engines' live configuration, so the static field must not
		// matter.
		disps := []struct {
			name string
			mk   func() Dispatcher
		}{
			{"round-robin", func() Dispatcher { return &RoundRobin{} }},
			{"random", func() Dispatcher { return &Random{Rng: rand.New(rand.NewSource(77))} }},
			{"jsq", func() Dispatcher { return JSQ{} }},
			{"pd2", func() Dispatcher { return &PowerOfD{D: 2, Rng: rand.New(rand.NewSource(55))} }},
			{"pd3", func() Dispatcher { return &PowerOfD{D: 3, Rng: rand.New(rand.NewSource(56))} }},
			{"lwl", func() Dispatcher { return &LeastWorkLeft{} }},
		}
		for _, seed := range []int64{1, 2, 3} {
			stream := expJobs(jobs, 10*float64(k), 5, seed)
			for _, d := range disps {
				want, err := DispatchSource(k, deepCfg(), d.mk(), &sliceSource{jobs: stream}, DispatchOptions{})
				if err != nil {
					t.Fatalf("k=%d seed=%d %s sequential: %v", k, seed, d.name, err)
				}
				indexed, err := DispatchSource(k, deepCfg(), d.mk(), &sliceSource{jobs: stream},
					DispatchOptions{Parallel: true, SliceJobs: 777})
				if err != nil {
					t.Fatalf("k=%d seed=%d %s indexed: %v", k, seed, d.name, err)
				}
				requireResultsEqual(t, indexed, want)
				linear, err := DispatchSource(k, deepCfg(), d.mk(), &sliceSource{jobs: stream},
					DispatchOptions{Parallel: true, SliceJobs: 777, LinearRouting: true})
				if err != nil {
					t.Fatalf("k=%d seed=%d %s linear: %v", k, seed, d.name, err)
				}
				requireResultsEqual(t, linear, want)
			}
		}
	}
}

// shadowState builds a randomized freeAt/anchor shadow: freeAt scattered
// around the stream's opening arrivals (so servers straddle the busy/idle
// boundary), with a quarter of the anchors pushed past freeAt — the state a
// SetConfigAt during an idle period leaves behind.
func shadowState(k int, seed int64) (freeAt, anchor []float64) {
	rng := rand.New(rand.NewSource(seed))
	freeAt = make([]float64, k)
	anchor = make([]float64, k)
	for i := range freeAt {
		freeAt[i] = rng.Float64() * 3
		anchor[i] = freeAt[i]
		if rng.Intn(4) == 0 {
			anchor[i] += rng.Float64() * 2
		}
	}
	return freeAt, anchor
}

// routeLinearReference advances one job through the linear-scan reference
// path exactly as the sliced driver's uniform linear arm does: a
// ConfigRouter prices from the live engine configuration snapshot, others
// use their anchored scan (or plain RouteVirtual); then the driver's shadow
// commit.
func routeLinearReference(disp Dispatcher, engCfg queue.Config, cfgs []queue.Config, freeAt, anchor []float64, j queue.Job) int {
	var s int
	if crr, ok := disp.(ConfigRouter); ok {
		s = crr.RouteVirtualConfigs(cfgs, freeAt, anchor, j)
	} else if ar, ok := disp.(AnchoredRouter); ok {
		s = ar.RouteVirtualAnchored(freeAt, anchor, j)
	} else {
		s = disp.(VirtualRouter).RouteVirtual(freeAt, j)
	}
	nf := engCfg.NextFreeAtAnchored(freeAt[s], anchor[s], j)
	freeAt[s], anchor[s] = nf, nf
	return s
}

// TestRoutingIndexEquivalence10k drives the indexes decision by decision
// against the linear scans at fleet scale — k = 10,000, where a full farm
// comparison would be dominated by engine accounting — asserting every routing
// decision and the final shadow agree bitwise. The least-work-left cases
// include a dispatcher Cfg differing from (or zeroed against) the engine
// configuration: routing must price from the live engine configuration and
// ignore the dispatcher's static field, exactly as the linear ConfigRouter
// path does. One index instance is reused across all cases via reset, which
// is the rebuild path the sliced driver exercises per call.
func TestRoutingIndexEquivalence10k(t *testing.T) {
	const k = 10000
	slowEng := deepCfg()
	slowEng.Frequency = 0.8
	cases := []struct {
		name   string
		mk     func() Dispatcher
		engCfg queue.Config
	}{
		{"jsq", func() Dispatcher { return JSQ{} }, deepCfg()},
		{"lwl", func() Dispatcher { return &LeastWorkLeft{Cfg: deepCfg()} }, deepCfg()},
		{"lwl-stale-cfg", func() Dispatcher { return &LeastWorkLeft{Cfg: deepCfg()} }, slowEng},
		{"lwl-zero-cfg", func() Dispatcher { return &LeastWorkLeft{} }, deepCfg()},
	}
	for _, tc := range cases {
		disp := tc.mk()
		cfgs := make([]queue.Config, k)
		for s := range cfgs {
			cfgs[s] = tc.engCfg
		}
		var idx routeIndex
		var idxFree, idxAnchor []float64
		for _, seed := range []int64{1, 2, 3} {
			stream := expJobs(2000, 300, 5, seed)
			linFree, linAnchor := shadowState(k, seed*101)
			if idx == nil {
				idxFree = make([]float64, k)
				idxAnchor = make([]float64, k)
				idx = newRouteIndexFor(disp, idxFree, idxAnchor)
				if idx == nil {
					t.Fatalf("%s: no route index", tc.name)
				}
			}
			copy(idxFree, linFree)
			copy(idxAnchor, linAnchor)
			idx.reset(tc.engCfg)
			for i, j := range stream {
				want := routeLinearReference(disp, tc.engCfg, cfgs, linFree, linAnchor, j)
				got := idx.route(j)
				if got != want {
					t.Fatalf("%s seed=%d job %d (t=%g): indexed route %d, linear route %d",
						tc.name, seed, i, j.Arrival, got, want)
				}
			}
			for s := range linFree {
				if idxFree[s] != linFree[s] || idxAnchor[s] != linAnchor[s] {
					t.Fatalf("%s seed=%d: shadow diverges at server %d: indexed (%.17g, %.17g) linear (%.17g, %.17g)",
						tc.name, seed, s, idxFree[s], idxAnchor[s], linFree[s], linAnchor[s])
				}
			}
		}
	}
}

// TestRoutingIndexRebuildAfterReset is the index lifecycle property: a warm
// farm Reset and re-served — same stream or a different one — must match a
// fresh farm bit for bit, which forces the cached index (and the anchored
// shadow) to rebuild correctly instead of leaking state across runs.
func TestRoutingIndexRebuildAfterReset(t *testing.T) {
	const k = 64
	streamA := expJobs(8000, 400, 5, 7)
	streamB := expJobs(5000, 250, 4, 8)
	for _, d := range indexedDispatchers(deepCfg()) {
		f, err := New(k, deepCfg(), d.mk())
		if err != nil {
			t.Fatal(err)
		}
		serve := func(stream []queue.Job) Summary {
			t.Helper()
			if err := f.Reset(deepCfg()); err != nil {
				t.Fatal(err)
			}
			if _, err := f.ServeSourceSliced(&sliceSource{jobs: stream}, DispatchOptions{Parallel: true, SliceJobs: 333}); err != nil {
				t.Fatalf("%s: %v", d.name, err)
			}
			return f.FinishSummary(f.LastFree())
		}
		fresh := func(stream []queue.Job) Summary {
			t.Helper()
			res, err := DispatchSource(k, deepCfg(), d.mk(), &sliceSource{jobs: stream}, DispatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return Summary{Jobs: res.Jobs, MeanResponse: res.MeanResponse, TotalAvgPower: res.TotalAvgPower, Energy: res.Energy}
		}
		wantA, wantB := fresh(streamA), fresh(streamB)
		// Warm runs: A, then B (different stream through the same index),
		// then A again (rebuild after serving something else).
		for i, c := range []struct {
			stream []queue.Job
			want   Summary
		}{{streamA, wantA}, {streamB, wantB}, {streamA, wantA}} {
			if got := serve(c.stream); got != c.want {
				t.Fatalf("%s run %d: warm farm %+v, fresh farm %+v", d.name, i, got, c.want)
			}
		}
	}
}

// TestSlicedDispatchAgreesAcrossIdleSwitch pins the anchored shadow: after a
// SetConfigAt lands during an idle period (the idle anchor moves past
// freeAt), the sliced dispatch — indexed and linear — must still route
// exactly as the sequential Pick path. Before the anchor shadow both virtual
// paths assumed anchor == freeAt and diverged here.
func TestSlicedDispatchAgreesAcrossIdleSwitch(t *testing.T) {
	const k = 8
	warm := expJobs(600, 40, 5, 3)
	tail := expJobs(600, 40, 5, 4)
	switchAt := warm[len(warm)-1].Arrival + 1.5 // inside the idle gap for most servers
	for i := range tail {
		tail[i].Arrival += switchAt + 0.5
	}
	for _, d := range indexedDispatchers(deepCfg()) {
		serve := func(opts DispatchOptions) Summary {
			t.Helper()
			f, err := New(k, deepCfg(), d.mk())
			if err != nil {
				t.Fatal(err)
			}
			run := func(stream []queue.Job) {
				t.Helper()
				if opts.Parallel {
					if _, err := f.ServeSourceSliced(&sliceSource{jobs: stream}, opts); err != nil {
						t.Fatalf("%s: %v", d.name, err)
					}
				} else if _, err := f.ServeSource(&sliceSource{jobs: stream}); err != nil {
					t.Fatalf("%s: %v", d.name, err)
				}
			}
			run(warm)
			for s := 0; s < k; s++ {
				if err := f.Server(s).SetConfigAt(switchAt, deepCfg()); err != nil {
					t.Fatal(err)
				}
			}
			run(tail)
			return f.FinishSummary(f.LastFree())
		}
		want := serve(DispatchOptions{})
		if got := serve(DispatchOptions{Parallel: true, SliceJobs: 97}); got != want {
			t.Fatalf("%s indexed diverges across idle switch:\n got %+v\nwant %+v", d.name, got, want)
		}
		if got := serve(DispatchOptions{Parallel: true, SliceJobs: 97, LinearRouting: true}); got != want {
			t.Fatalf("%s linear diverges across idle switch:\n got %+v\nwant %+v", d.name, got, want)
		}
	}
}

// TestSlicedDispatchStaysPooled fails if the sliced parallel mode's per-slice
// fan-out ran inline serial on a multi-executor pool — the silent degradation
// the run-queue pool redesign removed. On a single-executor default pool the
// parallel path is structurally serial, so there is nothing to assert.
func TestSlicedDispatchStaysPooled(t *testing.T) {
	pool := par.Default()
	if pool.Size() < 2 {
		t.Skipf("default pool has %d executor(s); parallel path is structurally serial here", pool.Size())
	}
	before := pool.Stats()
	jobs := expJobs(20000, 40, 5, 9)
	if _, err := DispatchSource(16, deepCfg(), JSQ{}, &sliceSource{jobs: jobs},
		DispatchOptions{Parallel: true, SliceJobs: 512}); err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	if after.Inline != before.Inline {
		t.Errorf("sliced dispatch ran %d slice barriers inline serial on a %d-executor pool",
			after.Inline-before.Inline, pool.Size())
	}
	if after.Pooled == before.Pooled {
		t.Error("sliced dispatch never reached the worker pool")
	}
}
