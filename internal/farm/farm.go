package farm

import (
	"fmt"
	"math/rand"
	"sync"

	"sleepscale/internal/par"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
)

// Dispatcher routes each arriving job to one of k servers.
type Dispatcher interface {
	// Pick returns the index of the server that should serve j.
	Pick(f *Farm, j queue.Job) int
	// Name identifies the dispatcher in reports.
	Name() string
}

// Preassigner is the optional fast path for dispatchers whose routing does
// not depend on server state (round-robin, random — not JSQ): Preassign
// computes the server index for every job of a sorted stream up front, which
// lets Run simulate the per-server substreams in parallel and merge the
// results deterministically. Preassign must consume exactly the same
// dispatcher state (counters, randomness) as the equivalent sequence of Pick
// calls, so the two paths route identically.
type Preassigner interface {
	Preassign(k int, jobs []queue.Job, dst []int)
}

// RoundRobin cycles through servers in order.
type RoundRobin struct{ next int }

// Pick implements Dispatcher.
func (r *RoundRobin) Pick(f *Farm, _ queue.Job) int {
	i := r.next % f.Size()
	r.next++
	return i
}

// Preassign implements Preassigner.
func (r *RoundRobin) Preassign(k int, jobs []queue.Job, dst []int) {
	for i := range jobs {
		dst[i] = r.next % k
		r.next++
	}
}

// Name implements Dispatcher.
func (r *RoundRobin) Name() string { return "round-robin" }

// Random routes uniformly at random.
type Random struct{ Rng *rand.Rand }

// Pick implements Dispatcher.
func (r *Random) Pick(f *Farm, _ queue.Job) int { return r.Rng.Intn(f.Size()) }

// Preassign implements Preassigner; it draws from the Rng in arrival order,
// matching the Pick sequence draw for draw.
func (r *Random) Preassign(k int, jobs []queue.Job, dst []int) {
	for i := range jobs {
		dst[i] = r.Rng.Intn(k)
	}
}

// Name implements Dispatcher.
func (r *Random) Name() string { return "random" }

// JSQ joins the shortest queue: the server with the least outstanding work
// at the arrival instant (ties break toward the lowest index).
type JSQ struct{}

// Pick implements Dispatcher.
func (JSQ) Pick(f *Farm, j queue.Job) int {
	best, bestWork := 0, f.engines[0].Backlog(j.Arrival)
	for i := 1; i < len(f.engines); i++ {
		if w := f.engines[i].Backlog(j.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}

// Name implements Dispatcher.
func (JSQ) Name() string { return "jsq" }

// Farm is a cluster of identical single-server queues.
type Farm struct {
	engines []*queue.Engine
	disp    Dispatcher
	perSrv  []int
	// chunk is the farm-owned pull buffer of ServeSource, allocated on
	// first use so repeated Reset+ServeSource cycles are allocation-free.
	chunk []queue.Job
	// sl is the reusable scratch of ServeSourceSliced, allocated on first
	// use so repeated sliced parallel runs are allocation-free too.
	sl *slicedState
	// recResp/recSrv, when armed via RecordServe, receive each sliced-served
	// job's response time and server index at the job's stream position;
	// recBase is the running stream offset within one serve call.
	recResp []float64
	recSrv  []int
	recBase int
}

// New builds a farm of k servers, each starting idle at time 0 under cfg,
// with the given dispatcher.
func New(k int, cfg queue.Config, disp Dispatcher) (*Farm, error) {
	if k < 1 {
		return nil, fmt.Errorf("farm: size %d < 1", k)
	}
	if disp == nil {
		return nil, fmt.Errorf("farm: nil dispatcher")
	}
	f := &Farm{disp: disp, perSrv: make([]int, k)}
	for i := 0; i < k; i++ {
		eng, err := queue.NewEngine(cfg, 0)
		if err != nil {
			return nil, err
		}
		f.engines = append(f.engines, eng)
	}
	return f, nil
}

// Size reports the number of servers.
func (f *Farm) Size() int { return len(f.engines) }

// Reset rewinds every server to start idle at time 0 under cfg, exactly as a
// fresh New would, reusing all engine buffers, and zeroes the job counters —
// so one farm can serve many streamed runs without allocating. Dispatcher
// state (a round-robin cursor, a random source) is not touched: reseed or
// rebuild the dispatcher for reproducible replays; JSQ is stateless.
func (f *Farm) Reset(cfg queue.Config) error {
	for _, eng := range f.engines {
		if err := eng.Reset(cfg, 0); err != nil {
			return err
		}
	}
	for i := range f.perSrv {
		f.perSrv[i] = 0
	}
	return nil
}

// ServeSource dispatches every job src delivers — from its current position,
// in chunk-sized pulls — through the farm's dispatcher, returning the number
// served. This is the sequential streaming dispatch loop: engines advance in
// virtual-time (arrival) order, so state-dependent dispatchers like JSQ see
// accurate queue depths, and peak job-buffer memory is one farm-owned chunk
// however long the stream. Deferred source errors are the caller's to check
// (DispatchSource does).
func (f *Farm) ServeSource(src queue.JobSource) (int, error) {
	if f.chunk == nil {
		f.chunk = make([]queue.Job, stream.DefaultChunk)
	}
	served := 0
	for {
		n, ok := src.Next(f.chunk)
		for i := 0; i < n; i++ {
			if _, _, err := f.Process(f.chunk[i]); err != nil {
				return served + i, fmt.Errorf("farm: job %d: %w", served+i, err)
			}
		}
		served += n
		if !ok {
			return served, nil
		}
	}
}

// Server exposes server i's engine (for per-server policy switches).
func (f *Farm) Server(i int) *queue.Engine { return f.engines[i] }

// Subfarm returns a view over the first n servers: it shares the parent's
// engines and dispatcher — dispatcher state (a round-robin cursor, a random
// source) advances across parent and view alike — with its own job counters
// and serving scratch. Serving through the view routes over servers [0, n)
// only, which is how the fleet coordinator removes parked servers from
// routing (the active set is always a prefix); the parent still finishes and
// reports all k engines. Views stay valid across the parent's Reset.
func (f *Farm) Subfarm(n int) (*Farm, error) {
	if n < 1 || n > len(f.engines) {
		return nil, fmt.Errorf("farm: subfarm size %d of a %d-server farm", n, len(f.engines))
	}
	return &Farm{engines: f.engines[:n], disp: f.disp, perSrv: make([]int, n)}, nil
}

// Select builds (or refills) a compact view over an arbitrary subset of the
// farm's servers: idx names parent server indices in strictly ascending
// order, and the view's server i is the parent's idx[i]. Like Subfarm the
// view shares the parent's engines and dispatcher, with its own counters and
// serving scratch — but the subset need not be a prefix, which is how the
// fleet coordinator excludes crashed servers from routing while parked and
// healthy servers keep arbitrary positions. Because the view is compact and
// idx ascending, every dispatcher's lowest-index tie break resolves to the
// lowest surviving parent index: routing through the view is exactly the
// parent's routing with the excluded servers skipped, on the O(log k) index
// and both linear arms alike.
//
// Pass the previous return value as view to reuse its storage (including the
// sliced-dispatch scratch, which resizes in place when the subset size
// changes); pass nil to start one. The view stays valid until the parent's
// engines are replaced — Reset keeps it alive.
func (f *Farm) Select(view *Farm, idx []int) (*Farm, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("farm: empty server selection")
	}
	if view == nil {
		view = &Farm{}
	}
	view.disp = f.disp
	view.engines = view.engines[:0]
	prev := -1
	for _, s := range idx {
		if s <= prev || s >= len(f.engines) {
			return nil, fmt.Errorf("farm: selection index %d (after %d) of a %d-server farm; indices must be ascending and in range", s, prev, len(f.engines))
		}
		prev = s
		view.engines = append(view.engines, f.engines[s])
	}
	view.perSrv = resizeInts(view.perSrv, len(idx))
	for i := range view.perSrv {
		view.perSrv[i] = 0
	}
	return view, nil
}

// RecordServe arms per-job recording for subsequent sliced serves: every job
// the next ServeSourceSliced call simulates writes its response time to
// resp[i] and its routed server index to srv[i], where i is the job's
// position in the served stream (restarting at 0 each call). Either slice
// may be nil to skip that column; both must cover every job the call serves.
// Recording stays armed until the next RecordServe; RecordServe(nil, nil)
// disarms, returning the serve path to zero recording overhead.
func (f *Farm) RecordServe(resp []float64, srv []int) {
	f.recResp, f.recSrv = resp, srv
}

// Process dispatches and serves one job, returning its response time and
// the chosen server. Jobs must arrive in non-decreasing order.
func (f *Farm) Process(j queue.Job) (response float64, server int, err error) {
	server = f.disp.Pick(f, j)
	if server < 0 || server >= len(f.engines) {
		return 0, 0, fmt.Errorf("farm: dispatcher %s picked server %d of %d",
			f.disp.Name(), server, len(f.engines))
	}
	resp, err := f.engines[server].Process(j)
	if err != nil {
		return 0, server, err
	}
	f.perSrv[server]++
	return resp, server, nil
}

// Result aggregates a farm run.
type Result struct {
	// PerServer holds each server's individual result.
	PerServer []queue.Result
	// Jobs is the total served.
	Jobs int
	// MeanResponse is the job-weighted mean response across servers.
	MeanResponse float64
	// TotalAvgPower is the sum of per-server average powers — the
	// cluster's steady draw in watts.
	TotalAvgPower float64
	// Energy is total joules.
	Energy float64
	// JobShare[i] is the fraction of jobs server i handled.
	JobShare []float64
}

// Finish closes every server at time at and aggregates.
func (f *Farm) Finish(at float64) (Result, error) {
	out := Result{JobShare: make([]float64, len(f.engines))}
	var respSum float64
	for _, eng := range f.engines {
		res, err := eng.Finish(at)
		if err != nil {
			return Result{}, err
		}
		out.PerServer = append(out.PerServer, res)
		out.Jobs += res.Jobs
		respSum += res.MeanResponse * float64(res.Jobs)
		out.TotalAvgPower += res.AvgPower
		out.Energy += res.Energy
	}
	if out.Jobs > 0 {
		out.MeanResponse = respSum / float64(out.Jobs)
		for i := range f.perSrv {
			out.JobShare[i] = float64(f.perSrv[i]) / float64(out.Jobs)
		}
	}
	return out, nil
}

// Summary is the scalar aggregate of a farm run: the fleet-wide quantities of
// Result without the per-server results, residency maps or response samples —
// producing one allocates nothing and never aliases farm storage, so it is
// what the steady-state reuse loops (Reset + serve + FinishSummary) report.
type Summary struct {
	// Jobs is the total served across servers.
	Jobs int
	// MeanResponse is the job-weighted mean response across servers.
	MeanResponse float64
	// TotalAvgPower is the sum of per-server average powers, in watts.
	TotalAvgPower float64
	// Energy is total joules.
	Energy float64
}

// FinishSummary closes every server at time at and returns the scalar
// fleet aggregate. Unlike Finish it materializes no residency maps and
// exposes no samples, so the farm can be Reset and reused without
// invalidating the return value — the farm-level analogue of
// queue.Engine.FinishSummary.
func (f *Farm) FinishSummary(at float64) Summary {
	var out Summary
	var respSum float64
	for _, eng := range f.engines {
		sum := eng.FinishSummary(at)
		out.Jobs += sum.Jobs
		respSum += sum.MeanResponse * float64(sum.Jobs)
		out.TotalAvgPower += sum.AvgPower
		out.Energy += sum.Energy
	}
	if out.Jobs > 0 {
		out.MeanResponse = respSum / float64(out.Jobs)
	}
	return out
}

// LastFree reports the latest work-completion time across the farm's servers
// — the natural Finish instant of a drained stream.
func (f *Farm) LastFree() float64 { return lastFree(f.engines) }

// Run is a convenience: dispatch a whole sorted job stream and finish at the
// last departure across servers. When the dispatcher routes independently of
// server state (it implements Preassigner), the per-server substreams are
// simulated in parallel — each server's engine driven by one worker — and
// merged in server order, reproducing the sequential result exactly. The
// parallel path draws its routing and bucketing scratch (the job-stream-sized
// backing array included) from a shared pool, so repeated scale-out sweeps
// settle into steady-state reuse; engines stay per-call, so returned
// Results never alias pooled storage.
func Run(k int, cfg queue.Config, disp Dispatcher, jobs []queue.Job) (Result, error) {
	if pre, ok := disp.(Preassigner); ok && k > 1 && len(jobs) > 0 {
		if err := cfg.Validate(); err != nil {
			return Result{}, err
		}
		sc := scratchPool.Get().(*runScratch)
		res, err := sc.runPreassigned(k, cfg, disp, pre, jobs)
		scratchPool.Put(sc)
		return res, err
	}
	f, err := New(k, cfg, disp)
	if err != nil {
		return Result{}, err
	}
	for i, j := range jobs {
		if _, _, err := f.Process(j); err != nil {
			return Result{}, fmt.Errorf("farm: job %d: %w", i, err)
		}
	}
	return f.Finish(lastFree(f.engines))
}

// lastFree reports the latest departure across engines.
func lastFree(engines []*queue.Engine) float64 {
	last := 0.0
	for _, eng := range engines {
		if t := eng.FreeAt(); t > last {
			last = t
		}
	}
	return last
}

// runScratch is the reusable state of one preassigned parallel run: the
// routing table, the bucketed substreams' backing array and the per-server
// counters. Pooling it takes the per-call bucketing allocation out of
// repeated scale-out sweeps — the farm-level counterpart of the queue
// package's evaluator pool. Engines are deliberately NOT pooled: the
// returned Result.PerServer[i].Responses alias engine samples, and pooled
// engines would let a later (or concurrent) Run corrupt results a caller
// still holds.
type runScratch struct {
	assign  []int
	offsets []int
	fill    []int
	perSrv  []int
	backing []queue.Job
	errs    []error
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// resizeInts returns s with length n, reusing capacity; contents are
// unspecified (callers overwrite).
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// bucketByServer fills backing with jobs grouped into contiguous per-server
// substreams — a counting sort on assign that preserves arrival order within
// each server, shared by the materialized preassigned path and the
// time-sliced dispatch driver. counts must already tally assign; offsets
// (length k+1) and fill are scratch, overwritten. On return,
// backing[offsets[s]:offsets[s+1]] is server s's substream.
func bucketByServer(jobs []queue.Job, assign, counts, offsets, fill []int, backing []queue.Job) {
	k := len(counts)
	offsets[0] = 0
	for s := 0; s < k; s++ {
		offsets[s+1] = offsets[s] + counts[s]
	}
	copy(fill, offsets[:k])
	for i, s := range assign {
		backing[fill[s]] = jobs[i]
		fill[s]++
	}
}

// runPreassigned is Run's parallel path: route every job up front, simulate
// each server's substream concurrently, then aggregate in server order so the
// merge is deterministic and bit-identical to the sequential dispatch.
func (sc *runScratch) runPreassigned(k int, cfg queue.Config, disp Dispatcher, pre Preassigner, jobs []queue.Job) (Result, error) {
	sc.assign = resizeInts(sc.assign, len(jobs))
	pre.Preassign(k, jobs, sc.assign)

	sc.perSrv = resizeInts(sc.perSrv, k)
	for s := range sc.perSrv {
		sc.perSrv[s] = 0
	}
	for _, s := range sc.assign {
		if s < 0 || s >= k {
			return Result{}, fmt.Errorf("farm: dispatcher %s picked server %d of %d", disp.Name(), s, k)
		}
		sc.perSrv[s]++
	}
	// Bucket the stream into per-server substreams sharing one backing array,
	// preserving arrival order within each server.
	if cap(sc.backing) < len(jobs) {
		sc.backing = make([]queue.Job, len(jobs))
	}
	sc.backing = sc.backing[:len(jobs)]
	sc.offsets = resizeInts(sc.offsets, k+1)
	sc.fill = resizeInts(sc.fill, k)
	bucketByServer(jobs, sc.assign, sc.perSrv, sc.offsets, sc.fill, sc.backing)

	engines := make([]*queue.Engine, k)
	sc.errs = sc.errs[:0]
	for s := 0; s < k; s++ {
		sc.errs = append(sc.errs, nil)
	}
	errs := sc.errs
	par.Default().Run(k, 0, func(_, s int) {
		eng, err := queue.NewEngine(cfg, 0)
		if err != nil {
			errs[s] = err
			return
		}
		engines[s] = eng
		sub := sc.backing[sc.offsets[s]:sc.offsets[s+1]]
		for i := range sub {
			if _, err := eng.Process(sub[i]); err != nil {
				errs[s] = fmt.Errorf("farm: server %d job %d: %w", s, i, err)
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// Merge through the same Farm.Finish the sequential path uses, so the
	// aggregation can never diverge between the two.
	f := &Farm{engines: engines, disp: disp, perSrv: sc.perSrv}
	return f.Finish(lastFree(engines))
}

// RunSources runs one server per source: server i serves exactly the jobs
// srcs[i] delivers, the routing having been decided by construction (a
// sharded trace, per-server scenario generators). Servers simulate in
// parallel, each pulling bounded chunks, and aggregate deterministically in
// server order. Sources are consumed from their current position; sources
// exposing Err() error surface their failure. Like Run's preassigned path,
// per-server job-buffer memory is one chunk, so week-long per-server
// streams run in O(k·chunk).
func RunSources(cfg queue.Config, srcs []queue.JobSource) (Result, error) {
	k := len(srcs)
	if k < 1 {
		return Result{}, fmt.Errorf("farm: no job sources")
	}
	for s, src := range srcs {
		if src == nil {
			return Result{}, fmt.Errorf("farm: nil job source for server %d", s)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	engines := make([]*queue.Engine, k)
	perSrv := make([]int, k)
	errs := make([]error, k)
	// One pull buffer per pool executor (calls sharing a worker id are
	// sequential, so per-worker slices need no locking), carved from one
	// backing array.
	pool := par.Default()
	workers := pool.Size()
	if workers > k {
		workers = k
	}
	bufs := make([]queue.Job, workers*stream.DefaultChunk)
	pool.Run(k, 0, func(w, s int) {
		buf := bufs[w*stream.DefaultChunk : (w+1)*stream.DefaultChunk]
		eng, err := queue.NewEngine(cfg, 0)
		if err != nil {
			errs[s] = err
			return
		}
		engines[s] = eng
		src := srcs[s]
		served := 0
		for errs[s] == nil {
			n, ok := src.Next(buf)
			for i := 0; i < n; i++ {
				if _, err := eng.Process(buf[i]); err != nil {
					errs[s] = fmt.Errorf("farm: server %d job %d: %w", s, served+i, err)
					break
				}
			}
			served += n
			if !ok {
				break
			}
		}
		perSrv[s] = served
		if errs[s] == nil {
			if err := sourceErr(src); err != nil {
				errs[s] = fmt.Errorf("farm: server %d source: %w", s, err)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	f := &Farm{engines: engines, perSrv: perSrv}
	return f.Finish(lastFree(engines))
}
