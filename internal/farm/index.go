package farm

import (
	"math"
	"math/bits"

	"sleepscale/internal/queue"
)

// This file is the fleet-scale routing index: O(log k) per-job decisions for
// the state-dependent dispatchers, proven bit-identical to their O(k) linear
// scans. The sliced parallel driver builds one index per farm and routes every
// job through it; DispatchOptions.LinearRouting opts back into the scans.
//
// The structures answer exactly the queries the linear comparators compute:
//
//   - JSQ picks the least-backlogged server, ties toward the lowest index.
//     Backlog at arrival t is max(0, freeAt−t), so every idle server
//     (freeAt ≤ t) ties at zero and the lowest-index idle server wins; with
//     no idle server the winner is the minimum (freeAt, index) pair. A
//     tournament tree over freeAt serves both: a leftmost-descent for the
//     lowest-index leaf with key ≤ t, the root winner for the busy minimum.
//
//   - Least-work-left picks the earliest completion of the arriving job.
//     Busy servers (freeAt ≥ t) complete at freeAt + svc — the same
//     tournament-tree minimum, with idle keys lifted to +Inf and extracted
//     lazily as t advances. Idle servers complete at (t + wake) + svc, where
//     wake depends only on the sleep phase occupied at t: all idle servers in
//     one phase bucket tie, so the lowest index per bucket is the only
//     candidate, held in a two-level bitset per bucket. Servers migrate
//     between buckets at anchor + EnterAfter boundaries, tracked by a lazy
//     min-heap of crossings invalidated by per-server generations.
//
// Every floating-point expression below mirrors the corresponding linear-scan
// expression operation for operation (the equivalence suite in index_test.go
// pins this across seeds, dispatchers and fleet sizes).

// routeIndex is the O(log k) routing core the sliced driver consults. route
// both decides the server for j and commits the shadow advance — it writes
// the new freeAt/anchor through the driver's shadow slices, so the
// post-barrier engine resync still compares clean. reset rebuilds from the
// shadow (after Farm.Reset, a new stream, or a resync mismatch); jobs within
// one run must arrive in non-decreasing order, as everywhere else.
type routeIndex interface {
	reset(engCfg queue.Config)
	route(j queue.Job) int
	// rebind re-aliases the index to new shadow slices after the driver
	// resized them (a Select view's server count changed); the caller must
	// reset before routing again.
	rebind(freeAt, anchor []float64)
}

// newRouteIndexFor returns the O(log k) index for dispatchers that have one,
// nil otherwise. The gate is deliberately exact-type, not an interface: a
// wrapper embedding JSQ or LeastWorkLeft would inherit a promoted index
// constructor while overriding RouteVirtual, and the index would silently
// route by the embedded semantics instead of the override. The returned index
// routes against — and writes through — the driver's freeAt/anchor shadow
// slices, which must stay aliased for the index's lifetime.
func newRouteIndexFor(disp Dispatcher, freeAt, anchor []float64) routeIndex {
	switch disp.(type) {
	case JSQ:
		return &jsqIndex{freeAt: freeAt, anchor: anchor}
	case *JSQ:
		return &jsqIndex{freeAt: freeAt, anchor: anchor}
	case *LeastWorkLeft:
		return &lwlIndex{freeAt: freeAt, anchor: anchor}
	}
	return nil
}

// minTree is a tournament tree over per-server float64 keys: a complete
// binary tree with base = 2^⌈log₂ k⌉ leaves (server i at node base+i, padding
// keyed +Inf), whose internal node n stores the leaf index winning the
// subtree — the minimum key, ties toward the lower index. Point updates and
// both queries are O(log k).
type minTree struct {
	k    int
	base int
	key  []float64 // len base: key[i] for server i, +Inf padding beyond k
	win  []int32   // len base: win[n] for internal nodes 1..base-1
}

func (t *minTree) init(k int) {
	base := 1
	for base < k {
		base <<= 1
	}
	t.k, t.base = k, base
	if cap(t.key) < base {
		t.key = make([]float64, base)
		t.win = make([]int32, base)
	}
	t.key = t.key[:base]
	t.win = t.win[:base]
	for i := k; i < base; i++ {
		t.key[i] = math.Inf(1)
	}
}

// build recomputes every internal node; keys must already be set.
func (t *minTree) build() {
	for n := t.base - 1; n >= 1; n-- {
		t.win[n] = t.better(t.winner(2*n), t.winner(2*n+1))
	}
}

// winner resolves node n to the leaf index winning its subtree.
func (t *minTree) winner(n int) int32 {
	if n >= t.base {
		return int32(n - t.base)
	}
	return t.win[n]
}

// better returns the lower-key leaf; on equal keys the left argument — always
// the lower index — wins, matching the linear scans' strict-less updates.
func (t *minTree) better(l, r int32) int32 {
	if t.key[l] <= t.key[r] {
		return l
	}
	return r
}

// update replays server s's leaf up to the root after key[s] changed.
func (t *minTree) update(s int) {
	for n := (t.base + s) / 2; n >= 1; n /= 2 {
		t.win[n] = t.better(t.winner(2*n), t.winner(2*n+1))
	}
}

// min returns the leaf with the minimum (key, index) pair.
func (t *minTree) min() int {
	if t.base == 1 {
		return 0
	}
	return int(t.win[1])
}

// minKey returns the tree's minimum key.
func (t *minTree) minKey() float64 { return t.key[t.min()] }

// leftmostLE returns the lowest leaf index with key ≤ bound, or -1 if none.
// The descent prefers the left child whenever its subtree minimum qualifies,
// which is exactly the lowest-index qualifying leaf.
func (t *minTree) leftmostLE(bound float64) int {
	if t.minKey() > bound {
		return -1
	}
	n := 1
	for n < t.base {
		if t.key[t.winner(2*n)] <= bound {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	return n - t.base
}

// jsqIndex indexes JSQ routing: leftmostLE(t) when any server is idle (all
// idle servers tie at backlog zero, linear scan keeps the first), the tree
// minimum otherwise (backlog freeAt−t orders as freeAt).
type jsqIndex struct {
	freeAt []float64 // the driver's shadow, written through
	anchor []float64
	engCfg queue.Config
	tree   minTree
}

func (x *jsqIndex) rebind(freeAt, anchor []float64) {
	x.freeAt, x.anchor = freeAt, anchor
}

func (x *jsqIndex) reset(engCfg queue.Config) {
	x.engCfg = engCfg
	x.tree.init(len(x.freeAt))
	copy(x.tree.key, x.freeAt)
	x.tree.build()
}

func (x *jsqIndex) route(j queue.Job) int {
	s := x.tree.leftmostLE(j.Arrival)
	if s < 0 {
		s = x.tree.min()
	}
	nf := x.engCfg.NextFreeAtAnchored(x.freeAt[s], x.anchor[s], j)
	x.freeAt[s], x.anchor[s] = nf, nf
	x.tree.key[s] = nf
	x.tree.update(s)
	return s
}

// bucketBits is a two-level bitset over server indices: one word of summary
// bits per 64 index words. lowestSet scans the summary first, so finding the
// lowest-index member costs O(k/4096 + 1) word operations.
type bucketBits struct {
	bits []uint64
	sum  []uint64
}

func (b *bucketBits) init(words, sumWords int) {
	b.bits = resizeUint64(b.bits, words)
	b.sum = resizeUint64(b.sum, sumWords)
}

func resizeUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (b *bucketBits) set(s int) {
	w := s >> 6
	b.bits[w] |= 1 << (s & 63)
	b.sum[w>>6] |= 1 << (w & 63)
}

func (b *bucketBits) clear(s int) {
	w := s >> 6
	b.bits[w] &^= 1 << (s & 63)
	if b.bits[w] == 0 {
		b.sum[w>>6] &^= 1 << (w & 63)
	}
}

func (b *bucketBits) lowestSet() int {
	for sw, v := range b.sum {
		if v != 0 {
			w := sw<<6 + bits.TrailingZeros64(v)
			return w<<6 + bits.TrailingZeros64(b.bits[w])
		}
	}
	return -1
}

// crossing schedules idle server s to migrate into phase bucket b at time t.
// Entries are invalidated lazily: gen must still match the server's when the
// crossing fires, otherwise the server went busy in the meantime.
type crossing struct {
	t   float64
	s   int32
	b   int32
	gen uint32
}

// lwlIndex indexes least-work-left routing. Busy servers live in a minTree
// keyed by freeAt (idle keys +Inf, extracted lazily as t passes freeAt);
// idle servers live in one bitset per wake-pricing bucket — bucket 0 is the
// pre-sleep window (wake 0), bucket p+1 is price.Phases[p] — migrating at
// anchor+EnterAfter boundaries via the crossing heap. The candidates at
// arrival t are the busy minimum (done = freeAt + svc) and each non-empty
// bucket's lowest index (done = (t + wake) + svc), compared by (done, index)
// exactly as the linear scan's strict-less loop resolves them.
//
// Pricing uses the configuration passed to reset — the engines' live shared
// configuration — exactly as Pick prices from live engines, so indexed
// routing stays bit-identical to the sequential dispatch even when the
// operating point switches between calls (the fleet coordinator's
// epoch-boundary policy changes). The dispatcher's static Cfg field is never
// consulted.
type lwlIndex struct {
	freeAt []float64
	anchor []float64
	engCfg queue.Config // the reset configuration: live pricing, like Pick

	tree     minTree
	buckets  []bucketBits // len(price.Phases) + 1
	wakes    []float64    // wake latency per bucket
	enters   []float64    // EnterAfter per phase (crossing boundaries)
	bucketOf []int32      // current bucket per server, -1 = busy
	gen      []uint32
	heap     []crossing
}

func (x *lwlIndex) rebind(freeAt, anchor []float64) {
	x.freeAt, x.anchor = freeAt, anchor
}

func (x *lwlIndex) reset(engCfg queue.Config) {
	x.engCfg = engCfg
	k := len(x.freeAt)
	x.tree.init(k)
	// Every server starts in the busy tree regardless of its freeAt; route's
	// lazy extraction moves the idle ones out with the correct bucket for the
	// first arrival's instant (which reset cannot know yet).
	copy(x.tree.key, x.freeAt)
	x.tree.build()

	nb := len(x.engCfg.Phases) + 1
	if cap(x.buckets) < nb {
		x.buckets = make([]bucketBits, nb)
	}
	x.buckets = x.buckets[:nb]
	words := (k + 63) / 64
	sumWords := (words + 63) / 64
	x.wakes = resizeFloats(x.wakes, nb)
	x.enters = resizeFloats(x.enters, nb-1)
	for b := range x.buckets {
		x.buckets[b].init(words, sumWords)
		if b > 0 {
			x.wakes[b] = x.engCfg.Phases[b-1].WakeLatency
			x.enters[b-1] = x.engCfg.Phases[b-1].EnterAfter
		}
	}
	x.bucketOf = resizeInt32(x.bucketOf, k)
	x.gen = resizeUint32(x.gen, k)
	for s := range x.bucketOf {
		x.bucketOf[s] = -1
	}
	x.heap = x.heap[:0]
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeUint32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		s = make([]uint32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (x *lwlIndex) route(j queue.Job) int {
	t := j.Arrival
	x.advance(t)

	svc := x.engCfg.ServiceTime(j.Size)
	best, bestDone := -1, 0.0
	for b := range x.buckets {
		s := x.buckets[b].lowestSet()
		if s < 0 {
			continue
		}
		// Same float expression as the linear scan's idle branch:
		// start = arrival + wake, done = start + svc.
		done := (t + x.wakes[b]) + svc
		if best < 0 || done < bestDone || (done == bestDone && s < best) {
			best, bestDone = s, done
		}
	}
	if s := x.tree.min(); !math.IsInf(x.tree.key[s], 1) {
		done := x.tree.key[s] + svc
		if best < 0 || done < bestDone || (done == bestDone && s < best) {
			best = s
		}
	}

	// Commit: the picked server goes (or stays) busy; the shadow advances by
	// the engines' configuration, the idle schedule re-anchors at the new
	// freeAt, exactly as Engine.Process will when the job reaches it.
	s := best
	if b := x.bucketOf[s]; b >= 0 {
		x.buckets[b].clear(s)
		x.bucketOf[s] = -1
		x.gen[s]++ // orphan any scheduled crossing
	}
	nf := x.engCfg.NextFreeAtAnchored(x.freeAt[s], x.anchor[s], j)
	x.freeAt[s], x.anchor[s] = nf, nf
	x.tree.key[s] = nf
	x.tree.update(s)
	return s
}

// advance brings the idle structures up to arrival time t: servers whose
// freeAt passed strictly below t leave the busy tree (arrival == freeAt is
// still the busy branch), and scheduled bucket crossings at or before t fire
// (occupiedPhase uses EnterAfter ≤ offset, so a boundary hit exactly at t
// counts).
func (x *lwlIndex) advance(t float64) {
	for x.tree.minKey() < t {
		x.goIdle(x.tree.min(), t)
	}
	for len(x.heap) > 0 && x.heap[0].t <= t {
		c := x.heapPop()
		s := int(c.s)
		if c.gen != x.gen[s] || x.bucketOf[s] != c.b-1 {
			continue // server went busy (or already migrated) since scheduling
		}
		x.buckets[c.b-1].clear(s)
		x.buckets[c.b].set(s)
		x.bucketOf[s] = c.b
		x.schedule(s, int(c.b))
	}
}

// goIdle moves server s from the busy tree into the bucket occupied at time
// t, and schedules its next crossing.
func (x *lwlIndex) goIdle(s int, t float64) {
	x.tree.key[s] = math.Inf(1)
	x.tree.update(s)
	// occupiedPhase(t - anchor) + 1, inlined over the cached boundaries.
	off := t - x.anchor[s]
	b := 0
	for b < len(x.enters) && x.enters[b] <= off {
		b++
	}
	x.buckets[b].set(s)
	x.bucketOf[s] = int32(b)
	x.schedule(s, b)
}

// schedule pushes server s's crossing out of bucket b, if a deeper phase
// exists. The boundary is anchor + EnterAfter of the next phase, necessarily
// in the future of the scheduling instant.
func (x *lwlIndex) schedule(s, b int) {
	if b >= len(x.enters) {
		return // deepest phase: no further crossing
	}
	x.heapPush(crossing{t: x.anchor[s] + x.enters[b], s: int32(s), b: int32(b + 1), gen: x.gen[s]})
	// Orphaned entries (server went busy before its crossing fired) are only
	// reclaimed when popped; compact if they pile up far beyond the k·phases
	// live bound.
	if len(x.heap) > 4*(len(x.freeAt)+16)*(len(x.enters)+1) {
		x.compact()
	}
}

// compact drops orphaned heap entries in place and restores the heap order.
func (x *lwlIndex) compact() {
	live := x.heap[:0]
	for _, c := range x.heap {
		s := int(c.s)
		if c.gen == x.gen[s] && x.bucketOf[s] == c.b-1 {
			live = append(live, c)
		}
	}
	x.heap = live
	for i := len(x.heap)/2 - 1; i >= 0; i-- {
		x.siftDown(i)
	}
}

func (x *lwlIndex) heapPush(c crossing) {
	x.heap = append(x.heap, c)
	i := len(x.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if x.heap[p].t <= x.heap[i].t {
			break
		}
		x.heap[p], x.heap[i] = x.heap[i], x.heap[p]
		i = p
	}
}

func (x *lwlIndex) heapPop() crossing {
	top := x.heap[0]
	last := len(x.heap) - 1
	x.heap[0] = x.heap[last]
	x.heap = x.heap[:last]
	if last > 0 {
		x.siftDown(0)
	}
	return top
}

func (x *lwlIndex) siftDown(i int) {
	n := len(x.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && x.heap[c+1].t < x.heap[c].t {
			c++
		}
		if x.heap[i].t <= x.heap[c].t {
			return
		}
		x.heap[i], x.heap[c] = x.heap[c], x.heap[i]
		i = c
	}
}
