package analytic

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sleepscale/internal/queue"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1e-12, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, tol)
	}
}

func TestValidate(t *testing.T) {
	good := Model{Lambda: 1, Mu: 10, F: 0.5, ActivePower: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []Model{
		{Lambda: 0, Mu: 1, F: 1},
		{Lambda: 1, Mu: 0, F: 1},
		{Lambda: 1, Mu: 10, F: 0},
		{Lambda: 1, Mu: 10, F: 1.5},
		{Lambda: 5, Mu: 10, F: 0.5}, // λ = µf: unstable
		{Lambda: 1, Mu: 10, F: 1, States: []SleepState{{Enter: -1}}},
		{Lambda: 1, Mu: 10, F: 1, States: []SleepState{{Enter: 2}, {Enter: 1}}},
		{Lambda: 1, Mu: 10, F: 1, States: []SleepState{{Power: -1}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	unstable := Model{Lambda: 6, Mu: 10, F: 0.5}
	if err := unstable.Validate(); !errors.Is(err, ErrUnstable) {
		t.Errorf("want ErrUnstable, got %v", err)
	}
}

// TestMM1Limits: with no sleep states the formulas collapse to textbook
// M/M/1: E[R] = 1/(µf−λ), E[P] = P₀.
func TestMM1Limits(t *testing.T) {
	m := Model{Lambda: 2, Mu: 10, F: 0.5, ActivePower: 250}
	r, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[R]", r, 1/(10*0.5-2), 1e-12)
	p, err := m.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[P]", p, 250, 1e-12)
}

// TestSingleStateZeroWakePower: single state, τ=0, w=0 gives the classic
// busy/idle power split E[P] = ρ_eff·P₀ + (1−ρ_eff)·P₁.
func TestSingleStateZeroWakePower(t *testing.T) {
	m := Model{
		Lambda: 2, Mu: 10, F: 0.5, ActivePower: 250,
		States: []SleepState{{Power: 135.5, Enter: 0, Wake: 0}},
	}
	p, err := m.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	rhoEff := 2.0 / 5.0
	approx(t, "E[P]", p, rhoEff*250+(1-rhoEff)*135.5, 1e-12)
	r, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[R]", r, 1/(5.0-2.0), 1e-12)
}

// TestSetupMeanResponseKnownForm: single state, τ=0, deterministic wake w
// must give Welch's M/M/1-with-setup mean 1/(µf−λ) + (2w+λw²)/(2(1+λw)).
func TestSetupMeanResponseKnownForm(t *testing.T) {
	w := 0.3
	m := Model{
		Lambda: 1, Mu: 4, F: 1, ActivePower: 100,
		States: []SleepState{{Power: 10, Enter: 0, Wake: w}},
	}
	r, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	want := 1/(4.0-1.0) + (2*w+1*w*w)/(2*(1+1*w))
	approx(t, "E[R]", r, want, 1e-12)
}

// simulate builds an exponential job stream and runs the queue simulator
// with the given analytic model translated to a queue.Config.
func simulate(t *testing.T, m Model, n int, seed int64) queue.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]queue.Job, n)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / m.Lambda
		jobs[i] = queue.Job{Arrival: tnow, Size: rng.ExpFloat64() / m.Mu}
	}
	cfg := queue.Config{
		Frequency:    m.F,
		FreqExponent: 1,
		ActivePower:  m.ActivePower,
		IdlePower:    m.ActivePower,
	}
	for i, s := range m.States {
		cfg.Phases = append(cfg.Phases, queue.SleepPhase{
			Name:        string(rune('A' + i)),
			Power:       s.Power,
			WakeLatency: s.Wake,
			EnterAfter:  s.Enter,
		})
	}
	res, err := queue.Simulate(jobs, cfg, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAnalyticMatchesSimulationSingleState is the paper's §4.3 verification:
// closed forms and Algorithm 1 agree. Single sleep state, τ = 0.
func TestAnalyticMatchesSimulationSingleState(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	cases := []Model{
		// DNS-like at ρ=0.1 with C6S3-like numbers.
		{Lambda: 0.5155, Mu: 5.155, F: 0.42, ActivePower: 130*0.42*0.42*0.42 + 120,
			States: []SleepState{{Power: 28.1, Enter: 0, Wake: 1}}},
		// Google-like at ρ=0.3 with C0(i)S0(i)-like numbers.
		{Lambda: 71.4, Mu: 238, F: 0.5, ActivePower: 130*0.125 + 120,
			States: []SleepState{{Power: 75*0.125 + 60.5, Enter: 0, Wake: 0}}},
		// Mid utilization with C6S0(i)-like numbers.
		{Lambda: 2, Mu: 5.155, F: 0.8, ActivePower: 130*0.512 + 120,
			States: []SleepState{{Power: 75.5, Enter: 0, Wake: 1e-3}}},
	}
	for i, m := range cases {
		res := simulate(t, m, 300000, int64(i+1))
		wantR, err := m.MeanResponse()
		if err != nil {
			t.Fatal(err)
		}
		wantP, err := m.MeanPower()
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "E[R]", res.MeanResponse, wantR, 0.03)
		approx(t, "E[P]", res.AvgPower, wantP, 0.03)
	}
}

// TestAnalyticMatchesSimulationMultiState covers a two-state sequence with a
// positive enter delay (the Figure 3 configuration shape).
func TestAnalyticMatchesSimulationMultiState(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	m := Model{
		Lambda: 23.8, Mu: 238, F: 0.35,
		ActivePower: 130*math.Pow(0.35, 3) + 120,
		States: []SleepState{
			{Power: 75*math.Pow(0.35, 3) + 60.5, Enter: 0, Wake: 0},
			{Power: 28.1, Enter: 30.0 / 238, Wake: 1},
		},
	}
	res := simulate(t, m, 400000, 7)
	wantR, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := m.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[R]", res.MeanResponse, wantR, 0.05)
	approx(t, "E[P]", res.AvgPower, wantP, 0.03)
}

// TestAnalyticMatchesSimulationFiveStateSequence covers the full §4.2
// lesson-5 sequence C0(i)S0(i)→C1→C3→C6→C6S3 with staggered delays.
func TestAnalyticMatchesSimulationFiveStateSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	f := 0.6
	m := Model{
		Lambda: 1.0, Mu: 5.155, F: f,
		ActivePower: 130*f*f*f + 120,
		States: []SleepState{
			{Power: 75*f*f*f + 60.5, Enter: 0, Wake: 0},
			{Power: 47*f*f + 60.5, Enter: 0.05, Wake: 10e-6},
			{Power: 22 + 60.5, Enter: 0.2, Wake: 100e-6},
			{Power: 15 + 60.5, Enter: 0.5, Wake: 1e-3},
			{Power: 15 + 13.1, Enter: 2.0, Wake: 1},
		},
	}
	res := simulate(t, m, 400000, 11)
	wantR, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := m.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[R]", res.MeanResponse, wantR, 0.05)
	approx(t, "E[P]", res.AvgPower, wantP, 0.03)
}

func TestTailResponseBoundaryValues(t *testing.T) {
	m := Model{Lambda: 1, Mu: 4, F: 1, ActivePower: 1,
		States: []SleepState{{Power: 0, Enter: 0, Wake: 0.2}}}
	// d = 0 ⇒ Pr = 1.
	p, err := m.TailResponse(0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Pr(R>=0)", p, 1, 1e-12)
	// d → ∞ ⇒ Pr → 0.
	p, err = m.TailResponse(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-12 {
		t.Errorf("Pr(R>=inf) = %v, want ~0", p)
	}
	// w₁ = 0 ⇒ M/M/1 tail e^{−(µf−λ)d}.
	m.States[0].Wake = 0
	p, err = m.TailResponse(0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "M/M/1 tail", p, math.Exp(-3*0.5), 1e-12)
}

func TestTailResponseRejectsUnsupportedModels(t *testing.T) {
	two := Model{Lambda: 1, Mu: 4, F: 1,
		States: []SleepState{{Enter: 0}, {Enter: 1}}}
	if _, err := two.TailResponse(1); err == nil {
		t.Error("two-state tail accepted")
	}
	delayed := Model{Lambda: 1, Mu: 4, F: 1,
		States: []SleepState{{Enter: 0.5}}}
	if _, err := delayed.TailResponse(1); err == nil {
		t.Error("delayed-entry tail accepted")
	}
}

// TestTailResponseAgainstBespokeSimulator validates the Appendix tail
// formula with a purpose-built M/M/1 simulator whose per-busy-period setup
// times are exponential with mean w₁ (the distributional assumption under
// which the formula is exact).
func TestTailResponseAgainstBespokeSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	const (
		lambda = 1.0
		mu     = 4.0
		w1     = 0.25
		n      = 500000
	)
	rng := rand.New(rand.NewSource(3))
	var (
		tnow, freeAt float64
		resp         []float64
	)
	for i := 0; i < n; i++ {
		tnow += rng.ExpFloat64() / lambda
		svc := rng.ExpFloat64() / mu
		var start float64
		if tnow > freeAt {
			setup := rng.ExpFloat64() * w1
			start = tnow + setup
		} else {
			start = freeAt
		}
		freeAt = start + svc
		resp = append(resp, freeAt-tnow)
	}
	m := Model{Lambda: lambda, Mu: mu, F: 1, ActivePower: 1,
		States: []SleepState{{Power: 0, Enter: 0, Wake: w1}}}
	for _, d := range []float64{0.1, 0.3, 0.6, 1.0, 2.0} {
		want, err := m.TailResponse(d)
		if err != nil {
			t.Fatal(err)
		}
		var above int
		for _, r := range resp {
			if r >= d {
				above++
			}
		}
		got := float64(above) / float64(n)
		approx(t, "Pr(R>=d)", got, want, 0.05)
	}
}

func TestResponseQuantile(t *testing.T) {
	// Pure M/M/1: the p-quantile solves e^{−(µ−λ)d} = 1−p.
	m := Model{Lambda: 1, Mu: 4, F: 1, ActivePower: 1}
	q, err := m.ResponseQuantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.05) / 3
	approx(t, "P95", q, want, 1e-9)
	if _, err := m.ResponseQuantile(0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := m.ResponseQuantile(1); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestResponseQuantileWithWake(t *testing.T) {
	m := Model{Lambda: 1, Mu: 4, F: 1, ActivePower: 1,
		States: []SleepState{{Power: 0, Enter: 0, Wake: 0.5}}}
	q, err := m.ResponseQuantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := m.TailResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tail at quantile", tail, 0.05, 1e-6)
}

// Property: Pr(R ≥ d) is a valid survival function — in [0,1] and monotone
// non-increasing in d — across random stable models.
func TestTailIsSurvivalFunctionProperty(t *testing.T) {
	f := func(ls, ws uint16) bool {
		lambda := 0.1 + float64(ls)/65535*3 // µf = 4 ⇒ stable
		w := float64(ws) / 65535 * 2
		m := Model{Lambda: lambda, Mu: 4, F: 1, ActivePower: 1,
			States: []SleepState{{Power: 0, Enter: 0, Wake: w}}}
		prev := 1.0
		for d := 0.0; d < 5; d += 0.1 {
			p, err := m.TailResponse(d)
			if err != nil || p < -1e-12 || p > 1+1e-12 || p > prev+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean response and mean power increase with deeper wake latency
// (all else equal) and E[P] is bounded by [P₁, P₀].
func TestMonotonicityProperties(t *testing.T) {
	f := func(ws uint16) bool {
		w := float64(ws) / 65535
		m := Model{Lambda: 1, Mu: 4, F: 1, ActivePower: 200,
			States: []SleepState{{Power: 20, Enter: 0, Wake: w}}}
		r, err := m.MeanResponse()
		if err != nil {
			return false
		}
		base := 1 / 3.0
		if r < base-1e-12 {
			return false
		}
		p, err := m.MeanPower()
		if err != nil {
			return false
		}
		return p >= 20-1e-9 && p <= 200+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMG1MatchesSimulation: the M/G/1 extension must track the simulator
// with hyperexponential (Cv > 1) and gamma (Cv < 1) service times.
func TestMG1MatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	for _, scv := range []float64{0.25, 4.0} {
		m := MG1Model{
			Model: Model{Lambda: 1.5, Mu: 5, F: 1, ActivePower: 250,
				States: []SleepState{{Power: 30, Enter: 0, Wake: 0.05}}},
			ServiceSCV: scv,
		}
		rng := rand.New(rand.NewSource(21))
		var sizeDist interface {
			Sample(*rand.Rand) float64
		}
		mean := 1 / m.Mu
		cv := math.Sqrt(scv)
		if cv > 1 {
			d, err := newH2(mean, cv)
			if err != nil {
				t.Fatal(err)
			}
			sizeDist = d
		} else {
			d := gammaDist{shape: 1 / scv, scale: mean * scv}
			sizeDist = d
		}
		n := 400000
		jobs := make([]queue.Job, n)
		tnow := 0.0
		for i := range jobs {
			tnow += rng.ExpFloat64() / m.Lambda
			jobs[i] = queue.Job{Arrival: tnow, Size: sizeDist.Sample(rng)}
		}
		cfg := queue.Config{Frequency: 1, FreqExponent: 1, ActivePower: 250, IdlePower: 250,
			Phases: []queue.SleepPhase{{Name: "s", Power: 30, WakeLatency: 0.05, EnterAfter: 0}}}
		res, err := queue.Simulate(jobs, cfg, queue.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := m.MeanResponse()
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "M/G/1 E[R]", res.MeanResponse, wantR, 0.05)
		wantP, err := m.MeanPower()
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "M/G/1 E[P]", res.AvgPower, wantP, 0.03)
	}
}

// Minimal local distributions to avoid an import cycle with internal/dist
// (dist has no dependency on analytic, but keeping analytic leaf-level keeps
// the dependency graph clean).
type h2 struct{ p1, r1, r2 float64 }

func newH2(mean, cv float64) (h2, error) {
	c2 := cv * cv
	p1 := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	return h2{p1: p1, r1: 2 * p1 / mean, r2: 2 * (1 - p1) / mean}, nil
}

func (h h2) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < h.p1 {
		return rng.ExpFloat64() / h.r1
	}
	return rng.ExpFloat64() / h.r2
}

type gammaDist struct{ shape, scale float64 }

func (g gammaDist) Sample(rng *rand.Rand) float64 {
	// Marsaglia–Tsang; shape ≥ 1 in the cases used here.
	d := g.shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || (u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v))) {
			return d * v * g.scale
		}
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	m := MG1Model{
		Model:      Model{Lambda: 2, Mu: 10, F: 0.5, ActivePower: 1},
		ServiceSCV: 1,
	}
	r, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "E[R]", r, 1/(5.0-2.0), 1e-12)
	if _, err := (MG1Model{Model: m.Model, ServiceSCV: -1}).MeanResponse(); err == nil {
		t.Error("negative SCV accepted")
	}
}

// TestResidencyFractionsAgainstSimulation cross-validates the analytic
// state-occupancy split (the quantity behind Figure 10) with the simulator's
// residency accounting on a two-state sequence.
func TestResidencyFractionsAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	m := Model{
		Lambda: 1.0, Mu: 5.155, F: 0.6,
		ActivePower: 130*0.216 + 120,
		States: []SleepState{
			{Power: 75*0.216 + 60.5, Enter: 0, Wake: 0},
			{Power: 28.1, Enter: 1.5, Wake: 1},
		},
	}
	active, pre, states, err := m.ResidencyFractions()
	if err != nil {
		t.Fatal(err)
	}
	if pre != 0 {
		t.Errorf("pre-sleep fraction = %v, want 0 for τ₁=0", pre)
	}
	total := active + pre
	for _, s := range states {
		total += s
	}
	approx(t, "fractions sum", total, 1, 1e-12)

	res := simulate(t, m, 300000, 17)
	dur := res.Duration
	approx(t, "state A fraction", res.Residency["A"]/dur, states[0], 0.03)
	approx(t, "state B fraction", res.Residency["B"]/dur, states[1], 0.03)
	simActive := (res.BusyTime + res.WakeTime) / dur
	approx(t, "active fraction", simActive, active, 0.03)
}

func TestResidencyFractionsNoSleep(t *testing.T) {
	m := Model{Lambda: 2, Mu: 10, F: 0.5, ActivePower: 1}
	active, pre, states, err := m.ResidencyFractions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("states = %v", states)
	}
	approx(t, "active", active, 0.4, 1e-12)
	approx(t, "pre-sleep idle", pre, 0.6, 1e-12)
}

func TestCycleLengthKnownCase(t *testing.T) {
	// n=1, τ=0, w=0: L = µf/(λ(µf−λ)).
	m := Model{Lambda: 2, Mu: 10, F: 0.5, ActivePower: 1,
		States: []SleepState{{Power: 0, Enter: 0, Wake: 0}}}
	L, err := m.CycleLength()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "L", L, 5.0/(2*3), 1e-12)
}
